// Cache-configuration ablation — the base-processor configuration axis the
// paper mentions ("cache and memory interface configuration" among the
// Xtensa options): how sensitive the crypto kernels are to the I/D cache
// geometry, and how custom instructions shift the bottleneck.
#include <cstdio>

#include "bench_util.h"
#include "kernels/des_kernel.h"
#include "kernels/modexp_kernel.h"
#include "mp/prime.h"
#include "support/random.h"

namespace {

using namespace wsp;

sim::CpuConfig cache_config(std::size_t kib) {
  sim::CpuConfig cfg;
  if (kib == 0) return cfg;  // perfect caches
  cfg.model_caches = true;
  cfg.icache = sim::CacheConfig{kib * 1024, 16, 2, 20};
  cfg.dcache = sim::CacheConfig{kib * 1024, 16, 2, 20};
  return cfg;
}

}  // namespace

int main() {
  using namespace wsp;
  bench::header("Cache-geometry sensitivity of the crypto kernels",
                "base-processor configuration ablation (paper Sec. 2.1)");

  Rng rng(81);
  const auto data = rng.bytes(2048);
  const std::uint64_t key = rng.next_u64();

  std::printf("\nDES ECB of %zu bytes (cycles/byte):\n", data.size());
  std::printf("  %-22s %12s %12s\n", "cache config", "base", "TIE");
  for (std::size_t kib : {0u, 1u, 4u, 16u}) {
    double cpb[2] = {};
    int idx = 0;
    for (bool tie : {false, true}) {
      kernels::Machine m = kernels::make_des_machine(tie, cache_config(kib));
      kernels::DesKernel k(m, tie);
      k.set_key(key);
      std::uint64_t cycles = 0;
      k.encrypt_ecb(data, &cycles);
      cpb[idx++] = static_cast<double>(cycles) / static_cast<double>(data.size());
    }
    if (kib == 0) {
      std::printf("  %-22s %12.1f %12.1f\n", "perfect", cpb[0], cpb[1]);
    } else {
      std::printf("  %u KiB I$ + %u KiB D$%6s %12.1f %12.1f\n",
                  unsigned(kib), unsigned(kib), "", cpb[0], cpb[1]);
    }
  }

  std::printf("\nRSA-512 private op (cycles), Montgomery w=4:\n");
  const auto rsa_key = rsa::generate_key(512, rng);
  const Mpz ct = random_below(rsa_key.n, rng);
  std::printf("  %-22s %14s %14s\n", "cache config", "base", "TIE(add8,mac8)");
  for (std::size_t kib : {0u, 1u, 4u, 16u}) {
    std::uint64_t cycles[2] = {};
    int idx = 0;
    for (bool tie : {false, true}) {
      kernels::Machine m = kernels::make_modexp_machine(
          tie ? kernels::MpnTieConfig{8, 8} : kernels::MpnTieConfig{},
          cache_config(kib));
      kernels::IssModexp mx(m);
      cycles[idx++] = mx.rsa_crt(ct, rsa_key, 4).cycles;
    }
    if (kib == 0) {
      std::printf("  %-22s %14llu %14llu\n", "perfect",
                  static_cast<unsigned long long>(cycles[0]),
                  static_cast<unsigned long long>(cycles[1]));
    } else {
      std::printf("  %u KiB I$ + %u KiB D$%6s %14llu %14llu\n", unsigned(kib),
                  unsigned(kib), "",
                  static_cast<unsigned long long>(cycles[0]),
                  static_cast<unsigned long long>(cycles[1]));
    }
  }
  std::printf("\nThe working sets (tables + operands) fit comfortably in the "
              "16 KiB configuration\nthe paper's core carries; small caches "
              "penalize the table-driven baseline most.\n");
  return 0;
}
