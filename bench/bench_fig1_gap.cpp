// Fig. 1: the "security processing gap" — projected MIPS required to run
// security protocols at each wireless generation's data rate vs. the MIPS
// an embedded processor provides at each silicon node.
//
// The security-processing requirement is derived from *measured* baseline
// costs on our simulated core: cycles/byte of an SSL-protected stream
// (3DES + HMAC-SHA1) plus the amortized handshake, times the technology's
// data rate.  Processor MIPS follow the classic ~2x-per-node trend around
// the paper's 188 MHz 0.18um design point.
#include <cstdio>

#include "bench_util.h"
#include "kernels/des_kernel.h"
#include "ssl/workload.h"
#include "support/random.h"

int main() {
  using namespace wsp;
  bench::header("The security processing gap", "paper Fig. 1");

  // Measure the baseline record-protection cost.
  Rng rng(61);
  kernels::Machine m = kernels::make_des_machine(false);
  kernels::DesKernel k(m, false);
  k.set_3des_keys(rng.next_u64(), rng.next_u64(), rng.next_u64());
  std::uint64_t cycles = 0;
  const auto data = rng.bytes(1024);
  k.encrypt_ecb_3des(data, &cycles);
  const double cipher_cpb = static_cast<double>(cycles) / 1024.0;
  const double hash_cpb = ssl::misc_cost_defaults().hash_cycles_per_byte;
  const double stream_cpb = cipher_cpb + hash_cpb;
  std::printf("\nmeasured baseline stream protection: 3DES %.0f + HMAC-SHA1 %.0f "
              "= %.0f cycles/byte\n",
              cipher_cpb, hash_cpb, stream_cpb);

  struct Generation {
    const char* wireless;
    double mbps;
    const char* node;
    double cpu_mips;
  };
  // CPU MIPS: single-issue embedded core trend, 2x per node, anchored at
  // the paper's 188 MHz 0.18um Xtensa-class design (~188 MIPS).
  const Generation gens[] = {
      {"2G    (14.4 kbps)", 0.0144, "0.35u", 47},
      {"2.5G  (384 kbps) ", 0.384, "0.25u", 94},
      {"3G    (2 Mbps)   ", 2.0, "0.18u", 188},
      {"3G+   (10 Mbps)  ", 10.0, "0.13u", 376},
      {"WLAN  (55 Mbps)  ", 55.0, "0.10u", 752},
  };

  std::printf("\n%-22s %-8s %16s %14s %8s\n", "wireless technology", "node",
              "required MIPS", "CPU MIPS", "gap");
  for (const auto& g : gens) {
    // bytes/s * cycles/byte -> cycles/s -> MIPS (1 cycle ~ 1 instruction on
    // the single-issue baseline).
    const double required = g.mbps * 1e6 / 8.0 * stream_cpb / 1e6;
    std::printf("%-22s %-8s %16.1f %14.0f %7.1fx\n", g.wireless, g.node,
                required, g.cpu_mips, required / g.cpu_mips);
  }
  std::printf("\nThe requirement grows ~10x per generation while processor "
              "performance grows ~2x per node:\nthe widening gap motivates "
              "the platform (paper Fig. 1).\n");
  return 0;
}
