// Fig. 4: the weighted function call graph of an optimized modular
// exponentiation, obtained by profiling a real run on the cycle-accurate
// ISS (call counts on the edges, per-invocation local cycles on the nodes).
#include <cstdio>

#include "bench_util.h"
#include "kernels/modexp_kernel.h"
#include "mp/prime.h"
#include "select/callgraph.h"
#include "support/random.h"

int main() {
  using namespace wsp;
  bench::header("Weighted call graph of optimized modular exponentiation",
                "paper Fig. 4");

  Rng rng(41);
  const auto key = rsa::generate_key(512, rng);
  const Mpz base = random_below(key.n, rng);

  kernels::Machine machine = kernels::make_modexp_machine();
  kernels::IssModexp mx(machine);
  machine.cpu().reset_stats();
  const auto res = mx.powm_mont(base, key.d, key.n, 4);
  std::printf("\nworkload: 512-bit Montgomery modexp (4-bit windows), %llu cycles\n",
              static_cast<unsigned long long>(res.cycles));

  const auto& profiler = machine.cpu().profiler();
  std::printf("\nEdges (caller -> callee x calls):\n%s",
              profiler.format_call_graph().c_str());

  std::printf("\nPer-function profile:\n");
  std::printf("  %-18s %10s %14s %14s\n", "function", "calls", "self cycles",
              "total cycles");
  for (const auto& [name, stats] : profiler.functions()) {
    std::printf("  %-18s %10llu %14llu %14llu\n", name.c_str(),
                static_cast<unsigned long long>(stats.calls),
                static_cast<unsigned long long>(stats.self_cycles),
                static_cast<unsigned long long>(stats.total_cycles));
  }

  const auto graph =
      select::CallGraph::from_profiler(profiler, "mont_mul");
  std::printf("\nCall tree rooted at mont_mul (per-invocation weights):\n%s",
              graph.format("mont_mul").c_str());
  std::printf("\npaper Fig. 4 shows the same structure: the exponentiation "
              "driver fanning out\ninto mpz/mpn leaf routines with edge "
              "weights (e.g. decrypt -> mpz_mul x4).\n");
  return 0;
}
