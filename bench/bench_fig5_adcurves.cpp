// Fig. 5: measured A-D (area-delay) curves for mpn_add_n and mpn_addmul_1,
// and their propagation to a parent node of the call graph.
//
// Each point is a real ISS measurement of the routine (n = 32 limbs, the
// 1024-bit operand size) under a different custom-instruction allocation;
// areas come from the tie gate-area model.  The composite curve combines
// the children per Eq. (1) with sharing + dominance, then Pareto-prunes —
// the paper's P1/P2/P3 pruning discussion.
#include <cstdio>

#include "bench_util.h"
#include "kernels/mpn_kernels.h"
#include "support/random.h"
#include "tie/adcurve.h"

namespace {

using namespace wsp;

tie::ADCurve measure_add_curve(std::size_t n) {
  Rng rng(31);
  std::vector<std::uint32_t> a(n), b(n), r;
  for (auto& x : a) x = rng.next_u32();
  for (auto& x : b) x = rng.next_u32();
  tie::ADCurve curve;
  const auto catalog = tie::default_catalog();
  for (int width : {0, 2, 4, 8, 16}) {
    kernels::Machine m = kernels::make_mpn_machine(kernels::MpnTieConfig{width, 0});
    const auto res = kernels::run_add_n(m, r, a, b);
    std::set<std::string> instrs;
    if (width) {
      instrs = {"ur_load", "ur_store", "add_" + std::to_string(width)};
    }
    curve.add({catalog.set_area(instrs), static_cast<double>(res.cycles), instrs});
  }
  return curve;
}

tie::ADCurve measure_addmul_curve(std::size_t n) {
  Rng rng(32);
  std::vector<std::uint32_t> a(n);
  for (auto& x : a) x = rng.next_u32();
  tie::ADCurve curve;
  const auto catalog = tie::default_catalog();
  for (int width : {0, 1, 2, 4}) {
    kernels::Machine m = kernels::make_mpn_machine(kernels::MpnTieConfig{0, width});
    std::vector<std::uint32_t> r(n, 0x5a5a5a5a);
    const auto res = kernels::run_addmul_1(m, r, a, 0x9e3779b9u);
    std::set<std::string> instrs;
    if (width) {
      instrs = {"ur_load", "ur_store", "mac_" + std::to_string(width)};
    }
    curve.add({catalog.set_area(instrs), static_cast<double>(res.cycles), instrs});
  }
  return curve;
}

void print_curve(const char* name, const tie::ADCurve& curve) {
  std::printf("\nA-D curve for %s:\n", name);
  std::printf("   area (grids)    cycles    instructions\n");
  for (const auto& p : curve.points()) {
    std::printf("   %10.0f   %8.0f    {", p.area, p.cycles);
    bool first = true;
    for (const auto& i : p.instrs) {
      std::printf("%s%s", first ? "" : ", ", i.c_str());
      first = false;
    }
    std::printf("}\n");
  }
}

}  // namespace

int main() {
  using namespace wsp;
  bench::header("A-D curves for mpn_add_n / mpn_addmul_1 and their combination",
                "paper Fig. 5(a), 5(b), 5(c)");

  const std::size_t n = 32;  // 1024-bit operands
  const auto add_curve = measure_add_curve(n);
  const auto mul_curve = measure_addmul_curve(n);
  print_curve("mpn_add_n (n=32; paper base point: 202 cycles)", add_curve);
  print_curve("mpn_addmul_1 (n=32)", mul_curve);

  // Fig. 5(c): a parent calling mpn_add_n twice and mpn_addmul_1 once per
  // invocation, with 10 local cycles (the paper's illustration).
  const auto catalog = tie::default_catalog();
  tie::ADCurve::CombineStats stats;
  tie::ADCurve root = tie::ADCurve::combine(
      10.0, {{2.0, &add_curve}, {1.0, &mul_curve}}, catalog, &stats);
  const std::size_t before = root.points().size();
  print_curve("root (local 10 cycles; calls: 2 x add_n, 1 x addmul_1)", root);
  root.pareto_prune();
  std::printf("\nCartesian points: %zu, after sharing+dominance: %zu, after "
              "Pareto pruning at the root: %zu\n",
              stats.cartesian_points, before, root.points().size());
  print_curve("root (Pareto-pruned)", root);
  return 0;
}
