// Fig. 6: combining the design spaces of two A-D curves — the Cartesian
// product of the paper's example (5 mpn_add_n points x 5 mpn_addmul_1
// points whose entries also use adders) collapses under instruction sharing
// and dominance reduction (paper: 25 -> 9 shaded entries).
#include <cstdio>

#include "bench_util.h"
#include "tie/adcurve.h"

int main() {
  using namespace wsp;
  bench::header("Combining the design spaces of two A-D curves",
                "paper Fig. 6");

  const auto catalog = tie::default_catalog();

  // mpn_add_n: original + add_2/4/8/16 (paper Fig. 6 row labels).
  tie::ADCurve add_curve;
  add_curve.add({0, 202, {}});
  for (int k : {2, 4, 8, 16}) {
    const std::set<std::string> s = {"ur_load", "ur_store",
                                     "add_" + std::to_string(k)};
    add_curve.add({catalog.set_area(s), 202.0 / k + 30, s});
  }

  // mpn_addmul_1: original + mac_1 with increasing adder support
  // (paper Fig. 6 column labels: mul_1, add_2 mul_1, add_4 mul_1, ...).
  tie::ADCurve mul_curve;
  mul_curve.add({0, 650, {}});
  int adder = 0;
  for (double cyc : {420.0, 330.0, 260.0, 210.0}) {
    std::set<std::string> s = {"ur_load", "ur_store", "mac_1"};
    if (adder) s.insert("add_" + std::to_string(adder));
    mul_curve.add({catalog.set_area(s), cyc, s});
    adder = adder == 0 ? 2 : adder * 2;
  }

  std::printf("\nRaw Cartesian product: %zu x %zu = %zu design points\n",
              add_curve.points().size(), mul_curve.points().size(),
              add_curve.points().size() * mul_curve.points().size());

  // Enumerate the grid the way Fig. 6 draws it, showing each entry's
  // dominance-reduced union.
  std::printf("\nGrid of reduced instruction unions (rows: add_n points; "
              "columns: addmul_1 points):\n");
  std::set<std::set<std::string>> distinct;
  for (const auto& pa : add_curve.points()) {
    for (const auto& pm : mul_curve.points()) {
      std::set<std::string> u = pa.instrs;
      u.insert(pm.instrs.begin(), pm.instrs.end());
      u = catalog.reduce(u);
      u.erase("ur_load");   // the paper ignores shared load/store instructions
      u.erase("ur_store");
      distinct.insert(u);
      std::string label;
      for (const auto& i : u) label += (label.empty() ? "" : "+") + i;
      if (label.empty()) label = "(none)";
      std::printf("  %-22s", label.c_str());
    }
    std::printf("\n");
  }
  std::printf("\nDistinct design points after sharing + dominance: %zu "
              "(paper: 25 -> 9)\n",
              distinct.size());

  tie::ADCurve::CombineStats stats;
  tie::ADCurve root = tie::ADCurve::combine(
      0.0, {{1.0, &add_curve}, {1.0, &mul_curve}}, catalog, &stats);
  std::printf("combine(): cartesian=%zu reduced=%zu\n", stats.cartesian_points,
              stats.reduced_points);
  root.pareto_prune();
  std::printf("after Pareto pruning at the root: %zu points\n",
              root.points().size());
  return 0;
}
