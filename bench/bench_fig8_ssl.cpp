// Fig. 8: estimated speedups for SSL transactions of 1KB..32KB, with the
// base-platform workload breakdown into public-key / symmetric / misc.
//
//   paper: ~21.8X for small (handshake-dominated) transactions, falling to
//   3.05X for large (bulk-dominated) transactions, because the MAC and
//   protocol "misc" work is not accelerated.
//
// Component costs are measured on the ISS (3DES record cipher, RSA-1024
// handshake); hashing/framing costs use the documented defaults in
// ssl/workload.h.
#include <cstdio>

#include "bench_util.h"
#include "kernels/des_kernel.h"
#include "kernels/modexp_kernel.h"
#include "kernels/sha1_kernel.h"
#include "mp/prime.h"
#include "ssl/workload.h"
#include "support/random.h"

int main() {
  using namespace wsp;
  bench::header("SSL transaction speedups vs. transaction size",
                "paper Fig. 8");

  Rng rng(21);
  const auto key = rsa::generate_key(1024, rng);
  const Mpz ct = random_below(key.n, rng);

  // --- measure component costs on both platforms ---------------------------
  ssl::PlatformCosts base = ssl::misc_cost_defaults();
  ssl::PlatformCosts opt = ssl::misc_cost_defaults();  // misc not accelerated

  {
    kernels::Machine m = kernels::make_modexp_machine();
    kernels::IssModexp mx(m);
    base.rsa_private_cycles =
        static_cast<double>(mx.powm_base(ct, key.d, key.n).cycles);
    base.rsa_public_cycles =
        static_cast<double>(mx.powm_base(ct, key.e, key.n).cycles);
  }
  {
    kernels::Machine m = kernels::make_modexp_machine(kernels::MpnTieConfig{8, 8});
    kernels::IssModexp mx(m);
    opt.rsa_private_cycles = static_cast<double>(mx.rsa_crt(ct, key, 5).cycles);
    opt.rsa_public_cycles =
        static_cast<double>(mx.powm_mont(ct, key.e, key.n, 2).cycles);
  }
  {
    const auto data = rng.bytes(1024);
    for (bool tie : {false, true}) {
      kernels::Machine m = kernels::make_des_machine(tie);
      kernels::DesKernel k(m, tie);
      k.set_3des_keys(rng.next_u64(), rng.next_u64(), rng.next_u64());
      std::uint64_t cycles = 0;
      k.encrypt_ecb_3des(data, &cycles);
      (tie ? opt : base).symmetric_cycles_per_byte =
          static_cast<double>(cycles) / static_cast<double>(data.size());
    }
  }

  std::printf("\nMeasured components (cycles):\n");
  std::printf("  RSA-1024 private op : base %12.0f   opt %12.0f\n",
              base.rsa_private_cycles, opt.rsa_private_cycles);
  std::printf("  RSA-1024 public op  : base %12.0f   opt %12.0f\n",
              base.rsa_public_cycles, opt.rsa_public_cycles);
  std::printf("  3DES (per byte)     : base %12.1f   opt %12.1f\n",
              base.symmetric_cycles_per_byte, opt.symmetric_cycles_per_byte);
  {
    kernels::Machine m = kernels::make_sha1_machine();
    kernels::Sha1Kernel sha(m);
    std::uint64_t cycles = 0;
    sha.hash(rng.bytes(4096), &cycles);
    std::printf("  SHA-1 kernel        : measured %.1f cycles/byte on the core\n",
                static_cast<double>(cycles) / 4096.0);
  }
  std::printf("  misc model (per byte): %.1f hash + %.1f framing/copying\n"
              "    (calibrated to the paper's Fig. 8 Misc share — the full\n"
              "    SSLv3 stack double-hashes and copies every byte; see\n"
              "    ssl/workload.h)\n",
              base.hash_cycles_per_byte, base.misc_cycles_per_byte);

  const std::vector<std::size_t> sizes = {1024, 2048, 4096, 8192, 16384, 32768};
  const auto rows = ssl::ssl_speedup_table(base, opt, sizes);
  std::printf("\n%s", ssl::format_speedup_table(rows).c_str());
  std::printf(
      "\npaper: 1KB -> ~21.8X (public-key dominated), 32KB -> 3.05X\n"
      "(unaccelerated misc/MAC work caps the large-transfer speedup)\n");
  return 0;
}
