// Host-library micro-benchmarks (google-benchmark): wall-clock sanity
// harness for the crypto substrate itself.  These are host-speed numbers,
// orthogonal to the ISS cycle counts the paper-reproduction benches report.
#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "crypto/des.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "mp/modexp.h"
#include "support/random.h"

namespace {

using namespace wsp;

void BM_DesEcb(benchmark::State& state) {
  Rng rng(1);
  const auto ks = des::key_schedule(rng.next_u64());
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(des::encrypt_ecb(data, ks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesEcb)->Arg(1024);

void BM_TripleDesBlock(benchmark::State& state) {
  Rng rng(2);
  const auto ks = des::triple_key_schedule(rng.next_u64(), rng.next_u64(),
                                           rng.next_u64());
  std::uint64_t block = rng.next_u64();
  for (auto _ : state) {
    block = des::encrypt_block_3des(block, ks);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_TripleDesBlock);

void BM_AesEcb(benchmark::State& state) {
  Rng rng(3);
  const auto ks = aes::key_schedule(rng.bytes(16));
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::encrypt_ecb(data, ks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesEcb)->Arg(1024);

void BM_Sha1(benchmark::State& state) {
  Rng rng(4);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096);

void BM_HmacSha1(benchmark::State& state) {
  Rng rng(5);
  const auto key = rng.bytes(20);
  const auto data = rng.bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha1(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_HmacSha1);

void BM_ModexpConfig(benchmark::State& state) {
  static const auto key = [] {
    Rng rng(6);
    return rsa::generate_key(512, rng);
  }();
  const auto configs = all_modexp_configs();
  ModexpConfig cfg;
  switch (state.range(0)) {
    case 0: cfg = {MulAlgo::kBasecaseDiv, 1, CrtMode::kNone, Radix::k32, Caching::kNone}; break;
    case 1: cfg = {MulAlgo::kBarrett, 4, CrtMode::kNone, Radix::k32, Caching::kContext}; break;
    case 2: cfg = {MulAlgo::kMontCIOS, 5, CrtMode::kGarner, Radix::k32, Caching::kFull}; break;
    default: cfg = ModexpConfig{}; break;
  }
  Rng rng(7);
  const Mpz c = Mpz::from_bytes_be(rng.bytes(60));
  ModexpEngine engine(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.powm_crt(c, key.d, key.crt));
  }
  state.SetLabel(cfg.name());
}
BENCHMARK(BM_ModexpConfig)->Arg(0)->Arg(1)->Arg(2);

void BM_RsaSignVerify(benchmark::State& state) {
  static const auto key = [] {
    Rng rng(8);
    return rsa::generate_key(512, rng);
  }();
  ModexpEngine engine{ModexpConfig{}};
  const std::vector<std::uint8_t> msg = {'b', 'e', 'n', 'c', 'h'};
  for (auto _ : state) {
    const auto sig = rsa::sign(msg, key, engine);
    benchmark::DoNotOptimize(rsa::verify(msg, sig, key.public_key(), engine));
  }
}
BENCHMARK(BM_RsaSignVerify);

}  // namespace

BENCHMARK_MAIN();
