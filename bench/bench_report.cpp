// Machine-readable bench/regression harness: re-runs the measurement cores
// of the paper-figure benchmarks (same seeds, same workloads) and serializes
// each one to BENCH_<name>.json (schema wsp-bench-v1, docs/observability.md)
// so every PR leaves a comparable perf trajectory behind.
//
// All "cycles" metrics are simulated-cycle counts or quantities derived
// from them — bit-deterministic for the fixed seeds — so two runs of
//   bench_report --outdir A && bench_report --outdir B
// produce JSON files whose "cycles" objects are byte-identical.  wall_ns is
// the only intentionally non-deterministic field, with one documented
// exception: the server section's batch/host_speedup_* metrics are measured
// wall-time ratios (the batched data plane's host-side payoff) and carry a
// wide tolerance in the gate table accordingly.
//
// Regression-gate mode (docs/benchmarks.md): `--check` re-measures every
// section and diffs it against the committed baseline BENCH_*.json under the
// per-metric tolerance table (support/benchdiff.h), exiting nonzero on any
// regression — >N% drop in throughput-per-Gcycle, >N% latency inflation, a
// nonzero chaos leak counter, a vanished metric, or a missing baseline.
// `--bless` rewrites the baselines from the current run to accept an
// intentional change.
//
// Flags:
//   --outdir DIR       where to write BENCH_*.json (default ".")
//   --only NAME        run a single section
//                      (fig1|table1|fig4|fig5|fig6|fig8|server|scenario)
//   --with-explore     also run the Sec. 4.3 sweep (adds ~30 s)
//   --threads N        worker threads for the explore sweep
//   --trace FILE       write a Chrome-trace of this run
//   --check            gate against the committed baselines; no files written
//   --bless            rewrite the baselines from this run (accepts changes)
//   --baseline-dir DIR baseline location (default: the committed bench/baselines)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "explore/space.h"
#include "scenario/compile.h"
#include "server_section.h"
#include "server/record.h"
#include "support/benchdiff.h"
#include "kernels/aes_kernel.h"
#include "kernels/des_kernel.h"
#include "kernels/modexp_kernel.h"
#include "kernels/mpn_kernels.h"
#include "kernels/sha1_kernel.h"
#include "macromodel/characterize.h"
#include "mp/prime.h"
#include "select/callgraph.h"
#include "ssl/workload.h"
#include "support/random.h"
#include "support/rss.h"
#include "support/threadpool.h"
#include "tie/adcurve.h"

namespace {

using namespace wsp;
using Clock = std::chrono::steady_clock;

// Where the server section drops its chaos replay trace; empty (the --check
// and --bless modes) suppresses emission.  File-scope because sections run
// through plain function pointers.
std::string g_replay_trace_dir;

std::uint64_t ns_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

// --- Fig. 1: baseline stream-protection cost -------------------------------
bench::BenchResult run_fig1() {
  WSP_TRACE_SPAN("bench", "fig1");
  bench::BenchResult r;
  r.name = "fig1";
  r.config = {{"seed", "61"}, {"bytes", "1024"}, {"cipher", "3DES-ECB"}};
  const auto t0 = Clock::now();
  Rng rng(61);
  kernels::Machine m = kernels::make_des_machine(false);
  kernels::DesKernel k(m, false);
  k.set_3des_keys(rng.next_u64(), rng.next_u64(), rng.next_u64());
  std::uint64_t cycles = 0;
  const auto data = rng.bytes(1024);
  k.encrypt_ecb_3des(data, &cycles);
  r.cycles["des3_base_1kb"] = static_cast<double>(cycles);
  r.cycles["des3_base_cpb"] = static_cast<double>(cycles) / 1024.0;
  r.cycles["stream_cpb"] = static_cast<double>(cycles) / 1024.0 +
                           ssl::misc_cost_defaults().hash_cycles_per_byte;
  r.wall_ns = ns_since(t0);
  return r;
}

// --- Table 1: per-algorithm base vs. optimized -----------------------------
bench::BenchResult run_table1() {
  WSP_TRACE_SPAN("bench", "table1");
  bench::BenchResult r;
  r.name = "table1";
  r.config = {{"sym_bytes", "1024"}, {"rsa_bits", "1024"},
              {"seeds", "11/12/13"}};
  const auto t0 = Clock::now();

  {  // DES / 3DES
    Rng rng(11);
    const auto data = rng.bytes(1024);
    for (bool triple : {false, true}) {
      Rng krng(11);
      (void)krng.bytes(1024);  // match bench_table1's stream position
      for (bool tie : {false, true}) {
        kernels::Machine m = kernels::make_des_machine(tie);
        kernels::DesKernel k(m, tie);
        std::uint64_t cycles = 0;
        if (triple) {
          k.set_3des_keys(krng.next_u64(), krng.next_u64(), krng.next_u64());
          k.encrypt_ecb_3des(data, &cycles);
        } else {
          k.set_key(0x0123456789abcdefull);
          k.encrypt_ecb(data, &cycles);
        }
        r.cycles[std::string(triple ? "des3" : "des") +
                 (tie ? "_opt" : "_base")] = static_cast<double>(cycles);
      }
    }
  }
  {  // AES
    Rng rng(12);
    const auto data = rng.bytes(1024);
    const auto key = rng.bytes(16);
    for (auto variant : {kernels::AesKernelVariant::kBase,
                         kernels::AesKernelVariant::kTiePartial}) {
      kernels::Machine m = kernels::make_aes_machine(variant);
      kernels::AesKernel k(m, variant);
      k.set_key(key);
      std::uint64_t cycles = 0;
      k.encrypt_ecb(data, &cycles);
      r.cycles[variant == kernels::AesKernelVariant::kBase ? "aes_base"
                                                           : "aes_opt"] =
          static_cast<double>(cycles);
    }
  }
  {  // RSA-1024 encrypt/decrypt
    Rng rng(13);
    const auto key = rsa::generate_key(1024, rng);
    const Mpz msg = random_below(key.n, rng);
    kernels::Machine base_m = kernels::make_modexp_machine();
    kernels::Machine opt_m =
        kernels::make_modexp_machine(kernels::MpnTieConfig{8, 8});
    kernels::IssModexp base_mx(base_m), opt_mx(opt_m);
    const auto enc_base = base_mx.powm_base(msg, key.e, key.n);
    const auto enc_opt = opt_mx.powm_mont(msg, key.e, key.n, 2);
    const auto dec_base = base_mx.powm_base(enc_base.result, key.d, key.n);
    const auto dec_opt = opt_mx.rsa_crt(enc_base.result, key, 5);
    r.cycles["rsa_enc_base"] = static_cast<double>(enc_base.cycles);
    r.cycles["rsa_enc_opt"] = static_cast<double>(enc_opt.cycles);
    r.cycles["rsa_dec_base"] = static_cast<double>(dec_base.cycles);
    r.cycles["rsa_dec_opt"] = static_cast<double>(dec_opt.cycles);
  }
  r.wall_ns = ns_since(t0);
  return r;
}

// --- Fig. 4: weighted call graph of an optimized modexp --------------------
bench::BenchResult run_fig4() {
  WSP_TRACE_SPAN("bench", "fig4");
  bench::BenchResult r;
  r.name = "fig4";
  r.config = {{"seed", "41"}, {"rsa_bits", "512"}, {"window", "4"}};
  const auto t0 = Clock::now();
  Rng rng(41);
  const auto key = rsa::generate_key(512, rng);
  const Mpz base = random_below(key.n, rng);
  kernels::Machine machine = kernels::make_modexp_machine();
  kernels::IssModexp mx(machine);
  machine.cpu().reset_stats();
  const auto res = mx.powm_mont(base, key.d, key.n, 4);
  r.cycles["workload_total"] = static_cast<double>(res.cycles);
  for (const auto& [name, stats] : machine.cpu().profiler().functions()) {
    r.cycles["calls/" + name] = static_cast<double>(stats.calls);
    r.cycles["self/" + name] = static_cast<double>(stats.self_cycles);
  }
  r.wall_ns = ns_since(t0);
  return r;
}

// --- Fig. 5: measured A-D curves -------------------------------------------
bench::BenchResult run_fig5() {
  WSP_TRACE_SPAN("bench", "fig5");
  bench::BenchResult r;
  r.name = "fig5";
  r.config = {{"seeds", "31/32"}, {"limbs", "32"}};
  const auto t0 = Clock::now();
  const std::size_t n = 32;
  {
    Rng rng(31);
    std::vector<std::uint32_t> a(n), b(n), out;
    for (auto& x : a) x = rng.next_u32();
    for (auto& x : b) x = rng.next_u32();
    for (int width : {0, 2, 4, 8, 16}) {
      kernels::Machine m =
          kernels::make_mpn_machine(kernels::MpnTieConfig{width, 0});
      const auto res = kernels::run_add_n(m, out, a, b);
      r.cycles["add_n/w" + std::to_string(width)] =
          static_cast<double>(res.cycles);
    }
  }
  {
    Rng rng(32);
    std::vector<std::uint32_t> a(n);
    for (auto& x : a) x = rng.next_u32();
    for (int width : {0, 1, 2, 4}) {
      kernels::Machine m =
          kernels::make_mpn_machine(kernels::MpnTieConfig{0, width});
      std::vector<std::uint32_t> out(n, 0x5a5a5a5a);
      const auto res = kernels::run_addmul_1(m, out, a, 0x9e3779b9u);
      r.cycles["addmul_1/w" + std::to_string(width)] =
          static_cast<double>(res.cycles);
    }
  }
  r.wall_ns = ns_since(t0);
  return r;
}

// --- Fig. 6: design-space combination collapse -----------------------------
bench::BenchResult run_fig6() {
  WSP_TRACE_SPAN("bench", "fig6");
  bench::BenchResult r;
  r.name = "fig6";
  r.config = {{"example", "paper-fig6"}};
  const auto t0 = Clock::now();
  const auto catalog = tie::default_catalog();
  tie::ADCurve add_curve;
  add_curve.add({0, 202, {}});
  for (int k : {2, 4, 8, 16}) {
    const std::set<std::string> s = {"ur_load", "ur_store",
                                     "add_" + std::to_string(k)};
    add_curve.add({catalog.set_area(s), 202.0 / k + 30, s});
  }
  tie::ADCurve mul_curve;
  mul_curve.add({0, 650, {}});
  int adder = 0;
  for (double cyc : {420.0, 330.0, 260.0, 210.0}) {
    std::set<std::string> s = {"ur_load", "ur_store", "mac_1"};
    if (adder) s.insert("add_" + std::to_string(adder));
    mul_curve.add({catalog.set_area(s), cyc, s});
    adder = adder == 0 ? 2 : adder * 2;
  }
  tie::ADCurve::CombineStats stats;
  tie::ADCurve root =
      tie::ADCurve::combine(0.0, {{1.0, &add_curve}, {1.0, &mul_curve}},
                            catalog, &stats);
  r.cycles["cartesian_points"] = static_cast<double>(stats.cartesian_points);
  r.cycles["reduced_points"] = static_cast<double>(stats.reduced_points);
  root.pareto_prune();
  r.cycles["pareto_points"] = static_cast<double>(root.points().size());
  r.wall_ns = ns_since(t0);
  return r;
}

// --- Fig. 8: SSL transaction speedups --------------------------------------
bench::BenchResult run_fig8() {
  WSP_TRACE_SPAN("bench", "fig8");
  bench::BenchResult r;
  r.name = "fig8";
  r.config = {{"seed", "21"}, {"rsa_bits", "1024"}, {"record_cipher", "3DES-CBC"}};
  const auto t0 = Clock::now();
  Rng rng(21);
  const auto key = rsa::generate_key(1024, rng);
  const Mpz ct = random_below(key.n, rng);

  ssl::PlatformCosts base = ssl::misc_cost_defaults();
  ssl::PlatformCosts opt = ssl::misc_cost_defaults();
  {
    kernels::Machine m = kernels::make_modexp_machine();
    kernels::IssModexp mx(m);
    base.rsa_private_cycles =
        static_cast<double>(mx.powm_base(ct, key.d, key.n).cycles);
    base.rsa_public_cycles =
        static_cast<double>(mx.powm_base(ct, key.e, key.n).cycles);
  }
  {
    kernels::Machine m =
        kernels::make_modexp_machine(kernels::MpnTieConfig{8, 8});
    kernels::IssModexp mx(m);
    opt.rsa_private_cycles = static_cast<double>(mx.rsa_crt(ct, key, 5).cycles);
    opt.rsa_public_cycles =
        static_cast<double>(mx.powm_mont(ct, key.e, key.n, 2).cycles);
  }
  {
    const auto data = rng.bytes(1024);
    for (bool tie : {false, true}) {
      kernels::Machine m = kernels::make_des_machine(tie);
      kernels::DesKernel k(m, tie);
      k.set_3des_keys(rng.next_u64(), rng.next_u64(), rng.next_u64());
      std::uint64_t cycles = 0;
      k.encrypt_ecb_3des(data, &cycles);
      (tie ? opt : base).symmetric_cycles_per_byte =
          static_cast<double>(cycles) / static_cast<double>(data.size());
    }
  }
  r.cycles["rsa_private_base"] = base.rsa_private_cycles;
  r.cycles["rsa_private_opt"] = opt.rsa_private_cycles;
  r.cycles["rsa_public_base"] = base.rsa_public_cycles;
  r.cycles["rsa_public_opt"] = opt.rsa_public_cycles;
  r.cycles["sym_cpb_base"] = base.symmetric_cycles_per_byte;
  r.cycles["sym_cpb_opt"] = opt.symmetric_cycles_per_byte;
  const auto rows =
      ssl::ssl_speedup_table(base, opt, {1024, 4096, 32768});
  for (const auto& row : rows) {
    r.cycles["speedup_" + std::to_string(row.bytes)] = row.speedup;
  }
  r.wall_ns = ns_since(t0);
  return r;
}

// --- Secure-session server: Fig. 8 transactions under load ----------------
bench::BenchResult run_server() {
  WSP_TRACE_SPAN("bench", "server");
  bench::BenchResult r;
  r.name = "server";
  r.config = {{"seed", "71"}, {"sessions", "64"}, {"shards", "4"},
              {"rsa_bits", "512"}, {"scale_sessions", "100000"}};
  const auto t0 = Clock::now();
  server::EngineConfig cfg;
  cfg.threads = 2;  // metrics are thread-count invariant (docs/server.md)
  cfg.shards = 4;
  {
    server::Engine engine(cfg);
    bench::append_server_metrics(r, "steady/",
                                 engine.run(bench::steady_scenario(71, 64)));
  }
  {
    server::EngineConfig over = cfg;
    over.queue_capacity = 8;  // tight waiting room: overload must shed load
    server::Engine engine(over);
    bench::append_server_metrics(r, "overload/",
                                 engine.run(bench::overload_scenario(72, 96)));
  }
  {
    // Chaos run: deterministic fault injection + recovery (docs/faults.md).
    // Recorded through the replay layer so every bench emission leaves a
    // bit-exact reproduction trace next to the JSON (docs/benchmarks.md).
    server::EngineConfig chaos = cfg;
    chaos.faults = bench::chaos_fault_config();
    chaos.degrade_depth = 12;
    const server::RunRecord record =
        server::record_run(chaos, bench::chaos_scenario(74, 64));
    bench::append_server_metrics(r, "chaos/", record.report);
    if (!g_replay_trace_dir.empty()) {
      const std::string path = g_replay_trace_dir + "/REPLAY_server_chaos.wspr";
      if (server::write_run_record_file(record, path)) {
        std::printf(" [replay trace %s]", path.c_str());
      } else {
        std::fprintf(stderr, "FAILED to write %s\n", path.c_str());
      }
    }
  }
  {
    // Scale run: 100k resumed sessions through the slab table and MPSC
    // rings (docs/server.md §scale).  Gates memory_per_session (structural
    // bytes per live session) and data-plane throughput; shard count is
    // pinned by scale_config because determinism is per shard count.
    server::Engine engine(bench::scale_config(cfg.threads));
    bench::append_server_metrics(r, "scale/",
                                 engine.run(bench::scale_scenario(75, 100000)));
    // Actual process RSS next to the modeled memory_per_session: info
    // direction (host-dependent), 0 when /proc/self/statm is unavailable.
    r.cycles["scale/rss_mib"] =
        static_cast<double>(support::resident_set_bytes()) / (1024.0 * 1024.0);
  }
  {
    // Crash-fault tolerance (docs/recovery.md): the chaos mix again, but
    // with periodic checkpoints and a scheduled process kill.  The torn
    // trace is scanned and resumed at OTHER thread counts; the resumed
    // report must be bit-identical to an uninterrupted reference run.
    // resume_mismatch and torn_resume_mismatch are gated exactly zero —
    // torn additionally tears bytes off the trace tail mid-chunk, forcing
    // the scanner back to the previous checkpoint.
    server::EngineConfig chaos = cfg;
    chaos.faults = bench::chaos_fault_config();
    chaos.degrade_depth = 12;
    const auto scenario = bench::chaos_scenario(77, 64);
    server::Engine ref_engine(chaos);
    const server::RunReport ref = ref_engine.run(scenario);

    server::EngineConfig crashed = chaos;
    crashed.checkpoint_every = ref.makespan_cycles / 7.0;
    crashed.faults.crash_at_cycles = ref.makespan_cycles * 0.6;
    server::RunRecorder recorder(crashed, scenario);
    bool crash_seen = false;
    try {
      server::Engine engine(recorder.engine_config());
      recorder.finish(engine.run(scenario));
    } catch (const server::CrashFault&) {
      crash_seen = true;
      recorder.crash();
    }
    double resume_mismatch = 1.0;
    double torn_mismatch = 1.0;
    server::RunReport resumed;  // zeros if the crash machinery failed
    if (crash_seen && recorder.checkpoints() > 0) {
      const auto scan = server::scan_trace_for_resume(recorder.bytes());
      const auto res = server::resume_run(scan, 8);
      resumed = res.report;
      resume_mismatch =
          bench::reports_deterministically_equal(ref, res.report) ? 0.0 : 1.0;
      // Torn write: truncate into the last checkpoint chunk's header, so
      // the scan must reject it and fall back one checkpoint further.
      std::vector<std::uint8_t> torn(recorder.bytes());
      torn.resize(recorder.checkpoint_offsets().back() + 9);
      const auto torn_scan = server::scan_trace_for_resume(torn);
      const auto torn_res = server::resume_run(torn_scan, 1);
      torn_mismatch =
          (!torn_scan.tear.empty() &&
           torn_scan.checkpoints.size() + 1 == recorder.checkpoints() &&
           bench::reports_deterministically_equal(ref, torn_res.report))
              ? 0.0
              : 1.0;
    }
    bench::append_server_metrics(r, "crash/", resumed);
    r.cycles["crash/checkpoints"] = static_cast<double>(recorder.checkpoints());
    r.cycles["crash/resume_mismatch"] = resume_mismatch;
    r.cycles["crash/torn_resume_mismatch"] = torn_mismatch;
  }
  {
    // Batched data plane (docs/server.md §batching): the same CBC-heavy
    // traffic at batch_lanes 1/4/8.  Deterministic metrics must be
    // bit-identical across lane widths — lanes_mismatch counts divergences
    // and is gated exactly-zero — while host_speedup_* are measured
    // wall-time ratios (best of 2 per lane width) gated with a wide
    // tolerance: the multi-buffer kernels must keep paying for themselves.
    const auto scenario = bench::batch_scenario(76, 96);
    const unsigned lane_pts[3] = {1, 4, 8};
    server::RunReport reps[3];
    for (int i = 0; i < 3; ++i) {
      server::Engine engine(bench::batch_config(cfg.threads, lane_pts[i]));
      reps[i] = engine.run(scenario);
      server::Engine again(bench::batch_config(cfg.threads, lane_pts[i]));
      const auto rerun = again.run(scenario);
      if (rerun.wall_ns < reps[i].wall_ns) reps[i] = rerun;
    }
    double mismatches = 0.0;
    for (int i = 1; i < 3; ++i) {
      if (!bench::reports_deterministically_equal(reps[0], reps[i])) {
        mismatches += 1.0;
      }
    }
    bench::append_server_metrics(r, "batch/", reps[2]);
    r.cycles["batch/lanes_mismatch"] = mismatches;
    r.cycles["batch/host_speedup_4v1"] = static_cast<double>(reps[0].wall_ns) /
                                         static_cast<double>(reps[1].wall_ns);
    r.cycles["batch/host_speedup_8v1"] = static_cast<double>(reps[0].wall_ns) /
                                         static_cast<double>(reps[2].wall_ns);
  }
  r.wall_ns = ns_since(t0);
  r.threads = cfg.threads;
  return r;
}

// --- Scenario compiler: .wsp traffic programs (docs/scenarios.md) ----------
//
// The sources are embedded so the section is hermetic: --check must gate the
// compiler + multi-phase engine without depending on repo-relative paths.
bench::BenchResult run_scenario_section() {
  WSP_TRACE_SPAN("bench", "scenario");
  bench::BenchResult r;
  r.name = "scenario";
  r.config = {{"seed", "71"}, {"shards", "4"}, {"rsa_bits", "512"}};
  const auto t0 = Clock::now();
  server::EngineConfig cfg;
  cfg.threads = 2;  // metrics are thread-count invariant (docs/server.md)
  cfg.shards = 4;

  {
    // Legacy-equivalence gate: a one-phase .wsp spelling of the Fig. 8
    // steady scenario must produce a report IDENTICAL to the flat code
    // path — same Rng consumption, same means, same everything.  Gated
    // exact-zero via */equiv_mismatch.
    static const char* kFig8Wsp =
        "scenario \"fig8\" {\n"
        "  seed 71\n"
        "  record_bytes 1024\n"
        "  phase \"steady\" { sessions 64, arrivals open, load 0.6 }\n"
        "}\n";
    const auto compiled = scenario::compile(kFig8Wsp, "<fig8>");
    server::Engine wsp_engine(cfg);
    const auto wsp_rep = wsp_engine.run(compiled.scenario);
    server::Engine flat_engine(cfg);
    const auto flat_rep = flat_engine.run(bench::steady_scenario(71, 64));
    bench::append_server_metrics(r, "fig8/", wsp_rep);
    r.cycles["fig8/equiv_mismatch"] =
        bench::reports_deterministically_equal(wsp_rep, flat_rep) ? 0.0 : 1.0;
  }
  {
    // Multi-phase program under load: calm -> overload spike of resumed
    // sessions -> fault-overlay storm.  The leak gate (*/leaked, exact
    // zero) covers phase transitions: a session arriving in one phase and
    // finishing in the next must not be lost by the closed-out phase.
    static const char* kFlashWsp =
        "scenario \"flash\" {\n"
        "  seed 74\n"
        "  defaults { arrivals open, mix { aes128: 2, rc4: 1 } }\n"
        "  phase \"calm\"  { sessions 32, load 0.4, sizes { 4096: 1 } }\n"
        "  phase \"spike\" { sessions 96, load 3.0, resume 0.75,\n"
        "                    sizes { 1024: 3, 2048: 1 } }\n"
        "  phase \"storm\" { sessions 32, load 0.8, resume 0.5,\n"
        "                    sizes { 4096: 1, 8192: 1 },\n"
        "                    faults { handshake_failure_rate 0.2,\n"
        "                             wire_flip_rate 0.02,\n"
        "                             handshake_retry_budget 3,\n"
        "                             record_retry_budget 2 } }\n"
        "}\n";
    const auto compiled = scenario::compile(kFlashWsp, "<flash>");
    const server::RunRecord record =
        server::record_run(cfg, compiled.scenario, compiled.source);
    bench::append_server_metrics(r, "flash/", record.report);
    if (!g_replay_trace_dir.empty()) {
      const std::string path =
          g_replay_trace_dir + "/REPLAY_scenario_flash.wspr";
      if (server::write_run_record_file(record, path)) {
        std::printf(" [replay trace %s]", path.c_str());
      } else {
        std::fprintf(stderr, "FAILED to write %s\n", path.c_str());
      }
    }
  }
  {
    // Closed-loop population handing over to an open-loop burst: gates the
    // phase-entry reseeding of the closed-loop heap and the open-clock
    // monotonicity across models.
    static const char* kMixedWsp =
        "scenario \"mixed\" {\n"
        "  seed 75\n"
        "  record_bytes 512\n"
        "  phase \"devices\"  { sessions 24, arrivals closed, users 6,\n"
        "                       think 50000, mix { rc4: 1 },\n"
        "                       sizes { 1024: 1 } }\n"
        "  phase \"browsers\" { sessions 40, arrivals open, load 0.7,\n"
        "                       resume 0.5, mix { aes128: 1 },\n"
        "                       sizes { 2048: 1, 8192: 1 } }\n"
        "}\n";
    const auto compiled = scenario::compile(kMixedWsp, "<mixed>");
    server::Engine engine(cfg);
    bench::append_server_metrics(r, "mixed/", engine.run(compiled.scenario));
  }
  r.wall_ns = ns_since(t0);
  r.threads = cfg.threads;
  return r;
}

// --- Sec. 4.3 sweep (optional: the slow one) -------------------------------
bench::BenchResult run_explore(unsigned threads) {
  WSP_TRACE_SPAN("bench", "sec43_explore");
  bench::BenchResult r;
  r.name = "sec43_explore";
  r.threads = threads;
  r.config = {{"seed", "51"}, {"rsa_bits", "1024"}, {"repetitions", "2"}};
  const auto t0 = Clock::now();
  kernels::Machine machine = kernels::make_modexp_machine();
  kernels::Machine machine16 = kernels::make_mpn16_machine();
  const auto models = macromodel::characterize_mpn_full(machine, machine16);
  Rng rng(51);
  auto workload = explore::make_rsa_workload(1024, rng);
  workload.repetitions = 2;
  const auto report =
      explore::explore_modexp_space(workload, models, all_modexp_configs(),
                                    threads);
  r.cycles["configs"] = static_cast<double>(report.configs);
  r.cycles["best_avg_cycles"] = report.ranked.front().estimate.avg_cycles;
  r.cycles["worst_avg_cycles"] = report.ranked.back().estimate.avg_cycles;
  r.config["best"] = report.ranked.front().config.name();
  r.wall_ns = ns_since(t0);
  return r;
}

// Gates one fresh result against `<baseline_dir>/BENCH_<name>.json`.
// Returns true when the gate passes.
bool check_section(const bench::BenchResult& result,
                   const std::string& baseline_dir) {
  const std::string path = baseline_dir + "/BENCH_" + result.name + ".json";
  json::Value baseline;
  try {
    baseline = bench::load_json_file(path);
  } catch (const std::exception& e) {
    std::printf("  %-14s FAIL: no baseline (%s)\n", result.name.c_str(),
                e.what());
    std::printf("    run with --bless to establish one\n");
    return false;
  }
  bench::CheckReport report;
  try {
    report = bench::check_bench(baseline, bench::to_json(result));
  } catch (const std::exception& e) {
    std::printf("  %-14s FAIL: %s\n", result.name.c_str(), e.what());
    return false;
  }
  std::printf("  %-14s %s\n", result.name.c_str(),
              report.ok() ? "ok" : "REGRESSION");
  const std::string detail = bench::format_check_report(report);
  if (!report.ok() || !report.drifts.empty() || !report.added.empty()) {
    std::fputs(detail.c_str(), stdout);
  }
  return report.ok();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsp;
  bench::header("Machine-readable benchmark report (BENCH_*.json)",
                "all paper figures; schema wsp-bench-v1");
  const std::string outdir = bench::parse_string_flag(argc, argv, "--outdir", ".");
  const std::string only = bench::parse_string_flag(argc, argv, "--only");
  const bool with_explore = bench::parse_bool_flag(argc, argv, "--with-explore");
  const bool check = bench::parse_bool_flag(argc, argv, "--check");
  const bool bless = bench::parse_bool_flag(argc, argv, "--bless");
#ifndef WSP_BASELINE_DIR
#define WSP_BASELINE_DIR "bench/baselines"
#endif
  const std::string baseline_dir =
      bench::parse_string_flag(argc, argv, "--baseline-dir", WSP_BASELINE_DIR);
  const unsigned threads =
      bench::parse_threads(argc, argv, ThreadPool::hardware_threads());
  const std::string trace_path = bench::maybe_start_trace(argc, argv);
  // Plain emission leaves a replay trace next to the JSON; the gate modes
  // only measure and compare.
  g_replay_trace_dir = (check || bless) ? "" : outdir;

  struct Section {
    const char* name;
    bench::BenchResult (*run)();
  };
  const Section sections[] = {
      {"fig1", run_fig1},   {"table1", run_table1}, {"fig4", run_fig4},
      {"fig5", run_fig5},   {"fig6", run_fig6},     {"fig8", run_fig8},
      {"server", run_server}, {"scenario", run_scenario_section},
  };

  std::vector<bench::BenchResult> results;
  for (const Section& s : sections) {
    if (!only.empty() && only != s.name) continue;
    std::printf("  running %-14s ...", s.name);
    std::fflush(stdout);
    results.push_back(s.run());
    std::printf(" %8.1f ms, %2zu metrics\n",
                static_cast<double>(results.back().wall_ns) / 1e6,
                results.back().cycles.size());
  }
  if (with_explore && (only.empty() || only == "sec43_explore")) {
    std::printf("  running %-14s ...", "sec43_explore");
    std::fflush(stdout);
    results.push_back(run_explore(threads));
    std::printf(" %8.1f ms, %2zu metrics\n",
                static_cast<double>(results.back().wall_ns) / 1e6,
                results.back().cycles.size());
  }

  int failures = 0;
  if (bless) {
    // Accept the current numbers as the new perf-trajectory baseline.
    for (const auto& r : results) {
      const std::string path = bench::write_bench_json(r, baseline_dir);
      if (path.empty()) {
        std::fprintf(stderr, "FAILED to bless %s/BENCH_%s.json\n",
                     baseline_dir.c_str(), r.name.c_str());
        ++failures;
      } else {
        std::printf("  blessed %s\n", path.c_str());
      }
    }
  } else if (check) {
    std::printf("\ngating against %s:\n", baseline_dir.c_str());
    for (const auto& r : results) {
      if (!check_section(r, baseline_dir)) ++failures;
    }
    if (failures > 0) {
      std::fprintf(stderr,
                   "\nbench_report --check: %d section(s) regressed; run "
                   "`bench_report --bless` to accept intentional changes\n",
                   failures);
    }
  } else {
    for (const auto& r : results) {
      const std::string path = bench::write_bench_json(r, outdir);
      if (path.empty()) {
        std::fprintf(stderr, "FAILED to write BENCH_%s.json\n", r.name.c_str());
        ++failures;
      } else {
        std::printf("  wrote %s\n", path.c_str());
      }
    }
  }
  bench::maybe_finish_trace(trace_path);
  return failures == 0 ? 0 : 1;
}
