// Sec. 4.3: algorithm design-space exploration.
//
//   paper: 450 candidates evaluated by macro-models in < 4h40m vs. only 6
//   candidates in ~66h of ISS time; macro-model estimation on average 1407x
//   faster than ISS, with 11.8% mean absolute error and correct ranking.
//
// Here: characterize the mpn routines on the ISS, estimate all 450
// configurations of a 1024-bit RSA private operation natively, cross-check
// six ISS-implementable candidates, and report accuracy + the wall-clock
// speedup factor of estimation over simulation.
#include <cstdio>

#include "bench_util.h"
#include "explore/space.h"
#include "macromodel/characterize.h"
#include "support/threadpool.h"

int main(int argc, char** argv) {
  using namespace wsp;
  bench::header("Algorithm design-space exploration via performance macro-models",
                "paper Sec. 4.3");
  const unsigned threads =
      bench::parse_threads(argc, argv, ThreadPool::hardware_threads());

  // Phase 1: one-time characterization on the cycle-accurate ISS, with
  // measured radix-16 models (mpn16 kernels) for the radix axis.
  kernels::Machine machine = kernels::make_modexp_machine();
  kernels::Machine machine16 = kernels::make_mpn16_machine();
  const auto models = macromodel::characterize_mpn_full(machine, machine16);
  std::printf("\nCharacterized macro-models (ISS + least-squares):\n%s",
              models.describe().c_str());

  // Phase 2: native estimation of the full 450-configuration space —
  // serially, then across the thread pool, checking the determinism
  // contract (identical ranking for any thread count).
  Rng rng(51);
  auto workload = explore::make_rsa_workload(1024, rng);
  workload.repetitions = 2;
  const auto serial_report =
      explore::explore_modexp_space(workload, models, all_modexp_configs(), 1);
  const auto report = explore::explore_modexp_space(
      workload, models, all_modexp_configs(), threads);
  std::printf("\nExplored %zu configurations (native, macro-model based):\n",
              report.configs);
  std::printf("  serial:               %.3f s\n", serial_report.wall_seconds);
  std::printf("  parallel (%2u threads): %.3f s  (%.2fx speedup)\n",
              report.threads, report.wall_seconds,
              report.wall_seconds > 0
                  ? serial_report.wall_seconds / report.wall_seconds
                  : 0.0);
  bool identical = serial_report.ranked.size() == report.ranked.size();
  for (std::size_t i = 0; identical && i < report.ranked.size(); ++i) {
    identical = serial_report.ranked[i].config.name() ==
                    report.ranked[i].config.name() &&
                serial_report.ranked[i].estimate.avg_cycles ==
                    report.ranked[i].estimate.avg_cycles;
  }
  std::printf("  ranking identical to serial: %s\n", identical ? "yes" : "NO");
  std::printf("\nTop 5 configurations (1024-bit RSA private op):\n");
  for (std::size_t i = 0; i < 5 && i < report.ranked.size(); ++i) {
    const auto& ce = report.ranked[i];
    std::printf("  %zu. %-55s %12.0f cycles\n", i + 1, ce.config.name().c_str(),
                ce.estimate.avg_cycles);
  }
  std::printf("\nBottom 3 configurations:\n");
  for (std::size_t i = report.ranked.size() - 3; i < report.ranked.size(); ++i) {
    const auto& ce = report.ranked[i];
    std::printf("  %zu. %-55s %12.0f cycles\n", i + 1, ce.config.name().c_str(),
                ce.estimate.avg_cycles);
  }

  // Axis ablations: marginal effect of each design-space dimension.
  std::printf("\nAxis ablation (median estimate with the axis pinned):\n");
  auto median_for = [&](auto pred) {
    std::vector<double> vals;
    for (const auto& ce : report.ranked) {
      if (pred(ce.config)) vals.push_back(ce.estimate.avg_cycles);
    }
    std::sort(vals.begin(), vals.end());
    return vals[vals.size() / 2];
  };
  std::printf("  CRT: none %.3e | textbook %.3e | garner %.3e\n",
              median_for([](const ModexpConfig& c) { return c.crt == CrtMode::kNone; }),
              median_for([](const ModexpConfig& c) { return c.crt == CrtMode::kTextbook; }),
              median_for([](const ModexpConfig& c) { return c.crt == CrtMode::kGarner; }));
  std::printf("  radix: 16-bit %.3e | 32-bit %.3e\n",
              median_for([](const ModexpConfig& c) { return c.radix == Radix::k16; }),
              median_for([](const ModexpConfig& c) { return c.radix == Radix::k32; }));
  std::printf("  mulalgo: div %.3e | barrett %.3e | mont-cios %.3e\n",
              median_for([](const ModexpConfig& c) { return c.mul == MulAlgo::kBasecaseDiv; }),
              median_for([](const ModexpConfig& c) { return c.mul == MulAlgo::kBarrett; }),
              median_for([](const ModexpConfig& c) { return c.mul == MulAlgo::kMontCIOS; }));
  std::printf("  window: w=1 %.3e | w=5 %.3e\n",
              median_for([](const ModexpConfig& c) { return c.window_bits == 1; }),
              median_for([](const ModexpConfig& c) { return c.window_bits == 5; }));

  // Phase 3: cross-validation against the ISS (the paper's six candidates).
  const auto validation = explore::validate_estimates(machine, workload, models);
  std::printf("\nMacro-model estimates vs. cycle-accurate ISS:\n");
  std::printf("  %-18s %14s %14s %8s\n", "candidate", "estimated", "ISS", "error");
  for (const auto& p : validation.points) {
    std::printf("  %-18s %14.0f %14.0f %7.1f%%\n", p.name.c_str(),
                p.estimated_cycles, p.measured_cycles, p.error_pct);
  }
  std::printf("\nmean absolute error: %.1f%%   (paper: 11.8%%)\n",
              validation.mean_abs_error_pct);
  std::printf("estimation wall time: %.3f s; ISS wall time: %.3f s\n",
              validation.estimate_wall_seconds, validation.iss_wall_seconds);
  std::printf("macro-model estimation is %.0fx faster than ISS simulation "
              "(paper: 1407x on a 440 MHz Ultra 10)\n",
              validation.speedup_factor);
  return 0;
}
