// End-to-end global custom-instruction selection (paper Sec. 3.4) with an
// area-budget ablation: measure leaf A-D curves on the ISS, build the
// Montgomery-multiply call graph from profiler data, propagate curves
// bottom-up, and pick configurations under several area constraints.
#include <cstdio>

#include "bench_util.h"
#include "kernels/modexp_kernel.h"
#include "mp/prime.h"
#include "select/select.h"
#include "support/random.h"

namespace {

using namespace wsp;

tie::ADCurve measure_curve(const char* routine,
                           const std::vector<kernels::MpnTieConfig>& configs,
                           const std::vector<std::set<std::string>>& instr_sets) {
  Rng rng(71);
  const std::size_t n = 16;  // 512-bit (CRT half of RSA-1024)
  std::vector<std::uint32_t> a(n), b(n);
  for (auto& x : a) x = rng.next_u32();
  for (auto& x : b) x = rng.next_u32();
  const auto catalog = tie::default_catalog();
  tie::ADCurve curve;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    kernels::Machine m = kernels::make_mpn_machine(configs[i]);
    std::uint64_t cycles = 0;
    if (std::string(routine) == "mpn_add_n") {
      std::vector<std::uint32_t> r;
      cycles = kernels::run_add_n(m, r, a, b).cycles;
    } else if (std::string(routine) == "mpn_sub_n") {
      std::vector<std::uint32_t> r;
      cycles = kernels::run_sub_n(m, r, a, b).cycles;
    } else {
      std::vector<std::uint32_t> r(n, 7);
      cycles = kernels::run_addmul_1(m, r, a, 0x12345671u).cycles;
    }
    curve.add({catalog.set_area(instr_sets[i]), static_cast<double>(cycles),
               instr_sets[i]});
  }
  return curve;
}

}  // namespace

int main() {
  using namespace wsp;
  bench::header("Global custom-instruction selection under area constraints",
                "paper Sec. 3.4 methodology (design-choice ablation)");

  // --- leaf A-D curves (real ISS measurements) ------------------------------
  std::map<std::string, tie::ADCurve> leaf_curves;
  {
    std::vector<kernels::MpnTieConfig> cfgs = {{0, 0}, {2, 0}, {4, 0}, {8, 0}, {16, 0}};
    std::vector<std::set<std::string>> sets = {
        {},
        {"ur_load", "ur_store", "add_2"},
        {"ur_load", "ur_store", "add_4"},
        {"ur_load", "ur_store", "add_8"},
        {"ur_load", "ur_store", "add_16"}};
    leaf_curves["mpn_add_n"] = measure_curve("mpn_add_n", cfgs, sets);
    std::vector<std::set<std::string>> ssets = {
        {},
        {"ur_load", "ur_store", "sub_2"},
        {"ur_load", "ur_store", "sub_4"},
        {"ur_load", "ur_store", "sub_8"},
        {"ur_load", "ur_store", "sub_16"}};
    leaf_curves["mpn_sub_n"] = measure_curve("mpn_sub_n", cfgs, ssets);
  }
  {
    std::vector<kernels::MpnTieConfig> cfgs = {{0, 0}, {0, 1}, {0, 2}, {0, 4}, {0, 8}};
    std::vector<std::set<std::string>> sets = {
        {},
        {"ur_load", "ur_store", "mac_1"},
        {"ur_load", "ur_store", "mac_2"},
        {"ur_load", "ur_store", "mac_4"},
        {"ur_load", "ur_store", "mac_8"}};
    leaf_curves["mpn_addmul_1"] = measure_curve("mpn_addmul_1", cfgs, sets);
  }

  // --- call graph from a real profile ---------------------------------------
  Rng rng(72);
  Mpz mod = random_bits(512, rng);
  if (mod.is_even()) mod = mod + Mpz(1);
  kernels::Machine machine = kernels::make_modexp_machine();
  kernels::IssModexp mx(machine);
  machine.cpu().reset_stats();
  mx.mont_mul_once(random_below(mod, rng), random_below(mod, rng), mod);
  const auto graph =
      select::CallGraph::from_profiler(machine.cpu().profiler(), "mont_mul");
  std::printf("\nprofiled call graph:\n%s", graph.format("mont_mul").c_str());

  // --- selection under a sweep of area budgets -------------------------------
  const auto catalog = tie::default_catalog();
  std::printf("\n%-14s %-12s %-12s %s\n", "area budget", "area used",
              "cycles", "selected instructions");
  for (double budget : {0.0, 2000.0, 4000.0, 8000.0, 16000.0, 32000.0, 1e9}) {
    const auto result = select::select_instructions(graph, "mont_mul",
                                                    leaf_curves, catalog, budget);
    std::string instrs;
    for (const auto& i : result.chosen.instrs) {
      instrs += (instrs.empty() ? "" : ", ") + i;
    }
    if (instrs.empty()) instrs = "(none — software only)";
    std::printf("%-14.0f %-12.0f %-12.0f %s\n", budget, result.chosen.area,
                result.chosen.cycles, instrs.c_str());
  }
  std::printf("\nLarger budgets buy monotonically faster mont_mul; the "
              "ablation shows where each\nfunctional unit earns its area — "
              "the paper's area-vs-performance trade (Sec. 3.4).\n");
  return 0;
}
