// End-to-end global custom-instruction selection (paper Sec. 3.4) with an
// area-budget ablation: measure leaf A-D curves on the ISS, build the
// Montgomery-multiply call graph from profiler data, propagate curves
// bottom-up, and pick configurations under several area constraints.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "kernels/modexp_kernel.h"
#include "mp/prime.h"
#include "select/select.h"
#include "support/random.h"
#include "support/threadpool.h"
#include "tie/characterize.h"

int main(int argc, char** argv) {
  using namespace wsp;
  bench::header("Global custom-instruction selection under area constraints",
                "paper Sec. 3.4 methodology (design-choice ablation)");
  const unsigned threads =
      bench::parse_threads(argc, argv, ThreadPool::hardware_threads());

  // --- leaf A-D curves (real ISS measurements, one machine per candidate) ---
  // Measured serially and then across the pool: the ISS is deterministic and
  // every candidate owns its machine, so both sweeps yield identical curves.
  tie::AdMeasureOptions ad_options;
  ad_options.limbs = 16;  // 512-bit (CRT half of RSA-1024)
  const auto candidates = tie::mpn_routine_candidates();

  const auto t_serial = std::chrono::steady_clock::now();
  auto leaf_curves = tie::measure_mpn_adcurves(candidates, ad_options);
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_serial)
          .count();

  ad_options.threads = threads;
  const auto t_par = std::chrono::steady_clock::now();
  const auto leaf_curves_par = tie::measure_mpn_adcurves(candidates, ad_options);
  const double parallel_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_par)
          .count();

  bool identical = leaf_curves.size() == leaf_curves_par.size();
  for (const auto& [name, curve] : leaf_curves) {
    const auto it = leaf_curves_par.find(name);
    identical = identical && it != leaf_curves_par.end() &&
                it->second.points().size() == curve.points().size();
    for (std::size_t i = 0; identical && i < curve.points().size(); ++i) {
      identical = curve.points()[i].area == it->second.points()[i].area &&
                  curve.points()[i].cycles == it->second.points()[i].cycles;
    }
  }
  std::printf("\nA-D characterization of %zu leaf routines:\n",
              leaf_curves.size());
  std::printf("  serial:               %.3f s\n", serial_s);
  std::printf("  parallel (%2u threads): %.3f s  (%.2fx speedup)\n", threads,
              parallel_s, parallel_s > 0 ? serial_s / parallel_s : 0.0);
  std::printf("  curves identical to serial: %s\n", identical ? "yes" : "NO");

  // --- call graph from a real profile ---------------------------------------
  Rng rng(72);
  Mpz mod = random_bits(512, rng);
  if (mod.is_even()) mod = mod + Mpz(1);
  kernels::Machine machine = kernels::make_modexp_machine();
  kernels::IssModexp mx(machine);
  machine.cpu().reset_stats();
  mx.mont_mul_once(random_below(mod, rng), random_below(mod, rng), mod);
  const auto graph =
      select::CallGraph::from_profiler(machine.cpu().profiler(), "mont_mul");
  std::printf("\nprofiled call graph:\n%s", graph.format("mont_mul").c_str());

  // --- selection under a sweep of area budgets -------------------------------
  const auto catalog = tie::default_catalog();
  std::printf("\n%-14s %-12s %-12s %s\n", "area budget", "area used",
              "cycles", "selected instructions");
  for (double budget : {0.0, 2000.0, 4000.0, 8000.0, 16000.0, 32000.0, 1e9}) {
    const auto result = select::select_instructions(graph, "mont_mul",
                                                    leaf_curves, catalog, budget);
    std::string instrs;
    for (const auto& i : result.chosen.instrs) {
      instrs += (instrs.empty() ? "" : ", ") + i;
    }
    if (instrs.empty()) instrs = "(none — software only)";
    std::printf("%-14.0f %-12.0f %-12.0f %s\n", budget, result.chosen.area,
                result.chosen.cycles, instrs.c_str());
  }
  std::printf("\nLarger budgets buy monotonically faster mont_mul; the "
              "ablation shows where each\nfunctional unit earns its area — "
              "the paper's area-vs-performance trade (Sec. 3.4).\n");
  return 0;
}
