// Secure-session server engine under deterministic traffic: the Fig. 8
// transaction model served concurrently instead of one transaction at a
// time.  Reports throughput, latency percentiles and drop accounting on the
// platform-cycle (virtual) timeline, plus the total crypto work priced
// through the base and optimized platform cost models.
//
// Determinism contract (docs/server.md): for a fixed --seed, every metric
// printed under "deterministic" — completed sessions, per-session byte
// totals (pinned by the digest), latency percentiles, platform-equivalent
// cycles — is identical for ANY --threads value.
//
// Flags:
//   --threads N     worker threads (default: hardware)
//   --seed S        scenario seed (default 71)
//   --sessions N    arrivals per scenario (default 96)
//   --shards N      table/scheduler/service shards (default 4)
//   --queue-cap N   per-shard waiting room for the steady/closed runs
//   --batch-lanes N batched data-plane lane width for the steady/overload/
//                   closed/chaos/scale runs (1..8, default 1 = scalar; the
//                   batch scenario sweeps 1/4/8 regardless)
//   --scenario S    steady|overload|closed|chaos|crash|batch|scale|all
//                   (default all)
//   --scale-sessions N  arrivals for the scale scenario (default 100000)
//   --scale-sweep   sweep the scale scenario 100k -> 1M (overrides
//                   --scale-sessions; the 1M point takes a few seconds)
//   --outdir DIR    write BENCH_server.json here (default ".")
//   --record-dir D  also write a wsp-replay-v1 trace per scenario
//                   (REPLAY_server_<scenario>.wspr; replay with tools/replay)
//   --scenario-file F  compile and run a .wsp traffic program
//                   (docs/scenarios.md) under the same engine config;
//                   metrics appear under wsp/<name>/ and a recording (when
//                   --record-dir is set) embeds the scenario source
//   --checkpoint-every C  quiesce-barrier interval in virtual cycles for the
//                   crash scenario (default: derived, 1/7 of the reference
//                   makespan); must be a positive finite number
//   --resume-from FILE  crash recovery utility (docs/recovery.md): scan the
//                   (possibly torn) trace, restore the last valid
//                   checkpoint, continue at --threads, print the report and
//                   exit — no scenarios run, no JSON written
//   --trace FILE    write a Chrome-trace of this run
//
// Exit codes: 0 success, 1 gate failure (leak, missing drops/faults,
// determinism mismatch, unwritable artifact), 2 invalid flag or unreadable
// --resume-from trace.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "scenario/compile.h"
#include "server/record.h"
#include "server_section.h"
#include "support/rss.h"

namespace {

using namespace wsp;

void print_report(const char* name, const server::RunReport& rep) {
  std::printf("\n--- %s ---\n", name);
  std::printf("  offered %llu | admitted %llu | completed %llu | dropped %llu\n",
              static_cast<unsigned long long>(rep.offered),
              static_cast<unsigned long long>(rep.admitted),
              static_cast<unsigned long long>(rep.completed),
              static_cast<unsigned long long>(rep.dropped));
  std::printf("  records %llu, wire bytes %llu, digest %08x\n",
              static_cast<unsigned long long>(rep.records),
              static_cast<unsigned long long>(rep.wire_bytes),
              rep.bytes_digest);
  std::printf("  latency (Mcycles): p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
              rep.latency.p50 / 1e6, rep.latency.p90 / 1e6,
              rep.latency.p99 / 1e6, rep.latency.max / 1e6);
  std::printf("  throughput %.2f sessions/Gcycle over %.1f Mcycles makespan\n",
              rep.throughput_per_gcycle, rep.makespan_cycles / 1e6);
  std::printf("  queue depth peak %zu (virtual), %zu (real); live sessions peak %zu\n",
              rep.peak_virtual_depth, rep.peak_real_depth, rep.peak_sessions);
  std::printf("  platform-equivalent: base %.1f Mcycles vs opt %.1f Mcycles -> %.2fX\n",
              rep.platform_cycles_base / 1e6,
              rep.platform_cycles_optimized / 1e6, rep.equivalent_speedup);
  if (rep.faults_injected > 0 || rep.aborted > 0 || rep.degrade_enters > 0) {
    std::printf("  faults %llu -> retried %llu, repaired %llu, aborted %llu; "
                "shed %llu, degrade enters %llu\n",
                static_cast<unsigned long long>(rep.faults_injected),
                static_cast<unsigned long long>(rep.retried),
                static_cast<unsigned long long>(rep.repaired),
                static_cast<unsigned long long>(rep.aborted),
                static_cast<unsigned long long>(rep.shed),
                static_cast<unsigned long long>(rep.degrade_enters));
  }
  std::printf("  host: %.1f ms wall on %u threads, %llu backpressure waits\n",
              static_cast<double>(rep.wall_ns) / 1e6, rep.threads,
              static_cast<unsigned long long>(rep.backpressure_waits));
}

/// The chaos leak gate: every admitted session must end as exactly one of
/// completed or aborted.  A violation means a session leaked (wedged shard,
/// swallowed exception) and fails the bench run.
bool sessions_leaked(const server::RunReport& rep) {
  return rep.completed + rep.aborted != rep.admitted;
}

/// A checkpoint interval must be a positive, finite virtual-cycle count
/// (wspc run applies the same rule to its --checkpoint-every).
double parse_checkpoint_every(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
    throw std::invalid_argument(
        "--checkpoint-every wants a positive virtual-cycle count, got '" +
        text + "'");
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsp;
  bench::header("Secure-session server engine: concurrent SSL transactions",
                "paper Fig. 8 workload under load; docs/server.md");

  const unsigned threads =
      bench::parse_threads(argc, argv, ThreadPool::hardware_threads());
  const auto seed = static_cast<std::uint64_t>(std::strtoull(
      bench::parse_string_flag(argc, argv, "--seed", "71").c_str(), nullptr, 10));
  const auto sessions = static_cast<std::size_t>(std::strtoull(
      bench::parse_string_flag(argc, argv, "--sessions", "96").c_str(), nullptr,
      10));
  const auto shards = static_cast<unsigned>(std::strtoul(
      bench::parse_string_flag(argc, argv, "--shards", "4").c_str(), nullptr,
      10));
  const auto queue_cap = static_cast<std::size_t>(std::strtoull(
      bench::parse_string_flag(argc, argv, "--queue-cap", "64").c_str(),
      nullptr, 10));
  const auto batch_lanes = static_cast<unsigned>(std::strtoul(
      bench::parse_string_flag(argc, argv, "--batch-lanes", "1").c_str(),
      nullptr, 10));
  const std::string which =
      bench::parse_string_flag(argc, argv, "--scenario", "all");
  const auto scale_sessions = static_cast<std::size_t>(std::strtoull(
      bench::parse_string_flag(argc, argv, "--scale-sessions", "100000")
          .c_str(),
      nullptr, 10));
  const bool scale_sweep = bench::parse_bool_flag(argc, argv, "--scale-sweep");
  const std::string outdir =
      bench::parse_string_flag(argc, argv, "--outdir", ".");
  const std::string record_dir =
      bench::parse_string_flag(argc, argv, "--record-dir");
  const std::string scenario_file =
      bench::parse_string_flag(argc, argv, "--scenario-file");
  const std::string checkpoint_every_text =
      bench::parse_string_flag(argc, argv, "--checkpoint-every");
  const std::string resume_from =
      bench::parse_string_flag(argc, argv, "--resume-from");
  double checkpoint_every = 0.0;  // 0 = derive from the reference makespan
  if (!checkpoint_every_text.empty()) {
    try {
      checkpoint_every = parse_checkpoint_every(checkpoint_every_text);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bench_server: %s\n", e.what());
      return 2;
    }
  }

  if (!resume_from.empty()) {
    // Crash recovery utility mode: no scenarios, no JSON — just resume the
    // trace and print what the recovered run did.
    try {
      const server::ResumeScan scan =
          server::scan_trace_for_resume(replay::read_file(resume_from));
      std::printf("\nscanned %s: %zu bytes, %zu checkpoints, %s%s%s\n",
                  resume_from.c_str(), scan.scanned_bytes,
                  scan.checkpoints.size(),
                  scan.complete ? "complete trace" : "torn trace",
                  scan.tear.empty() ? "" : "\n  tear: ",
                  scan.tear.c_str());
      const server::ReplayResult res = server::resume_run(scan, threads);
      if (!res.ok()) {
        std::fprintf(stderr, "resume FAILED: %zu mismatches\n",
                     res.mismatches.size());
        for (const std::string& m : res.mismatches) {
          std::fprintf(stderr, "  %s\n", m.c_str());
        }
        return 1;
      }
      print_report(("resumed: " + resume_from).c_str(), res.report);
      if (sessions_leaked(res.report)) {
        std::fprintf(stderr, "resumed run leaked sessions\n");
        return 1;
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_server: %s: %s\n", resume_from.c_str(),
                   e.what());
      return 2;
    }
  }
  const std::string trace_path = bench::maybe_start_trace(argc, argv);

  int record_failures = 0;
  // Runs one scenario, optionally leaving a bit-exact replay trace behind
  // (docs/benchmarks.md): any number printed below can be reproduced from
  // that one file via tools/replay, at any --threads value.  A non-empty
  // `source` is the .wsp text the scenario was compiled from; it rides
  // along in the recording (RecordChunk::kScenarioSource).
  const auto run_scenario = [&](const server::EngineConfig& cfg_in,
                                const server::TrafficScenario& scenario,
                                const char* name,
                                const std::string& source = {}) {
    if (record_dir.empty()) {
      server::Engine engine(cfg_in);
      return engine.run(scenario);
    }
    server::RunRecord rec = server::record_run(cfg_in, scenario, source);
    const std::string path =
        record_dir + "/REPLAY_server_" + name + ".wspr";
    if (server::write_run_record_file(rec, path)) {
      std::printf("  recorded %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "FAILED to write %s\n", path.c_str());
      ++record_failures;
    }
    return std::move(rec.report);
  };

  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = shards;
  cfg.queue_capacity = queue_cap;
  cfg.batch_lanes = batch_lanes;

  bench::BenchResult result;
  result.name = "server";
  result.threads = threads;
  result.config = {{"seed", std::to_string(seed)},
                   {"sessions", std::to_string(sessions)},
                   {"shards", std::to_string(shards)},
                   {"queue_cap", std::to_string(queue_cap)},
                   {"rsa_bits", std::to_string(cfg.rsa_bits)},
                   {"scale_sessions", std::to_string(scale_sessions)}};

  std::printf("\n%u threads, %u shards, queue capacity %zu, %zu sessions/run\n",
              threads, shards, queue_cap, sessions);

  if (which == "all" || which == "steady") {
    const auto rep =
        run_scenario(cfg, bench::steady_scenario(seed, sessions), "steady");
    print_report("steady (open loop, 0.6x capacity)", rep);
    bench::append_server_metrics(result, "steady/", rep);
  }
  if (which == "all" || which == "overload") {
    server::EngineConfig over = cfg;
    over.queue_capacity = std::min<std::size_t>(queue_cap, 16);
    const auto rep = run_scenario(
        over, bench::overload_scenario(seed + 1, sessions), "overload");
    print_report("overload (open loop, 2.5x capacity)", rep);
    bench::append_server_metrics(result, "overload/", rep);
    if (rep.dropped == 0) {
      std::fprintf(stderr, "overload scenario produced no drops — "
                           "admission control broken\n");
      return 1;
    }
  }
  if (which == "all" || which == "closed") {
    const auto rep = run_scenario(
        cfg, bench::closed_scenario(seed + 2, sessions / 2, 2 * shards),
        "closed");
    print_report("closed loop (fixed user population)", rep);
    bench::append_server_metrics(result, "closed/", rep);
  }
  if (which == "all" || which == "chaos") {
    server::EngineConfig chaos = cfg;
    chaos.faults = bench::chaos_fault_config();
    chaos.degrade_depth = 3 * shards;  // degrade under fault-induced pileups
    const auto rep =
        run_scenario(chaos, bench::chaos_scenario(seed + 3, sessions), "chaos");
    print_report("chaos (steady load, 3-5% fault rates)", rep);
    bench::append_server_metrics(result, "chaos/", rep);
    if (sessions_leaked(rep)) {
      std::fprintf(stderr,
                   "chaos scenario leaked sessions: admitted %llu != "
                   "completed %llu + aborted %llu\n",
                   static_cast<unsigned long long>(rep.admitted),
                   static_cast<unsigned long long>(rep.completed),
                   static_cast<unsigned long long>(rep.aborted));
      return 1;
    }
    if (rep.faults_injected == 0) {
      std::fprintf(stderr, "chaos scenario injected no faults — "
                           "fault plan broken\n");
      return 1;
    }
  }
  if (which == "all" || which == "crash") {
    // Crash-fault tolerance (docs/recovery.md): chaos traffic with periodic
    // quiesce-barrier checkpoints and a scheduled kill at 60% of the
    // reference makespan.  The torn trace is resumed at a different thread
    // count; the hard gate is bit-identity with the uninterrupted run.
    server::EngineConfig ccfg = cfg;
    ccfg.faults = bench::chaos_fault_config();
    ccfg.degrade_depth = 3 * shards;
    const auto scenario = bench::chaos_scenario(seed + 6, sessions);
    server::Engine ref_engine(ccfg);
    const server::RunReport ref = ref_engine.run(scenario);

    server::EngineConfig crash_cfg = ccfg;
    crash_cfg.checkpoint_every = checkpoint_every > 0.0
                                     ? checkpoint_every
                                     : ref.makespan_cycles / 7.0;
    crash_cfg.faults.crash_at_cycles = ref.makespan_cycles * 0.6;
    const std::string crash_trace =
        record_dir.empty() ? std::string()
                           : record_dir + "/REPLAY_server_crash.wspr";
    server::RunRecorder recorder(crash_cfg, scenario, {}, crash_trace);
    bool crash_seen = false;
    try {
      server::Engine engine(recorder.engine_config());
      recorder.finish(engine.run(scenario));
    } catch (const server::CrashFault& e) {
      crash_seen = true;
      recorder.crash();
      std::printf("\n--- crash ---\n  %s\n", e.what());
    }
    if (!crash_seen || recorder.checkpoints() == 0 || !recorder.ok()) {
      std::fprintf(stderr,
                   "crash scenario: expected a mid-run crash with prior "
                   "checkpoints (crashed=%d, checkpoints=%zu, recorder %s)\n",
                   crash_seen ? 1 : 0, recorder.checkpoints(),
                   recorder.ok() ? "ok" : recorder.error().c_str());
      return 1;
    }
    if (!crash_trace.empty()) {
      std::printf("  recorded torn trace %s (%zu checkpoints)\n",
                  crash_trace.c_str(), recorder.checkpoints());
    }
    const auto scan = server::scan_trace_for_resume(recorder.bytes());
    const unsigned resume_threads = threads == 1 ? 2 : 1;
    const auto res = server::resume_run(scan, resume_threads);
    print_report(("crash -> resume (checkpoint " +
                  std::to_string(scan.checkpoints.size() - 1) + ", " +
                  std::to_string(resume_threads) + " threads)")
                     .c_str(),
                 res.report);
    const bool resume_ok =
        bench::reports_deterministically_equal(ref, res.report);
    // Torn write on top: tear into the last checkpoint chunk's header so
    // the scan must reject it and fall back one checkpoint.
    std::vector<std::uint8_t> torn(recorder.bytes());
    torn.resize(recorder.checkpoint_offsets().back() + 9);
    const auto torn_scan = server::scan_trace_for_resume(torn);
    const auto torn_res = server::resume_run(torn_scan, threads);
    const bool torn_ok =
        !torn_scan.tear.empty() &&
        torn_scan.checkpoints.size() + 1 == recorder.checkpoints() &&
        bench::reports_deterministically_equal(ref, torn_res.report);
    std::printf("  resume identical: %s; torn-tail fallback identical: %s\n",
                resume_ok ? "yes" : "NO", torn_ok ? "yes" : "NO");
    bench::append_server_metrics(result, "crash/", res.report);
    result.cycles["crash/checkpoints"] =
        static_cast<double>(recorder.checkpoints());
    result.cycles["crash/resume_mismatch"] = resume_ok ? 0.0 : 1.0;
    result.cycles["crash/torn_resume_mismatch"] = torn_ok ? 0.0 : 1.0;
    if (!resume_ok || !torn_ok) {
      std::fprintf(stderr, "crash scenario: resumed run diverged from the "
                           "uninterrupted reference\n");
      return 1;
    }
    if (sessions_leaked(res.report)) {
      std::fprintf(stderr, "crash scenario leaked sessions across the "
                           "checkpoint/restore boundary\n");
      return 1;
    }
  }

  if (which == "all" || which == "batch") {
    // Batched data plane: the same CBC-heavy traffic at lanes 1, 4 and 8.
    // The deterministic report is a hard gate — any divergence is a bug in
    // the batching layer, not a tolerance matter — and the wall-time ratio
    // is the host-side payoff the baseline tracks (batch/host_speedup_*).
    const auto scenario = bench::batch_scenario(seed + 5, sessions);
    const unsigned lane_pts[3] = {1, 4, 8};
    server::RunReport reps[3];
    for (int i = 0; i < 3; ++i) {
      server::Engine engine(bench::batch_config(threads, lane_pts[i]));
      reps[i] = engine.run(scenario);
      // Best-of-2 wall: the first run also warms key caches and pages.
      server::Engine again(bench::batch_config(threads, lane_pts[i]));
      const auto rerun = again.run(scenario);
      if (rerun.wall_ns < reps[i].wall_ns) reps[i] = rerun;
      print_report(
          ("batch (CBC mix, lanes " + std::to_string(lane_pts[i]) + ")")
              .c_str(),
          reps[i]);
    }
    for (int i = 1; i < 3; ++i) {
      if (!bench::reports_deterministically_equal(reps[0], reps[i])) {
        std::fprintf(stderr,
                     "batch scenario: deterministic report diverged between "
                     "lanes 1 and lanes %u\n",
                     lane_pts[i]);
        return 1;
      }
    }
    bench::append_server_metrics(result, "batch/", reps[2]);
    result.cycles["batch/lanes_mismatch"] = 0.0;
    const double s4 = static_cast<double>(reps[0].wall_ns) /
                      static_cast<double>(reps[1].wall_ns);
    const double s8 = static_cast<double>(reps[0].wall_ns) /
                      static_cast<double>(reps[2].wall_ns);
    result.cycles["batch/host_speedup_4v1"] = s4;
    result.cycles["batch/host_speedup_8v1"] = s8;
    std::printf("\n  batch host speedup: lanes 4 %.2fx, lanes 8 %.2fx "
                "(%llu batched records, %llu flushes at lanes 8)\n",
                s4, s8,
                static_cast<unsigned long long>(reps[2].batched_records),
                static_cast<unsigned long long>(reps[2].batch_flushes));
  }

  if (which == "all" || which == "scale") {
    // Million-session regime (docs/server.md): resumed sessions, RC4-only
    // short records, deep pinned-shard rings.  The headline "scale/" prefix
    // is always the --scale-sessions point so the regression gate compares
    // like with like; --scale-sweep adds labeled 100k/250k/1M points.
    server::EngineConfig scfg = bench::scale_config(threads);
    scfg.batch_lanes = batch_lanes;
    std::vector<std::pair<std::string, std::size_t>> points;
    if (scale_sweep) {
      points = {{"scale_100k/", 100000},
                {"scale_250k/", 250000},
                {"scale_1m/", 1000000}};
    }
    const auto rep = run_scenario(
        scfg, bench::scale_scenario(seed + 4, scale_sessions), "scale");
    print_report("scale (resumed sessions, open loop 1.2x)", rep);
    bench::append_server_metrics(result, "scale/", rep);
    // Actual process RSS next to the modeled memory_per_session: an
    // info-direction sanity metric (host-dependent, never gated — the
    // */rss_* benchdiff rule).  0 when /proc/self/statm is unavailable.
    const double rss_mib =
        static_cast<double>(support::resident_set_bytes()) / (1024.0 * 1024.0);
    result.cycles["scale/rss_mib"] = rss_mib;
    std::printf("  process RSS %.1f MiB vs modeled %.1f MiB structural "
                "(%llu B/session x %llu sessions)\n",
                rss_mib,
                static_cast<double>(rep.memory_per_session) *
                    static_cast<double>(rep.admitted) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(rep.memory_per_session),
                static_cast<unsigned long long>(rep.admitted));
    if (sessions_leaked(rep)) {
      std::fprintf(stderr,
                   "scale scenario leaked sessions: admitted %llu != "
                   "completed %llu + aborted %llu\n",
                   static_cast<unsigned long long>(rep.admitted),
                   static_cast<unsigned long long>(rep.completed),
                   static_cast<unsigned long long>(rep.aborted));
      return 1;
    }
    for (const auto& [prefix, n] : points) {
      server::Engine engine(scfg);
      const auto swept = engine.run(bench::scale_scenario(seed + 4, n));
      print_report(("scale sweep: " + std::to_string(n) + " sessions").c_str(),
                   swept);
      bench::append_server_metrics(result, prefix, swept);
      if (sessions_leaked(swept)) {
        std::fprintf(stderr, "scale sweep (%zu sessions) leaked sessions\n", n);
        return 1;
      }
    }
  }

  if (!scenario_file.empty()) {
    // Compiled .wsp traffic program under the same engine config.  The
    // leak gate applies like everywhere else; metrics land under
    // wsp/<name>/ (unmatched in the default baseline, so benchdiff reports
    // them as info rather than gating).
    scenario::CompiledScenario compiled;
    try {
      compiled = scenario::compile_file(scenario_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    const std::string name =
        compiled.name.empty() ? std::string("scenario") : compiled.name;
    const auto rep = run_scenario(cfg, compiled.scenario,
                                  ("wsp_" + name).c_str(), compiled.source);
    print_report(("wsp: " + name + " (" + scenario_file + ")").c_str(), rep);
    bench::append_server_metrics(result, "wsp/" + name + "/", rep);
    if (sessions_leaked(rep)) {
      std::fprintf(stderr,
                   "scenario %s leaked sessions: admitted %llu != "
                   "completed %llu + aborted %llu\n",
                   scenario_file.c_str(),
                   static_cast<unsigned long long>(rep.admitted),
                   static_cast<unsigned long long>(rep.completed),
                   static_cast<unsigned long long>(rep.aborted));
      return 1;
    }
  }

  const std::string path = bench::write_bench_json(result, outdir);
  if (path.empty()) {
    std::fprintf(stderr, "FAILED to write BENCH_server.json\n");
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  bench::maybe_finish_trace(trace_path);
  return record_failures == 0 ? 0 : 1;
}
