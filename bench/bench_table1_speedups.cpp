// Table 1 + the Fig. 5 inset table: per-algorithm speedups of the optimized
// security processing platform over the well-optimized software baseline.
//
//   paper: DES 476.8 -> 15.4 cyc/B (31.0X); 3DES 1426.4 -> 42.1 (33.9X);
//          AES 1526.2 -> 87.5 (17.4X); RSA enc 10.8X; RSA dec 66.4X.
//
// Our absolute numbers differ (different core/compiler); the shape —
// large double-digit private-key speedups, RSA-decrypt speedup much larger
// than RSA-encrypt — is the reproduction target (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"
#include "kernels/aes_kernel.h"
#include "kernels/des_kernel.h"
#include "kernels/modexp_kernel.h"
#include "mp/prime.h"
#include "support/random.h"

namespace {

using namespace wsp;

struct SymResult {
  double base_cpb = 0.0;
  double opt_cpb = 0.0;
  double speedup() const { return base_cpb / opt_cpb; }
};

SymResult bench_des(bool triple) {
  Rng rng(11);
  const auto data = rng.bytes(1024);
  SymResult r;
  for (bool tie : {false, true}) {
    kernels::Machine m = kernels::make_des_machine(tie);
    kernels::DesKernel k(m, tie);
    std::uint64_t cycles = 0;
    if (triple) {
      k.set_3des_keys(rng.next_u64(), rng.next_u64(), rng.next_u64());
      k.encrypt_ecb_3des(data, &cycles);
    } else {
      k.set_key(0x0123456789abcdefull);
      k.encrypt_ecb(data, &cycles);
    }
    (tie ? r.opt_cpb : r.base_cpb) =
        static_cast<double>(cycles) / static_cast<double>(data.size());
  }
  return r;
}

SymResult bench_aes() {
  Rng rng(12);
  const auto data = rng.bytes(1024);
  const auto key = rng.bytes(16);
  SymResult r;
  for (auto variant : {kernels::AesKernelVariant::kBase,
                       kernels::AesKernelVariant::kTiePartial}) {
    kernels::Machine m = kernels::make_aes_machine(variant);
    kernels::AesKernel k(m, variant);
    k.set_key(key);
    std::uint64_t cycles = 0;
    k.encrypt_ecb(data, &cycles);
    (variant == kernels::AesKernelVariant::kBase ? r.base_cpb : r.opt_cpb) =
        static_cast<double>(cycles) / static_cast<double>(data.size());
  }
  return r;
}

}  // namespace

int main() {
  using namespace wsp;
  bench::header("Security-algorithm speedups (base XR32 vs custom-instruction platform)",
                "paper Table 1 and the RSA processing-rate table in Fig. 5");

  const SymResult des = bench_des(false);
  const SymResult des3 = bench_des(true);
  const SymResult aes = bench_aes();

  std::printf("\nSecurity algorithm   Orig. perf.     Optimized perf.   Speedup   (paper)\n");
  std::printf("                     (cycle/byte)    (cycle/byte)\n");
  std::printf("DES enc./dec.        %8.1f        %8.1f          %5.1fX    (31.0X)\n",
              des.base_cpb, des.opt_cpb, des.speedup());
  std::printf("3DES enc./dec.       %8.1f        %8.1f          %5.1fX    (33.9X)\n",
              des3.base_cpb, des3.opt_cpb, des3.speedup());
  std::printf("AES enc./dec.        %8.1f        %8.1f          %5.1fX    (17.4X)\n",
              aes.base_cpb, aes.opt_cpb, aes.speedup());

  // --- RSA-1024 processing rates (Fig. 5 inset table) -----------------------
  Rng rng(13);
  const auto key = rsa::generate_key(1024, rng);
  const Mpz msg = random_below(key.n, rng);

  kernels::Machine base_m = kernels::make_modexp_machine();
  kernels::Machine opt_m =
      kernels::make_modexp_machine(kernels::MpnTieConfig{8, 8});
  kernels::IssModexp base_mx(base_m), opt_mx(opt_m);

  // Encryption: short public exponent (65537).
  const auto enc_base = base_mx.powm_base(msg, key.e, key.n);
  const auto enc_opt = opt_mx.powm_mont(msg, key.e, key.n, 2);
  // Decryption: full private exponent; the optimized platform additionally
  // uses the explored algorithm (Garner CRT + 5-bit windows + Montgomery).
  const auto dec_base = base_mx.powm_base(enc_base.result, key.d, key.n);
  const auto dec_opt = opt_mx.rsa_crt(enc_base.result, key, 5);
  if (!(dec_base.result == dec_opt.result) || !(enc_base.result == enc_opt.result)) {
    std::printf("ERROR: base/optimized RSA results disagree!\n");
    return 1;
  }

  const double mhz = 188.0;
  auto rate = [&](std::uint64_t cycles) {
    // 1024-bit operands: bits per operation over seconds per operation.
    return 1024.0 * mhz * 1e6 / static_cast<double>(cycles);
  };
  std::printf("\nRSA-1024 processing rates @ %.0f MHz (bits/s):\n", mhz);
  std::printf("                     Orig.           Final             Speedup   (paper)\n");
  std::printf("RSA enc.             %11.3e     %11.3e       %5.1fX    (10.8X)\n",
              rate(enc_base.cycles), rate(enc_opt.cycles),
              static_cast<double>(enc_base.cycles) / static_cast<double>(enc_opt.cycles));
  std::printf("RSA dec.             %11.3e     %11.3e       %5.1fX    (66.4X)\n",
              rate(dec_base.cycles), rate(dec_opt.cycles),
              static_cast<double>(dec_base.cycles) / static_cast<double>(dec_opt.cycles));

  std::printf("\nRSA decryption speedup decomposition (ablation):\n");
  const auto dec_algo = base_mx.rsa_crt(enc_base.result, key, 5);
  std::printf("  tuned algorithm on base HW (CRT+window+Montgomery): %5.1fX\n",
              static_cast<double>(dec_base.cycles) / static_cast<double>(dec_algo.cycles));
  std::printf("  custom instructions on top (add_8 + mac_8):          %5.1fX\n",
              static_cast<double>(dec_algo.cycles) / static_cast<double>(dec_opt.cycles));
  return 0;
}
