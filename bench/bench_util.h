// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <string>

namespace wsp::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==========================================================\n");
}

}  // namespace wsp::bench
