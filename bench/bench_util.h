// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace wsp::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==========================================================\n");
}

/// Parses `--threads N` / `--threads=N` (clamped to >= 1); `fallback` when
/// the flag is absent.
inline unsigned parse_threads(int argc, char** argv, unsigned fallback = 1) {
  long value = static_cast<long>(fallback);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      value = std::strtol(argv[i + 1], nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = std::strtol(arg.c_str() + 10, nullptr, 10);
    }
  }
  return value < 1 ? 1u : static_cast<unsigned>(value);
}

}  // namespace wsp::bench
