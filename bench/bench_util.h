// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "support/json.h"
#include "support/trace.h"

#ifndef WSP_GIT_REV
#define WSP_GIT_REV "unknown"
#endif

namespace wsp::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("==========================================================\n");
}

/// Parses `--threads N` / `--threads=N` (clamped to >= 1); `fallback` when
/// the flag is absent.
inline unsigned parse_threads(int argc, char** argv, unsigned fallback = 1) {
  long value = static_cast<long>(fallback);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      value = std::strtol(argv[i + 1], nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = std::strtol(arg.c_str() + 10, nullptr, 10);
    }
  }
  return value < 1 ? 1u : static_cast<unsigned>(value);
}

/// Parses `--name VALUE` / `--name=VALUE`; `fallback` when absent.
inline std::string parse_string_flag(int argc, char** argv,
                                     const std::string& name,
                                     const std::string& fallback = "") {
  std::string value = fallback;
  const std::string eq = name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind(eq, 0) == 0) {
      value = arg.substr(eq.size());
    }
  }
  return value;
}

/// True if the bare flag is present.
inline bool parse_bool_flag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (name == argv[i]) return true;
  }
  return false;
}

// --- machine-readable bench artifacts (docs/observability.md) --------------
//
// Every figure/table benchmark can serialize its *measured* quantities to
// BENCH_<name>.json so the repo accumulates a perf trajectory across PRs.
// Simulated-cycle metrics are bit-deterministic for a fixed seed; wall_ns
// is the one intentionally non-deterministic field.

struct BenchResult {
  std::string name;                          ///< file suffix: BENCH_<name>.json
  std::map<std::string, std::string> config; ///< seeds, sizes, variants
  std::map<std::string, double> cycles;      ///< deterministic metrics
  std::uint64_t wall_ns = 0;                 ///< host wall time of the measurement
  unsigned threads = 1;
};

inline json::Value to_json(const BenchResult& r) {
  json::Value doc = json::Value::object();
  doc["schema"] = json::Value("wsp-bench-v1");
  doc["name"] = json::Value(r.name);
  json::Value config = json::Value::object();
  for (const auto& [k, v] : r.config) config[k] = json::Value(v);
  doc["config"] = std::move(config);
  json::Value cycles = json::Value::object();
  for (const auto& [k, v] : r.cycles) cycles[k] = json::Value(v);
  doc["cycles"] = std::move(cycles);
  doc["wall_ns"] = json::Value(static_cast<std::uint64_t>(r.wall_ns));
  doc["threads"] = json::Value(static_cast<std::uint64_t>(r.threads));
  doc["git_rev"] = json::Value(std::string(WSP_GIT_REV));
  return doc;
}

/// Writes `<outdir>/BENCH_<name>.json`; returns the path, or "" on failure.
/// The write is temp-file-then-rename: a crash (or full disk) mid-write can
/// tear only the .tmp file, never replace an existing artifact or baseline
/// with a half-written one (docs/recovery.md).
inline std::string write_bench_json(const BenchResult& r,
                                    const std::string& outdir = ".") {
  const std::string path = outdir + "/BENCH_" + r.name + ".json";
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return "";
  const std::string text = to_json(r).dump(1) + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (std::fclose(f) != 0 || !ok ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return "";
  }
  return path;
}

/// Starts a trace session if `--trace FILE` was passed; returns the path.
inline std::string maybe_start_trace(int argc, char** argv) {
  const std::string path = parse_string_flag(argc, argv, "--trace");
  if (!path.empty()) trace::start();
  return path;
}

/// Stops the session (if one was started) and writes the Chrome-trace JSON.
inline void maybe_finish_trace(const std::string& path) {
  if (path.empty()) return;
  const auto events = trace::stop();
  if (trace::write_chrome_json(events, path)) {
    std::printf("\ntrace: %zu events -> %s (open in https://ui.perfetto.dev)\n",
                events.size(), path.c_str());
  } else {
    std::fprintf(stderr, "trace: failed to write %s\n", path.c_str());
  }
}

}  // namespace wsp::bench
