// Shared glue between the secure-session server engine and the wsp-bench-v1
// artifact layer: canonical scenarios (the Fig. 8 grid under steady load,
// over-admission, and a closed-loop population) and the RunReport ->
// BenchResult metric mapping used by bench_server, bench_report and the
// schema tests.
#pragma once

#include <string>

#include "bench_util.h"
#include "server/engine.h"

namespace wsp::bench {

/// Steady open-loop load: ~60% of modeled capacity, full Fig. 8 mix.
inline server::TrafficScenario steady_scenario(std::uint64_t seed,
                                               std::size_t sessions) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = 0.6;
  return s;
}

/// Sustained over-admission: 2.5x capacity — must produce drops while the
/// bounded waiting room keeps latency and queue depth finite.
inline server::TrafficScenario overload_scenario(std::uint64_t seed,
                                                 std::size_t sessions) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = 2.5;
  return s;
}

/// Closed loop: a fixed population of users, think time ~ half a mean
/// service interval.
inline server::TrafficScenario closed_scenario(std::uint64_t seed,
                                               std::size_t sessions,
                                               unsigned users) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kClosedLoop;
  s.users = users;
  s.think_cycles = 6e6;
  return s;
}

/// Chaos run traffic: steady load so every recovery outcome is attributable
/// to injected faults, not over-admission.
inline server::TrafficScenario chaos_scenario(std::uint64_t seed,
                                              std::size_t sessions) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = 0.8;
  return s;
}

/// Scale run traffic: the million-session regime (docs/server.md).  Sessions
/// resume from tickets instead of doing fresh RSA handshakes — that is what
/// makes 10^5..10^6 sessions per run tractable — and stream short RC4
/// records, so the run measures data-plane capacity (table, rings, channel
/// setup), not modexp throughput.
inline server::TrafficScenario scale_scenario(std::uint64_t seed,
                                              std::size_t sessions) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = 1.2;  // mild over-admission: the table must churn
  s.resume_sessions = true;
  s.ciphers = {ssl::Cipher::kRc4};
  s.transaction_sizes = {256, 512};
  s.record_bytes = 256;
  return s;
}

/// Batched data-plane traffic (docs/server.md): resumed sessions so the
/// wall time is the record ciphers rather than RSA, a CBC-only mix (the
/// multi-buffer kernels' domain; RC4 stream state cannot cross lanes), and
/// enough records per session that cohorts stay full.  The same scenario is
/// run at batch_lanes 1/4/8 — the deterministic report must be identical,
/// only the host wall time may move.
inline server::TrafficScenario batch_scenario(std::uint64_t seed,
                                              std::size_t sessions) {
  server::TrafficScenario s;
  s.seed = seed;
  s.sessions = sessions;
  s.model = server::ArrivalModel::kOpenLoop;
  s.offered_load = 0.9;
  s.resume_sessions = true;
  s.ciphers = {ssl::Cipher::kTripleDesCbc, ssl::Cipher::kAes128Cbc};
  s.transaction_sizes = {4096, 8192};
  s.record_bytes = 512;
  return s;
}

/// Engine shape for the batch run: pinned shards, roomy rings so admission
/// is load-model-driven, and cohorts of a full record_batch of sessions.
inline server::EngineConfig batch_config(unsigned threads, unsigned lanes) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 4;
  cfg.queue_capacity = 256;
  cfg.record_batch = 16;
  cfg.batch_lanes = lanes;
  return cfg;
}

/// Engine shape for the scale run: shard count pinned (determinism is per
/// shard count), deep per-shard rings so arrivals stay on the lock-free
/// path, and large record batches to amortize pump dispatch.
inline server::EngineConfig scale_config(unsigned threads) {
  server::EngineConfig cfg;
  cfg.threads = threads;
  cfg.shards = 8;
  cfg.queue_capacity = 32768;
  cfg.record_batch = 32;
  return cfg;
}

/// Canonical chaos fault mix (docs/faults.md): 1-10% rates across the four
/// fault classes.  Non-aborted sessions must still complete, and the
/// RunReport must stay bit-identical for any --threads.
inline server::FaultConfig chaos_fault_config() {
  server::FaultConfig f;
  f.wire_flip_rate = 0.05;
  f.handshake_failure_rate = 0.05;
  f.abort_rate = 0.03;
  f.stall_rate = 0.05;
  return f;
}

/// Flattens the deterministic part of a RunReport into `r.cycles` under
/// `prefix` ("steady/", "overload/", ...).  Host-dependent fields (wall
/// time, backpressure waits, real queue peaks) are deliberately excluded:
/// every metric written here must be byte-identical run-to-run and
/// thread-count-to-thread-count.
inline void append_server_metrics(BenchResult& r, const std::string& prefix,
                                  const server::RunReport& rep) {
  auto put = [&](const char* key, double value) {
    r.cycles[prefix + key] = value;
  };
  put("offered", static_cast<double>(rep.offered));
  put("admitted", static_cast<double>(rep.admitted));
  put("completed", static_cast<double>(rep.completed));
  put("dropped", static_cast<double>(rep.dropped));
  put("records", static_cast<double>(rep.records));
  put("wire_bytes", static_cast<double>(rep.wire_bytes));
  put("bytes_digest", static_cast<double>(rep.bytes_digest));
  put("latency_p50_cycles", rep.latency.p50);
  put("latency_p90_cycles", rep.latency.p90);
  put("latency_p99_cycles", rep.latency.p99);
  put("latency_max_cycles", rep.latency.max);
  put("makespan_cycles", rep.makespan_cycles);
  put("throughput_per_gcycle", rep.throughput_per_gcycle);
  put("queue_depth_peak", static_cast<double>(rep.peak_virtual_depth));
  put("sessions_peak", static_cast<double>(rep.peak_sessions));
  put("mean_service_cycles", rep.mean_service_cycles);
  // Structural bytes per live session (slab slot + cold key block + index
  // share) — a property of the build, so regressions here are layout
  // regressions, not load artifacts.
  put("memory_per_session", static_cast<double>(rep.memory_per_session));
  put("platform_cycles_base", rep.platform_cycles_base);
  put("platform_cycles_opt", rep.platform_cycles_optimized);
  put("platform_equiv_speedup", rep.equivalent_speedup);
  // Fault/recovery accounting (all zero on benign runs, deterministic on
  // chaos runs — see docs/faults.md).
  put("aborted", static_cast<double>(rep.aborted));
  put("retried", static_cast<double>(rep.retried));
  put("repaired", static_cast<double>(rep.repaired));
  put("faults_injected", static_cast<double>(rep.faults_injected));
  put("shed", static_cast<double>(rep.shed));
  put("degrade_enters", static_cast<double>(rep.degrade_enters));
  // The leak invariant as a gated metric: admitted - completed - aborted
  // must be exactly 0, and the regression gate (docs/benchmarks.md) treats
  // any nonzero value — in any scenario — as a hard failure.
  put("leaked", static_cast<double>(rep.admitted) -
                    static_cast<double>(rep.completed) -
                    static_cast<double>(rep.aborted));
}

/// True when two runs agree on every deterministic field the bench layer
/// flattens, plus the per-shard replay event digests.  This is the batch
/// scenario's hard gate: the same traffic at different batch_lanes (or
/// --threads) must compare equal here, bit for bit.
inline bool reports_deterministically_equal(const server::RunReport& a,
                                            const server::RunReport& b) {
  BenchResult ra, rb;
  append_server_metrics(ra, "", a);
  append_server_metrics(rb, "", b);
  if (ra.cycles != rb.cycles) return false;
  if (a.shards.size() != b.shards.size()) return false;
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    if (a.shards[i].events_digest != b.shards[i].events_digest) return false;
  }
  return true;
}

}  // namespace wsp::bench
