# Empty dependencies file for bench_cache_ablation.
# This may be replaced when dependencies are built.
