file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_callgraph.dir/bench_fig4_callgraph.cpp.o"
  "CMakeFiles/bench_fig4_callgraph.dir/bench_fig4_callgraph.cpp.o.d"
  "bench_fig4_callgraph"
  "bench_fig4_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
