# Empty dependencies file for bench_fig4_callgraph.
# This may be replaced when dependencies are built.
