file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_adcurves.dir/bench_fig5_adcurves.cpp.o"
  "CMakeFiles/bench_fig5_adcurves.dir/bench_fig5_adcurves.cpp.o.d"
  "bench_fig5_adcurves"
  "bench_fig5_adcurves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_adcurves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
