# Empty dependencies file for bench_fig5_adcurves.
# This may be replaced when dependencies are built.
