file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_combine.dir/bench_fig6_combine.cpp.o"
  "CMakeFiles/bench_fig6_combine.dir/bench_fig6_combine.cpp.o.d"
  "bench_fig6_combine"
  "bench_fig6_combine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_combine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
