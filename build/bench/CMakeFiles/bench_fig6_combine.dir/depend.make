# Empty dependencies file for bench_fig6_combine.
# This may be replaced when dependencies are built.
