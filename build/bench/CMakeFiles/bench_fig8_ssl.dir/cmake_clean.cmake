file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ssl.dir/bench_fig8_ssl.cpp.o"
  "CMakeFiles/bench_fig8_ssl.dir/bench_fig8_ssl.cpp.o.d"
  "bench_fig8_ssl"
  "bench_fig8_ssl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
