# Empty dependencies file for bench_fig8_ssl.
# This may be replaced when dependencies are built.
