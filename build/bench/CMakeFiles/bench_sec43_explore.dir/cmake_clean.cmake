file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_explore.dir/bench_sec43_explore.cpp.o"
  "CMakeFiles/bench_sec43_explore.dir/bench_sec43_explore.cpp.o.d"
  "bench_sec43_explore"
  "bench_sec43_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
