# Empty dependencies file for bench_sec43_explore.
# This may be replaced when dependencies are built.
