# Empty dependencies file for bench_table1_speedups.
# This may be replaced when dependencies are built.
