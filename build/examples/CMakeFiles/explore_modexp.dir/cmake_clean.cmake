file(REMOVE_RECURSE
  "CMakeFiles/explore_modexp.dir/explore_modexp.cpp.o"
  "CMakeFiles/explore_modexp.dir/explore_modexp.cpp.o.d"
  "explore_modexp"
  "explore_modexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_modexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
