# Empty compiler generated dependencies file for explore_modexp.
# This may be replaced when dependencies are built.
