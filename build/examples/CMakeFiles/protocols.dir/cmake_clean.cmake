file(REMOVE_RECURSE
  "CMakeFiles/protocols.dir/protocols.cpp.o"
  "CMakeFiles/protocols.dir/protocols.cpp.o.d"
  "protocols"
  "protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
