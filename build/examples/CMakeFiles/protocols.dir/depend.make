# Empty dependencies file for protocols.
# This may be replaced when dependencies are built.
