file(REMOVE_RECURSE
  "CMakeFiles/ssl_session.dir/ssl_session.cpp.o"
  "CMakeFiles/ssl_session.dir/ssl_session.cpp.o.d"
  "ssl_session"
  "ssl_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssl_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
