# Empty dependencies file for ssl_session.
# This may be replaced when dependencies are built.
