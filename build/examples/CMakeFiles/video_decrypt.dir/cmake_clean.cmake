file(REMOVE_RECURSE
  "CMakeFiles/video_decrypt.dir/video_decrypt.cpp.o"
  "CMakeFiles/video_decrypt.dir/video_decrypt.cpp.o.d"
  "video_decrypt"
  "video_decrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_decrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
