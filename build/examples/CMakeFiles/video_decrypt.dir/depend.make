# Empty dependencies file for video_decrypt.
# This may be replaced when dependencies are built.
