# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ssl_session "/root/repo/build/examples/ssl_session")
set_tests_properties(example_ssl_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_decrypt "/root/repo/build/examples/video_decrypt")
set_tests_properties(example_video_decrypt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explore_modexp "/root/repo/build/examples/explore_modexp")
set_tests_properties(example_explore_modexp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_flow "/root/repo/build/examples/design_flow")
set_tests_properties(example_design_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocols "/root/repo/build/examples/protocols")
set_tests_properties(example_protocols PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
