
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/crc32.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/crc32.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/crc32.cpp.o.d"
  "/root/repo/src/crypto/des.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/des.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/des.cpp.o.d"
  "/root/repo/src/crypto/ecc.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/ecc.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/ecc.cpp.o.d"
  "/root/repo/src/crypto/elgamal.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/elgamal.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/elgamal.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/md5.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/md5.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/md5.cpp.o.d"
  "/root/repo/src/crypto/rc4.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/rc4.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/rc4.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/rsa.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/CMakeFiles/wsp_crypto.dir/crypto/sha1.cpp.o" "gcc" "src/CMakeFiles/wsp_crypto.dir/crypto/sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsp_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
