file(REMOVE_RECURSE
  "CMakeFiles/wsp_crypto.dir/crypto/aes.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/aes.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/crc32.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/crc32.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/des.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/des.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/ecc.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/ecc.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/elgamal.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/elgamal.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/md5.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/md5.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/rc4.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/rc4.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/rsa.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/rsa.cpp.o.d"
  "CMakeFiles/wsp_crypto.dir/crypto/sha1.cpp.o"
  "CMakeFiles/wsp_crypto.dir/crypto/sha1.cpp.o.d"
  "libwsp_crypto.a"
  "libwsp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
