file(REMOVE_RECURSE
  "libwsp_crypto.a"
)
