# Empty compiler generated dependencies file for wsp_crypto.
# This may be replaced when dependencies are built.
