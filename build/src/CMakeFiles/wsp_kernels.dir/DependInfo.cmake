
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/aes_kernel.cpp" "src/CMakeFiles/wsp_kernels.dir/kernels/aes_kernel.cpp.o" "gcc" "src/CMakeFiles/wsp_kernels.dir/kernels/aes_kernel.cpp.o.d"
  "/root/repo/src/kernels/des_kernel.cpp" "src/CMakeFiles/wsp_kernels.dir/kernels/des_kernel.cpp.o" "gcc" "src/CMakeFiles/wsp_kernels.dir/kernels/des_kernel.cpp.o.d"
  "/root/repo/src/kernels/modexp_kernel.cpp" "src/CMakeFiles/wsp_kernels.dir/kernels/modexp_kernel.cpp.o" "gcc" "src/CMakeFiles/wsp_kernels.dir/kernels/modexp_kernel.cpp.o.d"
  "/root/repo/src/kernels/mpn16_kernels.cpp" "src/CMakeFiles/wsp_kernels.dir/kernels/mpn16_kernels.cpp.o" "gcc" "src/CMakeFiles/wsp_kernels.dir/kernels/mpn16_kernels.cpp.o.d"
  "/root/repo/src/kernels/mpn_kernels.cpp" "src/CMakeFiles/wsp_kernels.dir/kernels/mpn_kernels.cpp.o" "gcc" "src/CMakeFiles/wsp_kernels.dir/kernels/mpn_kernels.cpp.o.d"
  "/root/repo/src/kernels/runtime.cpp" "src/CMakeFiles/wsp_kernels.dir/kernels/runtime.cpp.o" "gcc" "src/CMakeFiles/wsp_kernels.dir/kernels/runtime.cpp.o.d"
  "/root/repo/src/kernels/sha1_kernel.cpp" "src/CMakeFiles/wsp_kernels.dir/kernels/sha1_kernel.cpp.o" "gcc" "src/CMakeFiles/wsp_kernels.dir/kernels/sha1_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsp_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
