file(REMOVE_RECURSE
  "CMakeFiles/wsp_kernels.dir/kernels/aes_kernel.cpp.o"
  "CMakeFiles/wsp_kernels.dir/kernels/aes_kernel.cpp.o.d"
  "CMakeFiles/wsp_kernels.dir/kernels/des_kernel.cpp.o"
  "CMakeFiles/wsp_kernels.dir/kernels/des_kernel.cpp.o.d"
  "CMakeFiles/wsp_kernels.dir/kernels/modexp_kernel.cpp.o"
  "CMakeFiles/wsp_kernels.dir/kernels/modexp_kernel.cpp.o.d"
  "CMakeFiles/wsp_kernels.dir/kernels/mpn16_kernels.cpp.o"
  "CMakeFiles/wsp_kernels.dir/kernels/mpn16_kernels.cpp.o.d"
  "CMakeFiles/wsp_kernels.dir/kernels/mpn_kernels.cpp.o"
  "CMakeFiles/wsp_kernels.dir/kernels/mpn_kernels.cpp.o.d"
  "CMakeFiles/wsp_kernels.dir/kernels/runtime.cpp.o"
  "CMakeFiles/wsp_kernels.dir/kernels/runtime.cpp.o.d"
  "CMakeFiles/wsp_kernels.dir/kernels/sha1_kernel.cpp.o"
  "CMakeFiles/wsp_kernels.dir/kernels/sha1_kernel.cpp.o.d"
  "libwsp_kernels.a"
  "libwsp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
