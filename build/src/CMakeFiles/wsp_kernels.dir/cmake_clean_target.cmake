file(REMOVE_RECURSE
  "libwsp_kernels.a"
)
