# Empty compiler generated dependencies file for wsp_kernels.
# This may be replaced when dependencies are built.
