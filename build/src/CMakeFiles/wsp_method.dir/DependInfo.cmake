
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explore/estimator.cpp" "src/CMakeFiles/wsp_method.dir/explore/estimator.cpp.o" "gcc" "src/CMakeFiles/wsp_method.dir/explore/estimator.cpp.o.d"
  "/root/repo/src/explore/space.cpp" "src/CMakeFiles/wsp_method.dir/explore/space.cpp.o" "gcc" "src/CMakeFiles/wsp_method.dir/explore/space.cpp.o.d"
  "/root/repo/src/macromodel/characterize.cpp" "src/CMakeFiles/wsp_method.dir/macromodel/characterize.cpp.o" "gcc" "src/CMakeFiles/wsp_method.dir/macromodel/characterize.cpp.o.d"
  "/root/repo/src/macromodel/models.cpp" "src/CMakeFiles/wsp_method.dir/macromodel/models.cpp.o" "gcc" "src/CMakeFiles/wsp_method.dir/macromodel/models.cpp.o.d"
  "/root/repo/src/macromodel/regression.cpp" "src/CMakeFiles/wsp_method.dir/macromodel/regression.cpp.o" "gcc" "src/CMakeFiles/wsp_method.dir/macromodel/regression.cpp.o.d"
  "/root/repo/src/select/callgraph.cpp" "src/CMakeFiles/wsp_method.dir/select/callgraph.cpp.o" "gcc" "src/CMakeFiles/wsp_method.dir/select/callgraph.cpp.o.d"
  "/root/repo/src/select/select.cpp" "src/CMakeFiles/wsp_method.dir/select/select.cpp.o" "gcc" "src/CMakeFiles/wsp_method.dir/select/select.cpp.o.d"
  "/root/repo/src/tie/characterize.cpp" "src/CMakeFiles/wsp_method.dir/tie/characterize.cpp.o" "gcc" "src/CMakeFiles/wsp_method.dir/tie/characterize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
