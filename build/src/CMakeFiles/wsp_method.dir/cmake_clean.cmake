file(REMOVE_RECURSE
  "CMakeFiles/wsp_method.dir/explore/estimator.cpp.o"
  "CMakeFiles/wsp_method.dir/explore/estimator.cpp.o.d"
  "CMakeFiles/wsp_method.dir/explore/space.cpp.o"
  "CMakeFiles/wsp_method.dir/explore/space.cpp.o.d"
  "CMakeFiles/wsp_method.dir/macromodel/characterize.cpp.o"
  "CMakeFiles/wsp_method.dir/macromodel/characterize.cpp.o.d"
  "CMakeFiles/wsp_method.dir/macromodel/models.cpp.o"
  "CMakeFiles/wsp_method.dir/macromodel/models.cpp.o.d"
  "CMakeFiles/wsp_method.dir/macromodel/regression.cpp.o"
  "CMakeFiles/wsp_method.dir/macromodel/regression.cpp.o.d"
  "CMakeFiles/wsp_method.dir/select/callgraph.cpp.o"
  "CMakeFiles/wsp_method.dir/select/callgraph.cpp.o.d"
  "CMakeFiles/wsp_method.dir/select/select.cpp.o"
  "CMakeFiles/wsp_method.dir/select/select.cpp.o.d"
  "CMakeFiles/wsp_method.dir/tie/characterize.cpp.o"
  "CMakeFiles/wsp_method.dir/tie/characterize.cpp.o.d"
  "libwsp_method.a"
  "libwsp_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
