file(REMOVE_RECURSE
  "libwsp_method.a"
)
