# Empty dependencies file for wsp_method.
# This may be replaced when dependencies are built.
