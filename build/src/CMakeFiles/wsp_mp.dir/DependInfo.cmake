
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/barrett.cpp" "src/CMakeFiles/wsp_mp.dir/mp/barrett.cpp.o" "gcc" "src/CMakeFiles/wsp_mp.dir/mp/barrett.cpp.o.d"
  "/root/repo/src/mp/crt.cpp" "src/CMakeFiles/wsp_mp.dir/mp/crt.cpp.o" "gcc" "src/CMakeFiles/wsp_mp.dir/mp/crt.cpp.o.d"
  "/root/repo/src/mp/modexp.cpp" "src/CMakeFiles/wsp_mp.dir/mp/modexp.cpp.o" "gcc" "src/CMakeFiles/wsp_mp.dir/mp/modexp.cpp.o.d"
  "/root/repo/src/mp/montgomery.cpp" "src/CMakeFiles/wsp_mp.dir/mp/montgomery.cpp.o" "gcc" "src/CMakeFiles/wsp_mp.dir/mp/montgomery.cpp.o.d"
  "/root/repo/src/mp/mpn.cpp" "src/CMakeFiles/wsp_mp.dir/mp/mpn.cpp.o" "gcc" "src/CMakeFiles/wsp_mp.dir/mp/mpn.cpp.o.d"
  "/root/repo/src/mp/mpz.cpp" "src/CMakeFiles/wsp_mp.dir/mp/mpz.cpp.o" "gcc" "src/CMakeFiles/wsp_mp.dir/mp/mpz.cpp.o.d"
  "/root/repo/src/mp/prime.cpp" "src/CMakeFiles/wsp_mp.dir/mp/prime.cpp.o" "gcc" "src/CMakeFiles/wsp_mp.dir/mp/prime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
