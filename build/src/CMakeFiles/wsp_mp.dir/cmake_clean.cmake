file(REMOVE_RECURSE
  "CMakeFiles/wsp_mp.dir/mp/barrett.cpp.o"
  "CMakeFiles/wsp_mp.dir/mp/barrett.cpp.o.d"
  "CMakeFiles/wsp_mp.dir/mp/crt.cpp.o"
  "CMakeFiles/wsp_mp.dir/mp/crt.cpp.o.d"
  "CMakeFiles/wsp_mp.dir/mp/modexp.cpp.o"
  "CMakeFiles/wsp_mp.dir/mp/modexp.cpp.o.d"
  "CMakeFiles/wsp_mp.dir/mp/montgomery.cpp.o"
  "CMakeFiles/wsp_mp.dir/mp/montgomery.cpp.o.d"
  "CMakeFiles/wsp_mp.dir/mp/mpn.cpp.o"
  "CMakeFiles/wsp_mp.dir/mp/mpn.cpp.o.d"
  "CMakeFiles/wsp_mp.dir/mp/mpz.cpp.o"
  "CMakeFiles/wsp_mp.dir/mp/mpz.cpp.o.d"
  "CMakeFiles/wsp_mp.dir/mp/prime.cpp.o"
  "CMakeFiles/wsp_mp.dir/mp/prime.cpp.o.d"
  "libwsp_mp.a"
  "libwsp_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
