file(REMOVE_RECURSE
  "libwsp_mp.a"
)
