# Empty dependencies file for wsp_mp.
# This may be replaced when dependencies are built.
