file(REMOVE_RECURSE
  "CMakeFiles/wsp_platform.dir/platform/platform.cpp.o"
  "CMakeFiles/wsp_platform.dir/platform/platform.cpp.o.d"
  "libwsp_platform.a"
  "libwsp_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
