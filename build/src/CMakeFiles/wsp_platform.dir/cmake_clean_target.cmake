file(REMOVE_RECURSE
  "libwsp_platform.a"
)
