# Empty compiler generated dependencies file for wsp_platform.
# This may be replaced when dependencies are built.
