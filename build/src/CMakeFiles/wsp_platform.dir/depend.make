# Empty dependencies file for wsp_platform.
# This may be replaced when dependencies are built.
