
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/wsp_sim.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/wsp_sim.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/wsp_sim.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/wsp_sim.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/wsp_sim.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/wsp_sim.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/wsp_sim.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/wsp_sim.dir/sim/memory.cpp.o.d"
  "/root/repo/src/sim/profiler.cpp" "src/CMakeFiles/wsp_sim.dir/sim/profiler.cpp.o" "gcc" "src/CMakeFiles/wsp_sim.dir/sim/profiler.cpp.o.d"
  "/root/repo/src/xasm/program.cpp" "src/CMakeFiles/wsp_sim.dir/xasm/program.cpp.o" "gcc" "src/CMakeFiles/wsp_sim.dir/xasm/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
