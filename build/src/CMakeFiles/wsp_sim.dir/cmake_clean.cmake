file(REMOVE_RECURSE
  "CMakeFiles/wsp_sim.dir/isa/disasm.cpp.o"
  "CMakeFiles/wsp_sim.dir/isa/disasm.cpp.o.d"
  "CMakeFiles/wsp_sim.dir/sim/cache.cpp.o"
  "CMakeFiles/wsp_sim.dir/sim/cache.cpp.o.d"
  "CMakeFiles/wsp_sim.dir/sim/cpu.cpp.o"
  "CMakeFiles/wsp_sim.dir/sim/cpu.cpp.o.d"
  "CMakeFiles/wsp_sim.dir/sim/memory.cpp.o"
  "CMakeFiles/wsp_sim.dir/sim/memory.cpp.o.d"
  "CMakeFiles/wsp_sim.dir/sim/profiler.cpp.o"
  "CMakeFiles/wsp_sim.dir/sim/profiler.cpp.o.d"
  "CMakeFiles/wsp_sim.dir/xasm/program.cpp.o"
  "CMakeFiles/wsp_sim.dir/xasm/program.cpp.o.d"
  "libwsp_sim.a"
  "libwsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
