file(REMOVE_RECURSE
  "CMakeFiles/wsp_ssl.dir/ssl/esp.cpp.o"
  "CMakeFiles/wsp_ssl.dir/ssl/esp.cpp.o.d"
  "CMakeFiles/wsp_ssl.dir/ssl/ssl.cpp.o"
  "CMakeFiles/wsp_ssl.dir/ssl/ssl.cpp.o.d"
  "CMakeFiles/wsp_ssl.dir/ssl/wep.cpp.o"
  "CMakeFiles/wsp_ssl.dir/ssl/wep.cpp.o.d"
  "CMakeFiles/wsp_ssl.dir/ssl/workload.cpp.o"
  "CMakeFiles/wsp_ssl.dir/ssl/workload.cpp.o.d"
  "libwsp_ssl.a"
  "libwsp_ssl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_ssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
