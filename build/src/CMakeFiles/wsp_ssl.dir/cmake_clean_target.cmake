file(REMOVE_RECURSE
  "libwsp_ssl.a"
)
