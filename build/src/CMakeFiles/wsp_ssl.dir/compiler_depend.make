# Empty compiler generated dependencies file for wsp_ssl.
# This may be replaced when dependencies are built.
