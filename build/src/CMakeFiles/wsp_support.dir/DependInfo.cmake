
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/hex.cpp" "src/CMakeFiles/wsp_support.dir/support/hex.cpp.o" "gcc" "src/CMakeFiles/wsp_support.dir/support/hex.cpp.o.d"
  "/root/repo/src/support/random.cpp" "src/CMakeFiles/wsp_support.dir/support/random.cpp.o" "gcc" "src/CMakeFiles/wsp_support.dir/support/random.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/wsp_support.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/wsp_support.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/threadpool.cpp" "src/CMakeFiles/wsp_support.dir/support/threadpool.cpp.o" "gcc" "src/CMakeFiles/wsp_support.dir/support/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
