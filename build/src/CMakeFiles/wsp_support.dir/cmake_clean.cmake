file(REMOVE_RECURSE
  "CMakeFiles/wsp_support.dir/support/hex.cpp.o"
  "CMakeFiles/wsp_support.dir/support/hex.cpp.o.d"
  "CMakeFiles/wsp_support.dir/support/random.cpp.o"
  "CMakeFiles/wsp_support.dir/support/random.cpp.o.d"
  "CMakeFiles/wsp_support.dir/support/stats.cpp.o"
  "CMakeFiles/wsp_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/wsp_support.dir/support/threadpool.cpp.o"
  "CMakeFiles/wsp_support.dir/support/threadpool.cpp.o.d"
  "libwsp_support.a"
  "libwsp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
