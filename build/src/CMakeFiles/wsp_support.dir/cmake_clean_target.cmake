file(REMOVE_RECURSE
  "libwsp_support.a"
)
