# Empty dependencies file for wsp_support.
# This may be replaced when dependencies are built.
