file(REMOVE_RECURSE
  "CMakeFiles/wsp_tie.dir/tie/adcurve.cpp.o"
  "CMakeFiles/wsp_tie.dir/tie/adcurve.cpp.o.d"
  "CMakeFiles/wsp_tie.dir/tie/area.cpp.o"
  "CMakeFiles/wsp_tie.dir/tie/area.cpp.o.d"
  "CMakeFiles/wsp_tie.dir/tie/candidates.cpp.o"
  "CMakeFiles/wsp_tie.dir/tie/candidates.cpp.o.d"
  "CMakeFiles/wsp_tie.dir/tie/custom.cpp.o"
  "CMakeFiles/wsp_tie.dir/tie/custom.cpp.o.d"
  "libwsp_tie.a"
  "libwsp_tie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_tie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
