file(REMOVE_RECURSE
  "libwsp_tie.a"
)
