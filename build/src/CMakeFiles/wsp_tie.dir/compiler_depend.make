# Empty compiler generated dependencies file for wsp_tie.
# This may be replaced when dependencies are built.
