# Empty dependencies file for wsp_tie.
# This may be replaced when dependencies are built.
