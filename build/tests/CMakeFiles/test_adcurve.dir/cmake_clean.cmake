file(REMOVE_RECURSE
  "CMakeFiles/test_adcurve.dir/test_adcurve.cpp.o"
  "CMakeFiles/test_adcurve.dir/test_adcurve.cpp.o.d"
  "test_adcurve"
  "test_adcurve.pdb"
  "test_adcurve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adcurve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
