# Empty compiler generated dependencies file for test_adcurve.
# This may be replaced when dependencies are built.
