file(REMOVE_RECURSE
  "CMakeFiles/test_barrett.dir/test_barrett.cpp.o"
  "CMakeFiles/test_barrett.dir/test_barrett.cpp.o.d"
  "test_barrett"
  "test_barrett.pdb"
  "test_barrett[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_barrett.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
