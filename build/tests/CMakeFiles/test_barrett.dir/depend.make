# Empty dependencies file for test_barrett.
# This may be replaced when dependencies are built.
