file(REMOVE_RECURSE
  "CMakeFiles/test_elgamal.dir/test_elgamal.cpp.o"
  "CMakeFiles/test_elgamal.dir/test_elgamal.cpp.o.d"
  "test_elgamal"
  "test_elgamal.pdb"
  "test_elgamal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elgamal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
