file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_aes.dir/test_kernels_aes.cpp.o"
  "CMakeFiles/test_kernels_aes.dir/test_kernels_aes.cpp.o.d"
  "test_kernels_aes"
  "test_kernels_aes.pdb"
  "test_kernels_aes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
