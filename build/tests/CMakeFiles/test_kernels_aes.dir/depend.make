# Empty dependencies file for test_kernels_aes.
# This may be replaced when dependencies are built.
