file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_cached.dir/test_kernels_cached.cpp.o"
  "CMakeFiles/test_kernels_cached.dir/test_kernels_cached.cpp.o.d"
  "test_kernels_cached"
  "test_kernels_cached.pdb"
  "test_kernels_cached[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_cached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
