# Empty dependencies file for test_kernels_cached.
# This may be replaced when dependencies are built.
