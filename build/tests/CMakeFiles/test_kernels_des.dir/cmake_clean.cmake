file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_des.dir/test_kernels_des.cpp.o"
  "CMakeFiles/test_kernels_des.dir/test_kernels_des.cpp.o.d"
  "test_kernels_des"
  "test_kernels_des.pdb"
  "test_kernels_des[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
