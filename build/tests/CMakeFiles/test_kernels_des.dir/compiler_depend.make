# Empty compiler generated dependencies file for test_kernels_des.
# This may be replaced when dependencies are built.
