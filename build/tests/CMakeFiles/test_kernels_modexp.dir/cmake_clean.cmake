file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_modexp.dir/test_kernels_modexp.cpp.o"
  "CMakeFiles/test_kernels_modexp.dir/test_kernels_modexp.cpp.o.d"
  "test_kernels_modexp"
  "test_kernels_modexp.pdb"
  "test_kernels_modexp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_modexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
