# Empty dependencies file for test_kernels_modexp.
# This may be replaced when dependencies are built.
