file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_mpn.dir/test_kernels_mpn.cpp.o"
  "CMakeFiles/test_kernels_mpn.dir/test_kernels_mpn.cpp.o.d"
  "test_kernels_mpn"
  "test_kernels_mpn.pdb"
  "test_kernels_mpn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_mpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
