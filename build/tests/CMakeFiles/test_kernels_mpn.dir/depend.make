# Empty dependencies file for test_kernels_mpn.
# This may be replaced when dependencies are built.
