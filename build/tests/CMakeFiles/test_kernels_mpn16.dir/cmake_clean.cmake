file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_mpn16.dir/test_kernels_mpn16.cpp.o"
  "CMakeFiles/test_kernels_mpn16.dir/test_kernels_mpn16.cpp.o.d"
  "test_kernels_mpn16"
  "test_kernels_mpn16.pdb"
  "test_kernels_mpn16[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_mpn16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
