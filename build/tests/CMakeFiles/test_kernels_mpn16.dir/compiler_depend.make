# Empty compiler generated dependencies file for test_kernels_mpn16.
# This may be replaced when dependencies are built.
