file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_sha1.dir/test_kernels_sha1.cpp.o"
  "CMakeFiles/test_kernels_sha1.dir/test_kernels_sha1.cpp.o.d"
  "test_kernels_sha1"
  "test_kernels_sha1.pdb"
  "test_kernels_sha1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_sha1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
