file(REMOVE_RECURSE
  "CMakeFiles/test_macromodel.dir/test_macromodel.cpp.o"
  "CMakeFiles/test_macromodel.dir/test_macromodel.cpp.o.d"
  "test_macromodel"
  "test_macromodel.pdb"
  "test_macromodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_macromodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
