# Empty dependencies file for test_macromodel.
# This may be replaced when dependencies are built.
