file(REMOVE_RECURSE
  "CMakeFiles/test_modexp.dir/test_modexp.cpp.o"
  "CMakeFiles/test_modexp.dir/test_modexp.cpp.o.d"
  "test_modexp"
  "test_modexp.pdb"
  "test_modexp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
