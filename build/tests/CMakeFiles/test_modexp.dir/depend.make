# Empty dependencies file for test_modexp.
# This may be replaced when dependencies are built.
