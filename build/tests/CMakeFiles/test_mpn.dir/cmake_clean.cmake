file(REMOVE_RECURSE
  "CMakeFiles/test_mpn.dir/test_mpn.cpp.o"
  "CMakeFiles/test_mpn.dir/test_mpn.cpp.o.d"
  "test_mpn"
  "test_mpn.pdb"
  "test_mpn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
