# Empty dependencies file for test_mpn.
# This may be replaced when dependencies are built.
