
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel_explore.cpp" "tests/CMakeFiles/test_parallel_explore.dir/test_parallel_explore.cpp.o" "gcc" "tests/CMakeFiles/test_parallel_explore.dir/test_parallel_explore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsp_method.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
