file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_explore.dir/test_parallel_explore.cpp.o"
  "CMakeFiles/test_parallel_explore.dir/test_parallel_explore.cpp.o.d"
  "test_parallel_explore"
  "test_parallel_explore.pdb"
  "test_parallel_explore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
