file(REMOVE_RECURSE
  "CMakeFiles/test_prime.dir/test_prime.cpp.o"
  "CMakeFiles/test_prime.dir/test_prime.cpp.o.d"
  "test_prime"
  "test_prime.pdb"
  "test_prime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
