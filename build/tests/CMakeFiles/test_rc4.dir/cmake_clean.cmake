file(REMOVE_RECURSE
  "CMakeFiles/test_rc4.dir/test_rc4.cpp.o"
  "CMakeFiles/test_rc4.dir/test_rc4.cpp.o.d"
  "test_rc4"
  "test_rc4.pdb"
  "test_rc4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
