# Empty compiler generated dependencies file for test_rc4.
# This may be replaced when dependencies are built.
