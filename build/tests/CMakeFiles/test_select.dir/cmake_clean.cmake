file(REMOVE_RECURSE
  "CMakeFiles/test_select.dir/test_select.cpp.o"
  "CMakeFiles/test_select.dir/test_select.cpp.o.d"
  "test_select"
  "test_select.pdb"
  "test_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
