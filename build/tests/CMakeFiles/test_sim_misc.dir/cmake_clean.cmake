file(REMOVE_RECURSE
  "CMakeFiles/test_sim_misc.dir/test_sim_misc.cpp.o"
  "CMakeFiles/test_sim_misc.dir/test_sim_misc.cpp.o.d"
  "test_sim_misc"
  "test_sim_misc.pdb"
  "test_sim_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
