# Empty dependencies file for test_ssl.
# This may be replaced when dependencies are built.
