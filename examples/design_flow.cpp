// The complete system-level design flow of the paper's Fig. 3, end to end:
//
//   1. performance characterization  (ISS + regression -> macro-models)
//   2. algorithm exploration         (native estimation over the 450 configs)
//   3. custom-instruction formulation (measured A-D curves per leaf routine)
//   4. global selection              (call-graph propagation + area budget)
//   5. evaluation                    (base vs customized platform on the ISS)
//
//   $ ./examples/design_flow
#include <cstdio>

#include "explore/space.h"
#include "kernels/modexp_kernel.h"
#include "macromodel/characterize.h"
#include "mp/prime.h"
#include "select/select.h"

namespace {

using namespace wsp;

tie::ADCurve measure_addmul_curve() {
  Rng rng(31);
  const std::size_t n = 16;
  std::vector<std::uint32_t> a(n);
  for (auto& x : a) x = rng.next_u32();
  const auto catalog = tie::default_catalog();
  tie::ADCurve curve;
  for (int width : {0, 1, 2, 4, 8}) {
    kernels::Machine m = kernels::make_mpn_machine(kernels::MpnTieConfig{0, width});
    std::vector<std::uint32_t> r(n, 3);
    const auto res = kernels::run_addmul_1(m, r, a, 0xabcdef01u);
    std::set<std::string> instrs;
    if (width) instrs = {"ur_load", "ur_store", "mac_" + std::to_string(width)};
    curve.add({catalog.set_area(instrs), static_cast<double>(res.cycles), instrs});
  }
  return curve;
}

}  // namespace

int main() {
  std::printf("wsp design-flow walkthrough (paper Fig. 3)\n");

  // ---- 1. performance characterization ------------------------------------
  std::printf("\n[1] characterization: ISS sweeps + statistical regression\n");
  kernels::Machine machine = kernels::make_modexp_machine();
  macromodel::CharacterizeOptions copt;
  copt.sizes = {2, 4, 8, 16, 24, 32};
  const auto models = macromodel::characterize_mpn(machine, copt);
  std::printf("    mpn_addmul_1 model: cycles = %s\n",
              models.get(Prim::kAddMul1, 32).model.to_string({"n", "m"}).c_str());

  // ---- 2. algorithm exploration ---------------------------------------------
  std::printf("\n[2] algorithm exploration over 450 configurations (native)\n");
  Rng rng(63);
  auto workload = explore::make_rsa_workload(512, rng);
  workload.repetitions = 2;
  const auto exploration = explore::explore_modexp_space(workload, models);
  std::printf("    best algorithm: %s\n",
              exploration.ranked.front().config.name().c_str());

  // ---- 3. custom-instruction formulation ------------------------------------
  std::printf("\n[3] formulation: measured A-D curve for mpn_addmul_1\n");
  std::map<std::string, tie::ADCurve> leaf_curves;
  leaf_curves["mpn_addmul_1"] = measure_addmul_curve();
  for (const auto& p : leaf_curves["mpn_addmul_1"].points()) {
    std::printf("    area %7.0f -> %5.0f cycles\n", p.area, p.cycles);
  }

  // ---- 4. global selection ----------------------------------------------------
  std::printf("\n[4] global selection on the profiled call graph\n");
  machine.cpu().reset_stats();
  kernels::IssModexp mx(machine);
  Mpz mod = random_bits(512, rng);
  if (mod.is_even()) mod = mod + Mpz(1);
  mx.mont_mul_once(Mpz(17), Mpz(19), mod);
  const auto graph =
      select::CallGraph::from_profiler(machine.cpu().profiler(), "mont_mul");
  const auto catalog = tie::default_catalog();
  const auto selection =
      select::select_instructions(graph, "mont_mul", leaf_curves, catalog, 40000.0);
  std::printf("    chosen (budget 40000 grids): area %.0f, %0.f cycles/mont_mul\n",
              selection.chosen.area, selection.chosen.cycles);
  for (const auto& i : selection.chosen.instrs) std::printf("      + %s\n", i.c_str());

  // ---- 5. evaluation -------------------------------------------------------------
  std::printf("\n[5] evaluation: base vs customized platform on the ISS\n");
  const auto key = rsa::generate_key(512, rng);
  const Mpz ct = random_below(key.n, rng);
  kernels::Machine opt = kernels::make_modexp_machine(kernels::MpnTieConfig{8, 8});
  kernels::IssModexp mx_opt(opt);
  const auto base_run = mx.powm_base(ct, key.d, key.n);
  const auto opt_run = mx_opt.rsa_crt(ct, key, 5);
  std::printf("    RSA-512 private op: base %llu cycles, optimized %llu cycles "
              "-> %.1fX\n",
              static_cast<unsigned long long>(base_run.cycles),
              static_cast<unsigned long long>(opt_run.cycles),
              static_cast<double>(base_run.cycles) /
                  static_cast<double>(opt_run.cycles));
  std::printf("    results agree: %s\n",
              base_run.result == opt_run.result ? "yes" : "NO (bug!)");
  std::printf("\ndone — this is the loop the paper iterates until the "
              "performance target is met.\n");
  return 0;
}
