// Algorithm design-space exploration from the public API: characterize the
// library routines once on the ISS, then rank all 450 modular-
// exponentiation configurations for an RSA workload at native speed and
// print the leaders (the paper's Sec. 3.2/4.3 flow, as a user would run it).
//
//   $ ./examples/explore_modexp [--trace out.json]
//
// With --trace, the whole flow is recorded as a Chrome-trace file
// (docs/observability.md): ISS function spans on the simulated-cycle
// timeline, one estimation span per configuration on the host timeline.
#include <cstdio>
#include <cstring>

#include "explore/space.h"
#include "macromodel/characterize.h"
#include "support/trace.h"

int main(int argc, char** argv) {
  using namespace wsp;
  const char* trace_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
  }
  if (trace_path) trace::start();

  std::printf("wsp modular-exponentiation design-space exploration\n\n");

  std::printf("[1/3] characterizing mpn library routines on the ISS...\n");
  kernels::Machine machine = kernels::make_mpn_machine();
  kernels::Machine machine16 = kernels::make_mpn16_machine();
  const auto models = macromodel::characterize_mpn_full(machine, machine16);

  std::printf("[2/3] building the RSA-768 exploration workload...\n");
  Rng rng(123);
  auto workload = explore::make_rsa_workload(768, rng);
  workload.repetitions = 2;

  std::printf("[3/3] estimating all 450 configurations natively...\n\n");
  const auto report = explore::explore_modexp_space(workload, models);

  std::printf("explored %zu configurations in %.2f s\n\n", report.configs,
              report.wall_seconds);
  std::printf("rank  configuration                                          est. cycles/op\n");
  for (std::size_t i = 0; i < 10; ++i) {
    std::printf("%4zu  %-52s %14.0f\n", i + 1,
                report.ranked[i].config.name().c_str(),
                report.ranked[i].estimate.avg_cycles);
  }
  const auto& best = report.ranked.front();
  const auto& worst = report.ranked.back();
  std::printf("\nbest-to-worst spread: %.1fx (%s vs %s)\n",
              worst.estimate.avg_cycles / best.estimate.avg_cycles,
              best.config.name().c_str(), worst.config.name().c_str());
  std::printf("\nThe winning configuration is the one the optimized platform "
              "ships with:\nMontgomery multiplication, a wide exponent "
              "window, CRT and full software caching.\n");

  if (trace_path) {
    const auto events = trace::stop();
    if (trace::write_chrome_json(events, trace_path)) {
      std::printf("\ntrace: %zu events -> %s (open in https://ui.perfetto.dev)\n",
                  events.size(), trace_path);
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path);
      return 1;
    }
  }
  return 0;
}
