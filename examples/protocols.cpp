// One platform, three protocol layers — the paper's core flexibility
// argument (Sec. 1): the same programmable security processor must serve
// WEP at the link layer, IPsec ESP at the network layer and SSL at the
// transport layer simultaneously.  This example protects the same message
// at all three layers with the library's real cryptography.
//
//   $ ./examples/protocols
#include <cstdio>
#include <string>

#include "ssl/esp.h"
#include "ssl/ssl.h"
#include "ssl/wep.h"
#include "support/hex.h"

int main() {
  using namespace wsp;
  std::printf("wsp multi-protocol demo: WEP / IPsec-ESP / SSL\n\n");

  Rng rng(99);
  const std::string text = "handset telemetry frame #42";
  const std::vector<std::uint8_t> payload(text.begin(), text.end());

  // --- link layer: WEP ------------------------------------------------------
  const auto wep_key = rng.bytes(13);
  const auto frame = wep::seal(payload, wep_key, rng);
  std::printf("[WEP]  iv=%06x  %zu -> %zu bytes, ct head %s...\n", frame.iv,
              payload.size(), frame.ciphertext.size(),
              to_hex(frame.ciphertext).substr(0, 16).c_str());
  std::printf("       round trip: %s\n",
              wep::open(frame, wep_key) == payload ? "ok" : "FAILED");

  // --- network layer: IPsec ESP ---------------------------------------------
  esp::Sa sa;
  sa.spi = 0xC0DE;
  sa.enc_key = rng.bytes(24);
  sa.auth_key = rng.bytes(20);
  const auto packet = esp::seal(sa, payload, rng);
  std::uint32_t seq = 0;
  const auto esp_plain = esp::open(sa, packet, &seq);
  std::printf("[ESP]  spi=%04x seq=%u  %zu -> %zu bytes (3DES-CBC + "
              "HMAC-SHA1-96)\n",
              sa.spi, seq, payload.size(), packet.size());
  std::printf("       round trip: %s\n", esp_plain == payload ? "ok" : "FAILED");

  // --- transport layer: SSL ---------------------------------------------------
  const auto server_key = rsa::generate_key(512, rng);
  ModexpEngine ce{ModexpConfig{}}, se{ModexpConfig{}};
  auto hs = ssl::perform_handshake(server_key, ssl::Cipher::kAes128Cbc, ce, se, rng);
  const auto record = hs.client_write.seal(payload);
  std::printf("[SSL]  handshake %zu wire bytes; record %zu -> %zu bytes "
              "(AES-128-CBC + HMAC-SHA1)\n",
              hs.handshake_bytes, payload.size(), record.size());
  std::printf("       round trip: %s\n",
              hs.client_write.open(record) == payload ? "ok" : "FAILED");

  std::printf("\nAll three stacks run on the same crypto substrate — the "
              "programmability the\npaper trades against raw ASIC "
              "efficiency.\n");
  return 0;
}
