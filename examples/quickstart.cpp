// Quickstart: the SecurityPlatform public API.
//
// Creates the baseline and the optimized platform, runs the same
// cryptographic primitives on both (every operation executes on the
// cycle-accurate simulator), and prints the cycle costs and wall times at
// the 188 MHz platform clock.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "platform/platform.h"
#include "support/hex.h"
#include "support/random.h"

int main() {
  using namespace wsp;
  std::printf("wsp quickstart: wireless security processing platform\n\n");

  Rng rng(2026);
  const auto message = rng.bytes(64);
  const auto aes_key = rng.bytes(16);
  const auto rsa_key = rsa::generate_key(512, rng);

  for (platform::Config config :
       {platform::Config::kBaseline, platform::Config::kOptimized}) {
    platform::SecurityPlatform p(config);
    std::printf("--- %s platform ---\n", to_string(config));

    p.reset_cycles();
    const auto des_ct = p.des_encrypt(message, 0x0123456789abcdefull);
    std::printf("DES-ECB of %zu bytes:    %8llu cycles (%.1f us @188MHz)\n",
                message.size(),
                static_cast<unsigned long long>(p.cycles_consumed()),
                p.seconds_at_clock() * 1e6);

    p.reset_cycles();
    const auto aes_ct = p.aes128_encrypt(message, aes_key);
    std::printf("AES-128-ECB of %zu bytes:%8llu cycles (%.1f us)\n",
                message.size(),
                static_cast<unsigned long long>(p.cycles_consumed()),
                p.seconds_at_clock() * 1e6);

    p.reset_cycles();
    const Mpz m = Mpz::from_bytes_be(rng.bytes(32));
    const Mpz c = p.rsa_public(m, rsa_key.public_key());
    const std::uint64_t pub_cycles = p.cycles_consumed();
    const Mpz back = p.rsa_private(c, rsa_key);
    std::printf("RSA-512 public op:      %8llu cycles\n",
                static_cast<unsigned long long>(pub_cycles));
    std::printf("RSA-512 private op:     %8llu cycles\n",
                static_cast<unsigned long long>(p.cycles_consumed() - pub_cycles));
    std::printf("round trip %s; DES ct head %s..., AES ct head %s...\n\n",
                back == m ? "OK" : "FAILED",
                to_hex(des_ct).substr(0, 16).c_str(),
                to_hex(aes_ct).substr(0, 16).c_str());
  }
  std::printf("Both configurations compute identical results; the optimized\n"
              "platform's custom instructions only change the cycle counts.\n");
  return 0;
}
