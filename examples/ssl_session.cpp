// A complete SSL-style session between an in-process client and server:
// RSA key-exchange handshake, SSLv3-style key derivation, and bidirectional
// authenticated record transfer — all with the library's real cryptography.
// Demonstrates the protocol workload whose acceleration Fig. 8 reports.
//
//   $ ./examples/ssl_session
#include <cstdio>
#include <string>

#include "ssl/ssl.h"
#include "support/hex.h"

int main() {
  using namespace wsp;
  std::printf("wsp SSL-style session demo\n\n");

  Rng rng(7);
  std::printf("generating the server's RSA-1024 key...\n");
  const auto server_key = rsa::generate_key(1024, rng);

  for (ssl::Cipher cipher :
       {ssl::Cipher::kTripleDesCbc, ssl::Cipher::kAes128Cbc, ssl::Cipher::kRc4}) {
    std::printf("\n=== cipher suite: RSA + %s + HMAC-SHA1 ===\n",
                ssl::to_string(cipher));
    ModexpEngine client_engine{ModexpConfig{}};
    // The server uses the explored optimal configuration.
    ModexpConfig server_cfg;
    server_cfg.mul = MulAlgo::kMontCIOS;
    server_cfg.window_bits = 5;
    server_cfg.crt = CrtMode::kGarner;
    server_cfg.caching = Caching::kFull;
    ModexpEngine server_engine(server_cfg);

    auto hs = ssl::perform_handshake(server_key, cipher, client_engine,
                                     server_engine, rng);
    std::printf("handshake complete: %zu wire bytes, master secret %s...\n",
                hs.handshake_bytes,
                to_hex(hs.master_secret).substr(0, 16).c_str());

    const std::string request = "GET /secure/balance HTTP/1.0\r\n\r\n";
    const std::vector<std::uint8_t> req(request.begin(), request.end());
    const auto wire_req = hs.client_write.seal(req);
    std::printf("client -> server: %zu payload bytes -> %zu record bytes\n",
                req.size(), wire_req.size());
    const auto got_req = hs.client_write.open(wire_req);
    std::printf("server received:  \"%.*s...\"\n", 20, got_req.data());

    const std::vector<std::uint8_t> response = Rng(99).bytes(4096);
    const auto wire_resp = hs.server_write.seal(response);
    const auto got_resp = hs.server_write.open(wire_resp);
    std::printf("server -> client: %zu bytes %s\n", response.size(),
                got_resp == response ? "verified (MAC ok)" : "CORRUPTED");

    // Tampering is detected.
    auto evil = hs.client_write.seal({1, 2, 3});
    evil[1] ^= 0x01;
    try {
      hs.client_write.open(evil);
      std::printf("tampered record accepted — BUG!\n");
      return 1;
    } catch (const std::exception& e) {
      std::printf("tampered record rejected: %s\n", e.what());
    }
  }
  return 0;
}
