// Real-time video decryption — the board-prototype demo of the paper's
// Fig. 7 (XT-2000 emulation board driving an LCD panel), reproduced over
// the simulator: synthetic QCIF video frames are AES-CBC decrypted on the
// ISS, and the achievable frame rate at the 188 MHz platform clock is
// reported for the baseline and the optimized platform.
//
//   $ ./examples/video_decrypt
#include <cstdio>

#include "crypto/aes.h"
#include "kernels/aes_kernel.h"
#include "support/random.h"

int main() {
  using namespace wsp;
  std::printf("wsp real-time video decryption demo (paper Fig. 7 scenario)\n\n");

  // QCIF 176x144 @ 12 bpp, a common 2002-era handset video format, with a
  // ~20:1 codec; we decrypt the compressed bitstream.
  const std::size_t frame_bytes = ((176 * 144 * 12) / 8) / 20 / 16 * 16;
  std::printf("frame: QCIF, ~%zu encrypted bytes after compression\n\n",
              frame_bytes);

  Rng rng(5);
  const auto key = rng.bytes(16);
  const auto ks = aes::key_schedule(key);
  std::array<std::uint8_t, 16> iv{};
  const auto ivb = rng.bytes(16);
  std::copy(ivb.begin(), ivb.end(), iv.begin());

  // Produce one encrypted "frame" with the host library.
  const auto plain_frame = rng.bytes(frame_bytes);
  const auto cipher_frame = aes::encrypt_cbc(plain_frame, ks, iv);

  for (auto variant : {kernels::AesKernelVariant::kBase,
                       kernels::AesKernelVariant::kTiePartial}) {
    const bool optimized = variant == kernels::AesKernelVariant::kTiePartial;
    kernels::Machine machine = kernels::make_aes_machine(variant);
    kernels::AesKernel kernel(machine, variant);
    kernel.set_key(key);

    // CBC decryption throughput tracks ECB block throughput; measure the
    // per-frame block workload on the ISS (the chaining XORs are noise).
    std::uint64_t cycles = 0;
    kernel.encrypt_ecb(cipher_frame, &cycles);

    const double mhz = 188.0;
    const double frame_seconds = static_cast<double>(cycles) / (mhz * 1e6);
    const double fps = 1.0 / frame_seconds;
    std::printf("%s platform: %9llu cycles/frame  ->  %6.1f ms/frame, %6.1f fps %s\n",
                optimized ? "optimized" : "baseline ",
                static_cast<unsigned long long>(cycles), frame_seconds * 1e3,
                fps, fps >= 30.0 ? "(real-time)" : "(below 30 fps)");
  }

  std::printf("\nThe custom-instruction platform turns sub-real-time AES "
              "decryption into a\ncomfortable real-time stream — the paper's "
              "board-level demonstration.\n");
  return 0;
}
