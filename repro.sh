#!/bin/sh
# Regenerates everything: build, full test suite, all paper benches.
# Outputs land in test_output.txt and bench_output.txt.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
