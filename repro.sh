#!/bin/sh
# Regenerates everything: build, full test suite, all paper benches, then
# gates the fresh numbers against the committed perf baselines
# (docs/benchmarks.md).  Outputs land in test_output.txt and
# bench_output.txt.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
build/bench/bench_report --check 2>&1 | tee -a bench_output.txt
