#include "crypto/aes.h"

#include <stdexcept>

namespace wsp::aes {

namespace {

std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

// S-box built from the multiplicative inverse in GF(2^8) followed by the
// affine transform, per FIPS-197 — synthesized, not transcribed.
struct Tables {
  std::array<std::uint8_t, 256> sbox{};
  std::array<std::uint8_t, 256> inv_sbox{};
  std::array<std::array<std::uint32_t, 256>, 4> te{};

  Tables() {
    // Build log/antilog tables over generator 3.
    std::array<std::uint8_t, 256> alog{};
    std::array<std::uint8_t, 256> log{};
    std::uint8_t p = 1;
    for (int i = 0; i < 255; ++i) {
      alog[static_cast<std::size_t>(i)] = p;
      log[p] = static_cast<std::uint8_t>(i);
      p = static_cast<std::uint8_t>(p ^ xtime(p));  // multiply by 3
    }
    auto inverse = [&](std::uint8_t a) -> std::uint8_t {
      if (a == 0) return 0;
      return alog[static_cast<std::size_t>((255 - log[a]) % 255)];
    };
    for (int v = 0; v < 256; ++v) {
      const std::uint8_t inv = inverse(static_cast<std::uint8_t>(v));
      std::uint8_t s = 0;
      for (int bit = 0; bit < 8; ++bit) {
        const int b = ((inv >> bit) & 1) ^ ((inv >> ((bit + 4) % 8)) & 1) ^
                      ((inv >> ((bit + 5) % 8)) & 1) ^
                      ((inv >> ((bit + 6) % 8)) & 1) ^
                      ((inv >> ((bit + 7) % 8)) & 1) ^ ((0x63 >> bit) & 1);
        s |= static_cast<std::uint8_t>(b << bit);
      }
      sbox[static_cast<std::size_t>(v)] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(v);
    }
    // Encryption T-tables: column contribution (2s, s, s, 3s) rotated per lane.
    for (int v = 0; v < 256; ++v) {
      const std::uint8_t s = sbox[static_cast<std::size_t>(v)];
      const std::uint8_t s2 = xtime(s);
      const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
      const std::uint32_t t0 = (static_cast<std::uint32_t>(s2) << 24) |
                               (static_cast<std::uint32_t>(s) << 16) |
                               (static_cast<std::uint32_t>(s) << 8) | s3;
      te[0][static_cast<std::size_t>(v)] = t0;
      te[1][static_cast<std::size_t>(v)] = (t0 >> 8) | (t0 << 24);
      te[2][static_cast<std::size_t>(v)] = (t0 >> 16) | (t0 << 16);
      te[3][static_cast<std::size_t>(v)] = (t0 >> 24) | (t0 << 8);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

void store_be32(std::uint32_t v, std::uint8_t* p) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t sub_word(std::uint32_t w) {
  const auto& s = tables().sbox;
  return (static_cast<std::uint32_t>(s[(w >> 24) & 0xff]) << 24) |
         (static_cast<std::uint32_t>(s[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(s[(w >> 8) & 0xff]) << 8) |
         s[w & 0xff];
}

// --- reference round operations on a 16-byte column-major state ----------
// state[4*c + r] is the byte at row r, column c (FIPS-197 layout when the
// input is copied column by column).

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    state[4 * c + 0] ^= static_cast<std::uint8_t>(rk[c] >> 24);
    state[4 * c + 1] ^= static_cast<std::uint8_t>(rk[c] >> 16);
    state[4 * c + 2] ^= static_cast<std::uint8_t>(rk[c] >> 8);
    state[4 * c + 3] ^= static_cast<std::uint8_t>(rk[c]);
  }
}

void sub_bytes(std::uint8_t state[16], const std::array<std::uint8_t, 256>& box) {
  for (int i = 0; i < 16; ++i) state[i] = box[state[i]];
}

void shift_rows(std::uint8_t state[16]) {
  for (int r = 1; r < 4; ++r) {
    std::uint8_t row[4];
    for (int c = 0; c < 4; ++c) row[c] = state[4 * ((c + r) % 4) + r];
    for (int c = 0; c < 4; ++c) state[4 * c + r] = row[c];
  }
}

void inv_shift_rows(std::uint8_t state[16]) {
  for (int r = 1; r < 4; ++r) {
    std::uint8_t row[4];
    for (int c = 0; c < 4; ++c) row[c] = state[4 * ((c + 4 - r) % 4) + r];
    for (int c = 0; c < 4; ++c) state[4 * c + r] = row[c];
  }
}

void mix_columns(std::uint8_t state[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = state + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(std::uint8_t state[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = state + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^
                                       gf_mul(a2, 13) ^ gf_mul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^
                                       gf_mul(a2, 11) ^ gf_mul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^
                                       gf_mul(a2, 14) ^ gf_mul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^
                                       gf_mul(a2, 9) ^ gf_mul(a3, 14));
  }
}

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b) {
    if (b & 1) r ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return r;
}

KeySchedule key_schedule(const std::uint8_t* key, std::size_t key_len) {
  int nk;
  int rounds;
  switch (key_len) {
    case 16: nk = 4; rounds = 10; break;
    case 24: nk = 6; rounds = 12; break;
    case 32: nk = 8; rounds = 14; break;
    default: throw std::invalid_argument("aes: key must be 16/24/32 bytes");
  }
  KeySchedule ks;
  ks.rounds = rounds;
  ks.round_keys.resize(static_cast<std::size_t>(4 * (rounds + 1)));
  for (int i = 0; i < nk; ++i) {
    ks.round_keys[static_cast<std::size_t>(i)] = load_be32(key + 4 * i);
  }
  std::uint32_t rcon = 0x01000000;
  for (int i = nk; i < 4 * (rounds + 1); ++i) {
    std::uint32_t t = ks.round_keys[static_cast<std::size_t>(i - 1)];
    if (i % nk == 0) {
      t = sub_word((t << 8) | (t >> 24)) ^ rcon;
      rcon = static_cast<std::uint32_t>(xtime(static_cast<std::uint8_t>(rcon >> 24)))
             << 24;
    } else if (nk > 6 && i % nk == 4) {
      t = sub_word(t);
    }
    ks.round_keys[static_cast<std::size_t>(i)] =
        ks.round_keys[static_cast<std::size_t>(i - nk)] ^ t;
  }
  return ks;
}

KeySchedule key_schedule(const std::vector<std::uint8_t>& key) {
  return key_schedule(key.data(), key.size());
}

void encrypt_block_ref(const std::uint8_t in[16], std::uint8_t out[16],
                       const KeySchedule& ks) {
  std::uint8_t state[16];
  for (int i = 0; i < 16; ++i) state[i] = in[i];
  const std::uint32_t* rk = ks.round_keys.data();
  add_round_key(state, rk);
  for (int round = 1; round < ks.rounds; ++round) {
    sub_bytes(state, tables().sbox);
    shift_rows(state);
    mix_columns(state);
    add_round_key(state, rk + 4 * round);
  }
  sub_bytes(state, tables().sbox);
  shift_rows(state);
  add_round_key(state, rk + 4 * ks.rounds);
  for (int i = 0; i < 16; ++i) out[i] = state[i];
}

void decrypt_block_ref(const std::uint8_t in[16], std::uint8_t out[16],
                       const KeySchedule& ks) {
  std::uint8_t state[16];
  for (int i = 0; i < 16; ++i) state[i] = in[i];
  const std::uint32_t* rk = ks.round_keys.data();
  add_round_key(state, rk + 4 * ks.rounds);
  for (int round = ks.rounds - 1; round >= 1; --round) {
    inv_shift_rows(state);
    sub_bytes(state, tables().inv_sbox);
    add_round_key(state, rk + 4 * round);
    inv_mix_columns(state);
  }
  inv_shift_rows(state);
  sub_bytes(state, tables().inv_sbox);
  add_round_key(state, rk);
  for (int i = 0; i < 16; ++i) out[i] = state[i];
}

void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16],
                   const KeySchedule& ks) {
  const auto& t = tables();
  const std::uint32_t* rk = ks.round_keys.data();
  std::uint32_t s0 = load_be32(in + 0) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];
  for (int round = 1; round < ks.rounds; ++round) {
    const std::uint32_t* k = rk + 4 * round;
    const std::uint32_t n0 = t.te[0][s0 >> 24] ^ t.te[1][(s1 >> 16) & 0xff] ^
                             t.te[2][(s2 >> 8) & 0xff] ^ t.te[3][s3 & 0xff] ^ k[0];
    const std::uint32_t n1 = t.te[0][s1 >> 24] ^ t.te[1][(s2 >> 16) & 0xff] ^
                             t.te[2][(s3 >> 8) & 0xff] ^ t.te[3][s0 & 0xff] ^ k[1];
    const std::uint32_t n2 = t.te[0][s2 >> 24] ^ t.te[1][(s3 >> 16) & 0xff] ^
                             t.te[2][(s0 >> 8) & 0xff] ^ t.te[3][s1 & 0xff] ^ k[2];
    const std::uint32_t n3 = t.te[0][s3 >> 24] ^ t.te[1][(s0 >> 16) & 0xff] ^
                             t.te[2][(s1 >> 8) & 0xff] ^ t.te[3][s2 & 0xff] ^ k[3];
    s0 = n0; s1 = n1; s2 = n2; s3 = n3;
  }
  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  const std::uint32_t* k = rk + 4 * ks.rounds;
  const auto& sb = t.sbox;
  const std::uint32_t o0 = (static_cast<std::uint32_t>(sb[s0 >> 24]) << 24) |
                           (static_cast<std::uint32_t>(sb[(s1 >> 16) & 0xff]) << 16) |
                           (static_cast<std::uint32_t>(sb[(s2 >> 8) & 0xff]) << 8) |
                           sb[s3 & 0xff];
  const std::uint32_t o1 = (static_cast<std::uint32_t>(sb[s1 >> 24]) << 24) |
                           (static_cast<std::uint32_t>(sb[(s2 >> 16) & 0xff]) << 16) |
                           (static_cast<std::uint32_t>(sb[(s3 >> 8) & 0xff]) << 8) |
                           sb[s0 & 0xff];
  const std::uint32_t o2 = (static_cast<std::uint32_t>(sb[s2 >> 24]) << 24) |
                           (static_cast<std::uint32_t>(sb[(s3 >> 16) & 0xff]) << 16) |
                           (static_cast<std::uint32_t>(sb[(s0 >> 8) & 0xff]) << 8) |
                           sb[s1 & 0xff];
  const std::uint32_t o3 = (static_cast<std::uint32_t>(sb[s3 >> 24]) << 24) |
                           (static_cast<std::uint32_t>(sb[(s0 >> 16) & 0xff]) << 16) |
                           (static_cast<std::uint32_t>(sb[(s1 >> 8) & 0xff]) << 8) |
                           sb[s2 & 0xff];
  store_be32(o0 ^ k[0], out + 0);
  store_be32(o1 ^ k[1], out + 4);
  store_be32(o2 ^ k[2], out + 8);
  store_be32(o3 ^ k[3], out + 12);
}

void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16],
                   const KeySchedule& ks) {
  // The T-table inverse cipher offers no extra coverage over the reference
  // inverse here; delegate to it (the kernels implement encryption, and CBC
  // decryption in SSL uses the encrypt direction only for HMAC).
  decrypt_block_ref(in, out, ks);
}

namespace {
void check_len16(std::size_t n) {
  if (n % 16 != 0) throw std::invalid_argument("aes: length must be multiple of 16");
}
}  // namespace

std::vector<std::uint8_t> encrypt_ecb(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks) {
  check_len16(data.size());
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); i += 16) {
    encrypt_block(data.data() + i, out.data() + i, ks);
  }
  return out;
}

std::vector<std::uint8_t> decrypt_ecb(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks) {
  check_len16(data.size());
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); i += 16) {
    decrypt_block(data.data() + i, out.data() + i, ks);
  }
  return out;
}

std::vector<std::uint8_t> encrypt_cbc(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks,
                                      const std::array<std::uint8_t, 16>& iv) {
  check_len16(data.size());
  std::vector<std::uint8_t> out(data.size());
  std::array<std::uint8_t, 16> chain = iv;
  std::uint8_t buf[16];
  for (std::size_t i = 0; i < data.size(); i += 16) {
    for (int b = 0; b < 16; ++b) {
      buf[b] = static_cast<std::uint8_t>(data[i + static_cast<std::size_t>(b)] ^
                                         chain[static_cast<std::size_t>(b)]);
    }
    encrypt_block(buf, out.data() + i, ks);
    for (int b = 0; b < 16; ++b) chain[static_cast<std::size_t>(b)] = out[i + static_cast<std::size_t>(b)];
  }
  return out;
}

std::vector<std::uint8_t> decrypt_cbc(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks,
                                      const std::array<std::uint8_t, 16>& iv) {
  check_len16(data.size());
  std::vector<std::uint8_t> out(data.size());
  std::array<std::uint8_t, 16> chain = iv;
  std::uint8_t buf[16];
  for (std::size_t i = 0; i < data.size(); i += 16) {
    decrypt_block(data.data() + i, buf, ks);
    for (int b = 0; b < 16; ++b) {
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(buf[b] ^ chain[static_cast<std::size_t>(b)]);
      chain[static_cast<std::size_t>(b)] = data[i + static_cast<std::size_t>(b)];
    }
  }
  return out;
}

const std::array<std::uint8_t, 256>& sbox() { return tables().sbox; }
const std::array<std::uint8_t, 256>& inv_sbox() { return tables().inv_sbox; }
const std::array<std::uint32_t, 256>& te(int i) {
  return tables().te[static_cast<std::size_t>(i)];
}

}  // namespace wsp::aes
