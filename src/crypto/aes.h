// AES-128/192/256 (FIPS-197).
//
// Two functionally identical paths:
//  * reference round operations (SubBytes / ShiftRows / MixColumns) used as
//    ground truth and mirroring the byte-oriented "well-optimized C"
//    baseline measured in the paper's Table 1, and
//  * a T-table path, the structure the XR32 kernels implement.
// The S-box is synthesized from GF(2^8) arithmetic at startup rather than
// transcribed, and all tables are exported for the kernel builders.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace wsp::aes {

/// Expanded key: 4*(rounds+1) round-key words.
struct KeySchedule {
  std::vector<std::uint32_t> round_keys;  ///< big-endian packed words
  int rounds = 0;                         ///< 10, 12 or 14
};

/// Expands a 16/24/32-byte key.
KeySchedule key_schedule(const std::uint8_t* key, std::size_t key_len);
KeySchedule key_schedule(const std::vector<std::uint8_t>& key);

/// Inverse-cipher key schedule is derived internally by decrypt functions.
void encrypt_block_ref(const std::uint8_t in[16], std::uint8_t out[16],
                       const KeySchedule& ks);
void decrypt_block_ref(const std::uint8_t in[16], std::uint8_t out[16],
                       const KeySchedule& ks);

/// T-table implementations (same results).
void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16],
                   const KeySchedule& ks);
void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16],
                   const KeySchedule& ks);

/// ECB / CBC over byte buffers (length must be a multiple of 16).
std::vector<std::uint8_t> encrypt_ecb(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks);
std::vector<std::uint8_t> decrypt_ecb(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks);
std::vector<std::uint8_t> encrypt_cbc(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks,
                                      const std::array<std::uint8_t, 16>& iv);
std::vector<std::uint8_t> decrypt_cbc(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks,
                                      const std::array<std::uint8_t, 16>& iv);

/// Forward S-box and its inverse.
const std::array<std::uint8_t, 256>& sbox();
const std::array<std::uint8_t, 256>& inv_sbox();

/// Encryption T-tables: te(i)[b] combines SubBytes + MixColumns for byte
/// lane i (i in 0..3).
const std::array<std::uint32_t, 256>& te(int i);

/// GF(2^8) multiply (AES polynomial x^8+x^4+x^3+x+1).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

}  // namespace wsp::aes
