// Lane-interleaved AES-CBC.  The encrypt side mirrors the scalar T-table
// round structure of aes.cpp exactly (same tables, same word layout) with
// the round loop outermost and a lane loop innermost.  The decrypt side is
// the straight inverse cipher driven by tables: InvShiftRows+InvSubBytes
// folded into a byte gather, AddRoundKey with the *untransformed* schedule,
// then InvMixColumns as a per-column table pass (U tables built from
// aes::gf_mul at startup, like every other table in this repo — synthesized,
// not transcribed).
#include "aes_mb.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

namespace wsp::aes_mb {
namespace {

std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

void store_be32(std::uint32_t v, std::uint8_t* p) {
  p[0] = std::uint8_t(v >> 24);
  p[1] = std::uint8_t(v >> 16);
  p[2] = std::uint8_t(v >> 8);
  p[3] = std::uint8_t(v);
}

// InvMixColumns contribution tables: U0[v] holds the column produced by
// byte v in row 0; U1..U3 are byte rotations of U0 (same construction as
// the Te tables in aes.cpp).
struct UTabs {
  std::array<std::uint32_t, 256> u0, u1, u2, u3;
};

const UTabs& utabs() {
  static const UTabs tabs = [] {
    UTabs t{};
    for (int v = 0; v < 256; ++v) {
      const auto b = std::uint8_t(v);
      const std::uint32_t w = (std::uint32_t(aes::gf_mul(b, 14)) << 24) |
                              (std::uint32_t(aes::gf_mul(b, 9)) << 16) |
                              (std::uint32_t(aes::gf_mul(b, 13)) << 8) |
                              std::uint32_t(aes::gf_mul(b, 11));
      t.u0[v] = w;
      t.u1[v] = (w >> 8) | (w << 24);
      t.u2[v] = (w >> 16) | (w << 16);
      t.u3[v] = (w >> 24) | (w << 8);
    }
    return t;
  }();
  return tabs;
}

// Live-lane working set for one lockstep group (uniform round count).
template <int Lanes>
struct Group {
  const std::uint32_t* rk[Lanes];
  const std::uint8_t* in[Lanes];
  std::uint8_t* out[Lanes];
  std::uint8_t* chain[Lanes];
  std::size_t rem[Lanes];
  std::uint32_t c0[Lanes], c1[Lanes], c2[Lanes], c3[Lanes];
  int active = 0;

  void add(const CbcLane& l) {
    rk[active] = l.ks->round_keys.data();
    in[active] = l.in;
    out[active] = l.out;
    chain[active] = l.chain;
    rem[active] = l.blocks;
    c0[active] = load_be32(l.chain);
    c1[active] = load_be32(l.chain + 4);
    c2[active] = load_be32(l.chain + 8);
    c3[active] = load_be32(l.chain + 12);
    ++active;
  }

  // Retire finished lanes: write their residue back and compact the prefix.
  void compact() {
    for (int j = active - 1; j >= 0; --j) {
      if (rem[j] != 0) continue;
      store_be32(c0[j], chain[j]);
      store_be32(c1[j], chain[j] + 4);
      store_be32(c2[j], chain[j] + 8);
      store_be32(c3[j], chain[j] + 12);
      const int last = active - 1;
      if (j != last) {
        rk[j] = rk[last];
        in[j] = in[last];
        out[j] = out[last];
        chain[j] = chain[last];
        rem[j] = rem[last];
        c0[j] = c0[last];
        c1[j] = c1[last];
        c2[j] = c2[last];
        c3[j] = c3[last];
      }
      --active;
    }
  }
};

template <int Lanes>
void encrypt_group(Group<Lanes>& g, int rounds) {
  const auto& te0 = aes::te(0);
  const auto& te1 = aes::te(1);
  const auto& te2 = aes::te(2);
  const auto& te3 = aes::te(3);
  const auto& sb = aes::sbox();
  std::uint32_t s0[Lanes], s1[Lanes], s2[Lanes], s3[Lanes];
  while (g.active > 0) {
    const int a = g.active;
    // CBC xor + AddRoundKey(0), all lanes.
    for (int j = 0; j < a; ++j) {
      const std::uint32_t* k = g.rk[j];
      s0[j] = (load_be32(g.in[j]) ^ g.c0[j]) ^ k[0];
      s1[j] = (load_be32(g.in[j] + 4) ^ g.c1[j]) ^ k[1];
      s2[j] = (load_be32(g.in[j] + 8) ^ g.c2[j]) ^ k[2];
      s3[j] = (load_be32(g.in[j] + 12) ^ g.c3[j]) ^ k[3];
    }
    for (int r = 1; r < rounds; ++r) {
      for (int j = 0; j < a; ++j) {
        const std::uint32_t* k = g.rk[j] + 4 * r;
        const std::uint32_t n0 = te0[s0[j] >> 24] ^ te1[(s1[j] >> 16) & 0xff] ^
                                 te2[(s2[j] >> 8) & 0xff] ^ te3[s3[j] & 0xff] ^
                                 k[0];
        const std::uint32_t n1 = te0[s1[j] >> 24] ^ te1[(s2[j] >> 16) & 0xff] ^
                                 te2[(s3[j] >> 8) & 0xff] ^ te3[s0[j] & 0xff] ^
                                 k[1];
        const std::uint32_t n2 = te0[s2[j] >> 24] ^ te1[(s3[j] >> 16) & 0xff] ^
                                 te2[(s0[j] >> 8) & 0xff] ^ te3[s1[j] & 0xff] ^
                                 k[2];
        const std::uint32_t n3 = te0[s3[j] >> 24] ^ te1[(s0[j] >> 16) & 0xff] ^
                                 te2[(s1[j] >> 8) & 0xff] ^ te3[s2[j] & 0xff] ^
                                 k[3];
        s0[j] = n0;
        s1[j] = n1;
        s2[j] = n2;
        s3[j] = n3;
      }
    }
    // Final round (SubBytes + ShiftRows, no MixColumns), store, chain.
    for (int j = 0; j < a; ++j) {
      const std::uint32_t* k = g.rk[j] + 4 * rounds;
      const std::uint32_t o0 =
          ((std::uint32_t(sb[s0[j] >> 24]) << 24) |
           (std::uint32_t(sb[(s1[j] >> 16) & 0xff]) << 16) |
           (std::uint32_t(sb[(s2[j] >> 8) & 0xff]) << 8) |
           std::uint32_t(sb[s3[j] & 0xff])) ^
          k[0];
      const std::uint32_t o1 =
          ((std::uint32_t(sb[s1[j] >> 24]) << 24) |
           (std::uint32_t(sb[(s2[j] >> 16) & 0xff]) << 16) |
           (std::uint32_t(sb[(s3[j] >> 8) & 0xff]) << 8) |
           std::uint32_t(sb[s0[j] & 0xff])) ^
          k[1];
      const std::uint32_t o2 =
          ((std::uint32_t(sb[s2[j] >> 24]) << 24) |
           (std::uint32_t(sb[(s3[j] >> 16) & 0xff]) << 16) |
           (std::uint32_t(sb[(s0[j] >> 8) & 0xff]) << 8) |
           std::uint32_t(sb[s1[j] & 0xff])) ^
          k[2];
      const std::uint32_t o3 =
          ((std::uint32_t(sb[s3[j] >> 24]) << 24) |
           (std::uint32_t(sb[(s0[j] >> 16) & 0xff]) << 16) |
           (std::uint32_t(sb[(s1[j] >> 8) & 0xff]) << 8) |
           std::uint32_t(sb[s2[j] & 0xff])) ^
          k[3];
      store_be32(o0, g.out[j]);
      store_be32(o1, g.out[j] + 4);
      store_be32(o2, g.out[j] + 8);
      store_be32(o3, g.out[j] + 12);
      g.c0[j] = o0;
      g.c1[j] = o1;
      g.c2[j] = o2;
      g.c3[j] = o3;
      g.in[j] += 16;
      g.out[j] += 16;
      --g.rem[j];
    }
    g.compact();
  }
}

template <int Lanes>
void decrypt_group(Group<Lanes>& g, int rounds) {
  const auto& is = aes::inv_sbox();
  const UTabs& u = utabs();
  std::uint32_t s0[Lanes], s1[Lanes], s2[Lanes], s3[Lanes];
  std::uint32_t x0[Lanes], x1[Lanes], x2[Lanes], x3[Lanes];
  while (g.active > 0) {
    const int a = g.active;
    for (int j = 0; j < a; ++j) {
      const std::uint32_t* k = g.rk[j] + 4 * rounds;
      x0[j] = load_be32(g.in[j]);
      x1[j] = load_be32(g.in[j] + 4);
      x2[j] = load_be32(g.in[j] + 8);
      x3[j] = load_be32(g.in[j] + 12);
      s0[j] = x0[j] ^ k[0];
      s1[j] = x1[j] ^ k[1];
      s2[j] = x2[j] ^ k[2];
      s3[j] = x3[j] ^ k[3];
    }
    for (int r = rounds - 1; r >= 1; --r) {
      for (int j = 0; j < a; ++j) {
        const std::uint32_t* k = g.rk[j] + 4 * r;
        // InvShiftRows + InvSubBytes gather, then AddRoundKey.
        const std::uint32_t t0 =
            ((std::uint32_t(is[s0[j] >> 24]) << 24) |
             (std::uint32_t(is[(s3[j] >> 16) & 0xff]) << 16) |
             (std::uint32_t(is[(s2[j] >> 8) & 0xff]) << 8) |
             std::uint32_t(is[s1[j] & 0xff])) ^
            k[0];
        const std::uint32_t t1 =
            ((std::uint32_t(is[s1[j] >> 24]) << 24) |
             (std::uint32_t(is[(s0[j] >> 16) & 0xff]) << 16) |
             (std::uint32_t(is[(s3[j] >> 8) & 0xff]) << 8) |
             std::uint32_t(is[s2[j] & 0xff])) ^
            k[1];
        const std::uint32_t t2 =
            ((std::uint32_t(is[s2[j] >> 24]) << 24) |
             (std::uint32_t(is[(s1[j] >> 16) & 0xff]) << 16) |
             (std::uint32_t(is[(s0[j] >> 8) & 0xff]) << 8) |
             std::uint32_t(is[s3[j] & 0xff])) ^
            k[2];
        const std::uint32_t t3 =
            ((std::uint32_t(is[s3[j] >> 24]) << 24) |
             (std::uint32_t(is[(s2[j] >> 16) & 0xff]) << 16) |
             (std::uint32_t(is[(s1[j] >> 8) & 0xff]) << 8) |
             std::uint32_t(is[s0[j] & 0xff])) ^
            k[3];
        // InvMixColumns, one column per word.
        s0[j] = u.u0[t0 >> 24] ^ u.u1[(t0 >> 16) & 0xff] ^
                u.u2[(t0 >> 8) & 0xff] ^ u.u3[t0 & 0xff];
        s1[j] = u.u0[t1 >> 24] ^ u.u1[(t1 >> 16) & 0xff] ^
                u.u2[(t1 >> 8) & 0xff] ^ u.u3[t1 & 0xff];
        s2[j] = u.u0[t2 >> 24] ^ u.u1[(t2 >> 16) & 0xff] ^
                u.u2[(t2 >> 8) & 0xff] ^ u.u3[t2 & 0xff];
        s3[j] = u.u0[t3 >> 24] ^ u.u1[(t3 >> 16) & 0xff] ^
                u.u2[(t3 >> 8) & 0xff] ^ u.u3[t3 & 0xff];
      }
    }
    // Final inverse round, then CBC xor against the previous ciphertext.
    for (int j = 0; j < a; ++j) {
      const std::uint32_t* k = g.rk[j];
      const std::uint32_t p0 =
          (((std::uint32_t(is[s0[j] >> 24]) << 24) |
            (std::uint32_t(is[(s3[j] >> 16) & 0xff]) << 16) |
            (std::uint32_t(is[(s2[j] >> 8) & 0xff]) << 8) |
            std::uint32_t(is[s1[j] & 0xff])) ^
           k[0]) ^
          g.c0[j];
      const std::uint32_t p1 =
          (((std::uint32_t(is[s1[j] >> 24]) << 24) |
            (std::uint32_t(is[(s0[j] >> 16) & 0xff]) << 16) |
            (std::uint32_t(is[(s3[j] >> 8) & 0xff]) << 8) |
            std::uint32_t(is[s2[j] & 0xff])) ^
           k[1]) ^
          g.c1[j];
      const std::uint32_t p2 =
          (((std::uint32_t(is[s2[j] >> 24]) << 24) |
            (std::uint32_t(is[(s1[j] >> 16) & 0xff]) << 16) |
            (std::uint32_t(is[(s0[j] >> 8) & 0xff]) << 8) |
            std::uint32_t(is[s3[j] & 0xff])) ^
           k[2]) ^
          g.c2[j];
      const std::uint32_t p3 =
          (((std::uint32_t(is[s3[j] >> 24]) << 24) |
            (std::uint32_t(is[(s2[j] >> 16) & 0xff]) << 16) |
            (std::uint32_t(is[(s1[j] >> 8) & 0xff]) << 8) |
            std::uint32_t(is[s0[j] & 0xff])) ^
           k[3]) ^
          g.c3[j];
      store_be32(p0, g.out[j]);
      store_be32(p1, g.out[j] + 4);
      store_be32(p2, g.out[j] + 8);
      store_be32(p3, g.out[j] + 12);
      g.c0[j] = x0[j];
      g.c1[j] = x1[j];
      g.c2[j] = x2[j];
      g.c3[j] = x3[j];
      g.in[j] += 16;
      g.out[j] += 16;
      --g.rem[j];
    }
    g.compact();
  }
}

// Lanes in one group may carry different key sizes; the lockstep round loop
// needs a uniform count, so split the group into equal-rounds runs first.
template <int Lanes, typename Kernel>
void run_by_rounds(CbcLane* lanes, std::size_t n, Kernel kernel) {
  static constexpr int kRounds[3] = {10, 12, 14};
  for (int rounds : kRounds) {
    Group<Lanes> g;
    for (std::size_t i = 0; i < n; ++i) {
      if (lanes[i].blocks == 0 || lanes[i].ks->rounds != rounds) continue;
      g.add(lanes[i]);
      if (g.active == Lanes) {
        kernel(g, rounds);
        g.active = 0;
      }
    }
    if (g.active > 0) kernel(g, rounds);
  }
}

void validate(const CbcLane* lanes, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const CbcLane& l = lanes[i];
    if (l.blocks == 0) continue;
    if (l.ks == nullptr || l.in == nullptr || l.out == nullptr ||
        l.chain == nullptr) {
      throw std::invalid_argument("aes_mb: null field in live lane");
    }
    if (l.ks->rounds != 10 && l.ks->rounds != 12 && l.ks->rounds != 14) {
      throw std::invalid_argument("aes_mb: bad key schedule");
    }
  }
}

template <typename Fn1, typename Fn2, typename Fn4, typename Fn8>
void dispatch_width(CbcLane* lanes, std::size_t n, unsigned lane_width,
                    Fn1 f1, Fn2 f2, Fn4 f4, Fn8 f8) {
  if (lane_width == 0 || lane_width > kMaxLanes) {
    throw std::invalid_argument("aes_mb: lane_width must be in [1, 8]");
  }
  validate(lanes, n);
  if (n == 0) return;
  // Sort a working copy so groups hold similarly-sized streams: the active
  // prefix then shrinks late instead of dragging one long lane alone.
  std::vector<CbcLane> work(lanes, lanes + n);
  std::sort(work.begin(), work.end(), [](const CbcLane& a, const CbcLane& b) {
    return a.blocks > b.blocks;
  });
  for (std::size_t off = 0; off < work.size(); off += lane_width) {
    const std::size_t cnt = std::min<std::size_t>(lane_width, work.size() - off);
    CbcLane* grp = work.data() + off;
    if (lane_width <= 1) {
      f1(grp, cnt);
    } else if (lane_width <= 2) {
      f2(grp, cnt);
    } else if (lane_width <= 4) {
      f4(grp, cnt);
    } else {
      f8(grp, cnt);
    }
  }
}

}  // namespace

template <int Lanes>
void encrypt_cbc(CbcLane* lanes, std::size_t n) {
  while (n > Lanes) {
    encrypt_cbc<Lanes>(lanes, std::size_t(Lanes));
    lanes += Lanes;
    n -= Lanes;
  }
  run_by_rounds<Lanes>(lanes, n,
                       [](Group<Lanes>& g, int r) { encrypt_group<Lanes>(g, r); });
}

template <int Lanes>
void decrypt_cbc(CbcLane* lanes, std::size_t n) {
  while (n > Lanes) {
    decrypt_cbc<Lanes>(lanes, std::size_t(Lanes));
    lanes += Lanes;
    n -= Lanes;
  }
  run_by_rounds<Lanes>(lanes, n,
                       [](Group<Lanes>& g, int r) { decrypt_group<Lanes>(g, r); });
}

template void encrypt_cbc<1>(CbcLane*, std::size_t);
template void encrypt_cbc<2>(CbcLane*, std::size_t);
template void encrypt_cbc<4>(CbcLane*, std::size_t);
template void encrypt_cbc<8>(CbcLane*, std::size_t);
template void decrypt_cbc<1>(CbcLane*, std::size_t);
template void decrypt_cbc<2>(CbcLane*, std::size_t);
template void decrypt_cbc<4>(CbcLane*, std::size_t);
template void decrypt_cbc<8>(CbcLane*, std::size_t);

void encrypt_cbc(CbcLane* lanes, std::size_t n, unsigned lane_width) {
  dispatch_width(
      lanes, n, lane_width,
      [](CbcLane* l, std::size_t c) { encrypt_cbc<1>(l, c); },
      [](CbcLane* l, std::size_t c) { encrypt_cbc<2>(l, c); },
      [](CbcLane* l, std::size_t c) { encrypt_cbc<4>(l, c); },
      [](CbcLane* l, std::size_t c) { encrypt_cbc<8>(l, c); });
}

void decrypt_cbc(CbcLane* lanes, std::size_t n, unsigned lane_width) {
  dispatch_width(
      lanes, n, lane_width,
      [](CbcLane* l, std::size_t c) { decrypt_cbc<1>(l, c); },
      [](CbcLane* l, std::size_t c) { decrypt_cbc<2>(l, c); },
      [](CbcLane* l, std::size_t c) { decrypt_cbc<4>(l, c); },
      [](CbcLane* l, std::size_t c) { decrypt_cbc<8>(l, c); });
}

}  // namespace wsp::aes_mb
