// Multi-buffer (lane-interleaved) AES-CBC kernels for the host fast path.
//
// CBC is strictly serial *within* one stream, so the only way to widen AES
// on the host is across independent streams: each lane is one session's
// record, and the round loop advances all lanes in lockstep so the eight
// T-table lookups per round per lane overlap in the load pipeline.  The
// `Lanes` template parameter follows the compile-time-specialization idiom
// of the AES<KeyLength, Mode> template in SNIPPETS.md: widths 1/2/4/8 are
// stamped out at compile time and selected at runtime, and a group with
// fewer live lanes than the width simply shrinks its active prefix (the
// scalar tail loop degenerates to Lanes == 1).
//
// These kernels are bit-identical to aes::encrypt_cbc / aes::decrypt_cbc;
// tests/test_crypto_batch.cpp holds the differential proof.  They are host
// acceleration only — the platform-cycle timeline keeps pricing records
// through calibrated_costs (see docs/server.md).
#pragma once

#include <cstddef>
#include <cstdint>

#include "aes.h"

namespace wsp::aes_mb {

/// Widest interleave stamped out by the templates below.
inline constexpr unsigned kMaxLanes = 8;

/// One independent CBC stream.  `chain` is the 16-byte IV on entry and the
/// running CBC residue on exit (the last ciphertext block), matching the
/// residue-chaining contract of ssl::SecureChannel.  `blocks == 0` lanes
/// are legal no-ops; otherwise all pointers must be non-null.  `in` and
/// `out` may alias exactly (in-place), but must not partially overlap.
struct CbcLane {
  const aes::KeySchedule* ks = nullptr;
  const std::uint8_t* in = nullptr;
  std::uint8_t* out = nullptr;
  std::size_t blocks = 0;     ///< whole 16-byte blocks
  std::uint8_t* chain = nullptr;  ///< 16-byte IV in / residue out
};

/// Compile-time-width kernels: encrypt/decrypt up to `Lanes` streams in
/// lockstep.  `n` may be smaller than `Lanes` (ragged group); lanes may use
/// different keys and key sizes.  Instantiated for Lanes in {1, 2, 4, 8}.
template <int Lanes>
void encrypt_cbc(CbcLane* lanes, std::size_t n);
template <int Lanes>
void decrypt_cbc(CbcLane* lanes, std::size_t n);

/// Runtime-width entry points: partition `lanes` into groups of
/// `lane_width` and run each group through the widest matching template.
/// Throws std::invalid_argument on lane_width == 0 or > kMaxLanes, or on a
/// lane with blocks > 0 and a null pointer field.
void encrypt_cbc(CbcLane* lanes, std::size_t n, unsigned lane_width);
void decrypt_cbc(CbcLane* lanes, std::size_t n, unsigned lane_width);

}  // namespace wsp::aes_mb
