#include "batch.h"

#include "aes.h"
#include "aes_mb.h"
#include "des.h"
#include "des_mb.h"

namespace wsp::crypto {
namespace {

void validate_job(const BatchJob& job) {
  if (job.key == nullptr || job.in == nullptr || job.out == nullptr ||
      job.chain == nullptr) {
    throw BatchError(BatchErrorKind::kBadJob, "batch: null field in job");
  }
  const std::size_t bs = block_size(job.cipher);
  if (job.bytes == 0 || job.bytes % bs != 0) {
    throw BatchError(BatchErrorKind::kBadLength,
                     "batch: job length is zero or not a block multiple");
  }
}

void run_aes(BatchDir dir, const BatchJob* jobs, std::size_t count,
             unsigned lanes) {
  std::vector<aes_mb::CbcLane> ls(count);
  for (std::size_t i = 0; i < count; ++i) {
    ls[i].ks = static_cast<const aes::KeySchedule*>(jobs[i].key);
    ls[i].in = jobs[i].in;
    ls[i].out = jobs[i].out;
    ls[i].blocks = jobs[i].bytes / 16;
    ls[i].chain = jobs[i].chain;
  }
  if (dir == BatchDir::kEncrypt) {
    aes_mb::encrypt_cbc(ls.data(), ls.size(), lanes);
  } else {
    aes_mb::decrypt_cbc(ls.data(), ls.size(), lanes);
  }
}

void run_des(BatchCipher cipher, BatchDir dir, const BatchJob* jobs,
             std::size_t count, unsigned lanes) {
  std::vector<des_mb::CbcLane> ls(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (cipher == BatchCipher::kTripleDes) {
      ls[i].ks3 = static_cast<const des::TripleKeySchedule*>(jobs[i].key);
    } else {
      ls[i].ks = static_cast<const des::KeySchedule*>(jobs[i].key);
    }
    ls[i].in = jobs[i].in;
    ls[i].out = jobs[i].out;
    ls[i].blocks = jobs[i].bytes / 8;
    ls[i].chain = jobs[i].chain;
  }
  if (dir == BatchDir::kEncrypt) {
    des_mb::encrypt_cbc(ls.data(), ls.size(), lanes);
  } else {
    des_mb::decrypt_cbc(ls.data(), ls.size(), lanes);
  }
}

}  // namespace

std::size_t block_size(BatchCipher cipher) {
  return cipher == BatchCipher::kAes ? 16 : 8;
}

void run_batch_group(BatchCipher cipher, BatchDir dir, const BatchJob* jobs,
                     std::size_t count, unsigned lanes) {
  if (count == 0) {
    throw BatchError(BatchErrorKind::kEmptyBatch, "batch: empty group");
  }
  if (lanes == 0 || lanes > kMaxBatchLanes) {
    throw BatchError(BatchErrorKind::kBadLanes,
                     "batch: lane width must be in [1, 8]");
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (jobs[i].cipher != cipher || jobs[i].dir != dir) {
      throw BatchError(BatchErrorKind::kMixedCipher,
                       "batch: mixed cipher/direction in group");
    }
    validate_job(jobs[i]);
  }
  if (cipher == BatchCipher::kAes) {
    run_aes(dir, jobs, count, lanes);
  } else {
    run_des(cipher, dir, jobs, count, lanes);
  }
}

BatchDispatcher::BatchDispatcher(unsigned lanes) : lanes_(lanes) {
  if (lanes == 0 || lanes > kMaxBatchLanes) {
    throw BatchError(BatchErrorKind::kBadLanes,
                     "batch: lane width must be in [1, 8]");
  }
}

void BatchDispatcher::submit(const BatchJob& job) {
  validate_job(job);
  pending_.push_back(job);
  ++jobs_submitted_;
}

void BatchDispatcher::flush() {
  if (pending_.empty()) return;
  ++flushes_;
  // Stable partition by (cipher, dir), preserving submission order inside
  // each group: deterministic regardless of what the sessions interleaved.
  std::vector<BatchJob> jobs;
  jobs.swap(pending_);
  std::vector<char> used(jobs.size(), 0);
  std::vector<BatchJob> group;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (used[i]) continue;
    group.clear();
    const BatchCipher cipher = jobs[i].cipher;
    const BatchDir dir = jobs[i].dir;
    for (std::size_t j = i; j < jobs.size(); ++j) {
      if (!used[j] && jobs[j].cipher == cipher && jobs[j].dir == dir) {
        group.push_back(jobs[j]);
        used[j] = 1;
      }
    }
    run_batch_group(cipher, dir, group.data(), group.size(), lanes_);
  }
}

}  // namespace wsp::crypto
