// Cross-session record batching: groups pending CBC jobs by
// (cipher, direction) and drives the multi-buffer kernels in aes_mb / des_mb.
//
// The dispatcher is deliberately dumb and deterministic: submit() only
// queues, flush() partitions the queue into per-(cipher, direction) groups
// preserving submission order and hands each group to run_batch_group(),
// which slices it into lane_width-wide kernel calls.  Each job's `chain`
// is read and updated exactly as the scalar CBC path would, so a batch of
// records from N sessions produces byte-identical streams to N scalar
// calls — the differential harness in tests/test_crypto_batch.cpp is the
// proof obligation for every change here.
//
// Error handling is typed (BatchError with a BatchErrorKind) because the
// ragged-edge hazards — empty batches, mixed-cipher groups, non-block
// lengths — are exactly where a batching layer silently corrupts streams
// (mirrors the PR 7 unchecked-shard-index fix).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace wsp::crypto {

inline constexpr unsigned kMaxBatchLanes = 8;

enum class BatchCipher { kAes, kDes, kTripleDes };
enum class BatchDir { kEncrypt, kDecrypt };

enum class BatchErrorKind {
  kEmptyBatch,   ///< run_batch_group() with count == 0
  kMixedCipher,  ///< a group whose jobs disagree on cipher or direction
  kBadLength,    ///< job bytes == 0 or not a multiple of the block size
  kBadLanes,     ///< lane width 0 or > kMaxBatchLanes
  kBadJob,       ///< null key/in/out/chain on a job
};

class BatchError : public std::runtime_error {
 public:
  BatchError(BatchErrorKind kind, const char* what)
      : std::runtime_error(what), kind_(kind) {}
  BatchErrorKind kind() const { return kind_; }

 private:
  BatchErrorKind kind_;
};

/// One pending CBC operation.  `key` points at the cipher's cached key
/// schedule: aes::KeySchedule for kAes, des::KeySchedule for kDes,
/// des::TripleKeySchedule for kTripleDes.  `chain` is the caller's live
/// IV/residue buffer (16 bytes for AES, 8 for DES/3DES), updated in place.
struct BatchJob {
  BatchCipher cipher = BatchCipher::kAes;
  BatchDir dir = BatchDir::kEncrypt;
  const void* key = nullptr;
  const std::uint8_t* in = nullptr;
  std::uint8_t* out = nullptr;
  std::size_t bytes = 0;
  std::uint8_t* chain = nullptr;
};

/// CBC block size for a cipher (16 for AES, 8 for DES/3DES).
std::size_t block_size(BatchCipher cipher);

/// Runs one homogeneous group through the multi-buffer kernels.  Every job
/// must share (cipher, dir); throws BatchError on an empty group, a mixed
/// group, a bad length, a bad lane width, or null job fields.
void run_batch_group(BatchCipher cipher, BatchDir dir, const BatchJob* jobs,
                     std::size_t count, unsigned lanes);

/// Order-preserving grouping front end for the server data plane.
class BatchDispatcher {
 public:
  explicit BatchDispatcher(unsigned lanes = 1);

  unsigned lanes() const { return lanes_; }

  /// Validates and queues one job (throws BatchError, leaves state clean).
  void submit(const BatchJob& job);

  std::size_t pending() const { return pending_.size(); }

  /// Drains the queue: partitions by (cipher, dir) in submission order and
  /// runs each group.  No-op when empty.
  void flush();

  // Host-side statistics (never part of the deterministic RunReport
  // fields; surfaced next to wall-time metrics).
  std::uint64_t jobs_submitted() const { return jobs_submitted_; }
  std::uint64_t flushes() const { return flushes_; }

 private:
  unsigned lanes_;
  std::vector<BatchJob> pending_;
  std::uint64_t jobs_submitted_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace wsp::crypto
