#include "crypto/crc32.h"

#include <array>

namespace wsp {

namespace {
const std::array<std::uint32_t, 256>& table() {
  static const auto t = [] {
    std::array<std::uint32_t, 256> out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      out[i] = c;
    }
    return out;
  }();
  return t;
}
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    state = table()[(state ^ data[i]) & 0xFF] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(const std::vector<std::uint8_t>& data) {
  return crc32(data.data(), data.size());
}

}  // namespace wsp
