#include "crypto/crc32.h"

#include <array>

namespace wsp {

namespace {
const std::array<std::uint32_t, 256>& table() {
  static const auto t = [] {
    std::array<std::uint32_t, 256> out{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      out[i] = c;
    }
    return out;
  }();
  return t;
}
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table()[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::vector<std::uint8_t>& data) {
  return crc32(data.data(), data.size());
}

}  // namespace wsp
