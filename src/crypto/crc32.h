// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check value used by WEP frames.
#pragma once

#include <cstdint>
#include <vector>

namespace wsp {

/// CRC-32 of the buffer (init 0xFFFFFFFF, final XOR 0xFFFFFFFF).
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);
std::uint32_t crc32(const std::vector<std::uint8_t>& data);

}  // namespace wsp
