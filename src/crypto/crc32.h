// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check value used by WEP frames.
#pragma once

#include <cstdint>
#include <vector>

namespace wsp {

/// CRC-32 of the buffer (init 0xFFFFFFFF, final XOR 0xFFFFFFFF).
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);
std::uint32_t crc32(const std::vector<std::uint8_t>& data);

/// Incremental form for streaming consumers (the replay chunk framing):
///   state = crc32_init();
///   state = crc32_update(state, data, n);  // repeatable
///   value = crc32_final(state);
/// crc32_final(crc32_update(crc32_init(), d, n)) == crc32(d, n).
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                           std::size_t n);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace wsp
