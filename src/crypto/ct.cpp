#include "crypto/ct.h"

namespace wsp::ct {

bool equal(const std::uint8_t* a, const std::uint8_t* b, std::size_t n) {
  volatile std::uint8_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

bool equal(const std::vector<std::uint8_t>& a,
           const std::vector<std::uint8_t>& b) {
  if (a.size() != b.size()) return false;
  return equal(a.data(), b.data(), a.size());
}

}  // namespace wsp::ct
