// Constant-time comparison for authenticator verification.
//
// Early-exit comparisons (operator==, std::equal) leak the index of the
// first mismatching byte through timing, which lets an attacker forge a MAC
// one byte at a time.  Every MAC/ICV check in the protocol layers (SSL
// record MACs, ESP ICVs, WEP ICVs) must go through these helpers instead.
//
// The running time of equal() depends only on `n`, never on the contents:
// the byte loop accumulates the XOR difference into a volatile so the
// compiler cannot short-circuit or vectorize a data-dependent exit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsp::ct {

/// Compares `n` bytes of `a` and `b` in time independent of the contents.
bool equal(const std::uint8_t* a, const std::uint8_t* b, std::size_t n);

/// Vector convenience overload.  Length is considered public (record
/// framing reveals it), so a size mismatch returns false immediately.
bool equal(const std::vector<std::uint8_t>& a,
           const std::vector<std::uint8_t>& b);

}  // namespace wsp::ct
