#include "crypto/des.h"

#include <stdexcept>

namespace wsp::des {

namespace {

// FIPS-46 tables.  Entries are 1-based bit positions counted from the MSB,
// as in the standard.
constexpr int kIP[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr int kFP[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr int kE[48] = {32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
                        8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
                        16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
                        24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr int kP[32] = {16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
                        2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr int kPC1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
                          10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
                          63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
                          14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr int kPC2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                          23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                          41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                          44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr int kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSBox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8, 4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4, 1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

// Applies a 1-based-from-MSB permutation table: output bit i (MSB first)
// takes input bit table[i].
template <int OutBits, int InBits>
std::uint64_t permute(std::uint64_t in, const int (&table)[OutBits]) {
  std::uint64_t out = 0;
  for (int i = 0; i < OutBits; ++i) {
    const int src = table[i];  // 1-based from MSB of the InBits-wide value
    const std::uint64_t bit = (in >> (InBits - src)) & 1;
    out |= bit << (OutBits - 1 - i);
  }
  return out;
}

// S-box input indexing: 6-bit value b1 b2 b3 b4 b5 b6 -> row = b1 b6,
// col = b2 b3 b4 b5.
std::uint8_t sbox_lookup(int box, std::uint8_t v6) {
  const int row = ((v6 >> 4) & 2) | (v6 & 1);
  const int col = (v6 >> 1) & 0xf;
  return kSBox[box][row * 16 + col];
}

// The Feistel function on a 32-bit half with a 48-bit subkey.
std::uint32_t feistel(std::uint32_t r, std::uint64_t k48) {
  const std::uint64_t e = permute<48, 32>(r, kE) ^ k48;
  std::uint32_t s_out = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t v6 = static_cast<std::uint8_t>((e >> (42 - 6 * i)) & 0x3f);
    s_out = (s_out << 4) | sbox_lookup(i, v6);
  }
  return static_cast<std::uint32_t>(permute<32, 32>(s_out, kP));
}

std::uint64_t crypt_ref(std::uint64_t block, const KeySchedule& ks, bool decrypt) {
  const std::uint64_t ip = permute<64, 64>(block, kIP);
  std::uint32_t l = static_cast<std::uint32_t>(ip >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(ip);
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t k = ks.k48[decrypt ? 15 - round : round];
    const std::uint32_t nl = r;
    r = l ^ feistel(r, k);
    l = nl;
  }
  // Note the final swap: the output is (R16, L16).
  const std::uint64_t preout = (static_cast<std::uint64_t>(r) << 32) | l;
  return permute<64, 64>(preout, kFP);
}

// Lazily built SP tables: S-box output already run through the P
// permutation and positioned in the 32-bit word.
const std::array<std::array<std::uint32_t, 64>, 8>& sp_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 64>, 8> t{};
    for (int box = 0; box < 8; ++box) {
      for (int v = 0; v < 64; ++v) {
        const std::uint32_t s = sbox_lookup(box, static_cast<std::uint8_t>(v));
        // Place the 4-bit S-box output at its position in the 32-bit
        // pre-permutation word, then permute.
        const std::uint32_t positioned = s << (28 - 4 * box);
        t[box][v] =
            static_cast<std::uint32_t>(permute<32, 32>(positioned, kP));
      }
    }
    return t;
  }();
  return tables;
}

std::uint32_t feistel_sp(std::uint32_t r, std::uint64_t k48) {
  const std::uint64_t e = permute<48, 32>(r, kE) ^ k48;
  const auto& sp = sp_tables();
  std::uint32_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= sp[i][(e >> (42 - 6 * i)) & 0x3f];
  }
  return out;
}

std::uint64_t crypt_sp(std::uint64_t block, const KeySchedule& ks, bool decrypt) {
  const std::uint64_t ip = permute<64, 64>(block, kIP);
  std::uint32_t l = static_cast<std::uint32_t>(ip >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(ip);
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t k = ks.k48[decrypt ? 15 - round : round];
    const std::uint32_t nl = r;
    r = l ^ feistel_sp(r, k);
    l = nl;
  }
  const std::uint64_t preout = (static_cast<std::uint64_t>(r) << 32) | l;
  return permute<64, 64>(preout, kFP);
}

std::uint32_t rotl28(std::uint32_t v, int n) {
  return ((v << n) | (v >> (28 - n))) & 0x0fffffff;
}

}  // namespace

KeySchedule key_schedule(std::uint64_t key) {
  KeySchedule ks{};
  const std::uint64_t pc1 = permute<56, 64>(key, kPC1);
  std::uint32_t c = static_cast<std::uint32_t>(pc1 >> 28) & 0x0fffffff;
  std::uint32_t d = static_cast<std::uint32_t>(pc1) & 0x0fffffff;
  for (int round = 0; round < 16; ++round) {
    c = rotl28(c, kShifts[round]);
    d = rotl28(d, kShifts[round]);
    const std::uint64_t cd = (static_cast<std::uint64_t>(c) << 28) | d;
    ks.k48[round] = permute<48, 56>(cd, kPC2);
  }
  return ks;
}

std::uint64_t encrypt_block_ref(std::uint64_t block, const KeySchedule& ks) {
  return crypt_ref(block, ks, false);
}
std::uint64_t decrypt_block_ref(std::uint64_t block, const KeySchedule& ks) {
  return crypt_ref(block, ks, true);
}
std::uint64_t encrypt_block(std::uint64_t block, const KeySchedule& ks) {
  return crypt_sp(block, ks, false);
}
std::uint64_t decrypt_block(std::uint64_t block, const KeySchedule& ks) {
  return crypt_sp(block, ks, true);
}

TripleKeySchedule triple_key_schedule(std::uint64_t key1, std::uint64_t key2,
                                      std::uint64_t key3) {
  return TripleKeySchedule{key_schedule(key1), key_schedule(key2),
                           key_schedule(key3)};
}

std::uint64_t encrypt_block_3des(std::uint64_t block, const TripleKeySchedule& ks) {
  return encrypt_block(decrypt_block(encrypt_block(block, ks.k1), ks.k2), ks.k3);
}
std::uint64_t decrypt_block_3des(std::uint64_t block, const TripleKeySchedule& ks) {
  return decrypt_block(encrypt_block(decrypt_block(block, ks.k3), ks.k2), ks.k1);
}

namespace {
void check_len(std::size_t n) {
  if (n % 8 != 0) throw std::invalid_argument("des: length must be multiple of 8");
}
}  // namespace

std::vector<std::uint8_t> encrypt_ecb(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks) {
  check_len(data.size());
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); i += 8) {
    store_be64(encrypt_block(load_be64(data.data() + i), ks), out.data() + i);
  }
  return out;
}

std::vector<std::uint8_t> decrypt_ecb(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks) {
  check_len(data.size());
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); i += 8) {
    store_be64(decrypt_block(load_be64(data.data() + i), ks), out.data() + i);
  }
  return out;
}

std::vector<std::uint8_t> encrypt_cbc(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks, std::uint64_t iv) {
  check_len(data.size());
  std::vector<std::uint8_t> out(data.size());
  std::uint64_t chain = iv;
  for (std::size_t i = 0; i < data.size(); i += 8) {
    chain = encrypt_block(load_be64(data.data() + i) ^ chain, ks);
    store_be64(chain, out.data() + i);
  }
  return out;
}

std::vector<std::uint8_t> decrypt_cbc(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks, std::uint64_t iv) {
  check_len(data.size());
  std::vector<std::uint8_t> out(data.size());
  std::uint64_t chain = iv;
  for (std::size_t i = 0; i < data.size(); i += 8) {
    const std::uint64_t c = load_be64(data.data() + i);
    store_be64(decrypt_block(c, ks) ^ chain, out.data() + i);
    chain = c;
  }
  return out;
}

const std::array<std::uint32_t, 64>& sp_table(int sbox) {
  return sp_tables()[static_cast<std::size_t>(sbox)];
}

std::uint8_t sbox(int i, std::uint8_t v) { return sbox_lookup(i, v); }

std::uint32_t f_function(std::uint32_t r, std::uint64_t k48) {
  return feistel_sp(r, k48);
}

std::uint64_t initial_permutation(std::uint64_t block) {
  return permute<64, 64>(block, kIP);
}
std::uint64_t final_permutation(std::uint64_t block) {
  return permute<64, 64>(block, kFP);
}

std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

void store_be64(std::uint64_t v, std::uint8_t* p) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

}  // namespace wsp::des
