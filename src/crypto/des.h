// DES and Triple-DES ("private-key operations" of the paper's platform).
//
// Two functionally identical block implementations are provided:
//  * a reference implementation that applies every FIPS-46 permutation
//    bit by bit (used as ground truth), and
//  * a fast implementation using combined S-box+P-permutation (SP) lookup
//    tables — the classic well-optimized software structure that the
//    paper's baseline measurements represent.
// The SP tables and key schedules are exported so the XR32 kernels
// (src/kernels/des_kernel.*) can place them in simulator memory.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace wsp::des {

/// 16 subkeys of 48 bits each, kept as 8 x 6-bit groups packed into two
/// 32-bit halves (24 bits used in each) for the fast/kernels path.
struct KeySchedule {
  std::array<std::uint64_t, 16> k48;  ///< subkeys, 48 significant bits each
};

/// Expands a 64-bit key (parity bits ignored) into 16 subkeys.
KeySchedule key_schedule(std::uint64_t key);

/// Reference single-block encrypt/decrypt (bit-level permutations).
std::uint64_t encrypt_block_ref(std::uint64_t block, const KeySchedule& ks);
std::uint64_t decrypt_block_ref(std::uint64_t block, const KeySchedule& ks);

/// Fast single-block encrypt/decrypt (SP-table implementation).
std::uint64_t encrypt_block(std::uint64_t block, const KeySchedule& ks);
std::uint64_t decrypt_block(std::uint64_t block, const KeySchedule& ks);

/// 3DES EDE with three independent keys.
struct TripleKeySchedule {
  KeySchedule k1, k2, k3;
};
TripleKeySchedule triple_key_schedule(std::uint64_t key1, std::uint64_t key2,
                                      std::uint64_t key3);
std::uint64_t encrypt_block_3des(std::uint64_t block, const TripleKeySchedule& ks);
std::uint64_t decrypt_block_3des(std::uint64_t block, const TripleKeySchedule& ks);

/// ECB / CBC over byte buffers (length must be a multiple of 8).
std::vector<std::uint8_t> encrypt_ecb(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks);
std::vector<std::uint8_t> decrypt_ecb(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks);
std::vector<std::uint8_t> encrypt_cbc(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks, std::uint64_t iv);
std::vector<std::uint8_t> decrypt_cbc(const std::vector<std::uint8_t>& data,
                                      const KeySchedule& ks, std::uint64_t iv);

/// Combined S-box + P-permutation tables: sp_table(i)[v] is the 32-bit
/// contribution of S-box i applied to 6-bit input v, already P-permuted.
const std::array<std::uint32_t, 64>& sp_table(int sbox);

/// Raw S-box output (4 bits) for S-box i and 6-bit input v.
std::uint8_t sbox(int i, std::uint8_t v);

/// The Feistel F function (E expansion, key mix, S-boxes, P permutation)
/// applied to one 32-bit half with a 48-bit subkey.  Exported so the TIE
/// des_round unit and the kernels share a single ground truth.
std::uint32_t f_function(std::uint32_t r, std::uint64_t k48);

/// Applies the initial / final permutation to a 64-bit block (bit-level;
/// exported for kernel validation).
std::uint64_t initial_permutation(std::uint64_t block);
std::uint64_t final_permutation(std::uint64_t block);

/// Big-endian conversion helpers (DES blocks are big-endian byte streams).
std::uint64_t load_be64(const std::uint8_t* p);
void store_be64(std::uint64_t v, std::uint8_t* p);

}  // namespace wsp::des
