// Lane-interleaved DES/3DES-CBC.
//
// Fast E expansion: with ro = rotr32(R, 1), the eight 6-bit E groups are
// consecutive windows of ro — group i (0..6) is (ro >> (26 - 4i)) & 0x3f
// and group 7 wraps as ((ro & 0xF) << 2) | (ro >> 30).  Subkeys are
// pre-split into eight 6-bit chunks per round so the round body is eight
// shift/xor/lookup chains with no 48-bit permute.
//
// IP/FP: a bit permutation is linear over OR of disjoint-support inputs,
// so tab[p][v] = perm(uint64(v) << (56 - 8p)) gives an 8x256 scatter
// table whose per-byte OR reproduces the exact des.cpp permutation.
//
// 3DES fusion: encrypt = FP.R16(k3).IP . FP.R16rev(k2).IP . FP.R16(k1).IP
// where the crypt core's pre-output swaps halves; the interior FP.IP pairs
// cancel, leaving IP, three 16-round stages with swap(l, r) between them,
// pre-output swap, FP.
#include "des_mb.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

namespace wsp::des_mb {
namespace {

using des::KeySchedule;
using des::TripleKeySchedule;

struct PermTabs {
  std::uint64_t ip[8][256];
  std::uint64_t fp[8][256];
};

const PermTabs& perm_tabs() {
  static const PermTabs tabs = [] {
    PermTabs t{};
    for (int p = 0; p < 8; ++p) {
      for (int v = 0; v < 256; ++v) {
        const std::uint64_t x = std::uint64_t(v) << (56 - 8 * p);
        t.ip[p][v] = des::initial_permutation(x);
        t.fp[p][v] = des::final_permutation(x);
      }
    }
    return t;
  }();
  return tabs;
}

std::uint64_t apply_tab(const std::uint64_t (*tab)[256], std::uint64_t v) {
  return tab[0][(v >> 56) & 0xff] | tab[1][(v >> 48) & 0xff] |
         tab[2][(v >> 40) & 0xff] | tab[3][(v >> 32) & 0xff] |
         tab[4][(v >> 24) & 0xff] | tab[5][(v >> 16) & 0xff] |
         tab[6][(v >> 8) & 0xff] | tab[7][v & 0xff];
}

struct SpTabs {
  const std::uint32_t* sp[8];
};

const SpTabs& sp_tabs() {
  static const SpTabs tabs = [] {
    SpTabs t{};
    for (int i = 0; i < 8; ++i) t.sp[i] = des::sp_table(i).data();
    return t;
  }();
  return tabs;
}

inline std::uint32_t feistel_fast(std::uint32_t r, const std::uint8_t k[8],
                                  const SpTabs& t) {
  const std::uint32_t ro = (r >> 1) | (r << 31);
  return t.sp[0][((ro >> 26) & 0x3f) ^ k[0]] ^
         t.sp[1][((ro >> 22) & 0x3f) ^ k[1]] ^
         t.sp[2][((ro >> 18) & 0x3f) ^ k[2]] ^
         t.sp[3][((ro >> 14) & 0x3f) ^ k[3]] ^
         t.sp[4][((ro >> 10) & 0x3f) ^ k[4]] ^
         t.sp[5][((ro >> 6) & 0x3f) ^ k[5]] ^
         t.sp[6][((ro >> 2) & 0x3f) ^ k[6]] ^
         t.sp[7][((((ro & 0xFu) << 2) | (ro >> 30)) & 0x3f) ^ k[7]];
}

// Flatten one 16-round stage into 6-bit subkey chunks, optionally in
// reverse round order (the decrypt direction).
void flatten_stage(const KeySchedule& ks, bool reverse,
                   std::uint8_t out[][8]) {
  for (int r = 0; r < 16; ++r) {
    const std::uint64_t k48 = ks.k48[reverse ? 15 - r : r];
    for (int i = 0; i < 8; ++i) {
      out[r][i] = std::uint8_t((k48 >> (42 - 6 * i)) & 0x3f);
    }
  }
}

template <int Lanes>
struct Group {
  std::uint8_t kcbuf[Lanes][48][8];
  const std::uint8_t (*kc[Lanes])[8];
  const std::uint8_t* in[Lanes];
  std::uint8_t* out[Lanes];
  std::uint8_t* chain[Lanes];
  std::size_t rem[Lanes];
  std::uint64_t c[Lanes];
  int active = 0;

  void add(const CbcLane& l, bool encrypt, bool triple) {
    const int j = active;
    if (triple) {
      const TripleKeySchedule& t3 = *l.ks3;
      if (encrypt) {
        flatten_stage(t3.k1, false, kcbuf[j] + 0);
        flatten_stage(t3.k2, true, kcbuf[j] + 16);
        flatten_stage(t3.k3, false, kcbuf[j] + 32);
      } else {
        flatten_stage(t3.k3, true, kcbuf[j] + 0);
        flatten_stage(t3.k2, false, kcbuf[j] + 16);
        flatten_stage(t3.k1, true, kcbuf[j] + 32);
      }
    } else {
      flatten_stage(*l.ks, !encrypt, kcbuf[j] + 0);
    }
    kc[j] = kcbuf[j];
    in[j] = l.in;
    out[j] = l.out;
    chain[j] = l.chain;
    rem[j] = l.blocks;
    c[j] = des::load_be64(l.chain);
    ++active;
  }

  void compact() {
    for (int j = active - 1; j >= 0; --j) {
      if (rem[j] != 0) continue;
      des::store_be64(c[j], chain[j]);
      const int last = active - 1;
      if (j != last) {
        kc[j] = kc[last];
        in[j] = in[last];
        out[j] = out[last];
        chain[j] = chain[last];
        rem[j] = rem[last];
        c[j] = c[last];
      }
      --active;
    }
  }
};

// One lockstep CBC pass over a group; all lanes share the stage count
// (1 for DES, 3 for 3DES) so the swap points are uniform.
template <int Lanes>
void crypt_group(Group<Lanes>& g, int stages, bool encrypt) {
  const PermTabs& pt = perm_tabs();
  const SpTabs& sp = sp_tabs();
  std::uint32_t l[Lanes], r[Lanes];
  std::uint64_t x[Lanes];
  while (g.active > 0) {
    const int a = g.active;
    for (int j = 0; j < a; ++j) {
      std::uint64_t b = des::load_be64(g.in[j]);
      if (encrypt) b ^= g.c[j];  // CBC xor before the cipher
      x[j] = b;                  // decrypt keeps the raw ciphertext for chaining
      const std::uint64_t ip = apply_tab(pt.ip, encrypt ? b : x[j]);
      l[j] = std::uint32_t(ip >> 32);
      r[j] = std::uint32_t(ip);
    }
    for (int s = 0; s < stages; ++s) {
      const int base = 16 * s;
      for (int round = 0; round < 16; ++round) {
        for (int j = 0; j < a; ++j) {
          const std::uint32_t nl = r[j];
          r[j] = l[j] ^ feistel_fast(r[j], g.kc[j][base + round], sp);
          l[j] = nl;
        }
      }
      if (s + 1 < stages) {
        for (int j = 0; j < a; ++j) std::swap(l[j], r[j]);
      }
    }
    for (int j = 0; j < a; ++j) {
      const std::uint64_t preout = (std::uint64_t(r[j]) << 32) | l[j];
      std::uint64_t y = apply_tab(pt.fp, preout);
      if (encrypt) {
        g.c[j] = y;  // residue = ciphertext just produced
      } else {
        y ^= g.c[j];   // CBC xor after the cipher
        g.c[j] = x[j];  // residue = ciphertext just consumed
      }
      des::store_be64(y, g.out[j]);
      g.in[j] += 8;
      g.out[j] += 8;
      --g.rem[j];
    }
    g.compact();
  }
}

// Partition a group's lanes into single-DES and 3DES runs (the stage count
// must be uniform inside one lockstep group).
template <int Lanes>
void run_partitioned(CbcLane* lanes, std::size_t n, bool encrypt) {
  for (int triple = 0; triple < 2; ++triple) {
    Group<Lanes> g;
    for (std::size_t i = 0; i < n; ++i) {
      if (lanes[i].blocks == 0) continue;
      const bool is_triple = lanes[i].ks3 != nullptr;
      if (is_triple != (triple != 0)) continue;
      g.add(lanes[i], encrypt, is_triple);
      if (g.active == Lanes) {
        crypt_group<Lanes>(g, triple ? 3 : 1, encrypt);
        g.active = 0;
      }
    }
    if (g.active > 0) crypt_group<Lanes>(g, triple ? 3 : 1, encrypt);
  }
}

void validate(const CbcLane* lanes, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const CbcLane& l = lanes[i];
    if (l.blocks == 0) continue;
    if ((l.ks == nullptr && l.ks3 == nullptr) || l.in == nullptr ||
        l.out == nullptr || l.chain == nullptr) {
      throw std::invalid_argument("des_mb: null field in live lane");
    }
  }
}

void dispatch_width(CbcLane* lanes, std::size_t n, unsigned lane_width,
                    bool encrypt) {
  if (lane_width == 0 || lane_width > kMaxLanes) {
    throw std::invalid_argument("des_mb: lane_width must be in [1, 8]");
  }
  validate(lanes, n);
  if (n == 0) return;
  std::vector<CbcLane> work(lanes, lanes + n);
  std::sort(work.begin(), work.end(), [](const CbcLane& a, const CbcLane& b) {
    return a.blocks > b.blocks;
  });
  for (std::size_t off = 0; off < work.size(); off += lane_width) {
    const std::size_t cnt = std::min<std::size_t>(lane_width, work.size() - off);
    CbcLane* grp = work.data() + off;
    if (lane_width <= 1) {
      run_partitioned<1>(grp, cnt, encrypt);
    } else if (lane_width <= 2) {
      run_partitioned<2>(grp, cnt, encrypt);
    } else if (lane_width <= 4) {
      run_partitioned<4>(grp, cnt, encrypt);
    } else {
      run_partitioned<8>(grp, cnt, encrypt);
    }
  }
}

}  // namespace

template <int Lanes>
void encrypt_cbc(CbcLane* lanes, std::size_t n) {
  while (n > std::size_t(Lanes)) {
    run_partitioned<Lanes>(lanes, std::size_t(Lanes), true);
    lanes += Lanes;
    n -= Lanes;
  }
  run_partitioned<Lanes>(lanes, n, true);
}

template <int Lanes>
void decrypt_cbc(CbcLane* lanes, std::size_t n) {
  while (n > std::size_t(Lanes)) {
    run_partitioned<Lanes>(lanes, std::size_t(Lanes), false);
    lanes += Lanes;
    n -= Lanes;
  }
  run_partitioned<Lanes>(lanes, n, false);
}

template void encrypt_cbc<1>(CbcLane*, std::size_t);
template void encrypt_cbc<2>(CbcLane*, std::size_t);
template void encrypt_cbc<4>(CbcLane*, std::size_t);
template void encrypt_cbc<8>(CbcLane*, std::size_t);
template void decrypt_cbc<1>(CbcLane*, std::size_t);
template void decrypt_cbc<2>(CbcLane*, std::size_t);
template void decrypt_cbc<4>(CbcLane*, std::size_t);
template void decrypt_cbc<8>(CbcLane*, std::size_t);

void encrypt_cbc(CbcLane* lanes, std::size_t n, unsigned lane_width) {
  dispatch_width(lanes, n, lane_width, true);
}

void decrypt_cbc(CbcLane* lanes, std::size_t n, unsigned lane_width) {
  dispatch_width(lanes, n, lane_width, false);
}

}  // namespace wsp::des_mb
