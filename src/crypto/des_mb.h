// Multi-buffer (lane-interleaved) DES / 3DES-EDE CBC kernels.
//
// Same shape as aes_mb.h: each lane is one independent CBC stream, the
// Feistel round loop advances all lanes of a group in lockstep, and the
// compile-time `Lanes` width (1/2/4/8) is selected at runtime.  On top of
// the interleave, this path is itself a faster DES than the scalar
// des.cpp one: the E expansion is computed with shifts out of a single
// rotate (no bit-by-bit permute), the initial/final permutations go
// through 8x256 scatter tables, and a 3DES block runs as one fused
// 48-round loop (the interior FP/IP pairs cancel algebraically).  All
// tables are synthesized from the exported des.cpp ground truth
// (sp_table, initial_permutation, final_permutation), never transcribed.
//
// Bit-identical to des::encrypt_cbc / decrypt_cbc and the 3DES-EDE CBC
// composition used by ssl::SecureChannel; proven differentially in
// tests/test_crypto_batch.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

#include "des.h"

namespace wsp::des_mb {

inline constexpr unsigned kMaxLanes = 8;

/// One independent CBC stream.  Exactly one of `ks` (single DES) or `ks3`
/// (3DES-EDE) must be set for a live lane; `ks3` wins if both are.
/// `chain` is the 8-byte IV on entry, the CBC residue (last ciphertext
/// block) on exit.  `in`/`out` may alias exactly, not partially.
struct CbcLane {
  const des::KeySchedule* ks = nullptr;
  const des::TripleKeySchedule* ks3 = nullptr;
  const std::uint8_t* in = nullptr;
  std::uint8_t* out = nullptr;
  std::size_t blocks = 0;     ///< whole 8-byte blocks
  std::uint8_t* chain = nullptr;  ///< 8-byte IV in / residue out
};

/// Compile-time-width kernels; `n` may be smaller than `Lanes`.  Single-DES
/// and 3DES lanes may be mixed (they are partitioned internally).
template <int Lanes>
void encrypt_cbc(CbcLane* lanes, std::size_t n);
template <int Lanes>
void decrypt_cbc(CbcLane* lanes, std::size_t n);

/// Runtime-width entry points; validation as in aes_mb.
void encrypt_cbc(CbcLane* lanes, std::size_t n, unsigned lane_width);
void decrypt_cbc(CbcLane* lanes, std::size_t n, unsigned lane_width);

}  // namespace wsp::des_mb
