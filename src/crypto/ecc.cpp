#include "crypto/ecc.h"

#include <stdexcept>

#include "crypto/sha1.h"
#include "mp/prime.h"

namespace wsp::ecc {

const Curve& secp192r1() {
  static const Curve curve = [] {
    Curve c;
    c.p = Mpz::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff");
    c.a = c.p - Mpz(3);
    c.b = Mpz::from_hex("64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1");
    c.gx = Mpz::from_hex("188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012");
    c.gy = Mpz::from_hex("07192b95ffc8da78631011ed6b24cdd573f977a11e794811");
    c.n = Mpz::from_hex("ffffffffffffffffffffffff99def836146bc9b1b4d22831");
    return c;
  }();
  return curve;
}

bool operator==(const Point& a, const Point& b) {
  if (a.infinity || b.infinity) return a.infinity == b.infinity;
  return a.x == b.x && a.y == b.y;
}

bool on_curve(const Curve& curve, const Point& pt) {
  if (pt.infinity) return true;
  const Mpz lhs = (pt.y * pt.y).mod(curve.p);
  const Mpz rhs = (pt.x * pt.x * pt.x + curve.a * pt.x + curve.b).mod(curve.p);
  return lhs == rhs;
}

Point double_point(const Curve& curve, const Point& p) {
  if (p.infinity) return p;
  if (p.y.is_zero()) return Point::at_infinity();
  // lambda = (3x^2 + a) / (2y)
  const Mpz num = (Mpz(3) * p.x * p.x + curve.a).mod(curve.p);
  const Mpz den = Mpz::invmod((Mpz(2) * p.y).mod(curve.p), curve.p);
  const Mpz lambda = (num * den).mod(curve.p);
  const Mpz x3 = (lambda * lambda - Mpz(2) * p.x).mod(curve.p);
  const Mpz y3 = (lambda * (p.x - x3) - p.y).mod(curve.p);
  return Point::make(x3, y3);
}

Point add(const Curve& curve, const Point& p, const Point& q) {
  if (p.infinity) return q;
  if (q.infinity) return p;
  if (p.x == q.x) {
    if (p.y == q.y) return double_point(curve, p);
    return Point::at_infinity();  // mirror points
  }
  const Mpz num = (q.y - p.y).mod(curve.p);
  const Mpz den = Mpz::invmod((q.x - p.x).mod(curve.p), curve.p);
  const Mpz lambda = (num * den).mod(curve.p);
  const Mpz x3 = (lambda * lambda - p.x - q.x).mod(curve.p);
  const Mpz y3 = (lambda * (p.x - x3) - p.y).mod(curve.p);
  return Point::make(x3, y3);
}

Point scalar_mul(const Curve& curve, const Mpz& k, const Point& p) {
  if (k.is_zero() || p.infinity) return Point::at_infinity();
  if (k.is_negative()) throw std::invalid_argument("ecc: negative scalar");
  Point result = Point::at_infinity();
  Point addend = p;
  const std::size_t bits = k.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (k.bit(i)) result = add(curve, result, addend);
    addend = double_point(curve, addend);
  }
  return result;
}

Point base_mul(const Curve& curve, const Mpz& k) {
  return scalar_mul(curve, k, Point::make(curve.gx, curve.gy));
}

KeyPair generate_key(const Curve& curve, Rng& rng) {
  KeyPair kp;
  kp.d = random_below(curve.n - Mpz(1), rng) + Mpz(1);
  kp.q = base_mul(curve, kp.d);
  return kp;
}

Mpz ecdh_shared(const Curve& curve, const Mpz& d, const Point& peer) {
  if (peer.infinity || !on_curve(curve, peer)) {
    throw std::invalid_argument("ecdh: invalid peer point");
  }
  const Point shared = scalar_mul(curve, d, peer);
  if (shared.infinity) throw std::invalid_argument("ecdh: degenerate secret");
  return shared.x;
}

namespace {

Mpz digest_to_scalar(const Curve& curve, const std::vector<std::uint8_t>& message) {
  const auto digest = Sha1::hash(message);
  Mpz z = Mpz::from_bytes_be(digest.data(), digest.size());
  // Truncate to the group size if needed (P-192: 192 > 160, so no-op).
  const std::size_t excess =
      z.bit_length() > curve.n.bit_length() ? z.bit_length() - curve.n.bit_length() : 0;
  return z.rshift(excess);
}

}  // namespace

Signature sign(const Curve& curve, const Mpz& d,
               const std::vector<std::uint8_t>& message, Rng& rng) {
  const Mpz z = digest_to_scalar(curve, message);
  for (;;) {
    const Mpz k = random_below(curve.n - Mpz(1), rng) + Mpz(1);
    const Point kg = base_mul(curve, k);
    const Mpz r = kg.x.mod(curve.n);
    if (r.is_zero()) continue;
    const Mpz k_inv = Mpz::invmod(k, curve.n);
    const Mpz s = (k_inv * (z + r * d)).mod(curve.n);
    if (s.is_zero()) continue;
    return Signature{r, s};
  }
}

bool verify(const Curve& curve, const Point& q,
            const std::vector<std::uint8_t>& message, const Signature& sig) {
  if (sig.r.is_zero() || sig.s.is_zero() || !(sig.r < curve.n) || !(sig.s < curve.n)) {
    return false;
  }
  if (q.infinity || !on_curve(curve, q)) return false;
  const Mpz z = digest_to_scalar(curve, message);
  const Mpz w = Mpz::invmod(sig.s, curve.n);
  const Mpz u1 = (z * w).mod(curve.n);
  const Mpz u2 = (sig.r * w).mod(curve.n);
  const Point pt = add(curve, base_mul(curve, u1), scalar_mul(curve, u2, q));
  if (pt.infinity) return false;
  return pt.x.mod(curve.n) == sig.r;
}

}  // namespace wsp::ecc
