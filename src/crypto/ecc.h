// Elliptic-curve cryptography over prime fields — the "ECC" entry in the
// paper's security-primitive API ("RSA, ECC, DES, 3DES, AES, etc.",
// Sec. 2.2), and the alternative public-key family its related-work section
// highlights for reduced computational complexity.
//
// Affine-coordinate arithmetic over Mpz (one modular inversion per group
// operation), with secp192r1 as the built-in curve.  Provides ECDH key
// agreement and ECDSA signatures.  Like the rest of the library: correct
// and deterministic, not hardened.
#pragma once

#include <optional>

#include "mp/mpz.h"
#include "support/random.h"

namespace wsp::ecc {

/// A short-Weierstrass curve y^2 = x^3 + ax + b over GF(p), with base
/// point G of prime order n.
struct Curve {
  Mpz p, a, b;
  Mpz gx, gy;
  Mpz n;
};

/// The NIST P-192 / secp192r1 parameters.
const Curve& secp192r1();

/// Affine point; `infinity` is the group identity.
struct Point {
  Mpz x, y;
  bool infinity = true;

  static Point at_infinity() { return Point{}; }
  static Point make(Mpz x, Mpz y) { return Point{std::move(x), std::move(y), false}; }
};

bool operator==(const Point& a, const Point& b);

/// True if the point satisfies the curve equation (or is infinity).
bool on_curve(const Curve& curve, const Point& pt);

/// Group operations.
Point add(const Curve& curve, const Point& p, const Point& q);
Point double_point(const Curve& curve, const Point& p);
Point scalar_mul(const Curve& curve, const Mpz& k, const Point& p);

/// Base-point multiple k*G.
Point base_mul(const Curve& curve, const Mpz& k);

// --- ECDH -------------------------------------------------------------------

struct KeyPair {
  Mpz d;    ///< private scalar in [1, n)
  Point q;  ///< public point d*G
};

KeyPair generate_key(const Curve& curve, Rng& rng);

/// Shared secret: x-coordinate of d * Q_peer.  Throws std::invalid_argument
/// for the point at infinity or an off-curve peer point.
Mpz ecdh_shared(const Curve& curve, const Mpz& d, const Point& peer);

// --- ECDSA -------------------------------------------------------------------

struct Signature {
  Mpz r, s;
};

/// Signs a message (SHA-1 digest truncated to the group size).
Signature sign(const Curve& curve, const Mpz& d,
               const std::vector<std::uint8_t>& message, Rng& rng);

bool verify(const Curve& curve, const Point& q,
            const std::vector<std::uint8_t>& message, const Signature& sig);

}  // namespace wsp::ecc
