#include "crypto/elgamal.h"

#include <stdexcept>

#include "mp/prime.h"

namespace wsp::elgamal {

PrivateKey generate_key(std::size_t bits, Rng& rng) {
  PrivateKey key;
  key.pub.p = gen_prime(bits, rng);
  key.pub.g = Mpz(2);
  key.x = random_below(key.pub.p - Mpz(2), rng) + Mpz(1);
  ModexpEngine engine{ModexpConfig{}};
  key.pub.y = engine.powm(key.pub.g, key.x, key.pub.p);
  return key;
}

Ciphertext encrypt(const Mpz& m, const PublicKey& key, ModexpEngine& engine,
                   Rng& rng) {
  if (m.is_zero() || m >= key.p) throw std::invalid_argument("elgamal: bad message");
  const Mpz k = random_below(key.p - Mpz(2), rng) + Mpz(1);
  Ciphertext ct;
  ct.c1 = engine.powm(key.g, k, key.p);
  ct.c2 = (m * engine.powm(key.y, k, key.p)).mod(key.p);
  return ct;
}

Mpz decrypt(const Ciphertext& ct, const PrivateKey& key, ModexpEngine& engine) {
  const Mpz exp = key.pub.p - Mpz(1) - key.x;
  const Mpz s_inv = engine.powm(ct.c1, exp, key.pub.p);
  return (ct.c2 * s_inv).mod(key.pub.p);
}

}  // namespace wsp::elgamal
