// ElGamal encryption over a prime field — the second public-key algorithm
// the paper's platform supports ("public-key (e.g., RSA, ElGamal)
// operations", Sec. 1.1).
#pragma once

#include "mp/modexp.h"
#include "mp/mpz.h"
#include "support/random.h"

namespace wsp::elgamal {

struct PublicKey {
  Mpz p;  ///< prime modulus
  Mpz g;  ///< generator
  Mpz y;  ///< g^x mod p
};

struct PrivateKey {
  PublicKey pub;
  Mpz x;  ///< secret exponent
};

struct Ciphertext {
  Mpz c1;  ///< g^k mod p
  Mpz c2;  ///< m * y^k mod p
};

/// Generates a key over a fresh `bits`-bit safe-ish prime (p = 2q+1 search
/// is expensive; we use a random prime and g = 2, adequate for performance
/// studies — documented simplification).
PrivateKey generate_key(std::size_t bits, Rng& rng);

/// Encrypts m (0 < m < p) with ephemeral k drawn from rng.
Ciphertext encrypt(const Mpz& m, const PublicKey& key, ModexpEngine& engine,
                   Rng& rng);

/// Recovers m = c2 * c1^(p-1-x) mod p.
Mpz decrypt(const Ciphertext& ct, const PrivateKey& key, ModexpEngine& engine);

}  // namespace wsp::elgamal
