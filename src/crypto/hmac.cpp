#include "crypto/hmac.h"

#include "crypto/md5.h"
#include "crypto/sha1.h"

namespace wsp {

namespace {

template <typename Hash>
std::vector<std::uint8_t> hmac(const std::vector<std::uint8_t>& key,
                               const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> k = key;
  if (k.size() > Hash::kBlockSize) {
    const auto d = Hash::hash(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(Hash::kBlockSize, 0);

  std::vector<std::uint8_t> ipad(Hash::kBlockSize), opad(Hash::kBlockSize);
  for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Hash inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.digest();

  Hash outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  const auto tag = outer.digest();
  return std::vector<std::uint8_t>(tag.begin(), tag.end());
}

}  // namespace

std::vector<std::uint8_t> hmac_sha1(const std::vector<std::uint8_t>& key,
                                    const std::vector<std::uint8_t>& data) {
  return hmac<Sha1>(key, data);
}

std::vector<std::uint8_t> hmac_md5(const std::vector<std::uint8_t>& key,
                                   const std::vector<std::uint8_t>& data) {
  return hmac<Md5>(key, data);
}

}  // namespace wsp
