// HMAC (RFC 2104) over the library's hash functions.
#pragma once

#include <cstdint>
#include <vector>

namespace wsp {

/// HMAC-SHA1 of `data` under `key`; returns the 20-byte tag.
std::vector<std::uint8_t> hmac_sha1(const std::vector<std::uint8_t>& key,
                                    const std::vector<std::uint8_t>& data);

/// HMAC-MD5 of `data` under `key`; returns the 16-byte tag.
std::vector<std::uint8_t> hmac_md5(const std::vector<std::uint8_t>& key,
                                   const std::vector<std::uint8_t>& data);

}  // namespace wsp
