// MD5 (RFC 1321) — used by SSLv3-style key derivation in src/ssl.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace wsp {

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  static constexpr std::size_t kBlockSize = 64;

  Md5();
  void update(const std::uint8_t* data, std::size_t n);
  void update(const std::vector<std::uint8_t>& data) { update(data.data(), data.size()); }
  std::array<std::uint8_t, kDigestSize> digest();

  static std::array<std::uint8_t, kDigestSize> hash(const std::uint8_t* data, std::size_t n);
  static std::array<std::uint8_t, kDigestSize> hash(const std::vector<std::uint8_t>& data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[4];
  std::uint64_t total_ = 0;
  std::uint8_t buf_[kBlockSize];
  std::size_t buf_len_ = 0;
};

}  // namespace wsp
