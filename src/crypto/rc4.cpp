#include "crypto/rc4.h"

#include <stdexcept>
#include <utility>

namespace wsp {

Rc4::Rc4(const std::vector<std::uint8_t>& key) {
  if (key.empty()) throw std::invalid_argument("rc4: empty key");
  for (int i = 0; i < 256; ++i) s_[i] = static_cast<std::uint8_t>(i);
  std::uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[i] + key[static_cast<std::size_t>(i) % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

void Rc4::process(std::uint8_t* data, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    i_ = static_cast<std::uint8_t>(i_ + 1);
    j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
    std::swap(s_[i_], s_[j_]);
    data[k] ^= s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
  }
}

std::vector<std::uint8_t> Rc4::process(const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out = data;
  process(out.data(), out.size());
  return out;
}

}  // namespace wsp
