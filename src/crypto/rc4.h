// RC4 stream cipher — the lightweight cipher-suite option in the SSL model
// (SSL_RSA_WITH_RC4_128_* suites were the common low-end handset choice).
#pragma once

#include <cstdint>
#include <vector>

namespace wsp {

class Rc4 {
 public:
  explicit Rc4(const std::vector<std::uint8_t>& key);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void process(std::uint8_t* data, std::size_t n);
  std::vector<std::uint8_t> process(const std::vector<std::uint8_t>& data);

 private:
  std::uint8_t s_[256];
  std::uint8_t i_ = 0, j_ = 0;
};

}  // namespace wsp
