#include "crypto/rsa.h"

#include <stdexcept>

#include "crypto/sha1.h"
#include "mp/prime.h"

namespace wsp::rsa {

PrivateKey generate_key(std::size_t bits, Rng& rng) {
  if (bits < 64 || bits % 2 != 0) {
    throw std::invalid_argument("rsa: key size must be an even number >= 64");
  }
  const Mpz e(65537);
  for (;;) {
    const Mpz p = gen_prime(bits / 2, rng);
    Mpz q = gen_prime(bits / 2, rng);
    if (p == q) continue;
    const Mpz n = p * q;
    if (n.bit_length() != bits) continue;
    const Mpz phi = (p - Mpz(1)) * (q - Mpz(1));
    if (!(Mpz::gcd(e, phi) == Mpz(1))) continue;
    PrivateKey key;
    key.n = n;
    key.e = e;
    key.d = Mpz::invmod(e, phi);
    key.p = p;
    key.q = q;
    key.crt = CrtKey::derive(p, q, key.d);
    return key;
  }
}

Mpz public_op(const Mpz& m, const PublicKey& key, ModexpEngine& engine) {
  if (m >= key.n) throw std::invalid_argument("rsa: message out of range");
  return engine.powm(m, key.e, key.n);
}

Mpz private_op(const Mpz& c, const PrivateKey& key, ModexpEngine& engine) {
  if (c >= key.n) throw std::invalid_argument("rsa: ciphertext out of range");
  return engine.powm_crt(c, key.d, key.crt);
}

namespace {
std::vector<std::uint8_t> pad_type2(const std::vector<std::uint8_t>& msg,
                                    std::size_t k, Rng& rng) {
  if (msg.size() + 11 > k) throw std::invalid_argument("rsa: message too long");
  std::vector<std::uint8_t> em(k);
  em[0] = 0x00;
  em[1] = 0x02;
  const std::size_t pad_len = k - 3 - msg.size();
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) b = static_cast<std::uint8_t>(rng.next_u64());
    em[2 + i] = b;
  }
  em[2 + pad_len] = 0x00;
  for (std::size_t i = 0; i < msg.size(); ++i) em[3 + pad_len + i] = msg[i];
  return em;
}
}  // namespace

std::vector<std::uint8_t> encrypt(const std::vector<std::uint8_t>& message,
                                  const PublicKey& key, ModexpEngine& engine,
                                  Rng& rng) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const Mpz m = Mpz::from_bytes_be(pad_type2(message, k, rng));
  return public_op(m, key, engine).to_bytes_be(k);
}

std::vector<std::uint8_t> decrypt(const std::vector<std::uint8_t>& ciphertext,
                                  const PrivateKey& key, ModexpEngine& engine) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const Mpz c = Mpz::from_bytes_be(ciphertext);
  const std::vector<std::uint8_t> em =
      private_op(c, key, engine).to_bytes_be(k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) {
    throw std::runtime_error("rsa: bad PKCS#1 padding");
  }
  std::size_t i = 2;
  while (i < em.size() && em[i] != 0x00) ++i;
  if (i < 10 || i == em.size()) throw std::runtime_error("rsa: bad PKCS#1 padding");
  return std::vector<std::uint8_t>(em.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                   em.end());
}

std::vector<std::uint8_t> sign(const std::vector<std::uint8_t>& message,
                               const PrivateKey& key, ModexpEngine& engine) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const auto digest = Sha1::hash(message);
  std::vector<std::uint8_t> em(k, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[k - digest.size() - 1] = 0x00;
  for (std::size_t i = 0; i < digest.size(); ++i) {
    em[k - digest.size() + i] = digest[i];
  }
  const Mpz m = Mpz::from_bytes_be(em);
  return engine.powm_crt(m, key.d, key.crt).to_bytes_be(k);
}

bool verify(const std::vector<std::uint8_t>& message,
            const std::vector<std::uint8_t>& signature, const PublicKey& key,
            ModexpEngine& engine) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const Mpz s = Mpz::from_bytes_be(signature);
  if (s >= key.n) return false;
  const std::vector<std::uint8_t> em = engine.powm(s, key.e, key.n).to_bytes_be(k);
  const auto digest = Sha1::hash(message);
  if (em.size() < digest.size() + 11) return false;
  if (em[0] != 0x00 || em[1] != 0x01) return false;
  std::size_t i = 2;
  while (i < em.size() && em[i] == 0xff) ++i;
  if (i == em.size() || em[i] != 0x00) return false;
  ++i;
  if (em.size() - i != digest.size()) return false;
  for (std::size_t j = 0; j < digest.size(); ++j) {
    if (em[i + j] != digest[j]) return false;
  }
  return true;
}

}  // namespace wsp::rsa
