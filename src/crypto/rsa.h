// RSA — the paper's public-key workload (key generation, raw public/private
// operations, PKCS#1 v1.5 block formatting, CRT-accelerated private ops).
//
// Private operations route through a ModexpEngine so that the entire
// algorithm design space (Sec. 4.3) applies: the same keys and messages can
// be exercised under any of the 450 configurations.
//
// NOTE: key generation uses the repository's deterministic PRNG; this is a
// research reproduction, not a hardened cryptographic implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/modexp.h"
#include "mp/mpz.h"
#include "support/random.h"

namespace wsp::rsa {

struct PublicKey {
  Mpz n;  ///< modulus
  Mpz e;  ///< public exponent
  std::size_t bits() const { return n.bit_length(); }
};

struct PrivateKey {
  Mpz n, e, d;
  Mpz p, q;       ///< factorization (enables CRT)
  CrtKey crt;     ///< precomputed CRT coefficients

  PublicKey public_key() const { return PublicKey{n, e}; }
  std::size_t bits() const { return n.bit_length(); }
};

/// Generates an RSA key with a modulus of `bits` bits and e = 65537.
PrivateKey generate_key(std::size_t bits, Rng& rng);

/// Raw (textbook) operations: m^e mod n and c^d mod n.
Mpz public_op(const Mpz& m, const PublicKey& key, ModexpEngine& engine);
Mpz private_op(const Mpz& c, const PrivateKey& key, ModexpEngine& engine);

/// PKCS#1 v1.5 type-2 encryption of a short message (<= k - 11 bytes).
std::vector<std::uint8_t> encrypt(const std::vector<std::uint8_t>& message,
                                  const PublicKey& key, ModexpEngine& engine,
                                  Rng& rng);
/// Inverse of `encrypt`; throws std::runtime_error on malformed padding.
std::vector<std::uint8_t> decrypt(const std::vector<std::uint8_t>& ciphertext,
                                  const PrivateKey& key, ModexpEngine& engine);

/// PKCS#1 v1.5 type-1 signature over a SHA-1 digest (raw digest, no ASN.1
/// DigestInfo — documented simplification).
std::vector<std::uint8_t> sign(const std::vector<std::uint8_t>& message,
                               const PrivateKey& key, ModexpEngine& engine);
bool verify(const std::vector<std::uint8_t>& message,
            const std::vector<std::uint8_t>& signature, const PublicKey& key,
            ModexpEngine& engine);

}  // namespace wsp::rsa
