#include "crypto/sha1.h"

namespace wsp {

namespace {
std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
}  // namespace

Sha1::Sha1() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           block[4 * i + 3];
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t t = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = t;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(const std::uint8_t* data, std::size_t n) {
  total_ += n;
  while (n > 0) {
    const std::size_t take = std::min(n, kBlockSize - buf_len_);
    for (std::size_t i = 0; i < take; ++i) buf_[buf_len_ + i] = data[i];
    buf_len_ += take;
    data += take;
    n -= take;
    if (buf_len_ == kBlockSize) {
      process_block(buf_);
      buf_len_ = 0;
    }
  }
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::digest() {
  const std::uint64_t bit_len = total_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0;
  while (buf_len_ != 56) update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(len_be, 8);
  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::hash(const std::uint8_t* data,
                                                       std::size_t n) {
  Sha1 ctx;
  ctx.update(data, n);
  return ctx.digest();
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::hash(
    const std::vector<std::uint8_t>& data) {
  return hash(data.data(), data.size());
}

}  // namespace wsp
