// SHA-1 (FIPS-180) — used by the SSL record-layer MACs and key derivation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace wsp {

/// Incremental SHA-1 context.
class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1();
  void update(const std::uint8_t* data, std::size_t n);
  void update(const std::vector<std::uint8_t>& data) { update(data.data(), data.size()); }
  std::array<std::uint8_t, kDigestSize> digest();  ///< finalizes; context unusable after

  /// One-shot convenience.
  static std::array<std::uint8_t, kDigestSize> hash(const std::uint8_t* data, std::size_t n);
  static std::array<std::uint8_t, kDigestSize> hash(const std::vector<std::uint8_t>& data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[5];
  std::uint64_t total_ = 0;
  std::uint8_t buf_[kBlockSize];
  std::size_t buf_len_ = 0;
};

}  // namespace wsp
