#include "explore/estimator.h"

#include <stdexcept>
#include <string>

#include "mp/prime.h"

namespace wsp::explore {

RsaWorkload make_rsa_workload(std::size_t bits, Rng& rng) {
  RsaWorkload w;
  const rsa::PrivateKey key = rsa::generate_key(bits, rng);
  w.n = key.n;
  w.d = key.d;
  w.key = key.crt;
  w.c = random_below(key.n, rng);
  return w;
}

Estimate estimate_config(const ModexpConfig& config, const RsaWorkload& workload,
                         const macromodel::MacroModelSet& models) {
  if (workload.repetitions <= 0) {
    throw std::invalid_argument(
        "estimate_config: workload.repetitions must be positive, got " +
        std::to_string(workload.repetitions));
  }
  MacroModelHook hook(models);
  ModexpEngine engine(config, &hook);
  for (int rep = 0; rep < workload.repetitions; ++rep) {
    (void)engine.powm_crt(workload.c, workload.d, workload.key);
  }
  Estimate e;
  e.total_cycles = hook.total_cycles();
  e.avg_cycles = hook.total_cycles() / workload.repetitions;
  e.events = hook.events();
  return e;
}

}  // namespace wsp::explore
