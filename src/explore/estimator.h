// Macro-model-based performance estimation for algorithm candidates
// (paper Sec. 3.2): run a candidate natively (host speed), observe its
// stream of library-routine invocations through the CostHook, and sum the
// macro-model cycle predictions — avoiding ISS runs entirely.
#pragma once

#include <cstddef>

#include "crypto/rsa.h"
#include "macromodel/models.h"
#include "mp/modexp.h"
#include "support/random.h"

namespace wsp::explore {

/// CostHook that accumulates macro-model cycles over the event stream.
class MacroModelHook : public CostHook {
 public:
  explicit MacroModelHook(const macromodel::MacroModelSet& models)
      : models_(&models) {}

  void on_prim(Prim p, std::size_t n, std::size_t m, unsigned limb_bits) override {
    total_ += models_->cycles(p, n, m, limb_bits);
    ++events_;
  }

  double total_cycles() const { return total_; }
  std::size_t events() const { return events_; }
  void reset() {
    total_ = 0;
    events_ = 0;
  }

 private:
  const macromodel::MacroModelSet* models_;
  double total_ = 0.0;
  std::size_t events_ = 0;
};

/// The exploration workload: an RSA private-key operation (the paper
/// explores modular exponentiation for public-key security processing).
struct RsaWorkload {
  Mpz n;       ///< modulus
  Mpz c;       ///< ciphertext operand
  Mpz d;       ///< private exponent
  CrtKey key;  ///< CRT material
  /// Operations per estimate; >1 lets the software-caching axis amortize.
  int repetitions = 4;
};

/// Deterministic RSA workload of the given modulus size.
RsaWorkload make_rsa_workload(std::size_t bits, Rng& rng);

struct Estimate {
  double total_cycles = 0.0;    ///< across all repetitions
  double avg_cycles = 0.0;      ///< per private-key operation
  std::size_t events = 0;       ///< primitive invocations observed
};

/// Estimates one configuration on the workload.  A fresh engine is used, so
/// cold-start costs appear once and the caching axis takes effect across
/// repetitions.
Estimate estimate_config(const ModexpConfig& config, const RsaWorkload& workload,
                         const macromodel::MacroModelSet& models);

}  // namespace wsp::explore
