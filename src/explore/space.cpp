#include "explore/space.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "support/threadpool.h"
#include "support/trace.h"

namespace wsp::explore {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ExplorationReport explore_modexp_space(const RsaWorkload& workload,
                                       const macromodel::MacroModelSet& models,
                                       std::vector<ModexpConfig> configs,
                                       unsigned threads) {
  ExplorationReport report;
  report.configs = configs.size();
  report.threads = std::max(1u, threads);
  WSP_TRACE_SPAN("explore", "explore_modexp_space");
  WSP_TRACE_COUNTER("explore", "configs", static_cast<double>(configs.size()));
  const auto t0 = std::chrono::steady_clock::now();

  // Every configuration is estimated independently with its own engine and
  // hook; the estimate vector is indexed by configuration, so the values
  // (and the FP summation order inside each one) are scheduling-invariant.
  const std::vector<Estimate> estimates =
      parallel_map(report.threads, configs, [&](const ModexpConfig& cfg) {
        trace::Span span("explore",
                         trace::enabled() ? "estimate/" + cfg.name() : std::string());
        Estimate est = estimate_config(cfg, workload, models);
        WSP_TRACE_COUNTER("explore", "estimate_events",
                          static_cast<double>(est.events));
        return est;
      });
  report.wall_seconds = seconds_since(t0);

  // Deterministic merge: sort configuration indices, breaking cycle ties on
  // the index, so the ranking is identical for any thread count.
  std::vector<std::size_t> order(configs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (estimates[a].avg_cycles != estimates[b].avg_cycles) {
      return estimates[a].avg_cycles < estimates[b].avg_cycles;
    }
    return a < b;
  });
  report.ranked.reserve(configs.size());
  for (std::size_t i : order) {
    report.ranked.push_back({configs[i], estimates[i]});
  }
  return report;
}

ValidationReport validate_estimates(kernels::Machine& modexp_machine,
                                    const RsaWorkload& workload,
                                    const macromodel::MacroModelSet& models) {
  ValidationReport report;
  kernels::IssModexp iss(modexp_machine);

  struct Candidate {
    std::string name;
    ModexpConfig config;
    unsigned window;  // 0 = division baseline
  };
  std::vector<Candidate> candidates;
  candidates.push_back(
      {"basecase-div/w1",
       ModexpConfig{MulAlgo::kBasecaseDiv, 1, CrtMode::kNone, Radix::k32,
                    Caching::kContext},
       0});
  for (unsigned w = 1; w <= 5; ++w) {
    candidates.push_back(
        {"mont-cios/w" + std::to_string(w),
         ModexpConfig{MulAlgo::kMontCIOS, w, CrtMode::kNone, Radix::k32,
                      Caching::kContext},
         w});
  }
  candidates.push_back(
      {"barrett/w4",
       ModexpConfig{MulAlgo::kBarrett, 4, CrtMode::kNone, Radix::k32,
                    Caching::kContext},
       100 + 4});
  candidates.push_back(
      {"mont-sos/w4",
       ModexpConfig{MulAlgo::kMontSOS, 4, CrtMode::kNone, Radix::k32,
                    Caching::kContext},
       200 + 4});

  // --- native macro-model estimates (timed) ---------------------------------
  WSP_TRACE_SPAN("explore", "validate_estimates");
  const auto t_est = std::chrono::steady_clock::now();
  std::vector<double> estimated;
  for (const Candidate& cand : candidates) {
    MacroModelHook hook(models);
    ModexpEngine engine(cand.config);
    // Warm the per-modulus context so its setup events are excluded (the
    // ISS drivers precompute Montgomery constants host-side).
    (void)engine.powm(workload.c, Mpz(3), workload.n);
    engine.set_hook(&hook);
    (void)engine.powm(workload.c, workload.d, workload.n);
    estimated.push_back(hook.total_cycles());
  }
  report.estimate_wall_seconds = seconds_since(t_est);

  // --- ISS ground truth (timed) -----------------------------------------------
  const auto t_iss = std::chrono::steady_clock::now();
  double err_sum = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& cand = candidates[i];
    trace::Span span("explore",
                     trace::enabled() ? "iss/" + cand.name : std::string());
    kernels::IssModexpResult measured;
    if (cand.window == 0) {
      measured = iss.powm_base(workload.c, workload.d, workload.n);
    } else if (cand.window >= 200) {
      measured = iss.powm_mont_sos(workload.c, workload.d, workload.n,
                                   cand.window - 200);
    } else if (cand.window >= 100) {
      measured = iss.powm_barrett(workload.c, workload.d, workload.n,
                                  cand.window - 100);
    } else {
      measured = iss.powm_mont(workload.c, workload.d, workload.n, cand.window);
    }
    ValidationPoint point;
    point.name = cand.name;
    point.estimated_cycles = estimated[i];
    point.measured_cycles = static_cast<double>(measured.cycles);
    point.error_pct = 100.0 *
                      std::fabs(point.estimated_cycles - point.measured_cycles) /
                      point.measured_cycles;
    err_sum += point.error_pct;
    report.points.push_back(std::move(point));
  }
  report.iss_wall_seconds = seconds_since(t_iss);
  report.mean_abs_error_pct = err_sum / static_cast<double>(report.points.size());
  report.speedup_factor =
      report.estimate_wall_seconds > 0
          ? report.iss_wall_seconds / report.estimate_wall_seconds
          : 0.0;
  return report;
}

}  // namespace wsp::explore
