// Algorithm design-space exploration (paper Sec. 4.3): evaluate all 450
// modular-exponentiation configurations through macro-model estimation,
// rank them, and cross-validate a subset against cycle-accurate ISS runs.
#pragma once

#include <string>
#include <vector>

#include "explore/estimator.h"
#include "kernels/modexp_kernel.h"

namespace wsp::explore {

struct ConfigEstimate {
  ModexpConfig config;
  Estimate estimate;
};

struct ExplorationReport {
  std::vector<ConfigEstimate> ranked;  ///< ascending estimated cycles
  double wall_seconds = 0.0;           ///< native estimation time
  std::size_t configs = 0;
  unsigned threads = 1;                ///< worker threads used
};

/// Estimates every configuration (default: the full 450-point space) and
/// returns them ranked fastest-first.
///
/// With `threads > 1` the configurations are estimated concurrently, one
/// worker-private MacroModelHook + ModexpEngine per configuration (the
/// shared MacroModelSet and workload are read-only).  The determinism
/// contract: each estimate is computed by an identical sequence of
/// operations regardless of scheduling, results are merged by configuration
/// index, and ties in estimated cycles break on that index — so the ranking
/// is bit-identical for any thread count.
ExplorationReport explore_modexp_space(
    const RsaWorkload& workload, const macromodel::MacroModelSet& models,
    std::vector<ModexpConfig> configs = all_modexp_configs(),
    unsigned threads = 1);

/// One estimate-vs-ISS comparison point.
struct ValidationPoint {
  std::string name;
  double estimated_cycles = 0.0;
  double measured_cycles = 0.0;
  double error_pct = 0.0;
};

struct ValidationReport {
  std::vector<ValidationPoint> points;
  double mean_abs_error_pct = 0.0;
  double estimate_wall_seconds = 0.0;  ///< native estimation of the points
  double iss_wall_seconds = 0.0;       ///< ISS simulation of the points
  double speedup_factor = 0.0;         ///< iss / estimate wall time
};

/// Cross-validates the estimator against the ISS on the configurations the
/// XR32 kernels implement: division-reduction binary exponentiation, and
/// Montgomery CIOS with windows 1..5 (radix 32, context caching) —
/// the analogue of the paper's six ISS-evaluated candidates.
ValidationReport validate_estimates(kernels::Machine& modexp_machine,
                                    const RsaWorkload& workload,
                                    const macromodel::MacroModelSet& models);

}  // namespace wsp::explore
