#include <sstream>

#include "isa/isa.h"

namespace wsp::isa {

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kMul: return "mul";
    case Op::kMulhu: return "mulhu";
    case Op::kAddi: return "addi";
    case Op::kAndi: return "andi";
    case Op::kOri: return "ori";
    case Op::kXori: return "xori";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kLui: return "lui";
    case Op::kLw: return "lw";
    case Op::kLhu: return "lhu";
    case Op::kLbu: return "lbu";
    case Op::kSw: return "sw";
    case Op::kSh: return "sh";
    case Op::kSb: return "sb";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kJ: return "j";
    case Op::kCall: return "call";
    case Op::kJalr: return "jalr";
    case Op::kRet: return "ret";
    case Op::kHalt: return "halt";
    case Op::kCustom: return "custom";
  }
  return "?";
}

bool reads_rs1(Op op) {
  switch (op) {
    case Op::kNop:
    case Op::kLui:
    case Op::kJ:
    case Op::kCall:
    case Op::kRet:
    case Op::kHalt:
      return false;
    default:
      return true;
  }
}

bool reads_rs2(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kMul:
    case Op::kMulhu:
    case Op::kSw:
    case Op::kSh:
    case Op::kSb:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kCustom:
      return true;
    default:
      return false;
  }
}

bool writes_rd(Op op) {
  switch (op) {
    case Op::kSw:
    case Op::kSh:
    case Op::kSb:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kJ:
    case Op::kCall:
    case Op::kRet:
    case Op::kHalt:
    case Op::kNop:
      return false;
    default:
      return true;
  }
}

std::string to_string(const Instr& instr) {
  std::ostringstream os;
  os << op_name(instr.op);
  if (instr.op == Op::kCustom) os << "#" << instr.cust_id;
  os << " rd=r" << static_cast<int>(instr.rd) << " rs1=r"
     << static_cast<int>(instr.rs1) << " rs2=r" << static_cast<int>(instr.rs2)
     << " imm=" << instr.imm;
  return os.str();
}

}  // namespace wsp::isa
