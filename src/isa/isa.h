// XR32 — the instruction set of the reproduction's configurable, extensible
// embedded core (our stand-in for the Xtensa T1040 base processor).
//
// A 32-bit, 32-register RISC ISA.  Branch and call targets are resolved by
// the assembler to absolute instruction indices; the simulator executes
// decoded `Instr` records directly (a functional + timing model, which is
// all the methodology requires — there is no binary encoding).
//
// Custom instructions occupy a single opcode (kCustom) with a 16-bit
// extension id dispatched to descriptors registered with the CPU
// (see sim/custom.h) — the analogue of TIE instruction extensions.
#pragma once

#include <cstdint>
#include <string>

namespace wsp::isa {

/// Register conventions (software, not enforced by hardware):
///   r0  — hardwired zero
///   r1  — ra (link register, written by CALL)
///   r2  — sp (stack pointer)
///   r3..r10  — a0..a7 (arguments / return values)
///   r11..r31 — temporaries (caller-saved by convention)
inline constexpr std::uint8_t kZero = 0;
inline constexpr std::uint8_t kRa = 1;
inline constexpr std::uint8_t kSp = 2;
inline constexpr std::uint8_t kA0 = 3;  // a1 = kA0+1, ...

enum class Op : std::uint8_t {
  kNop,
  // ALU register-register.
  kAdd, kSub, kAnd, kOr, kXor,
  kSll, kSrl, kSra,
  kSlt, kSltu,
  kMul,    ///< low 32 bits of the product (configurable option on the core)
  kMulhu,  ///< high 32 bits of the unsigned product
  // ALU register-immediate.
  kAddi, kAndi, kOri, kXori,
  kSlli, kSrli, kSrai,
  kSlti, kSltiu,
  kLui,  ///< rd = imm << 12
  // Memory.
  kLw, kLhu, kLbu,
  kSw, kSh, kSb,
  // Control flow.  imm = absolute instruction index.
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kJ,     ///< unconditional jump
  kCall,  ///< ra = pc+1; pc = imm (function entry)
  kJalr,  ///< rd = pc+1; pc = rs1 (indirect)
  kRet,   ///< pc = ra
  kHalt,
  // Extension space.
  kCustom,
};

/// One decoded instruction.
struct Instr {
  Op op = Op::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
  std::uint16_t cust_id = 0;  ///< custom-extension selector for Op::kCustom
};

/// True if the instruction reads rs1 / rs2 (used by the load-use stall model).
bool reads_rs1(Op op);
bool reads_rs2(Op op);
/// True if the instruction writes rd.
bool writes_rd(Op op);

/// Human-readable rendering (for traces and debugging).
std::string to_string(const Instr& instr);
const char* op_name(Op op);

}  // namespace wsp::isa
