#include "kernels/aes_kernel.h"

#include <stdexcept>

#include "crypto/aes.h"
#include "kernels/regs.h"
#include "tie/candidates.h"
#include "tie/ids.h"

namespace wsp::kernels {

using xasm::Assembler;

namespace {

// --- base variant: byte-oriented rounds over a 16-byte state buffer --------

void emit_sub_bytes_loop(Assembler& a, const char* label) {
  // SubBytes over state at S0 using the S-box at S1; clobbers T4..T8.
  a.mv(T4, Z);
  a.label(label);
  a.add(T5, S0, T4);
  a.lbu(T6, T5, 0);
  a.add(T6, T6, S1);
  a.lbu(T7, T6, 0);
  a.sb(T7, T5, 0);
  a.addi(T4, T4, 1);
  a.slti(T8, T4, 16);
  a.bne(T8, Z, label);
}

void emit_shift_rows(Assembler& a) {
  // Row 1: rotate left by 1.
  a.lbu(T4, S0, 1);
  a.lbu(T5, S0, 5);
  a.lbu(T6, S0, 9);
  a.lbu(T7, S0, 13);
  a.sb(T5, S0, 1);
  a.sb(T6, S0, 5);
  a.sb(T7, S0, 9);
  a.sb(T4, S0, 13);
  // Row 2: rotate left by 2.
  a.lbu(T4, S0, 2);
  a.lbu(T5, S0, 6);
  a.lbu(T6, S0, 10);
  a.lbu(T7, S0, 14);
  a.sb(T6, S0, 2);
  a.sb(T7, S0, 6);
  a.sb(T4, S0, 10);
  a.sb(T5, S0, 14);
  // Row 3: rotate left by 3.
  a.lbu(T4, S0, 3);
  a.lbu(T5, S0, 7);
  a.lbu(T6, S0, 11);
  a.lbu(T7, S0, 15);
  a.sb(T7, S0, 3);
  a.sb(T4, S0, 7);
  a.sb(T5, S0, 11);
  a.sb(T6, S0, 15);
}

void emit_add_round_key(Assembler& a) {
  // state ^= 16 key bytes (word-wise; XOR is byte-local).  Key ptr in S2,
  // advanced by the caller.
  for (int w = 0; w < 4; ++w) {
    a.lw(T4, S0, 4 * w);
    a.lw(T5, S2, 4 * w);
    a.xor_(T4, T4, T5);
    a.sw(T4, S0, 4 * w);
  }
}

// GF(2^8) multiply helper called by the baseline MixColumns — the
// portable-C structure the paper's Table 1 AES baseline represents (1526
// cycles/byte on their core): a generic gf_mul routine instead of inlined
// xtime networks.  Clobbers T0..T4 and A0/A1 only.
void emit_gf_mul(Assembler& a) {
  a.func("gf_mul");
  a.mv(T0, Z);  // accumulator
  a.label("loop");
  a.beq(A1, Z, "done");
  a.andi(T2, A1, 1);
  a.beq(T2, Z, "skip");
  a.xor_(T0, T0, A0);
  a.label("skip");
  // a = xtime(a)
  a.slli(A0, A0, 1);
  a.srli(T3, A0, 8);
  a.andi(T3, T3, 1);
  a.li(T4, 0x1b);
  a.mul(T4, T3, T4);
  a.andi(A0, A0, 0xff);
  a.xor_(A0, A0, T4);
  a.srli(A1, A1, 1);
  a.j("loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();
}

// MixColumns through gf_mul calls; state at S0.  Column bytes live in
// T10..T13 (preserved across gf_mul), outputs accumulate in T5..T8.
void emit_mix_columns_calls(Assembler& a) {
  for (int c = 0; c < 4; ++c) {
    const int o = 4 * c;
    a.lbu(T10, S0, o + 0);
    a.lbu(T11, S0, o + 1);
    a.lbu(T12, S0, o + 2);
    a.lbu(T13, S0, o + 3);
    const std::uint8_t in[4] = {T10, T11, T12, T13};
    const std::uint8_t out[4] = {T5, T6, T7, T8};
    // Row r of the MixColumns matrix: coefficient 2 at column r, 3 at r+1,
    // 1 elsewhere.
    for (int r = 0; r < 4; ++r) {
      a.mv(A0, in[r]);
      a.li(A1, 2);
      a.call("gf_mul");
      a.mv(out[r], A0);
      a.mv(A0, in[(r + 1) % 4]);
      a.li(A1, 3);
      a.call("gf_mul");
      a.xor_(out[r], out[r], A0);
      a.xor_(out[r], out[r], in[(r + 2) % 4]);
      a.xor_(out[r], out[r], in[(r + 3) % 4]);
    }
    a.sb(T5, S0, o + 0);
    a.sb(T6, S0, o + 1);
    a.sb(T7, S0, o + 2);
    a.sb(T8, S0, o + 3);
  }
}

void emit_aes_block_base(Assembler& a) {
  a.data_align(4);
  a.data_symbol("aes_sbox");
  const auto& sb = aes::sbox();
  const std::uint32_t sbox_addr =
      a.data_bytes(std::vector<std::uint8_t>(sb.begin(), sb.end()));
  a.data_align(4);
  a.data_symbol("aes_state");
  const std::uint32_t state_addr = a.data_zero(16);

  emit_gf_mul(a);

  a.func("aes_block");  // (in, out, round_keys, nrounds)
  a.prologue({S0, S1, S2, S3});
  a.li(S0, state_addr);
  a.li(S1, sbox_addr);
  a.mv(S2, A2);  // key byte pointer
  // Copy input block into the state buffer.
  for (int w = 0; w < 4; ++w) {
    a.lw(T0, A0, 4 * w);
    a.sw(T0, S0, 4 * w);
  }
  a.mv(T9, A1);       // preserve the output pointer in a stack slot
  a.addi(SP, SP, -4);
  a.sw(T9, SP, 0);
  emit_add_round_key(a);  // round 0
  a.addi(S2, S2, 16);
  a.addi(S3, A3, -1);  // main rounds (final round handled separately)
  a.label("round");
  emit_sub_bytes_loop(a, "sub");
  emit_shift_rows(a);
  emit_mix_columns_calls(a);
  emit_add_round_key(a);
  a.addi(S2, S2, 16);
  a.addi(S3, S3, -1);
  a.bne(S3, Z, "round");
  // Final round: no MixColumns.
  emit_sub_bytes_loop(a, "fsub");
  emit_shift_rows(a);
  emit_add_round_key(a);
  a.lw(T9, SP, 0);
  a.addi(SP, SP, 4);
  for (int w = 0; w < 4; ++w) {
    a.lw(T0, S0, 4 * w);
    a.sw(T0, T9, 4 * w);
  }
  a.epilogue({S0, S1, S2, S3});
}

// --- TIE-partial variant: aes_sbox4 + aes_mixcol, state in registers -------

void emit_aes_block_tie_partial(Assembler& a) {
  using namespace wsp::tie;
  a.func("aes_block");
  // Masks.
  a.li(T7, 0xff000000u);
  a.li(T8, 0x00ff0000u);
  a.li(T9, 0x0000ff00u);
  // Load big-endian state words and apply round key 0.
  a.lw(T11, A0, 0);
  a.lw(T12, A0, 4);
  a.lw(T13, A0, 8);
  a.lw(T14, A0, 12);
  for (int w = 0; w < 4; ++w) {
    a.lw(T0, A2, 4 * w);
    const std::uint8_t s = static_cast<std::uint8_t>(T11 + w);
    a.xor_(s, s, T0);
  }
  a.addi(A2, A2, 16);
  a.addi(A3, A3, -1);  // main rounds

  // Emits one output column: gathers the ShiftRows bytes of column j,
  // SubBytes via aes_sbox4, optionally MixColumns, XORs the round key word.
  const std::uint8_t state[4] = {T11, T12, T13, T14};
  const std::uint8_t outreg[4] = {A4, A5, A6, A7};
  auto emit_col = [&](int j, bool mix) {
    a.and_(T0, state[j % 4], T7);
    a.and_(T1, state[(j + 1) % 4], T8);
    a.or_(T0, T0, T1);
    a.and_(T1, state[(j + 2) % 4], T9);
    a.or_(T0, T0, T1);
    a.andi(T1, state[(j + 3) % 4], 0xff);
    a.or_(T0, T0, T1);
    a.custom(kAesSbox4, T0, T0, 0);
    if (mix) a.custom(kAesMixCol, T0, T0, 0);
    a.lw(T1, A2, 4 * j);
    a.xor_(outreg[j], T0, T1);
  };

  a.label("round");
  for (int j = 0; j < 4; ++j) emit_col(j, true);
  a.mv(T11, A4);
  a.mv(T12, A5);
  a.mv(T13, A6);
  a.mv(T14, A7);
  a.addi(A2, A2, 16);
  a.addi(A3, A3, -1);
  a.bne(A3, Z, "round");
  // Final round (no MixColumns).
  for (int j = 0; j < 4; ++j) emit_col(j, false);
  a.sw(A4, A1, 0);
  a.sw(A5, A1, 4);
  a.sw(A6, A1, 8);
  a.sw(A7, A1, 12);
  a.ret();
}

// --- TIE-full variant: whole rounds in hardware, UR-resident state --------

void emit_aes_block_tie_full(Assembler& a) {
  using namespace wsp::tie;
  a.func("aes_block");  // (in, out, round_keys, nrounds)
  a.custom(kAesLdState, 0, A0, A2);  // load + AddRoundKey(round 0)
  a.addi(T0, A2, 16);
  a.addi(T1, A3, -1);  // main rounds
  a.label("round");
  a.custom(kAesRound, 0, T0, 0);
  a.addi(T0, T0, 16);
  a.addi(T1, T1, -1);
  a.bne(T1, Z, "round");
  a.custom(kAesFinal, 0, T0, 0);
  a.custom(kAesStState, 0, A1, 0);
  a.ret();
}

}  // namespace

void emit_aes_kernels(Assembler& a, AesKernelVariant variant) {
  switch (variant) {
    case AesKernelVariant::kBase: emit_aes_block_base(a); break;
    case AesKernelVariant::kTiePartial: emit_aes_block_tie_partial(a); break;
    case AesKernelVariant::kTieFull: emit_aes_block_tie_full(a); break;
  }

  // ---- aes_ecb(in, out, nblocks, keys, nrounds) ----------------------------
  a.func("aes_ecb");
  a.prologue({S0, S1, S2, S3, S4});
  a.mv(S0, A0);
  a.mv(S1, A1);
  a.mv(S2, A2);
  a.mv(S3, A3);
  a.mv(S4, A4);
  a.label("loop");
  a.beq(S2, Z, "done");
  a.mv(A0, S0);
  a.mv(A1, S1);
  a.mv(A2, S3);
  a.mv(A3, S4);
  a.call("aes_block");
  a.addi(S0, S0, 16);
  a.addi(S1, S1, 16);
  a.addi(S2, S2, -1);
  a.j("loop");
  a.label("done");
  a.epilogue({S0, S1, S2, S3, S4});
}

AesKernel::AesKernel(Machine& m, AesKernelVariant variant)
    : m_(m), variant_(variant) {
  io_in_ = m_.alloc(16, 16);
  io_out_ = m_.alloc(16, 16);
}

namespace {
std::uint32_t be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}
std::uint32_t byteswap(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0xff00u) | ((v << 8) & 0xff0000u) | (v << 24);
}
}  // namespace

void AesKernel::set_key(const std::vector<std::uint8_t>& key) {
  const auto ks = aes::key_schedule(key);  // validates 16/24/32-byte keys
  rounds_ = static_cast<std::uint32_t>(ks.rounds);
  std::vector<std::uint32_t> words;
  words.reserve(ks.round_keys.size());
  for (std::uint32_t rk : ks.round_keys) {
    // Base variant addresses the key bytes in state order (byte i of word c
    // at offset 4c+i), which in little-endian memory is the byteswapped
    // word; the TIE variants load the big-endian word value directly.
    words.push_back(variant_ == AesKernelVariant::kBase ? byteswap(rk) : rk);
  }
  key_addr_ = m_.alloc_words(words);
}

std::vector<std::uint8_t> AesKernel::encrypt_block(
    const std::vector<std::uint8_t>& block, std::uint64_t* cycles) {
  if (block.size() != 16) throw std::invalid_argument("AesKernel: bad block");
  if (variant_ == AesKernelVariant::kBase) {
    m_.write_bytes(io_in_, block);
  } else {
    for (int w = 0; w < 4; ++w) {
      m_.write_u32(io_in_ + 4 * static_cast<std::uint32_t>(w), be32(block.data() + 4 * w));
    }
  }
  const auto res = m_.call("aes_block", {io_in_, io_out_, key_addr_, rounds_});
  if (cycles) *cycles += res.cycles;
  if (variant_ == AesKernelVariant::kBase) {
    return m_.read_bytes(io_out_, 16);
  }
  std::vector<std::uint8_t> out(16);
  for (int w = 0; w < 4; ++w) {
    const std::uint32_t v = m_.read_u32(io_out_ + 4 * static_cast<std::uint32_t>(w));
    out[static_cast<std::size_t>(4 * w)] = static_cast<std::uint8_t>(v >> 24);
    out[static_cast<std::size_t>(4 * w + 1)] = static_cast<std::uint8_t>(v >> 16);
    out[static_cast<std::size_t>(4 * w + 2)] = static_cast<std::uint8_t>(v >> 8);
    out[static_cast<std::size_t>(4 * w + 3)] = static_cast<std::uint8_t>(v);
  }
  return out;
}

std::vector<std::uint8_t> AesKernel::encrypt_ecb(
    const std::vector<std::uint8_t>& data, std::uint64_t* cycles) {
  if (data.size() % 16 != 0) throw std::invalid_argument("AesKernel: bad length");
  const std::uint32_t nblocks = static_cast<std::uint32_t>(data.size() / 16);
  const std::uint32_t pin = m_.alloc(data.size(), 16);
  const std::uint32_t pout = m_.alloc(data.size(), 16);
  if (variant_ == AesKernelVariant::kBase) {
    m_.write_bytes(pin, data);
  } else {
    for (std::size_t w = 0; w < data.size() / 4; ++w) {
      m_.write_u32(pin + static_cast<std::uint32_t>(4 * w), be32(data.data() + 4 * w));
    }
  }
  const auto res = m_.call("aes_ecb", {pin, pout, nblocks, key_addr_, rounds_});
  if (cycles) *cycles += res.cycles;
  if (variant_ == AesKernelVariant::kBase) {
    return m_.read_bytes(pout, data.size());
  }
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t w = 0; w < data.size() / 4; ++w) {
    const std::uint32_t v = m_.read_u32(pout + static_cast<std::uint32_t>(4 * w));
    out[4 * w] = static_cast<std::uint8_t>(v >> 24);
    out[4 * w + 1] = static_cast<std::uint8_t>(v >> 16);
    out[4 * w + 2] = static_cast<std::uint8_t>(v >> 8);
    out[4 * w + 3] = static_cast<std::uint8_t>(v);
  }
  return out;
}

Machine make_aes_machine(AesKernelVariant variant, sim::CpuConfig config) {
  Assembler a;
  emit_aes_kernels(a, variant);
  sim::CustomSet customs;
  switch (variant) {
    case AesKernelVariant::kBase:
      break;
    case AesKernelVariant::kTiePartial:
      customs = tie::custom_set_for({"aes_sbox4", "aes_mixcol"});
      break;
    case AesKernelVariant::kTieFull:
      customs = tie::custom_set_for(
          {"aes_ld_state", "aes_st_state", "aes_round", "aes_final"});
      break;
  }
  return Machine(a.finish(), config, std::move(customs));
}

}  // namespace wsp::kernels
