// AES-128 on the simulated core, in three hardware configurations:
//
//   kBase       — byte-oriented software rounds (SubBytes via table loads,
//                 ShiftRows byte moves, MixColumns xtime networks): the
//                 Table 1 baseline structure;
//   kTiePartial — aes_sbox4 + aes_mixcol custom units, round control and
//                 ShiftRows assembly in software (the configuration the
//                 area-constrained global selection picks);
//   kTieFull    — full aes_round / aes_final units with UR-resident state
//                 (a large-area candidate; used in ablations).
//
// All three expose aes_block / aes_ecb (round count passed at runtime, so
// AES-128/192/256 all run) and are validated against the host AES
// implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/runtime.h"
#include "xasm/program.h"

namespace wsp::kernels {

enum class AesKernelVariant { kBase, kTiePartial, kTieFull };

void emit_aes_kernels(xasm::Assembler& a, AesKernelVariant variant);

class AesKernel {
 public:
  AesKernel(Machine& m, AesKernelVariant variant);

  /// Installs a 16/24/32-byte key (host-side key schedule, marshalled per
  /// variant; the round count travels with it).
  void set_key(const std::vector<std::uint8_t>& key);

  /// Single-block / multi-block ECB encryption on the ISS.
  std::vector<std::uint8_t> encrypt_block(const std::vector<std::uint8_t>& block,
                                          std::uint64_t* cycles = nullptr);
  std::vector<std::uint8_t> encrypt_ecb(const std::vector<std::uint8_t>& data,
                                        std::uint64_t* cycles = nullptr);

 private:
  Machine& m_;
  AesKernelVariant variant_;
  std::uint32_t key_addr_ = 0;
  std::uint32_t rounds_ = 10;
  std::uint32_t io_in_ = 0, io_out_ = 0;
};

Machine make_aes_machine(AesKernelVariant variant, sim::CpuConfig config = {});

}  // namespace wsp::kernels
