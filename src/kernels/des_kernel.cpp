#include "kernels/des_kernel.h"

#include <array>
#include <stdexcept>

#include "crypto/des.h"
#include "kernels/regs.h"
#include "tie/candidates.h"
#include "tie/ids.h"

namespace wsp::kernels {

using xasm::Assembler;

namespace {

// FIPS tables as data bytes for the software permutation loop (1-based bit
// positions, MSB-first, identical to the host implementation's tables).
std::vector<std::uint8_t> ip_table_bytes() {
  static const int kIP[64] = {
      58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
      62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
      57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
      61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};
  return std::vector<std::uint8_t>(kIP, kIP + 64);
}

std::vector<std::uint8_t> fp_table_bytes() {
  static const int kFP[64] = {
      40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
      38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
      36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
      34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};
  return std::vector<std::uint8_t>(kFP, kFP + 64);
}

// Software 64-bit permutation: (a0:a1) permuted by the byte table at a2,
// result in (a0:a1).  Bit positions in the table are 1-based from the MSB.
void emit_perm64(Assembler& a) {
  a.func("perm64");
  a.mv(T0, Z);   // out hi
  a.mv(T1, Z);   // out lo
  a.mv(T2, Z);   // i
  a.label("loop");
  a.add(T3, A2, T2);
  a.lbu(T4, T3, 0);  // src position 1..64
  a.li(T5, 32);
  a.bltu(T5, T4, "lowhalf");
  a.sub(T6, T5, T4);  // 32 - src
  a.srl(T7, A0, T6);
  a.j("havebit");
  a.label("lowhalf");
  a.li(T6, 64);
  a.sub(T6, T6, T4);
  a.srl(T7, A1, T6);
  a.label("havebit");
  a.andi(T7, T7, 1);
  a.slli(T0, T0, 1);
  a.srli(T8, T1, 31);
  a.or_(T0, T0, T8);
  a.slli(T1, T1, 1);
  a.or_(T1, T1, T7);
  a.addi(T2, T2, 1);
  a.li(T9, 64);
  a.bne(T2, T9, "loop");
  a.mv(A0, T0);
  a.mv(A1, T1);
  a.ret();
}

// The base-ISA des_block: rotate-based E expansion, 6-bit subkey chunks,
// SP-table lookups, software IP/FP.
void emit_des_block_base(Assembler& a, std::uint32_t sp_addr,
                         std::uint32_t ip_addr, std::uint32_t fp_addr) {
  a.func("des_block");
  a.prologue({S0, S1, S2, S3, S4});
  a.mv(S0, A0);  // in
  a.mv(S1, A1);  // out
  a.mv(S2, A2);  // key chunks (16 rounds x 8 bytes)
  a.lw(A0, S0, 0);
  a.lw(A1, S0, 4);
  a.li(A2, ip_addr);
  a.call("perm64");
  a.mv(S3, A0);  // L
  a.mv(S4, A1);  // R
  a.mv(T10, S2);  // key pointer
  a.li(T11, 16);  // round counter
  a.li(T13, sp_addr);
  a.label("round");
  a.mv(T12, Z);  // F accumulator
  for (int i = 0; i < 8; ++i) {
    const int rot = (4 * i + 5) % 32;
    a.slli(T0, S4, rot);
    a.srli(T1, S4, 32 - rot);
    a.or_(T0, T0, T1);
    a.andi(T0, T0, 0x3f);
    a.lbu(T1, T10, i);
    a.xor_(T0, T0, T1);
    a.slli(T0, T0, 2);
    a.addi(T0, T0, i * 256);
    a.add(T0, T0, T13);
    a.lw(T1, T0, 0);
    a.xor_(T12, T12, T1);
  }
  a.xor_(T0, S3, T12);  // newR = L ^ F(R)
  a.mv(S3, S4);
  a.mv(S4, T0);
  a.addi(T10, T10, 8);
  a.addi(T11, T11, -1);
  a.bne(T11, Z, "round");
  // Pre-output is (R16, L16).
  a.mv(A0, S4);
  a.mv(A1, S3);
  a.li(A2, fp_addr);
  a.call("perm64");
  a.sw(A0, S1, 0);
  a.sw(A1, S1, 4);
  a.epilogue({S0, S1, S2, S3, S4});
}

// The TIE des_block: one des_round custom instruction per round plus the
// hardwired IP/FP permutation units.
void emit_des_block_tie(Assembler& a) {
  using namespace wsp::tie;
  a.func("des_block");
  a.lw(T1, A0, 0);  // hi
  a.lw(T2, A0, 4);  // lo
  a.custom(kDesIpHi, T3, T1, T2);  // L
  a.custom(kDesIpLo, T4, T1, T2);  // R
  a.mv(T5, A2);                    // subkey pointer (2 words per round)
  for (int round = 0; round < 16; ++round) {
    a.custom(kDesRound, T6, T4, T5);
    a.xor_(T6, T3, T6);
    a.mv(T3, T4);
    a.mv(T4, T6);
    a.addi(T5, T5, 8);
  }
  a.custom(kDesFpHi, T7, T4, T3);
  a.custom(kDesFpLo, T8, T4, T3);
  a.sw(T7, A1, 0);
  a.sw(T8, A1, 4);
  a.ret();
}

}  // namespace

void emit_des_kernels(Assembler& a, bool tie) {
  if (tie) {
    emit_des_block_tie(a);
  } else {
    // Data: SP tables (8 x 64 words), IP/FP tables (64 bytes each).
    a.data_align(4);
    a.data_symbol("des_sp");
    std::vector<std::uint32_t> sp;
    sp.reserve(8 * 64);
    for (int box = 0; box < 8; ++box) {
      const auto& t = des::sp_table(box);
      sp.insert(sp.end(), t.begin(), t.end());
    }
    const std::uint32_t sp_addr = a.data_words(sp);
    a.data_symbol("des_ip_tbl");
    const std::uint32_t ip_addr = a.data_bytes(ip_table_bytes());
    a.data_symbol("des_fp_tbl");
    const std::uint32_t fp_addr = a.data_bytes(fp_table_bytes());
    emit_perm64(a);
    emit_des_block_base(a, sp_addr, ip_addr, fp_addr);
  }

  // ---- des_ecb(in, out, nblocks, keys) -------------------------------------
  a.func("des_ecb");
  a.prologue({S0, S1, S2, S3});
  a.mv(S0, A0);
  a.mv(S1, A1);
  a.mv(S2, A2);
  a.mv(S3, A3);
  a.label("loop");
  a.beq(S2, Z, "done");
  a.mv(A0, S0);
  a.mv(A1, S1);
  a.mv(A2, S3);
  a.call("des_block");
  a.addi(S0, S0, 8);
  a.addi(S1, S1, 8);
  a.addi(S2, S2, -1);
  a.j("loop");
  a.label("done");
  a.epilogue({S0, S1, S2, S3});

  // ---- des3_ecb(in, out, nblocks, k1, k2, k3) -------------------------------
  a.data_align(4);
  a.data_symbol("des3_tmp1");
  const std::uint32_t tmp1 = a.data_zero(8);
  a.data_symbol("des3_tmp2");
  const std::uint32_t tmp2 = a.data_zero(8);
  a.func("des3_ecb");
  a.prologue({S0, S1, S2, S3, S4, S5});
  a.mv(S0, A0);
  a.mv(S1, A1);
  a.mv(S2, A2);
  a.mv(S3, A3);
  a.mv(S4, A4);
  a.mv(S5, A5);
  a.label("loop");
  a.beq(S2, Z, "done");
  a.mv(A0, S0);
  a.li(A1, tmp1);
  a.mv(A2, S3);
  a.call("des_block");
  a.li(A0, tmp1);
  a.li(A1, tmp2);
  a.mv(A2, S4);
  a.call("des_block");
  a.li(A0, tmp2);
  a.mv(A1, S1);
  a.mv(A2, S5);
  a.call("des_block");
  a.addi(S0, S0, 8);
  a.addi(S1, S1, 8);
  a.addi(S2, S2, -1);
  a.j("loop");
  a.label("done");
  a.epilogue({S0, S1, S2, S3, S4, S5});
}

DesKernel::DesKernel(Machine& m, bool tie) : m_(m), tie_(tie) {
  io_in_ = m_.alloc(8, 8);
  io_out_ = m_.alloc(8, 8);
}

std::uint32_t DesKernel::marshal_schedule(const std::array<std::uint64_t, 16>& k48,
                                          bool reversed) {
  std::vector<std::uint32_t> words;
  if (tie_) {
    // Two words per round: high 24 bits, low 24 bits.
    for (int r = 0; r < 16; ++r) {
      const std::uint64_t k = k48[static_cast<std::size_t>(reversed ? 15 - r : r)];
      words.push_back(static_cast<std::uint32_t>(k >> 24));
      words.push_back(static_cast<std::uint32_t>(k & 0xffffff));
    }
  } else {
    // Eight 6-bit chunk bytes per round, packed little-endian into words.
    std::vector<std::uint8_t> bytes;
    for (int r = 0; r < 16; ++r) {
      const std::uint64_t k = k48[static_cast<std::size_t>(reversed ? 15 - r : r)];
      for (int j = 0; j < 8; ++j) {
        bytes.push_back(static_cast<std::uint8_t>((k >> (42 - 6 * j)) & 0x3f));
      }
    }
    for (std::size_t i = 0; i < bytes.size(); i += 4) {
      words.push_back(static_cast<std::uint32_t>(bytes[i]) |
                      (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                      (static_cast<std::uint32_t>(bytes[i + 2]) << 16) |
                      (static_cast<std::uint32_t>(bytes[i + 3]) << 24));
    }
  }
  return m_.alloc_words(words);
}

void DesKernel::set_key(std::uint64_t key) {
  const auto ks = des::key_schedule(key);
  key_enc_ = marshal_schedule(ks.k48, false);
  key_dec_ = marshal_schedule(ks.k48, true);
}

void DesKernel::set_3des_keys(std::uint64_t k1, std::uint64_t k2, std::uint64_t k3) {
  const auto ks = des::triple_key_schedule(k1, k2, k3);
  k3_[0] = marshal_schedule(ks.k1.k48, false);
  k3_[1] = marshal_schedule(ks.k2.k48, true);  // EDE middle stage decrypts
  k3_[2] = marshal_schedule(ks.k3.k48, false);
}

namespace {
void write_block(Machine& m, std::uint32_t addr, std::uint64_t block) {
  m.write_u32(addr, static_cast<std::uint32_t>(block >> 32));
  m.write_u32(addr + 4, static_cast<std::uint32_t>(block));
}
std::uint64_t read_block(const Machine& m, std::uint32_t addr) {
  return (static_cast<std::uint64_t>(m.read_u32(addr)) << 32) | m.read_u32(addr + 4);
}
}  // namespace

std::uint64_t DesKernel::encrypt_block(std::uint64_t block, std::uint64_t* cycles) {
  write_block(m_, io_in_, block);
  const auto res = m_.call("des_block", {io_in_, io_out_, key_enc_});
  if (cycles) *cycles += res.cycles;
  return read_block(m_, io_out_);
}

std::uint64_t DesKernel::decrypt_block(std::uint64_t block, std::uint64_t* cycles) {
  write_block(m_, io_in_, block);
  const auto res = m_.call("des_block", {io_in_, io_out_, key_dec_});
  if (cycles) *cycles += res.cycles;
  return read_block(m_, io_out_);
}

std::vector<std::uint8_t> DesKernel::encrypt_ecb(const std::vector<std::uint8_t>& data,
                                                 std::uint64_t* cycles) {
  if (data.size() % 8 != 0) throw std::invalid_argument("DesKernel: bad length");
  // DES blocks are big-endian byte streams; the kernel operates on (hi, lo)
  // word pairs, so marshal through the host conversion.
  const std::uint32_t nblocks = static_cast<std::uint32_t>(data.size() / 8);
  const std::uint32_t pin = m_.alloc(data.size(), 8);
  const std::uint32_t pout = m_.alloc(data.size(), 8);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    write_block(m_, pin + 8 * b, des::load_be64(data.data() + 8 * b));
  }
  const auto res = m_.call("des_ecb", {pin, pout, nblocks, key_enc_});
  if (cycles) *cycles += res.cycles;
  std::vector<std::uint8_t> out(data.size());
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    des::store_be64(read_block(m_, pout + 8 * b), out.data() + 8 * b);
  }
  return out;
}

std::vector<std::uint8_t> DesKernel::encrypt_ecb_3des(
    const std::vector<std::uint8_t>& data, std::uint64_t* cycles) {
  if (data.size() % 8 != 0) throw std::invalid_argument("DesKernel: bad length");
  const std::uint32_t nblocks = static_cast<std::uint32_t>(data.size() / 8);
  const std::uint32_t pin = m_.alloc(data.size(), 8);
  const std::uint32_t pout = m_.alloc(data.size(), 8);
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    write_block(m_, pin + 8 * b, des::load_be64(data.data() + 8 * b));
  }
  const auto res =
      m_.call("des3_ecb", {pin, pout, nblocks, k3_[0], k3_[1], k3_[2]});
  if (cycles) *cycles += res.cycles;
  std::vector<std::uint8_t> out(data.size());
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    des::store_be64(read_block(m_, pout + 8 * b), out.data() + 8 * b);
  }
  return out;
}

Machine make_des_machine(bool tie, sim::CpuConfig config) {
  Assembler a;
  emit_des_kernels(a, tie);
  sim::CustomSet customs;
  if (tie) {
    customs = tie::custom_set_for(
        {"des_round", "des_ip_hi", "des_ip_lo", "des_fp_hi", "des_fp_lo"});
  }
  return Machine(a.finish(), config, std::move(customs));
}

}  // namespace wsp::kernels
