// DES / 3DES on the simulated core.
//
// Base form: the classic well-optimized software structure (combined S-box+P
// lookup tables, rotate-based E expansion, bit-loop IP/FP) — the paper's
// Table 1 baseline.  TIE form: des_round + des_ip/des_fp custom units.
// Both forms expose identical function names (des_block, des_ecb, des3_ecb),
// and both are validated against the host DES implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/runtime.h"
#include "xasm/program.h"

namespace wsp::kernels {

/// Emits des_block / des_ecb / des3_ecb (+ the perm64 helper and lookup
/// tables in the base form).  Requires the mpn kernels' assembler to be
/// fresh or compatible; functions are self-contained.
void emit_des_kernels(xasm::Assembler& a, bool tie);

/// Host-side driver bound to one Machine whose program contains the DES
/// kernels emitted with the matching `tie` flag.
class DesKernel {
 public:
  DesKernel(Machine& m, bool tie);

  /// Installs a single-DES key (schedules on the host, marshals the layout
  /// the kernel variant expects).
  void set_key(std::uint64_t key);
  /// Installs 3DES EDE keys (middle stage uses the reversed schedule).
  void set_3des_keys(std::uint64_t k1, std::uint64_t k2, std::uint64_t k3);

  /// Single-block encrypt/decrypt on the ISS; cycles added to *cycles.
  std::uint64_t encrypt_block(std::uint64_t block, std::uint64_t* cycles = nullptr);
  std::uint64_t decrypt_block(std::uint64_t block, std::uint64_t* cycles = nullptr);

  /// Multi-block ECB on the ISS (length multiple of 8).
  std::vector<std::uint8_t> encrypt_ecb(const std::vector<std::uint8_t>& data,
                                        std::uint64_t* cycles = nullptr);
  std::vector<std::uint8_t> encrypt_ecb_3des(const std::vector<std::uint8_t>& data,
                                             std::uint64_t* cycles = nullptr);

 private:
  std::uint32_t marshal_schedule(const std::array<std::uint64_t, 16>& k48,
                                 bool reversed);

  Machine& m_;
  bool tie_;
  std::uint32_t key_enc_ = 0;   // single-DES forward schedule
  std::uint32_t key_dec_ = 0;   // single-DES reversed schedule
  std::uint32_t k3_[3] = {0, 0, 0};  // EDE stages (fwd, rev, fwd)
  std::uint32_t io_in_ = 0, io_out_ = 0;
};

/// Convenience: machine containing the DES kernels (and, for the TIE form,
/// the DES custom units).
Machine make_des_machine(bool tie, sim::CpuConfig config = {});

}  // namespace wsp::kernels
