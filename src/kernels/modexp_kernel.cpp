#include "kernels/modexp_kernel.h"

#include <stdexcept>

#include "kernels/regs.h"
#include "mp/barrett.h"
#include "mp/montgomery.h"
#include "tie/candidates.h"
#include "tie/ids.h"

namespace wsp::kernels {

using xasm::Assembler;

namespace {

/// Largest supported operand size in limbs (4096-bit plus slack).
constexpr std::uint32_t kMaxLimbs = 130;

std::vector<std::uint32_t> to_words(const Mpz& x, std::size_t k) {
  std::vector<std::uint32_t> out(k, 0);
  const auto& limbs = x.limbs();
  if (limbs.size() > k) throw std::invalid_argument("to_words: value too wide");
  for (std::size_t i = 0; i < limbs.size(); ++i) out[i] = limbs[i];
  return out;
}

Mpz from_words(const std::vector<std::uint32_t>& words) {
  std::vector<std::uint8_t> le(words.size() * 4);
  mpn::to_bytes_le(words.data(), words.size(), le.data(), le.size());
  std::vector<std::uint8_t> be(le.rbegin(), le.rend());
  return Mpz::from_bytes_be(be);
}

}  // namespace

namespace {

// Inline addmul pass for the fused mont_mul: rp in T10, ap in T11, n in
// T12, scalar b in T13; leaves the carry limb in T0.  Labels take `prefix`.
// Clobbers T0..T9 and advances T10/T11/T12.
void emit_addmul_inline(Assembler& a, const std::string& prefix, int m,
                        std::uint32_t flag_addr) {
  using namespace wsp::tie;
  const std::uint16_t mac = static_cast<std::uint16_t>(
      m == 1 ? kMac1 : m == 2 ? kMac2 : m == 4 ? kMac4 : kMac8);
  a.li(T9, flag_addr);
  a.sw(Z, T9, 0);
  a.custom(kUrLoad, kUrMacCarry, T9, 0, 1);
  a.label(prefix + "vec");
  a.slti(T8, T12, m);
  a.bne(T8, Z, prefix + "vtail");
  a.custom(kUrLoad, kUrA, T11, 0, m);
  a.custom(kUrLoad, kUrB, T10, 0, m);
  a.custom(mac, 0, T13, 0, m);
  a.custom(kUrStore, kUrB, T10, 0, m);
  a.addi(T10, T10, 4 * m);
  a.addi(T11, T11, 4 * m);
  a.addi(T12, T12, -m);
  a.j(prefix + "vec");
  a.label(prefix + "vtail");
  a.custom(kUrStore, kUrMacCarry, T9, 0, 1);
  a.lw(T0, T9, 0);
  a.beq(T12, Z, prefix + "done");
  a.label(prefix + "sloop");
  a.lw(T1, T11, 0);
  a.lw(T2, T10, 0);
  a.mul(T3, T1, T13);
  a.mulhu(T4, T1, T13);
  a.add(T5, T3, T0);
  a.sltu(T6, T5, T3);
  a.add(T4, T4, T6);
  a.add(T7, T5, T2);
  a.sltu(T8, T7, T5);
  a.add(T0, T4, T8);
  a.sw(T7, T10, 0);
  a.addi(T10, T10, 4);
  a.addi(T11, T11, 4);
  a.addi(T12, T12, -1);
  a.bne(T12, Z, prefix + "sloop");
  a.label(prefix + "done");
}

// Carry fixup shared by both passes: adds the carry limb in T0 into
// P[n], P[n+1] where P is in stack slot 32 and n in S4.
void emit_carry_fixup(Assembler& a) {
  a.lw(T1, SP, 32);
  a.slli(T2, S4, 2);
  a.add(T1, T1, T2);
  a.lw(T3, T1, 0);
  a.add(T4, T3, T0);
  a.sltu(T5, T4, T3);
  a.sw(T4, T1, 0);
  a.lw(T6, T1, 4);
  a.add(T6, T6, T5);
  a.sw(T6, T1, 4);
}

}  // namespace

void emit_modexp_kernels(Assembler& a, const MpnTieConfig& tie) {
  a.data_align(4);
  a.data_symbol("mx_flag");
  const std::uint32_t mx_flag_addr = a.data_word(0);
  (void)mx_flag_addr;
  a.data_align(4);
  a.data_symbol("mx_t");
  const std::uint32_t t_addr = a.data_zero(4 * (2 * kMaxLimbs + 2));
  a.data_symbol("mx_prod");
  const std::uint32_t prod_addr = a.data_zero(4 * (2 * kMaxLimbs + 1));
  a.data_symbol("mx_q");
  const std::uint32_t q_addr = a.data_zero(4 * (kMaxLimbs + 1));

  // ---- mont_mul(rp, ap, bp, np, n, n0inv) ----------------------------------
  // Montgomery CIOS built from mpn_addmul_1 sweeps; one limb of b per
  // iteration, reduction interleaved.  Instead of shifting the accumulator
  // down each iteration, the accumulator window pointer advances one limb
  // (its dropped low limb is zero by construction of m).
  a.func("mont_mul");
  a.addi(SP, SP, -40);
  a.sw(RA, SP, 0);
  a.sw(S0, SP, 4);
  a.sw(S1, SP, 8);
  a.sw(S2, SP, 12);
  a.sw(S3, SP, 16);
  a.sw(S4, SP, 20);
  a.sw(S5, SP, 24);
  a.mv(S0, A0);  // rp
  a.mv(S1, A1);  // ap
  a.mv(S2, A2);  // bp
  a.mv(S3, A3);  // np
  a.mv(S4, A4);  // n
  a.mv(S5, A5);  // n0inv
  // t[0..2n+2) = 0
  a.li(T0, t_addr);
  a.slli(T1, S4, 1);
  a.addi(T1, T1, 2);
  a.label("zl");
  a.beq(T1, Z, "zd");
  a.sw(Z, T0, 0);
  a.addi(T0, T0, 4);
  a.addi(T1, T1, -1);
  a.j("zl");
  a.label("zd");
  a.sw(Z, SP, 28);  // i = 0
  a.li(T0, t_addr);
  a.sw(T0, SP, 32);  // P = accumulator window pointer
  a.label("iloop");
  a.lw(T0, SP, 28);
  a.bge(T0, S4, "idone");
  a.slli(T1, T0, 2);
  a.add(T1, T1, S2);
  if (tie.mac_width > 0) {
    // Fused form: inline MAC chunk loops, no call overhead.
    a.lw(T13, T1, 0);  // b[i]
    a.lw(T10, SP, 32);
    a.mv(T11, S1);
    a.mv(T12, S4);
    emit_addmul_inline(a, "ma_", tie.mac_width, mx_flag_addr);
    emit_carry_fixup(a);
    a.lw(T1, SP, 32);
    a.lw(T2, T1, 0);
    a.mul(T13, T2, S5);  // m = P[0] * n0inv
    a.lw(T10, SP, 32);
    a.mv(T11, S3);
    a.mv(T12, S4);
    emit_addmul_inline(a, "mn_", tie.mac_width, mx_flag_addr);
    emit_carry_fixup(a);
  } else {
    // Library form: the passes CALL mpn_addmul_1 (the Fig. 4 structure).
    a.lw(A3, T1, 0);
    a.lw(A0, SP, 32);
    a.mv(A1, S1);
    a.mv(A2, S4);
    a.call("mpn_addmul_1");
    a.mv(T0, A0);
    emit_carry_fixup(a);
    a.lw(T0, SP, 32);
    a.lw(T1, T0, 0);
    a.mul(A3, T1, S5);
    a.lw(A0, SP, 32);
    a.mv(A1, S3);
    a.mv(A2, S4);
    a.call("mpn_addmul_1");
    a.mv(T0, A0);
    emit_carry_fixup(a);
  }
  // Slide the window: P[0] is now zero, so advance by one limb.
  a.lw(T0, SP, 32);
  a.addi(T0, T0, 4);
  a.sw(T0, SP, 32);
  a.lw(T0, SP, 28);
  a.addi(T0, T0, 1);
  a.sw(T0, SP, 28);
  a.j("iloop");
  a.label("idone");
  // Final conditional subtraction on the window P[0..n].
  a.lw(T0, SP, 32);
  a.slli(T1, S4, 2);
  a.add(T1, T1, T0);
  a.lw(T2, T1, 0);  // t[n]
  a.bne(T2, Z, "dosub");
  a.lw(A0, SP, 32);
  a.mv(A1, S3);
  a.mv(A2, S4);
  a.call("mpn_cmp");
  a.srli(T3, A0, 31);  // 1 iff t < np
  a.bne(T3, Z, "docopy");
  a.label("dosub");
  a.mv(A0, S0);
  a.lw(A1, SP, 32);
  a.mv(A2, S3);
  a.mv(A3, S4);
  a.call("mpn_sub_n");
  a.j("out");
  a.label("docopy");
  a.mv(A0, S0);
  a.lw(A1, SP, 32);
  a.mv(A2, S4);
  a.call("mpn_copy");
  a.label("out");
  a.lw(RA, SP, 0);
  a.lw(S0, SP, 4);
  a.lw(S1, SP, 8);
  a.lw(S2, SP, 12);
  a.lw(S3, SP, 16);
  a.lw(S4, SP, 20);
  a.lw(S5, SP, 24);
  a.addi(SP, SP, 40);
  a.ret();

  // ---- modmul_div(rp, ap, bp, np, n) ---------------------------------------
  // rp = (ap * bp) mod np via schoolbook product + Knuth-D reduction.
  // Requires np normalized (top limb MSB set).
  a.func("modmul_div");
  a.addi(SP, SP, -24);
  a.sw(RA, SP, 0);
  a.sw(S0, SP, 4);
  a.sw(S1, SP, 8);
  a.sw(S2, SP, 12);
  a.sw(S3, SP, 16);
  a.sw(S4, SP, 20);
  a.mv(S0, A0);
  a.mv(S1, A1);
  a.mv(S2, A2);
  a.mv(S3, A3);
  a.mv(S4, A4);
  a.li(A0, prod_addr);
  a.mv(A1, S1);
  a.mv(A2, S4);
  a.mv(A3, S2);
  a.mv(A4, S4);
  a.call("mpn_mul");
  // prod[2n] = 0 (the extra top limb Knuth-D expects)
  a.slli(T0, S4, 3);
  a.li(T1, prod_addr);
  a.add(T0, T0, T1);
  a.sw(Z, T0, 0);
  a.li(A0, q_addr);
  a.li(A1, prod_addr);
  a.slli(A2, S4, 1);
  a.mv(A3, S3);
  a.mv(A4, S4);
  a.call("mpn_divrem_norm");
  a.mv(A0, S0);
  a.li(A1, prod_addr);
  a.mv(A2, S4);
  a.call("mpn_copy");
  a.lw(RA, SP, 0);
  a.lw(S0, SP, 4);
  a.lw(S1, SP, 8);
  a.lw(S2, SP, 12);
  a.lw(S3, SP, 16);
  a.lw(S4, SP, 20);
  a.addi(SP, SP, 24);
  a.ret();

  // ---- barrett_mul(rp, ap, bp, np, mup, k, mu_len) -------------------------
  // rp = (ap * bp) mod np via Barrett reduction (HAC 14.42) with the
  // precomputed mu at mup.  Structure mirrors Barrett<L>::mulmod so the
  // macro-model event stream prices it correctly.
  a.data_align(4);
  a.data_symbol("bt_q2");
  const std::uint32_t q2_addr = a.data_zero(4 * (2 * kMaxLimbs + 3));
  a.data_symbol("bt_r2");
  const std::uint32_t r2_addr = a.data_zero(4 * (2 * kMaxLimbs + 1));
  a.data_symbol("bt_rr");
  const std::uint32_t rr_addr = a.data_zero(4 * (kMaxLimbs + 1));
  a.data_symbol("bt_mk");
  const std::uint32_t mk_addr = a.data_zero(4 * (kMaxLimbs + 1));

  a.func("barrett_mul");
  a.addi(SP, SP, -32);
  a.sw(RA, SP, 0);
  a.sw(S0, SP, 4);
  a.sw(S1, SP, 8);
  a.sw(S2, SP, 12);
  a.sw(S3, SP, 16);
  a.sw(S4, SP, 20);
  a.sw(S5, SP, 24);
  a.mv(S0, A0);  // rp
  a.mv(S1, A1);  // ap
  a.mv(S2, A2);  // bp
  a.mv(S3, A3);  // np
  a.mv(S4, A5);  // k
  a.mv(S5, A4);  // mup
  a.sw(A6, SP, 28);  // mu_len
  // prod = ap * bp  (2k limbs)
  a.li(A0, prod_addr);
  a.mv(A1, S1);
  a.mv(A2, S4);
  a.mv(A3, S2);
  a.mv(A4, S4);
  a.call("mpn_mul");
  // zero q2 (so q3 reads beyond the product length see zeros)
  a.li(A0, q2_addr);
  a.slli(A1, S4, 1);
  a.addi(A1, A1, 3);
  a.call("mpn_zero");
  // q2 = q1 * mu, with q1 = prod >> (k-1 limbs), length k+1
  a.li(A0, q2_addr);
  a.slli(T0, S4, 2);
  a.addi(T0, T0, -4);
  a.li(A1, prod_addr);
  a.add(A1, A1, T0);     // &prod[k-1]
  a.addi(A2, S4, 1);     // k+1
  a.mv(A3, S5);
  a.lw(A4, SP, 28);      // mu_len
  a.call("mpn_mul");
  // r2 = (q3 * np) low k+1 limbs, q3 = q2 >> (k+1 limbs), length k+1
  a.li(A0, r2_addr);
  a.slli(T0, S4, 2);
  a.addi(T0, T0, 4);
  a.li(A1, q2_addr);
  a.add(A1, A1, T0);     // &q2[k+1]
  a.addi(A2, S4, 1);
  a.mv(A3, S3);
  a.mv(A4, S4);
  a.call("mpn_mul");
  // rr = r1 - r2 over k+1 limbs (r1 = low k+1 limbs of prod)
  a.li(A0, rr_addr);
  a.li(A1, prod_addr);
  a.li(A2, r2_addr);
  a.addi(A3, S4, 1);
  a.call("mpn_sub_n");
  // mk = np padded to k+1 limbs
  a.li(A0, mk_addr);
  a.mv(A1, S3);
  a.mv(A2, S4);
  a.call("mpn_copy");
  a.li(T0, mk_addr);
  a.slli(T1, S4, 2);
  a.add(T0, T0, T1);
  a.sw(Z, T0, 0);
  // while (rr >= mk) rr -= mk   (at most two iterations)
  a.label("corr");
  a.li(A0, rr_addr);
  a.li(A1, mk_addr);
  a.addi(A2, S4, 1);
  a.call("mpn_cmp");
  a.srli(T0, A0, 31);    // 1 iff rr < mk
  a.bne(T0, Z, "corrdone");
  a.li(A0, rr_addr);
  a.li(A1, rr_addr);
  a.li(A2, mk_addr);
  a.addi(A3, S4, 1);
  a.call("mpn_sub_n");
  a.j("corr");
  a.label("corrdone");
  // rp = rr[0..k)
  a.mv(A0, S0);
  a.li(A1, rr_addr);
  a.mv(A2, S4);
  a.call("mpn_copy");
  a.lw(RA, SP, 0);
  a.lw(S0, SP, 4);
  a.lw(S1, SP, 8);
  a.lw(S2, SP, 12);
  a.lw(S3, SP, 16);
  a.lw(S4, SP, 20);
  a.lw(S5, SP, 24);
  a.addi(SP, SP, 32);
  a.ret();

  // ---- mont_mul_sos(rp, ap, bp, np, n, n0inv) ------------------------------
  // Separated operand scanning: full 2n-limb product, then n Montgomery
  // reduction sweeps with explicit carry propagation into the upper half —
  // the structure of Mont<L>::mul_sos.
  a.func("mont_mul_sos");
  a.addi(SP, SP, -32);
  a.sw(RA, SP, 0);
  a.sw(S0, SP, 4);
  a.sw(S1, SP, 8);
  a.sw(S2, SP, 12);
  a.sw(S3, SP, 16);
  a.sw(S4, SP, 20);
  a.sw(S5, SP, 24);
  a.mv(S0, A0);
  a.mv(S1, A1);
  a.mv(S2, A2);
  a.mv(S3, A3);
  a.mv(S4, A4);
  a.mv(S5, A5);
  // prod = ap * bp; prod[2n] = 0.
  a.li(A0, prod_addr);
  a.mv(A1, S1);
  a.mv(A2, S4);
  a.mv(A3, S2);
  a.mv(A4, S4);
  a.call("mpn_mul");
  a.slli(T0, S4, 3);
  a.li(T1, prod_addr);
  a.add(T0, T0, T1);
  a.sw(Z, T0, 0);
  a.sw(Z, SP, 28);  // i = 0
  a.label("iloop");
  a.lw(T0, SP, 28);
  a.bge(T0, S4, "idone");
  // m = prod[i] * n0inv
  a.slli(T1, T0, 2);
  a.li(T2, prod_addr);
  a.add(T2, T2, T1);
  a.lw(T3, T2, 0);
  a.mul(A3, T3, S5);
  // prod[i..i+n) += np * m
  a.mv(A0, T2);
  a.mv(A1, S3);
  a.mv(A2, S4);
  a.call("mpn_addmul_1");
  // propagate the carry limb into prod[i+n .. 2n]
  a.lw(T0, SP, 28);
  a.add(T1, T0, S4);
  a.slli(T1, T1, 2);
  a.li(T2, prod_addr);
  a.add(A1, T2, T1);   // &prod[i+n]
  a.mv(T3, A0);        // carry
  a.mv(A0, A1);
  a.sub(A2, S4, T0);
  a.addi(A2, A2, 1);   // n + 1 - i limbs remain above
  a.mv(A3, T3);
  a.call("mpn_add_1");
  a.lw(T0, SP, 28);
  a.addi(T0, T0, 1);
  a.sw(T0, SP, 28);
  a.j("iloop");
  a.label("idone");
  // Result is prod[n..2n) with overflow flag prod[2n].
  a.slli(T0, S4, 3);
  a.li(T1, prod_addr);
  a.add(T0, T0, T1);
  a.lw(T2, T0, 0);     // prod[2n]
  a.slli(T3, S4, 2);
  a.add(T3, T3, T1);   // &prod[n]
  a.bne(T2, Z, "dosub");
  a.mv(A0, T3);
  a.mv(A1, S3);
  a.mv(A2, S4);
  a.call("mpn_cmp");
  a.srli(T4, A0, 31);
  a.bne(T4, Z, "docopy");
  a.label("dosub");
  a.mv(A0, S0);
  a.slli(T3, S4, 2);
  a.li(T1, prod_addr);
  a.add(A1, T3, T1);
  a.mv(A2, S3);
  a.mv(A3, S4);
  a.call("mpn_sub_n");
  a.j("out");
  a.label("docopy");
  a.mv(A0, S0);
  a.slli(T3, S4, 2);
  a.li(T1, prod_addr);
  a.add(A1, T3, T1);
  a.mv(A2, S4);
  a.call("mpn_copy");
  a.label("out");
  a.lw(RA, SP, 0);
  a.lw(S0, SP, 4);
  a.lw(S1, SP, 8);
  a.lw(S2, SP, 12);
  a.lw(S3, SP, 16);
  a.lw(S4, SP, 20);
  a.lw(S5, SP, 24);
  a.addi(SP, SP, 32);
  a.ret();
}

Machine make_modexp_machine(const MpnTieConfig& tie, sim::CpuConfig config) {
  Assembler a;
  emit_mpn_kernels(a, tie);
  emit_modexp_kernels(a, tie);
  std::set<std::string> names;
  if (tie.add_width > 0) {
    names.insert({"ur_load"});
    names.insert({"ur_store"});
    names.insert("add_" + std::to_string(tie.add_width));
    names.insert("sub_" + std::to_string(tie.add_width));
  }
  if (tie.mac_width > 0) {
    names.insert({"ur_load"});
    names.insert({"ur_store"});
    names.insert("mac_" + std::to_string(tie.mac_width));
  }
  return Machine(a.finish(), config, tie::custom_set_for(names));
}

IssModexpResult IssModexp::powm_base(const Mpz& base, const Mpz& exp,
                                     const Mpz& mod) {
  const std::size_t k = (mod.bit_length() + 31) / 32;
  if (k == 0 || k > kMaxLimbs) throw std::invalid_argument("powm_base: bad modulus");
  if (mod.bit_length() % 32 != 0) {
    throw std::invalid_argument(
        "powm_base: modulus must be normalized (top limb MSB set)");
  }
  if (exp.is_zero()) return {Mpz(1).mod(mod), 0};

  m_.reset_heap();
  const std::uint32_t np = m_.alloc_words(to_words(mod, k));
  const std::uint32_t xw = m_.alloc_words(to_words(base.mod(mod), k));
  std::uint32_t cur = m_.alloc_words(to_words(base.mod(mod), k));
  std::uint32_t tmp = m_.alloc(4 * k);

  const std::uint64_t c0 = m_.cpu().cycles();
  const std::uint32_t kk = static_cast<std::uint32_t>(k);
  for (std::size_t i = exp.bit_length() - 1; i-- > 0;) {
    m_.call("modmul_div", {tmp, cur, cur, np, kk});
    std::swap(cur, tmp);
    if (exp.bit(i)) {
      m_.call("modmul_div", {tmp, cur, xw, np, kk});
      std::swap(cur, tmp);
    }
  }
  const std::uint64_t cycles = m_.cpu().cycles() - c0;
  return {from_words(m_.read_words(cur, k)), cycles};
}

IssModexpResult IssModexp::powm_mont(const Mpz& base, const Mpz& exp,
                                     const Mpz& mod, unsigned window_bits) {
  return powm_mont_with("mont_mul", base, exp, mod, window_bits);
}

IssModexpResult IssModexp::powm_mont_sos(const Mpz& base, const Mpz& exp,
                                         const Mpz& mod, unsigned window_bits) {
  return powm_mont_with("mont_mul_sos", base, exp, mod, window_bits);
}

IssModexpResult IssModexp::powm_mont_with(const char* mul_fn, const Mpz& base,
                                          const Mpz& exp, const Mpz& mod,
                                          unsigned window_bits) {
  if (window_bits < 1 || window_bits > 5) {
    throw std::invalid_argument("powm_mont: window must be 1..5");
  }
  if (mod.is_even() || mod.is_zero()) {
    throw std::invalid_argument("powm_mont: modulus must be odd");
  }
  const std::size_t k = (mod.bit_length() + 31) / 32;
  if (k > kMaxLimbs) throw std::invalid_argument("powm_mont: modulus too wide");
  if (exp.is_zero()) return {Mpz(1).mod(mod), 0};

  // Host-side context (the "cached constants" software-caching level).
  Mont<std::uint32_t> ctx(to_words(mod, k));
  m_.reset_heap();
  const std::uint32_t kk = static_cast<std::uint32_t>(k);
  const std::uint32_t np = m_.alloc_words(to_words(mod, k));
  const std::uint32_t r2 = m_.alloc_words(ctx.r2());
  std::vector<std::uint32_t> one_w(k, 0);
  one_w[0] = 1;
  const std::uint32_t one = m_.alloc_words(one_w);
  const std::uint32_t xw = m_.alloc_words(to_words(base.mod(mod), k));
  const std::size_t table_size = std::size_t{1} << window_bits;
  std::vector<std::uint32_t> table(table_size);
  for (auto& t : table) t = m_.alloc(4 * k);
  std::uint32_t cur = m_.alloc(4 * k);
  std::uint32_t tmp = m_.alloc(4 * k);
  const std::uint32_t n0 = ctx.n0inv();

  const std::uint64_t c0 = m_.cpu().cycles();
  auto mont = [&](std::uint32_t rp, std::uint32_t ap, std::uint32_t bp) {
    m_.call(mul_fn, {rp, ap, bp, np, kk, n0});
  };
  // table[i] = x^i in Montgomery form: table[1] = x*R, and each further
  // entry multiplies by table[1] (mont(aR, bR) = abR).
  mont(table[1], xw, r2);
  for (std::size_t i = 2; i < table_size; ++i) {
    mont(table[i], table[i - 1], table[1]);
  }

  const std::size_t nbits = exp.bit_length();
  const std::size_t nblocks = (nbits + window_bits - 1) / window_bits;
  bool started = false;
  for (std::size_t blk = nblocks; blk-- > 0;) {
    const std::size_t pos = blk * window_bits;
    const unsigned width =
        static_cast<unsigned>(std::min<std::size_t>(window_bits, nbits - pos));
    if (started) {
      for (unsigned s = 0; s < width; ++s) {
        mont(tmp, cur, cur);
        std::swap(cur, tmp);
      }
    }
    const std::uint32_t val = exp.bits(pos, width);
    if (val != 0) {
      if (!started) {
        m_.call("mpn_copy", {cur, table[val], kk});
        started = true;
      } else {
        mont(tmp, cur, table[val]);
        std::swap(cur, tmp);
      }
    }
  }
  mont(tmp, cur, one);  // leave the Montgomery domain
  const std::uint64_t cycles = m_.cpu().cycles() - c0;
  return {from_words(m_.read_words(tmp, k)), cycles};
}

IssModexpResult IssModexp::powm_barrett(const Mpz& base, const Mpz& exp,
                                        const Mpz& mod, unsigned window_bits) {
  if (window_bits < 1 || window_bits > 5) {
    throw std::invalid_argument("powm_barrett: window must be 1..5");
  }
  if (mod.is_zero()) throw std::invalid_argument("powm_barrett: zero modulus");
  const std::size_t k = (mod.bit_length() + 31) / 32;
  if (k == 0 || k > kMaxLimbs) {
    throw std::invalid_argument("powm_barrett: modulus too wide");
  }
  if (exp.is_zero()) return {Mpz(1).mod(mod), 0};

  // Host-side context (the "cached constants" software-caching level).
  Barrett<std::uint32_t> ctx(to_words(mod, k));
  m_.reset_heap();
  const std::uint32_t kk = static_cast<std::uint32_t>(k);
  const std::uint32_t np = m_.alloc_words(to_words(mod, k));
  const std::uint32_t mup = m_.alloc_words(ctx.mu());
  const std::uint32_t mu_len = static_cast<std::uint32_t>(ctx.mu().size());
  const std::uint32_t xw = m_.alloc_words(to_words(base.mod(mod), k));
  const std::size_t table_size = std::size_t{1} << window_bits;
  std::vector<std::uint32_t> table(table_size);
  for (auto& t : table) t = m_.alloc(4 * k);
  std::uint32_t cur = m_.alloc(4 * k);
  std::uint32_t tmp = m_.alloc(4 * k);

  const std::uint64_t c0 = m_.cpu().cycles();
  auto bmul = [&](std::uint32_t rp, std::uint32_t ap, std::uint32_t bp) {
    m_.call("barrett_mul", {rp, ap, bp, np, mup, kk, mu_len});
  };
  m_.call("mpn_copy", {table[1], xw, kk});
  for (std::size_t i = 2; i < table_size; ++i) bmul(table[i], table[i - 1], xw);

  const std::size_t nbits = exp.bit_length();
  const std::size_t nblocks = (nbits + window_bits - 1) / window_bits;
  bool started = false;
  for (std::size_t blk = nblocks; blk-- > 0;) {
    const std::size_t pos = blk * window_bits;
    const unsigned width =
        static_cast<unsigned>(std::min<std::size_t>(window_bits, nbits - pos));
    if (started) {
      for (unsigned s = 0; s < width; ++s) {
        bmul(tmp, cur, cur);
        std::swap(cur, tmp);
      }
    }
    const std::uint32_t val = exp.bits(pos, width);
    if (val != 0) {
      if (!started) {
        m_.call("mpn_copy", {cur, table[val], kk});
        started = true;
      } else {
        bmul(tmp, cur, table[val]);
        std::swap(cur, tmp);
      }
    }
  }
  const std::uint64_t cycles = m_.cpu().cycles() - c0;
  return {from_words(m_.read_words(cur, k)), cycles};
}

IssModexpResult IssModexp::rsa_crt(const Mpz& c, const rsa::PrivateKey& key,
                                   unsigned window_bits) {
  const auto& crt = key.crt;
  const std::uint64_t c0 = m_.cpu().cycles();
  const IssModexpResult mp = powm_mont(c.mod(crt.p), crt.dp, crt.p, window_bits);
  const IssModexpResult mq = powm_mont(c.mod(crt.q), crt.dq, crt.q, window_bits);

  // Garner recombination with the products on the ISS:
  //   h = qinv * (mp - mq) mod p;   m = mq + h*q.
  const std::size_t kp = (crt.p.bit_length() + 31) / 32;
  if (crt.p.bit_length() % 32 != 0) {
    throw std::invalid_argument("rsa_crt: p must be limb-normalized");
  }
  const Mpz diff = (mp.result - mq.result).mod(crt.p);
  m_.reset_heap();
  const std::uint32_t kk = static_cast<std::uint32_t>(kp);
  const std::uint32_t np = m_.alloc_words(to_words(crt.p, kp));
  const std::uint32_t ad = m_.alloc_words(to_words(diff, kp));
  const std::uint32_t aq = m_.alloc_words(to_words(crt.qinv_p, kp));
  const std::uint32_t hw = m_.alloc(4 * kp);
  m_.call("modmul_div", {hw, aq, ad, np, kk});
  const Mpz h = from_words(m_.read_words(hw, kp));
  const std::size_t kq = (crt.q.bit_length() + 31) / 32;
  const std::uint32_t qa = m_.alloc_words(to_words(crt.q, kq));
  const std::uint32_t ha = m_.alloc_words(to_words(h, kp));
  const std::uint32_t prod = m_.alloc(4 * (kp + kq));
  m_.call("mpn_mul", {prod, ha, kk, qa, static_cast<std::uint32_t>(kq)});
  const Mpz hq = from_words(m_.read_words(prod, kp + kq));
  const std::uint64_t cycles = m_.cpu().cycles() - c0;
  return {mq.result + hq, cycles};
}

IssModexpResult IssModexp::mont_mul_once(const Mpz& a, const Mpz& b,
                                         const Mpz& mod) {
  const std::size_t k = (mod.bit_length() + 31) / 32;
  Mont<std::uint32_t> ctx(to_words(mod, k));
  m_.reset_heap();
  const std::uint32_t kk = static_cast<std::uint32_t>(k);
  const std::uint32_t np = m_.alloc_words(to_words(mod, k));
  const std::uint32_t aw = m_.alloc_words(to_words(a.mod(mod), k));
  const std::uint32_t bw = m_.alloc_words(to_words(b.mod(mod), k));
  const std::uint32_t rw = m_.alloc(4 * k);
  const std::uint64_t c0 = m_.cpu().cycles();
  m_.call("mont_mul", {rw, aw, bw, np, kk, ctx.n0inv()});
  const std::uint64_t cycles = m_.cpu().cycles() - c0;
  // Result is a*b*R^{-1} mod n; fold the R factor out via the reference.
  const Mpz r = from_words(m_.read_words(rw, k));
  return {r, cycles};
}

}  // namespace wsp::kernels
