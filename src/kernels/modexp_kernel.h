// Modular exponentiation on the simulated core.
//
// The modular-multiplication kernels (Montgomery CIOS `mont_mul`, and the
// division-reduction `modmul_div`) run entirely on the ISS, built from
// CALLs to the mpn routines — so the profiler sees the same weighted call
// graph the paper's Fig. 4 shows, and custom instructions installed for the
// mpn leaves accelerate them transparently.
//
// The exponentiation *sequence* (square/multiply schedule, window table
// management) is driven from the host with all operands resident in
// simulator memory; its control overhead on a real core is a negligible
// fraction of a 1024-bit exponentiation and is excluded from the cycle
// counts (documented in DESIGN.md).
#pragma once

#include <cstdint>

#include "crypto/rsa.h"
#include "kernels/mpn_kernels.h"
#include "kernels/runtime.h"
#include "mp/mpz.h"

namespace wsp::kernels {

/// Emits mont_mul / modmul_div (requires the mpn kernels in the same
/// program).  With a MAC-equipped TIE config, mont_mul is emitted in fused
/// form: the multiply-accumulate chunk loops are inlined instead of calling
/// mpn_addmul_1 (the structure an optimizing build produces once the MAC
/// units exist).
void emit_modexp_kernels(xasm::Assembler& a, const MpnTieConfig& tie = {});

/// Builds a machine with mpn + modexp kernels under the given TIE config.
Machine make_modexp_machine(const MpnTieConfig& tie = {},
                            sim::CpuConfig config = {});

struct IssModexpResult {
  Mpz result;
  std::uint64_t cycles = 0;
};

/// Host driver bound to a machine created by make_modexp_machine.
class IssModexp {
 public:
  explicit IssModexp(Machine& m) : m_(m) {}

  /// Baseline: binary square-and-multiply, schoolbook product + Knuth-D
  /// reduction per step.  Requires the modulus MSB-normalized (top bit of
  /// the top limb set — true for RSA moduli).
  IssModexpResult powm_base(const Mpz& base, const Mpz& exp, const Mpz& mod);

  /// Optimized: Montgomery CIOS with an m-ary window (1..5 bits).
  /// Montgomery constants are precomputed host-side (the "cached constants"
  /// software-caching level).
  IssModexpResult powm_mont(const Mpz& base, const Mpz& exp, const Mpz& mod,
                            unsigned window_bits);

  /// Barrett-reduction exponentiation with an m-ary window: mu precomputed
  /// host-side.  Works for any modulus (odd or even), and gives the
  /// exploration's Barrett configurations ISS ground truth.
  IssModexpResult powm_barrett(const Mpz& base, const Mpz& exp, const Mpz& mod,
                               unsigned window_bits);

  /// Montgomery SOS (separated operand scanning: full product, then n
  /// reduction sweeps) — ISS ground truth for the MontSOS configurations.
  IssModexpResult powm_mont_sos(const Mpz& base, const Mpz& exp, const Mpz& mod,
                                unsigned window_bits);

  /// RSA private operation: CRT (Garner) + Montgomery windowed
  /// exponentiation; the recombination products run on the ISS.
  IssModexpResult rsa_crt(const Mpz& c, const rsa::PrivateKey& key,
                          unsigned window_bits);

  /// One Montgomery multiplication (for characterization / Fig. 4 profiles).
  IssModexpResult mont_mul_once(const Mpz& a, const Mpz& b, const Mpz& mod);

 private:
  struct Op;  // buffer bookkeeping

  /// Shared windowed-exponentiation driver over a named Montgomery-multiply
  /// kernel function ("mont_mul" or "mont_mul_sos").
  IssModexpResult powm_mont_with(const char* mul_fn, const Mpz& base,
                                 const Mpz& exp, const Mpz& mod,
                                 unsigned window_bits);

  Machine& m_;
};

}  // namespace wsp::kernels
