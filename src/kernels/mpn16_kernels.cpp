// Radix-16 mpn kernels: 16-bit limbs on the 32-bit core.  Sums and
// products fit in one register, so the loops are shorter than their 32-bit
// counterparts — but every operand needs twice the limbs, which is exactly
// the trade the algorithm-exploration phase quantifies.
#include "kernels/mpn_kernels.h"
#include "kernels/regs.h"

namespace wsp::kernels {

using xasm::Assembler;

void emit_mpn16_kernels(Assembler& a) {
  // ---- mpn16_add_n(rp, ap, bp, n) -> carry ---------------------------------
  a.func("mpn16_add_n");
  a.mv(T0, Z);
  a.beq(A3, Z, "done");
  a.label("loop");
  a.lhu(T1, A1, 0);
  a.lhu(T2, A2, 0);
  a.addi(A1, A1, 2);
  a.add(T3, T1, T2);
  a.add(T3, T3, T0);
  a.srli(T0, T3, 16);  // carry
  a.sh(T3, A0, 0);
  a.addi(A2, A2, 2);
  a.addi(A0, A0, 2);
  a.addi(A3, A3, -1);
  a.bne(A3, Z, "loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn16_sub_n(rp, ap, bp, n) -> borrow ---------------------------------
  a.func("mpn16_sub_n");
  a.mv(T0, Z);
  a.beq(A3, Z, "done");
  a.label("loop");
  a.lhu(T1, A1, 0);
  a.lhu(T2, A2, 0);
  a.addi(A1, A1, 2);
  a.sub(T3, T1, T2);
  a.sub(T3, T3, T0);
  a.srli(T0, T3, 16);
  a.andi(T0, T0, 1);  // borrow from the sign-extended wrap
  a.sh(T3, A0, 0);
  a.addi(A2, A2, 2);
  a.addi(A0, A0, 2);
  a.addi(A3, A3, -1);
  a.bne(A3, Z, "loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn16_add_1(rp, ap, n, b) -> carry ------------------------------------
  a.func("mpn16_add_1");
  a.mv(T0, A3);
  a.label("loop");
  a.beq(A2, Z, "done");
  a.lhu(T1, A1, 0);
  a.add(T2, T1, T0);
  a.srli(T0, T2, 16);
  a.sh(T2, A0, 0);
  a.addi(A0, A0, 2);
  a.addi(A1, A1, 2);
  a.addi(A2, A2, -1);
  a.j("loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn16_sub_1(rp, ap, n, b) -> borrow ------------------------------------
  a.func("mpn16_sub_1");
  a.mv(T0, A3);
  a.label("loop");
  a.beq(A2, Z, "done");
  a.lhu(T1, A1, 0);
  a.sub(T2, T1, T0);
  a.srli(T0, T2, 16);
  a.andi(T0, T0, 1);
  a.sh(T2, A0, 0);
  a.addi(A0, A0, 2);
  a.addi(A1, A1, 2);
  a.addi(A2, A2, -1);
  a.j("loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn16_mul_1(rp, ap, n, b) -> carry limb -------------------------------
  a.func("mpn16_mul_1");
  a.mv(T0, Z);
  a.beq(A2, Z, "done");
  a.label("loop");
  a.lhu(T1, A1, 0);
  a.addi(A1, A1, 2);
  a.mul(T2, T1, A3);   // fits 32 bits: 16x16 product
  a.add(T2, T2, T0);
  a.srli(T0, T2, 16);
  a.sh(T2, A0, 0);
  a.addi(A0, A0, 2);
  a.addi(A2, A2, -1);
  a.bne(A2, Z, "loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn16_addmul_1(rp, ap, n, b) -> carry limb ------------------------------
  a.func("mpn16_addmul_1");
  a.mv(T0, Z);
  a.beq(A2, Z, "done");
  a.label("loop");
  a.lhu(T1, A1, 0);
  a.lhu(T2, A0, 0);
  a.mul(T3, T1, A3);
  a.add(T3, T3, T2);
  a.add(T3, T3, T0);   // product + rp + carry < 2^32
  a.srli(T0, T3, 16);
  a.sh(T3, A0, 0);
  a.addi(A0, A0, 2);
  a.addi(A1, A1, 2);
  a.addi(A2, A2, -1);
  a.bne(A2, Z, "loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn16_submul_1(rp, ap, n, b) -> borrow limb -----------------------------
  a.func("mpn16_submul_1");
  a.mv(T0, Z);
  a.beq(A2, Z, "done");
  a.label("loop");
  a.lhu(T1, A1, 0);
  a.lhu(T2, A0, 0);
  a.mul(T3, T1, A3);
  a.add(T3, T3, T0);      // product + borrow_in
  a.andi(T4, T3, 0xffff);  // low part to subtract
  a.srli(T0, T3, 16);      // borrow out (before the compare)
  a.sltu(T5, T2, T4);
  a.add(T0, T0, T5);
  a.sub(T6, T2, T4);
  a.sh(T6, A0, 0);
  a.addi(A0, A0, 2);
  a.addi(A1, A1, 2);
  a.addi(A2, A2, -1);
  a.bne(A2, Z, "loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn16_cmp(ap, bp, n) -> {1, 0, -1} --------------------------------------
  a.func("mpn16_cmp");
  a.slli(T0, A2, 1);
  a.add(T1, A0, T0);
  a.add(T2, A1, T0);
  a.label("loop");
  a.beq(T1, A0, "equal");
  a.addi(T1, T1, -2);
  a.addi(T2, T2, -2);
  a.lhu(T3, T1, 0);
  a.lhu(T4, T2, 0);
  a.bltu(T3, T4, "less");
  a.bltu(T4, T3, "greater");
  a.j("loop");
  a.label("equal");
  a.mv(A0, Z);
  a.ret();
  a.label("less");
  a.li(A0, 0xffffffffu);
  a.ret();
  a.label("greater");
  a.li(A0, 1);
  a.ret();

  // ---- mpn16_lshift(rp, ap, n, count): 0 < count < 16, n >= 1 -----------------
  a.func("mpn16_lshift");
  a.li(T0, 16);
  a.sub(T0, T0, A3);  // tnc
  a.slli(T1, A2, 1);
  a.addi(T1, T1, -2);
  a.add(T2, A1, T1);  // &ap[n-1]
  a.lhu(T3, T2, 0);
  a.srl(T4, T3, T0);  // return bits
  a.add(T5, A0, T1);  // &rp[n-1]
  a.label("loop");
  a.beq(T2, A1, "last");
  a.lhu(T6, T2, -2);
  a.sll(T7, T3, A3);
  a.srl(T8, T6, T0);
  a.or_(T7, T7, T8);
  a.sh(T7, T5, 0);
  a.addi(T2, T2, -2);
  a.addi(T5, T5, -2);
  a.mv(T3, T6);
  a.j("loop");
  a.label("last");
  a.sll(T7, T3, A3);
  a.sh(T7, T5, 0);
  a.mv(A0, T4);
  a.ret();

  // ---- mpn16_rshift(rp, ap, n, count): 0 < count < 16, n >= 1 ------------------
  a.func("mpn16_rshift");
  a.li(T0, 16);
  a.sub(T0, T0, A3);
  a.lhu(T3, A1, 0);
  a.sll(T4, T3, T0);
  a.andi(T4, T4, 0xffff);  // low bits out, 16-bit aligned
  a.addi(T5, A2, -1);
  a.label("loop");
  a.beq(T5, Z, "last");
  a.lhu(T6, A1, 2);
  a.srl(T7, T3, A3);
  a.sll(T8, T6, T0);
  a.or_(T7, T7, T8);
  a.sh(T7, A0, 0);
  a.addi(A0, A0, 2);
  a.addi(A1, A1, 2);
  a.mv(T3, T6);
  a.addi(T5, T5, -1);
  a.j("loop");
  a.label("last");
  a.srl(T7, T3, A3);
  a.sh(T7, A0, 0);
  a.mv(A0, T4);
  a.ret();
}

Machine make_mpn16_machine(sim::CpuConfig config) {
  Assembler a;
  emit_mpn16_kernels(a);
  return Machine(a.finish(), config, {});
}

namespace {

std::uint32_t alloc_halfwords(Machine& m, const std::vector<std::uint16_t>& v) {
  std::vector<std::uint8_t> bytes(v.size() * 2);
  for (std::size_t i = 0; i < v.size(); ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(v[i]);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(v[i] >> 8);
  }
  const std::uint32_t addr = m.alloc(bytes.size() ? bytes.size() : 2, 2);
  m.write_bytes(addr, bytes);
  return addr;
}

std::vector<std::uint16_t> read_halfwords(const Machine& m, std::uint32_t addr,
                                          std::size_t n) {
  const auto bytes = m.read_bytes(addr, 2 * n);
  std::vector<std::uint16_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint16_t>(bytes[2 * i] | (bytes[2 * i + 1] << 8));
  }
  return out;
}

MpnCallResult run16_binary(Machine& m, const char* fn,
                           std::vector<std::uint16_t>& r,
                           const std::vector<std::uint16_t>& a,
                           const std::vector<std::uint16_t>& b) {
  m.reset_heap();
  const std::uint32_t pa = alloc_halfwords(m, a);
  const std::uint32_t pb = alloc_halfwords(m, b);
  const std::uint32_t pr = m.alloc(2 * a.size(), 2);
  const auto res = m.call(fn, {pr, pa, pb, static_cast<std::uint32_t>(a.size())});
  r = read_halfwords(m, pr, a.size());
  return {res.ret, res.cycles};
}

MpnCallResult run16_scalar(Machine& m, const char* fn,
                           std::vector<std::uint16_t>& r,
                           const std::vector<std::uint16_t>& a, std::uint16_t b,
                           bool in_place) {
  m.reset_heap();
  const std::uint32_t pa = alloc_halfwords(m, a);
  const std::uint32_t pr = in_place ? alloc_halfwords(m, r) : m.alloc(2 * a.size(), 2);
  const auto res = m.call(fn, {pr, pa, static_cast<std::uint32_t>(a.size()), b});
  r = read_halfwords(m, pr, a.size());
  return {res.ret, res.cycles};
}

}  // namespace

MpnCallResult run16_add_n(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b) {
  return run16_binary(m, "mpn16_add_n", r, a, b);
}

MpnCallResult run16_sub_n(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b) {
  return run16_binary(m, "mpn16_sub_n", r, a, b);
}

MpnCallResult run16_add_1(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a, std::uint16_t b) {
  return run16_scalar(m, "mpn16_add_1", r, a, b, false);
}

MpnCallResult run16_sub_1(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a, std::uint16_t b) {
  return run16_scalar(m, "mpn16_sub_1", r, a, b, false);
}

MpnCallResult run16_mul_1(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a, std::uint16_t b) {
  return run16_scalar(m, "mpn16_mul_1", r, a, b, false);
}

MpnCallResult run16_addmul_1(Machine& m, std::vector<std::uint16_t>& r,
                             const std::vector<std::uint16_t>& a, std::uint16_t b) {
  return run16_scalar(m, "mpn16_addmul_1", r, a, b, true);
}

MpnCallResult run16_submul_1(Machine& m, std::vector<std::uint16_t>& r,
                             const std::vector<std::uint16_t>& a, std::uint16_t b) {
  return run16_scalar(m, "mpn16_submul_1", r, a, b, true);
}

MpnCallResult run16_cmp(Machine& m, const std::vector<std::uint16_t>& a,
                        const std::vector<std::uint16_t>& b) {
  m.reset_heap();
  const std::uint32_t pa = alloc_halfwords(m, a);
  const std::uint32_t pb = alloc_halfwords(m, b);
  const auto res = m.call("mpn16_cmp", {pa, pb, static_cast<std::uint32_t>(a.size())});
  return {res.ret, res.cycles};
}

MpnCallResult run16_lshift(Machine& m, std::vector<std::uint16_t>& r,
                           const std::vector<std::uint16_t>& a, unsigned count) {
  m.reset_heap();
  const std::uint32_t pa = alloc_halfwords(m, a);
  const std::uint32_t pr = m.alloc(2 * a.size(), 2);
  const auto res = m.call("mpn16_lshift",
                          {pr, pa, static_cast<std::uint32_t>(a.size()), count});
  r = read_halfwords(m, pr, a.size());
  return {res.ret, res.cycles};
}

MpnCallResult run16_rshift(Machine& m, std::vector<std::uint16_t>& r,
                           const std::vector<std::uint16_t>& a, unsigned count) {
  m.reset_heap();
  const std::uint32_t pa = alloc_halfwords(m, a);
  const std::uint32_t pr = m.alloc(2 * a.size(), 2);
  const auto res = m.call("mpn16_rshift",
                          {pr, pa, static_cast<std::uint32_t>(a.size()), count});
  r = read_halfwords(m, pr, a.size());
  return {res.ret, res.cycles};
}

}  // namespace wsp::kernels
