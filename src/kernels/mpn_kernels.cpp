#include "kernels/mpn_kernels.h"

#include <stdexcept>

#include "kernels/regs.h"
#include "tie/candidates.h"
#include "tie/ids.h"

namespace wsp::kernels {

using xasm::Assembler;

namespace {

// Scalar (base-ISA) loop bodies, shared between the pure-software functions
// and the tails of the TIE-accelerated ones.  Each expects:
//   add/sub:    a0=rp a1=ap a2=bp a3=n, carry/borrow in T0
//   addmul etc: a0=rp a1=ap a2=n  a3=b, carry/borrow in T0
// and leaves the result in T0.

void emit_add_scalar_loop(Assembler& a) {
  a.label("sloop");
  a.lw(T1, A1, 0);
  a.lw(T2, A2, 0);
  a.addi(A1, A1, 4);
  a.add(T3, T1, T2);
  a.sltu(T4, T3, T1);
  a.add(T5, T3, T0);
  a.sltu(T6, T5, T3);
  a.or_(T0, T4, T6);
  a.sw(T5, A0, 0);
  a.addi(A2, A2, 4);
  a.addi(A0, A0, 4);
  a.addi(A3, A3, -1);
  a.bne(A3, Z, "sloop");
}

void emit_sub_scalar_loop(Assembler& a) {
  a.label("sloop");
  a.lw(T1, A1, 0);
  a.lw(T2, A2, 0);
  a.addi(A1, A1, 4);
  a.sub(T3, T1, T2);
  a.sltu(T4, T1, T2);
  a.sub(T5, T3, T0);
  a.sltu(T6, T3, T0);
  a.or_(T0, T4, T6);
  a.sw(T5, A0, 0);
  a.addi(A2, A2, 4);
  a.addi(A0, A0, 4);
  a.addi(A3, A3, -1);
  a.bne(A3, Z, "sloop");
}

void emit_addmul_scalar_loop(Assembler& a) {
  a.label("sloop");
  a.lw(T1, A1, 0);
  a.lw(T2, A0, 0);
  a.mul(T3, T1, A3);
  a.mulhu(T4, T1, A3);
  a.add(T5, T3, T0);
  a.sltu(T6, T5, T3);
  a.add(T4, T4, T6);
  a.add(T7, T5, T2);
  a.sltu(T8, T7, T5);
  a.add(T0, T4, T8);
  a.sw(T7, A0, 0);
  a.addi(A0, A0, 4);
  a.addi(A1, A1, 4);
  a.addi(A2, A2, -1);
  a.bne(A2, Z, "sloop");
}

// Emits the TIE chunk loop for add/sub: processes `k` limbs per iteration
// through UR registers, leaves the carry flag in T0 and falls through with
// the remaining count in a3 for the scalar tail.
void emit_addsub_tie_prefix(Assembler& a, int k, bool subtract,
                            std::uint32_t flag_addr) {
  using namespace wsp::tie;
  const std::uint16_t op_id = static_cast<std::uint16_t>(
      subtract ? (k == 2 ? kSub2 : k == 4 ? kSub4 : k == 8 ? kSub8 : kSub16)
               : (k == 2 ? kAdd2 : k == 4 ? kAdd4 : k == 8 ? kAdd8 : kAdd16));
  a.li(T9, flag_addr);
  a.sw(Z, T9, 0);
  a.custom(kUrLoad, kUrFlags, T9, 0, 1);  // carry flag = 0
  a.label("vec");
  a.slti(T8, A3, k);
  a.bne(T8, Z, "vtail");
  a.custom(kUrLoad, kUrA, A1, 0, k);
  a.custom(kUrLoad, kUrB, A2, 0, k);
  a.custom(op_id, 0, 0, 0, k);
  a.custom(kUrStore, kUrR, A0, 0, k);
  a.addi(A0, A0, 4 * k);
  a.addi(A1, A1, 4 * k);
  a.addi(A2, A2, 4 * k);
  a.addi(A3, A3, -k);
  a.j("vec");
  a.label("vtail");
  a.custom(kUrStore, kUrFlags, T9, 0, 1);
  a.lw(T0, T9, 0);
}

}  // namespace

void emit_mpn_kernels(Assembler& a, const MpnTieConfig& tie) {
  using namespace wsp::tie;

  // Scratch word used to move carry flags between UR state and GPRs.
  a.data_align(4);
  a.data_symbol("mpn_flag");
  const std::uint32_t flag_addr = a.data_word(0);

  // ---- mpn_add_n(rp, ap, bp, n) -> carry --------------------------------
  a.func("mpn_add_n");
  if (tie.add_width > 0) {
    emit_addsub_tie_prefix(a, tie.add_width, /*subtract=*/false, flag_addr);
  } else {
    a.mv(T0, Z);
  }
  a.beq(A3, Z, "done");
  emit_add_scalar_loop(a);
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn_sub_n(rp, ap, bp, n) -> borrow --------------------------------
  a.func("mpn_sub_n");
  if (tie.add_width > 0) {
    emit_addsub_tie_prefix(a, tie.add_width, /*subtract=*/true, flag_addr);
  } else {
    a.mv(T0, Z);
  }
  a.beq(A3, Z, "done");
  emit_sub_scalar_loop(a);
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn_add_1(rp, ap, n, b) -> carry ----------------------------------
  a.func("mpn_add_1");
  a.mv(T0, A3);
  a.label("loop");
  a.beq(A2, Z, "done");
  a.lw(T1, A1, 0);
  a.add(T2, T1, T0);
  a.sltu(T0, T2, T1);
  a.sw(T2, A0, 0);
  a.addi(A0, A0, 4);
  a.addi(A1, A1, 4);
  a.addi(A2, A2, -1);
  a.j("loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn_sub_1(rp, ap, n, b) -> borrow ---------------------------------
  a.func("mpn_sub_1");
  a.mv(T0, A3);
  a.label("loop");
  a.beq(A2, Z, "done");
  a.lw(T1, A1, 0);
  a.sub(T2, T1, T0);
  a.sltu(T0, T1, T0);
  a.sw(T2, A0, 0);
  a.addi(A0, A0, 4);
  a.addi(A1, A1, 4);
  a.addi(A2, A2, -1);
  a.j("loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn_mul_1(rp, ap, n, b) -> carry limb ------------------------------
  a.func("mpn_mul_1");
  a.mv(T0, Z);
  a.beq(A2, Z, "done");
  a.label("loop");
  a.lw(T1, A1, 0);
  a.addi(A1, A1, 4);
  a.mul(T2, T1, A3);
  a.mulhu(T3, T1, A3);
  a.add(T4, T2, T0);
  a.sltu(T5, T4, T2);
  a.add(T0, T3, T5);
  a.sw(T4, A0, 0);
  a.addi(A0, A0, 4);
  a.addi(A2, A2, -1);
  a.bne(A2, Z, "loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn_addmul_1(rp, ap, n, b) -> carry limb ----------------------------
  a.func("mpn_addmul_1");
  if (tie.mac_width > 0) {
    const int m = tie.mac_width;
    const std::uint16_t mac = static_cast<std::uint16_t>(
        m == 1 ? kMac1 : m == 2 ? kMac2 : m == 4 ? kMac4 : kMac8);
    a.li(T9, flag_addr);
    a.sw(Z, T9, 0);
    a.custom(kUrLoad, kUrMacCarry, T9, 0, 1);  // carry limb = 0
    a.label("vec");
    a.slti(T8, A2, m);
    a.bne(T8, Z, "vtail");
    a.custom(kUrLoad, kUrA, A1, 0, m);
    a.custom(kUrLoad, kUrB, A0, 0, m);
    a.custom(mac, 0, A3, 0, m);
    a.custom(kUrStore, kUrB, A0, 0, m);
    a.addi(A0, A0, 4 * m);
    a.addi(A1, A1, 4 * m);
    a.addi(A2, A2, -m);
    a.j("vec");
    a.label("vtail");
    a.custom(kUrStore, kUrMacCarry, T9, 0, 1);
    a.lw(T0, T9, 0);
  } else {
    a.mv(T0, Z);
  }
  a.beq(A2, Z, "done");
  emit_addmul_scalar_loop(a);
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn_submul_1(rp, ap, n, b) -> borrow limb ---------------------------
  a.func("mpn_submul_1");
  a.mv(T0, Z);
  a.beq(A2, Z, "done");
  a.label("loop");
  a.lw(T1, A1, 0);
  a.lw(T2, A0, 0);
  a.mul(T3, T1, A3);
  a.mulhu(T4, T1, A3);
  a.add(T5, T3, T0);   // lo + borrow_in
  a.sltu(T6, T5, T3);
  a.add(T4, T4, T6);   // hi adjusted
  a.sltu(T7, T2, T5);  // rp < lo ?
  a.add(T0, T4, T7);   // borrow out
  a.sub(T8, T2, T5);
  a.sw(T8, A0, 0);
  a.addi(A0, A0, 4);
  a.addi(A1, A1, 4);
  a.addi(A2, A2, -1);
  a.bne(A2, Z, "loop");
  a.label("done");
  a.mv(A0, T0);
  a.ret();

  // ---- mpn_cmp(ap, bp, n) -> {1, 0, -1} -----------------------------------
  a.func("mpn_cmp");
  a.slli(T0, A2, 2);
  a.add(T1, A0, T0);
  a.add(T2, A1, T0);
  a.label("loop");
  a.beq(T1, A0, "equal");
  a.addi(T1, T1, -4);
  a.addi(T2, T2, -4);
  a.lw(T3, T1, 0);
  a.lw(T4, T2, 0);
  a.bltu(T3, T4, "less");
  a.bltu(T4, T3, "greater");
  a.j("loop");
  a.label("equal");
  a.mv(A0, Z);
  a.ret();
  a.label("less");
  a.li(A0, 0xffffffffu);
  a.ret();
  a.label("greater");
  a.li(A0, 1);
  a.ret();

  // ---- mpn_copy(rp, ap, n) -------------------------------------------------
  a.func("mpn_copy");
  a.label("loop");
  a.beq(A2, Z, "done");
  a.lw(T1, A1, 0);
  a.sw(T1, A0, 0);
  a.addi(A0, A0, 4);
  a.addi(A1, A1, 4);
  a.addi(A2, A2, -1);
  a.j("loop");
  a.label("done");
  a.ret();

  // ---- mpn_zero(rp, n) -------------------------------------------------------
  a.func("mpn_zero");
  a.label("loop");
  a.beq(A1, Z, "done");
  a.sw(Z, A0, 0);
  a.addi(A0, A0, 4);
  a.addi(A1, A1, -1);
  a.j("loop");
  a.label("done");
  a.ret();

  // ---- mpn_lshift(rp, ap, n, count) -> shifted-out bits (n>=1, 0<count<32) --
  a.func("mpn_lshift");
  a.li(T0, 32);
  a.sub(T0, T0, A3);  // tnc
  a.slli(T1, A2, 2);
  a.addi(T1, T1, -4);
  a.add(T2, A1, T1);  // &ap[n-1]
  a.lw(T3, T2, 0);
  a.srl(T4, T3, T0);  // return bits
  a.add(T5, A0, T1);  // &rp[n-1]
  a.label("loop");
  a.beq(T2, A1, "last");
  a.lw(T6, T2, -4);
  a.sll(T7, T3, A3);
  a.srl(T8, T6, T0);
  a.or_(T7, T7, T8);
  a.sw(T7, T5, 0);
  a.addi(T2, T2, -4);
  a.addi(T5, T5, -4);
  a.mv(T3, T6);
  a.j("loop");
  a.label("last");
  a.sll(T7, T3, A3);
  a.sw(T7, T5, 0);
  a.mv(A0, T4);
  a.ret();

  // ---- mpn_rshift(rp, ap, n, count) -> low bits out (n>=1, 0<count<32) -----
  a.func("mpn_rshift");
  a.li(T0, 32);
  a.sub(T0, T0, A3);  // tnc
  a.lw(T3, A1, 0);
  a.sll(T4, T3, T0);  // return bits
  a.addi(T5, A2, -1);  // remaining pair steps
  a.label("loop");
  a.beq(T5, Z, "last");
  a.lw(T6, A1, 4);
  a.srl(T7, T3, A3);
  a.sll(T8, T6, T0);
  a.or_(T7, T7, T8);
  a.sw(T7, A0, 0);
  a.addi(A0, A0, 4);
  a.addi(A1, A1, 4);
  a.mv(T3, T6);
  a.addi(T5, T5, -1);
  a.j("loop");
  a.label("last");
  a.srl(T7, T3, A3);
  a.sw(T7, A0, 0);
  a.mv(A0, T4);
  a.ret();

  // ---- div_2by1(hi, lo, d) -> q (a0), rem (a1) -----------------------------
  // Binary restoring division of the 64-bit value hi:lo by d.
  // Requires d's MSB set and hi < d.
  a.func("div_2by1");
  a.mv(T0, Z);   // q
  a.li(T1, 32);  // iterations
  a.label("loop");
  a.srli(T2, A0, 31);  // about to overflow?
  a.slli(A0, A0, 1);
  a.srli(T3, A1, 31);
  a.or_(A0, A0, T3);
  a.slli(A1, A1, 1);
  a.slli(T0, T0, 1);
  a.bne(T2, Z, "dosub");
  a.bltu(A0, A2, "skip");
  a.label("dosub");
  a.sub(A0, A0, A2);
  a.ori(T0, T0, 1);
  a.label("skip");
  a.addi(T1, T1, -1);
  a.bne(T1, Z, "loop");
  a.mv(A1, A0);  // remainder
  a.mv(A0, T0);
  a.ret();

  // ---- mpn_divrem_norm(qp, up, un, dp, dn) ---------------------------------
  // Knuth algorithm D for a pre-normalized divisor (dp[dn-1] MSB set).
  // up must provide un+1 limbs with up[un] = 0; on return up[0..dn) holds
  // the remainder and qp[0..un-dn] the quotient.
  a.func("mpn_divrem_norm");
  a.addi(SP, SP, -36);
  a.sw(RA, SP, 0);
  a.sw(S0, SP, 4);
  a.sw(S1, SP, 8);
  a.sw(S2, SP, 12);
  a.sw(S3, SP, 16);
  a.sw(S4, SP, 20);
  a.sw(S5, SP, 24);
  a.mv(S0, A0);  // qp
  a.mv(S1, A1);  // up
  a.mv(S2, A3);  // dp
  a.mv(S3, A4);  // dn
  a.sub(S4, A2, A4);  // j = un - dn
  a.slli(T0, A4, 2);
  a.addi(T0, T0, -4);
  a.add(T0, T0, A3);
  a.lw(S5, T0, 0);  // dtop
  a.label("iter");
  a.blt(S4, Z, "rdone");
  a.add(T0, S4, S3);
  a.slli(T0, T0, 2);
  a.add(T0, T0, S1);  // &up[j+dn]
  a.lw(T1, T0, 0);    // utop
  a.bgeu(T1, S5, "qmax");
  a.mv(A0, T1);
  a.lw(A1, T0, -4);
  a.mv(A2, S5);
  a.call("div_2by1");
  a.j("haveq");
  a.label("qmax");
  a.li(A0, 0xffffffffu);
  a.label("haveq");
  a.sw(A0, SP, 28);  // qhat
  a.mv(A3, A0);
  a.slli(T2, S4, 2);
  a.add(A0, S1, T2);
  a.mv(A1, S2);
  a.mv(A2, S3);
  a.call("mpn_submul_1");  // a0 = borrow
  a.add(T0, S4, S3);
  a.slli(T0, T0, 2);
  a.add(T0, T0, S1);
  a.lw(T1, T0, 0);  // utop (unchanged by submul)
  a.sub(T3, T1, A0);
  a.sw(T3, T0, 0);
  a.bgeu(T1, A0, "storeq");
  a.label("addback");
  a.lw(T4, SP, 28);
  a.addi(T4, T4, -1);
  a.sw(T4, SP, 28);
  a.slli(T2, S4, 2);
  a.add(A0, S1, T2);
  a.mv(A1, A0);
  a.mv(A2, S2);
  a.mv(A3, S3);
  a.call("mpn_add_n");  // a0 = carry
  a.add(T0, S4, S3);
  a.slli(T0, T0, 2);
  a.add(T0, T0, S1);
  a.lw(T3, T0, 0);
  a.add(T3, T3, A0);
  a.sw(T3, T0, 0);
  a.sltiu(T5, T3, -2);       // T5 = (top < 0xFFFFFFFE), i.e. non-negative
  a.beq(T5, Z, "addback");
  a.label("storeq");
  a.lw(T4, SP, 28);
  a.slli(T2, S4, 2);
  a.add(T6, S0, T2);
  a.sw(T4, T6, 0);
  a.addi(S4, S4, -1);
  a.j("iter");
  a.label("rdone");
  a.lw(RA, SP, 0);
  a.lw(S0, SP, 4);
  a.lw(S1, SP, 8);
  a.lw(S2, SP, 12);
  a.lw(S3, SP, 16);
  a.lw(S4, SP, 20);
  a.lw(S5, SP, 24);
  a.addi(SP, SP, 36);
  a.ret();

  // ---- mpn_mul(rp, ap, an, bp, bn): schoolbook, rp = an+bn limbs -----------
  a.func("mpn_mul");
  a.addi(SP, SP, -28);
  a.sw(RA, SP, 0);
  a.sw(S0, SP, 4);
  a.sw(S1, SP, 8);
  a.sw(S2, SP, 12);
  a.sw(S3, SP, 16);
  a.sw(S4, SP, 20);
  a.sw(S5, SP, 24);
  a.mv(S0, A0);  // rp
  a.mv(S1, A1);  // ap
  a.mv(S2, A2);  // an
  a.mv(S3, A3);  // bp
  a.mv(S4, A4);  // bn
  a.mv(S5, Z);   // j
  // zero rp
  a.add(T0, S2, S4);
  a.mv(T1, S0);
  a.label("zl");
  a.beq(T0, Z, "zdone");
  a.sw(Z, T1, 0);
  a.addi(T1, T1, 4);
  a.addi(T0, T0, -1);
  a.j("zl");
  a.label("zdone");
  a.label("jloop");
  a.bge(S5, S4, "jdone");
  a.slli(T0, S5, 2);
  a.add(T1, S3, T0);
  a.lw(A3, T1, 0);    // b[j]
  a.add(A0, S0, T0);  // rp + j
  a.mv(A1, S1);
  a.mv(A2, S2);
  a.call("mpn_addmul_1");
  a.add(T2, S2, S5);
  a.slli(T2, T2, 2);
  a.add(T2, T2, S0);
  a.sw(A0, T2, 0);  // rp[an+j] = carry
  a.addi(S5, S5, 1);
  a.j("jloop");
  a.label("jdone");
  a.lw(RA, SP, 0);
  a.lw(S0, SP, 4);
  a.lw(S1, SP, 8);
  a.lw(S2, SP, 12);
  a.lw(S3, SP, 16);
  a.lw(S4, SP, 20);
  a.lw(S5, SP, 24);
  a.addi(SP, SP, 28);
  a.ret();
}

namespace {

sim::CustomSet custom_set_for_tie(const MpnTieConfig& tie) {
  std::set<std::string> names;
  if (tie.add_width > 0) {
    names.insert("ur_load");
    names.insert("ur_store");
    names.insert("add_" + std::to_string(tie.add_width));
    names.insert("sub_" + std::to_string(tie.add_width));
  }
  if (tie.mac_width > 0) {
    names.insert("ur_load");
    names.insert("ur_store");
    names.insert("mac_" + std::to_string(tie.mac_width));
  }
  return tie::custom_set_for(names);
}

}  // namespace

Machine make_mpn_machine(const MpnTieConfig& tie, sim::CpuConfig config) {
  Assembler a;
  emit_mpn_kernels(a, tie);
  return Machine(a.finish(), config, custom_set_for_tie(tie));
}

MpnCallResult run_add_n(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("run_add_n: size mismatch");
  m.reset_heap();
  const std::uint32_t pa = m.alloc_words(a);
  const std::uint32_t pb = m.alloc_words(b);
  const std::uint32_t pr = m.alloc(4 * a.size());
  const auto res = m.call("mpn_add_n", {pr, pa, pb, static_cast<std::uint32_t>(a.size())});
  r = m.read_words(pr, a.size());
  return {res.ret, res.cycles};
}

MpnCallResult run_sub_n(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("run_sub_n: size mismatch");
  m.reset_heap();
  const std::uint32_t pa = m.alloc_words(a);
  const std::uint32_t pb = m.alloc_words(b);
  const std::uint32_t pr = m.alloc(4 * a.size());
  const auto res = m.call("mpn_sub_n", {pr, pa, pb, static_cast<std::uint32_t>(a.size())});
  r = m.read_words(pr, a.size());
  return {res.ret, res.cycles};
}

namespace {
MpnCallResult run_mul_like(Machine& m, const char* fn, std::vector<std::uint32_t>& r,
                           const std::vector<std::uint32_t>& a, std::uint32_t b,
                           bool in_place_rp) {
  m.reset_heap();
  const std::uint32_t pa = m.alloc_words(a);
  const std::uint32_t pr = in_place_rp ? m.alloc_words(r) : m.alloc(4 * a.size());
  const auto res = m.call(fn, {pr, pa, static_cast<std::uint32_t>(a.size()), b});
  r = m.read_words(pr, a.size());
  return {res.ret, res.cycles};
}
}  // namespace

MpnCallResult run_add_1(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a, std::uint32_t b) {
  return run_mul_like(m, "mpn_add_1", r, a, b, false);
}

MpnCallResult run_sub_1(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a, std::uint32_t b) {
  return run_mul_like(m, "mpn_sub_1", r, a, b, false);
}

MpnCallResult run_mul_1(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a, std::uint32_t b) {
  return run_mul_like(m, "mpn_mul_1", r, a, b, false);
}

MpnCallResult run_addmul_1(Machine& m, std::vector<std::uint32_t>& r,
                           const std::vector<std::uint32_t>& a, std::uint32_t b) {
  if (r.size() != a.size()) throw std::invalid_argument("run_addmul_1: size mismatch");
  return run_mul_like(m, "mpn_addmul_1", r, a, b, true);
}

MpnCallResult run_submul_1(Machine& m, std::vector<std::uint32_t>& r,
                           const std::vector<std::uint32_t>& a, std::uint32_t b) {
  if (r.size() != a.size()) throw std::invalid_argument("run_submul_1: size mismatch");
  return run_mul_like(m, "mpn_submul_1", r, a, b, true);
}

MpnCallResult run_cmp(Machine& m, const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b) {
  m.reset_heap();
  const std::uint32_t pa = m.alloc_words(a);
  const std::uint32_t pb = m.alloc_words(b);
  const auto res = m.call("mpn_cmp", {pa, pb, static_cast<std::uint32_t>(a.size())});
  return {res.ret, res.cycles};
}

MpnCallResult run_lshift(Machine& m, std::vector<std::uint32_t>& r,
                         const std::vector<std::uint32_t>& a, unsigned count) {
  m.reset_heap();
  const std::uint32_t pa = m.alloc_words(a);
  const std::uint32_t pr = m.alloc(4 * a.size());
  const auto res = m.call("mpn_lshift",
                          {pr, pa, static_cast<std::uint32_t>(a.size()), count});
  r = m.read_words(pr, a.size());
  return {res.ret, res.cycles};
}

MpnCallResult run_rshift(Machine& m, std::vector<std::uint32_t>& r,
                         const std::vector<std::uint32_t>& a, unsigned count) {
  m.reset_heap();
  const std::uint32_t pa = m.alloc_words(a);
  const std::uint32_t pr = m.alloc(4 * a.size());
  const auto res = m.call("mpn_rshift",
                          {pr, pa, static_cast<std::uint32_t>(a.size()), count});
  r = m.read_words(pr, a.size());
  return {res.ret, res.cycles};
}

MpnCallResult run_div_2by1(Machine& m, std::uint32_t hi, std::uint32_t lo,
                           std::uint32_t d) {
  const auto res = m.call("div_2by1", {hi, lo, d});
  return {res.ret, res.cycles};
}

MpnCallResult run_divrem_norm(Machine& m, std::vector<std::uint32_t>& q,
                              std::vector<std::uint32_t>& u,
                              const std::vector<std::uint32_t>& d,
                              std::vector<std::uint32_t>& rem) {
  m.reset_heap();
  std::vector<std::uint32_t> upad = u;
  upad.push_back(0);
  const std::uint32_t pu = m.alloc_words(upad);
  const std::uint32_t pd = m.alloc_words(d);
  const std::uint32_t qn = static_cast<std::uint32_t>(u.size() - d.size() + 1);
  const std::uint32_t pq = m.alloc(4 * qn);
  const auto res = m.call("mpn_divrem_norm",
                          {pq, pu, static_cast<std::uint32_t>(u.size()), pd,
                           static_cast<std::uint32_t>(d.size())});
  q = m.read_words(pq, qn);
  rem = m.read_words(pu, d.size());
  return {res.ret, res.cycles};
}

MpnCallResult run_mul(Machine& m, std::vector<std::uint32_t>& r,
                      const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b) {
  m.reset_heap();
  const std::uint32_t pa = m.alloc_words(a);
  const std::uint32_t pb = m.alloc_words(b);
  const std::uint32_t pr = m.alloc(4 * (a.size() + b.size()));
  const auto res = m.call("mpn_mul", {pr, pa, static_cast<std::uint32_t>(a.size()),
                                      pb, static_cast<std::uint32_t>(b.size())});
  r = m.read_words(pr, a.size() + b.size());
  return {res.ret, res.cycles};
}

}  // namespace wsp::kernels
