// XR32 implementations of the GMP-style mpn library routines — the "basic
// operations" software layer as it runs on the simulated core, in both base
// form and custom-instruction (TIE) form.
//
// Emission is parameterized by the hardware configuration: with
// MpnTieConfig widths of 0 the routines are plain scalar loops (the
// "well-optimized software" baseline); non-zero widths make the hot loops
// use the wide-adder / multi-MAC custom instructions, with scalar tails for
// remainders.  Function names are identical in both forms, so higher-level
// kernels (Montgomery multiply, division) bind to whichever variant the
// platform provides — exactly how the paper's layered libraries relink
// against accelerated leaf routines.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/runtime.h"
#include "xasm/program.h"

namespace wsp::kernels {

struct MpnTieConfig {
  int add_width = 0;  ///< 0 = software; else 2, 4, 8 or 16 (add_k/sub_k units)
  int mac_width = 0;  ///< 0 = software; else 1, 2 or 4 (mac_m units)

  bool any() const { return add_width > 0 || mac_width > 0; }
};

/// Emits the full mpn routine set into the assembler:
///   mpn_add_n, mpn_sub_n, mpn_add_1, mpn_sub_1, mpn_mul_1, mpn_addmul_1,
///   mpn_submul_1, mpn_cmp, mpn_copy, mpn_zero, mpn_lshift, mpn_rshift,
///   div_2by1, mpn_divrem_norm, mpn_mul
void emit_mpn_kernels(xasm::Assembler& a, const MpnTieConfig& tie = {});

// --- host-side wrappers (marshal, call, unmarshal) -------------------------
// These allocate simulator buffers per call; they are meant for tests and
// characterization, not for building larger kernels (those chain calls with
// operands resident in simulator memory).

struct MpnCallResult {
  std::uint32_t ret = 0;
  std::uint64_t cycles = 0;
};

MpnCallResult run_add_n(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b);
MpnCallResult run_sub_n(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a,
                        const std::vector<std::uint32_t>& b);
MpnCallResult run_add_1(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a, std::uint32_t b);
MpnCallResult run_sub_1(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a, std::uint32_t b);
MpnCallResult run_mul_1(Machine& m, std::vector<std::uint32_t>& r,
                        const std::vector<std::uint32_t>& a, std::uint32_t b);
MpnCallResult run_addmul_1(Machine& m, std::vector<std::uint32_t>& r,
                           const std::vector<std::uint32_t>& a, std::uint32_t b);
MpnCallResult run_submul_1(Machine& m, std::vector<std::uint32_t>& r,
                           const std::vector<std::uint32_t>& a, std::uint32_t b);
MpnCallResult run_cmp(Machine& m, const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b);
MpnCallResult run_lshift(Machine& m, std::vector<std::uint32_t>& r,
                         const std::vector<std::uint32_t>& a, unsigned count);
MpnCallResult run_rshift(Machine& m, std::vector<std::uint32_t>& r,
                         const std::vector<std::uint32_t>& a, unsigned count);
MpnCallResult run_div_2by1(Machine& m, std::uint32_t hi, std::uint32_t lo,
                           std::uint32_t d);
/// q gets un-dn+1 limbs; u is reduced in place to the remainder (dn limbs
/// returned).  Requires d's top limb MSB set.
MpnCallResult run_divrem_norm(Machine& m, std::vector<std::uint32_t>& q,
                              std::vector<std::uint32_t>& u,
                              const std::vector<std::uint32_t>& d,
                              std::vector<std::uint32_t>& rem);
MpnCallResult run_mul(Machine& m, std::vector<std::uint32_t>& r,
                      const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b);

/// Builds a machine with just the mpn kernels (plus the custom set implied
/// by `tie`), for tests and characterization.
Machine make_mpn_machine(const MpnTieConfig& tie = {},
                         sim::CpuConfig config = {});

// --- radix-16 kernel set -----------------------------------------------------
// The "two radix sizes" axis of the design space, measured rather than
// modeled: the same routines over 16-bit limbs (half-word loads/stores,
// single 32-bit products — no carry chains needed).  Base ISA only; the
// exploration phase rejects radix 16 long before custom instructions
// matter.  Functions are named mpn16_*.

void emit_mpn16_kernels(xasm::Assembler& a);
Machine make_mpn16_machine(sim::CpuConfig config = {});

MpnCallResult run16_add_n(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b);
MpnCallResult run16_sub_n(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a,
                          const std::vector<std::uint16_t>& b);
MpnCallResult run16_add_1(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a, std::uint16_t b);
MpnCallResult run16_sub_1(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a, std::uint16_t b);
MpnCallResult run16_mul_1(Machine& m, std::vector<std::uint16_t>& r,
                          const std::vector<std::uint16_t>& a, std::uint16_t b);
MpnCallResult run16_addmul_1(Machine& m, std::vector<std::uint16_t>& r,
                             const std::vector<std::uint16_t>& a, std::uint16_t b);
MpnCallResult run16_submul_1(Machine& m, std::vector<std::uint16_t>& r,
                             const std::vector<std::uint16_t>& a, std::uint16_t b);
MpnCallResult run16_cmp(Machine& m, const std::vector<std::uint16_t>& a,
                        const std::vector<std::uint16_t>& b);
MpnCallResult run16_lshift(Machine& m, std::vector<std::uint16_t>& r,
                           const std::vector<std::uint16_t>& a, unsigned count);
MpnCallResult run16_rshift(Machine& m, std::vector<std::uint16_t>& r,
                           const std::vector<std::uint16_t>& a, unsigned count);

}  // namespace wsp::kernels
