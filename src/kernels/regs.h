// Register aliases used by the hand-written XR32 kernels.
#pragma once

#include <cstdint>

#include "isa/isa.h"

namespace wsp::kernels {

inline constexpr std::uint8_t Z = wsp::isa::kZero;
inline constexpr std::uint8_t RA = wsp::isa::kRa;
inline constexpr std::uint8_t SP = wsp::isa::kSp;

// Argument / return registers a0..a7 (r3..r10).
inline constexpr std::uint8_t A0 = 3, A1 = 4, A2 = 5, A3 = 6, A4 = 7, A5 = 8,
                              A6 = 9, A7 = 10;

// Temporaries t0..t14 (r11..r25); caller-saved by convention.
inline constexpr std::uint8_t T0 = 11, T1 = 12, T2 = 13, T3 = 14, T4 = 15,
                              T5 = 16, T6 = 17, T7 = 18, T8 = 19, T9 = 20,
                              T10 = 21, T11 = 22, T12 = 23, T13 = 24, T14 = 25;

// Saved registers s0..s5 (r26..r31); callee-saved by convention.
inline constexpr std::uint8_t S0 = 26, S1 = 27, S2 = 28, S3 = 29, S4 = 30,
                              S5 = 31;

}  // namespace wsp::kernels
