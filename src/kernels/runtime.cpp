#include "kernels/runtime.h"

#include <stdexcept>

#include "support/trace.h"

namespace wsp::kernels {

Machine::Machine(xasm::Program program, sim::CpuConfig config,
                 sim::CustomSet customs)
    : program_(std::move(program)),
      customs_(std::move(customs)),
      cpu_(program_, config, &customs_) {}

Machine::CallResult Machine::call(const std::string& function,
                                  std::initializer_list<std::uint32_t> args) {
  if (args.size() > 8) throw std::invalid_argument("Machine::call: too many args");
  unsigned i = 0;
  for (std::uint32_t a : args) cpu_.set_reg(isa::kA0 + i++, a);
  const std::uint64_t c0 = cpu_.cycles();
  const std::uint64_t i0 = cpu_.instret();
  {
    WSP_TRACE_SPAN("iss.call", function);
    cpu_.call(function);
  }
  CallResult r;
  r.ret = cpu_.reg(isa::kA0);
  r.cycles = cpu_.cycles() - c0;
  r.instrs = cpu_.instret() - i0;
  if (trace::enabled()) {
    // Cumulative machine counters on the simulated timeline, sampled at
    // call boundaries (cheap and still dense enough for Perfetto).
    trace::emit_sim(trace::Phase::kCounter, "iss", "cycles/" + function,
                    cpu_.cycles(), 0, static_cast<double>(r.cycles));
    if (const sim::Cache* ic = cpu_.icache()) {
      trace::emit_sim(trace::Phase::kCounter, "iss", "icache_hits",
                      cpu_.cycles(), 0, static_cast<double>(ic->hits()));
    }
    if (const sim::Cache* dc = cpu_.dcache()) {
      trace::emit_sim(trace::Phase::kCounter, "iss", "dcache_hits",
                      cpu_.cycles(), 0, static_cast<double>(dc->hits()));
    }
  }
  return r;
}

std::uint32_t Machine::alloc(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument(
        "Machine::alloc: align must be a nonzero power of two");
  }
  // 64-bit arithmetic so huge `bytes` can't wrap past the exhaustion check.
  const std::uint64_t addr =
      (static_cast<std::uint64_t>(heap_) + align - 1) & ~(std::uint64_t{align} - 1);
  const std::uint64_t end = addr + bytes;
  if (end >= cpu_.mem().size() - (1u << 20)) {  // keep 1 MiB for the stack
    throw std::runtime_error("Machine: heap exhausted");
  }
  heap_ = static_cast<std::uint32_t>(end);
  return static_cast<std::uint32_t>(addr);
}

void Machine::reset_heap() { heap_ = xasm::kHeapBase; }

void Machine::write_words(std::uint32_t addr, const std::vector<std::uint32_t>& ws) {
  for (std::size_t i = 0; i < ws.size(); ++i) {
    cpu_.mem().store32(addr + static_cast<std::uint32_t>(4 * i), ws[i]);
  }
}

std::vector<std::uint32_t> Machine::read_words(std::uint32_t addr, std::size_t n) const {
  std::vector<std::uint32_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = cpu_.mem().load32(addr + static_cast<std::uint32_t>(4 * i));
  }
  return out;
}

void Machine::write_bytes(std::uint32_t addr, const std::vector<std::uint8_t>& bs) {
  if (!bs.empty()) cpu_.mem().write_block(addr, bs.data(), bs.size());
}

std::vector<std::uint8_t> Machine::read_bytes(std::uint32_t addr, std::size_t n) const {
  std::vector<std::uint8_t> out(n);
  if (n) cpu_.mem().read_block(addr, out.data(), n);
  return out;
}

std::uint32_t Machine::alloc_words(const std::vector<std::uint32_t>& ws) {
  const std::uint32_t addr = alloc(4 * ws.size());
  write_words(addr, ws);
  return addr;
}

std::uint32_t Machine::alloc_bytes(const std::vector<std::uint8_t>& bs) {
  const std::uint32_t addr = alloc(bs.size() ? bs.size() : 1);
  write_bytes(addr, bs);
  return addr;
}

}  // namespace wsp::kernels
