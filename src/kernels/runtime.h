// Host-side harness for running XR32 kernels: owns the program, the CPU and
// the custom-instruction set of one platform configuration, marshals
// arguments/buffers between host memory and simulator memory, and reports
// per-call cycle counts.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "sim/cpu.h"
#include "sim/custom.h"
#include "xasm/program.h"

namespace wsp::kernels {

class Machine {
 public:
  struct CallResult {
    std::uint32_t ret = 0;       ///< a0 on return
    std::uint64_t cycles = 0;    ///< cycles consumed by this call
    std::uint64_t instrs = 0;    ///< instructions retired by this call
  };

  explicit Machine(xasm::Program program, sim::CpuConfig config = {},
                   sim::CustomSet customs = {});

  /// Invokes `function` with up to 8 word arguments (a0..a7).
  CallResult call(const std::string& function,
                  std::initializer_list<std::uint32_t> args = {});

  sim::Cpu& cpu() { return cpu_; }
  const xasm::Program& program() const { return program_; }
  const sim::CustomSet& customs() const { return customs_; }

  // --- bump allocator over the heap region for marshalled buffers ----------
  std::uint32_t alloc(std::size_t bytes, std::size_t align = 4);
  void reset_heap();

  // --- marshalling helpers -----------------------------------------------
  void write_u32(std::uint32_t addr, std::uint32_t v) { cpu_.mem().store32(addr, v); }
  std::uint32_t read_u32(std::uint32_t addr) const { return cpu_.mem().load32(addr); }
  void write_words(std::uint32_t addr, const std::vector<std::uint32_t>& ws);
  std::vector<std::uint32_t> read_words(std::uint32_t addr, std::size_t n) const;
  void write_bytes(std::uint32_t addr, const std::vector<std::uint8_t>& bs);
  std::vector<std::uint8_t> read_bytes(std::uint32_t addr, std::size_t n) const;

  /// Allocates a buffer and writes the words into it.
  std::uint32_t alloc_words(const std::vector<std::uint32_t>& ws);
  std::uint32_t alloc_bytes(const std::vector<std::uint8_t>& bs);

 private:
  xasm::Program program_;
  sim::CustomSet customs_;
  sim::Cpu cpu_;
  std::uint32_t heap_ = xasm::kHeapBase;
};

}  // namespace wsp::kernels
