#include "kernels/sha1_kernel.h"

#include <functional>

#include "kernels/regs.h"

namespace wsp::kernels {

using xasm::Assembler;

void emit_sha1_kernel(Assembler& a) {
  a.data_align(4);
  a.data_symbol("sha1_w");
  const std::uint32_t w_addr = a.data_zero(80 * 4);

  // sha1_block(a0 = state ptr [5 words], a1 = block ptr [16 words, already
  // big-endian-converted word values]).
  a.func("sha1_block");
  // W[0..16) = block words.
  a.li(A2, w_addr);
  a.mv(T0, A1);
  a.li(T1, 16);
  a.label("copy");
  a.lw(T2, T0, 0);
  a.sw(T2, A2, 0);
  a.addi(T0, T0, 4);
  a.addi(A2, A2, 4);
  a.addi(T1, T1, -1);
  a.bne(T1, Z, "copy");
  // Expansion: W[i] = ROL1(W[i-3] ^ W[i-8] ^ W[i-14] ^ W[i-16]), A2 = &W[i].
  a.li(A3, 64);
  a.label("expand");
  a.lw(T0, A2, -12);
  a.lw(T1, A2, -32);
  a.xor_(T0, T0, T1);
  a.lw(T1, A2, -56);
  a.xor_(T0, T0, T1);
  a.lw(T1, A2, -64);
  a.xor_(T0, T0, T1);
  a.slli(T1, T0, 1);
  a.srli(T2, T0, 31);
  a.or_(T1, T1, T2);
  a.sw(T1, A2, 0);
  a.addi(A2, A2, 4);
  a.addi(A3, A3, -1);
  a.bne(A3, Z, "expand");

  // Working variables a..e in T10..T14.
  a.lw(T10, A0, 0);
  a.lw(T11, A0, 4);
  a.lw(T12, A0, 8);
  a.lw(T13, A0, 12);
  a.lw(T14, A0, 16);
  a.li(A2, w_addr);  // W pointer

  // Emits one 20-round phase; emit_f leaves the round function in T0 from
  // b (T11), c (T12), d (T13).
  auto phase = [&](const char* label, std::uint32_t k,
                   const std::function<void()>& emit_f) {
    a.li(A5, k);
    a.li(A3, 20);
    a.label(label);
    emit_f();
    a.slli(T1, T10, 5);
    a.srli(T2, T10, 27);
    a.or_(T1, T1, T2);   // ROL5(a)
    a.add(T1, T1, T0);   // + f
    a.add(T1, T1, T14);  // + e
    a.add(T1, T1, A5);   // + k
    a.lw(T2, A2, 0);
    a.add(T1, T1, T2);   // + W[i]
    a.mv(T14, T13);      // e = d
    a.mv(T13, T12);      // d = c
    a.slli(T2, T11, 30);
    a.srli(T3, T11, 2);
    a.or_(T12, T2, T3);  // c = ROL30(b)
    a.mv(T11, T10);      // b = a
    a.mv(T10, T1);       // a = t
    a.addi(A2, A2, 4);
    a.addi(A3, A3, -1);
    a.bne(A3, Z, label);
  };

  phase("p0", 0x5A827999u, [&] {
    a.and_(T0, T11, T12);
    a.xori(T1, T11, -1);
    a.and_(T1, T1, T13);
    a.or_(T0, T0, T1);  // (b&c) | (~b&d)
  });
  phase("p1", 0x6ED9EBA1u, [&] {
    a.xor_(T0, T11, T12);
    a.xor_(T0, T0, T13);  // b^c^d
  });
  phase("p2", 0x8F1BBCDCu, [&] {
    a.and_(T0, T11, T12);
    a.and_(T1, T11, T13);
    a.or_(T0, T0, T1);
    a.and_(T1, T12, T13);
    a.or_(T0, T0, T1);  // majority
  });
  phase("p3", 0xCA62C1D6u, [&] {
    a.xor_(T0, T11, T12);
    a.xor_(T0, T0, T13);
  });

  // state += working variables.
  const std::uint8_t vars[5] = {T10, T11, T12, T13, T14};
  for (int i = 0; i < 5; ++i) {
    a.lw(T0, A0, 4 * i);
    a.add(T0, T0, vars[i]);
    a.sw(T0, A0, 4 * i);
  }
  a.ret();
}

Sha1Kernel::Sha1Kernel(Machine& m) : m_(m) {
  state_addr_ = m_.alloc(20, 4);
  block_addr_ = m_.alloc(64, 4);
}

std::array<std::uint8_t, 20> Sha1Kernel::hash(const std::vector<std::uint8_t>& data,
                                              std::uint64_t* cycles) {
  // Standard SHA-1 padding on the host (framing, not compression work).
  std::vector<std::uint8_t> padded = data;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) padded.push_back(0);
  for (int i = 7; i >= 0; --i) {
    padded.push_back(static_cast<std::uint8_t>(bit_len >> (8 * i)));
  }

  const std::uint32_t h0[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                               0x10325476u, 0xC3D2E1F0u};
  for (int i = 0; i < 5; ++i) {
    m_.write_u32(state_addr_ + 4 * static_cast<std::uint32_t>(i), h0[i]);
  }
  for (std::size_t off = 0; off < padded.size(); off += 64) {
    for (int w = 0; w < 16; ++w) {
      const std::uint8_t* p = padded.data() + off + 4 * static_cast<std::size_t>(w);
      const std::uint32_t v = (static_cast<std::uint32_t>(p[0]) << 24) |
                              (static_cast<std::uint32_t>(p[1]) << 16) |
                              (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
      m_.write_u32(block_addr_ + 4 * static_cast<std::uint32_t>(w), v);
    }
    const auto res = m_.call("sha1_block", {state_addr_, block_addr_});
    if (cycles) *cycles += res.cycles;
  }
  std::array<std::uint8_t, 20> out{};
  for (int i = 0; i < 5; ++i) {
    const std::uint32_t v = m_.read_u32(state_addr_ + 4 * static_cast<std::uint32_t>(i));
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(v >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(v >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(v >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(v);
  }
  return out;
}

Machine make_sha1_machine(sim::CpuConfig config) {
  Assembler a;
  emit_sha1_kernel(a);
  return Machine(a.finish(), config, {});
}

}  // namespace wsp::kernels
