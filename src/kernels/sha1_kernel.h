// SHA-1 on the simulated core (base ISA).
//
// The record-layer MACs are the biggest *unaccelerated* cost in the SSL
// workload (the "Misc" share of Fig. 8); this kernel gives that cost a
// measured value on the platform instead of an estimate.  One function,
// sha1_block, implements the 80-round compression; the host wrapper runs
// full messages through it with standard padding and validates against the
// host Sha1.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "kernels/runtime.h"
#include "xasm/program.h"

namespace wsp::kernels {

/// Emits sha1_block(state_ptr, block_ptr): one compression of the 64-byte
/// big-endian block at block_ptr into the five-word state at state_ptr.
void emit_sha1_kernel(xasm::Assembler& a);

class Sha1Kernel {
 public:
  explicit Sha1Kernel(Machine& m);

  /// Hashes `data` entirely on the ISS; cycles accumulated into *cycles.
  std::array<std::uint8_t, 20> hash(const std::vector<std::uint8_t>& data,
                                    std::uint64_t* cycles = nullptr);

 private:
  Machine& m_;
  std::uint32_t state_addr_ = 0;
  std::uint32_t block_addr_ = 0;
};

Machine make_sha1_machine(sim::CpuConfig config = {});

}  // namespace wsp::kernels
