#include "macromodel/characterize.h"

#include <stdexcept>

namespace wsp::macromodel {

namespace {

std::vector<std::uint32_t> random_words(Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = rng.next_u32();
  return v;
}

}  // namespace

Samples sample_routine(kernels::Machine& machine, Prim routine,
                       const CharacterizeOptions& options) {
  Rng rng(options.seed + static_cast<std::uint64_t>(routine) * 7919);
  Samples s;
  auto record = [&](std::size_t n, std::size_t m, std::uint64_t cycles) {
    s.features.push_back({static_cast<double>(n), static_cast<double>(m)});
    s.cycles.push_back(static_cast<double>(cycles));
  };

  for (std::size_t n : options.sizes) {
    for (int rep = 0; rep < options.reps_per_size; ++rep) {
      const auto a = random_words(rng, n);
      const auto b = random_words(rng, n);
      const std::uint32_t scalar = rng.next_u32() | 1;
      std::vector<std::uint32_t> r;
      switch (routine) {
        case Prim::kAddN:
          record(n, 0, kernels::run_add_n(machine, r, a, b).cycles);
          break;
        case Prim::kSubN:
          record(n, 0, kernels::run_sub_n(machine, r, a, b).cycles);
          break;
        case Prim::kAdd1:
          record(n, 0, kernels::run_add_1(machine, r, a, scalar).cycles);
          break;
        case Prim::kSub1:
          record(n, 0, kernels::run_sub_1(machine, r, a, scalar).cycles);
          break;
        case Prim::kMul1:
          record(n, 0, kernels::run_mul_1(machine, r, a, scalar).cycles);
          break;
        case Prim::kAddMul1: {
          r = random_words(rng, n);
          record(n, 0, kernels::run_addmul_1(machine, r, a, scalar).cycles);
          break;
        }
        case Prim::kSubMul1: {
          r = random_words(rng, n);
          record(n, 0, kernels::run_submul_1(machine, r, a, scalar).cycles);
          break;
        }
        case Prim::kCmp:
          // Equal operands exercise the worst case (full scan).
          record(n, 0, kernels::run_cmp(machine, a, a).cycles);
          break;
        case Prim::kLshift:
          record(n, 0,
                 kernels::run_lshift(machine, r, a,
                                     1 + static_cast<unsigned>(rng.below(31)))
                     .cycles);
          break;
        case Prim::kRshift:
          record(n, 0,
                 kernels::run_rshift(machine, r, a,
                                     1 + static_cast<unsigned>(rng.below(31)))
                     .cycles);
          break;
        case Prim::kDiv2by1: {
          const std::uint32_t d = rng.next_u32() | 0x80000000u;
          const std::uint32_t hi = static_cast<std::uint32_t>(rng.below(d));
          record(1, 0, kernels::run_div_2by1(machine, hi, rng.next_u32(), d).cycles);
          break;
        }
        case Prim::kDivrem:
        case Prim::kCount:
          throw std::invalid_argument("sample_routine: composite routine");
      }
    }
    if (routine == Prim::kDiv2by1) break;  // size-independent
  }
  return s;
}

Samples sample_routine16(kernels::Machine& machine, Prim routine,
                         const CharacterizeOptions& options) {
  Rng rng(options.seed + 31 + static_cast<std::uint64_t>(routine) * 7919);
  Samples s;
  auto record = [&](std::size_t n, std::uint64_t cycles) {
    s.features.push_back({static_cast<double>(n), 0.0});
    s.cycles.push_back(static_cast<double>(cycles));
  };
  auto random_halfwords = [&](std::size_t n) {
    std::vector<std::uint16_t> v(n);
    for (auto& x : v) x = static_cast<std::uint16_t>(rng.next_u32());
    return v;
  };

  for (std::size_t n : options.sizes) {
    for (int rep = 0; rep < options.reps_per_size; ++rep) {
      const auto a = random_halfwords(n);
      const auto b = random_halfwords(n);
      const std::uint16_t scalar = static_cast<std::uint16_t>(rng.next_u32() | 1);
      std::vector<std::uint16_t> r;
      switch (routine) {
        case Prim::kAddN:
          record(n, kernels::run16_add_n(machine, r, a, b).cycles);
          break;
        case Prim::kSubN:
          record(n, kernels::run16_sub_n(machine, r, a, b).cycles);
          break;
        case Prim::kAdd1:
          record(n, kernels::run16_add_1(machine, r, a, scalar).cycles);
          break;
        case Prim::kSub1:
          record(n, kernels::run16_sub_1(machine, r, a, scalar).cycles);
          break;
        case Prim::kMul1:
          record(n, kernels::run16_mul_1(machine, r, a, scalar).cycles);
          break;
        case Prim::kAddMul1:
          r = random_halfwords(n);
          record(n, kernels::run16_addmul_1(machine, r, a, scalar).cycles);
          break;
        case Prim::kSubMul1:
          r = random_halfwords(n);
          record(n, kernels::run16_submul_1(machine, r, a, scalar).cycles);
          break;
        case Prim::kCmp:
          record(n, kernels::run16_cmp(machine, a, a).cycles);
          break;
        case Prim::kLshift:
          record(n, kernels::run16_lshift(machine, r, a,
                                          1 + static_cast<unsigned>(rng.below(15)))
                        .cycles);
          break;
        case Prim::kRshift:
          record(n, kernels::run16_rshift(machine, r, a,
                                          1 + static_cast<unsigned>(rng.below(15)))
                        .cycles);
          break;
        case Prim::kDiv2by1:
        case Prim::kDivrem:
        case Prim::kCount:
          throw std::invalid_argument("sample_routine16: unsupported routine");
      }
    }
  }
  return s;
}

MacroModelSet characterize_mpn_full(kernels::Machine& machine32,
                                    kernels::Machine& machine16,
                                    const CharacterizeOptions& options) {
  MacroModelSet set = characterize_mpn(machine32, options);
  const std::vector<Monomial> linear = {{0, 0}, {1, 0}};
  const Prim routines[] = {Prim::kAddN, Prim::kSubN, Prim::kAdd1, Prim::kSub1,
                           Prim::kMul1, Prim::kAddMul1, Prim::kSubMul1,
                           Prim::kCmp, Prim::kLshift, Prim::kRshift};
  for (Prim p : routines) {
    const Samples s = sample_routine16(machine16, p, options);
    RoutineModel rm;
    rm.model = fit(s.features, s.cycles, linear, &rm.quality);
    set.set(p, 16, rm);
  }
  // The division step is radix-independent (same shift-subtract hardware
  // path); keep the measured 32-bit model for both radices.
  return set;
}

MacroModelSet characterize_mpn(kernels::Machine& machine,
                               const CharacterizeOptions& options) {
  MacroModelSet set;
  const std::vector<Monomial> linear = {{0, 0}, {1, 0}};   // c0 + c1*n
  const std::vector<Monomial> constant = {{0, 0}};

  const Prim routines[] = {Prim::kAddN, Prim::kSubN, Prim::kAdd1, Prim::kSub1,
                           Prim::kMul1, Prim::kAddMul1, Prim::kSubMul1,
                           Prim::kCmp, Prim::kLshift, Prim::kRshift,
                           Prim::kDiv2by1};
  for (Prim p : routines) {
    const Samples s = sample_routine(machine, p, options);
    RoutineModel rm;
    rm.model = fit(s.features, s.cycles,
                   p == Prim::kDiv2by1 ? constant : linear, &rm.quality);
    // Register for both radix options (see header for the justification).
    set.set(p, 32, rm);
    set.set(p, 16, rm);
  }
  return set;
}

}  // namespace wsp::macromodel
