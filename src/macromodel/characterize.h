// Performance characterization (paper Sec. 3.2): exercise each mpn library
// routine on the cycle-accurate ISS with pseudo-random stimuli across the
// operand-size domain the application uses, record (size, cycles) samples,
// and fit macro-models by statistical regression.
//
// Characterization is a one-time cost per hardware configuration; the
// resulting MacroModelSet then supports native-speed performance estimation
// (orders of magnitude faster than ISS runs — quantified in
// bench_sec43_explore).
#pragma once

#include <vector>

#include "kernels/mpn_kernels.h"
#include "macromodel/models.h"
#include "support/random.h"

namespace wsp::macromodel {

struct CharacterizeOptions {
  std::vector<std::size_t> sizes = {1, 2, 3, 4, 6, 8, 12, 16, 20,
                                    24, 28, 32, 40, 48, 56, 64};
  int reps_per_size = 3;  ///< random stimuli per size point
  std::uint64_t seed = 0xC0FFEE;
};

/// Characterizes all mpn routines on the given machine (which must contain
/// the mpn kernels) and returns the fitted model set.
///
/// Models are registered for both 16- and 32-bit radix with identical
/// per-limb coefficients: on a 32-bit core, a 16-bit-limb loop iteration
/// costs the same as a 32-bit one (same loads/stores/multiplier latency),
/// so radix-16 arithmetic pays via doubled limb counts — which is exactly
/// how the exploration phase sees it.
MacroModelSet characterize_mpn(kernels::Machine& machine,
                               const CharacterizeOptions& options = {});

/// Full characterization with *measured* radix-16 models: `machine32` must
/// contain the mpn kernels and `machine16` the mpn16 kernels
/// (make_mpn16_machine).  Registers real per-radix coefficients instead of
/// the radix-32 reuse approximation.
MacroModelSet characterize_mpn_full(kernels::Machine& machine32,
                                    kernels::Machine& machine16,
                                    const CharacterizeOptions& options = {});

/// Raw characterization samples for one routine (exposed for tests and the
/// Sec. 4.3 accuracy report).
struct Samples {
  std::vector<std::vector<double>> features;  ///< (n, m)
  std::vector<double> cycles;
};
Samples sample_routine(kernels::Machine& machine, Prim routine,
                       const CharacterizeOptions& options);
Samples sample_routine16(kernels::Machine& machine, Prim routine,
                         const CharacterizeOptions& options);

}  // namespace wsp::macromodel
