#include "macromodel/models.h"

#include <sstream>
#include <stdexcept>

namespace wsp::macromodel {

void MacroModelSet::set(Prim p, unsigned limb_bits, RoutineModel model) {
  models_[{static_cast<int>(p), limb_bits}] = std::move(model);
}

bool MacroModelSet::has(Prim p, unsigned limb_bits) const {
  return models_.count({static_cast<int>(p), limb_bits}) != 0;
}

const RoutineModel& MacroModelSet::get(Prim p, unsigned limb_bits) const {
  const auto it = models_.find({static_cast<int>(p), limb_bits});
  if (it == models_.end()) {
    throw std::out_of_range(std::string("MacroModelSet: no model for ") +
                            prim_name(p) + " @" + std::to_string(limb_bits));
  }
  return it->second;
}

double MacroModelSet::cycles(Prim p, std::size_t n, std::size_t m,
                             unsigned limb_bits) const {
  return get(p, limb_bits)
      .model.evaluate({static_cast<double>(n), static_cast<double>(m)});
}

std::string MacroModelSet::describe() const {
  std::ostringstream os;
  for (const auto& [key, rm] : models_) {
    os << prim_name(static_cast<Prim>(key.first)) << " @" << key.second
       << "-bit: cycles = " << rm.model.to_string({"n", "m"})
       << "   (R^2=" << rm.quality.r2 << ", MAE=" << rm.quality.mae_pct
       << "%, samples=" << rm.quality.samples << ")\n";
  }
  return os.str();
}

std::string MacroModelSet::serialize() const {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [key, rm] : models_) {
    os << key.first << " " << key.second << " " << rm.model.basis().size();
    for (std::size_t t = 0; t < rm.model.basis().size(); ++t) {
      const auto& mono = rm.model.basis()[t];
      os << " " << mono.size();
      for (unsigned e : mono) os << " " << e;
      os << " " << rm.model.coeffs()[t];
    }
    os << " " << rm.quality.r2 << " " << rm.quality.mae_pct << " "
       << rm.quality.samples << "\n";
  }
  return os.str();
}

MacroModelSet MacroModelSet::deserialize(const std::string& text) {
  MacroModelSet set;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    int prim = 0;
    unsigned bits = 0;
    std::size_t terms = 0;
    if (!(ls >> prim >> bits >> terms)) {
      throw std::invalid_argument("MacroModelSet: malformed header line");
    }
    std::vector<Monomial> basis;
    std::vector<double> coeffs;
    for (std::size_t t = 0; t < terms; ++t) {
      std::size_t nf = 0;
      if (!(ls >> nf)) throw std::invalid_argument("MacroModelSet: malformed term");
      Monomial mono(nf);
      for (auto& e : mono) {
        if (!(ls >> e)) throw std::invalid_argument("MacroModelSet: malformed exponent");
      }
      double c = 0;
      if (!(ls >> c)) throw std::invalid_argument("MacroModelSet: malformed coefficient");
      basis.push_back(std::move(mono));
      coeffs.push_back(c);
    }
    RoutineModel rm;
    rm.model = PolyModel(std::move(basis), std::move(coeffs));
    if (!(ls >> rm.quality.r2 >> rm.quality.mae_pct >> rm.quality.samples)) {
      throw std::invalid_argument("MacroModelSet: malformed quality fields");
    }
    set.set(static_cast<Prim>(prim), bits, std::move(rm));
  }
  return set;
}

}  // namespace wsp::macromodel
