// Macro-model registry: one fitted PolyModel per (library routine, radix),
// with the per-routine fit quality from characterization.  This is the
// artifact the algorithm-exploration phase consumes instead of the ISS.
#pragma once

#include <map>
#include <string>

#include "macromodel/regression.h"
#include "mp/cost.h"

namespace wsp::macromodel {

struct RoutineModel {
  PolyModel model;     ///< features: (n, m) in limbs
  FitQuality quality;  ///< characterization fit quality
};

class MacroModelSet {
 public:
  void set(Prim p, unsigned limb_bits, RoutineModel model);
  bool has(Prim p, unsigned limb_bits) const;
  const RoutineModel& get(Prim p, unsigned limb_bits) const;

  /// Predicted cycles for one primitive invocation.  Throws
  /// std::out_of_range for an uncharacterized routine.
  double cycles(Prim p, std::size_t n, std::size_t m, unsigned limb_bits) const;

  /// Multi-line summary: routine, model formula, R^2, MAE%.
  std::string describe() const;

  /// Text serialization — characterization is a one-time cost per hardware
  /// configuration, so model sets can be persisted and reloaded.
  std::string serialize() const;
  static MacroModelSet deserialize(const std::string& text);

 private:
  std::map<std::pair<int, unsigned>, RoutineModel> models_;
};

}  // namespace wsp::macromodel
