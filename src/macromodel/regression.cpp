#include "macromodel/regression.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "support/stats.h"

namespace wsp::macromodel {

PolyModel::PolyModel(std::vector<Monomial> basis, std::vector<double> coeffs)
    : basis_(std::move(basis)), coeffs_(std::move(coeffs)) {
  if (basis_.size() != coeffs_.size()) {
    throw std::invalid_argument("PolyModel: basis/coeff size mismatch");
  }
}

double PolyModel::evaluate(const std::vector<double>& features) const {
  double total = 0.0;
  for (std::size_t t = 0; t < basis_.size(); ++t) {
    double term = coeffs_[t];
    for (std::size_t f = 0; f < basis_[t].size(); ++f) {
      for (unsigned e = 0; e < basis_[t][f]; ++e) {
        term *= f < features.size() ? features[f] : 0.0;
      }
    }
    total += term;
  }
  return total;
}

std::string PolyModel::to_string(const std::vector<std::string>& names) const {
  std::ostringstream os;
  os.precision(4);
  for (std::size_t t = 0; t < basis_.size(); ++t) {
    if (t) os << " + ";
    os << coeffs_[t];
    for (std::size_t f = 0; f < basis_[t].size(); ++f) {
      for (unsigned e = 0; e < basis_[t][f]; ++e) {
        os << "*" << (f < names.size() ? names[f] : "x" + std::to_string(f));
      }
    }
  }
  return os.str();
}

PolyModel fit(const std::vector<std::vector<double>>& features,
              const std::vector<double>& cycles,
              const std::vector<Monomial>& basis, FitQuality* quality) {
  if (features.size() != cycles.size() || features.empty()) {
    throw std::invalid_argument("fit: bad sample dimensions");
  }
  std::vector<std::vector<double>> X;
  X.reserve(features.size());
  for (const auto& fv : features) {
    std::vector<double> row;
    row.reserve(basis.size());
    for (const auto& mono : basis) {
      double v = 1.0;
      for (std::size_t f = 0; f < mono.size(); ++f) {
        for (unsigned e = 0; e < mono[f]; ++e) {
          v *= f < fv.size() ? fv[f] : 0.0;
        }
      }
      row.push_back(v);
    }
    X.push_back(std::move(row));
  }
  PolyModel model(basis, least_squares(X, cycles));
  if (quality) {
    std::vector<double> predicted;
    predicted.reserve(features.size());
    for (const auto& fv : features) predicted.push_back(model.evaluate(fv));
    quality->r2 = r_squared(predicted, cycles);
    quality->mae_pct = mean_abs_pct_error(predicted, cycles);
    quality->samples = features.size();
  }
  return model;
}

}  // namespace wsp::macromodel
