// Statistical regression for performance macro-models (paper Sec. 3.2).
//
// A macro-model expresses the cycle count of a library routine as a
// polynomial in parameters of its inputs (here: operand sizes in limbs).
// Our stand-in for the paper's S-PLUS flow is ordinary least squares over a
// caller-chosen monomial basis, with R^2 and mean-absolute-percentage-error
// quality metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wsp::macromodel {

/// One monomial basis term: product over features of feature^exponent.
/// E.g. with features (n, m): {0,0} = 1, {1,0} = n, {2,0} = n^2, {1,1} = n*m.
using Monomial = std::vector<unsigned>;

/// A fitted polynomial model over a feature vector.
class PolyModel {
 public:
  PolyModel() = default;
  PolyModel(std::vector<Monomial> basis, std::vector<double> coeffs);

  double evaluate(const std::vector<double>& features) const;

  const std::vector<Monomial>& basis() const { return basis_; }
  const std::vector<double>& coeffs() const { return coeffs_; }

  /// Human-readable form, e.g. "12.0 + 15.3*n".
  std::string to_string(const std::vector<std::string>& feature_names) const;

 private:
  std::vector<Monomial> basis_;
  std::vector<double> coeffs_;
};

struct FitQuality {
  double r2 = 0.0;
  double mae_pct = 0.0;
  std::size_t samples = 0;
};

/// Least-squares fit of `cycles` over the monomial basis of `features`.
/// Throws std::invalid_argument on dimension mismatch.
PolyModel fit(const std::vector<std::vector<double>>& features,
              const std::vector<double>& cycles,
              const std::vector<Monomial>& basis, FitQuality* quality = nullptr);

}  // namespace wsp::macromodel
