#include "mp/barrett.h"

namespace wsp {

template class Barrett<std::uint16_t>;
template class Barrett<std::uint32_t>;

}  // namespace wsp
