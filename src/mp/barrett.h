// Barrett reduction context — one of the paper's five candidate modular
// multiplication algorithms.  Precomputes mu = floor(B^(2k) / m) once per
// modulus and then reduces 2k-limb products with three truncated
// multiplications and at most two final subtractions (HAC Algorithm 14.42).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mp/cost.h"
#include "mp/mpn.h"

namespace wsp {

template <typename L>
class Barrett {
 public:
  static constexpr int kBits = mpn::LimbTraits<L>::bits;

  explicit Barrett(std::vector<L> modulus, CostHook* hook = nullptr)
      : m_(std::move(modulus)), hook_(hook) {
    m_.resize(mpn::normalize(m_.data(), m_.size()));
    if (m_.empty()) throw std::invalid_argument("Barrett: zero modulus");
    const std::size_t k = m_.size();
    // mu = floor(B^(2k) / m): divide a 2k+1-limb power of B by m.
    std::vector<L> b2k(2 * k + 1, 0);
    b2k[2 * k] = 1;
    mu_.assign(2 * k + 1 - k + 1, 0);
    std::vector<L> rem(k, 0);
    mpn::divrem(mu_.data(), rem.data(), b2k.data(), b2k.size(), m_.data(), k);
    note_divrem(hook_, b2k.size(), k, static_cast<unsigned>(kBits));
    mu_.resize(mpn::normalize(mu_.data(), mu_.size()));
  }

  std::size_t limbs() const { return m_.size(); }
  const std::vector<L>& modulus() const { return m_; }
  /// The precomputed constant mu = floor(B^(2k) / m).
  const std::vector<L>& mu() const { return mu_; }
  void set_hook(CostHook* hook) { hook_ = hook; }

  /// r = x mod m where x has at most 2k limbs.  r gets k limbs.
  void reduce(std::vector<L>& r, const std::vector<L>& x) const {
    const std::size_t k = m_.size();
    std::vector<L> xx(2 * k, 0);
    for (std::size_t i = 0; i < x.size() && i < 2 * k; ++i) xx[i] = x[i];

    // q1 = floor(x / B^(k-1)) — k+1 limbs.
    std::vector<L> q1(xx.begin() + static_cast<std::ptrdiff_t>(k - 1), xx.end());
    // q2 = q1 * mu.
    std::vector<L> q2(q1.size() + mu_.size(), 0);
    mpn::mul(q2.data(), q1.data(), q1.size(), mu_.data(), mu_.size());
    for (std::size_t j = 0; j < mu_.size(); ++j) note(Prim::kAddMul1, q1.size());
    // q3 = floor(q2 / B^(k+1)).
    std::vector<L> q3;
    if (q2.size() > k + 1) {
      q3.assign(q2.begin() + static_cast<std::ptrdiff_t>(k + 1), q2.end());
    }
    q3.resize(k + 1, 0);

    // r1 = x mod B^(k+1); r2 = (q3 * m) mod B^(k+1).
    std::vector<L> r1(xx.begin(), xx.begin() + static_cast<std::ptrdiff_t>(k + 1));
    std::vector<L> prod(q3.size() + k, 0);
    mpn::mul(prod.data(), q3.data(), q3.size(), m_.data(), k);
    for (std::size_t j = 0; j < k; ++j) note(Prim::kAddMul1, q3.size());
    std::vector<L> r2(prod.begin(), prod.begin() + static_cast<std::ptrdiff_t>(k + 1));

    // r = r1 - r2 (mod B^(k+1)); the true remainder is < 3m so the wrap, if
    // any, is corrected by the subtraction loop below.
    std::vector<L> rr(k + 1);
    mpn::sub_n(rr.data(), r1.data(), r2.data(), k + 1);
    note(Prim::kSubN, k + 1);

    // At most two subtractions of m.
    std::vector<L> mk(k + 1, 0);
    for (std::size_t i = 0; i < k; ++i) mk[i] = m_[i];
    int guard = 0;
    while (mpn::cmp2(rr.data(), rr.size(), mk.data(), mk.size()) >= 0) {
      mpn::sub_n(rr.data(), rr.data(), mk.data(), k + 1);
      note(Prim::kSubN, k + 1);
      if (++guard > 3) throw std::logic_error("Barrett: correction diverged");
    }
    note(Prim::kCmp, k);
    r.assign(rr.begin(), rr.begin() + static_cast<std::ptrdiff_t>(k));
  }

  /// r = (a * b) mod m for k-limb a, b.
  void mulmod(std::vector<L>& r, const std::vector<L>& a,
              const std::vector<L>& b) const {
    const std::size_t k = m_.size();
    std::vector<L> prod(2 * k, 0);
    mpn::mul(prod.data(), a.data(), k, b.data(), k);
    for (std::size_t j = 0; j < k; ++j) note(Prim::kAddMul1, k);
    reduce(r, prod);
  }

 private:
  void note(Prim p, std::size_t n, std::size_t m = 0) const {
    if (hook_) hook_->on_prim(p, n, m, static_cast<unsigned>(kBits));
  }

  std::vector<L> m_;
  std::vector<L> mu_;
  CostHook* hook_ = nullptr;
};

}  // namespace wsp
