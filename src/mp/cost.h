// Primitive-call instrumentation hook.
//
// The paper's algorithm-exploration phase (Sec. 3.2) replaces ISS runs with
// native execution in which every library-routine call site is augmented
// with its performance macro-model.  We realize the same idea with a hook:
// the modular-arithmetic contexts report every mpn primitive invocation
// (routine id + input sizes + radix), and the explorer sums macro-model
// cycle estimates over the stream while the algorithm itself runs natively.
#pragma once

#include <cstddef>

namespace wsp {

/// Identifiers for the characterized mpn library routines.
enum class Prim {
  kAddN,
  kSubN,
  kAdd1,
  kSub1,
  kMul1,
  kAddMul1,
  kSubMul1,
  kDivrem,
  kLshift,
  kRshift,
  kCmp,
  kDiv2by1,  ///< one 64/32 software division step (qhat estimation)
  kCount,
};

const char* prim_name(Prim p);

/// Receives one event per primitive call made by an instrumented algorithm.
class CostHook {
 public:
  virtual ~CostHook() = default;

  /// `n` is the primary operand size in limbs; `m` a secondary size
  /// (divisor limbs for kDivrem, 0 otherwise); `limb_bits` is 16 or 32.
  virtual void on_prim(Prim p, std::size_t n, std::size_t m, unsigned limb_bits) = 0;
};

/// Convenience: emits one event if the hook is non-null.
inline void note_prim(CostHook* hook, Prim p, std::size_t n, std::size_t m,
                      unsigned limb_bits) {
  if (hook) hook->on_prim(p, n, m, limb_bits);
}

/// Emits the primitive-event decomposition of a Knuth-D division of a
/// un-limb dividend by a dn-limb divisor: one normalization shift pass each
/// way plus one submul_1 sweep per quotient limb.
inline void note_divrem(CostHook* hook, std::size_t un, std::size_t dn,
                        unsigned limb_bits) {
  if (!hook || un < dn) return;
  hook->on_prim(Prim::kLshift, un, 0, limb_bits);
  for (std::size_t i = 0; i + dn <= un; ++i) {
    hook->on_prim(Prim::kDiv2by1, 1, 0, limb_bits);
    hook->on_prim(Prim::kSubMul1, dn, 0, limb_bits);
  }
  hook->on_prim(Prim::kRshift, dn, 0, limb_bits);
}

/// Emits the primitive-event decomposition of an n x n limb product as
/// performed by mpn::mul (Karatsuba above the threshold, schoolbook below).
inline void note_mul_square_events(CostHook* hook, std::size_t n,
                                   std::size_t karatsuba_threshold,
                                   unsigned limb_bits) {
  if (!hook) return;
  if (n < karatsuba_threshold || (n & 1)) {
    for (std::size_t j = 0; j < n; ++j) hook->on_prim(Prim::kAddMul1, n, 0, limb_bits);
    return;
  }
  const std::size_t h = n / 2;
  note_mul_square_events(hook, h, karatsuba_threshold, limb_bits);  // z0
  note_mul_square_events(hook, h, karatsuba_threshold, limb_bits);  // z2
  // (a0+a1)(b0+b1) is (h+1)x(h+1) schoolbook in our implementation.
  for (std::size_t j = 0; j < h + 1; ++j) hook->on_prim(Prim::kAddMul1, h + 1, 0, limb_bits);
  hook->on_prim(Prim::kAddN, h, 0, limb_bits);   // asum
  hook->on_prim(Prim::kAddN, h, 0, limb_bits);   // bsum
  hook->on_prim(Prim::kSubN, 2 * h, 0, limb_bits);  // zm -= z0
  hook->on_prim(Prim::kSubN, 2 * h, 0, limb_bits);  // zm -= z2
  hook->on_prim(Prim::kAddN, 2 * h, 0, limb_bits);  // assemble middle
}

/// Emits events for a plain schoolbook an x bn product.
inline void note_mul_basecase(CostHook* hook, std::size_t an, std::size_t bn,
                              unsigned limb_bits) {
  if (!hook) return;
  for (std::size_t j = 0; j < bn; ++j) hook->on_prim(Prim::kAddMul1, an, 0, limb_bits);
}

inline const char* prim_name(Prim p) {
  switch (p) {
    case Prim::kAddN: return "mpn_add_n";
    case Prim::kSubN: return "mpn_sub_n";
    case Prim::kAdd1: return "mpn_add_1";
    case Prim::kSub1: return "mpn_sub_1";
    case Prim::kMul1: return "mpn_mul_1";
    case Prim::kAddMul1: return "mpn_addmul_1";
    case Prim::kSubMul1: return "mpn_submul_1";
    case Prim::kDivrem: return "mpn_divrem";
    case Prim::kLshift: return "mpn_lshift";
    case Prim::kRshift: return "mpn_rshift";
    case Prim::kCmp: return "mpn_cmp";
    case Prim::kDiv2by1: return "div_2by1";
    case Prim::kCount: break;
  }
  return "?";
}

}  // namespace wsp
