#include "mp/crt.h"

namespace wsp {

Mpz crt_combine_textbook(const Mpz& mp, const Mpz& mq, const CrtKey& key) {
  const Mpz n = key.p * key.q;
  return (mp * key.cp + mq * key.cq).mod(n);
}

Mpz crt_combine_garner(const Mpz& mp, const Mpz& mq, const CrtKey& key) {
  const Mpz h = (key.qinv_p * (mp - mq)).mod(key.p);
  return mq + h * key.q;
}

}  // namespace wsp
