// Chinese Remainder Theorem recombination — the "three CRT implementations"
// axis of the paper's design space: none (direct exponentiation), textbook
// recombination, and Garner's algorithm.
#pragma once

#include "mp/modexp.h"
#include "mp/mpz.h"

namespace wsp {

/// Textbook CRT: m = (mp * cp + mq * cq) mod (p*q), where cp and cq are the
/// precomputed CRT coefficients in `key`.
Mpz crt_combine_textbook(const Mpz& mp, const Mpz& mq, const CrtKey& key);

/// Garner's algorithm: h = qinv * (mp - mq) mod p;  m = mq + h*q.
/// Avoids the full-width reduction of the textbook method.
Mpz crt_combine_garner(const Mpz& mp, const Mpz& mq, const CrtKey& key);

}  // namespace wsp
