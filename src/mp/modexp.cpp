#include "mp/modexp.h"

#include "mp/crt.h"

#include <sstream>

namespace wsp {

const char* to_string(MulAlgo a) {
  switch (a) {
    case MulAlgo::kBasecaseDiv: return "basecase+div";
    case MulAlgo::kKaratsubaDiv: return "karatsuba+div";
    case MulAlgo::kBarrett: return "barrett";
    case MulAlgo::kMontSOS: return "mont-sos";
    case MulAlgo::kMontCIOS: return "mont-cios";
  }
  return "?";
}

const char* to_string(CrtMode c) {
  switch (c) {
    case CrtMode::kNone: return "no-crt";
    case CrtMode::kTextbook: return "crt-textbook";
    case CrtMode::kGarner: return "crt-garner";
  }
  return "?";
}

const char* to_string(Radix r) {
  return r == Radix::k16 ? "radix16" : "radix32";
}

const char* to_string(Caching c) {
  switch (c) {
    case Caching::kNone: return "cache-none";
    case Caching::kContext: return "cache-ctx";
    case Caching::kFull: return "cache-full";
  }
  return "?";
}

std::string ModexpConfig::name() const {
  std::ostringstream os;
  os << to_string(mul) << "/w" << window_bits << "/" << to_string(crt) << "/"
     << to_string(radix) << "/" << to_string(caching);
  return os.str();
}

CrtKey CrtKey::derive(const Mpz& p, const Mpz& q, const Mpz& d) {
  CrtKey k;
  k.p = p;
  k.q = q;
  k.dp = d % (p - Mpz(1));
  k.dq = d % (q - Mpz(1));
  k.qinv_p = Mpz::invmod(q, p);
  const Mpz n = p * q;
  k.cp = (q * Mpz::invmod(q, p)).mod(n);
  k.cq = (p * Mpz::invmod(p, q)).mod(n);
  return k;
}

namespace {

template <typename L>
std::vector<L> to_limbs(const Mpz& x, std::size_t k) {
  const std::vector<std::uint32_t>& src = x.limbs();
  std::vector<L> out(k, 0);
  if constexpr (sizeof(L) == 4) {
    for (std::size_t i = 0; i < src.size() && i < k; ++i) out[i] = src[i];
  } else {
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (2 * i < k) out[2 * i] = static_cast<L>(src[i]);
      if (2 * i + 1 < k) out[2 * i + 1] = static_cast<L>(src[i] >> 16);
    }
  }
  return out;
}

template <typename L>
Mpz from_limbs(const std::vector<L>& v) {
  std::vector<std::uint8_t> le(v.size() * sizeof(L));
  mpn::to_bytes_le(v.data(), v.size(), le.data(), le.size());
  std::vector<std::uint8_t> be(le.rbegin(), le.rend());
  return Mpz::from_bytes_be(be);
}

std::string cache_key(const Mpz& a) { return a.to_hex(); }
std::string cache_key(const Mpz& a, const Mpz& b) {
  return a.to_hex() + "|" + b.to_hex();
}

}  // namespace

struct ModexpEngine::Caches {
  template <typename L>
  struct Typed {
    std::map<std::string, std::unique_ptr<Mont<L>>> mont;
    std::map<std::string, std::unique_ptr<Barrett<L>>> barrett;
    std::map<std::string, std::vector<std::vector<L>>> powers;
  };
  Typed<std::uint16_t> t16;
  Typed<std::uint32_t> t32;

  template <typename L>
  Typed<L>& get() {
    if constexpr (sizeof(L) == 2) {
      return t16;
    } else {
      return t32;
    }
  }
};

ModexpEngine::ModexpEngine(ModexpConfig cfg, CostHook* hook)
    : cfg_(cfg), hook_(hook), caches_(std::make_unique<Caches>()) {
  if (cfg_.window_bits < 1 || cfg_.window_bits > 5) {
    throw std::invalid_argument("ModexpEngine: window_bits must be 1..5");
  }
}

ModexpEngine::~ModexpEngine() = default;

void ModexpEngine::clear_caches() { caches_ = std::make_unique<Caches>(); }

Mpz ModexpEngine::powm(const Mpz& base, const Mpz& exp, const Mpz& modulus) {
  if (modulus.is_zero()) throw std::domain_error("ModexpEngine::powm: zero modulus");
  if (modulus == Mpz(1)) return Mpz();
  if (exp.is_zero()) return Mpz(1);
  if (cfg_.radix == Radix::k16) return powm_impl<std::uint16_t>(base, exp, modulus);
  return powm_impl<std::uint32_t>(base, exp, modulus);
}

template <typename L>
Mpz ModexpEngine::powm_impl(const Mpz& base, const Mpz& exp, const Mpz& modulus) {
  constexpr unsigned kBits = mpn::LimbTraits<L>::bits;
  const std::size_t k = (modulus.bit_length() + kBits - 1) / kBits;
  const std::vector<L> mod_l = to_limbs<L>(modulus, k);
  const Mpz base_red = base.mod(modulus);

  const bool is_mont = cfg_.mul == MulAlgo::kMontSOS || cfg_.mul == MulAlgo::kMontCIOS;
  const MontVariant mont_variant =
      cfg_.mul == MulAlgo::kMontSOS ? MontVariant::kSOS : MontVariant::kCIOS;
  if (is_mont && modulus.is_even()) {
    throw std::invalid_argument("ModexpEngine: Montgomery requires odd modulus");
  }

  auto& typed = caches_->get<L>();
  const std::string mkey = cache_key(modulus);

  // --- obtain the reduction context (the "cached constants" axis) ---------
  Mont<L>* mont = nullptr;
  Barrett<L>* barrett = nullptr;
  std::unique_ptr<Mont<L>> mont_local;
  std::unique_ptr<Barrett<L>> barrett_local;
  const bool cache_ctx = cfg_.caching != Caching::kNone;
  if (is_mont) {
    if (cache_ctx) {
      auto it = typed.mont.find(mkey);
      if (it == typed.mont.end()) {
        it = typed.mont.emplace(mkey, std::make_unique<Mont<L>>(mod_l, hook_)).first;
      }
      mont = it->second.get();
    } else {
      mont_local = std::make_unique<Mont<L>>(mod_l, hook_);
      mont = mont_local.get();
    }
    mont->set_hook(hook_);
  } else if (cfg_.mul == MulAlgo::kBarrett) {
    if (cache_ctx) {
      auto it = typed.barrett.find(mkey);
      if (it == typed.barrett.end()) {
        it = typed.barrett.emplace(mkey, std::make_unique<Barrett<L>>(mod_l, hook_)).first;
      }
      barrett = it->second.get();
    } else {
      barrett_local = std::make_unique<Barrett<L>>(mod_l, hook_);
      barrett = barrett_local.get();
    }
    barrett->set_hook(hook_);
  }

  // --- modular multiply for the configured algorithm ----------------------
  const bool use_karatsuba = cfg_.mul == MulAlgo::kKaratsubaDiv;
  auto modmul = [&](std::vector<L>& r, const std::vector<L>& a,
                    const std::vector<L>& b) {
    if (is_mont) {
      mont->mul(r, a, b, mont_variant);
      return;
    }
    if (barrett) {
      barrett->mulmod(r, a, b);
      return;
    }
    // Multiplication followed by division-based reduction.
    std::vector<L> prod(2 * k, 0);
    if (use_karatsuba && k >= mpn::kKaratsubaThreshold && (k % 2) == 0) {
      mpn::mul_karatsuba(prod.data(), a.data(), b.data(), k);
      note_mul_square_events(hook_, k, mpn::kKaratsubaThreshold, kBits);
    } else {
      mpn::mul_basecase(prod.data(), a.data(), k, b.data(), k);
      note_mul_basecase(hook_, k, k, kBits);
    }
    std::vector<L> quot(2 * k - k + 1, 0), rem(k, 0);
    mpn::divrem(quot.data(), rem.data(), prod.data(), 2 * k, mod_l.data(), k);
    note_divrem(hook_, 2 * k, k, kBits);
    r = std::move(rem);
  };

  // --- domain entry --------------------------------------------------------
  std::vector<L> g = to_limbs<L>(base_red, k);
  std::vector<L> identity;
  if (is_mont) {
    g = mont->to_mont(g, mont_variant);
    std::vector<L> one(k, 0);
    one[0] = 1;
    identity = mont->to_mont(one, mont_variant);
  } else {
    identity.assign(k, 0);
    identity[0] = 1;
  }

  // --- power table (m-ary method; the "input block size" axis) ------------
  const unsigned w = cfg_.window_bits;
  const std::size_t table_size = std::size_t{1} << w;
  std::vector<std::vector<L>>* table = nullptr;
  std::vector<std::vector<L>> table_local;
  const std::string pkey = cache_key(base_red, modulus) + "/" + cfg_.name();
  const bool cache_pow = cfg_.caching == Caching::kFull;
  bool build = true;
  if (cache_pow) {
    auto [it, inserted] = typed.powers.try_emplace(pkey);
    table = &it->second;
    build = inserted;
  } else {
    table = &table_local;
  }
  if (build) {
    table->assign(table_size, identity);
    if (table_size > 1) (*table)[1] = g;
    for (std::size_t i = 2; i < table_size; ++i) {
      modmul((*table)[i], (*table)[i - 1], g);
    }
  }

  // --- left-to-right m-ary exponentiation ----------------------------------
  const std::size_t nbits = exp.bit_length();
  const std::size_t nblocks = (nbits + w - 1) / w;
  std::vector<L> result = identity;
  bool started = false;
  std::vector<L> tmp(k);
  for (std::size_t blk = nblocks; blk-- > 0;) {
    const std::size_t pos = blk * w;
    const unsigned width =
        static_cast<unsigned>(std::min<std::size_t>(w, nbits - pos));
    if (started) {
      for (unsigned s = 0; s < width; ++s) {
        modmul(tmp, result, result);
        result.swap(tmp);
      }
    }
    const std::uint32_t val = exp.bits(pos, width);
    if (val != 0) {
      if (!started) {
        result = (*table)[val];
        started = true;
      } else {
        modmul(tmp, result, (*table)[val]);
        result.swap(tmp);
      }
    }
  }

  if (is_mont) result = mont->from_mont(result, mont_variant);
  return from_limbs<L>(result);
}

Mpz ModexpEngine::powm_crt(const Mpz& base, const Mpz& d, const CrtKey& key) {
  const unsigned bits = cfg_.radix == Radix::k16 ? 16u : 32u;
  const Mpz n = key.p * key.q;
  switch (cfg_.crt) {
    case CrtMode::kNone:
      return powm(base, d, n);
    case CrtMode::kTextbook: {
      const Mpz mp = powm(base, key.dp, key.p);
      const Mpz mq = powm(base, key.dq, key.q);
      // m = (mp*cp + mq*cq) mod n.
      const std::size_t kl = (n.bit_length() + bits - 1) / bits;
      note_mul_basecase(hook_, kl, kl / 2, bits);
      note_mul_basecase(hook_, kl, kl / 2, bits);
      note_prim(hook_, Prim::kAddN, 2 * kl, 0, bits);
      note_divrem(hook_, 2 * kl, kl, bits);
      return crt_combine_textbook(mp, mq, key);
    }
    case CrtMode::kGarner: {
      const Mpz mp = powm(base, key.dp, key.p);
      const Mpz mq = powm(base, key.dq, key.q);
      // h = qinv * (mp - mq) mod p;  m = mq + h*q.
      const std::size_t kl = (key.p.bit_length() + bits - 1) / bits;
      note_mul_basecase(hook_, kl, kl, bits);
      note_divrem(hook_, 2 * kl, kl, bits);
      note_mul_basecase(hook_, kl, kl, bits);
      note_prim(hook_, Prim::kAddN, kl, 0, bits);
      return crt_combine_garner(mp, mq, key);
    }
  }
  throw std::logic_error("ModexpEngine::powm_crt: bad CRT mode");
}

std::vector<ModexpConfig> all_modexp_configs() {
  std::vector<ModexpConfig> out;
  out.reserve(450);
  for (MulAlgo mul : {MulAlgo::kBasecaseDiv, MulAlgo::kKaratsubaDiv,
                      MulAlgo::kBarrett, MulAlgo::kMontSOS, MulAlgo::kMontCIOS}) {
    for (unsigned w = 1; w <= 5; ++w) {
      for (CrtMode crt : {CrtMode::kNone, CrtMode::kTextbook, CrtMode::kGarner}) {
        for (Radix radix : {Radix::k16, Radix::k32}) {
          for (Caching caching : {Caching::kNone, Caching::kContext, Caching::kFull}) {
            out.push_back(ModexpConfig{mul, w, crt, radix, caching});
          }
        }
      }
    }
  }
  return out;
}

}  // namespace wsp
