// Parameterized modular exponentiation — the algorithm design space of the
// paper's Sec. 4.3.
//
// The paper explores "over 450 candidate algorithms ... from five modular
// multiplication algorithms, five input block sizes, three Chinese Remainder
// Theorem implementations, two radix sizes and three different software
// caching options" (5 x 5 x 3 x 2 x 3 = 450).  This engine implements every
// point in that space as a correct, runnable configuration:
//
//   * MulAlgo   — schoolbook multiply + division reduction, Karatsuba
//                 multiply + division reduction, Barrett, Montgomery SOS,
//                 Montgomery CIOS;
//   * window    — exponent processed in blocks of 1..5 bits (m-ary method);
//   * CrtMode   — no CRT, textbook CRT recombination, Garner recombination;
//   * Radix     — 16-bit or 32-bit limbs;
//   * Caching   — nothing cached, per-modulus context cached (Montgomery
//                 R^2 / n0', Barrett mu), or context + power table cached.
//
// Every configuration produces identical numeric results (tested against
// Mpz::powm); they differ only in the primitive-operation stream, which the
// CostHook observes for macro-model-based performance estimation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "mp/barrett.h"
#include "mp/cost.h"
#include "mp/montgomery.h"
#include "mp/mpz.h"

namespace wsp {

enum class MulAlgo { kBasecaseDiv, kKaratsubaDiv, kBarrett, kMontSOS, kMontCIOS };
enum class CrtMode { kNone, kTextbook, kGarner };
enum class Radix { k16, k32 };
enum class Caching { kNone, kContext, kFull };

struct ModexpConfig {
  MulAlgo mul = MulAlgo::kMontCIOS;
  unsigned window_bits = 4;  ///< exponent block size, 1..5
  CrtMode crt = CrtMode::kNone;
  Radix radix = Radix::k32;
  Caching caching = Caching::kNone;

  std::string name() const;
};

const char* to_string(MulAlgo a);
const char* to_string(CrtMode c);
const char* to_string(Radix r);
const char* to_string(Caching c);

/// Private-key material needed by the CRT configurations.
struct CrtKey {
  Mpz p, q;        ///< prime factors of the modulus
  Mpz dp, dq;      ///< d mod (p-1), d mod (q-1)
  Mpz qinv_p;      ///< q^{-1} mod p (Garner)
  Mpz cp, cq;      ///< textbook CRT coefficients: q*(q^{-1} mod p), p*(p^{-1} mod q)

  /// Derives all coefficients from (p, q, d).
  static CrtKey derive(const Mpz& p, const Mpz& q, const Mpz& d);
};

/// Modular exponentiation engine for one configuration.  Holds the software
/// caches, so reusing one engine across calls models a session (the caching
/// axis); a fresh engine per call models a cold start.
class ModexpEngine {
 public:
  explicit ModexpEngine(ModexpConfig cfg, CostHook* hook = nullptr);
  ~ModexpEngine();

  ModexpEngine(const ModexpEngine&) = delete;
  ModexpEngine& operator=(const ModexpEngine&) = delete;

  const ModexpConfig& config() const { return cfg_; }
  void set_hook(CostHook* hook) { hook_ = hook; }

  /// base^exp mod modulus, ignoring the CRT axis (used for public-key ops
  /// and as the per-prime step of the CRT paths).  Montgomery variants
  /// require an odd modulus.
  Mpz powm(const Mpz& base, const Mpz& exp, const Mpz& modulus);

  /// base^d mod (p*q) using the configured CRT mode.  With CrtMode::kNone
  /// this is powm(base, d, p*q).
  Mpz powm_crt(const Mpz& base, const Mpz& d, const CrtKey& key);

  /// Clears all software caches (forces cold-start behaviour).
  void clear_caches();

 private:
  template <typename L>
  Mpz powm_impl(const Mpz& base, const Mpz& exp, const Mpz& modulus);

  ModexpConfig cfg_;
  CostHook* hook_ = nullptr;

  struct Caches;
  std::unique_ptr<Caches> caches_;
};

/// Enumerates all 450 configurations in the paper's order of axes.
std::vector<ModexpConfig> all_modexp_configs();

}  // namespace wsp
