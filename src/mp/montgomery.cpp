#include "mp/montgomery.h"

namespace wsp {

// Explicit instantiation for both radix options so template errors surface
// at library build time rather than in every client.
template class Mont<std::uint16_t>;
template class Mont<std::uint32_t>;

}  // namespace wsp
