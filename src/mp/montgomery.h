// Montgomery modular multiplication contexts.
//
// Two of the paper's five candidate modular-multiplication algorithms are
// Montgomery variants; we implement SOS (separated operand scanning: full
// product followed by Montgomery reduction) and CIOS (coarsely integrated
// operand scanning), plus FIOS as an extension used in ablations.
// All variants are templated on the limb type to cover both radix options.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mp/cost.h"
#include "mp/mpn.h"

namespace wsp {

enum class MontVariant { kSOS, kCIOS, kFIOS };

/// Montgomery context for an odd modulus of `n` limbs.
/// Values inside the Montgomery domain are n-limb vectors < modulus.
template <typename L>
class Mont {
 public:
  using W = typename mpn::LimbTraits<L>::Wide;
  static constexpr int kBits = mpn::LimbTraits<L>::bits;

  /// Builds the context: computes n0' = -n^{-1} mod B and R^2 mod n.
  /// Throws std::invalid_argument for an even or zero modulus.
  explicit Mont(std::vector<L> modulus, CostHook* hook = nullptr)
      : n_(std::move(modulus)), hook_(hook) {
    n_.resize(mpn::normalize(n_.data(), n_.size()));
    if (n_.empty() || (n_[0] & 1) == 0) {
      throw std::invalid_argument("Mont: modulus must be odd and non-zero");
    }
    // Newton iteration for the inverse of n mod B (widened arithmetic: the
    // narrow limb type would promote to int and overflow).
    W inv = 1;
    for (int i = 0; i < 6; ++i) {  // 2^6 = 64 >= limb bits; converges quadratically
      inv = inv * (2 - static_cast<W>(n_[0]) * inv);
    }
    n0inv_ = static_cast<L>(0) - static_cast<L>(inv);  // -n^{-1} mod B

    // R^2 mod n by 2*n*kBits doublings of 1 (context setup; counted by the
    // caching axis of the design space, not the per-multiplication cost).
    const std::size_t nn = n_.size();
    std::vector<L> acc(nn, 0);
    acc[0] = 1;
    reduce_once(acc);
    for (std::size_t i = 0; i < 2 * nn * static_cast<std::size_t>(kBits); ++i) {
      // acc = 2*acc mod n
      const L carry = mpn::lshift(acc.data(), acc.data(), nn, 1);
      note(Prim::kLshift, nn);
      if (carry || mpn::cmp(acc.data(), n_.data(), nn) >= 0) {
        mpn::sub_n(acc.data(), acc.data(), n_.data(), nn);
        note(Prim::kSubN, nn);
      }
      note(Prim::kCmp, nn);
    }
    r2_ = std::move(acc);
  }

  std::size_t limbs() const { return n_.size(); }
  const std::vector<L>& modulus() const { return n_; }
  L n0inv() const { return n0inv_; }
  const std::vector<L>& r2() const { return r2_; }
  void set_hook(CostHook* hook) { hook_ = hook; }

  /// rp = a * b * R^{-1} mod n, all n-limb Montgomery-domain values.
  void mul(std::vector<L>& rp, const std::vector<L>& a, const std::vector<L>& b,
           MontVariant v) const {
    switch (v) {
      case MontVariant::kSOS: mul_sos(rp, a, b); break;
      case MontVariant::kCIOS: mul_cios(rp, a, b); break;
      case MontVariant::kFIOS: mul_fios(rp, a, b); break;
    }
  }

  /// Converts into the Montgomery domain: a*R mod n.
  std::vector<L> to_mont(const std::vector<L>& a, MontVariant v) const {
    std::vector<L> r(n_.size());
    mul(r, a, r2_, v);
    return r;
  }

  /// Converts out of the Montgomery domain: a*R^{-1} mod n.
  std::vector<L> from_mont(const std::vector<L>& a, MontVariant v) const {
    std::vector<L> one(n_.size(), 0);
    one[0] = 1;
    std::vector<L> r(n_.size());
    mul(r, a, one, v);
    return r;
  }

 private:
  void note(Prim p, std::size_t n, std::size_t m = 0) const {
    if (hook_) hook_->on_prim(p, n, m, static_cast<unsigned>(kBits));
  }

  // acc (n limbs) reduced mod n in place (acc may be >= n but < 2^(n*kBits)).
  void reduce_once(std::vector<L>& acc) const {
    if (mpn::cmp(acc.data(), n_.data(), n_.size()) >= 0) {
      mpn::sub_n(acc.data(), acc.data(), n_.data(), n_.size());
    }
  }

  // SOS: t = a*b, then n Montgomery reduction sweeps, then conditional sub.
  void mul_sos(std::vector<L>& rp, const std::vector<L>& a,
               const std::vector<L>& b) const {
    const std::size_t nn = n_.size();
    std::vector<L> t(2 * nn + 1, 0);
    for (std::size_t j = 0; j < nn; ++j) {
      t[nn + j] = mpn::addmul_1(t.data() + j, a.data(), nn, b[j]);
      note(Prim::kAddMul1, nn);
    }
    for (std::size_t i = 0; i < nn; ++i) {
      const L m = static_cast<L>(t[i] * n0inv_);
      const L carry = mpn::addmul_1(t.data() + i, n_.data(), nn, m);
      note(Prim::kAddMul1, nn);
      // Propagate the carry limb into the upper part.
      mpn::add_1(t.data() + i + nn, t.data() + i + nn, nn + 1 - i, carry);
      note(Prim::kAdd1, nn - i);
    }
    rp.assign(t.begin() + static_cast<std::ptrdiff_t>(nn),
              t.begin() + static_cast<std::ptrdiff_t>(2 * nn));
    if (t[2 * nn] || mpn::cmp(rp.data(), n_.data(), nn) >= 0) {
      mpn::sub_n(rp.data(), rp.data(), n_.data(), nn);
      note(Prim::kSubN, nn);
    }
    note(Prim::kCmp, nn);
  }

  // CIOS: alternate one multiplication sweep and one reduction sweep per
  // limb of b, keeping a short (n+2)-limb accumulator.
  void mul_cios(std::vector<L>& rp, const std::vector<L>& a,
                const std::vector<L>& b) const {
    const std::size_t nn = n_.size();
    std::vector<L> t(nn + 2, 0);
    for (std::size_t i = 0; i < nn; ++i) {
      // t += a * b[i]
      L carry = mpn::addmul_1(t.data(), a.data(), nn, b[i]);
      note(Prim::kAddMul1, nn);
      W s = static_cast<W>(t[nn]) + carry;
      t[nn] = static_cast<L>(s);
      t[nn + 1] = static_cast<L>(t[nn + 1] + static_cast<L>(s >> kBits));
      // t += m * n, then shift one limb.
      const L m = static_cast<L>(t[0] * n0inv_);
      carry = mpn::addmul_1(t.data(), n_.data(), nn, m);
      note(Prim::kAddMul1, nn);
      s = static_cast<W>(t[nn]) + carry;
      t[nn] = static_cast<L>(s);
      t[nn + 1] = static_cast<L>(t[nn + 1] + static_cast<L>(s >> kBits));
      // t[0] is now zero by construction of m; shift down.
      for (std::size_t k = 0; k < nn + 1; ++k) t[k] = t[k + 1];
      t[nn + 1] = 0;
    }
    rp.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(nn));
    if (t[nn] || mpn::cmp(rp.data(), n_.data(), nn) >= 0) {
      mpn::sub_n(rp.data(), rp.data(), n_.data(), nn);
      note(Prim::kSubN, nn);
    }
    note(Prim::kCmp, nn);
  }

  // FIOS: single fused pass per limb of b — multiplication and reduction
  // interleaved at limb granularity.
  void mul_fios(std::vector<L>& rp, const std::vector<L>& a,
                const std::vector<L>& b) const {
    const std::size_t nn = n_.size();
    std::vector<L> t(nn + 2, 0);
    for (std::size_t i = 0; i < nn; ++i) {
      // First column decides m for this sweep.
      W sum = static_cast<W>(t[0]) + static_cast<W>(a[0]) * b[i];
      const L m = static_cast<L>(static_cast<L>(sum) * n0inv_);
      W carry_ab = sum >> kBits;
      W lowfix = static_cast<W>(static_cast<L>(sum)) + static_cast<W>(n_[0]) * m;
      W carry_mn = lowfix >> kBits;
      for (std::size_t j = 1; j < nn; ++j) {
        const W v = static_cast<W>(t[j]) + static_cast<W>(a[j]) * b[i] + carry_ab;
        carry_ab = v >> kBits;
        const W w = static_cast<W>(static_cast<L>(v)) + static_cast<W>(n_[j]) * m + carry_mn;
        carry_mn = w >> kBits;
        t[j - 1] = static_cast<L>(w);
      }
      const W top = static_cast<W>(t[nn]) + carry_ab + carry_mn;
      t[nn - 1] = static_cast<L>(top);
      t[nn] = static_cast<L>(top >> kBits) + t[nn + 1];
      t[nn + 1] = 0;
      // Cost model: one fused sweep does the work of two addmul_1 passes.
      note(Prim::kAddMul1, nn);
      note(Prim::kAddMul1, nn);
    }
    rp.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(nn));
    if (t[nn] || mpn::cmp(rp.data(), n_.data(), nn) >= 0) {
      mpn::sub_n(rp.data(), rp.data(), n_.data(), nn);
      note(Prim::kSubN, nn);
    }
    note(Prim::kCmp, nn);
  }

  std::vector<L> n_;
  L n0inv_ = 0;
  std::vector<L> r2_;
  CostHook* hook_ = nullptr;
};

}  // namespace wsp
