#include "mp/mpn.h"

// Explicit instantiations of the multi-step mpn routines for both radix
// options, so that template errors surface once at library build time.

namespace wsp::mpn {

template void mul_karatsuba<std::uint16_t>(std::uint16_t*, const std::uint16_t*,
                                           const std::uint16_t*, std::size_t);
template void mul_karatsuba<std::uint32_t>(std::uint32_t*, const std::uint32_t*,
                                           const std::uint32_t*, std::size_t);

template void divrem<std::uint16_t>(std::uint16_t*, std::uint16_t*,
                                    const std::uint16_t*, std::size_t,
                                    const std::uint16_t*, std::size_t);
template void divrem<std::uint32_t>(std::uint32_t*, std::uint32_t*,
                                    const std::uint32_t*, std::size_t,
                                    const std::uint32_t*, std::size_t);

}  // namespace wsp::mpn
