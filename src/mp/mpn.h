// GMP-style low-level multi-precision kernels ("basic operations" layer of
// the paper's layered software architecture, Sec. 2.2).
//
// Numbers are arrays of limbs, least-significant limb first.  All routines
// are templated on the limb type so the same code runs at radix 2^16 and
// radix 2^32 — the "two radix sizes" axis of the paper's algorithm design
// space (Sec. 4.3).
//
// These routines deliberately mirror the GNU MP mpn API (mpn_add_n,
// mpn_addmul_1, ...) because those are exactly the routines the paper
// characterizes, macro-models, and accelerates with custom instructions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsp::mpn {

template <typename L>
struct LimbTraits;

template <>
struct LimbTraits<std::uint16_t> {
  using Wide = std::uint32_t;
  static constexpr int bits = 16;
};

template <>
struct LimbTraits<std::uint32_t> {
  using Wide = std::uint64_t;
  static constexpr int bits = 32;
};

/// Number of significant limbs (index of highest non-zero limb + 1).
template <typename L>
std::size_t normalize(const L* p, std::size_t n) {
  while (n > 0 && p[n - 1] == 0) --n;
  return n;
}

/// Lexicographic compare of two n-limb numbers: -1, 0, or +1.
template <typename L>
int cmp(const L* a, const L* b, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// Compare numbers of possibly different significant length.
template <typename L>
int cmp2(const L* a, std::size_t an, const L* b, std::size_t bn) {
  an = normalize(a, an);
  bn = normalize(b, bn);
  if (an != bn) return an < bn ? -1 : 1;
  return cmp(a, b, an);
}

/// rp[0..n) = a[0..n) + b[0..n); returns carry (0 or 1).
template <typename L>
L add_n(L* rp, const L* a, const L* b, std::size_t n) {
  using W = typename LimbTraits<L>::Wide;
  L carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const W s = static_cast<W>(a[i]) + b[i] + carry;
    rp[i] = static_cast<L>(s);
    carry = static_cast<L>(s >> LimbTraits<L>::bits);
  }
  return carry;
}

/// rp[0..n) = a[0..n) - b[0..n); returns borrow (0 or 1).
template <typename L>
L sub_n(L* rp, const L* a, const L* b, std::size_t n) {
  using W = typename LimbTraits<L>::Wide;
  L borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const W d = static_cast<W>(a[i]) - b[i] - borrow;
    rp[i] = static_cast<L>(d);
    borrow = static_cast<L>((d >> LimbTraits<L>::bits) & 1);
  }
  return borrow;
}

/// rp[0..n) = a[0..n) + b (single limb); returns carry.
template <typename L>
L add_1(L* rp, const L* a, std::size_t n, L b) {
  using W = typename LimbTraits<L>::Wide;
  L carry = b;
  for (std::size_t i = 0; i < n; ++i) {
    const W s = static_cast<W>(a[i]) + carry;
    rp[i] = static_cast<L>(s);
    carry = static_cast<L>(s >> LimbTraits<L>::bits);
    if (carry == 0 && rp == a) return 0;  // early out when updating in place
  }
  return carry;
}

/// rp[0..n) = a[0..n) - b (single limb); returns borrow.
template <typename L>
L sub_1(L* rp, const L* a, std::size_t n, L b) {
  using W = typename LimbTraits<L>::Wide;
  L borrow = b;
  for (std::size_t i = 0; i < n; ++i) {
    const W d = static_cast<W>(a[i]) - borrow;
    rp[i] = static_cast<L>(d);
    borrow = static_cast<L>((d >> LimbTraits<L>::bits) & 1);
  }
  return borrow;
}

/// rp[0..n) = a[0..n) * b; returns the high limb of the product.
template <typename L>
L mul_1(L* rp, const L* a, std::size_t n, L b) {
  using W = typename LimbTraits<L>::Wide;
  L carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const W p = static_cast<W>(a[i]) * b + carry;
    rp[i] = static_cast<L>(p);
    carry = static_cast<L>(p >> LimbTraits<L>::bits);
  }
  return carry;
}

/// rp[0..n) += a[0..n) * b; returns the carry-out limb.
/// This is the hot inner loop of every multiplication-based public-key
/// operation and the main custom-instruction target in the paper (Fig. 5b).
template <typename L>
L addmul_1(L* rp, const L* a, std::size_t n, L b) {
  using W = typename LimbTraits<L>::Wide;
  L carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const W p = static_cast<W>(a[i]) * b + rp[i] + carry;
    rp[i] = static_cast<L>(p);
    carry = static_cast<L>(p >> LimbTraits<L>::bits);
  }
  return carry;
}

/// rp[0..n) -= a[0..n) * b; returns the borrow-out limb.
template <typename L>
L submul_1(L* rp, const L* a, std::size_t n, L b) {
  using W = typename LimbTraits<L>::Wide;
  L borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const W p = static_cast<W>(a[i]) * b + borrow;
    const L lo = static_cast<L>(p);
    borrow = static_cast<L>(p >> LimbTraits<L>::bits);
    if (rp[i] < lo) ++borrow;
    rp[i] = static_cast<L>(rp[i] - lo);
  }
  return borrow;
}

/// rp[0..an+bn) = a[0..an) * b[0..bn), schoolbook.  rp must not alias a/b.
template <typename L>
void mul_basecase(L* rp, const L* a, std::size_t an, const L* b, std::size_t bn) {
  for (std::size_t i = 0; i < an + bn; ++i) rp[i] = 0;
  for (std::size_t j = 0; j < bn; ++j) {
    rp[an + j] = addmul_1(rp + j, a, an, b[j]);
  }
}

/// Karatsuba threshold in limbs.  Below this, schoolbook wins.
inline constexpr std::size_t kKaratsubaThreshold = 16;

/// rp[0..2n) = a[0..n) * b[0..n) via Karatsuba recursion.
/// rp must not alias a/b.
template <typename L>
void mul_karatsuba(L* rp, const L* a, const L* b, std::size_t n);

/// General product dispatching between schoolbook and Karatsuba.
template <typename L>
void mul(L* rp, const L* a, std::size_t an, const L* b, std::size_t bn) {
  if (an == bn && an >= kKaratsubaThreshold) {
    mul_karatsuba(rp, a, b, an);
  } else {
    mul_basecase(rp, a, an, b, bn);
  }
}

/// Left shift by `count` bits (0 < count < limb bits); returns bits shifted
/// out of the top.  rp may equal a.
template <typename L>
L lshift(L* rp, const L* a, std::size_t n, unsigned count) {
  const unsigned bits = LimbTraits<L>::bits;
  const unsigned tnc = bits - count;
  L high = 0;
  for (std::size_t i = n; i-- > 0;) {
    const L x = a[i];
    const L out = static_cast<L>(x >> tnc);
    if (i == n - 1) high = out;
    rp[i] = static_cast<L>(x << count);
    if (i + 1 < n) rp[i + 1] |= out;
  }
  return high;
}

/// Right shift by `count` bits (0 < count < limb bits); returns the bits
/// shifted out of the bottom limb, left-aligned.  rp may equal a.
template <typename L>
L rshift(L* rp, const L* a, std::size_t n, unsigned count) {
  const unsigned bits = LimbTraits<L>::bits;
  const unsigned tnc = bits - count;
  L low = static_cast<L>(a[0] << tnc);
  for (std::size_t i = 0; i < n; ++i) {
    rp[i] = static_cast<L>(a[i] >> count);
    if (i + 1 < n) rp[i] |= static_cast<L>(a[i + 1] << tnc);
  }
  return low;
}

/// Knuth Algorithm D long division.
/// Computes q = u / d and r = u mod d where u has un limbs and d has dn
/// normalized limbs (d[dn-1] != 0), un >= dn >= 1.
/// q receives un - dn + 1 limbs, r receives dn limbs.
/// None of the output buffers may alias the inputs.
template <typename L>
void divrem(L* q, L* r, const L* u, std::size_t un, const L* d, std::size_t dn);

/// Count leading zero bits of a non-zero limb.
template <typename L>
unsigned clz(L x) {
  unsigned n = 0;
  for (int b = LimbTraits<L>::bits / 2; b > 0; b /= 2) {
    const L hi = static_cast<L>(x >> (LimbTraits<L>::bits - b));
    if (hi == 0) {
      n += static_cast<unsigned>(b);
      x = static_cast<L>(x << b);
    }
  }
  return n;
}

/// Total significant bits of an n-limb number.
template <typename L>
std::size_t bit_length(const L* p, std::size_t n) {
  n = normalize(p, n);
  if (n == 0) return 0;
  return n * LimbTraits<L>::bits - clz(p[n - 1]);
}

// ---------------------------------------------------------------------------
// Implementation of the recursive / multi-step routines.
// ---------------------------------------------------------------------------

template <typename L>
void mul_karatsuba(L* rp, const L* a, const L* b, std::size_t n) {
  if (n < kKaratsubaThreshold || (n & 1)) {
    mul_basecase(rp, a, n, b, n);
    return;
  }
  const std::size_t h = n / 2;
  // a = a1*B^h + a0,  b = b1*B^h + b0.
  const L* a0 = a;
  const L* a1 = a + h;
  const L* b0 = b;
  const L* b1 = b + h;

  std::vector<L> z0(2 * h), z2(2 * h), asum(h + 1), bsum(h + 1), zm(2 * h + 2);
  mul_karatsuba(z0.data(), a0, b0, h);
  mul_karatsuba(z2.data(), a1, b1, h);

  asum[h] = add_n(asum.data(), a0, a1, h);
  bsum[h] = add_n(bsum.data(), b0, b1, h);
  // (a0+a1)*(b0+b1): (h+1) x (h+1) product; recursion handles only equal even
  // sizes, so use the general path for the +1 limb.
  mul_basecase(zm.data(), asum.data(), h + 1, bsum.data(), h + 1);

  // zm -= z0 + z2  ->  middle term a0*b1 + a1*b0.
  L borrow = sub_n(zm.data(), zm.data(), z0.data(), 2 * h);
  borrow = static_cast<L>(borrow + sub_1(zm.data() + 2 * h, zm.data() + 2 * h, 2, borrow));
  borrow = sub_n(zm.data(), zm.data(), z2.data(), 2 * h);
  sub_1(zm.data() + 2 * h, zm.data() + 2 * h, 2, borrow);

  // Assemble rp = z2*B^2h + zm*B^h + z0.
  for (std::size_t i = 0; i < 2 * h; ++i) rp[i] = z0[i];
  for (std::size_t i = 0; i < 2 * h; ++i) rp[2 * h + i] = z2[i];
  L carry = add_n(rp + h, rp + h, zm.data(), 2 * h);
  carry = static_cast<L>(carry + zm[2 * h]);  // top limbs of the middle term
  add_1(rp + 3 * h, rp + 3 * h, h, carry);
}

template <typename L>
void divrem(L* q, L* r, const L* u, std::size_t un, const L* d, std::size_t dn) {
  using W = typename LimbTraits<L>::Wide;
  constexpr int kBits = LimbTraits<L>::bits;
  constexpr W kBase = static_cast<W>(1) << kBits;

  if (dn == 1) {
    // Short division.
    W rem = 0;
    for (std::size_t i = un; i-- > 0;) {
      const W cur = (rem << kBits) | u[i];
      q[i] = static_cast<L>(cur / d[0]);
      rem = cur % d[0];
    }
    r[0] = static_cast<L>(rem);
    return;
  }

  // Normalize so the top divisor limb has its high bit set.
  const unsigned shift = clz(d[dn - 1]);
  std::vector<L> dn_v(dn), un_v(un + 1);
  if (shift) {
    lshift(dn_v.data(), d, dn, shift);
    un_v[un] = lshift(un_v.data(), u, un, shift);
  } else {
    for (std::size_t i = 0; i < dn; ++i) dn_v[i] = d[i];
    for (std::size_t i = 0; i < un; ++i) un_v[i] = u[i];
    un_v[un] = 0;
  }
  const L dtop = dn_v[dn - 1];
  const L dsec = dn_v[dn - 2];

  for (std::size_t j = un - dn + 1; j-- > 0;) {
    // Estimate qhat from the top two limbs of the current remainder window.
    const W num = (static_cast<W>(un_v[j + dn]) << kBits) | un_v[j + dn - 1];
    W qhat = num / dtop;
    W rhat = num % dtop;
    if (qhat >= kBase) {
      qhat = kBase - 1;
      rhat = num - qhat * dtop;
    }
    while (rhat < kBase &&
           qhat * static_cast<W>(dsec) >
               ((rhat << kBits) | un_v[j + dn - 2])) {
      --qhat;
      rhat += dtop;
    }
    // Multiply-subtract.
    L borrow = submul_1(un_v.data() + j, dn_v.data(), dn, static_cast<L>(qhat));
    const L top_before = un_v[j + dn];
    un_v[j + dn] = static_cast<L>(top_before - borrow);
    if (top_before < borrow) {
      // qhat was one too large; add back.
      --qhat;
      const L carry = add_n(un_v.data() + j, un_v.data() + j, dn_v.data(), dn);
      un_v[j + dn] = static_cast<L>(un_v[j + dn] + carry);
    }
    q[j] = static_cast<L>(qhat);
  }

  // Denormalize remainder.
  if (shift) {
    rshift(r, un_v.data(), dn, shift);
  } else {
    for (std::size_t i = 0; i < dn; ++i) r[i] = un_v[i];
  }
}

/// Little-endian byte import: bytes[0] is the least significant byte.
template <typename L>
std::vector<L> from_bytes_le(const std::uint8_t* bytes, std::size_t nbytes) {
  constexpr std::size_t per = sizeof(L);
  std::vector<L> out((nbytes + per - 1) / per, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    out[i / per] |= static_cast<L>(static_cast<L>(bytes[i]) << (8 * (i % per)));
  }
  return out;
}

/// Little-endian byte export (nbytes bytes, zero padded).
template <typename L>
void to_bytes_le(const L* p, std::size_t n, std::uint8_t* bytes, std::size_t nbytes) {
  constexpr std::size_t per = sizeof(L);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const std::size_t limb = i / per;
    bytes[i] = limb < n ? static_cast<std::uint8_t>(p[limb] >> (8 * (i % per))) : 0;
  }
}

}  // namespace wsp::mpn
