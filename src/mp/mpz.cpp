#include "mp/mpz.h"

#include <algorithm>
#include <stdexcept>

namespace wsp {

namespace {
constexpr unsigned kLimbBits = 32;

int cmp_mag(const std::vector<Mpz::Limb>& a, const std::vector<Mpz::Limb>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return mpn::cmp(a.data(), b.data(), a.size());
}

std::vector<Mpz::Limb> add_mag(const std::vector<Mpz::Limb>& a,
                               const std::vector<Mpz::Limb>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<Mpz::Limb> r(big.size() + 1, 0);
  Mpz::Limb carry = mpn::add_n(r.data(), big.data(), small.data(), small.size());
  for (std::size_t i = small.size(); i < big.size(); ++i) r[i] = big[i];
  carry = mpn::add_1(r.data() + small.size(), r.data() + small.size(),
                     big.size() - small.size(), carry);
  r[big.size()] = carry;
  return r;
}

// |a| - |b| assuming |a| >= |b|.
std::vector<Mpz::Limb> sub_mag(const std::vector<Mpz::Limb>& a,
                               const std::vector<Mpz::Limb>& b) {
  std::vector<Mpz::Limb> r(a.size(), 0);
  Mpz::Limb borrow = mpn::sub_n(r.data(), a.data(), b.data(), b.size());
  for (std::size_t i = b.size(); i < a.size(); ++i) r[i] = a[i];
  mpn::sub_1(r.data() + b.size(), r.data() + b.size(), a.size() - b.size(), borrow);
  return r;
}
}  // namespace

Mpz::Mpz(std::int64_t v) {
  std::uint64_t mag = v < 0 ? static_cast<std::uint64_t>(-(v + 1)) + 1
                            : static_cast<std::uint64_t>(v);
  negative_ = v < 0;
  if (mag) limbs_.push_back(static_cast<Limb>(mag));
  if (mag >> 32) limbs_.push_back(static_cast<Limb>(mag >> 32));
  if (limbs_.empty()) negative_ = false;
}

Mpz Mpz::from_u64(std::uint64_t v) {
  Mpz z;
  if (v) z.limbs_.push_back(static_cast<Limb>(v));
  if (v >> 32) z.limbs_.push_back(static_cast<Limb>(v >> 32));
  return z;
}

void Mpz::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

Mpz Mpz::from_hex(std::string_view hex) {
  Mpz z;
  bool neg = false;
  std::size_t i = 0;
  if (i < hex.size() && (hex[i] == '-' || hex[i] == '+')) {
    neg = hex[i] == '-';
    ++i;
  }
  if (i + 1 < hex.size() && hex[i] == '0' && (hex[i + 1] == 'x' || hex[i + 1] == 'X')) {
    i += 2;
  }
  if (i >= hex.size()) throw std::invalid_argument("Mpz::from_hex: empty");
  for (; i < hex.size(); ++i) {
    const char c = hex[i];
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else if (c == '_' || c == ' ') continue;
    else throw std::invalid_argument("Mpz::from_hex: bad character");
    z = z.lshift(4);
    z = z + Mpz(v);
  }
  z.negative_ = neg && !z.limbs_.empty();
  return z;
}

std::string Mpz::to_hex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(digits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  out = out.substr(first == std::string::npos ? out.size() - 1 : first);
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

Mpz Mpz::from_bytes_be(const std::uint8_t* data, std::size_t n) {
  Mpz z;
  std::vector<std::uint8_t> le(data, data + n);
  std::reverse(le.begin(), le.end());
  z.limbs_ = mpn::from_bytes_le<Limb>(le.data(), le.size());
  z.trim();
  return z;
}

Mpz Mpz::from_bytes_be(const std::vector<std::uint8_t>& data) {
  return from_bytes_be(data.data(), data.size());
}

std::vector<std::uint8_t> Mpz::to_bytes_be(std::size_t min_len) const {
  const std::size_t nbytes = std::max<std::size_t>(min_len, (bit_length() + 7) / 8);
  std::vector<std::uint8_t> out(std::max<std::size_t>(nbytes, 1), 0);
  mpn::to_bytes_le(limbs_.data(), limbs_.size(), out.data(), out.size());
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t Mpz::bit_length() const {
  return mpn::bit_length(limbs_.data(), limbs_.size());
}

bool Mpz::bit(std::size_t i) const {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1;
}

std::uint32_t Mpz::bits(std::size_t pos, unsigned count) const {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    v |= static_cast<std::uint32_t>(bit(pos + i)) << i;
  }
  return v;
}

std::uint64_t Mpz::to_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int Mpz::cmp(const Mpz& a, const Mpz& b) {
  if (a.negative_ != b.negative_) return a.negative_ ? -1 : 1;
  const int m = cmp_mag(a.limbs_, b.limbs_);
  return a.negative_ ? -m : m;
}

bool operator==(const Mpz& a, const Mpz& b) {
  return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
}

Mpz Mpz::operator-() const {
  Mpz r = *this;
  if (!r.limbs_.empty()) r.negative_ = !r.negative_;
  return r;
}

Mpz operator+(const Mpz& a, const Mpz& b) {
  Mpz r;
  if (a.negative_ == b.negative_) {
    r.limbs_ = add_mag(a.limbs_, b.limbs_);
    r.negative_ = a.negative_;
  } else {
    const int m = cmp_mag(a.limbs_, b.limbs_);
    if (m == 0) return Mpz();
    if (m > 0) {
      r.limbs_ = sub_mag(a.limbs_, b.limbs_);
      r.negative_ = a.negative_;
    } else {
      r.limbs_ = sub_mag(b.limbs_, a.limbs_);
      r.negative_ = b.negative_;
    }
  }
  r.trim();
  return r;
}

Mpz operator-(const Mpz& a, const Mpz& b) { return a + (-b); }

Mpz operator*(const Mpz& a, const Mpz& b) {
  if (a.limbs_.empty() || b.limbs_.empty()) return Mpz();
  Mpz r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  mpn::mul(r.limbs_.data(), a.limbs_.data(), a.limbs_.size(), b.limbs_.data(),
           b.limbs_.size());
  r.negative_ = a.negative_ != b.negative_;
  r.trim();
  return r;
}

void Mpz::divmod(const Mpz& a, const Mpz& b, Mpz& q, Mpz& r) {
  if (b.limbs_.empty()) throw std::domain_error("Mpz: division by zero");
  if (cmp_mag(a.limbs_, b.limbs_) < 0) {
    q = Mpz();
    r = a;
    return;
  }
  const std::size_t un = a.limbs_.size();
  const std::size_t dn = b.limbs_.size();
  std::vector<Limb> qv(un - dn + 1, 0), rv(dn, 0);
  mpn::divrem(qv.data(), rv.data(), a.limbs_.data(), un, b.limbs_.data(), dn);
  Mpz qq, rr;
  qq.limbs_ = std::move(qv);
  qq.negative_ = a.negative_ != b.negative_;
  qq.trim();
  rr.limbs_ = std::move(rv);
  rr.negative_ = a.negative_;
  rr.trim();
  q = std::move(qq);
  r = std::move(rr);
}

Mpz operator/(const Mpz& a, const Mpz& b) {
  Mpz q, r;
  Mpz::divmod(a, b, q, r);
  return q;
}

Mpz operator%(const Mpz& a, const Mpz& b) {
  Mpz q, r;
  Mpz::divmod(a, b, q, r);
  return r;
}

Mpz Mpz::mod(const Mpz& m) const {
  Mpz r = *this % m;
  if (r.negative_) r = r + (m.negative_ ? -m : m);
  return r;
}

Mpz Mpz::lshift(std::size_t bits) const {
  if (limbs_.empty() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const unsigned bit_shift = static_cast<unsigned>(bits % kLimbBits);
  Mpz r;
  r.negative_ = negative_;
  r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i + limb_shift] = limbs_[i];
  if (bit_shift) {
    const Limb high = mpn::lshift(r.limbs_.data() + limb_shift,
                                  r.limbs_.data() + limb_shift,
                                  limbs_.size(), bit_shift);
    r.limbs_[limb_shift + limbs_.size()] = high;
  }
  r.trim();
  return r;
}

Mpz Mpz::rshift(std::size_t bits) const {
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) return Mpz();
  const unsigned bit_shift = static_cast<unsigned>(bits % kLimbBits);
  Mpz r;
  r.negative_ = negative_;
  r.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift), limbs_.end());
  if (bit_shift) mpn::rshift(r.limbs_.data(), r.limbs_.data(), r.limbs_.size(), bit_shift);
  r.trim();
  return r;
}

Mpz Mpz::gcd(Mpz a, Mpz b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    Mpz r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Mpz Mpz::gcdext(const Mpz& a, const Mpz& b, Mpz& x, Mpz& y) {
  // Iterative extended Euclid.
  Mpz old_r = a, r = b;
  Mpz old_s = 1, s = 0;
  Mpz old_t = 0, t = 1;
  while (!r.is_zero()) {
    Mpz q, rem;
    divmod(old_r, r, q, rem);
    old_r = std::move(r);
    r = std::move(rem);
    Mpz ns = old_s - q * s;
    old_s = std::move(s);
    s = std::move(ns);
    Mpz nt = old_t - q * t;
    old_t = std::move(t);
    t = std::move(nt);
  }
  if (old_r.is_negative()) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  x = std::move(old_s);
  y = std::move(old_t);
  return old_r;
}

Mpz Mpz::invmod(const Mpz& a, const Mpz& m) {
  Mpz x, y;
  const Mpz g = gcdext(a.mod(m), m, x, y);
  if (!(g == Mpz(1))) throw std::domain_error("Mpz::invmod: not invertible");
  return x.mod(m);
}

Mpz Mpz::powm(const Mpz& base, const Mpz& exp, const Mpz& mod) {
  if (mod.is_zero()) throw std::domain_error("Mpz::powm: zero modulus");
  if (exp.is_negative()) throw std::domain_error("Mpz::powm: negative exponent");
  Mpz result(1);
  result = result.mod(mod);
  Mpz b = base.mod(mod);
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    result = (result * result).mod(mod);
    if (exp.bit(i)) result = (result * b).mod(mod);
  }
  return result;
}

}  // namespace wsp
