// Arbitrary-precision signed integers ("complex mathematical operations"
// layer of the paper's software architecture).  Built on the mpn kernels
// with 32-bit limbs; acts as the correctness reference for every optimized
// modular-exponentiation configuration in src/mp/modexp.h.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mp/mpn.h"

namespace wsp {

/// Sign-magnitude arbitrary-precision integer.
class Mpz {
 public:
  using Limb = std::uint32_t;

  Mpz() = default;
  Mpz(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics
  static Mpz from_u64(std::uint64_t v);

  /// Parses a hexadecimal string, optionally prefixed with '-' or "0x".
  static Mpz from_hex(std::string_view hex);
  std::string to_hex() const;

  /// Big-endian byte import/export (network order, as used by RSA).
  static Mpz from_bytes_be(const std::uint8_t* data, std::size_t n);
  static Mpz from_bytes_be(const std::vector<std::uint8_t>& data);
  std::vector<std::uint8_t> to_bytes_be(std::size_t min_len = 0) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit i (0 = LSB).
  bool bit(std::size_t i) const;
  /// Extracts `count` bits starting at bit `pos` as an unsigned value
  /// (count <= 32).
  std::uint32_t bits(std::size_t pos, unsigned count) const;

  std::uint64_t to_u64() const;  ///< Low 64 bits of |x|.

  const std::vector<Limb>& limbs() const { return limbs_; }

  // Arithmetic.
  friend Mpz operator+(const Mpz& a, const Mpz& b);
  friend Mpz operator-(const Mpz& a, const Mpz& b);
  friend Mpz operator*(const Mpz& a, const Mpz& b);
  friend Mpz operator/(const Mpz& a, const Mpz& b);  ///< Truncated quotient.
  friend Mpz operator%(const Mpz& a, const Mpz& b);  ///< Sign follows dividend.
  Mpz operator-() const;

  Mpz& operator+=(const Mpz& b) { return *this = *this + b; }
  Mpz& operator-=(const Mpz& b) { return *this = *this - b; }
  Mpz& operator*=(const Mpz& b) { return *this = *this * b; }

  /// Quotient and remainder in one division.
  static void divmod(const Mpz& a, const Mpz& b, Mpz& q, Mpz& r);

  /// Non-negative residue in [0, m) for m > 0.
  Mpz mod(const Mpz& m) const;

  Mpz lshift(std::size_t bits) const;
  Mpz rshift(std::size_t bits) const;

  friend bool operator==(const Mpz& a, const Mpz& b);
  friend bool operator!=(const Mpz& a, const Mpz& b) { return !(a == b); }
  friend bool operator<(const Mpz& a, const Mpz& b) { return cmp(a, b) < 0; }
  friend bool operator>(const Mpz& a, const Mpz& b) { return cmp(a, b) > 0; }
  friend bool operator<=(const Mpz& a, const Mpz& b) { return cmp(a, b) <= 0; }
  friend bool operator>=(const Mpz& a, const Mpz& b) { return cmp(a, b) >= 0; }
  static int cmp(const Mpz& a, const Mpz& b);

  /// Greatest common divisor (always non-negative).
  static Mpz gcd(Mpz a, Mpz b);

  /// Extended gcd: returns g and sets x, y with a*x + b*y = g.
  static Mpz gcdext(const Mpz& a, const Mpz& b, Mpz& x, Mpz& y);

  /// Modular inverse of a mod m; throws std::domain_error if not invertible.
  static Mpz invmod(const Mpz& a, const Mpz& m);

  /// Reference modular exponentiation (binary square-and-multiply with
  /// division-based reduction).  Used as ground truth by every optimized
  /// configuration.
  static Mpz powm(const Mpz& base, const Mpz& exp, const Mpz& mod);

 private:
  void trim();

  std::vector<Limb> limbs_;  // little-endian, no trailing zero limbs
  bool negative_ = false;    // never set when limbs_ is empty
};

}  // namespace wsp
