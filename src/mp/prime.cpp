#include "mp/prime.h"

#include <array>
#include <stdexcept>

namespace wsp {

namespace {
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};
}  // namespace

Mpz random_bits(std::size_t bits, Rng& rng) {
  if (bits == 0) return Mpz();
  const std::size_t nbytes = (bits + 7) / 8;
  std::vector<std::uint8_t> buf = rng.bytes(nbytes);
  // Clear excess bits, then force the MSB.
  const unsigned top_bits = static_cast<unsigned>(bits - (nbytes - 1) * 8);
  buf[0] &= static_cast<std::uint8_t>((1u << top_bits) - 1);
  buf[0] |= static_cast<std::uint8_t>(1u << (top_bits - 1));
  return Mpz::from_bytes_be(buf);
}

Mpz random_below(const Mpz& bound, Rng& rng) {
  const std::size_t bits = bound.bit_length();
  for (;;) {
    const std::size_t nbytes = (bits + 7) / 8;
    std::vector<std::uint8_t> buf = rng.bytes(nbytes);
    const unsigned excess = static_cast<unsigned>(nbytes * 8 - bits);
    buf[0] &= static_cast<std::uint8_t>(0xffu >> excess);
    Mpz v = Mpz::from_bytes_be(buf);
    if (v < bound) return v;
  }
}

bool is_probable_prime(const Mpz& n, int rounds, Rng& rng) {
  if (n < Mpz(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const Mpz pz(static_cast<std::int64_t>(p));
    if (n == pz) return true;
    if ((n % pz).is_zero()) return false;
  }
  // Write n-1 = d * 2^s with d odd.
  const Mpz n_minus_1 = n - Mpz(1);
  Mpz d = n_minus_1;
  std::size_t s = 0;
  while (d.is_even()) {
    d = d.rshift(1);
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    Mpz a = random_below(n - Mpz(3), rng) + Mpz(2);
    Mpz x = Mpz::powm(a, d, n);
    if (x == Mpz(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = (x * x).mod(n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Mpz gen_prime(std::size_t bits, Rng& rng, int rounds) {
  if (bits < 8) throw std::invalid_argument("gen_prime: need at least 8 bits");
  for (;;) {
    Mpz candidate = random_bits(bits, rng);
    // Force the second-highest bit (RSA modulus sizing) and oddness.
    if (!candidate.bit(bits - 2)) candidate = candidate + Mpz(1).lshift(bits - 2);
    if (candidate.is_even()) candidate = candidate + Mpz(1);
    if (candidate.bit_length() != bits) continue;
    if (is_probable_prime(candidate, rounds, rng)) return candidate;
  }
}

}  // namespace wsp
