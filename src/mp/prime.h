// Primality testing and prime generation — the "complex operations" the
// paper lists explicitly (Miller-Rabin primality testing, prime number
// generation) as part of the layered software architecture (Sec. 2.2).
#pragma once

#include "mp/mpz.h"
#include "support/random.h"

namespace wsp {

/// Miller-Rabin probabilistic primality test with `rounds` random bases.
/// Deterministic small-case handling; trial division by small primes first.
bool is_probable_prime(const Mpz& n, int rounds, Rng& rng);

/// Generates a random odd probable prime of exactly `bits` bits
/// (top two bits set so that products of two such primes have 2*bits bits,
/// as required for RSA modulus sizing).
Mpz gen_prime(std::size_t bits, Rng& rng, int rounds = 24);

/// Uniform random integer in [0, bound).
Mpz random_below(const Mpz& bound, Rng& rng);

/// Uniform random integer with exactly `bits` bits (MSB set).
Mpz random_bits(std::size_t bits, Rng& rng);

}  // namespace wsp
