#include "platform/platform.h"

namespace wsp::platform {

const char* to_string(Config config) {
  return config == Config::kBaseline ? "baseline" : "optimized";
}

namespace {

kernels::MpnTieConfig mpn_tie_for(Config config) {
  // The optimized platform carries the add_8/sub_8 and mac_8 units chosen
  // by the global selection phase under the default area budget.
  return config == Config::kOptimized ? kernels::MpnTieConfig{8, 8}
                                      : kernels::MpnTieConfig{};
}

}  // namespace

SecurityPlatform::SecurityPlatform(Config config)
    : config_(config),
      des_machine_(kernels::make_des_machine(config == Config::kOptimized)),
      aes_machine_(kernels::make_aes_machine(
          config == Config::kOptimized ? kernels::AesKernelVariant::kTiePartial
                                       : kernels::AesKernelVariant::kBase)),
      modexp_machine_(kernels::make_modexp_machine(mpn_tie_for(config))),
      sha1_machine_(kernels::make_sha1_machine()),
      des_(des_machine_, config == Config::kOptimized),
      aes_(aes_machine_,
           config == Config::kOptimized ? kernels::AesKernelVariant::kTiePartial
                                        : kernels::AesKernelVariant::kBase),
      modexp_(modexp_machine_),
      sha1_(sha1_machine_) {}

std::array<std::uint8_t, 20> SecurityPlatform::sha1(
    const std::vector<std::uint8_t>& data) {
  return sha1_.hash(data, &cycles_);
}

std::vector<std::uint8_t> SecurityPlatform::des_encrypt(
    const std::vector<std::uint8_t>& data, std::uint64_t key) {
  des_.set_key(key);
  return des_.encrypt_ecb(data, &cycles_);
}

std::vector<std::uint8_t> SecurityPlatform::des3_encrypt(
    const std::vector<std::uint8_t>& data, std::uint64_t k1, std::uint64_t k2,
    std::uint64_t k3) {
  des_.set_3des_keys(k1, k2, k3);
  return des_.encrypt_ecb_3des(data, &cycles_);
}

std::vector<std::uint8_t> SecurityPlatform::aes128_encrypt(
    const std::vector<std::uint8_t>& data, const std::vector<std::uint8_t>& key) {
  aes_.set_key(key);
  return aes_.encrypt_ecb(data, &cycles_);
}

Mpz SecurityPlatform::rsa_public(const Mpz& m, const rsa::PublicKey& key) {
  if (config_ == Config::kOptimized) {
    const auto res = modexp_.powm_mont(m, key.e, key.n, 2);
    cycles_ += res.cycles;
    return res.result;
  }
  const auto res = modexp_.powm_base(m, key.e, key.n);
  cycles_ += res.cycles;
  return res.result;
}

Mpz SecurityPlatform::rsa_private(const Mpz& c, const rsa::PrivateKey& key) {
  if (config_ == Config::kOptimized) {
    const auto res = modexp_.rsa_crt(c, key, 5);
    cycles_ += res.cycles;
    return res.result;
  }
  const auto res = modexp_.powm_base(c, key.d, key.n);
  cycles_ += res.cycles;
  return res.result;
}

}  // namespace wsp::platform
