// The security processor platform facade — the top "security primitives"
// layer of the paper's layered software architecture (Sec. 2.2), bound to a
// simulated hardware configuration.
//
// Config::kBaseline is the stock XR32 core running the well-optimized
// software libraries; Config::kOptimized is the core extended with the
// custom instructions chosen by the global selection phase plus the tuned
// algorithms from the exploration phase (Montgomery CIOS, 5-bit windows,
// Garner CRT).  All cryptographic work runs on the cycle-accurate ISS;
// cycle counters expose the cost of every primitive.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/rsa.h"
#include "kernels/aes_kernel.h"
#include "kernels/des_kernel.h"
#include "kernels/modexp_kernel.h"
#include "kernels/sha1_kernel.h"

namespace wsp::platform {

enum class Config { kBaseline, kOptimized };

const char* to_string(Config config);

class SecurityPlatform {
 public:
  /// Target clock of the prototype core (Xtensa-class, 0.18um): 188 MHz.
  static constexpr double kClockMhz = 188.0;

  explicit SecurityPlatform(Config config);

  Config config() const { return config_; }

  // --- private-key primitives (ECB over whole buffers) --------------------
  std::vector<std::uint8_t> des_encrypt(const std::vector<std::uint8_t>& data,
                                        std::uint64_t key);
  std::vector<std::uint8_t> des3_encrypt(const std::vector<std::uint8_t>& data,
                                         std::uint64_t k1, std::uint64_t k2,
                                         std::uint64_t k3);
  /// AES-ECB with a 16/24/32-byte key (the name keeps the platform's
  /// original AES-128 headline benchmark; all key sizes run).
  std::vector<std::uint8_t> aes128_encrypt(const std::vector<std::uint8_t>& data,
                                           const std::vector<std::uint8_t>& key);

  /// SHA-1 digest (unaccelerated on both configurations — hashing is the
  /// platform's "misc" share in the SSL workload).
  std::array<std::uint8_t, 20> sha1(const std::vector<std::uint8_t>& data);

  // --- public-key primitives ------------------------------------------------
  Mpz rsa_public(const Mpz& m, const rsa::PublicKey& key);
  Mpz rsa_private(const Mpz& c, const rsa::PrivateKey& key);

  // --- accounting -------------------------------------------------------------
  /// Cycles consumed by platform primitives since the last reset.
  std::uint64_t cycles_consumed() const { return cycles_; }
  void reset_cycles() { cycles_ = 0; }
  /// Wall time of the consumed cycles at the platform clock.
  double seconds_at_clock(double mhz = kClockMhz) const {
    return static_cast<double>(cycles_) / (mhz * 1e6);
  }

 private:
  Config config_;
  kernels::Machine des_machine_;
  kernels::Machine aes_machine_;
  kernels::Machine modexp_machine_;
  kernels::Machine sha1_machine_;
  kernels::DesKernel des_;
  kernels::AesKernel aes_;
  kernels::IssModexp modexp_;
  kernels::Sha1Kernel sha1_;
  std::uint64_t cycles_ = 0;
};

}  // namespace wsp::platform
