// Parse tree for the .wsp scenario language (docs/scenarios.md §2).
//
// The surface grammar is a uniform key/value tree, so one recursive node
// type covers it:
//
//   scenario ::= 'scenario' [STRING] block EOF
//   block    ::= '{' entry* '}'
//   entry    ::= IDENT [STRING] ( block | [':'] value ) [',']
//   value    ::= NUMBER | IDENT | STRING
//
// `phase "peak" { ... }` is an Entry with key "phase", a label and a child
// block; `load 1.4` (or `load: 1.4`) is an Entry with a scalar value;
// `aes128: 3` inside a mix block is the same shape.  All meaning — which
// keys exist where, types, ranges — lives in the semantic pass (sema.h).
#pragma once

#include <string>
#include <vector>

#include "scenario/diag.h"

namespace wsp::scenario {

struct Value {
  enum class Kind { kNumber, kIdent, kString };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;  ///< ident spelling / string body
  SourceLoc loc;
};

struct Entry {
  std::string key;
  /// Keys are usually identifiers, but `sizes { 1024: 2 }` keys entries by
  /// number; the parser accepts both and records which one it saw.
  bool key_is_number = false;
  double key_number = 0.0;
  SourceLoc loc;        ///< at the key token
  std::string label;    ///< optional STRING after the key (phase names)
  bool has_label = false;
  bool is_block = false;
  std::vector<Entry> block;  ///< children when is_block
  Value value;               ///< scalar when !is_block
};

struct ScenarioAst {
  std::string name;  ///< optional STRING after `scenario`
  SourceLoc loc;     ///< at the `scenario` keyword
  std::vector<Entry> entries;
};

}  // namespace wsp::scenario
