#include "scenario/compile.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "scenario/lexer.h"
#include "scenario/parser.h"
#include "scenario/sema.h"

namespace wsp::scenario {

CompiledScenario compile(std::string_view source, std::string_view filename) {
  const std::vector<Token> tokens = lex(source, filename);
  const ScenarioAst ast = parse(tokens, source, filename);
  ResolvedScenario resolved = resolve(ast, source, filename);
  CompiledScenario out;
  out.name = std::move(resolved.name);
  out.source.assign(source.begin(), source.end());
  out.scenario = std::move(resolved.scenario);
  return out;
}

CompiledScenario compile_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open scenario file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("failed reading scenario file: " + path);
  }
  return compile(buf.str(), path);
}

}  // namespace wsp::scenario
