// Front door of the .wsp scenario compiler: source text -> validated
// server::TrafficScenario traffic program, via lex -> parse -> resolve
// (docs/scenarios.md).  All passes throw ScenarioError (diag.h) with a
// line:column diagnostic and a stable Ennn code.
#pragma once

#include <string>
#include <string_view>

#include "scenario/diag.h"
#include "server/traffic.h"

namespace wsp::scenario {

struct CompiledScenario {
  std::string name;    ///< from `scenario "name"`, may be empty
  std::string source;  ///< the exact input text (embedded into recordings)
  server::TrafficScenario scenario;
};

/// Compiles .wsp source text.  `filename` only labels diagnostics.
/// Throws ScenarioError on any lexical/syntactic/semantic error; the
/// returned scenario satisfies TrafficScenario::validate().
CompiledScenario compile(std::string_view source,
                         std::string_view filename = "<string>");

/// Reads `path` and compiles it.  Throws std::runtime_error if the file
/// cannot be read, ScenarioError on compile errors.
CompiledScenario compile_file(const std::string& path);

}  // namespace wsp::scenario
