#include "scenario/diag.h"

#include <cstdio>

namespace wsp::scenario {

std::string code_label(Code code) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "E%03d", static_cast<int>(code));
  return buf;
}

std::string Diagnostic::render(std::string_view filename) const {
  std::string out;
  out += filename;
  out += ':';
  out += std::to_string(loc.line);
  out += ':';
  out += std::to_string(loc.column);
  out += ": error ";
  out += code_label(code);
  out += ": ";
  out += message;
  if (!excerpt.empty()) {
    out += "\n  ";
    out += excerpt;
    out += "\n  ";
    // Tabs in the excerpt keep their width-1 rendering above, so a plain
    // space run lands the caret on the right column.
    for (std::size_t i = 1; i < loc.column; ++i) out += ' ';
    out += '^';
  }
  return out;
}

Diagnostic make_diagnostic(Code code, SourceLoc loc, std::string message,
                           std::string_view source) {
  Diagnostic d;
  d.code = code;
  d.loc = loc;
  d.message = std::move(message);
  // Slice the line containing `loc.offset` (offset may equal source.size()
  // for end-of-input diagnostics; then the last line is the excerpt).
  const std::size_t at = std::min(loc.offset, source.size());
  std::size_t begin = source.rfind('\n', at == 0 ? 0 : at - 1);
  begin = (begin == std::string_view::npos || at == 0) ? 0 : begin + 1;
  std::size_t end = source.find('\n', at);
  if (end == std::string_view::npos) end = source.size();
  if (begin <= end) {
    std::string line(source.substr(begin, end - begin));
    for (char& c : line) {
      if (c == '\t') c = ' ';  // keep the caret column honest
      if (c == '\r') c = ' ';
    }
    d.excerpt = std::move(line);
  }
  return d;
}

ScenarioError::ScenarioError(Diagnostic diag, std::string_view filename)
    : std::runtime_error(diag.render(filename)), diag_(std::move(diag)) {}

}  // namespace wsp::scenario
