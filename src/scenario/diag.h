// Diagnostics for the .wsp scenario compiler (docs/scenarios.md).
//
// Every lex, parse and semantic error is a Diagnostic: a stable error code
// (E0xx lexical, E1xx syntactic, E2xx semantic — the code is part of the
// compiler's contract and is matched by the golden error-message tests), a
// 1-based line:column position, a one-line message, and the offending
// source line with a caret under the column.  Diagnostics travel as a
// ScenarioError exception whose what() is the fully rendered form:
//
//   flood.wsp:4:10: error E205: offered load must be finite and > 0
//       load -2.5
//            ^
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace wsp::scenario {

/// Stable diagnostic codes.  Never renumber: scripts and the golden tests
/// key off these.
enum class Code {
  // Lexical.
  kInvalidChar = 1,        ///< E001: byte outside the language's alphabet
  kUnterminatedString = 2, ///< E002: string literal hits newline/EOF
  kMalformedNumber = 3,    ///< E003: numeric-looking token that isn't one
  // Syntactic.
  kUnexpectedToken = 101,  ///< E101: parser expected something else here
  kUnexpectedEnd = 102,    ///< E102: input ended inside a construct
  kExpectedScenario = 103, ///< E103: file must open with `scenario {`
  kTrailingInput = 104,    ///< E104: tokens after the scenario block
  // Semantic.
  kUnknownKey = 201,       ///< E201: key not defined in this block
  kDuplicateKey = 202,     ///< E202: key given twice in one block
  kUnknownCipher = 203,    ///< E203: mix names no known cipher
  kTypeMismatch = 204,     ///< E204: value has the wrong shape/type
  kOutOfRange = 205,       ///< E205: value outside its legal range
  kNoPhases = 206,         ///< E206: scenario declares no phase blocks
  kMissingKey = 207,       ///< E207: required key absent (phase sessions)
  kEmptyMix = 208,         ///< E208: mix/sizes block has no entries
  kUnknownEnum = 209,      ///< E209: bad enum word (arrivals/resume)
  kDuplicateEntry = 210,   ///< E210: same cipher/size listed twice in a mix
};

/// "E001", "E101", ... — zero-padded to three digits.
std::string code_label(Code code);

/// 1-based source position.  `offset` is the byte offset into the source
/// (used to slice the excerpt line out again).
struct SourceLoc {
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t offset = 0;
};

struct Diagnostic {
  Code code = Code::kInvalidChar;
  SourceLoc loc;
  std::string message;  ///< one line, no trailing period
  std::string excerpt;  ///< the source line the error points into

  /// "file:line:col: error Ennn: message\n  <line>\n  <caret>"
  std::string render(std::string_view filename) const;
};

/// Builds a Diagnostic from a source buffer: slices out the line `loc`
/// points into for the excerpt.
Diagnostic make_diagnostic(Code code, SourceLoc loc, std::string message,
                           std::string_view source);

/// The compiler's one exception type.  what() is the rendered diagnostic.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(Diagnostic diag, std::string_view filename);

  const Diagnostic& diagnostic() const { return diag_; }
  Code code() const { return diag_.code; }

 private:
  Diagnostic diag_;
};

}  // namespace wsp::scenario
