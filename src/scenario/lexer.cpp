#include "scenario/lexer.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace wsp::scenario {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:  return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kColon:  return "':'";
    case TokenKind::kComma:  return "','";
    case TokenKind::kEnd:    return "end of input";
  }
  return "?";
}

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

class Scanner {
 public:
  Scanner(std::string_view source, std::string_view filename)
      : src_(source), filename_(filename) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_blank();
      Token t;
      t.loc = loc();
      if (at_end()) {
        t.kind = TokenKind::kEnd;
        out.push_back(std::move(t));
        return out;
      }
      const char c = peek();
      if (c == '{') { advance(); t.kind = TokenKind::kLBrace; }
      else if (c == '}') { advance(); t.kind = TokenKind::kRBrace; }
      else if (c == ':') { advance(); t.kind = TokenKind::kColon; }
      else if (c == ',') { advance(); t.kind = TokenKind::kComma; }
      else if (c == '"') { scan_string(t); }
      else if (is_word_char(c) || ((c == '-' || c == '+') && pos_ + 1 < src_.size() &&
                                   is_digit(src_[pos_ + 1]))) {
        scan_word(t);
      } else {
        fail(Code::kInvalidChar, t.loc,
             std::string("invalid character '") + printable(c) +
                 "' (not part of the scenario language)");
      }
      out.push_back(std::move(t));
    }
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek() const { return src_[pos_]; }

  SourceLoc loc() const { return SourceLoc{line_, col_, pos_}; }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_blank() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '#') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  static std::string printable(char c) {
    const auto u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7F) return std::string(1, c);
    char buf[8];
    std::snprintf(buf, sizeof buf, "\\x%02X", u);
    return buf;
  }

  [[noreturn]] void fail(Code code, SourceLoc at, std::string message) {
    throw ScenarioError(make_diagnostic(code, at, std::move(message), src_),
                        filename_);
  }

  void scan_string(Token& t) {
    const SourceLoc open = loc();
    advance();  // opening quote
    std::string body;
    while (!at_end() && peek() != '\n') {
      const char c = peek();
      if (c == '"') {
        advance();
        t.kind = TokenKind::kString;
        t.text = std::move(body);
        return;
      }
      if (c == '\\') {
        advance();
        if (at_end() || peek() == '\n') break;
        body.push_back(peek());  // \" and \\ (any escaped byte passes through)
        advance();
        continue;
      }
      body.push_back(c);
      advance();
    }
    fail(Code::kUnterminatedString, open,
         "unterminated string literal (strings may not span lines)");
  }

  // One maximal word: identifiers and numbers share an alphabet because
  // cipher names like `3des` start with a digit.  The word is a NUMBER when
  // strtod consumes it entirely, an IDENT when it matches [A-Za-z0-9_]+,
  // and E003 otherwise (e.g. `1.5x`, `--3`).
  void scan_word(Token& t) {
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') advance();
    while (!at_end()) {
      const char c = peek();
      if (is_word_char(c)) {
        advance();
        // Exponent signs belong to the number: 1e-5, 2.5E+6.  Only when the
        // 'e' follows a digit/dot inside the word — `e-3` alone is not one.
        if ((c == 'e' || c == 'E') && pos_ - start >= 2 &&
            (is_digit(src_[pos_ - 2]) || src_[pos_ - 2] == '.') &&
            !at_end() && (peek() == '-' || peek() == '+') &&
            pos_ + 1 < src_.size() && is_digit(src_[pos_ + 1])) {
          advance();
        }
        continue;
      }
      break;
    }
    const std::string word(src_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(word.c_str(), &end);
    if (end == word.c_str() + word.size() && !word.empty()) {
      t.kind = TokenKind::kNumber;
      t.number = v;
      t.text = word;
      return;
    }
    bool ident = !word.empty();
    for (const char c : word) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
        ident = false;
        break;
      }
    }
    if (ident) {
      t.kind = TokenKind::kIdent;
      t.text = word;
      return;
    }
    fail(Code::kMalformedNumber, t.loc,
         "malformed number '" + word + "'");
  }

  std::string_view src_;
  std::string_view filename_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, std::string_view filename) {
  return Scanner(source, filename).run();
}

}  // namespace wsp::scenario
