// Lexer for the .wsp scenario language (docs/scenarios.md §2).
//
// The token alphabet is deliberately tiny: identifiers (which may start
// with a digit — `3des` is an identifier, `3e5` is a number), decimal
// numbers with optional fraction/exponent, double-quoted strings with
// `\"`/`\\` escapes, the punctuation `{ } : ,`, and `#` comments to end of
// line.  Newlines are whitespace; the grammar does not need them.
//
// The lexer never aborts the process on bad input: every failure throws
// ScenarioError with a line:column diagnostic (E001 invalid character,
// E002 unterminated string, E003 malformed number).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/diag.h"

namespace wsp::scenario {

enum class TokenKind {
  kIdent,   ///< bare word: keys, enum words, cipher names (incl. `3des`)
  kNumber,  ///< decimal literal, optional fraction / exponent / leading '-'
  kString,  ///< double-quoted; backslash escapes the quote and itself
  kLBrace,
  kRBrace,
  kColon,
  kComma,
  kEnd,  ///< one synthetic end-of-input token closes the stream
};

const char* to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< ident spelling or decoded string body
  double number = 0.0;  ///< value when kind == kNumber
  SourceLoc loc;
};

/// Tokenizes the whole buffer (throws ScenarioError on the first lexical
/// error).  `filename` only labels diagnostics.
std::vector<Token> lex(std::string_view source, std::string_view filename);

}  // namespace wsp::scenario
