#include "scenario/parser.h"

namespace wsp::scenario {

namespace {

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, std::string_view source,
         std::string_view filename)
      : toks_(tokens), src_(source), filename_(filename) {}

  ScenarioAst run() {
    ScenarioAst ast;
    const Token& head = peek();
    if (head.kind != TokenKind::kIdent || head.text != "scenario") {
      fail(Code::kExpectedScenario, head.loc,
           "a scenario file must start with `scenario [\"name\"] { ... }`");
    }
    ast.loc = head.loc;
    advance();
    if (peek().kind == TokenKind::kString) {
      ast.name = peek().text;
      advance();
    }
    ast.entries = block("scenario");
    if (peek().kind != TokenKind::kEnd) {
      fail(Code::kTrailingInput, peek().loc,
           "unexpected input after the scenario block");
    }
    return ast;
  }

 private:
  const Token& peek() const { return toks_[pos_]; }
  void advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }

  [[noreturn]] void fail(Code code, SourceLoc at, std::string message) {
    throw ScenarioError(make_diagnostic(code, at, std::move(message), src_),
                        filename_);
  }

  [[noreturn]] void unexpected(const char* wanted) {
    const Token& t = peek();
    if (t.kind == TokenKind::kEnd) {
      fail(Code::kUnexpectedEnd, t.loc,
           std::string("unexpected end of input (expected ") + wanted + ")");
    }
    std::string got = to_string(t.kind);
    if (t.kind == TokenKind::kIdent) got += " '" + t.text + "'";
    fail(Code::kUnexpectedToken, t.loc,
         std::string("expected ") + wanted + ", found " + got);
  }

  /// '{' entry* '}' — `context` names the enclosing construct in messages.
  std::vector<Entry> block(const char* context) {
    if (peek().kind != TokenKind::kLBrace) {
      unexpected(("'{' to open the " + std::string(context) + " block").c_str());
    }
    advance();
    std::vector<Entry> entries;
    for (;;) {
      while (peek().kind == TokenKind::kComma) advance();  // separators
      if (peek().kind == TokenKind::kRBrace) {
        advance();
        return entries;
      }
      if (peek().kind == TokenKind::kEnd) {
        fail(Code::kUnexpectedEnd, peek().loc,
             "unexpected end of input: unclosed '{' in " + std::string(context) +
                 " block");
      }
      entries.push_back(entry());
    }
  }

  Entry entry() {
    const Token& k = peek();
    if (k.kind != TokenKind::kIdent && k.kind != TokenKind::kNumber) {
      unexpected("a key (identifier)");
    }
    Entry e;
    e.key = k.text;
    e.key_is_number = k.kind == TokenKind::kNumber;
    e.key_number = k.number;
    e.loc = k.loc;
    advance();
    if (peek().kind == TokenKind::kString) {
      e.label = peek().text;
      e.has_label = true;
      advance();
    }
    if (peek().kind == TokenKind::kLBrace) {
      e.is_block = true;
      e.block = block(e.key.c_str());
      return e;
    }
    if (peek().kind == TokenKind::kColon) advance();  // `key: value` sugar
    const Token& v = peek();
    switch (v.kind) {
      case TokenKind::kNumber:
        e.value.kind = Value::Kind::kNumber;
        e.value.number = v.number;
        e.value.text = v.text;
        break;
      case TokenKind::kIdent:
        e.value.kind = Value::Kind::kIdent;
        e.value.text = v.text;
        break;
      case TokenKind::kString:
        e.value.kind = Value::Kind::kString;
        e.value.text = v.text;
        break;
      default:
        unexpected(("a value or '{' block for key '" + e.key + "'").c_str());
    }
    e.value.loc = v.loc;
    advance();
    return e;
  }

  const std::vector<Token>& toks_;
  std::string_view src_;
  std::string_view filename_;
  std::size_t pos_ = 0;
};

}  // namespace

ScenarioAst parse(const std::vector<Token>& tokens, std::string_view source,
                  std::string_view filename) {
  if (tokens.empty()) {
    // lex() always appends kEnd; an empty vector means the caller skipped it.
    throw ScenarioError(
        make_diagnostic(Code::kUnexpectedEnd, SourceLoc{}, "empty token stream",
                        source),
        filename);
  }
  return Parser(tokens, source, filename).run();
}

}  // namespace wsp::scenario
