// Recursive-descent parser for the .wsp scenario language: token stream ->
// ScenarioAst.  Throws ScenarioError with a line:column diagnostic on the
// first syntax error (E101 unexpected token, E102 unexpected end of input,
// E103 missing `scenario` block, E104 trailing input).
#pragma once

#include <string_view>
#include <vector>

#include "scenario/ast.h"
#include "scenario/lexer.h"

namespace wsp::scenario {

/// `source` is only consulted for diagnostic excerpts; the tokens must have
/// been lexed from it.
ScenarioAst parse(const std::vector<Token>& tokens, std::string_view source,
                  std::string_view filename);

}  // namespace wsp::scenario
