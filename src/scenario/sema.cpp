#include "scenario/sema.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <string>

namespace wsp::scenario {

namespace {

using server::ArrivalModel;
using server::CipherMix;
using server::FaultConfig;
using server::SizeMix;
using server::TrafficPhase;
using server::TrafficScenario;

/// The built-in phase template every scenario starts from: the paper's
/// Fig. 8 measurement grid under a steady open loop — a one-phase program
/// with these parameters reproduces the legacy flat path bit for bit.
struct PhaseParams {
  ArrivalModel model = ArrivalModel::kOpenLoop;
  double offered_load = 0.6;
  unsigned users = 8;
  double think_cycles = 0.0;
  double resume_fraction = 0.0;
  std::vector<CipherMix> cipher_mix = {{ssl::Cipher::kTripleDesCbc, 1},
                                       {ssl::Cipher::kAes128Cbc, 1},
                                       {ssl::Cipher::kRc4, 1}};
  std::vector<SizeMix> size_mix = {{1024, 1},  {2048, 1},  {4096, 1},
                                   {8192, 1},  {16384, 1}, {32768, 1}};
  std::optional<FaultConfig> faults;
};

class Resolver {
 public:
  Resolver(const ScenarioAst& ast, std::string_view source,
           std::string_view filename)
      : ast_(ast), src_(source), filename_(filename) {}

  ResolvedScenario run() {
    ResolvedScenario out;
    out.name = ast_.name;
    TrafficScenario& sc = out.scenario;

    PhaseParams defaults;
    bool seen_defaults = false;
    std::set<std::string> seen_top;
    // Two passes: scalars and `defaults` first, so `phase` blocks inherit
    // the resolved defaults no matter where the defaults block is written.
    for (const Entry& e : ast_.entries) {
      if (e.key == "phase") continue;
      if (e.key == "seed") {
        require_unique(seen_top, e);
        sc.seed = count(e, 0, 9007199254740991.0);  // 2^53 - 1: exact doubles
      } else if (e.key == "record_bytes") {
        require_unique(seen_top, e);
        sc.record_bytes = static_cast<std::size_t>(count(e, 1, 65536.0));
      } else if (e.key == "defaults") {
        if (seen_defaults) {
          fail(Code::kDuplicateKey, e.loc,
               "duplicate `defaults` block (only one is allowed)");
        }
        seen_defaults = true;
        need_block(e);
        if (e.has_label) {
          fail(Code::kTypeMismatch, e.loc, "`defaults` does not take a name");
        }
        apply_phase_block(defaults, e, /*is_phase=*/false, nullptr);
      } else {
        fail(Code::kUnknownKey, e.loc,
             "unknown key '" + e.key + "' at scenario level (expected seed, "
             "record_bytes, defaults or phase)");
      }
    }

    for (const Entry& e : ast_.entries) {
      if (e.key != "phase") continue;
      need_block(e);
      TrafficPhase ph;
      ph.name = e.has_label
                    ? e.label
                    : "phase" + std::to_string(sc.phases.size());
      PhaseParams p = defaults;
      std::uint64_t sessions = 0;
      apply_phase_block(p, e, /*is_phase=*/true, &sessions);
      if (sessions == 0) {
        fail(Code::kMissingKey, e.loc,
             "phase '" + ph.name + "' must declare `sessions` (> 0)");
      }
      ph.sessions = static_cast<std::size_t>(sessions);
      ph.model = p.model;
      ph.offered_load = p.offered_load;
      ph.users = p.users;
      ph.think_cycles = p.think_cycles;
      ph.resume_fraction = p.resume_fraction;
      ph.cipher_mix = p.cipher_mix;
      ph.size_mix = p.size_mix;
      ph.faults = p.faults;
      sc.phases.push_back(std::move(ph));
    }

    if (sc.phases.empty()) {
      fail(Code::kNoPhases, ast_.loc,
           "scenario declares no phases (at least one `phase { ... }` block "
           "is required)");
    }
    // Mirror the program's total into the flat field: harmless to the
    // engine (phases win) and friendlier in dumps.
    sc.sessions = sc.total_sessions();
    return out;
  }

 private:
  [[noreturn]] void fail(Code code, SourceLoc at, std::string message) const {
    throw ScenarioError(make_diagnostic(code, at, std::move(message), src_),
                        filename_);
  }

  void require_unique(std::set<std::string>& seen, const Entry& e) const {
    if (!seen.insert(e.key).second) {
      fail(Code::kDuplicateKey, e.loc, "duplicate key '" + e.key + "'");
    }
  }

  void need_block(const Entry& e) const {
    if (!e.is_block) {
      fail(Code::kTypeMismatch, e.loc,
           "`" + e.key + "` expects a `{ ... }` block");
    }
  }

  void need_scalar(const Entry& e) const {
    if (e.is_block) {
      fail(Code::kTypeMismatch, e.loc,
           "key '" + e.key + "' expects a value, not a block");
    }
  }

  double number(const Entry& e) const {
    need_scalar(e);
    if (e.value.kind != Value::Kind::kNumber) {
      fail(Code::kTypeMismatch, e.value.loc,
           "key '" + e.key + "' expects a number");
    }
    return e.value.number;
  }

  double ranged(const Entry& e, double lo, double hi,
                const char* what) const {
    const double v = number(e);
    if (!(std::isfinite(v) && v >= lo && v <= hi)) {
      fail(Code::kOutOfRange, e.value.loc,
           "key '" + e.key + "' " + what);
    }
    return v;
  }

  std::uint64_t count(const Entry& e, std::uint64_t lo, double hi) const {
    const double v = number(e);
    if (!(std::isfinite(v) && v >= static_cast<double>(lo) && v <= hi &&
          v == std::floor(v))) {
      fail(Code::kOutOfRange, e.value.loc,
           "key '" + e.key + "' expects an integer in [" +
               std::to_string(lo) + ", " +
               std::to_string(static_cast<std::uint64_t>(hi)) + "]");
    }
    return static_cast<std::uint64_t>(v);
  }

  /// Applies one defaults/phase block onto `p`.  For phase blocks,
  /// `sessions_out` receives the (required) session count.
  void apply_phase_block(PhaseParams& p, const Entry& block, bool is_phase,
                         std::uint64_t* sessions_out) const {
    const char* where = is_phase ? "phase" : "defaults";
    std::set<std::string> seen;
    for (const Entry& e : block.block) {
      if (e.key == "sessions" && is_phase) {
        require_unique(seen, e);
        *sessions_out = count(e, 1, 10000000.0);
      } else if (e.key == "arrivals") {
        require_unique(seen, e);
        p.model = arrivals_word(e);
      } else if (e.key == "load") {
        require_unique(seen, e);
        p.offered_load = ranged(e, 1e-6, 1000.0,
                                "expects a load in (0, 1000] (fraction of "
                                "modeled capacity)");
      } else if (e.key == "users") {
        require_unique(seen, e);
        p.users = static_cast<unsigned>(count(e, 1, 1000000.0));
      } else if (e.key == "think") {
        require_unique(seen, e);
        p.think_cycles =
            ranged(e, 0.0, 1e15, "expects think cycles in [0, 1e15]");
      } else if (e.key == "resume") {
        require_unique(seen, e);
        p.resume_fraction = resume_word(e);
      } else if (e.key == "mix") {
        require_unique(seen, e);
        need_block(e);
        p.cipher_mix = mix_block(e);
      } else if (e.key == "sizes") {
        require_unique(seen, e);
        need_block(e);
        p.size_mix = sizes_block(e);
      } else if (e.key == "faults") {
        require_unique(seen, e);
        need_block(e);
        // REPLACE semantics: a faults block always starts from the benign
        // default config, never from an inherited overlay — so an empty
        // `faults { }` in a phase cancels the defaults' storm.
        p.faults = faults_block(e, FaultConfig{});
      } else {
        fail(Code::kUnknownKey, e.loc,
             "unknown key '" + e.key + "' in " + where +
                 " block (expected " +
                 (is_phase ? "sessions, " : "") +
                 "arrivals, load, users, think, resume, mix, sizes or "
                 "faults)");
      }
    }
  }

  ArrivalModel arrivals_word(const Entry& e) const {
    need_scalar(e);
    if (e.value.kind == Value::Kind::kIdent) {
      if (e.value.text == "open") return ArrivalModel::kOpenLoop;
      if (e.value.text == "closed") return ArrivalModel::kClosedLoop;
    }
    fail(Code::kUnknownEnum, e.value.loc,
         "key 'arrivals' expects `open` or `closed`");
  }

  double resume_word(const Entry& e) const {
    need_scalar(e);
    if (e.value.kind == Value::Kind::kIdent) {
      if (e.value.text == "on") return 1.0;
      if (e.value.text == "off") return 0.0;
      fail(Code::kUnknownEnum, e.value.loc,
           "key 'resume' expects `on`, `off` or a fraction in [0, 1]");
    }
    return ranged(e, 0.0, 1.0, "expects a resume fraction in [0, 1]");
  }

  std::uint32_t weight(const Entry& e) const {
    return static_cast<std::uint32_t>(count(e, 1, 1000000.0));
  }

  std::vector<CipherMix> mix_block(const Entry& block) const {
    std::vector<CipherMix> out;
    if (block.block.empty()) {
      fail(Code::kEmptyMix, block.loc, "`mix` block has no entries");
    }
    for (const Entry& e : block.block) {
      CipherMix m;
      if (e.key_is_number || !cipher_by_name(e.key, m.cipher)) {
        fail(Code::kUnknownCipher, e.loc,
             "unknown cipher '" + e.key +
                 "' (expected 3des, aes128 or rc4)");
      }
      for (const CipherMix& prev : out) {
        if (prev.cipher == m.cipher) {
          fail(Code::kDuplicateEntry, e.loc,
               "cipher '" + e.key + "' listed twice in this mix");
        }
      }
      m.weight = weight(e);
      out.push_back(m);
    }
    return out;
  }

  std::vector<SizeMix> sizes_block(const Entry& block) const {
    std::vector<SizeMix> out;
    if (block.block.empty()) {
      fail(Code::kEmptyMix, block.loc, "`sizes` block has no entries");
    }
    for (const Entry& e : block.block) {
      if (!e.key_is_number) {
        fail(Code::kTypeMismatch, e.loc,
             "size mix entries are keyed by byte count (e.g. `4096: 2`), "
             "got '" + e.key + "'");
      }
      const double b = e.key_number;
      if (!(std::isfinite(b) && b >= 1.0 && b <= 1073741824.0 &&
            b == std::floor(b))) {
        fail(Code::kOutOfRange, e.loc,
             "transaction size must be an integer in [1, 2^30] bytes");
      }
      SizeMix m;
      m.bytes = static_cast<std::size_t>(b);
      for (const SizeMix& prev : out) {
        if (prev.bytes == m.bytes) {
          fail(Code::kDuplicateEntry, e.loc,
               "size " + e.key + " listed twice in this mix");
        }
      }
      m.weight = weight(e);
      out.push_back(m);
    }
    return out;
  }

  FaultConfig faults_block(const Entry& block, FaultConfig fc) const {
    std::set<std::string> seen;
    for (const Entry& e : block.block) {
      if (e.key == "wire_flip_rate") {
        require_unique(seen, e);
        fc.wire_flip_rate = ranged(e, 0.0, 1.0, "expects a rate in [0, 1]");
      } else if (e.key == "handshake_failure_rate") {
        require_unique(seen, e);
        fc.handshake_failure_rate =
            ranged(e, 0.0, 1.0, "expects a rate in [0, 1]");
      } else if (e.key == "abort_rate") {
        require_unique(seen, e);
        fc.abort_rate = ranged(e, 0.0, 1.0, "expects a rate in [0, 1]");
      } else if (e.key == "stall_rate") {
        require_unique(seen, e);
        fc.stall_rate = ranged(e, 0.0, 1.0, "expects a rate in [0, 1]");
      } else if (e.key == "stall_cycles") {
        require_unique(seen, e);
        fc.stall_cycles =
            ranged(e, 1.0, 1e15, "expects stall cycles in [1, 1e15]");
      } else if (e.key == "record_retry_budget") {
        require_unique(seen, e);
        fc.record_retry_budget = static_cast<unsigned>(count(e, 0, 64.0));
      } else if (e.key == "handshake_retry_budget") {
        require_unique(seen, e);
        fc.handshake_retry_budget = static_cast<unsigned>(count(e, 0, 64.0));
      } else if (e.key == "backoff_base_cycles") {
        require_unique(seen, e);
        fc.backoff_base_cycles =
            ranged(e, 1.0, 1e15, "expects backoff cycles in [1, 1e15]");
      } else if (e.key == "backoff_cap_cycles") {
        require_unique(seen, e);
        fc.backoff_cap_cycles =
            ranged(e, 1.0, 1e15, "expects backoff cycles in [1, 1e15]");
      } else if (e.key == "crash_at_cycles") {
        // A scheduled process kill at this virtual time (docs/recovery.md).
        // Unlike the per-session fault rates it is an external event: the
        // engine throws CrashFault when the clock passes it, and it never
        // rides along in a recording — a resumed run must not re-crash.
        require_unique(seen, e);
        fc.crash_at_cycles =
            ranged(e, 1.0, 1e15, "expects a crash time in [1, 1e15] cycles");
      } else {
        fail(Code::kUnknownKey, e.loc,
             "unknown key '" + e.key + "' in faults block");
      }
    }
    if (fc.backoff_cap_cycles < fc.backoff_base_cycles) {
      fail(Code::kOutOfRange, block.loc,
           "faults backoff_cap_cycles must be >= backoff_base_cycles");
    }
    return fc;
  }

  static bool cipher_by_name(const std::string& name, ssl::Cipher& out) {
    if (name == "3des") {
      out = ssl::Cipher::kTripleDesCbc;
      return true;
    }
    if (name == "aes128") {
      out = ssl::Cipher::kAes128Cbc;
      return true;
    }
    if (name == "rc4") {
      out = ssl::Cipher::kRc4;
      return true;
    }
    return false;
  }

  const ScenarioAst& ast_;
  std::string_view src_;
  std::string_view filename_;
};

}  // namespace

ResolvedScenario resolve(const ScenarioAst& ast, std::string_view source,
                         std::string_view filename) {
  return Resolver(ast, source, filename).run();
}

}  // namespace wsp::scenario
