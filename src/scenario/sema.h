// Semantic resolution for .wsp scenarios: ScenarioAst ->
// server::TrafficScenario traffic program (docs/scenarios.md §3).
//
// Responsibilities:
//   * key checking per block (E201 unknown, E202 duplicate, E207 missing),
//   * type/range checking of every value (E204 / E205),
//   * enum words (`arrivals open|closed`, `resume on|off|<fraction>`),
//   * cipher-name resolution (`3des`, `aes128`, `rc4` -> ssl::Cipher),
//   * defaults inheritance: a `defaults { ... }` block rebinds the built-in
//     phase template (Fig. 8 grid, open loop at 0.6), and every `phase`
//     starts from the resolved defaults.
//
// The output always uses the program form (TrafficScenario.phases
// non-empty) and satisfies TrafficScenario::validate() by construction.
#pragma once

#include <string_view>

#include "scenario/ast.h"
#include "server/traffic.h"

namespace wsp::scenario {

struct ResolvedScenario {
  std::string name;  ///< from `scenario "name"`, may be empty
  server::TrafficScenario scenario;
};

/// Throws ScenarioError on the first semantic error.
ResolvedScenario resolve(const ScenarioAst& ast, std::string_view source,
                         std::string_view filename);

}  // namespace wsp::scenario
