#include "select/callgraph.h"

#include <functional>
#include <set>
#include <sstream>
#include <stdexcept>

namespace wsp::select {

void CallGraph::add(CgNode node) { nodes_[node.name] = std::move(node); }

const CgNode& CallGraph::node(const std::string& name) const {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) throw std::out_of_range("CallGraph: unknown node " + name);
  return it->second;
}

CallGraph CallGraph::from_profiler(const sim::Profiler& profiler,
                                   const std::string& root) {
  CallGraph graph;
  const auto& funcs = profiler.functions();
  if (!funcs.count(root)) {
    throw std::invalid_argument("CallGraph::from_profiler: root never called");
  }
  for (const auto& [name, stats] : funcs) {
    CgNode node;
    node.name = name;
    node.local_cycles = stats.calls
                            ? static_cast<double>(stats.self_cycles) /
                                  static_cast<double>(stats.calls)
                            : 0.0;
    graph.nodes_[name] = std::move(node);
  }
  for (const auto& [edge, count] : profiler.edges()) {
    const auto& [caller, callee] = edge;
    if (caller == "<host>") continue;
    const auto cit = funcs.find(caller);
    if (cit == funcs.end() || cit->second.calls == 0) continue;
    graph.nodes_[caller].children.push_back(
        {callee, static_cast<double>(count) /
                     static_cast<double>(cit->second.calls)});
  }
  return graph;
}

std::vector<std::string> CallGraph::leaves(const std::string& root) const {
  std::vector<std::string> out;
  std::set<std::string> visited;
  std::function<void(const std::string&)> walk = [&](const std::string& name) {
    if (!visited.insert(name).second) return;
    const CgNode& n = node(name);
    if (n.children.empty()) {
      out.push_back(name);
      return;
    }
    for (const auto& [child, calls] : n.children) walk(child);
  };
  walk(root);
  return out;
}

std::string CallGraph::format(const std::string& root) const {
  std::ostringstream os;
  std::set<std::string> path;
  std::function<void(const std::string&, int, double)> walk =
      [&](const std::string& name, int depth, double calls) {
        for (int i = 0; i < depth; ++i) os << "  ";
        os << name;
        if (depth > 0) os << " (x" << calls << ")";
        const CgNode& n = node(name);
        os << "  [local " << n.local_cycles << " cyc]\n";
        if (!path.insert(name).second) return;  // guard (no recursion expected)
        for (const auto& [child, ccalls] : n.children) {
          walk(child, depth + 1, ccalls);
        }
        path.erase(name);
      };
  walk(root, 0, 1.0);
  return os.str();
}

}  // namespace wsp::select
