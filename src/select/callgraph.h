// Annotated call graphs for global custom-instruction selection
// (paper Sec. 3.4 / Fig. 4): nodes carry per-invocation local cycles,
// edges carry calls-per-invocation weights.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/profiler.h"

namespace wsp::select {

struct CgNode {
  std::string name;
  double local_cycles = 0.0;  ///< self cycles per invocation of this node
  /// (callee, calls per invocation of this node)
  std::vector<std::pair<std::string, double>> children;
};

class CallGraph {
 public:
  void add(CgNode node);
  bool has(const std::string& name) const { return nodes_.count(name) != 0; }
  const CgNode& node(const std::string& name) const;
  const std::map<std::string, CgNode>& nodes() const { return nodes_; }

  /// Builds the graph from profiler data: per-invocation self cycles and
  /// per-invocation call counts (edge count / caller invocations).
  /// `root` must have been invoked at least once.
  static CallGraph from_profiler(const sim::Profiler& profiler,
                                 const std::string& root);

  /// Leaves reachable from `root` (nodes with no children).
  std::vector<std::string> leaves(const std::string& root) const;

  /// Fig. 4-style rendering: indented tree with call multiplicities.
  std::string format(const std::string& root) const;

 private:
  std::map<std::string, CgNode> nodes_;
};

}  // namespace wsp::select
