#include "select/select.h"

#include <functional>
#include <limits>
#include <stdexcept>

#include "support/trace.h"

namespace wsp::select {

SelectionResult select_instructions(
    const CallGraph& graph, const std::string& root,
    const std::map<std::string, tie::ADCurve>& leaf_curves,
    const tie::InstrCatalog& catalog, double area_budget) {
  SelectionResult result;
  result.area_budget = area_budget;

  std::map<std::string, tie::ADCurve> memo;
  std::function<const tie::ADCurve&(const std::string&)> curve_of =
      [&](const std::string& name) -> const tie::ADCurve& {
    const auto mit = memo.find(name);
    if (mit != memo.end()) return mit->second;
    const CgNode& node = graph.node(name);
    tie::ADCurve curve;
    if (node.children.empty()) {
      const auto lit = leaf_curves.find(name);
      if (lit != leaf_curves.end()) {
        curve = lit->second;
      } else {
        curve.add(tie::ADPoint{0.0, node.local_cycles, {}});
      }
    } else {
      std::vector<std::pair<double, const tie::ADCurve*>> children;
      children.reserve(node.children.size());
      for (const auto& [child, calls] : node.children) {
        children.push_back({calls, &curve_of(child)});
      }
      trace::Span span("select",
                       trace::enabled() ? "combine/" + name : std::string());
      tie::ADCurve::CombineStats stats;
      curve = tie::ADCurve::combine(node.local_cycles, children, catalog, &stats);
      result.combine_stats[name] = stats;
      if (trace::enabled()) {
        trace::counter("select", "cartesian_points/" + name,
                       static_cast<double>(stats.cartesian_points));
        trace::counter("select", "reduced_points/" + name,
                       static_cast<double>(stats.reduced_points));
      }
    }
    return memo.emplace(name, std::move(curve)).first->second;
  };

  tie::ADCurve root_curve = curve_of(root);
  const std::size_t before_prune = root_curve.points().size();
  {
    WSP_TRACE_SPAN("select", "pareto_prune");
    root_curve.pareto_prune();
  }
  WSP_TRACE_COUNTER("select", "root_points_before_prune",
                    static_cast<double>(before_prune));
  WSP_TRACE_COUNTER("select", "root_points_after_prune",
                    static_cast<double>(root_curve.points().size()));

  const tie::ADPoint* best = nullptr;
  for (const tie::ADPoint& p : root_curve.points()) {
    if (p.area <= area_budget && (!best || p.cycles < best->cycles)) {
      best = &p;
    }
  }
  if (!best) {
    throw std::runtime_error("select_instructions: no point fits the budget");
  }
  result.chosen = *best;
  result.root_curve = std::move(root_curve);
  return result;
}

}  // namespace wsp::select
