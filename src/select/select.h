// Global custom-instruction selection (paper Sec. 3.4): propagate per-leaf
// A-D curves bottom-up through the call graph via Eq. (1), combining with
// dominance reduction and instruction sharing, Pareto-prune at the root,
// and pick the fastest point within the area budget.
#pragma once

#include <map>
#include <string>

#include "select/callgraph.h"
#include "tie/adcurve.h"

namespace wsp::select {

struct SelectionResult {
  tie::ADCurve root_curve;       ///< after Pareto pruning
  tie::ADPoint chosen;           ///< best point within the area budget
  double area_budget = 0.0;
  /// Cartesian-vs-reduced statistics per combined node (for Fig. 6
  /// reporting), keyed by node name.
  std::map<std::string, tie::ADCurve::CombineStats> combine_stats;
};

/// Runs the bottom-up propagation from `root`.
///
/// `leaf_curves` maps leaf routine names to their measured A-D curves;
/// leaves without a curve contribute a single zero-area point at their
/// profiled local cycles.  Throws std::runtime_error if no point fits the
/// area budget (the zero-area base point always fits a non-negative budget).
SelectionResult select_instructions(
    const CallGraph& graph, const std::string& root,
    const std::map<std::string, tie::ADCurve>& leaf_curves,
    const tie::InstrCatalog& catalog, double area_budget);

}  // namespace wsp::select
