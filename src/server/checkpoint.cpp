#include "server/checkpoint.h"

#include <cmath>
#include <string>

namespace wsp::server {

using replay::Cursor;
using replay::ErrorKind;
using replay::ReplayError;
using replay::put_double;
using replay::put_varint;
using replay::put_zigzag;

namespace {

[[noreturn]] void malformed(const Cursor& c, const std::string& detail) {
  throw ReplayError(ErrorKind::kMalformed, c.offset(), detail);
}

bool get_flag(Cursor& c, const char* name) {
  const std::uint64_t v = c.varint();
  if (v > 1) malformed(c, std::string(name) + " flag must be 0 or 1");
  return v != 0;
}

double get_finite(Cursor& c, const char* name) {
  const double v = c.f64();
  if (!std::isfinite(v)) malformed(c, std::string(name) + " is not finite");
  return v;
}

/// The ShardReport events-digest chain step (engine.cpp) — duplicated here
/// because validation must recompute the chain without an engine run.
std::uint64_t chain(std::uint64_t h, std::uint64_t event_digest) {
  return (h ^ event_digest) * 1099511628211ULL + 1;
}

}  // namespace

void encode_checkpoint(std::vector<std::uint8_t>& out,
                       const EngineCheckpoint& cp) {
  put_varint(out, cp.seq);
  put_double(out, cp.virtual_now);
  put_varint(out, cp.offered);
  put_varint(out, cp.shed);
  put_varint(out, cp.degrade_enters);
  put_varint(out, cp.degraded ? 1 : 0);
  put_double(out, cp.makespan_cycles);
  put_varint(out, cp.peak_sessions);
  put_double(out, cp.platform_cycles_base);
  put_double(out, cp.platform_cycles_optimized);

  put_varint(out, cp.shards.size());
  for (const CheckpointShard& sh : cp.shards) {
    put_double(out, sh.busy_until);
    put_varint(out, sh.admitted);
    put_varint(out, sh.dropped);
    put_varint(out, sh.peak_virtual_depth);
    put_varint(out, sh.events_digest);
    put_varint(out, sh.completions.size());
    for (const double at : sh.completions) put_double(out, at);
  }

  put_varint(out, cp.latencies.size());
  for (const double lat : cp.latencies) put_double(out, lat);

  put_varint(out, cp.entries.size());
  std::int64_t prev_id = 0;  // ids ascend in arrival order; delta-code them
  for (const CheckpointEntry& e : cp.entries) {
    put_zigzag(out, static_cast<std::int64_t>(e.event.id) - prev_id);
    prev_id = static_cast<std::int64_t>(e.event.id);
    put_varint(out, e.event.shard);
    put_varint(out, e.parked ? 1 : 0);
    if (e.parked) {
      put_varint(out, e.parked_info.phase);
      put_varint(out, static_cast<std::uint64_t>(e.parked_info.cipher));
      put_varint(out, e.parked_info.transaction_bytes);
      put_varint(out, e.parked_info.session_seed);
      put_varint(out, e.parked_info.resume ? 1 : 0);
      put_varint(out, e.parked_info.handle.slot);
      put_varint(out, e.parked_info.handle.gen);
    } else {
      put_varint(out, e.event.wire_bytes);
      put_varint(out, e.event.records);
      put_varint(out, e.event.retries);
      put_varint(out, e.event.repairs);
      put_varint(out, e.event.faults);
      put_varint(out, e.event.completed ? 1 : 0);
    }
  }

  const TrafficGeneratorState& g = cp.generator;
  for (int i = 0; i < 4; ++i) put_varint(out, g.rng.s[i]);
  put_varint(out, g.next_id);
  put_double(out, g.interarrival_mean);
  put_double(out, g.open_clock);
  put_varint(out, g.phase_idx);
  put_varint(out, g.phase_done);
  put_varint(out, g.phase_entered ? 1 : 0);
  put_varint(out, g.ready.size());
  for (const auto& [at, user] : g.ready) {
    put_double(out, at);
    put_varint(out, user);
  }
}

EngineCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  EngineCheckpoint cp;
  cp.seq = c.varint();
  cp.virtual_now = get_finite(c, "virtual_now");
  cp.offered = c.varint();
  cp.shed = c.varint();
  cp.degrade_enters = c.varint();
  cp.degraded = get_flag(c, "degraded");
  cp.makespan_cycles = get_finite(c, "makespan_cycles");
  cp.peak_sessions = c.varint();
  cp.platform_cycles_base = get_finite(c, "platform_cycles_base");
  cp.platform_cycles_optimized = get_finite(c, "platform_cycles_optimized");

  const std::uint64_t shards = c.varint();
  if (shards == 0 || shards > 64) {
    malformed(c, "shard count " + std::to_string(shards) +
                     " outside [1, 64]");
  }
  cp.shards.resize(static_cast<std::size_t>(shards));
  for (CheckpointShard& sh : cp.shards) {
    sh.busy_until = get_finite(c, "busy_until");
    sh.admitted = c.varint();
    sh.dropped = c.varint();
    sh.peak_virtual_depth = c.varint();
    sh.events_digest = c.varint();
    const std::uint64_t pending = c.varint();
    if (pending > sh.admitted) {
      malformed(c, "shard has more pending completions than admissions");
    }
    sh.completions.reserve(static_cast<std::size_t>(pending));
    for (std::uint64_t i = 0; i < pending; ++i) {
      sh.completions.push_back(get_finite(c, "completion time"));
    }
  }

  const std::uint64_t latencies = c.varint();
  if (latencies > payload.size()) {
    // Every latency costs >= 8 payload bytes; a count beyond the payload
    // size is corrupt, and rejecting it here keeps the reserve bounded.
    malformed(c, "latency count exceeds payload size");
  }
  cp.latencies.reserve(static_cast<std::size_t>(latencies));
  for (std::uint64_t i = 0; i < latencies; ++i) {
    cp.latencies.push_back(get_finite(c, "latency"));
  }

  const std::uint64_t entries = c.varint();
  if (entries > payload.size()) {
    malformed(c, "entry count exceeds payload size");
  }
  cp.entries.reserve(static_cast<std::size_t>(entries));
  std::int64_t prev_id = 0;
  for (std::uint64_t i = 0; i < entries; ++i) {
    CheckpointEntry e;
    const std::int64_t id = prev_id + c.zigzag();
    if (id < 0) malformed(c, "negative session id after delta decode");
    prev_id = id;
    e.event.id = static_cast<std::uint64_t>(id);
    e.event.shard = static_cast<std::uint32_t>(c.varint());
    if (e.event.shard >= cp.shards.size()) {
      malformed(c, "entry shard index out of range");
    }
    e.parked = get_flag(c, "parked");
    if (e.parked) {
      e.parked_info.phase = static_cast<std::uint32_t>(c.varint());
      const std::uint64_t raw_cipher = c.varint();
      if (raw_cipher > static_cast<std::uint64_t>(ssl::Cipher::kRc4)) {
        malformed(c, "unknown cipher id " + std::to_string(raw_cipher));
      }
      e.parked_info.cipher = static_cast<ssl::Cipher>(raw_cipher);
      e.parked_info.transaction_bytes = c.varint();
      if (e.parked_info.transaction_bytes == 0) {
        malformed(c, "parked session with zero transaction bytes");
      }
      e.parked_info.session_seed = c.varint();
      e.parked_info.resume = get_flag(c, "resume");
      e.parked_info.handle.slot = static_cast<std::uint32_t>(c.varint());
      e.parked_info.handle.gen = static_cast<std::uint32_t>(c.varint());
      if ((e.parked_info.handle.gen & 1u) == 0) {
        // A live slab handle's generation is odd by construction
        // (support/arena.h).  An even or zero generation means the
        // checkpoint references a freed/stale slot — the handle-hygiene
        // violation the fuzzer drives at this decoder.
        malformed(c, "parked session handle generation " +
                         std::to_string(e.parked_info.handle.gen) +
                         " is stale (live handles are odd)");
      }
    } else {
      e.event.wire_bytes = c.varint();
      e.event.records = c.varint();
      e.event.retries = static_cast<std::uint32_t>(c.varint());
      e.event.repairs = static_cast<std::uint32_t>(c.varint());
      e.event.faults = static_cast<std::uint32_t>(c.varint());
      e.event.completed = get_flag(c, "completed");
    }
    cp.entries.push_back(std::move(e));
  }

  TrafficGeneratorState& g = cp.generator;
  for (int i = 0; i < 4; ++i) g.rng.s[i] = c.varint();
  if (g.rng.s[0] == 0 && g.rng.s[1] == 0 && g.rng.s[2] == 0 &&
      g.rng.s[3] == 0) {
    malformed(c, "generator rng state is all-zero (xoshiro dead state)");
  }
  g.next_id = c.varint();
  g.interarrival_mean = get_finite(c, "interarrival_mean");
  g.open_clock = get_finite(c, "open_clock");
  g.phase_idx = c.varint();
  g.phase_done = c.varint();
  g.phase_entered = get_flag(c, "phase_entered");
  const std::uint64_t ready = c.varint();
  if (ready > payload.size()) {
    malformed(c, "pending-arrival count exceeds payload size");
  }
  g.ready.reserve(static_cast<std::size_t>(ready));
  double prev_at = -1.0;
  for (std::uint64_t i = 0; i < ready; ++i) {
    const double at = get_finite(c, "pending arrival time");
    const unsigned user = static_cast<unsigned>(c.varint());
    if (at < prev_at) {
      malformed(c, "pending arrivals out of ascending order");
    }
    prev_at = at;
    g.ready.emplace_back(at, user);
  }

  if (!c.done()) malformed(c, "trailing bytes after checkpoint payload");
  validate_checkpoint(cp);
  return cp;
}

void validate_checkpoint(const EngineCheckpoint& cp) {
  auto reject = [](const std::string& detail) {
    throw ReplayError(ErrorKind::kMalformed, 0, "checkpoint: " + detail);
  };

  std::uint64_t admitted_by_shard = 0;
  for (const CheckpointShard& sh : cp.shards) {
    admitted_by_shard += sh.admitted;
    double prev = -1.0;
    for (const double at : sh.completions) {
      if (at < prev) reject("shard completions out of queue order");
      prev = at;
    }
  }
  if (admitted_by_shard != cp.entries.size()) {
    reject("per-shard admission counts (" +
           std::to_string(admitted_by_shard) + ") disagree with entry list (" +
           std::to_string(cp.entries.size()) + ")");
  }
  if (cp.latencies.size() != cp.entries.size()) {
    reject("latency count " + std::to_string(cp.latencies.size()) +
           " != admitted count " + std::to_string(cp.entries.size()));
  }
  if (cp.admitted() > cp.offered) {
    reject("more admissions than offered arrivals");
  }
  if (cp.generator.next_id < cp.offered) {
    reject("generator id cursor behind the offered count");
  }

  // Recompute each shard's digest chain from the finalized entries and the
  // per-entry admission counts; both must agree with the stored values.
  // (decode_checkpoint already bounds shards and handle generations, but
  // callers also hand this validator checkpoints built or mutated in
  // memory, so the structural checks repeat here.)
  std::vector<std::uint64_t> digests(cp.shards.size(), 0);
  std::vector<std::uint64_t> admitted(cp.shards.size(), 0);
  for (const CheckpointEntry& e : cp.entries) {
    if (e.event.shard >= cp.shards.size()) {
      reject("entry shard index out of range");
    }
    if (e.parked && (e.parked_info.handle.gen & 1u) == 0) {
      reject("parked session handle generation " +
             std::to_string(e.parked_info.handle.gen) +
             " is stale (live handles are odd)");
    }
    ++admitted[e.event.shard];
    if (!e.parked) {
      digests[e.event.shard] = chain(digests[e.event.shard], e.event.digest());
    }
  }
  for (std::size_t i = 0; i < cp.shards.size(); ++i) {
    if (admitted[i] != cp.shards[i].admitted) {
      reject("shard " + std::to_string(i) + " admission count mismatch");
    }
    if (digests[i] != cp.shards[i].events_digest) {
      reject("shard " + std::to_string(i) +
             " events digest does not match its entries — the checkpoint "
             "was altered after capture");
    }
  }
}

}  // namespace wsp::server
