// EngineCheckpoint — the full deterministic run state captured at a quiesce
// barrier, and its wsp-replay-v1 chunk codec (docs/recovery.md).
//
// A checkpoint is taken by Engine::run between two arrivals, after the
// RecordScheduler has quiesced: every pushed work item has executed, so the
// only live sessions are parked cohort members (batch_lanes > 1) that were
// staged but not yet flushed — all still kPending, never touched by a
// worker.  That makes the captured state exact and thread-invariant:
//
//   * every finalized session's outcome (a SessionEvent) in arrival order;
//   * every parked session as its admission config (phase, cipher, size,
//     seed, resume flag) plus its slab handle — a kPending session is a
//     pure function of its config, so no key material is serialized;
//   * the virtual queueing model (per-shard busy_until + pending
//     completions, counters, latencies, degrade state);
//   * the traffic generator's full state, snapshotted BEFORE the draw of
//     the arrival that crossed the barrier, so resume re-draws it;
//   * per-shard running event digests over the finalized entries — a
//     cross-check the resume path recomputes and compares, so a trace
//     corrupted in a CRC-preserving way still fails loudly.
//
// Restoring a checkpoint into Engine::run(scenario, checkpoint) and letting
// the run finish produces a RunReport bit-identical to the uninterrupted
// run on every deterministic field, for any --threads × batch_lanes pair.
//
// Wire format: one kCheckpoint chunk per barrier, appended to the trace
// after the input chunks (server/record.h).  Legacy readers skip unknown
// chunk tags, so pre-checkpoint tooling still decodes these traces.
#pragma once

#include <cstdint>
#include <vector>

#include "server/engine.h"
#include "support/arena.h"
#include "support/replay.h"

namespace wsp::server {

/// One shard's virtual service-unit state plus its running accounting.
struct CheckpointShard {
  double busy_until = 0.0;  ///< virtual time the shard frees up
  /// Virtual completion times still pending in the shard's waiting room,
  /// in queue (ascending) order.
  std::vector<double> completions;
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t peak_virtual_depth = 0;
  /// Running digest chain over this shard's FINALIZED entries in arrival
  /// order (parked entries are not yet part of the chain).
  std::uint64_t events_digest = 0;

  bool operator==(const CheckpointShard&) const = default;
};

/// A parked (staged-but-unflushed) cohort member: everything needed to
/// re-admit it on resume.  The fault schedule and handshake budget are NOT
/// stored — both are re-derived from (scenario seed, id, phase) exactly as
/// at original admission.
struct ParkedSession {
  std::uint32_t phase = 0;  ///< scenario phase it arrived in (0 when flat)
  ssl::Cipher cipher = ssl::Cipher::kRc4;
  std::uint64_t transaction_bytes = 0;
  std::uint64_t session_seed = 0;
  bool resume = false;
  /// The session's slab handle at capture time — recorded so fuzzers and
  /// validators can prove handle hygiene (a live handle's generation is
  /// odd); resume re-inserts and gets a fresh handle.
  support::SlabRef handle;

  bool operator==(const ParkedSession&) const = default;
};

/// One admitted session, in arrival order: either finalized (its event
/// counters are complete) or parked (event carries only id/shard and the
/// parked_info says how to re-admit it).
struct CheckpointEntry {
  SessionEvent event;
  bool parked = false;
  ParkedSession parked_info;

  bool operator==(const CheckpointEntry&) const = default;
};

/// Full deterministic engine state at one quiesce barrier.
struct EngineCheckpoint {
  std::uint64_t seq = 0;       ///< barrier index within the run (0-based)
  double virtual_now = 0.0;    ///< the barrier's virtual time (a multiple of
                               ///< checkpoint_every)
  std::uint64_t offered = 0;
  std::uint64_t shed = 0;
  std::uint64_t degrade_enters = 0;
  bool degraded = false;
  double makespan_cycles = 0.0;
  std::uint64_t peak_sessions = 0;
  double platform_cycles_base = 0.0;
  double platform_cycles_optimized = 0.0;
  std::vector<CheckpointShard> shards;
  /// Per-admission virtual sojourn times, admission order.
  std::vector<double> latencies;
  /// Every admitted session so far, arrival order.
  std::vector<CheckpointEntry> entries;
  TrafficGeneratorState generator;

  bool operator==(const EngineCheckpoint&) const = default;

  std::uint64_t admitted() const {
    return static_cast<std::uint64_t>(entries.size());
  }
};

/// Appends the kCheckpoint chunk payload for `cp` to `out`.
void encode_checkpoint(std::vector<std::uint8_t>& out,
                       const EngineCheckpoint& cp);

/// Decodes one kCheckpoint chunk payload.  Structural damage — truncation,
/// overlong varints, trailing garbage, out-of-range enums, even slab-handle
/// generations, impossible counts — throws a typed replay::ReplayError;
/// nothing is clamped or guessed.
EngineCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& payload);

/// Semantic validation beyond what decoding can see: entry/latency/admitted
/// count agreement, per-shard digest chains recomputed from the finalized
/// entries and compared against the stored values, shard indices in range,
/// monotone completions, parked-handle hygiene.  Throws
/// replay::ReplayError(kMalformed) on any violation — this is what stands
/// between a CRC-valid-but-corrupt checkpoint and the engine.
void validate_checkpoint(const EngineCheckpoint& cp);

}  // namespace wsp::server
