#include "server/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "crypto/batch.h"
#include "server/checkpoint.h"
#include "server/session_table.h"
#include "support/trace.h"

namespace wsp::server {

ssl::PlatformCosts calibrated_costs(Pricing pricing) {
  // Component costs from the Fig. 8 ISS measurement (bench_fig8_ssl /
  // bench_report --only fig8, seed 21: RSA-1024 ops, 3DES record cipher on
  // the base and TIE-optimized cores).  Baked in as constants so pricing a
  // session is arithmetic, not an ISS run; the unaccelerated misc/hash
  // shares come from ssl::misc_cost_defaults() either way.
  ssl::PlatformCosts c = ssl::misc_cost_defaults();
  if (pricing == Pricing::kBase) {
    c.rsa_private_cycles = 89884113.0;
    c.rsa_public_cycles = 997801.0;
    c.symmetric_cycles_per_byte = 1660.8;
  } else {
    c.rsa_private_cycles = 3869594.0;
    c.rsa_public_cycles = 175720.0;
    c.symmetric_cycles_per_byte = 44.3;
  }
  return c;
}

namespace {

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// FNV-1a over the per-session (id, wire_bytes, records) triples, folded to
// 32 bits so the digest survives a double-typed JSON field exactly.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  std::uint32_t fold() const {
    return static_cast<std::uint32_t>(h ^ (h >> 32));
  }
};

/// Bounded exponential backoff after the i-th failed handshake attempt
/// (virtual cycles).
double backoff_cycles(const FaultConfig& fc, unsigned attempt) {
  double b = fc.backoff_base_cycles;
  for (unsigned i = 0; i < attempt && b < fc.backoff_cap_cycles; ++i) b *= 2.0;
  return std::min(b, fc.backoff_cap_cycles);
}

/// Virtual-timeline service time for one session under its fault schedule.
/// This is a queueing MODEL of the recovery machinery, not a cycle-accurate
/// replay of it: what matters is that it is a pure function of the schedule
/// (hence identical for any --threads) and moves in the right direction —
/// failed handshakes add asymmetric work plus backoff, wire flips add a
/// retransmission surcharge, a poisoned record truncates the stream after
/// the doomed repair ladder, a stall adds dead time.
double modeled_service(const ssl::PlatformCosts& price, std::size_t bytes,
                       std::size_t record_bytes, const FaultSchedule& f,
                       const FaultConfig& fc, bool resume) {
  double service = 0.0;
  // A failed full exchange pays both asymmetric operations before the
  // premaster check rejects it; a failed resumption only burns the
  // abbreviated protocol work (the ticket is rejected before any key
  // exchange).  Either way the backoff follows.
  const double failed_attempt_cycles =
      resume ? 0.25 * price.handshake_misc_cycles
             : price.rsa_private_cycles + price.rsa_public_cycles;
  const unsigned failures =
      std::min(f.handshake_failures, fc.handshake_retry_budget + 1);
  for (unsigned i = 0; i < failures; ++i) {
    service += failed_attempt_cycles;
    service += backoff_cycles(fc, i);
  }
  if (f.handshake_failures > fc.handshake_retry_budget) {
    return service;  // aborted before any record moved
  }
  double body = resume ? ssl::resumed_transaction_cost(price, bytes).total()
                       : ssl::transaction_cost(price, bytes).total();
  if (f.wire_flip_rate > 0.0) {
    body *= 1.0 + f.wire_flip_rate;  // retransmission surcharge
  }
  if (f.abort_scheduled) {
    const std::uint64_t total_records =
        std::max<std::uint64_t>(1, (bytes + record_bytes - 1) / record_bytes);
    const double per_record = body / static_cast<double>(total_records);
    const double done = std::min<double>(static_cast<double>(f.abort_record),
                                         static_cast<double>(total_records));
    // Stream up to the poisoned record, then the full (losing) repair
    // ladder: budgeted retransmits, one rekey, one last retransmit.
    body = done * per_record +
           static_cast<double>(f.record_retry_budget + 2) * per_record;
  }
  service += body;
  if (f.stall_scheduled) service += f.stall_cycles;
  return service;
}

}  // namespace

std::uint64_t SessionEvent::digest() const {
  Digest d;
  d.mix(id);
  d.mix(shard);
  d.mix(wire_bytes);
  d.mix(records);
  d.mix(retries);
  d.mix(repairs);
  d.mix(faults);
  d.mix(completed ? 1 : 0xAB);
  return d.h;
}

Engine::Engine(const EngineConfig& config) : config_(config) {
  if (config_.shards == 0) {
    // Auto: scale the data plane with the machine.  Callers that need
    // cross-host reproducible virtual timelines pin an explicit count.
    const unsigned hw = std::thread::hardware_concurrency();
    config_.shards = std::clamp(hw == 0 ? 4u : hw, 1u, 64u);
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument(
        "server: EngineConfig.queue_capacity must be > 0");
  }
  if (config_.record_batch == 0) {
    throw std::invalid_argument(
        "server: EngineConfig.record_batch must be > 0");
  }
  if (config_.rsa_bits < 512) {
    throw std::invalid_argument(
        "server: EngineConfig.rsa_bits must be >= 512");
  }
  if (config_.batch_lanes < 1 || config_.batch_lanes > crypto::kMaxBatchLanes) {
    throw std::invalid_argument(
        "server: EngineConfig.batch_lanes must be in [1, 8]");
  }
  config_.faults.validate();
  if (!std::isfinite(config_.checkpoint_every) ||
      config_.checkpoint_every < 0.0) {
    throw std::invalid_argument(
        "server: EngineConfig.checkpoint_every must be finite and >= 0");
  }
  config_.threads = std::max(1u, config_.threads);
}

RunReport Engine::run(const TrafficScenario& scenario) {
  return run_internal(scenario, nullptr);
}

RunReport Engine::run(const TrafficScenario& scenario,
                      const EngineCheckpoint& checkpoint) {
  return run_internal(scenario, &checkpoint);
}

RunReport Engine::run_internal(const TrafficScenario& scenario,
                               const EngineCheckpoint* restore) {
  WSP_TRACE_SPAN("server", "run");
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  // Reject degenerate scenarios (zero sessions, empty grids/mixes,
  // non-finite loads, ...) before any state is built.
  scenario.validate();

  RunReport rep;
  rep.threads = config_.threads;
  const unsigned shards = config_.shards;
  rep.shards.resize(shards);

  const ssl::PlatformCosts price = calibrated_costs(config_.pricing);
  const ssl::PlatformCosts base = calibrated_costs(Pricing::kBase);
  const ssl::PlatformCosts opt = calibrated_costs(Pricing::kOptimized);

  const bool phased = scenario.phased();
  auto price_one = [](const ssl::PlatformCosts& costs, std::size_t bytes,
                      bool resumed) {
    return resumed ? ssl::resumed_transaction_cost(costs, bytes).total()
                   : ssl::transaction_cost(costs, bytes).total();
  };

  // Mean service time: the flat path averages the uniform size grid; a
  // program gets one weighted figure per phase (size-mix weights, blended
  // across the resume fraction), and reports the session-weighted mean.
  double mean_service = 0.0;
  std::vector<double> phase_means;
  if (!phased) {
    const bool resume = scenario.resume_sessions;
    for (const std::size_t bytes : scenario.transaction_sizes) {
      mean_service += price_one(price, bytes, resume);
    }
    mean_service /= static_cast<double>(scenario.transaction_sizes.size());
  } else {
    phase_means.reserve(scenario.phases.size());
    for (const TrafficPhase& ph : scenario.phases) {
      double full = 0.0, resumed = 0.0;
      std::uint64_t wsum = 0;
      for (const SizeMix& m : ph.size_mix) {
        const double w = static_cast<double>(m.weight);
        full += price_one(price, m.bytes, false) * w;
        resumed += price_one(price, m.bytes, true) * w;
        wsum += m.weight;
      }
      full /= static_cast<double>(wsum);
      resumed /= static_cast<double>(wsum);
      const double f = ph.resume_fraction;
      phase_means.push_back(f <= 0.0   ? full
                            : f >= 1.0 ? resumed
                                       : (1.0 - f) * full + f * resumed);
    }
    if (scenario.phases.size() == 1) {
      // Exactly the single phase's figure (no weighting round-trip), so a
      // one-phase program reproduces the flat path's report bit for bit.
      mean_service = phase_means[0];
    } else {
      double acc = 0.0;
      for (std::size_t i = 0; i < scenario.phases.size(); ++i) {
        acc += phase_means[i] *
               static_cast<double>(scenario.phases[i].sessions);
      }
      mean_service = acc / static_cast<double>(scenario.total_sessions());
    }
  }
  rep.mean_service_cycles = mean_service;
  rep.memory_per_session = SessionTable::bytes_per_session();

  TrafficGenerator gen = phased ? TrafficGenerator(scenario, phase_means, shards)
                                : TrafficGenerator(scenario, mean_service, shards);

  // Fault plans: the engine-wide plan, plus one per phase where a .wsp
  // fault overlay replaces it (rekey storms, adversarial floods).  Every
  // plan keys off the scenario seed, so schedules stay pure in
  // (seed, session id) regardless of which phase a session lands in.
  const FaultPlan plan(config_.faults, scenario.seed);
  std::vector<FaultPlan> phase_plans;
  std::vector<FaultConfig> phase_faults;
  if (phased) {
    phase_plans.reserve(scenario.phases.size());
    for (const TrafficPhase& ph : scenario.phases) {
      const FaultConfig& fc = ph.faults ? *ph.faults : config_.faults;
      phase_faults.push_back(fc);
      phase_plans.emplace_back(fc, scenario.seed);
    }
  }

  // Real execution: one server key per run (the server's identity), worker
  // pool, bounded scheduler, sharded connection table.  Resumed scenarios
  // never touch the key (no RSA exchange happens), so skip the generation —
  // at 512 bits it otherwise dominates the wall time of small resumed runs.
  bool any_full_handshake = !scenario.resume_sessions;
  if (phased) {
    any_full_handshake = false;
    for (const TrafficPhase& ph : scenario.phases) {
      if (ph.resume_fraction < 1.0) any_full_handshake = true;
    }
  }
  std::optional<rsa::PrivateKey> server_key_storage;
  if (any_full_handshake) {
    Rng key_rng(scenario.seed ^ 0xC3A5C85C97CB3127ULL);
    server_key_storage = rsa::generate_key(config_.rsa_bits, key_rng);
  }
  const rsa::PrivateKey* server_key =
      server_key_storage ? &*server_key_storage : nullptr;
  ThreadPool pool(config_.threads);
  SessionTable table(shards);
  RecordScheduler sched(pool, shards, config_.queue_capacity,
                        config_.record_batch);

  // Virtual-time queueing state: per shard, one FIFO service unit with a
  // waiting room of queue_capacity sessions.
  struct VirtualShard {
    std::deque<double> completions;  ///< scheduled completion times, FIFO
    double busy_until = 0.0;
  };
  std::vector<VirtualShard> vq(shards);

  // Each admitted session writes exactly one slot; slots are only read
  // after drain().  deque: stable addresses under push_back.
  struct Slot {
    std::uint64_t id = 0;
    unsigned shard = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t records = 0;
    std::uint32_t retries = 0;
    std::uint32_t repairs = 0;
    std::uint32_t faults = 0;
    bool completed = false;
    bool aborted = false;
  };
  std::deque<Slot> slots;

  std::vector<double> latencies;
  bool degraded = false;

  // Shared by the scalar closure and the batched cohorts: the handshake
  // retry ladder (returns true when the session aborted instead of
  // establishing) and the slot/table finalization every session gets
  // exactly once.  Both are called from worker threads; `table` is sharded
  // and a shard's sessions are pumped FIFO on one worker (scheduler.h).
  // `resume` and `hs_budget` are per session now: a program phase sets its
  // own resume fraction and may override the fault budgets.
  auto establish = [server_key](Session* session, bool resume,
                                unsigned hs_budget) -> bool {
    for (unsigned attempt = 0;; ++attempt) {
      try {
        if (resume) {
          // Abbreviated handshake: no key exchange, no modexp engines.
          session->resume();
        } else {
          ModexpEngine client_engine{ModexpConfig{}};
          ModexpConfig server_cfg;  // the explored-optimal configuration
          server_cfg.mul = MulAlgo::kMontCIOS;
          server_cfg.window_bits = 5;
          server_cfg.crt = CrtMode::kGarner;
          server_cfg.caching = Caching::kFull;
          ModexpEngine server_engine(server_cfg);
          session->handshake(*server_key, client_engine, server_engine);
        }
        return false;
      } catch (const SessionError& e) {
        if (e.kind() != SessionErrorKind::kHandshakeFailed ||
            attempt >= hs_budget) {
          session->abort();
          return true;
        }
        // Retry; the matching exponential backoff is priced on the
        // virtual timeline by modeled_service().
      }
    }
  };
  auto finalize = [&table](Session* session, SessionHandle handle, Slot* slot,
                           bool aborted) {
    slot->wire_bytes = session->wire_bytes();
    slot->records = session->records();
    const std::uint32_t attempts = session->handshake_attempts();
    slot->retries = session->retries() + (attempts > 0 ? attempts - 1 : 0);
    slot->repairs = session->repairs();
    slot->faults = session->faults_seen();
    slot->aborted = aborted;
    table.erase(handle);
  };

  // Batched data plane (batch_lanes > 1): sessions are collected into
  // per-shard cohorts and drained three-phase — every member stages one
  // record's seal, one dispatcher flush runs the cipher passes
  // lane-interleaved, then the opens, then verification — so the kernels
  // see `batch_lanes` records from distinct sessions side by side.  All
  // per-session state advances in the same order pump() uses, so the
  // deterministic report is bit-identical to the scalar plane.
  struct CohortMember {
    Slot* slot;
    Session* session;
    SessionHandle handle;
    bool resume;          ///< this session's establishment path
    unsigned hs_budget;   ///< its phase's handshake retry budget
    std::uint32_t phase;  ///< scenario phase it arrived in (checkpointing:
                          ///< restore re-derives its schedule from this)
  };
  const unsigned lanes = config_.batch_lanes;
  const std::size_t cohort_cap =
      std::max<std::size_t>(lanes, config_.record_batch);
  std::vector<std::vector<CohortMember>> cohort_staging(lanes > 1 ? shards : 0);
  std::atomic<std::uint64_t> batched_records{0};
  std::atomic<std::uint64_t> batch_flushes{0};
  auto run_cohort = [&establish, &finalize, lanes, &batched_records,
                     &batch_flushes](std::vector<CohortMember>& members) {
    crypto::BatchDispatcher dispatcher(lanes);
    struct Active {
      CohortMember m;
      Session::Staged st;
      bool finished = false;  ///< transaction complete, teardown pending
      bool dead = false;      ///< aborted mid-stream
    };
    std::vector<Active> live;
    live.reserve(members.size());
    for (CohortMember& m : members) {
      bool aborted;
      try {
        aborted = establish(m.session, m.resume, m.hs_budget);
      } catch (...) {
        m.session->abort();
        aborted = true;
      }
      if (aborted) {
        finalize(m.session, m.handle, m.slot, /*aborted=*/true);
      } else {
        live.push_back(Active{m, Session::Staged{}, false, false});
      }
    }
    try {
      while (!live.empty()) {
        // Phase 1: stage every member's next seal, then run the encrypt
        // passes in one batched flush.
        for (Active& a : live) {
          try {
            if (!a.m.session->stage_seal(a.st, dispatcher)) a.finished = true;
          } catch (...) {
            a.m.session->abort();
            a.dead = true;
          }
        }
        dispatcher.flush();
        // Phase 2: complete seals, tamper/account, stage the opens.
        for (Active& a : live) {
          if (a.finished || a.dead) continue;
          try {
            a.m.session->stage_open(a.st, dispatcher);
          } catch (...) {
            a.m.session->abort();
            a.dead = true;
          }
        }
        dispatcher.flush();
        // Phase 3: verify; failures run the scalar repair ladder, which
        // throws SessionError(kAborted) when exhausted — same as pump().
        for (Active& a : live) {
          if (a.finished || a.dead) continue;
          try {
            a.m.session->finish_staged(a.st);
          } catch (...) {
            a.m.session->abort();
            a.dead = true;
          }
        }
        // Retire finished and dead members; the rest stage another record.
        std::size_t w = 0;
        for (Active& a : live) {
          if (a.finished) {
            try {
              a.m.session->teardown();
              a.m.slot->completed = true;
              finalize(a.m.session, a.m.handle, a.m.slot, /*aborted=*/false);
            } catch (...) {
              a.m.session->abort();
              finalize(a.m.session, a.m.handle, a.m.slot, /*aborted=*/true);
            }
          } else if (a.dead) {
            finalize(a.m.session, a.m.handle, a.m.slot, /*aborted=*/true);
          } else {
            live[w++] = std::move(a);
          }
        }
        live.resize(w);
      }
    } catch (...) {
      // A dispatcher-level failure (never expected for well-formed jobs):
      // preserve the leak invariant — every admitted session finalizes.
      for (Active& a : live) {
        a.m.session->abort();
        finalize(a.m.session, a.m.handle, a.m.slot, /*aborted=*/true);
      }
    }
    batched_records.fetch_add(dispatcher.jobs_submitted(),
                              std::memory_order_relaxed);
    batch_flushes.fetch_add(dispatcher.flushes(), std::memory_order_relaxed);
  };

  // The scalar data plane as one reusable push — the classic per-session
  // pump task.  Shared by the admission loop and the checkpoint-restore
  // path so a re-admitted parked session runs byte-identical code.
  auto push_scalar = [&sched, &establish, &finalize](
                         unsigned shard, Slot* slot, Session* session,
                         SessionHandle handle, bool resume, unsigned hs_budget,
                         std::size_t batch) {
    sched.push(shard, [slot, session, handle, batch, resume, hs_budget,
                       &establish, &finalize] {
      bool aborted = false;
      try {
        aborted = establish(session, resume, hs_budget);
        if (!aborted) {
          while (!session->finished()) session->pump(batch);
          session->teardown();
          slot->completed = true;
        }
      } catch (...) {
        // SessionError(kAborted) from the exhausted repair ladder, or any
        // unexpected failure: the session is finished either way.  abort()
        // is idempotent and safe from every state but kClosed.
        session->abort();
        aborted = true;
      }
      finalize(session, handle, slot, aborted);
    });
  };

  // Crash-fault deadline: the earliest armed crash_at_cycles across the
  // engine config and every phase overlay.  Detected at arrival
  // granularity — the first arrival at/after the deadline kills the run.
  double crash_at = config_.faults.crash_at_cycles;
  for (const FaultConfig& pfc : phase_faults) {
    if (pfc.crash_at_cycles > 0.0 &&
        (crash_at <= 0.0 || pfc.crash_at_cycles < crash_at)) {
      crash_at = pfc.crash_at_cycles;
    }
  }

  // Checkpoint barriers (docs/recovery.md): at every multiple of
  // checkpoint_every on the virtual clock, quiesce the data plane and hand
  // the full run state to the sink.  `pre_draw` holds the generator state
  // from BEFORE the current arrival's draw — the barrier decision is made
  // from the drawn arrival's time, so the checkpoint must store the
  // pre-draw state for resume to re-draw that arrival.
  CheckpointSink* sink = config_.checkpoint_sink;
  const double cp_every = config_.checkpoint_every;
  const bool checkpointing = sink != nullptr && cp_every > 0.0;
  std::uint64_t checkpoint_seq = 0;
  double next_cp = cp_every;
  TrafficGeneratorState pre_draw;

  auto quiesce_checkpoint = [&](double cp_time) {
    WSP_TRACE_SPAN("server", "checkpoint");
    // Quiesce: every pushed work item has executed (proven by the
    // scheduler, not assumed).  The only live sessions left are
    // staged-but-unflushed cohort members, all still kPending — the walk
    // below verifies exactly that before anything is serialized.
    sched.quiesce();
    std::unordered_map<const Slot*, const CohortMember*> parked;
    for (const auto& staged : cohort_staging) {
      for (const CohortMember& m : staged) parked.emplace(m.slot, &m);
    }
    std::size_t live = 0;
    for (unsigned s = 0; s < shards; ++s) {
      table.for_each_live(s, [&](SessionHandle, Session& session) {
        ++live;
        if (session.state() != SessionState::kPending) {
          throw std::logic_error(
              "server: quiesce barrier found a live session past kPending — "
              "the data plane did not quiesce");
        }
      });
    }
    if (live != parked.size()) {
      throw std::logic_error(
          "server: quiesce barrier live-session count disagrees with the "
          "staged cohorts");
    }
    for (const auto& [slot_ptr, m] : parked) {
      (void)slot_ptr;
      if (table.get(m->handle) != m->session) {
        throw std::logic_error(
            "server: staged cohort member's handle went stale before the "
            "barrier");
      }
    }

    EngineCheckpoint cp;
    cp.seq = checkpoint_seq++;
    cp.virtual_now = cp_time;
    cp.offered = rep.offered;
    cp.shed = rep.shed;
    cp.degrade_enters = rep.degrade_enters;
    cp.degraded = degraded;
    cp.makespan_cycles = rep.makespan_cycles;
    cp.peak_sessions = rep.peak_sessions;
    cp.platform_cycles_base = rep.platform_cycles_base;
    cp.platform_cycles_optimized = rep.platform_cycles_optimized;
    cp.shards.resize(shards);
    for (unsigned s = 0; s < shards; ++s) {
      CheckpointShard& csh = cp.shards[s];
      csh.busy_until = vq[s].busy_until;
      csh.completions.assign(vq[s].completions.begin(),
                             vq[s].completions.end());
      csh.admitted = rep.shards[s].admitted;
      csh.dropped = rep.shards[s].dropped;
      csh.peak_virtual_depth = rep.shards[s].peak_virtual_depth;
    }
    cp.latencies = latencies;
    cp.entries.reserve(slots.size());
    for (const Slot& slot : slots) {
      CheckpointEntry e;
      e.event.id = slot.id;
      e.event.shard = slot.shard;
      const auto it = parked.find(&slot);
      if (it != parked.end()) {
        const CohortMember& m = *it->second;
        const SessionConfig& mc = m.session->config();
        e.parked = true;
        e.parked_info.phase = m.phase;
        e.parked_info.cipher = mc.cipher;
        e.parked_info.transaction_bytes = mc.transaction_bytes;
        e.parked_info.session_seed = mc.seed;
        e.parked_info.resume = m.resume;
        e.parked_info.handle = m.handle.ref;
      } else {
        e.event.wire_bytes = slot.wire_bytes;
        e.event.records = slot.records;
        e.event.retries = slot.retries;
        e.event.repairs = slot.repairs;
        e.event.faults = slot.faults;
        e.event.completed = slot.completed;
        CheckpointShard& csh = cp.shards[slot.shard];
        csh.events_digest =
            (csh.events_digest ^ e.event.digest()) * 1099511628211ULL + 1;
      }
      cp.entries.push_back(std::move(e));
    }
    cp.generator = pre_draw;
    sink->on_checkpoint(cp);
  };

  // Checkpoint restore: re-arm the virtual queueing model, counters and
  // latency ledger; refill the slot ledger in arrival order (finalized
  // outcomes verbatim, parked sessions re-admitted through the normal
  // staging/pump machinery); rewind the generator to the pre-draw state.
  // Structural mismatches throw std::logic_error — the typed-error
  // validation of untrusted traces lives in server/record.h's resume path,
  // which runs before this is reached.
  if (restore != nullptr) {
    const EngineCheckpoint& cp = *restore;
    auto bad = [](const std::string& what) {
      throw std::logic_error("server: checkpoint does not fit this run: " +
                             what);
    };
    if (cp.shards.size() != shards) bad("shard count mismatch");
    if (cp.offered > scenario.total_sessions()) {
      bad("offered count exceeds the scenario's total sessions");
    }
    rep.offered = cp.offered;
    rep.shed = cp.shed;
    rep.degrade_enters = cp.degrade_enters;
    degraded = cp.degraded;
    rep.makespan_cycles = cp.makespan_cycles;
    rep.peak_sessions = static_cast<std::size_t>(cp.peak_sessions);
    rep.platform_cycles_base = cp.platform_cycles_base;
    rep.platform_cycles_optimized = cp.platform_cycles_optimized;
    for (unsigned s = 0; s < shards; ++s) {
      const CheckpointShard& csh = cp.shards[s];
      vq[s].busy_until = csh.busy_until;
      vq[s].completions.assign(csh.completions.begin(),
                               csh.completions.end());
      rep.shards[s].admitted = csh.admitted;
      rep.shards[s].dropped = csh.dropped;
      rep.shards[s].peak_virtual_depth =
          static_cast<std::size_t>(csh.peak_virtual_depth);
      rep.admitted += csh.admitted;
      rep.dropped += csh.dropped;
    }
    latencies = cp.latencies;
    for (const CheckpointEntry& e : cp.entries) {
      if (e.event.shard != static_cast<std::uint32_t>(e.event.id % shards)) {
        bad("entry shard disagrees with its session id");
      }
      slots.push_back(
          Slot{e.event.id, e.event.shard, 0, 0, 0, 0, 0, false, false});
      Slot* slot = &slots.back();
      if (!e.parked) {
        slot->wire_bytes = e.event.wire_bytes;
        slot->records = e.event.records;
        slot->retries = e.event.retries;
        slot->repairs = e.event.repairs;
        slot->faults = e.event.faults;
        slot->completed = e.event.completed;
        slot->aborted = !e.event.completed;
        continue;
      }
      const ParkedSession& p = e.parked_info;
      if (phased && p.phase >= scenario.phases.size()) {
        bad("parked phase out of range");
      }
      if (!phased && p.phase != 0) bad("parked phase on a flat scenario");
      const FaultConfig& pfc = phased ? phase_faults[p.phase] : config_.faults;
      SessionConfig cfg;
      cfg.id = e.event.id;
      cfg.cipher = p.cipher;
      cfg.transaction_bytes = static_cast<std::size_t>(p.transaction_bytes);
      cfg.record_bytes = scenario.record_bytes;
      cfg.seed = p.session_seed;
      cfg.faults =
          (phased ? phase_plans[p.phase] : plan).schedule_for(e.event.id);
      const SessionTable::Inserted ins = table.insert(cfg);
      if (lanes > 1) {
        // Parked members rejoin the staging area; the continued arrival
        // stream tops the cohorts up and flushes them exactly like the
        // original admission path (or the post-loop partial flush does).
        cohort_staging[e.event.shard].push_back(
            CohortMember{slot, ins.session, ins.handle, p.resume,
                         pfc.handshake_retry_budget, p.phase});
      } else {
        // Resuming a lanes>1 checkpoint on the scalar plane: the parked
        // session runs the classic pump.  The batch quantum is a host-side
        // knob, so deciding it from the restored degrade flag is safe.
        const std::size_t batch =
            degraded ? std::max<std::size_t>(1, config_.record_batch / 2)
                     : config_.record_batch;
        push_scalar(e.event.shard, slot, ins.session, ins.handle, p.resume,
                    pfc.handshake_retry_budget, batch);
      }
    }
    gen.restore(cp.generator);
    checkpoint_seq = cp.seq + 1;
    next_cp = cp.virtual_now + cp_every;
  }

  for (;;) {
    if (checkpointing) pre_draw = gen.state();
    const std::optional<SessionArrival> arrival = gen.next();
    if (!arrival) break;
    // Barriers due at/before this arrival fire first (over the pre-draw
    // generator state), then an armed crash kills the run before the
    // arrival is offered.  The order matters: a barrier scheduled before
    // the crash deadline must reach the trace even when both land between
    // the same two arrivals.
    const double now = arrival->at_cycles;
    const bool crash_now = crash_at > 0.0 && now >= crash_at;
    const double barrier_limit = crash_now ? crash_at : now;
    while (checkpointing && next_cp <= barrier_limit) {
      quiesce_checkpoint(next_cp);
      next_cp += cp_every;
    }
    if (crash_now) {
      sched.drain();  // clean unwind: no worker may touch freed stack state
      throw CrashFault(now, crash_at);
    }
    ++rep.offered;
    const unsigned shard = static_cast<unsigned>(arrival->id % shards);

    // Evict every shard up to this arrival so the in-system count — the
    // degrade-mode signal and the peak_sessions source — is exact, not the
    // lazily-evicted per-shard view.
    std::size_t in_system = 0;
    for (VirtualShard& other : vq) {
      while (!other.completions.empty() &&
             other.completions.front() <= arrival->at_cycles) {
        other.completions.pop_front();
      }
      in_system += other.completions.size();
    }

    // Degrade mode with hysteresis: engage at degrade_depth, release only
    // once the system has drained to half of it.
    if (config_.degrade_depth > 0) {
      if (!degraded && in_system >= config_.degrade_depth) {
        degraded = true;
        ++rep.degrade_enters;
        WSP_TRACE_INSTANT_V("server", "degrade/enter",
                            static_cast<double>(in_system));
      } else if (degraded && in_system <= config_.degrade_depth / 2) {
        degraded = false;
        WSP_TRACE_INSTANT_V("server", "degrade/exit",
                            static_cast<double>(in_system));
      }
    }

    VirtualShard& v = vq[shard];
    const std::size_t room =
        degraded ? std::max<std::size_t>(1, config_.queue_capacity / 2)
                 : config_.queue_capacity;
    if (v.completions.size() >= room) {
      ++rep.dropped;
      ++rep.shards[shard].dropped;
      if (degraded && v.completions.size() < config_.queue_capacity) {
        ++rep.shed;  // would have been admitted at full capacity
      }
      WSP_TRACE_INSTANT("server", "drop/shard" + std::to_string(shard));
      gen.on_outcome(*arrival, arrival->at_cycles, /*dropped=*/true);
      continue;
    }

    const FaultConfig& fc =
        phased ? phase_faults[arrival->phase] : config_.faults;
    const FaultSchedule schedule =
        (phased ? phase_plans[arrival->phase] : plan)
            .schedule_for(arrival->id);
    const bool resume = arrival->resume;
    if (schedule.stall_scheduled) {
      WSP_TRACE_INSTANT_V("server.fault", "stall/shard" + std::to_string(shard),
                          schedule.stall_cycles);
    }
    const double service =
        modeled_service(price, arrival->transaction_bytes,
                        scenario.record_bytes, schedule, fc, resume);
    const double start = std::max(v.busy_until, arrival->at_cycles);
    const double completion = start + service;
    v.busy_until = completion;
    v.completions.push_back(completion);
    rep.shards[shard].peak_virtual_depth =
        std::max(rep.shards[shard].peak_virtual_depth, v.completions.size());
    rep.peak_sessions = std::max(rep.peak_sessions, in_system + 1);
    latencies.push_back(completion - arrival->at_cycles);
    rep.makespan_cycles = std::max(rep.makespan_cycles, completion);
    rep.platform_cycles_base +=
        price_one(base, arrival->transaction_bytes, resume);
    rep.platform_cycles_optimized +=
        price_one(opt, arrival->transaction_bytes, resume);
    ++rep.admitted;
    ++rep.shards[shard].admitted;
    gen.on_outcome(*arrival, completion, /*dropped=*/false);

    slots.push_back(Slot{arrival->id, shard, 0, 0, 0, 0, 0, false, false});
    Slot* slot = &slots.back();
    SessionConfig cfg;
    cfg.id = arrival->id;
    cfg.cipher = arrival->cipher;
    cfg.transaction_bytes = arrival->transaction_bytes;
    cfg.record_bytes = scenario.record_bytes;
    cfg.seed = arrival->session_seed;
    cfg.faults = schedule;
    const SessionTable::Inserted ins = table.insert(cfg);
    Session* session = ins.session;  // slab addresses are stable for life
    const SessionHandle handle = ins.handle;
    WSP_TRACE_COUNTER("server", "live_sessions",
                      static_cast<double>(table.size()));

    if (lanes > 1) {
      // Batched plane: collect into the shard's cohort; a full cohort
      // becomes one scheduler task draining all its members three-phase.
      cohort_staging[shard].push_back(
          CohortMember{slot, session, handle, resume,
                       fc.handshake_retry_budget, arrival->phase});
      if (cohort_staging[shard].size() >= cohort_cap) {
        auto members = std::make_shared<std::vector<CohortMember>>(
            std::move(cohort_staging[shard]));
        cohort_staging[shard].clear();
        sched.push(shard, [members, &run_cohort] { run_cohort(*members); });
      }
      continue;
    }

    // Sessions admitted while degraded run at half the record batch: finer
    // quanta interleave shard work and cap how long one session can hold
    // the pump.  Decided here, on the virtual timeline, so it is
    // deterministic per session.
    const std::size_t batch =
        degraded ? std::max<std::size_t>(1, config_.record_batch / 2)
                 : config_.record_batch;
    push_scalar(shard, slot, session, handle, resume,
                fc.handshake_retry_budget, batch);
  }

  // Flush the partial cohorts the arrival stream left behind.
  for (unsigned s = 0; s < static_cast<unsigned>(cohort_staging.size()); ++s) {
    if (cohort_staging[s].empty()) continue;
    auto members = std::make_shared<std::vector<CohortMember>>(
        std::move(cohort_staging[s]));
    sched.push(s, [members, &run_cohort] { run_cohort(*members); });
  }

  sched.drain();

  Digest digest;
  if (config_.record_events) rep.events.reserve(slots.size());
  for (const Slot& slot : slots) {
    ShardReport& sh = rep.shards[slot.shard];
    {
      // Per-shard event-stream digest (and, when recording, the stream
      // itself): slots are in arrival order, so both are thread-invariant.
      SessionEvent ev;
      ev.id = slot.id;
      ev.shard = slot.shard;
      ev.wire_bytes = slot.wire_bytes;
      ev.records = slot.records;
      ev.retries = slot.retries;
      ev.repairs = slot.repairs;
      ev.faults = slot.faults;
      ev.completed = slot.completed;
      sh.events_digest =
          (sh.events_digest ^ ev.digest()) * 1099511628211ULL + 1;
      if (config_.record_events) rep.events.push_back(ev);
    }
    rep.retried += slot.retries;
    rep.repaired += slot.repairs;
    rep.faults_injected += slot.faults;
    sh.retried += slot.retries;
    sh.repaired += slot.repairs;
    sh.faults_injected += slot.faults;
    rep.wire_bytes += slot.wire_bytes;
    rep.records += slot.records;
    sh.wire_bytes += slot.wire_bytes;
    sh.records += slot.records;
    if (slot.completed) {
      ++rep.completed;
      ++sh.completed;
      digest.mix(slot.id);
      digest.mix(slot.wire_bytes);
      digest.mix(slot.records);
    } else {
      // Anything not completed is aborted — the worker guarantees one of
      // the two — so completed + aborted == admitted (no leaked sessions).
      ++rep.aborted;
      ++sh.aborted;
      digest.mix(slot.id);
      digest.mix(slot.wire_bytes);
      digest.mix(slot.records);
      digest.mix(0xAB);  // distinguish an aborted triple from a completed one
    }
  }
  rep.bytes_digest = digest.fold();

  std::sort(latencies.begin(), latencies.end());
  rep.latency.p50 = quantile(latencies, 0.50);
  rep.latency.p90 = quantile(latencies, 0.90);
  rep.latency.p99 = quantile(latencies, 0.99);
  rep.latency.max = latencies.empty() ? 0.0 : latencies.back();
  if (rep.makespan_cycles > 0.0) {
    rep.throughput_per_gcycle =
        static_cast<double>(rep.completed) * 1e9 / rep.makespan_cycles;
  }
  for (unsigned s = 0; s < shards; ++s) {
    rep.peak_virtual_depth =
        std::max(rep.peak_virtual_depth, rep.shards[s].peak_virtual_depth);
    const ShardCounters counters = sched.counters(s);
    rep.backpressure_waits += counters.backpressure_waits;
    rep.failed_tasks += counters.failed;
    rep.peak_real_depth = std::max(rep.peak_real_depth, counters.peak_depth);
  }
  if (rep.platform_cycles_optimized > 0.0) {
    rep.equivalent_speedup =
        rep.platform_cycles_base / rep.platform_cycles_optimized;
  }
  rep.batched_records = batched_records.load(std::memory_order_relaxed);
  rep.batch_flushes = batch_flushes.load(std::memory_order_relaxed);
  rep.batch_lanes = config_.batch_lanes;
  rep.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  return rep;
}

}  // namespace wsp::server
