#include "server/engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>

#include "server/session_table.h"
#include "support/trace.h"

namespace wsp::server {

ssl::PlatformCosts calibrated_costs(Pricing pricing) {
  // Component costs from the Fig. 8 ISS measurement (bench_fig8_ssl /
  // bench_report --only fig8, seed 21: RSA-1024 ops, 3DES record cipher on
  // the base and TIE-optimized cores).  Baked in as constants so pricing a
  // session is arithmetic, not an ISS run; the unaccelerated misc/hash
  // shares come from ssl::misc_cost_defaults() either way.
  ssl::PlatformCosts c = ssl::misc_cost_defaults();
  if (pricing == Pricing::kBase) {
    c.rsa_private_cycles = 89884113.0;
    c.rsa_public_cycles = 997801.0;
    c.symmetric_cycles_per_byte = 1660.8;
  } else {
    c.rsa_private_cycles = 3869594.0;
    c.rsa_public_cycles = 175720.0;
    c.symmetric_cycles_per_byte = 44.3;
  }
  return c;
}

namespace {

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// FNV-1a over the per-session (id, wire_bytes, records) triples, folded to
// 32 bits so the digest survives a double-typed JSON field exactly.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  std::uint32_t fold() const {
    return static_cast<std::uint32_t>(h ^ (h >> 32));
  }
};

}  // namespace

Engine::Engine(const EngineConfig& config) : config_(config) {
  config_.threads = std::max(1u, config_.threads);
  config_.shards = std::max(1u, config_.shards);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.record_batch = std::max<std::size_t>(1, config_.record_batch);
}

RunReport Engine::run(const TrafficScenario& scenario) {
  WSP_TRACE_SPAN("server", "run");
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  RunReport rep;
  rep.threads = config_.threads;
  const unsigned shards = config_.shards;
  rep.shards.resize(shards);

  const ssl::PlatformCosts price = calibrated_costs(config_.pricing);
  const ssl::PlatformCosts base = calibrated_costs(Pricing::kBase);
  const ssl::PlatformCosts opt = calibrated_costs(Pricing::kOptimized);

  double mean_service = 0.0;
  for (const std::size_t bytes : scenario.transaction_sizes) {
    mean_service += ssl::transaction_cost(price, bytes).total();
  }
  mean_service /= static_cast<double>(scenario.transaction_sizes.size());
  rep.mean_service_cycles = mean_service;

  TrafficGenerator gen(scenario, mean_service, shards);

  // Real execution: one server key per run (the server's identity), worker
  // pool, bounded scheduler, sharded connection table.
  Rng key_rng(scenario.seed ^ 0xC3A5C85C97CB3127ULL);
  const rsa::PrivateKey server_key =
      rsa::generate_key(config_.rsa_bits, key_rng);
  ThreadPool pool(config_.threads);
  SessionTable table(shards);
  RecordScheduler sched(pool, shards, config_.queue_capacity,
                        config_.record_batch);

  // Virtual-time queueing state: per shard, one FIFO service unit with a
  // waiting room of queue_capacity sessions.
  struct VirtualShard {
    std::deque<double> completions;  ///< scheduled completion times, FIFO
    double busy_until = 0.0;
  };
  std::vector<VirtualShard> vq(shards);

  // Each admitted session writes exactly one slot; slots are only read
  // after drain().  deque: stable addresses under push_back.
  struct Slot {
    std::uint64_t id = 0;
    unsigned shard = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t records = 0;
    bool completed = false;
  };
  std::deque<Slot> slots;

  std::vector<double> latencies;

  while (auto arrival = gen.next()) {
    ++rep.offered;
    const unsigned shard = static_cast<unsigned>(arrival->id % shards);
    VirtualShard& v = vq[shard];
    while (!v.completions.empty() &&
           v.completions.front() <= arrival->at_cycles) {
      v.completions.pop_front();
    }

    if (v.completions.size() >= config_.queue_capacity) {
      ++rep.dropped;
      ++rep.shards[shard].dropped;
      WSP_TRACE_INSTANT("server", "drop/shard" + std::to_string(shard));
      gen.on_outcome(*arrival, arrival->at_cycles, /*dropped=*/true);
      continue;
    }

    const double service =
        ssl::transaction_cost(price, arrival->transaction_bytes).total();
    const double start = std::max(v.busy_until, arrival->at_cycles);
    const double completion = start + service;
    v.busy_until = completion;
    v.completions.push_back(completion);
    rep.shards[shard].peak_virtual_depth =
        std::max(rep.shards[shard].peak_virtual_depth, v.completions.size());
    // Peak concurrent live sessions, on the virtual timeline: evict every
    // shard up to this arrival so the in-system count is exact, not the
    // lazily-evicted per-shard view.
    std::size_t in_system = 0;
    for (VirtualShard& other : vq) {
      while (!other.completions.empty() &&
             other.completions.front() <= arrival->at_cycles) {
        other.completions.pop_front();
      }
      in_system += other.completions.size();
    }
    rep.peak_sessions = std::max(rep.peak_sessions, in_system);
    latencies.push_back(completion - arrival->at_cycles);
    rep.makespan_cycles = std::max(rep.makespan_cycles, completion);
    rep.platform_cycles_base +=
        ssl::transaction_cost(base, arrival->transaction_bytes).total();
    rep.platform_cycles_optimized +=
        ssl::transaction_cost(opt, arrival->transaction_bytes).total();
    ++rep.admitted;
    ++rep.shards[shard].admitted;
    gen.on_outcome(*arrival, completion, /*dropped=*/false);

    slots.push_back(Slot{arrival->id, shard, 0, 0, false});
    Slot* slot = &slots.back();
    SessionConfig cfg;
    cfg.id = arrival->id;
    cfg.cipher = arrival->cipher;
    cfg.transaction_bytes = arrival->transaction_bytes;
    cfg.record_bytes = scenario.record_bytes;
    cfg.seed = arrival->session_seed;
    Session* session = table.insert(std::make_unique<Session>(cfg));
    WSP_TRACE_COUNTER("server", "live_sessions",
                      static_cast<double>(table.size()));

    const std::size_t batch = config_.record_batch;
    sched.push(shard, [slot, session, &table, &server_key, batch] {
      try {
        ModexpEngine client_engine{ModexpConfig{}};
        ModexpConfig server_cfg;  // the explored-optimal configuration
        server_cfg.mul = MulAlgo::kMontCIOS;
        server_cfg.window_bits = 5;
        server_cfg.crt = CrtMode::kGarner;
        server_cfg.caching = Caching::kFull;
        ModexpEngine server_engine(server_cfg);
        session->handshake(server_key, client_engine, server_engine);
        while (!session->finished()) session->pump(batch);
        session->teardown();
        slot->wire_bytes = session->wire_bytes();
        slot->records = session->records();
        slot->completed = true;
      } catch (...) {
        // Never throw out of the pool; an incomplete slot is the record.
      }
      table.erase(slot->id);
    });
  }

  sched.drain();

  Digest digest;
  for (const Slot& slot : slots) {
    if (!slot.completed) continue;
    ++rep.completed;
    rep.wire_bytes += slot.wire_bytes;
    rep.records += slot.records;
    rep.shards[slot.shard].wire_bytes += slot.wire_bytes;
    rep.shards[slot.shard].records += slot.records;
    digest.mix(slot.id);
    digest.mix(slot.wire_bytes);
    digest.mix(slot.records);
  }
  rep.bytes_digest = digest.fold();

  std::sort(latencies.begin(), latencies.end());
  rep.latency.p50 = quantile(latencies, 0.50);
  rep.latency.p90 = quantile(latencies, 0.90);
  rep.latency.p99 = quantile(latencies, 0.99);
  rep.latency.max = latencies.empty() ? 0.0 : latencies.back();
  if (rep.makespan_cycles > 0.0) {
    rep.throughput_per_gcycle =
        static_cast<double>(rep.completed) * 1e9 / rep.makespan_cycles;
  }
  for (unsigned s = 0; s < shards; ++s) {
    rep.peak_virtual_depth =
        std::max(rep.peak_virtual_depth, rep.shards[s].peak_virtual_depth);
    const ShardCounters counters = sched.counters(s);
    rep.backpressure_waits += counters.backpressure_waits;
    rep.peak_real_depth = std::max(rep.peak_real_depth, counters.peak_depth);
  }
  if (rep.platform_cycles_optimized > 0.0) {
    rep.equivalent_speedup =
        rep.platform_cycles_base / rep.platform_cycles_optimized;
  }
  rep.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  return rep;
}

}  // namespace wsp::server
