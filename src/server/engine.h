// wsp::server::Engine — the secure-session server: concurrent session
// execution over the sharded table and batched scheduler, with a
// deterministic virtual-time queueing model for admission control and
// latency accounting.
//
// Two timelines run side by side:
//
//   * VIRTUAL (platform cycles): each session's crypto work is priced
//     through the ssl::workload cost model (transaction_cost), and each
//     shard is modeled as a FIFO service unit with a bounded waiting room
//     of `queue_capacity` sessions.  Arrivals, admissions, DROPS, queue
//     depths, latencies and throughput all live on this timeline and are
//     computed in arrival order on the calling thread — bit-identical for
//     any worker-thread count.
//
//   * REAL (host): every admitted session actually performs its handshake
//     (real RSA), record stream (real MAC-then-encrypt seal/open) and
//     teardown on the thread pool via the RecordScheduler, which bounds
//     real queue memory through blocking backpressure.  Completed-session
//     counts and per-session byte totals come from this execution; they
//     are deterministic because every session's randomness is derived from
//     its own seed.
//
// Fault injection and recovery (docs/faults.md): when EngineConfig.faults
// carries nonzero rates, a FaultPlan derives each session's schedule purely
// from (scenario seed, session id).  Real execution runs the repair ladder
// (retransmit → rekey → abort) against genuinely corrupted wire bytes; the
// virtual timeline prices the same schedule — failed handshakes with
// bounded exponential backoff, retransmission surcharge, stalls — so both
// timelines stay deterministic for any `--threads`.  When the modeled
// in-system depth crosses `degrade_depth` the engine enters degrade mode:
// it sheds load (halved waiting rooms) and halves the record batch until
// depth falls back under half the threshold (hysteresis).
//
// The determinism contract (what `--threads N` may never change) is spelled
// out in docs/server.md.
#pragma once

#include <cstdint>
#include <vector>

#include "server/faults.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "server/traffic.h"
#include "ssl/workload.h"

namespace wsp::server {

struct EngineCheckpoint;  // full definition in server/checkpoint.h

/// Receives each quiesce-barrier checkpoint as it is taken (EngineConfig::
/// checkpoint_sink).  Called on the engine's run() thread while the data
/// plane is fully drained; the checkpoint reference is valid only for the
/// duration of the call.  Implementations must not call back into the
/// engine.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void on_checkpoint(const EngineCheckpoint& checkpoint) = 0;
};

/// Which platform configuration prices the virtual service times.
enum class Pricing { kBase, kOptimized };

/// Fig. 8 component costs measured on the ISS (seed 21, RSA-1024, 3DES
/// record cipher) — the bench_fig8/bench_report measurement, baked in so
/// the server's virtual timeline never depends on re-running the ISS.
ssl::PlatformCosts calibrated_costs(Pricing pricing);

/// Validated by Engine's constructor: queue_capacity and record_batch must
/// be positive, rsa_bits at least 512, and the fault rates well-formed —
/// violations throw std::invalid_argument instead of being silently
/// clamped.  `threads` is host-dependent anyway and is clamped to >= 1.
struct EngineConfig {
  unsigned threads = 1;          ///< worker threads (clamped >= 1)
  /// Session-table / scheduler / service shards.  0 (the default) resolves
  /// to the hardware core count (clamped to [1, 64]) in Engine's
  /// constructor — read it back via config().shards.  NOTE: the shard
  /// count shapes the virtual queueing model, so results are deterministic
  /// *per shard count*; benches and replay pin an explicit value.
  unsigned shards = 0;
  std::size_t queue_capacity = 64;  ///< per-shard waiting room AND real bound
  std::size_t record_batch = 16;    ///< records per execution quantum
  std::size_t rsa_bits = 512;    ///< server key size for the real handshakes
  Pricing pricing = Pricing::kOptimized;  ///< service-time platform
  FaultConfig faults;            ///< all-zero rates (default) = no injection
  /// Total modeled in-system sessions that trips degrade mode; 0 disables.
  /// Exit is at degrade_depth / 2 (hysteresis, so the mode cannot flap on
  /// every arrival).
  std::size_t degrade_depth = 0;
  /// Lane width of the batched record data plane (1..8, validated).  At 1
  /// (the default) every session runs the classic scalar pump.  Above 1,
  /// each shard drains its sessions in cohorts: record seals and opens from
  /// many sessions are staged onto one crypto::BatchDispatcher and executed
  /// by the multi-buffer CBC kernels, `batch_lanes` records side by side.
  /// A purely host-side knob: every deterministic RunReport field and the
  /// replay event digests are bit-identical for any value (docs/server.md).
  unsigned batch_lanes = 1;
  /// Fill RunReport.events with the per-session outcome stream (arrival
  /// order).  Off by default: the record/replay layer (server/record.h)
  /// turns it on; large-scale benches leave it off to avoid the per-session
  /// allocation.  Per-shard event digests are computed either way.
  bool record_events = false;
  /// Virtual-cycle interval between quiesce-barrier checkpoints (0 = off,
  /// validated finite and >= 0).  At every multiple, before admitting the
  /// arrival that crossed it, the engine drains the scheduler, parks
  /// in-flight cohorts and hands a full EngineCheckpoint to
  /// `checkpoint_sink`.  Barriers fire only when a sink is installed.
  /// Checkpoint content is deterministic (docs/recovery.md); the host-side
  /// cost is the drain, so pick intervals per run, not per arrival.
  double checkpoint_every = 0.0;
  /// Where checkpoints go (borrowed, not owned; nullptr = no barriers).
  /// server/record.h's RunRecorder is the standard sink, appending
  /// kCheckpoint chunks to the run's trace.
  CheckpointSink* checkpoint_sink = nullptr;
};

/// One admitted session's deterministic outcome — the unit of the replay
/// event stream.  Every field is identical for any --threads value.
struct SessionEvent {
  std::uint64_t id = 0;
  std::uint32_t shard = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t records = 0;
  std::uint32_t retries = 0;
  std::uint32_t repairs = 0;
  std::uint32_t faults = 0;
  bool completed = false;  ///< false = aborted (no third outcome exists)

  /// FNV-1a over every field; the per-shard event digests chain these.
  std::uint64_t digest() const;

  bool operator==(const SessionEvent&) const = default;
};

struct LatencyStats {
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;  ///< virtual cycles
};

struct ShardReport {
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t records = 0;
  std::uint64_t retried = 0;
  std::uint64_t repaired = 0;
  std::uint64_t faults_injected = 0;
  std::size_t peak_virtual_depth = 0;
  /// FNV-1a chain over this shard's SessionEvent digests in arrival order:
  /// one number that pins the shard's whole deterministic event stream
  /// (replay verification compares these before diving into events).
  std::uint64_t events_digest = 0;
};

struct RunReport {
  // --- deterministic (identical for any --threads) ---
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;  ///< sessions fully executed and torn down
  std::uint64_t dropped = 0;
  /// Recovery accounting.  Leak invariant: completed + aborted == admitted.
  std::uint64_t aborted = 0;    ///< sessions that exhausted recovery budgets
  std::uint64_t retried = 0;    ///< record retransmissions + handshake retries
  std::uint64_t repaired = 0;   ///< rekey() repairs that revived a session
  std::uint64_t faults_injected = 0;  ///< wire flips + corrupted handshakes
  std::uint64_t shed = 0;       ///< drops caused by degrade-mode shedding
  std::uint64_t degrade_enters = 0;  ///< times degrade mode engaged
  std::uint64_t records = 0;
  std::uint64_t wire_bytes = 0;
  /// FNV-1a over (id, wire_bytes, records) in arrival order, folded to 32
  /// bits: one number that pins every per-session byte total.  Aborted
  /// sessions mix their partial totals plus an 0xAB tag, so benign runs
  /// keep their historical digests.
  std::uint32_t bytes_digest = 0;
  LatencyStats latency;
  double makespan_cycles = 0.0;  ///< last virtual completion
  double throughput_per_gcycle = 0.0;  ///< completed sessions per 1e9 cycles
  std::size_t peak_virtual_depth = 0;  ///< max modeled queue depth, any shard
  std::size_t peak_sessions = 0;  ///< max concurrent live sessions (virtual)
  double mean_service_cycles = 0.0;
  /// Structural bytes one live session costs in the data plane (hot slab
  /// slot + cold key block + index share) — SessionTable::bytes_per_session.
  /// A property of the build, so it sits on the deterministic side.
  std::uint64_t memory_per_session = 0;
  /// Total crypto work of the completed sessions priced through the cost
  /// model for both platform configurations ("platform-equivalent" cost).
  double platform_cycles_base = 0.0;
  double platform_cycles_optimized = 0.0;
  double equivalent_speedup = 0.0;
  std::vector<ShardReport> shards;
  /// Per-session outcome stream in arrival order; empty unless
  /// EngineConfig.record_events was set (see server/record.h).
  std::vector<SessionEvent> events;

  // --- intentionally non-deterministic (host-dependent) ---
  std::uint64_t wall_ns = 0;
  std::uint64_t backpressure_waits = 0;
  std::uint64_t failed_tasks = 0;  ///< scheduler-contained raw task failures
  std::size_t peak_real_depth = 0;
  unsigned threads = 1;
  /// Batched data-plane execution stats (host-side: which path the cipher
  /// passes actually took; zero when batch_lanes == 1).
  std::uint64_t batched_records = 0;  ///< cipher jobs run through dispatchers
  std::uint64_t batch_flushes = 0;    ///< dispatcher flushes across cohorts
  unsigned batch_lanes = 1;           ///< echo of EngineConfig.batch_lanes
};

class Engine {
 public:
  /// Throws std::invalid_argument on an invalid config (see EngineConfig).
  explicit Engine(const EngineConfig& config);

  /// Offers the scenario's traffic — a flat parameter set or a compiled
  /// multi-phase program (TrafficScenario.phases, docs/scenarios.md) —
  /// executes every admitted session to completion, and reports.
  /// Synchronous; callable repeatedly.  Throws std::invalid_argument on a
  /// degenerate scenario (TrafficScenario::validate).  When
  /// config.faults.crash_at_cycles (or a phase overlay's) is armed, throws
  /// CrashFault at the first arrival at/after the earliest such deadline —
  /// after firing every checkpoint barrier due at or before it.
  RunReport run(const TrafficScenario& scenario);

  /// Resume form: restores `checkpoint` (taken by a checkpoint sink during
  /// an earlier run of the SAME scenario under the SAME deterministic
  /// config) and continues the run from that barrier.  The resulting report
  /// is bit-identical to the uninterrupted run's on every deterministic
  /// field, for any --threads / batch_lanes combination (docs/recovery.md).
  /// Structural checkpoint/scenario mismatches throw std::logic_error; use
  /// server/record.h's resume path for typed validation of untrusted
  /// traces.
  RunReport run(const TrafficScenario& scenario,
                const EngineCheckpoint& checkpoint);

  const EngineConfig& config() const { return config_; }

 private:
  RunReport run_internal(const TrafficScenario& scenario,
                         const EngineCheckpoint* checkpoint);

  EngineConfig config_;
};

}  // namespace wsp::server
