#include "server/faults.h"

#include <cmath>

namespace wsp::server {

namespace {

// SplitMix64 finalizer: the one-shot mixer behind every schedule decision.
// Counter-based (no generator state), so any (seed, id, record, attempt)
// coordinate can be probed independently and in any order.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t h) {
  // Top 53 bits -> [0, 1), the usual double-from-u64 construction.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void check_rate(double rate, const char* name) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument(std::string("server: FaultConfig.") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

const char* to_string(SessionErrorKind kind) {
  switch (kind) {
    case SessionErrorKind::kHandshakeFailed: return "handshake-failed";
    case SessionErrorKind::kRecordTampered: return "record-tampered";
    case SessionErrorKind::kAborted: return "aborted";
  }
  return "?";
}

SessionError::SessionError(SessionErrorKind kind, std::uint64_t session_id,
                           const std::string& detail)
    : std::runtime_error("server: session " + std::to_string(session_id) +
                         " " + to_string(kind) + ": " + detail),
      kind_(kind),
      session_id_(session_id) {}

CrashFault::CrashFault(double at_cycles, double deadline_cycles)
    : std::runtime_error("server: simulated process crash at virtual cycle " +
                         std::to_string(at_cycles) + " (scheduled for " +
                         std::to_string(deadline_cycles) + ")"),
      at_cycles_(at_cycles),
      deadline_cycles_(deadline_cycles) {}

void FaultConfig::validate() const {
  check_rate(wire_flip_rate, "wire_flip_rate");
  check_rate(handshake_failure_rate, "handshake_failure_rate");
  check_rate(abort_rate, "abort_rate");
  check_rate(stall_rate, "stall_rate");
  if (stall_cycles <= 0.0) {
    throw std::invalid_argument("server: FaultConfig.stall_cycles must be > 0");
  }
  if (!std::isfinite(crash_at_cycles) || crash_at_cycles < 0.0) {
    throw std::invalid_argument(
        "server: FaultConfig.crash_at_cycles must be finite and >= 0");
  }
  if (backoff_base_cycles <= 0.0 || backoff_cap_cycles < backoff_base_cycles) {
    throw std::invalid_argument(
        "server: FaultConfig backoff must satisfy 0 < base <= cap");
  }
}

unsigned FaultSchedule::flip_attempts(std::uint64_t record) const {
  if (key == 0 || wire_flip_rate <= 0.0) return 0;
  const std::uint64_t h = mix64(key ^ (record * 0xD1B54A32D192ED03ull));
  if (to_unit(h) >= wire_flip_rate) return 0;
  return 1 + static_cast<unsigned>(mix64(h) & 1);  // 1 or 2 corrupted sends
}

unsigned FaultSchedule::flip_bit(std::uint64_t record, unsigned attempt) const {
  return static_cast<unsigned>(
      mix64(key ^ (record * 0xD1B54A32D192ED03ull) ^ (attempt + 1)) & 7);
}

FaultPlan::FaultPlan(const FaultConfig& config, std::uint64_t scenario_seed)
    : config_(config), seed_(scenario_seed) {
  config_.validate();
}

FaultSchedule FaultPlan::schedule_for(std::uint64_t session_id) const {
  FaultSchedule s;
  if (!config_.enabled()) return s;
  std::uint64_t key =
      mix64(seed_ ^ mix64(session_id * 0x9E3779B97F4A7C15ull + 0xBF58476Dull));
  if (key == 0) key = 1;  // 0 is reserved for "benign"
  s.key = key;
  s.wire_flip_rate = config_.wire_flip_rate;
  s.record_retry_budget = config_.record_retry_budget;
  if (to_unit(mix64(key ^ 0xA0)) < config_.handshake_failure_rate) {
    // 1..budget recovers after retries; budget+1 exhausts them and aborts.
    s.handshake_failures =
        1 + static_cast<unsigned>(mix64(key ^ 0xA1) %
                                  (config_.handshake_retry_budget + 1));
  }
  if (to_unit(mix64(key ^ 0xB0)) < config_.abort_rate) {
    s.abort_scheduled = true;
    s.abort_record = mix64(key ^ 0xB1) % 24;  // within typical record counts
  }
  if (to_unit(mix64(key ^ 0xC0)) < config_.stall_rate) {
    s.stall_scheduled = true;
    s.stall_cycles =
        config_.stall_cycles * (0.5 + to_unit(mix64(key ^ 0xC1)));
  }
  return s;
}

}  // namespace wsp::server
