// Deterministic fault injection for the secure-session engine.
//
// A FaultPlan derives a per-session fault schedule — wire bit-flips on
// chosen records, failed key exchanges, unrecoverable mid-stream tampering,
// transient stalls — purely from (scenario seed, session id).  No shared
// mutable state, no host randomness: the same scenario seed produces the
// same chaos for any `--threads` value, which is what keeps the engine's
// determinism contract (docs/server.md, docs/faults.md) intact under
// injected failure.
//
// Fault taxonomy (docs/faults.md §1):
//   * wire bit-flip       — one bit of a sealed record is flipped in
//     transit; the receiver's MAC/padding check fails and the repair ladder
//     (retry → rekey → abort) engages.  A flipped transmission may recur
//     (`flip_attempts` in {1, 2}) before the wire goes clean.
//   * handshake failure   — the encrypted premaster is corrupted on the
//     wire for the first `handshake_failures` attempts; the engine retries
//     with bounded exponential backoff on the virtual timeline.
//   * unrecoverable record — from `abort_record` on, every transmission of
//     that record is corrupted; the session exhausts retry and rekey
//     budgets and aborts cleanly (models a peer gone hostile or dead).
//   * transient stall     — a one-off service-time inflation on the
//     virtual timeline (models a link-layer outage the session survives).
//   * process crash       — the whole engine is killed at a scheduled
//     virtual time (crash_at_cycles): run() unwinds with a CrashFault after
//     draining in-flight crypto work.  Recovery is the checkpoint/restore
//     path (docs/recovery.md), not the per-session repair ladder.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wsp::server {

/// Why a session failed.  Carried by SessionError so the engine can account
/// recovery outcomes without string-matching exception text.
enum class SessionErrorKind {
  kHandshakeFailed,  ///< key exchange failed (corrupted premaster)
  kRecordTampered,   ///< a record failed verification and repair is ongoing
  kAborted,          ///< recovery budgets exhausted; session torn down
};

const char* to_string(SessionErrorKind kind);

/// Typed session failure: kind + owning session id + human-readable detail.
class SessionError : public std::runtime_error {
 public:
  SessionError(SessionErrorKind kind, std::uint64_t session_id,
               const std::string& detail);

  SessionErrorKind kind() const { return kind_; }
  std::uint64_t session_id() const { return session_id_; }

 private:
  SessionErrorKind kind_;
  std::uint64_t session_id_;
};

/// The simulated process kill (FaultConfig::crash_at_cycles).  Thrown by
/// Engine::run at the first arrival whose virtual time reaches the deadline,
/// after the scheduler has drained — so the unwind is clean, but the run is
/// simply GONE: no report, no end-of-stream chunk in the trace.  Callers
/// that armed the fault catch this; anyone else seeing it is a bug.
class CrashFault : public std::runtime_error {
 public:
  CrashFault(double at_cycles, double deadline_cycles);

  /// Virtual time the engine actually died at (first arrival >= deadline).
  double at_cycles() const { return at_cycles_; }
  /// The configured crash_at_cycles that triggered it.
  double deadline_cycles() const { return deadline_cycles_; }

 private:
  double at_cycles_;
  double deadline_cycles_;
};

/// Scenario-level fault model: rates are per-session (handshake/abort/
/// stall) or per-record (wire flips) probabilities in [0, 1]; budgets bound
/// the recovery machinery.  All-zero rates (the default) disable injection
/// entirely.
struct FaultConfig {
  double wire_flip_rate = 0.0;         ///< per-record P(bit flip in transit)
  double handshake_failure_rate = 0.0; ///< per-session P(failing handshakes)
  double abort_rate = 0.0;             ///< per-session P(unrecoverable record)
  double stall_rate = 0.0;             ///< per-session P(transient stall)
  double stall_cycles = 2.0e6;         ///< mean stall length (virtual cycles)

  unsigned record_retry_budget = 2;    ///< retransmissions before rekey
  unsigned handshake_retry_budget = 2; ///< handshake retries before abort
  double backoff_base_cycles = 1.0e5;  ///< first handshake-retry backoff
  double backoff_cap_cycles = 1.6e6;   ///< exponential backoff ceiling

  /// Virtual time at which the whole engine process is killed (0 = never).
  /// The engine throws CrashFault at the first arrival at/after this time,
  /// after running every checkpoint barrier due at or before it.  A crash
  /// is an EXTERNAL event, not part of the workload: it is deliberately NOT
  /// serialized into wsp-replay-v1 traces, so replaying or resuming a
  /// crashed run's trace never re-crashes (docs/recovery.md).
  double crash_at_cycles = 0.0;

  bool enabled() const {
    return wire_flip_rate > 0.0 || handshake_failure_rate > 0.0 ||
           abort_rate > 0.0 || stall_rate > 0.0;
  }

  /// Throws std::invalid_argument on rates outside [0, 1] or non-positive
  /// stall/backoff cycles.
  void validate() const;
};

/// One session's fault schedule — a pure function of (scenario seed,
/// session id), small enough to copy into SessionConfig by value.  `key ==
/// 0` is the benign schedule (no faults); per-record decisions are derived
/// lazily from `key` so the schedule needs no record-count bound.
struct FaultSchedule {
  std::uint64_t key = 0;            ///< 0 = benign; else per-session hash
  double wire_flip_rate = 0.0;
  unsigned record_retry_budget = 2;
  unsigned handshake_failures = 0;  ///< this many handshake attempts fail
  bool abort_scheduled = false;
  std::uint64_t abort_record = 0;   ///< unrecoverable from this record on
  bool stall_scheduled = false;
  double stall_cycles = 0.0;        ///< virtual-timeline stall length

  bool benign() const { return key == 0; }

  /// How many consecutive transmissions of `record` arrive corrupted
  /// (0 = clean record; otherwise 1 or 2).
  unsigned flip_attempts(std::uint64_t record) const;

  /// Which bit of the record's final wire byte the flip hits (0..7).
  unsigned flip_bit(std::uint64_t record, unsigned attempt) const;

  /// True when every transmission of `record` is corrupted (the
  /// unrecoverable-record fault): the repair ladder cannot win.
  bool poisons(std::uint64_t record) const {
    return abort_scheduled && record >= abort_record;
  }
};

/// Derives per-session schedules.  Immutable after construction and
/// therefore safe to consult from any thread.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Validates `config`; the plan keys every schedule off `scenario_seed`.
  FaultPlan(const FaultConfig& config, std::uint64_t scenario_seed);

  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }

  /// The session's schedule — pure in (scenario seed, session id).
  FaultSchedule schedule_for(std::uint64_t session_id) const;

 private:
  FaultConfig config_;
  std::uint64_t seed_ = 0;
};

}  // namespace wsp::server
