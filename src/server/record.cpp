#include "server/record.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <utility>

#ifndef WSP_GIT_REV
#define WSP_GIT_REV "unknown"
#endif

namespace wsp::server {

namespace {

using replay::Cursor;
using replay::ErrorKind;
using replay::ReplayError;
using replay::put_double;
using replay::put_string;
using replay::put_varint;
using replay::put_zigzag;

constexpr std::uint64_t tag(RecordChunk c) {
  return static_cast<std::uint64_t>(c);
}

// FaultConfig's nine fields, shared by the config chunk and per-phase fault
// overlays.  Order is load-bearing: it IS the kConfig byte layout.
void put_fault_config(std::vector<std::uint8_t>& p, const FaultConfig& f) {
  put_double(p, f.wire_flip_rate);
  put_double(p, f.handshake_failure_rate);
  put_double(p, f.abort_rate);
  put_double(p, f.stall_rate);
  put_double(p, f.stall_cycles);
  put_varint(p, f.record_retry_budget);
  put_varint(p, f.handshake_retry_budget);
  put_double(p, f.backoff_base_cycles);
  put_double(p, f.backoff_cap_cycles);
}

FaultConfig get_fault_config(Cursor& c) {
  FaultConfig f;
  f.wire_flip_rate = c.f64();
  f.handshake_failure_rate = c.f64();
  f.abort_rate = c.f64();
  f.stall_rate = c.f64();
  f.stall_cycles = c.f64();
  f.record_retry_budget = static_cast<unsigned>(c.varint());
  f.handshake_retry_budget = static_cast<unsigned>(c.varint());
  f.backoff_base_cycles = c.f64();
  f.backoff_cap_cycles = c.f64();
  return f;
}

std::vector<std::uint8_t> encode_scenario(const TrafficScenario& s) {
  std::vector<std::uint8_t> p;
  put_varint(p, s.seed);
  put_varint(p, s.sessions);
  put_varint(p, s.model == ArrivalModel::kOpenLoop ? 0 : 1);
  put_double(p, s.offered_load);
  put_varint(p, s.users);
  put_double(p, s.think_cycles);
  put_varint(p, s.ciphers.size());
  for (ssl::Cipher c : s.ciphers) {
    put_varint(p, static_cast<std::uint64_t>(c));
  }
  put_varint(p, s.transaction_sizes.size());
  std::uint64_t prev = 0;  // sizes ascend in practice; delta-code them
  for (std::size_t bytes : s.transaction_sizes) {
    put_zigzag(p, static_cast<std::int64_t>(bytes) -
                      static_cast<std::int64_t>(prev));
    prev = bytes;
  }
  put_varint(p, s.record_bytes);
  // Appended after v1's last field; decoders treat absence as false, so
  // pre-existing records stay readable.
  put_varint(p, s.resume_sessions ? 1 : 0);
  // Traffic program, appended the same way: legacy decoders skip it (chunk
  // payloads carry their own length) and legacy records decode with zero
  // phases, i.e. as the flat scenarios they were.
  put_varint(p, s.phases.size());
  for (const TrafficPhase& ph : s.phases) {
    put_string(p, ph.name);
    put_varint(p, ph.sessions);
    put_varint(p, ph.model == ArrivalModel::kOpenLoop ? 0 : 1);
    put_double(p, ph.offered_load);
    put_varint(p, ph.users);
    put_double(p, ph.think_cycles);
    put_double(p, ph.resume_fraction);
    put_varint(p, ph.cipher_mix.size());
    for (const CipherMix& m : ph.cipher_mix) {
      put_varint(p, static_cast<std::uint64_t>(m.cipher));
      put_varint(p, m.weight);
    }
    put_varint(p, ph.size_mix.size());
    for (const SizeMix& m : ph.size_mix) {
      put_varint(p, m.bytes);
      put_varint(p, m.weight);
    }
    put_varint(p, ph.faults ? 1 : 0);
    if (ph.faults) put_fault_config(p, *ph.faults);
  }
  return p;
}

TrafficScenario decode_scenario(const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  TrafficScenario s;
  s.seed = c.varint();
  s.sessions = static_cast<std::size_t>(c.varint());
  s.model = c.varint() == 0 ? ArrivalModel::kOpenLoop : ArrivalModel::kClosedLoop;
  s.offered_load = c.f64();
  s.users = static_cast<unsigned>(c.varint());
  s.think_cycles = c.f64();
  s.ciphers.clear();
  const std::uint64_t ciphers = c.varint();
  for (std::uint64_t i = 0; i < ciphers; ++i) {
    const std::uint64_t raw = c.varint();
    if (raw > static_cast<std::uint64_t>(ssl::Cipher::kRc4)) {
      throw ReplayError(ErrorKind::kMalformed, c.offset(),
                        "unknown cipher id " + std::to_string(raw));
    }
    s.ciphers.push_back(static_cast<ssl::Cipher>(raw));
  }
  s.transaction_sizes.clear();
  const std::uint64_t sizes = c.varint();
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < sizes; ++i) {
    prev += c.zigzag();
    if (prev <= 0) {
      throw ReplayError(ErrorKind::kMalformed, c.offset(),
                        "non-positive transaction size");
    }
    s.transaction_sizes.push_back(static_cast<std::size_t>(prev));
  }
  s.record_bytes = static_cast<std::size_t>(c.varint());
  if (!c.done()) s.resume_sessions = c.varint() != 0;
  if (!c.done()) {
    const std::uint64_t phases = c.varint();
    for (std::uint64_t i = 0; i < phases; ++i) {
      TrafficPhase ph;
      ph.name = c.str();
      ph.sessions = static_cast<std::size_t>(c.varint());
      ph.model =
          c.varint() == 0 ? ArrivalModel::kOpenLoop : ArrivalModel::kClosedLoop;
      ph.offered_load = c.f64();
      ph.users = static_cast<unsigned>(c.varint());
      ph.think_cycles = c.f64();
      ph.resume_fraction = c.f64();
      const std::uint64_t mixes = c.varint();
      for (std::uint64_t j = 0; j < mixes; ++j) {
        CipherMix m;
        const std::uint64_t raw = c.varint();
        if (raw > static_cast<std::uint64_t>(ssl::Cipher::kRc4)) {
          throw ReplayError(ErrorKind::kMalformed, c.offset(),
                            "unknown cipher id " + std::to_string(raw));
        }
        m.cipher = static_cast<ssl::Cipher>(raw);
        m.weight = static_cast<std::uint32_t>(c.varint());
        ph.cipher_mix.push_back(m);
      }
      const std::uint64_t sizes_n = c.varint();
      for (std::uint64_t j = 0; j < sizes_n; ++j) {
        SizeMix m;
        m.bytes = static_cast<std::size_t>(c.varint());
        if (m.bytes == 0) {
          throw ReplayError(ErrorKind::kMalformed, c.offset(),
                            "zero transaction size in phase mix");
        }
        m.weight = static_cast<std::uint32_t>(c.varint());
        ph.size_mix.push_back(m);
      }
      if (c.varint() != 0) ph.faults = get_fault_config(c);
      s.phases.push_back(std::move(ph));
    }
  }
  return s;
}

std::vector<std::uint8_t> encode_config(const EngineConfig& cfg) {
  std::vector<std::uint8_t> p;
  put_varint(p, cfg.shards);
  put_varint(p, cfg.queue_capacity);
  put_varint(p, cfg.record_batch);
  put_varint(p, cfg.rsa_bits);
  put_varint(p, cfg.pricing == Pricing::kBase ? 0 : 1);
  put_varint(p, cfg.degrade_depth);
  put_fault_config(p, cfg.faults);
  // Appended after v1's last field; decoders treat absence as 1 (scalar
  // plane), so pre-existing records stay readable.  Recorded so a replay
  // re-executes on the plane the original run used — the report must match
  // either way, but faithful re-execution is the point of the record.
  put_varint(p, cfg.batch_lanes);
  return p;
}

EngineConfig decode_config(const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  EngineConfig cfg;
  cfg.shards = static_cast<unsigned>(c.varint());
  cfg.queue_capacity = static_cast<std::size_t>(c.varint());
  cfg.record_batch = static_cast<std::size_t>(c.varint());
  cfg.rsa_bits = static_cast<std::size_t>(c.varint());
  cfg.pricing = c.varint() == 0 ? Pricing::kBase : Pricing::kOptimized;
  cfg.degrade_depth = static_cast<std::size_t>(c.varint());
  cfg.faults = get_fault_config(c);
  if (!c.done()) cfg.batch_lanes = static_cast<unsigned>(c.varint());
  return cfg;
}

void put_costs(std::vector<std::uint8_t>& p, const ssl::PlatformCosts& c) {
  put_double(p, c.rsa_private_cycles);
  put_double(p, c.rsa_public_cycles);
  put_double(p, c.symmetric_cycles_per_byte);
  put_double(p, c.hash_cycles_per_byte);
  put_double(p, c.handshake_misc_cycles);
  put_double(p, c.misc_cycles_per_byte);
}

ssl::PlatformCosts get_costs(Cursor& c) {
  ssl::PlatformCosts out;
  out.rsa_private_cycles = c.f64();
  out.rsa_public_cycles = c.f64();
  out.symmetric_cycles_per_byte = c.f64();
  out.hash_cycles_per_byte = c.f64();
  out.handshake_misc_cycles = c.f64();
  out.misc_cycles_per_byte = c.f64();
  return out;
}

std::vector<std::uint8_t> encode_report(const RunReport& r) {
  std::vector<std::uint8_t> p;
  put_varint(p, r.offered);
  put_varint(p, r.admitted);
  put_varint(p, r.completed);
  put_varint(p, r.dropped);
  put_varint(p, r.aborted);
  put_varint(p, r.retried);
  put_varint(p, r.repaired);
  put_varint(p, r.faults_injected);
  put_varint(p, r.shed);
  put_varint(p, r.degrade_enters);
  put_varint(p, r.records);
  put_varint(p, r.wire_bytes);
  put_varint(p, r.bytes_digest);
  put_double(p, r.latency.p50);
  put_double(p, r.latency.p90);
  put_double(p, r.latency.p99);
  put_double(p, r.latency.max);
  put_double(p, r.makespan_cycles);
  put_double(p, r.throughput_per_gcycle);
  put_varint(p, r.peak_virtual_depth);
  put_varint(p, r.peak_sessions);
  put_double(p, r.mean_service_cycles);
  put_double(p, r.platform_cycles_base);
  put_double(p, r.platform_cycles_optimized);
  put_double(p, r.equivalent_speedup);
  put_varint(p, r.shards.size());
  for (const ShardReport& sh : r.shards) {
    put_varint(p, sh.admitted);
    put_varint(p, sh.dropped);
    put_varint(p, sh.completed);
    put_varint(p, sh.aborted);
    put_varint(p, sh.wire_bytes);
    put_varint(p, sh.records);
    put_varint(p, sh.retried);
    put_varint(p, sh.repaired);
    put_varint(p, sh.faults_injected);
    put_varint(p, sh.peak_virtual_depth);
    put_varint(p, sh.events_digest);
  }
  // Appended after v1's last field (see encode_scenario note).
  put_varint(p, r.memory_per_session);
  return p;
}

RunReport decode_report(const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  RunReport r;
  r.offered = c.varint();
  r.admitted = c.varint();
  r.completed = c.varint();
  r.dropped = c.varint();
  r.aborted = c.varint();
  r.retried = c.varint();
  r.repaired = c.varint();
  r.faults_injected = c.varint();
  r.shed = c.varint();
  r.degrade_enters = c.varint();
  r.records = c.varint();
  r.wire_bytes = c.varint();
  r.bytes_digest = static_cast<std::uint32_t>(c.varint());
  r.latency.p50 = c.f64();
  r.latency.p90 = c.f64();
  r.latency.p99 = c.f64();
  r.latency.max = c.f64();
  r.makespan_cycles = c.f64();
  r.throughput_per_gcycle = c.f64();
  r.peak_virtual_depth = static_cast<std::size_t>(c.varint());
  r.peak_sessions = static_cast<std::size_t>(c.varint());
  r.mean_service_cycles = c.f64();
  r.platform_cycles_base = c.f64();
  r.platform_cycles_optimized = c.f64();
  r.equivalent_speedup = c.f64();
  const std::uint64_t shards = c.varint();
  r.shards.resize(static_cast<std::size_t>(shards));
  for (ShardReport& sh : r.shards) {
    sh.admitted = c.varint();
    sh.dropped = c.varint();
    sh.completed = c.varint();
    sh.aborted = c.varint();
    sh.wire_bytes = c.varint();
    sh.records = c.varint();
    sh.retried = c.varint();
    sh.repaired = c.varint();
    sh.faults_injected = c.varint();
    sh.peak_virtual_depth = static_cast<std::size_t>(c.varint());
    sh.events_digest = c.varint();
  }
  if (!c.done()) r.memory_per_session = c.varint();
  return r;
}

std::vector<std::uint8_t> encode_events(const std::vector<SessionEvent>& evs) {
  std::vector<std::uint8_t> p;
  put_varint(p, evs.size());
  std::int64_t prev_id = 0;
  for (const SessionEvent& ev : evs) {
    put_zigzag(p, static_cast<std::int64_t>(ev.id) - prev_id);
    prev_id = static_cast<std::int64_t>(ev.id);
    put_varint(p, ev.shard);
    put_varint(p, ev.wire_bytes);
    put_varint(p, ev.records);
    put_varint(p, ev.retries);
    put_varint(p, ev.repairs);
    put_varint(p, ev.faults);
    put_varint(p, ev.completed ? 1 : 0);
  }
  return p;
}

std::vector<SessionEvent> decode_events(
    const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  const std::uint64_t count = c.varint();
  std::vector<SessionEvent> evs;
  evs.reserve(static_cast<std::size_t>(count));
  std::int64_t prev_id = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    SessionEvent ev;
    prev_id += c.zigzag();
    if (prev_id < 0) {
      throw ReplayError(ErrorKind::kMalformed, c.offset(),
                        "negative session id in event stream");
    }
    ev.id = static_cast<std::uint64_t>(prev_id);
    ev.shard = static_cast<std::uint32_t>(c.varint());
    ev.wire_bytes = c.varint();
    ev.records = c.varint();
    ev.retries = static_cast<std::uint32_t>(c.varint());
    ev.repairs = static_cast<std::uint32_t>(c.varint());
    ev.faults = static_cast<std::uint32_t>(c.varint());
    ev.completed = c.varint() != 0;
    evs.push_back(ev);
  }
  return evs;
}

/// The input chunks every trace starts with, whether written at once
/// (encode_run_record) or incrementally (RunRecorder).
void write_input_chunks(replay::ChunkWriter& writer, const RunRecord& record) {
  {
    std::vector<std::uint8_t> meta;
    put_string(meta, record.git_rev);
    put_varint(meta, record.recorded_threads);
    writer.chunk(tag(RecordChunk::kMeta), meta);
  }
  writer.chunk(tag(RecordChunk::kScenario), encode_scenario(record.scenario));
  if (!record.scenario_source.empty()) {
    // Informational: the .wsp text the scenario was compiled from.  Replay
    // runs from the lowered kScenario chunk, never from this text, so the
    // compiler cannot drift a recorded run; older binaries skip the
    // unknown tag entirely.
    std::vector<std::uint8_t> src;
    put_string(src, record.scenario_source);
    writer.chunk(tag(RecordChunk::kScenarioSource), src);
  }
  writer.chunk(tag(RecordChunk::kConfig), encode_config(record.config));
  {
    std::vector<std::uint8_t> costs;
    put_costs(costs, calibrated_costs(Pricing::kBase));
    put_costs(costs, calibrated_costs(Pricing::kOptimized));
    writer.chunk(tag(RecordChunk::kCosts), costs);
  }
}

bool costs_match(const ssl::PlatformCosts& a, const ssl::PlatformCosts& b) {
  return a.rsa_private_cycles == b.rsa_private_cycles &&
         a.rsa_public_cycles == b.rsa_public_cycles &&
         a.symmetric_cycles_per_byte == b.symmetric_cycles_per_byte &&
         a.hash_cycles_per_byte == b.hash_cycles_per_byte &&
         a.handshake_misc_cycles == b.handshake_misc_cycles &&
         a.misc_cycles_per_byte == b.misc_cycles_per_byte;
}

/// The recorded calibration must match this binary's; a drifted cost model
/// would re-time every virtual event and make any mismatch meaningless.
void require_calibration(const ssl::PlatformCosts& rec_base,
                         const ssl::PlatformCosts& rec_opt,
                         const std::string& git_rev) {
  if (!costs_match(rec_base, calibrated_costs(Pricing::kBase)) ||
      !costs_match(rec_opt, calibrated_costs(Pricing::kOptimized))) {
    throw ReplayError(ErrorKind::kMalformed, 0,
                      "recorded calibrated_costs differ from this binary's "
                      "(recorded at git_rev " + git_rev + ")");
  }
}

}  // namespace

RunRecord record_run(const EngineConfig& config,
                     const TrafficScenario& scenario,
                     std::string scenario_source) {
  RunRecord rec;
  rec.git_rev = WSP_GIT_REV;
  rec.recorded_threads = std::max(1u, config.threads);
  rec.scenario = scenario;
  rec.scenario_source = std::move(scenario_source);
  rec.config = config;
  rec.config.record_events = true;
  Engine engine(rec.config);
  // Store the RESOLVED config: auto-shards (shards == 0) is a property of
  // the recording host, and a replay elsewhere must pin the same count.
  rec.config = engine.config();
  rec.config.record_events = true;
  rec.report = engine.run(scenario);
  return rec;
}

std::vector<std::uint8_t> encode_run_record(const RunRecord& record) {
  replay::VectorSink sink;
  replay::ChunkWriter writer(sink);
  write_input_chunks(writer, record);
  writer.chunk(tag(RecordChunk::kReport), encode_report(record.report));
  writer.chunk(tag(RecordChunk::kEvents), encode_events(record.report.events));
  writer.end();
  return sink.take();
}

RunRecord decode_run_record(const std::vector<std::uint8_t>& bytes) {
  replay::ChunkReader reader(bytes);
  RunRecord rec;
  bool meta = false, scenario = false, config = false, costs = false,
       report = false, events = false;
  ssl::PlatformCosts rec_base, rec_opt;
  while (auto chunk = reader.next()) {
    switch (static_cast<RecordChunk>(chunk->tag)) {
      case RecordChunk::kMeta: {
        Cursor c(chunk->payload);
        rec.git_rev = c.str();
        rec.recorded_threads = static_cast<unsigned>(c.varint());
        meta = true;
        break;
      }
      case RecordChunk::kScenario:
        rec.scenario = decode_scenario(chunk->payload);
        scenario = true;
        break;
      case RecordChunk::kScenarioSource: {
        Cursor c(chunk->payload);
        rec.scenario_source = c.str();
        break;
      }
      case RecordChunk::kConfig:
        rec.config = decode_config(chunk->payload);
        rec.config.threads = rec.recorded_threads;
        rec.config.record_events = true;
        config = true;
        break;
      case RecordChunk::kCosts: {
        Cursor c(chunk->payload);
        rec_base = get_costs(c);
        rec_opt = get_costs(c);
        costs = true;
        break;
      }
      case RecordChunk::kReport:
        rec.report = decode_report(chunk->payload);
        report = true;
        break;
      case RecordChunk::kEvents:
        rec.report.events = decode_events(chunk->payload);
        events = true;
        break;
      case RecordChunk::kCheckpoint:
        // Resume-only data (scan_trace_for_resume): a completed trace's
        // checkpoints are dead weight for plain replay, which re-runs from
        // the inputs anyway.
        break;
      default:
        // Unknown chunk tags are skipped (CRC already validated): room for
        // forward-compatible additions within the same format version.
        break;
    }
  }
  if (!meta || !scenario || !config || !costs || !report || !events) {
    throw ReplayError(ErrorKind::kMalformed, bytes.size(),
                      "run record is missing a required chunk");
  }
  require_calibration(rec_base, rec_opt, rec.git_rev);
  return rec;
}

bool write_run_record_file(const RunRecord& record, const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_run_record(record);
  replay::FileSink sink(path);
  sink.write(bytes.data(), bytes.size());
  sink.finish();
  return sink.ok();
}

RunRecord read_run_record_file(const std::string& path) {
  return decode_run_record(replay::read_file(path));
}

namespace {

void expect_u64(std::vector<std::string>& out, const char* field,
                std::uint64_t expected, std::uint64_t actual) {
  if (expected == actual) return;
  out.push_back(std::string(field) + ": recorded " + std::to_string(expected) +
                ", replayed " + std::to_string(actual));
}

void expect_f64(std::vector<std::string>& out, const char* field,
                double expected, double actual) {
  if (expected == actual ||
      (std::isnan(expected) && std::isnan(actual))) {
    return;
  }
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s: recorded %.17g, replayed %.17g", field,
                expected, actual);
  out.emplace_back(buf);
}

}  // namespace

std::vector<std::string> compare_reports(const RunReport& want,
                                         const RunReport& got) {
  std::vector<std::string> mm;
  expect_u64(mm, "offered", want.offered, got.offered);
  expect_u64(mm, "admitted", want.admitted, got.admitted);
  expect_u64(mm, "completed", want.completed, got.completed);
  expect_u64(mm, "dropped", want.dropped, got.dropped);
  expect_u64(mm, "aborted", want.aborted, got.aborted);
  expect_u64(mm, "retried", want.retried, got.retried);
  expect_u64(mm, "repaired", want.repaired, got.repaired);
  expect_u64(mm, "faults_injected", want.faults_injected, got.faults_injected);
  expect_u64(mm, "shed", want.shed, got.shed);
  expect_u64(mm, "degrade_enters", want.degrade_enters, got.degrade_enters);
  expect_u64(mm, "records", want.records, got.records);
  expect_u64(mm, "wire_bytes", want.wire_bytes, got.wire_bytes);
  expect_u64(mm, "bytes_digest", want.bytes_digest, got.bytes_digest);
  expect_f64(mm, "latency.p50", want.latency.p50, got.latency.p50);
  expect_f64(mm, "latency.p90", want.latency.p90, got.latency.p90);
  expect_f64(mm, "latency.p99", want.latency.p99, got.latency.p99);
  expect_f64(mm, "latency.max", want.latency.max, got.latency.max);
  expect_f64(mm, "makespan_cycles", want.makespan_cycles, got.makespan_cycles);
  expect_f64(mm, "throughput_per_gcycle", want.throughput_per_gcycle,
             got.throughput_per_gcycle);
  expect_u64(mm, "peak_virtual_depth", want.peak_virtual_depth,
             got.peak_virtual_depth);
  expect_u64(mm, "peak_sessions", want.peak_sessions, got.peak_sessions);
  expect_f64(mm, "mean_service_cycles", want.mean_service_cycles,
             got.mean_service_cycles);
  expect_f64(mm, "platform_cycles_base", want.platform_cycles_base,
             got.platform_cycles_base);
  expect_f64(mm, "platform_cycles_optimized", want.platform_cycles_optimized,
             got.platform_cycles_optimized);
  expect_f64(mm, "equivalent_speedup", want.equivalent_speedup,
             got.equivalent_speedup);
  if (want.memory_per_session != 0) {
    // Zero means the record predates the field; nothing to verify then.
    expect_u64(mm, "memory_per_session", want.memory_per_session,
               got.memory_per_session);
  }

  expect_u64(mm, "shard count", want.shards.size(), got.shards.size());
  const std::size_t shards = std::min(want.shards.size(), got.shards.size());
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string prefix = "shard[" + std::to_string(s) + "].";
    const ShardReport& w = want.shards[s];
    const ShardReport& g = got.shards[s];
    expect_u64(mm, (prefix + "events_digest").c_str(), w.events_digest,
               g.events_digest);
    expect_u64(mm, (prefix + "admitted").c_str(), w.admitted, g.admitted);
    expect_u64(mm, (prefix + "dropped").c_str(), w.dropped, g.dropped);
    expect_u64(mm, (prefix + "completed").c_str(), w.completed, g.completed);
    expect_u64(mm, (prefix + "aborted").c_str(), w.aborted, g.aborted);
    expect_u64(mm, (prefix + "wire_bytes").c_str(), w.wire_bytes, g.wire_bytes);
    expect_u64(mm, (prefix + "records").c_str(), w.records, g.records);
    expect_u64(mm, (prefix + "peak_virtual_depth").c_str(),
               w.peak_virtual_depth, g.peak_virtual_depth);
  }

  expect_u64(mm, "event count", want.events.size(), got.events.size());
  const std::size_t events = std::min(want.events.size(), got.events.size());
  for (std::size_t i = 0; i < events; ++i) {
    if (want.events[i] == got.events[i]) continue;
    mm.push_back("events[" + std::to_string(i) + "] (session " +
                 std::to_string(want.events[i].id) + "): digest recorded " +
                 std::to_string(want.events[i].digest()) + ", replayed " +
                 std::to_string(got.events[i].digest()));
  }
  return mm;
}

ReplayResult replay_run(const RunRecord& record, unsigned threads_override) {
  ReplayResult result;
  EngineConfig cfg = record.config;
  cfg.record_events = true;
  cfg.threads =
      threads_override > 0 ? threads_override : record.recorded_threads;
  Engine engine(cfg);
  result.report = engine.run(record.scenario);
  result.mismatches = compare_reports(record.report, result.report);
  return result;
}

// --- incremental recording + crash/resume ----------------------------------

/// Every byte goes to the in-memory mirror and, when a path was given, to
/// the file as well — so tests can tear the mirror exactly like the file.
struct RunRecorder::Tee final : replay::ByteSink {
  std::vector<std::uint8_t> buf;
  std::optional<replay::FileSink> file;

  explicit Tee(const std::string& path) {
    if (!path.empty()) file.emplace(path);
  }
  void write(const std::uint8_t* data, std::size_t n) override {
    buf.insert(buf.end(), data, data + n);
    if (file) file->write(data, n);
  }
  void finish() override {
    if (file) file->finish();
  }
};

RunRecorder::RunRecorder(const EngineConfig& config,
                         const TrafficScenario& scenario,
                         std::string scenario_source, const std::string& path)
    : path_(path) {
  // Resolve exactly like record_run: auto-shards (shards == 0) is a property
  // of the recording host, and a resume elsewhere must pin the same count.
  resolved_ = Engine(config).config();
  resolved_.record_events = true;
  tee_ = std::make_unique<Tee>(path);
  writer_ = std::make_unique<replay::ChunkWriter>(*tee_);
  RunRecord inputs;
  inputs.git_rev = WSP_GIT_REV;
  inputs.recorded_threads = std::max(1u, resolved_.threads);
  inputs.scenario = scenario;
  inputs.scenario_source = std::move(scenario_source);
  inputs.config = resolved_;
  write_input_chunks(*writer_, inputs);
  if (tee_->file) tee_->file->flush();
}

RunRecorder::~RunRecorder() = default;

EngineConfig RunRecorder::engine_config() {
  EngineConfig cfg = resolved_;
  cfg.checkpoint_sink = this;
  return cfg;
}

void RunRecorder::on_checkpoint(const EngineCheckpoint& checkpoint) {
  if (closed_) {
    throw std::logic_error("record: checkpoint after the trace was closed");
  }
  checkpoint_offsets_.push_back(tee_->buf.size());
  std::vector<std::uint8_t> payload;
  encode_checkpoint(payload, checkpoint);
  writer_->chunk(tag(RecordChunk::kCheckpoint), payload);
  // Push the chunk to the OS now: a kill after this point loses at most the
  // bytes written since this barrier, and the scanner falls back cleanly.
  if (tee_->file) tee_->file->flush();
}

bool RunRecorder::finish(const RunReport& report) {
  if (closed_) return ok();
  writer_->chunk(tag(RecordChunk::kReport), encode_report(report));
  writer_->chunk(tag(RecordChunk::kEvents), encode_events(report.events));
  writer_->end();  // writes the end tag and closes the tee (and the file)
  closed_ = true;
  return ok();
}

void RunRecorder::crash(std::size_t torn_tail_bytes) {
  if (closed_) return;
  closed_ = true;
  if (tee_->file) tee_->file->finish();  // close WITHOUT the end tag
  std::vector<std::uint8_t>& buf = tee_->buf;
  const std::size_t torn = std::min(torn_tail_bytes, buf.size());
  buf.resize(buf.size() - torn);
  if (torn > 0 && !path_.empty()) {
    std::error_code ec;
    std::filesystem::resize_file(path_, buf.size(), ec);
    // A failed truncation only leaves a longer torn tail; the scanner
    // handles that shape anyway, so nothing to report here.
  }
}

const std::vector<std::uint8_t>& RunRecorder::bytes() const {
  return tee_->buf;
}

bool RunRecorder::ok() const { return !tee_->file || tee_->file->ok(); }

std::string RunRecorder::error() const {
  return tee_->file ? tee_->file->error() : std::string();
}

ResumeScan scan_trace_for_resume(const std::vector<std::uint8_t>& bytes) {
  ResumeScan scan;
  // Header errors (magic/version) identify no run at all: let them throw.
  replay::ChunkReader reader(bytes);
  scan.scanned_bytes = reader.offset();
  bool meta = false, scenario = false, config = false, costs = false,
       report = false, events = false, ended = false;
  ssl::PlatformCosts rec_base, rec_opt;
  const auto inputs_ok = [&] { return meta && scenario && config && costs; };
  try {
    for (;;) {
      const std::size_t chunk_start = reader.offset();
      auto chunk = reader.next();
      if (!chunk) {
        ended = true;
        break;
      }
      switch (static_cast<RecordChunk>(chunk->tag)) {
        case RecordChunk::kMeta: {
          Cursor c(chunk->payload);
          scan.record.git_rev = c.str();
          scan.record.recorded_threads = static_cast<unsigned>(c.varint());
          meta = true;
          break;
        }
        case RecordChunk::kScenario:
          scan.record.scenario = decode_scenario(chunk->payload);
          scenario = true;
          break;
        case RecordChunk::kScenarioSource: {
          Cursor c(chunk->payload);
          scan.record.scenario_source = c.str();
          break;
        }
        case RecordChunk::kConfig:
          scan.record.config = decode_config(chunk->payload);
          scan.record.config.threads = scan.record.recorded_threads;
          scan.record.config.record_events = true;
          config = true;
          break;
        case RecordChunk::kCosts: {
          Cursor c(chunk->payload);
          rec_base = get_costs(c);
          rec_opt = get_costs(c);
          costs = true;
          break;
        }
        case RecordChunk::kCheckpoint: {
          if (!inputs_ok()) {
            throw ReplayError(ErrorKind::kMalformed, chunk_start,
                              "checkpoint chunk before the input chunks");
          }
          EngineCheckpoint cp = decode_checkpoint(chunk->payload);
          if (cp.seq != scan.checkpoints.size()) {
            throw ReplayError(
                ErrorKind::kMalformed, chunk_start,
                "checkpoint seq " + std::to_string(cp.seq) +
                    " out of order (expected " +
                    std::to_string(scan.checkpoints.size()) + ")");
          }
          if (!scan.checkpoints.empty() &&
              cp.virtual_now <= scan.checkpoints.back().virtual_now) {
            throw ReplayError(ErrorKind::kMalformed, chunk_start,
                              "checkpoint virtual time not increasing");
          }
          scan.checkpoints.push_back(std::move(cp));
          break;
        }
        case RecordChunk::kReport:
          scan.record.report = decode_report(chunk->payload);
          report = true;
          break;
        case RecordChunk::kEvents:
          scan.record.report.events = decode_events(chunk->payload);
          events = true;
          break;
        default:
          break;  // unknown tags skipped, as in decode_run_record
      }
      scan.scanned_bytes = reader.offset();
    }
  } catch (const ReplayError& e) {
    // Before the inputs are complete there is no run to resume — the caller
    // gets the error.  After them, damage is what a crash looks like: stop
    // at the last good chunk and record why.
    if (!inputs_ok()) throw;
    scan.tear = e.what();
  }
  if (!inputs_ok()) {
    throw ReplayError(ErrorKind::kMalformed, bytes.size(),
                      "trace ends before the input chunks are complete");
  }
  require_calibration(rec_base, rec_opt, scan.record.git_rev);
  scan.complete = ended && report && events && scan.tear.empty();
  if (!scan.complete) {
    // Don't hand out a half-read outcome: a report without its event stream
    // (or vice versa) is not a verification target.
    scan.record.report = RunReport{};
  }
  return scan;
}

ReplayResult resume_run(const ResumeScan& scan, unsigned threads_override) {
  ReplayResult result;
  EngineConfig cfg = scan.record.config;
  cfg.record_events = true;
  cfg.threads =
      threads_override > 0 ? threads_override : scan.record.recorded_threads;
  // A resumed run neither re-crashes nor re-checkpoints: the crash already
  // happened, and the torn trace is evidence, not something to extend.
  // (crash_at_cycles is never serialized, so these are belt-and-braces for
  // callers that hand-build a ResumeScan.)
  cfg.faults.crash_at_cycles = 0.0;
  cfg.checkpoint_every = 0.0;
  cfg.checkpoint_sink = nullptr;
  TrafficScenario scenario = scan.record.scenario;
  for (TrafficPhase& ph : scenario.phases) {
    if (ph.faults) ph.faults->crash_at_cycles = 0.0;
  }
  Engine engine(cfg);
  if (scan.checkpoints.empty()) {
    // Nothing usable survived: restart from the beginning.  Resume is
    // always possible; checkpoints only buy back the work.
    result.report = engine.run(scenario);
  } else {
    const EngineCheckpoint& cp = scan.checkpoints.back();
    // Everything the engine's restore path treats as a programming error
    // (logic_error) is pre-checked here as typed kMalformed: a CRC-valid
    // checkpoint that lies about the run it belongs to is an input problem.
    const auto reject = [](const std::string& detail) {
      throw ReplayError(ErrorKind::kMalformed, 0, "resume: " + detail);
    };
    const unsigned shards = engine.config().shards;
    if (cp.shards.size() != shards) {
      reject("checkpoint has " + std::to_string(cp.shards.size()) +
             " shards, the recorded config resolves to " +
             std::to_string(shards));
    }
    const std::uint64_t total = scenario.total_sessions();
    if (cp.offered > total) {
      reject("checkpoint offered " + std::to_string(cp.offered) +
             " arrivals, the scenario holds only " + std::to_string(total));
    }
    if (cp.generator.next_id > total) {
      reject("generator cursor past the scenario end");
    }
    if (scenario.phased()) {
      const std::uint64_t nphases = scenario.phases.size();
      if (cp.generator.phase_idx > nphases ||
          (cp.generator.next_id < total && cp.generator.phase_idx >= nphases)) {
        reject("generator phase index out of range");
      }
    } else if (cp.generator.phase_idx != 0) {
      reject("generator phase index nonzero for a flat scenario");
    }
    for (const CheckpointEntry& e : cp.entries) {
      if (e.event.shard != e.event.id % shards) {
        reject("entry for session " + std::to_string(e.event.id) +
               " names shard " + std::to_string(e.event.shard) +
               ", routing places it on " + std::to_string(e.event.id % shards));
      }
      if (e.parked) {
        const std::uint64_t phase = e.parked_info.phase;
        if (scenario.phased() ? phase >= scenario.phases.size() : phase != 0) {
          reject("parked session " + std::to_string(e.event.id) +
                 " names phase " + std::to_string(phase) +
                 ", which the scenario does not have");
        }
      }
    }
    result.report = engine.run(scenario, cp);
  }
  if (scan.complete) {
    result.mismatches = compare_reports(scan.record.report, result.report);
  }
  return result;
}

}  // namespace wsp::server
