// Record/replay of whole engine runs (docs/benchmarks.md §replay).
//
// A RunRecord captures everything a run's deterministic outputs depend on —
// scenario (seed, arrival model, cipher/size grid), EngineConfig (shards,
// capacities, fault plan), the calibrated platform costs baked into the
// recording binary, and the recording git_rev — plus the expected outcome:
// every deterministic RunReport field, the per-shard event digests, and the
// full per-session event stream.  Encoded with the support/replay codec
// (varint + delta ids + bit-exact doubles, CRC-framed chunks), a typical
// record is a few KB for a few hundred sessions.
//
// replay_run() re-runs the engine from the recorded inputs — at ANY thread
// count, since threads are outside the determinism contract — and verifies
// the outcome bit-exactly, reporting every mismatching field by name.  A
// calibration mismatch (the binary's calibrated_costs differ from the
// recording's) is reported before the engine even runs, so a replay on a
// drifted build fails loudly instead of chasing phantom regressions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/engine.h"
#include "support/replay.h"

namespace wsp::server {

/// Chunk tags of the wsp-replay-v1 run-record layout.
enum class RecordChunk : std::uint64_t {
  kMeta = 1,      ///< git_rev, recorded thread count
  kScenario = 2,  ///< TrafficScenario
  kConfig = 3,    ///< EngineConfig (minus threads) + FaultConfig
  kCosts = 4,     ///< calibrated base/opt PlatformCosts of the recorder
  kReport = 5,    ///< deterministic RunReport scalars + per-shard reports
  kEvents = 6,    ///< per-session event stream (delta-coded ids)
  /// The .wsp source text the scenario was compiled from (optional,
  /// informational).  Replay always runs from the lowered kScenario chunk;
  /// pre-existing binaries skip this tag, so no format version bump.
  kScenarioSource = 7,
};

struct RunRecord {
  std::string git_rev;            ///< of the recording binary
  unsigned recorded_threads = 1;  ///< informational; replay may differ
  TrafficScenario scenario;
  /// .wsp text the scenario was compiled from; empty for flat/hand-built
  /// scenarios and for records written before the scenario compiler.
  std::string scenario_source;
  EngineConfig config;            ///< threads carried but not authoritative
  RunReport report;               ///< deterministic fields + events only
};

/// Runs the engine with event recording enabled and packages the result.
/// `scenario_source` (optional) embeds the originating .wsp text into the
/// recording (RecordChunk::kScenarioSource).
RunRecord record_run(const EngineConfig& config,
                     const TrafficScenario& scenario,
                     std::string scenario_source = {});

std::vector<std::uint8_t> encode_run_record(const RunRecord& record);

/// Throws replay::ReplayError on any malformed/truncated/version-skewed
/// input; a structurally valid stream missing a required chunk is
/// ErrorKind::kMalformed.
RunRecord decode_run_record(const std::vector<std::uint8_t>& bytes);

/// Returns false when the file cannot be written.
bool write_run_record_file(const RunRecord& record, const std::string& path);

/// Throws replay::ReplayError (kTruncated covers unreadable files).
RunRecord read_run_record_file(const std::string& path);

struct ReplayResult {
  std::vector<std::string> mismatches;  ///< empty = bit-identical
  RunReport report;                     ///< the re-run's report

  bool ok() const { return mismatches.empty(); }
};

/// Re-runs the recorded scenario and verifies every deterministic field,
/// per-shard digest and session event.  `threads_override` > 0 replaces the
/// recorded thread count (the thread-invariance contract makes any value
/// legal).
ReplayResult replay_run(const RunRecord& record, unsigned threads_override = 0);

}  // namespace wsp::server
