// Record/replay of whole engine runs (docs/benchmarks.md §replay).
//
// A RunRecord captures everything a run's deterministic outputs depend on —
// scenario (seed, arrival model, cipher/size grid), EngineConfig (shards,
// capacities, fault plan), the calibrated platform costs baked into the
// recording binary, and the recording git_rev — plus the expected outcome:
// every deterministic RunReport field, the per-shard event digests, and the
// full per-session event stream.  Encoded with the support/replay codec
// (varint + delta ids + bit-exact doubles, CRC-framed chunks), a typical
// record is a few KB for a few hundred sessions.
//
// replay_run() re-runs the engine from the recorded inputs — at ANY thread
// count, since threads are outside the determinism contract — and verifies
// the outcome bit-exactly, reporting every mismatching field by name.  A
// calibration mismatch (the binary's calibrated_costs differ from the
// recording's) is reported before the engine even runs, so a replay on a
// drifted build fails loudly instead of chasing phantom regressions.
// Crash-fault tolerance (docs/recovery.md): a RunRecorder writes the same
// chunks INCREMENTALLY — inputs first, then one kCheckpoint chunk per
// quiesce barrier, then the report/events/end tag once the run completes.
// A run killed by a CrashFault leaves a torn trace: inputs + some
// checkpoints, no end tag.  scan_trace_for_resume() walks such a trace,
// stops at the first tear (framing/CRC damage or a checkpoint that fails
// semantic validation) and resume_run() restores the last valid checkpoint
// and continues the run — producing a report bit-identical to the
// uninterrupted run's deterministic fields.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/checkpoint.h"
#include "server/engine.h"
#include "support/replay.h"

namespace wsp::server {

/// Chunk tags of the wsp-replay-v1 run-record layout.
enum class RecordChunk : std::uint64_t {
  kMeta = 1,      ///< git_rev, recorded thread count
  kScenario = 2,  ///< TrafficScenario
  kConfig = 3,    ///< EngineConfig (minus threads) + FaultConfig
  kCosts = 4,     ///< calibrated base/opt PlatformCosts of the recorder
  kReport = 5,    ///< deterministic RunReport scalars + per-shard reports
  kEvents = 6,    ///< per-session event stream (delta-coded ids)
  /// The .wsp source text the scenario was compiled from (optional,
  /// informational).  Replay always runs from the lowered kScenario chunk;
  /// pre-existing binaries skip this tag, so no format version bump.
  kScenarioSource = 7,
  /// One quiesce-barrier EngineCheckpoint (server/checkpoint.h), appended
  /// after the input chunks by RunRecorder.  Pre-existing binaries skip the
  /// unknown tag, so completed traces with checkpoints still replay on
  /// them; only the resume path reads these.
  kCheckpoint = 8,
};

struct RunRecord {
  std::string git_rev;            ///< of the recording binary
  unsigned recorded_threads = 1;  ///< informational; replay may differ
  TrafficScenario scenario;
  /// .wsp text the scenario was compiled from; empty for flat/hand-built
  /// scenarios and for records written before the scenario compiler.
  std::string scenario_source;
  EngineConfig config;            ///< threads carried but not authoritative
  RunReport report;               ///< deterministic fields + events only
};

/// Runs the engine with event recording enabled and packages the result.
/// `scenario_source` (optional) embeds the originating .wsp text into the
/// recording (RecordChunk::kScenarioSource).
RunRecord record_run(const EngineConfig& config,
                     const TrafficScenario& scenario,
                     std::string scenario_source = {});

std::vector<std::uint8_t> encode_run_record(const RunRecord& record);

/// Throws replay::ReplayError on any malformed/truncated/version-skewed
/// input; a structurally valid stream missing a required chunk is
/// ErrorKind::kMalformed.
RunRecord decode_run_record(const std::vector<std::uint8_t>& bytes);

/// Returns false when the file cannot be written.
bool write_run_record_file(const RunRecord& record, const std::string& path);

/// Throws replay::ReplayError (kTruncated covers unreadable files).
RunRecord read_run_record_file(const std::string& path);

struct ReplayResult {
  std::vector<std::string> mismatches;  ///< empty = bit-identical
  RunReport report;                     ///< the re-run's report

  bool ok() const { return mismatches.empty(); }
};

/// Field-by-field comparison of two reports' deterministic sections —
/// scalars, latency quantiles, per-shard reports (event digests first) and
/// the full event streams.  Returns one human-readable line per mismatch;
/// empty = bit-identical.  Shared by replay_run and the crash-resume path.
std::vector<std::string> compare_reports(const RunReport& want,
                                         const RunReport& got);

/// Re-runs the recorded scenario and verifies every deterministic field,
/// per-shard digest and session event.  `threads_override` > 0 replaces the
/// recorded thread count (the thread-invariance contract makes any value
/// legal).
ReplayResult replay_run(const RunRecord& record, unsigned threads_override = 0);

// --- incremental recording + crash/resume ----------------------------------

/// Incremental wsp-replay-v1 writer and the standard CheckpointSink: the
/// input chunks (meta/scenario/source/config/costs) are written by the
/// constructor, each on_checkpoint() appends one kCheckpoint chunk (flushed
/// to the OS immediately, so a later kill loses at most the bytes after the
/// last barrier), and finish() completes the trace with report + events +
/// end tag.  The whole stream is mirrored in memory; `path` may be empty
/// for memory-only recording (tests, fuzzing).
///
/// Expected use:
///
///   RunRecorder rec(cfg, scenario, src, "run.wspr");
///   Engine engine(rec.engine_config());
///   try { rec.finish(engine.run(scenario)); }
///   catch (const CrashFault&) { rec.crash(); }   // trace left torn
///
class RunRecorder final : public CheckpointSink {
 public:
  /// Resolves `config` (auto-shards, clamps) exactly like Engine would and
  /// writes the input chunks.  Throws std::invalid_argument on an invalid
  /// config and replay-layer errors never; file I/O failures are reported
  /// through ok()/error(), not exceptions.
  RunRecorder(const EngineConfig& config, const TrafficScenario& scenario,
              std::string scenario_source = {}, const std::string& path = {});
  ~RunRecorder() override;

  /// The resolved config to build the recording Engine from: record_events
  /// on, checkpoint_sink pointing at this recorder, checkpoint_every as the
  /// caller configured it.
  EngineConfig engine_config();

  void on_checkpoint(const EngineCheckpoint& checkpoint) override;

  /// Writes the report/events chunks and the end tag, closing the file.
  /// Returns ok() — false when any write failed.
  bool finish(const RunReport& report);

  /// Abandons the trace mid-stream (simulated process death): the file is
  /// closed WITHOUT the end tag and, when `torn_tail_bytes` > 0, that many
  /// bytes are torn off the tail — a write that died partway through a
  /// checkpoint chunk.  The memory mirror is torn identically.
  void crash(std::size_t torn_tail_bytes = 0);

  /// The stream so far (post-crash: already torn).
  const std::vector<std::uint8_t>& bytes() const;
  std::size_t checkpoints() const { return checkpoint_offsets_.size(); }
  /// Byte offset of each kCheckpoint chunk's first header byte — the tear
  /// boundaries the fuzzer truncates at.
  const std::vector<std::size_t>& checkpoint_offsets() const {
    return checkpoint_offsets_;
  }
  bool ok() const;
  /// Empty while ok(); otherwise the first file-sink failure, with path.
  std::string error() const;

 private:
  struct Tee;  // VectorSink mirror + optional FileSink

  EngineConfig resolved_;
  std::string path_;
  std::unique_ptr<Tee> tee_;
  std::unique_ptr<replay::ChunkWriter> writer_;
  std::vector<std::size_t> checkpoint_offsets_;
  bool closed_ = false;
};

/// What a resume scan found in a (possibly torn) trace.
struct ResumeScan {
  /// Inputs are always populated; report/events only when `complete`.
  RunRecord record;
  /// Trace carries the end tag plus report and events: a finished run.
  bool complete = false;
  /// Every checkpoint up to the first tear, stream order (seq 0, 1, ...).
  std::vector<EngineCheckpoint> checkpoints;
  /// Bytes consumed before the scan stopped (tear point or stream end).
  std::size_t scanned_bytes = 0;
  /// Empty for a clean scan; otherwise why it stopped early (the tear).
  std::string tear;
};

/// Walks a trace for crash recovery.  The input chunks MUST decode — any
/// error before meta/scenario/config/costs are all present is rethrown
/// (such a trace identifies no run to resume), as is a calibration
/// mismatch against this binary.  PAST the inputs, damage is expected —
/// that is what a crash leaves behind — so framing/CRC/decode/validation
/// failures stop the scan at the last good chunk and are reported in
/// `tear` instead of thrown.  Checkpoints must arrive in seq order with
/// strictly increasing virtual_now; a violator is treated as the tear.
ResumeScan scan_trace_for_resume(const std::vector<std::uint8_t>& bytes);

/// Restores the scan's last valid checkpoint and continues the run (any
/// thread count — the resume determinism contract covers all of them).
/// With no usable checkpoint the run simply restarts from the beginning:
/// resume is always possible, recovery work is what checkpoints buy.
/// Never re-crashes regardless of the recorded fault config.  When the
/// scan is `complete`, the resumed report is verified against the recorded
/// one exactly like replay_run; for torn traces mismatches stays empty —
/// the caller compares against an uninterrupted reference run instead.
/// Throws replay::ReplayError(kMalformed) when the checkpoint does not fit
/// the recorded scenario/config (CRC-valid corruption).
ReplayResult resume_run(const ResumeScan& scan, unsigned threads_override = 0);

}  // namespace wsp::server
