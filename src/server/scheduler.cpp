#include "server/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/trace.h"

namespace wsp::server {

namespace {

// Identifies pump threads of a specific scheduler instance so push() can
// detect re-entrancy.  A pointer (not a bool) because two schedulers may
// coexist: a pump of scheduler A pushing into scheduler B is an ordinary
// external producer for B.
thread_local const RecordScheduler* t_pump_owner = nullptr;

class PumpScope {
 public:
  explicit PumpScope(const RecordScheduler* owner) : saved_(t_pump_owner) {
    t_pump_owner = owner;
  }
  ~PumpScope() { t_pump_owner = saved_; }
  PumpScope(const PumpScope&) = delete;
  PumpScope& operator=(const PumpScope&) = delete;

 private:
  const RecordScheduler* saved_;
};

void bump_peak(std::atomic<std::size_t>& peak, std::size_t depth) {
  std::size_t prev = peak.load(std::memory_order_relaxed);
  while (depth > prev &&
         !peak.compare_exchange_weak(prev, depth, std::memory_order_relaxed)) {
  }
}

}  // namespace

RecordScheduler::RecordScheduler(ThreadPool& pool, unsigned shards,
                                 std::size_t capacity, std::size_t batch)
    : pool_(pool), batch_(std::max<std::size_t>(1, batch)) {
  const unsigned count = std::max(1u, shards);
  shards_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(std::max<std::size_t>(1, capacity)));
  }
  capacity_ = shards_.front()->ring.capacity();
}

RecordScheduler::Shard& RecordScheduler::shard_at(unsigned shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("RecordScheduler: shard index " +
                            std::to_string(shard) + " out of range (" +
                            std::to_string(shards_.size()) + " shards)");
  }
  return *shards_[shard];
}

void RecordScheduler::push(unsigned shard, std::function<void()> work) {
  Shard& s = shard_at(shard);

  if (!s.ring.try_push(work)) {
    if (t_pump_owner == this) {
      // Re-entrant push from one of our own pumps.  Blocking here would
      // self-deadlock (own shard) or risk a pump-cycle deadlock (another
      // shard), so spill to the overflow list instead.
      {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.overflow.push_back(std::move(work));
        s.overflow_size.store(s.overflow.size(), std::memory_order_release);
      }
      s.overflow_spills.fetch_add(1, std::memory_order_relaxed);
      WSP_TRACE_INSTANT("server.sched",
                        "overflow_spill/shard" + std::to_string(shard));
    } else {
      // External producer: block until the pump frees a cell.  The waiters
      // count is read by the pump under this same mutex, so the pump can
      // never both miss a registered waiter and skip the notify.
      s.backpressure_waits.fetch_add(1, std::memory_order_relaxed);
      WSP_TRACE_INSTANT("server.sched",
                        "backpressure/shard" + std::to_string(shard));
      std::unique_lock<std::mutex> lock(s.mutex);
      ++s.waiters;
      s.space.wait(lock, [&] { return s.ring.try_push(work); });
      --s.waiters;
    }
  }

  s.enqueued.fetch_add(1, std::memory_order_relaxed);
  bump_peak(s.peak_depth, s.ring.size_approx());
  WSP_TRACE_COUNTER("server.sched", "shard" + std::to_string(shard) + "/depth",
                    static_cast<double>(s.ring.size_approx()));
  maybe_start_pump(shard, s);
}

void RecordScheduler::maybe_start_pump(unsigned index, Shard& s) {
  // Publish-then-check against the pump's check-then-sleep exit (classic
  // store-buffering): the fences guarantee that either this load/exchange
  // observes the pump still active, or the exiting pump's re-check observes
  // the item we just enqueued — never both miss.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (s.pump_active.load(std::memory_order_seq_cst)) return;
  if (!s.pump_active.exchange(true, std::memory_order_seq_cst)) {
    pool_.submit([this, index] { pump(index); });
  }
}

void RecordScheduler::pump(unsigned index) {
  Shard& s = shard_at(index);
  PumpScope scope(this);
  WSP_TRACE_SPAN("server.sched", trace::enabled()
                                     ? "pump/shard" + std::to_string(index)
                                     : std::string());
  auto run_one = [&](Work& item) {
    bool ok = true;
    try {
      item();
    } catch (...) {
      // Containment: the item already left the queue, so all that remains
      // is to record the failure and keep pumping the shard.
      ok = false;
    }
    s.executed.fetch_add(1, std::memory_order_relaxed);
    if (!ok) {
      s.failed.fetch_add(1, std::memory_order_relaxed);
      WSP_TRACE_INSTANT("server.sched",
                        "task_failed/shard" + std::to_string(index));
    }
  };

  for (;;) {
    std::size_t ran = 0;
    Work item;
    while (ran < batch_ && s.ring.try_pop(item)) {
      run_one(item);
      ++ran;
    }
    if (ran == 0 && s.overflow_size.load(std::memory_order_acquire) > 0) {
      // Ring drained: work re-entrant spillover back in, one batch at a
      // time so external FIFO pushes are not starved indefinitely.
      std::vector<Work> spill;
      {
        std::lock_guard<std::mutex> lock(s.mutex);
        const std::size_t take = std::min(batch_, s.overflow.size());
        spill.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          spill.push_back(std::move(s.overflow.front()));
          s.overflow.pop_front();
        }
        s.overflow_size.store(s.overflow.size(), std::memory_order_release);
      }
      for (auto& w : spill) run_one(w);
      ran = spill.size();
    }
    if (ran > 0) {
      s.batches.fetch_add(1, std::memory_order_relaxed);
      WSP_TRACE_COUNTER("server.sched",
                        "shard" + std::to_string(index) + "/depth",
                        static_cast<double>(s.ring.size_approx()));
      bool wake;
      {
        // Lock-ordered against push(): either this section runs after a
        // waiter registered (we see waiters > 0 and notify), or the waiter
        // registers after us and its wait predicate re-checks a ring we
        // already drained.
        std::lock_guard<std::mutex> lock(s.mutex);
        wake = s.waiters > 0;
      }
      if (wake) s.space.notify_all();
      continue;
    }

    // Nothing left: release the pump, then re-check for items that raced
    // in between the last pop and the release (see maybe_start_pump).
    s.pump_active.store(false, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (s.ring.size_approx() == 0 &&
        s.overflow_size.load(std::memory_order_seq_cst) == 0) {
      return;
    }
    if (s.pump_active.exchange(true, std::memory_order_seq_cst)) {
      return;  // a producer reclaimed the flag; it submits the next pump
    }
  }
}

void RecordScheduler::drain() {
  // All pushes happened-before this call, every nonempty shard has an
  // active pump, and pumps only exit on an empty queue — so pool idleness
  // implies every shard queue is drained.
  pool_.wait_idle();
}

void RecordScheduler::quiesce() {
  drain();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    if (s.ring.size_approx() != 0 ||
        s.overflow_size.load(std::memory_order_seq_cst) != 0 ||
        s.pump_active.load(std::memory_order_seq_cst)) {
      throw std::logic_error(
          "scheduler: quiesce barrier found shard " + std::to_string(i) +
          " still busy after drain — checkpoint would lose in-flight work");
    }
  }
}

ShardCounters RecordScheduler::counters(unsigned shard) const {
  const Shard& s = shard_at(shard);
  ShardCounters c;
  c.enqueued = s.enqueued.load(std::memory_order_relaxed);
  c.executed = s.executed.load(std::memory_order_relaxed);
  c.failed = s.failed.load(std::memory_order_relaxed);
  c.batches = s.batches.load(std::memory_order_relaxed);
  c.backpressure_waits = s.backpressure_waits.load(std::memory_order_relaxed);
  c.overflow_spills = s.overflow_spills.load(std::memory_order_relaxed);
  c.peak_depth = s.peak_depth.load(std::memory_order_relaxed);
  return c;
}

}  // namespace wsp::server
