#include "server/scheduler.h"

#include <algorithm>
#include <string>

#include "support/trace.h"

namespace wsp::server {

RecordScheduler::RecordScheduler(ThreadPool& pool, unsigned shards,
                                 std::size_t capacity, std::size_t batch)
    : pool_(pool),
      shards_(std::max(1u, shards)),
      capacity_(std::max<std::size_t>(1, capacity)),
      batch_(std::max<std::size_t>(1, batch)) {}

void RecordScheduler::push(unsigned shard, std::function<void()> work) {
  Shard& s = shards_[shard];
  bool start_pump = false;
  {
    std::unique_lock<std::mutex> lock(s.mutex);
    if (s.queue.size() >= capacity_) {
      ++s.counters.backpressure_waits;
      WSP_TRACE_INSTANT("server.sched",
                        "backpressure/shard" + std::to_string(shard));
      s.space.wait(lock, [&] { return s.queue.size() < capacity_; });
    }
    s.queue.push_back(std::move(work));
    ++s.counters.enqueued;
    s.counters.peak_depth = std::max(s.counters.peak_depth, s.queue.size());
    WSP_TRACE_COUNTER("server.sched", "shard" + std::to_string(shard) + "/depth",
                      static_cast<double>(s.queue.size()));
    if (!s.pump_active) {
      s.pump_active = true;
      start_pump = true;
    }
  }
  if (start_pump) pool_.submit([this, shard] { pump(shard); });
}

void RecordScheduler::pump(unsigned index) {
  Shard& s = shards_[index];
  WSP_TRACE_SPAN("server.sched", "pump/shard" + std::to_string(index));
  for (;;) {
    std::vector<std::function<void()>> items;
    {
      std::lock_guard<std::mutex> lock(s.mutex);
      if (s.queue.empty()) {
        s.pump_active = false;  // flips under the mutex: no lost pushes
        return;
      }
      const std::size_t take = std::min(batch_, s.queue.size());
      items.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        items.push_back(std::move(s.queue.front()));
        s.queue.pop_front();
      }
      ++s.counters.batches;
      WSP_TRACE_COUNTER("server.sched",
                        "shard" + std::to_string(index) + "/depth",
                        static_cast<double>(s.queue.size()));
    }
    s.space.notify_all();
    for (auto& item : items) {
      bool ok = true;
      try {
        item();
      } catch (...) {
        // Containment: the item already left the queue (depth was
        // decremented and producers woken at pop time), so all that
        // remains is to record the failure and keep pumping the shard.
        ok = false;
      }
      std::lock_guard<std::mutex> lock(s.mutex);
      ++s.counters.executed;
      if (!ok) {
        ++s.counters.failed;
        WSP_TRACE_INSTANT("server.sched",
                          "task_failed/shard" + std::to_string(index));
      }
    }
  }
}

void RecordScheduler::drain() {
  // All pushes happened-before this call, every nonempty shard has an
  // active pump, and pumps only exit on an empty queue — so pool idleness
  // implies every shard queue is drained.
  pool_.wait_idle();
}

ShardCounters RecordScheduler::counters(unsigned shard) const {
  auto& s = const_cast<Shard&>(shards_[shard]);
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.counters;
}

}  // namespace wsp::server
