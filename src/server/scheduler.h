// Batched record scheduler: bounded per-shard work queues drained by
// single-shard "pump" tasks on the shared support::ThreadPool.
//
// Per shard there is at most ONE pump task in flight at a time, so all work
// for a shard executes in FIFO order on one worker — this is what lets the
// SessionTable hand out unsynchronized Session pointers, and it keeps a
// session's record sequence numbers consistent without per-record locks.
// Different shards pump concurrently on different workers.
//
// Flow control is explicit and two-sided:
//   * admission control (deciding whether a session is accepted at all, and
//     drop accounting) lives in the Engine's deterministic virtual-time
//     model — the scheduler never silently discards work;
//   * push() applies *backpressure*: when a shard's queue is at capacity
//     the producing thread blocks until the pump drains a batch, which
//     bounds queue memory no matter how fast arrivals are generated.
//
// Fault containment: an item that exits by exception is counted in
// `failed` and the pump keeps draining — one poisoned session can never
// wedge its shard, strand the remaining queue entries, or deadlock a
// producer blocked in push().  Callers that need the error itself must
// catch it inside the submitted closure (the Engine does exactly that and
// converts SessionErrors into abort accounting before they reach here).
//
// Counters are updated under each shard's queue mutex and must only be
// read after drain().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "support/threadpool.h"

namespace wsp::server {

struct ShardCounters {
  std::uint64_t enqueued = 0;
  std::uint64_t executed = 0;
  std::uint64_t failed = 0;            ///< items that exited by exception
  std::uint64_t batches = 0;           ///< pump invocations that ran >= 1 item
  std::uint64_t backpressure_waits = 0;  ///< pushes that had to block
  std::size_t peak_depth = 0;          ///< real queue high-water mark
};

class RecordScheduler {
 public:
  /// `capacity` bounds each shard's queue; `batch` caps the items one pump
  /// invocation drains before re-checking the queue under the lock.
  RecordScheduler(ThreadPool& pool, unsigned shards, std::size_t capacity,
                  std::size_t batch = 8);

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }
  std::size_t capacity() const { return capacity_; }

  /// Enqueues work on `shard`, blocking while the shard queue is full
  /// (backpressure).  Spawns the shard's pump task if none is running.
  /// Must not be called from a pump task (a worker blocking on its own
  /// queue would deadlock the shard).
  void push(unsigned shard, std::function<void()> work);

  /// Blocks until every shard queue is empty and all pumps have exited.
  /// Only the pushing thread may call this, after its last push().
  void drain();

  /// Post-drain counter snapshot.
  ShardCounters counters(unsigned shard) const;

 private:
  struct Shard {
    std::mutex mutex;
    std::condition_variable space;
    std::deque<std::function<void()>> queue;
    bool pump_active = false;
    ShardCounters counters;
  };

  void pump(unsigned index);

  ThreadPool& pool_;
  std::vector<Shard> shards_;
  std::size_t capacity_;
  std::size_t batch_;
};

}  // namespace wsp::server
