// Batched record scheduler: bounded lock-free per-shard work queues drained
// by single-shard "pump" tasks on the shared support::ThreadPool.
//
// Per shard there is at most ONE pump task in flight at a time (an atomic
// pump-active flag handed off with exchange()), so all work for a shard
// executes in FIFO order on one worker — this is what lets the SessionTable
// hand out unsynchronized Session pointers, and it keeps a session's record
// sequence numbers consistent without per-record locks.  Different shards
// pump concurrently on different workers.  The batched data plane leans on
// the same guarantee: a cohort task (Engine, batch_lanes > 1) stages many
// sessions of one shard onto a private crypto::BatchDispatcher, which is
// safe precisely because no other task of that shard can run concurrently.
//
// The queue itself is a support::MpscRing (Vyukov bounded ring): push and
// pop are wait-free single-CAS operations, so at million-session scale the
// producer never serializes against the pump on a queue mutex.  A mutex +
// condvar pair exists per shard but only on the backpressure SLOW path.
//
// Flow control is explicit and two-sided:
//   * admission control (deciding whether a session is accepted at all, and
//     drop accounting) lives in the Engine's deterministic virtual-time
//     model — the scheduler never silently discards work;
//   * push() applies *backpressure*: when a shard's ring is full the
//     producing thread blocks until the pump drains a batch, which bounds
//     queue memory no matter how fast arrivals are generated.
//
// Re-entrant pushes: a work item MAY push more work, including into its own
// shard.  A pump thread never blocks on a full ring — blocking on its own
// shard would self-deadlock (the pump is the only thing that frees space),
// and blocking on another shard could deadlock through a pump cycle.
// Instead the item is spilled to the shard's overflow list (counted in
// `overflow_spills`) and drained by the pump after the ring.  Overflow
// memory is bounded by the work a single pump invocation generates, not by
// the arrival rate.
//
// Fault containment: an item that exits by exception is counted in `failed`
// and the pump keeps draining — one poisoned session can never wedge its
// shard, strand the remaining queue entries, or deadlock a producer blocked
// in push().  Callers that need the error itself must catch it inside the
// submitted closure (the Engine does exactly that and converts
// SessionErrors into abort accounting before they reach here).
//
// Counters are lock-free atomics; counters() may be called concurrently
// with a run but only settles once drain() has returned.  Every entry point
// validates its shard index and throws std::out_of_range on a bad one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "support/mpsc_ring.h"
#include "support/threadpool.h"

namespace wsp::server {

struct ShardCounters {
  std::uint64_t enqueued = 0;
  std::uint64_t executed = 0;
  std::uint64_t failed = 0;            ///< items that exited by exception
  std::uint64_t batches = 0;           ///< pump invocations that ran >= 1 item
  std::uint64_t backpressure_waits = 0;  ///< pushes that had to block
  std::uint64_t overflow_spills = 0;   ///< re-entrant pushes past a full ring
  std::size_t peak_depth = 0;          ///< ring high-water mark (approximate)
};

class RecordScheduler {
 public:
  /// `capacity` bounds each shard's ring (rounded up to a power of two);
  /// `batch` caps the items one pump iteration drains before re-checking.
  RecordScheduler(ThreadPool& pool, unsigned shards, std::size_t capacity,
                  std::size_t batch = 8);

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }
  std::size_t capacity() const { return capacity_; }

  /// Enqueues work on `shard`, blocking while the shard ring is full
  /// (backpressure) — except from a pump thread of this scheduler, where a
  /// full ring spills to the overflow list instead (see header comment).
  /// Spawns the shard's pump task if none is running.  Throws
  /// std::out_of_range on an invalid shard index.
  void push(unsigned shard, std::function<void()> work);

  /// Blocks until every shard queue is empty and all pumps have exited.
  /// Only the pushing thread may call this, after its last push().
  void drain();

  /// drain() plus a proof: after the wait, verifies every shard ring and
  /// overflow list is actually empty and throws std::logic_error otherwise.
  /// This is the checkpoint quiesce barrier's first step (docs/recovery.md)
  /// — a checkpoint taken over a non-empty data plane would silently lose
  /// work, so the invariant is checked, not assumed.  The scheduler remains
  /// usable afterwards: the next push() restarts the shard's pump.
  void quiesce();

  /// Counter snapshot (stable once drain() has returned).  Throws
  /// std::out_of_range on an invalid shard index.
  ShardCounters counters(unsigned shard) const;

 private:
  using Work = std::function<void()>;

  struct Shard {
    explicit Shard(std::size_t capacity) : ring(capacity) {}

    support::MpscRing<Work> ring;
    std::atomic<bool> pump_active{false};

    // Slow paths only: backpressure waiting and re-entrant overflow.
    std::mutex mutex;
    std::condition_variable space;
    std::size_t waiters = 0;    ///< producers blocked in push(); guarded by mutex
    std::deque<Work> overflow;  ///< guarded by mutex
    std::atomic<std::size_t> overflow_size{0};  ///< lock-free emptiness probe

    // Counters (ShardCounters mirrors these).
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> backpressure_waits{0};
    std::atomic<std::uint64_t> overflow_spills{0};
    std::atomic<std::size_t> peak_depth{0};
  };

  /// Validates a shard index; throws std::out_of_range (the same contract
  /// as Cpu::ur's range check: a bad index faults, it never aliases).
  Shard& shard_at(unsigned shard) const;

  void maybe_start_pump(unsigned index, Shard& s);
  void pump(unsigned index);

  ThreadPool& pool_;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< stable addresses
  std::size_t capacity_;
  std::size_t batch_;
};

}  // namespace wsp::server
