#include "server/session.h"

#include <algorithm>
#include <string>

#include "crypto/sha1.h"
#include "support/trace.h"

namespace wsp::server {

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kPending: return "pending";
    case SessionState::kEstablished: return "established";
    case SessionState::kClosed: return "closed";
  }
  return "?";
}

Session::Session(const SessionConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

void Session::require(SessionState expected, const char* op) const {
  if (state_ != expected) {
    throw std::logic_error(std::string("server: ") + op + " on a " +
                           to_string(state_) + " session");
  }
}

void Session::handshake(const rsa::PrivateKey& server_key,
                        ModexpEngine& client_engine,
                        ModexpEngine& server_engine) {
  require(SessionState::kPending, "handshake");
  WSP_TRACE_SPAN("server.session", "handshake");
  keys_.emplace(ssl::perform_handshake(server_key, cfg_.cipher, client_engine,
                                       server_engine, rng_));
  handshake_bytes_ = keys_->handshake_bytes;
  wire_bytes_ += handshake_bytes_;
  state_ = SessionState::kEstablished;
}

std::size_t Session::pump(std::size_t max_records) {
  require(SessionState::kEstablished, "pump");
  WSP_TRACE_SPAN("server.session", "pump");
  std::size_t moved = 0;
  for (std::size_t r = 0; r < max_records && !finished(); ++r) {
    const std::size_t payload_len =
        std::min(cfg_.record_bytes, cfg_.transaction_bytes - bytes_sent_);
    const auto payload = rng_.bytes(payload_len);
    const auto wire = keys_->client_write.seal(payload);
    const auto opened = keys_->client_write.open(wire);
    if (opened != payload) {
      throw std::runtime_error("server: record corrupted in transit");
    }
    bytes_sent_ += payload_len;
    wire_bytes_ += wire.size();
    moved += wire.size();
    ++records_;
  }
  return moved;
}

void Session::rekey() {
  require(SessionState::kEstablished, "rekey");
  WSP_TRACE_SPAN("server.session", "rekey");
  // SSLv3-style renegotiation-lite: fresh nonces, same master secret.
  const auto client_random = rng_.bytes(32);
  const auto server_random = rng_.bytes(32);
  const ssl::CipherProfile spec = ssl::cipher_profile(cfg_.cipher);
  const std::size_t block_len =
      2 * (Sha1::kDigestSize + spec.key_len + spec.iv_len);
  const auto key_block = ssl::kdf_ssl3(keys_->master_secret, server_random,
                                       client_random, block_len);
  std::size_t off = 0;
  auto take = [&](std::size_t n) {
    std::vector<std::uint8_t> v(
        key_block.begin() + static_cast<std::ptrdiff_t>(off),
        key_block.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    return v;
  };
  const auto client_mac = take(Sha1::kDigestSize);
  const auto server_mac = take(Sha1::kDigestSize);
  const auto client_key = take(spec.key_len);
  const auto server_key = take(spec.key_len);
  const auto client_iv = take(spec.iv_len);
  const auto server_iv = take(spec.iv_len);
  keys_->client_write =
      ssl::SecureChannel(cfg_.cipher, client_key, client_mac, client_iv);
  keys_->server_write =
      ssl::SecureChannel(cfg_.cipher, server_key, server_mac, server_iv);
  wire_bytes_ += 64;  // the two hello nonces on the wire
  ++rekeys_;
}

void Session::teardown() {
  if (state_ == SessionState::kClosed) return;
  WSP_TRACE_SPAN("server.session", "teardown");
  keys_.reset();  // drop key material with the connection
  state_ = SessionState::kClosed;
}

}  // namespace wsp::server
