#include "server/session.h"

#include <algorithm>
#include <string>

#include "crypto/sha1.h"
#include "support/trace.h"

namespace wsp::server {

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kPending: return "pending";
    case SessionState::kEstablished: return "established";
    case SessionState::kClosed: return "closed";
    case SessionState::kAborted: return "aborted";
  }
  return "?";
}

Session::Session(const SessionConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

void Session::require(SessionState expected, const char* op) const {
  if (state_ != expected) {
    throw std::logic_error(std::string("server: ") + op + " on a " +
                           to_string(state_) + " session");
  }
}

void Session::handshake(const rsa::PrivateKey& server_key,
                        ModexpEngine& client_engine,
                        ModexpEngine& server_engine) {
  require(SessionState::kPending, "handshake");
  WSP_TRACE_SPAN("server.session", "handshake");
  const unsigned attempt = handshake_attempts_++;
  if (attempt < cfg_.faults.handshake_failures) {
    ++faults_seen_;
    WSP_TRACE_INSTANT_V("server.fault", "handshake_fail",
                        static_cast<double>(attempt));
    try {
      ssl::HandshakeFault fault;
      fault.corrupt_premaster = true;
      ssl::perform_handshake(server_key, cfg_.cipher, client_engine,
                             server_engine, rng_, &fault);
    } catch (const std::runtime_error&) {
      // The hellos and the (corrupted) premaster made it onto the wire
      // before the exchange collapsed.
      wire_bytes_ += 64 + (server_key.bits() + 7) / 8;
      throw SessionError(SessionErrorKind::kHandshakeFailed, cfg_.id,
                         "premaster corrupted in transit (attempt " +
                             std::to_string(attempt) + ")");
    }
    // A corrupted premaster can never yield a shared secret; reaching here
    // would mean the fault was silently swallowed.
    throw SessionError(SessionErrorKind::kHandshakeFailed, cfg_.id,
                       "corrupted premaster unexpectedly accepted");
  }
  keys_ = std::make_unique<ssl::Handshake>(ssl::perform_handshake(
      server_key, cfg_.cipher, client_engine, server_engine, rng_));
  handshake_bytes_ = keys_->handshake_bytes;
  wire_bytes_ += handshake_bytes_;
  state_ = SessionState::kEstablished;
}

void Session::resume() {
  require(SessionState::kPending, "resume");
  WSP_TRACE_SPAN("server.session", "resume");
  const unsigned attempt = handshake_attempts_++;
  if (attempt < cfg_.faults.handshake_failures) {
    ++faults_seen_;
    WSP_TRACE_INSTANT_V("server.fault", "resume_fail",
                        static_cast<double>(attempt));
    // The hellos carrying the session id went on the wire before the
    // ticket was rejected.
    wire_bytes_ += 64;
    throw SessionError(SessionErrorKind::kHandshakeFailed, cfg_.id,
                       "session ticket rejected (attempt " +
                           std::to_string(attempt) + ")");
  }
  // Both sides hold the cached master secret; this session's copy is a
  // pure function of its seed, so resumed runs stay bit-deterministic.
  auto master = rng_.bytes(48);
  auto channels = derive_channel_pair(master);
  keys_ = std::make_unique<ssl::Handshake>(
      ssl::Handshake{std::move(channels.first), std::move(channels.second),
                     std::move(master), kResumedHandshakeBytes});
  handshake_bytes_ = keys_->handshake_bytes;
  wire_bytes_ += handshake_bytes_;
  state_ = SessionState::kEstablished;
}

std::size_t Session::pump(std::size_t max_records) {
  require(SessionState::kEstablished, "pump");
  WSP_TRACE_SPAN("server.session", "pump");
  std::size_t moved = 0;
  for (std::size_t r = 0; r < max_records && !finished(); ++r) {
    const std::size_t payload_len =
        std::min(cfg_.record_bytes, cfg_.transaction_bytes - bytes_sent_);
    const auto payload = rng_.bytes(payload_len);
    const std::uint64_t record = records_;
    const bool poisoned = cfg_.faults.poisons(record);
    unsigned flips_left = poisoned ? 0 : cfg_.faults.flip_attempts(record);
    // First attempt inline; the shared repair ladder takes over on failure.
    auto wire = keys_->client_write.seal(payload);
    const unsigned attempt =
        tamper_wire(wire, record, poisoned, flips_left, /*attempt=*/0);
    wire_bytes_ += wire.size();
    moved += wire.size();
    bool delivered = false;
    try {
      // Equality is the transfer check; repair must never silently
      // accept bytes that differ from what the client sent.
      delivered = keys_->client_write.open(wire) == payload;
    } catch (const std::runtime_error&) {
      delivered = false;  // MAC / padding / framing rejection
    }
    if (!delivered) {
      moved += repair_transfer(payload, record, poisoned, flips_left, attempt,
                               /*failures=*/1);
    }
    bytes_sent_ += payload_len;
    ++records_;
  }
  return moved;
}

unsigned Session::tamper_wire(std::vector<std::uint8_t>& wire,
                              std::uint64_t record, bool poisoned,
                              unsigned& flips_left, unsigned attempt) {
  if (poisoned || flips_left > 0) {
    // Flip a bit of the final wire byte.  The tail carries the MAC
    // (stream ciphers) or the last CBC block (block ciphers), so the
    // tamper is always detected — and for CBC it also desyncs the
    // receiver's chaining state, which is what makes rekey() a genuine
    // repair rather than a formality.
    wire.back() ^= static_cast<std::uint8_t>(
        1u << cfg_.faults.flip_bit(record, attempt));
    if (flips_left > 0) --flips_left;
    ++faults_seen_;
    WSP_TRACE_INSTANT_V("server.fault", "wire_flip",
                        static_cast<double>(record));
  }
  return attempt + 1;
}

std::size_t Session::repair_transfer(const std::vector<std::uint8_t>& payload,
                                     std::uint64_t record, bool poisoned,
                                     unsigned flips_left, unsigned attempt,
                                     unsigned failures) {
  std::size_t moved = 0;
  bool rekeyed = false;
  for (;;) {
    // Ladder decision for the failure we just took.
    if (failures <= cfg_.faults.record_retry_budget) {
      ++retries_;
      WSP_TRACE_INSTANT_V("server.fault", "record_retry",
                          static_cast<double>(failures));
    } else if (!rekeyed) {
      // Retransmits alone did not verify: the channel state (CBC IVs,
      // sequence numbers) desynced.  Re-derive both directions from the
      // master secret and retransmit under fresh keys.
      rekey();
      ++repairs_;
      ++retries_;
      rekeyed = true;
      failures = 0;
      WSP_TRACE_INSTANT_V("server.fault", "rekey_repair",
                          static_cast<double>(record));
    } else {
      abort();
      throw SessionError(SessionErrorKind::kAborted, cfg_.id,
                         "record " + std::to_string(record) +
                             " unrecoverable after retry and rekey");
    }
    // Retransmissions re-seal the SAME payload: the application data is
    // fixed; only the wire transfer repeats.
    auto wire = keys_->client_write.seal(payload);
    attempt = tamper_wire(wire, record, poisoned, flips_left, attempt);
    wire_bytes_ += wire.size();
    moved += wire.size();
    bool delivered = false;
    try {
      delivered = keys_->client_write.open(wire) == payload;
    } catch (const std::runtime_error&) {
      delivered = false;
    }
    if (delivered) return moved;
    ++failures;
  }
}

bool Session::stage_seal(Staged& st, crypto::BatchDispatcher& dispatcher) {
  require(SessionState::kEstablished, "pump");
  if (finished()) {
    st.active = false;
    return false;
  }
  st.payload_len =
      std::min(cfg_.record_bytes, cfg_.transaction_bytes - bytes_sent_);
  st.payload = rng_.bytes(st.payload_len);
  st.record = records_;
  st.poisoned = cfg_.faults.poisons(st.record);
  st.flips_left = st.poisoned ? 0 : cfg_.faults.flip_attempts(st.record);
  st.attempt = 0;
  st.failures = 0;
  st.moved = 0;
  st.active = true;
  st.seal = keys_->client_write.seal_submit(st.payload, dispatcher);
  return true;
}

void Session::stage_open(Staged& st, crypto::BatchDispatcher& dispatcher) {
  st.wire = keys_->client_write.seal_complete(std::move(st.seal));
  st.attempt =
      tamper_wire(st.wire, st.record, st.poisoned, st.flips_left, st.attempt);
  wire_bytes_ += st.wire.size();
  st.moved += st.wire.size();
  st.open = keys_->client_write.open_submit(st.wire, dispatcher);
}

std::size_t Session::finish_staged(Staged& st) {
  bool delivered = false;
  try {
    delivered = keys_->client_write.open_complete(std::move(st.open)) ==
                st.payload;
  } catch (const std::runtime_error&) {
    delivered = false;  // MAC / padding / framing rejection
  }
  std::size_t moved = st.moved;
  if (!delivered) {
    // Same ladder, same counters, same Rng draws as the pump() path — the
    // only difference is that attempt 0 ran through the batched kernels.
    moved += repair_transfer(st.payload, st.record, st.poisoned, st.flips_left,
                             st.attempt, /*failures=*/1);
  }
  bytes_sent_ += st.payload_len;
  ++records_;
  st.active = false;
  return moved;
}

std::pair<ssl::SecureChannel, ssl::SecureChannel> Session::derive_channel_pair(
    const std::vector<std::uint8_t>& master) {
  // SSLv3-style derivation: fresh nonces, caller-supplied master secret.
  const auto client_random = rng_.bytes(32);
  const auto server_random = rng_.bytes(32);
  const ssl::CipherProfile spec = ssl::cipher_profile(cfg_.cipher);
  const std::size_t block_len =
      2 * (Sha1::kDigestSize + spec.key_len + spec.iv_len);
  const auto key_block =
      ssl::kdf_ssl3(master, server_random, client_random, block_len);
  std::size_t off = 0;
  auto take = [&](std::size_t n) {
    std::vector<std::uint8_t> v(
        key_block.begin() + static_cast<std::ptrdiff_t>(off),
        key_block.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    return v;
  };
  const auto client_mac = take(Sha1::kDigestSize);
  const auto server_mac = take(Sha1::kDigestSize);
  const auto client_key = take(spec.key_len);
  const auto server_key = take(spec.key_len);
  const auto client_iv = take(spec.iv_len);
  const auto server_iv = take(spec.iv_len);
  return {ssl::SecureChannel(cfg_.cipher, client_key, client_mac, client_iv),
          ssl::SecureChannel(cfg_.cipher, server_key, server_mac, server_iv)};
}

void Session::rekey() {
  require(SessionState::kEstablished, "rekey");
  WSP_TRACE_SPAN("server.session", "rekey");
  auto channels = derive_channel_pair(keys_->master_secret);
  keys_->client_write = std::move(channels.first);
  keys_->server_write = std::move(channels.second);
  wire_bytes_ += 64;  // the two hello nonces on the wire
  ++rekeys_;
}

void Session::teardown() {
  if (state_ == SessionState::kClosed || state_ == SessionState::kAborted) {
    return;
  }
  WSP_TRACE_SPAN("server.session", "teardown");
  keys_.reset();  // drop key material with the connection
  state_ = SessionState::kClosed;
}

void Session::abort() {
  if (state_ == SessionState::kClosed || state_ == SessionState::kAborted) {
    return;
  }
  WSP_TRACE_INSTANT("server.session", "abort");
  keys_.reset();
  state_ = SessionState::kAborted;
}

}  // namespace wsp::server
