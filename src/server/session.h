// One secure session's connection lifecycle, driven by the real
// ssl::SecureChannel / handshake code:
//
//   kPending ──handshake()──► kEstablished ──teardown()──► kClosed
//                                  │  ▲
//                           pump() │  │ rekey()
//                                  ▼  │
//                             (record stream)
//
// Every operation validates the state machine and throws on misuse
// (handshake twice, records before keys, rekey after teardown, ...), which
// is what the tier-1 lifecycle tests pin down.  All randomness — record
// payloads, handshake nonces, rekey nonces — comes from a per-session Rng
// seeded at construction, so a session's byte totals are a pure function of
// its SessionConfig regardless of which worker thread runs it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>

#include "ssl/ssl.h"

namespace wsp::server {

enum class SessionState { kPending, kEstablished, kClosed };

const char* to_string(SessionState s);

struct SessionConfig {
  std::uint64_t id = 0;
  ssl::Cipher cipher = ssl::Cipher::kRc4;
  std::size_t transaction_bytes = 0;  ///< application payload to transfer
  std::size_t record_bytes = 1024;    ///< payload bytes per record
  std::uint64_t seed = 0;             ///< per-session Rng seed
};

class Session {
 public:
  explicit Session(const SessionConfig& cfg);

  std::uint64_t id() const { return cfg_.id; }
  ssl::Cipher cipher() const { return cfg_.cipher; }
  SessionState state() const { return state_; }

  /// Runs the real RSA key-exchange handshake against `server_key` and
  /// enters kEstablished.  Throws std::logic_error unless kPending.
  void handshake(const rsa::PrivateKey& server_key, ModexpEngine& client_engine,
                 ModexpEngine& server_engine);

  /// Seals and opens up to `max_records` records of the transaction stream
  /// (client seals, server opens — tampering throws out of ssl::open).
  /// Returns the wire bytes moved.  Throws std::logic_error unless
  /// kEstablished.
  std::size_t pump(std::size_t max_records);

  /// True once the whole transaction payload has been transferred.
  bool finished() const { return bytes_sent_ >= cfg_.transaction_bytes; }

  /// Rederives fresh record keys from the handshake's master secret
  /// (kdf_ssl3 over new nonces) and swaps in new channels; the record
  /// stream continues under the new keys.  Throws std::logic_error unless
  /// kEstablished — in particular, rekeying a torn-down session is
  /// rejected, never silently re-opened.
  void rekey();

  /// kPending/kEstablished -> kClosed; idempotent on kClosed.
  void teardown();

  // Deterministic per-session accounting.
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t handshake_bytes() const { return handshake_bytes_; }
  std::uint32_t rekeys() const { return rekeys_; }

 private:
  void require(SessionState expected, const char* op) const;

  SessionConfig cfg_;
  SessionState state_ = SessionState::kPending;
  Rng rng_;
  std::optional<ssl::Handshake> keys_;  ///< channels + master secret
  std::size_t bytes_sent_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t handshake_bytes_ = 0;
  std::uint64_t records_ = 0;
  std::uint32_t rekeys_ = 0;
};

}  // namespace wsp::server
