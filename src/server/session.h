// One secure session's connection lifecycle, driven by the real
// ssl::SecureChannel / handshake code:
//
//   kPending ──handshake()──► kEstablished ──teardown()──► kClosed
//        │                        │  ▲   │
//        │ (budget exhausted)     │  │   │ (repair exhausted)
//        └──────────► kAborted ◄──┘  │   │
//                         ▲   pump() │   │ rekey()
//                         └──────────┴───┘
//
// Every operation validates the state machine and throws on misuse
// (handshake twice, records before keys, rekey after teardown, ...), which
// is what the tier-1 lifecycle tests pin down.  All randomness — record
// payloads, handshake nonces, rekey nonces — comes from a per-session Rng
// seeded at construction, so a session's byte totals are a pure function of
// its SessionConfig regardless of which worker thread runs it.
//
// Fault recovery (docs/faults.md): when the SessionConfig carries a
// FaultSchedule, scheduled records are corrupted on the wire and the repair
// ladder engages — retransmit up to `record_retry_budget` times, then
// rekey() to re-derive channels (healing CBC chaining / sequence desync the
// tampered record left behind), then abort with a typed SessionError.
// Stream-cipher sessions typically heal on plain retransmit; CBC sessions
// need the rekey leg.  Every step is deterministic per session.
//
// Memory layout (million-session data plane): the Session object itself is
// the HOT block — config, state, Rng and accounting, a flat POD-ish struct
// the SessionTable packs densely into slab slots.  Key material (the
// ssl::Handshake: two channels + master secret) is the COLD block, heap-
// allocated behind one pointer only while the session is established, so a
// large admitted-but-pending backlog costs hot blocks only.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "server/faults.h"
#include "ssl/ssl.h"

namespace wsp::crypto {
class BatchDispatcher;
}

namespace wsp::server {

enum class SessionState { kPending, kEstablished, kClosed, kAborted };

const char* to_string(SessionState s);

struct SessionConfig {
  std::uint64_t id = 0;
  ssl::Cipher cipher = ssl::Cipher::kRc4;
  std::size_t transaction_bytes = 0;  ///< application payload to transfer
  std::size_t record_bytes = 1024;    ///< payload bytes per record
  std::uint64_t seed = 0;             ///< per-session Rng seed
  FaultSchedule faults;               ///< benign by default
};

class Session {
 public:
  explicit Session(const SessionConfig& cfg);

  std::uint64_t id() const { return cfg_.id; }
  ssl::Cipher cipher() const { return cfg_.cipher; }
  SessionState state() const { return state_; }

  /// The admission-time configuration this session was built from.  A
  /// kPending session is a pure function of it (key material is derived
  /// from cfg.seed on establishment), which is what lets the checkpoint
  /// layer serialize parked sessions as their configs (docs/recovery.md).
  const SessionConfig& config() const { return cfg_; }

  /// Runs the real RSA key-exchange handshake against `server_key` and
  /// enters kEstablished.  Throws std::logic_error unless kPending.
  /// While the fault schedule says this attempt fails, the premaster is
  /// corrupted on the wire and a SessionError(kHandshakeFailed) is thrown;
  /// the session stays kPending so the caller may retry (with backoff) up
  /// to its budget.
  void handshake(const rsa::PrivateKey& server_key, ModexpEngine& client_engine,
                 ModexpEngine& server_engine);

  /// Abbreviated (session-resumption) handshake: no RSA key exchange — the
  /// two sides share a cached master secret, re-derived here from the
  /// per-session Rng, and only hellos + Finished cross the wire
  /// (kResumedHandshakeBytes).  Same state machine and fault semantics as
  /// handshake(): throws SessionError(kHandshakeFailed) while the fault
  /// schedule says the attempt fails (ticket rejected), session stays
  /// kPending for retry.  This is what makes 10^5..10^6-session scale runs
  /// tractable: record-layer costs dominate instead of RSA.
  void resume();

  /// Seals and opens up to `max_records` records of the transaction stream
  /// (client seals, server opens).  Scheduled wire faults corrupt records
  /// in transit; verification failure engages the repair ladder
  /// (retransmit -> rekey -> abort).  Returns the wire bytes moved,
  /// retransmissions included.  Throws std::logic_error unless
  /// kEstablished, SessionError(kAborted) when repair is exhausted.
  std::size_t pump(std::size_t max_records);

  /// True once the whole transaction payload has been transferred.
  bool finished() const { return bytes_sent_ >= cfg_.transaction_bytes; }

  // -------------------------------------------------------------------------
  // Staged (batched) record transfer: the three-phase form of one pump()
  // record, used by the engine's per-shard cohorts so the cipher passes of
  // many sessions run through one crypto::BatchDispatcher (docs/server.md).
  //
  //   stage_seal()  -> flush -> stage_open() -> flush -> finish_staged()
  //
  // The phases draw from the per-session Rng, consume fault-schedule
  // entries and advance the accounting in exactly the order pump() does,
  // so a run is bit-identical for any batch_lanes.  If the batched first
  // attempt fails verification, finish_staged() falls back to the same
  // scalar repair ladder pump() uses (retransmit -> rekey -> abort).
  //
  // The Staged block is deliberately NOT part of the Session object: it
  // only exists while a cohort is in flight, and keeping it out of the hot
  // block preserves the scale path's memory_per_session accounting.
  struct Staged {
    std::vector<std::uint8_t> payload;  ///< application bytes of this record
    std::vector<std::uint8_t> wire;     ///< sealed record (possibly tampered)
    ssl::SecureChannel::Pending seal, open;
    std::uint64_t record = 0;
    std::size_t payload_len = 0;
    std::size_t moved = 0;  ///< wire bytes accounted to this record so far
    unsigned flips_left = 0;
    unsigned attempt = 0;
    unsigned failures = 0;
    bool poisoned = false;
    bool active = false;
  };

  /// Phase 1: draws the next record's payload and submits its seal to the
  /// dispatcher.  Returns false (staging nothing) when the transaction is
  /// already finished.  Throws std::logic_error unless kEstablished.
  bool stage_seal(Staged& st, crypto::BatchDispatcher& dispatcher);

  /// Phase 2 (after a flush): completes the seal, applies any scheduled
  /// wire tamper, accounts the wire bytes and submits the open.
  void stage_open(Staged& st, crypto::BatchDispatcher& dispatcher);

  /// Phase 3 (after a flush): verifies delivery; on failure runs the scalar
  /// repair ladder.  Returns the wire bytes moved for this record.  Throws
  /// SessionError(kAborted) when repair is exhausted, exactly like pump().
  std::size_t finish_staged(Staged& st);

  /// Rederives fresh record keys from the handshake's master secret
  /// (kdf_ssl3 over new nonces) and swaps in new channels; the record
  /// stream continues under the new keys.  Throws std::logic_error unless
  /// kEstablished — in particular, rekeying a torn-down session is
  /// rejected, never silently re-opened.
  void rekey();

  /// kPending/kEstablished -> kClosed; idempotent on kClosed and on
  /// kAborted (an aborted session is already torn down).
  void teardown();

  /// Drops key material and enters the terminal kAborted state, from any
  /// state but kClosed (idempotent on kAborted; no-op on kClosed).
  void abort();

  // Deterministic per-session accounting.
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t handshake_bytes() const { return handshake_bytes_; }
  std::uint32_t rekeys() const { return rekeys_; }
  std::uint32_t retries() const { return retries_; }       ///< retransmissions
  std::uint32_t repairs() const { return repairs_; }       ///< rekey repairs
  std::uint32_t faults_seen() const { return faults_seen_; }
  std::uint32_t handshake_attempts() const { return handshake_attempts_; }

  /// Wire bytes of the abbreviated handshake resume() models (hellos with
  /// session id + both Finished messages).
  static constexpr std::size_t kResumedHandshakeBytes = 128;

  /// Size of the out-of-line cold block an established session carries —
  /// the structural term the memory-per-session accounting charges per
  /// slot on top of the hot block (see SessionTable::bytes_per_session).
  static constexpr std::size_t cold_bytes() { return sizeof(ssl::Handshake); }

 private:
  void require(SessionState expected, const char* op) const;

  /// Applies the scheduled wire tamper (if any) for `record`/`attempt` to a
  /// sealed record and returns the next attempt number.
  unsigned tamper_wire(std::vector<std::uint8_t>& wire, std::uint64_t record,
                       bool poisoned, unsigned& flips_left, unsigned attempt);

  /// Continues one record's transfer after `failures` failed attempts:
  /// the ladder decision (retransmit / rekey / abort) followed by scalar
  /// re-seal + re-open, looping until delivery.  Shared by pump() and
  /// finish_staged() so both paths burn identical counters, Rng draws and
  /// fault-schedule entries.  Returns the wire bytes it moved.
  std::size_t repair_transfer(const std::vector<std::uint8_t>& payload,
                              std::uint64_t record, bool poisoned,
                              unsigned flips_left, unsigned attempt,
                              unsigned failures);

  /// Derives a fresh {client_write, server_write} channel pair from
  /// `master` via fresh nonces + kdf_ssl3 (the SSLv3 key-block split).
  /// Shared by rekey() and resume(); no wire/byte accounting here.
  std::pair<ssl::SecureChannel, ssl::SecureChannel> derive_channel_pair(
      const std::vector<std::uint8_t>& master);

  SessionConfig cfg_;
  SessionState state_ = SessionState::kPending;
  Rng rng_;
  std::unique_ptr<ssl::Handshake> keys_;  ///< cold block: channels + master secret
  std::size_t bytes_sent_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t handshake_bytes_ = 0;
  std::uint64_t records_ = 0;
  std::uint32_t rekeys_ = 0;
  std::uint32_t retries_ = 0;
  std::uint32_t repairs_ = 0;
  std::uint32_t faults_seen_ = 0;
  std::uint32_t handshake_attempts_ = 0;
};

}  // namespace wsp::server
