#include "server/session_table.h"

#include <algorithm>
#include <stdexcept>

namespace wsp::server {

SessionTable::SessionTable(unsigned shards)
    : shards_(std::max(1u, shards)) {}

Session* SessionTable::insert(std::unique_ptr<Session> session) {
  Shard& shard = shards_[shard_of(session->id())];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.map.emplace(session->id(), std::move(session));
  if (!inserted) throw std::logic_error("server: duplicate session id");
  const std::size_t now = size_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return it->second.get();
}

Session* SessionTable::find(std::uint64_t id) {
  Shard& shard = shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(id);
  return it == shard.map.end() ? nullptr : it->second.get();
}

bool SessionTable::erase(std::uint64_t id) {
  Shard& shard = shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.erase(id) == 0) return false;
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

}  // namespace wsp::server
