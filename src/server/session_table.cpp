#include "server/session_table.h"

#include <algorithm>
#include <stdexcept>

namespace wsp::server {

SessionTable::SessionTable(unsigned shards) {
  const unsigned count = std::max(1u, shards);
  shards_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionTable::Inserted SessionTable::insert(const SessionConfig& cfg) {
  Shard& shard = *shards_[shard_of(cfg.id)];
  support::SlabRef ref;
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.index.find(cfg.id) != nullptr) {
      throw std::logic_error("server: duplicate session id");
    }
    ref = shard.slab.emplace(cfg);
    shard.index.insert(cfg.id, ref);
    session = shard.slab.get(ref);
  }
  const std::size_t now = size_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Inserted{SessionHandle{cfg.id, ref}, session};
}

Session* SessionTable::get(const SessionHandle& handle) {
  Shard& shard = *shards_[shard_of(handle.id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.slab.get(handle.ref);
}

Session* SessionTable::find(std::uint64_t id) {
  Shard& shard = *shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const detail::FlatIndex::Entry* e = shard.index.find(id);
  return e == nullptr ? nullptr : shard.slab.get(e->ref);
}

bool SessionTable::erase(const SessionHandle& handle) {
  Shard& shard = *shards_[shard_of(handle.id)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.slab.erase(handle.ref)) return false;  // stale handle
    shard.index.erase(handle.id);
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool SessionTable::erase(std::uint64_t id) {
  Shard& shard = *shards_[shard_of(id)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const detail::FlatIndex::Entry* e = shard.index.find(id);
    if (e == nullptr) return false;
    shard.slab.erase(e->ref);
    shard.index.erase(id);
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::size_t SessionTable::bytes_reserved() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->slab.bytes_reserved() + shard->index.bytes_reserved();
  }
  return total;
}

}  // namespace wsp::server
