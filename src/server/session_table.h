// Sharded table of live sessions.  Each shard is an independently locked
// id -> Session map, so the admission path (inserting on the caller thread)
// and the execution path (shard pumps on pool workers) contend only within
// one shard.
//
// Concurrency contract: the table's own operations are thread-safe; the
// Session object a lookup returns is NOT internally synchronized.  The
// scheduler guarantees at most one pump task per shard, and every work item
// for a session lands on shard_of(id), so exactly one thread ever touches a
// given Session after insertion.  Pointers stay valid across concurrent
// inserts/erases of other ids (node-based map).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "server/session.h"

namespace wsp::server {

class SessionTable {
 public:
  explicit SessionTable(unsigned shards);

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }
  unsigned shard_of(std::uint64_t id) const {
    return static_cast<unsigned>(id % shards_.size());
  }

  /// Registers a session; throws std::logic_error on duplicate id.
  Session* insert(std::unique_ptr<Session> session);

  /// nullptr when the id is unknown (already torn down / never admitted).
  Session* find(std::uint64_t id);

  /// Removes and destroys the session; false when the id is unknown.
  bool erase(std::uint64_t id);

  /// Live sessions right now (atomic counter — safe to sample anytime).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// High-water mark of live sessions over the table's lifetime.
  std::size_t peak_size() const { return peak_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::unique_ptr<Session>> map;
  };

  std::vector<Shard> shards_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> peak_{0};
};

}  // namespace wsp::server
