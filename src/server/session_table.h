// Sharded, slab-backed table of live sessions — the million-session data
// plane (ROADMAP item 1).
//
// Layout: each shard owns a support::Slab<Session> (the HOT blocks, packed
// densely into stable chunked storage — no per-session malloc on the
// admission path) plus a flat open-addressing index mapping session id to
// the slab slot.  Cold key material lives behind one pointer inside the
// Session itself (see session.h).  Compared to the former
// unordered_map<id, unique_ptr<Session>>, admission costs one slab bump +
// one linear-probe insert instead of two heap allocations and a node-hash
// rehash, and a shard's live sessions sit in a few contiguous arrays.
//
// Handles: insert() returns a SessionHandle carrying the slab ref with its
// generation counter.  A handle held after erase goes stale instead of
// aliasing the slot's next tenant — get()/erase() on a stale handle return
// nullptr/false.  Handle lookups skip the index probe entirely.
//
// Concurrency contract (unchanged): the table's own operations are
// thread-safe (per-shard mutex); the Session a lookup returns is NOT
// internally synchronized.  The scheduler guarantees at most one pump task
// per shard and every work item for a session lands on shard_of(id), so
// exactly one thread ever touches a given Session after insertion.
// Session addresses are stable for their whole lifetime (slab chunks never
// move) across concurrent inserts/erases of other ids.
//
// Memory accounting: bytes_per_session() is a *structural* constant —
// slab slot + cold block + index slots at max load — chosen so the bench
// metric is a pure function of the build, not of allocator or thread
// timing (the determinism contract extends to BENCH_server.json).
// bytes_reserved() reports actual reservations for diagnostics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "server/session.h"
#include "support/arena.h"

namespace wsp::server {

/// Handle to a live table entry: the id plus the generation-counted slab
/// ref.  Value-semantic; a default-constructed handle is never valid.
struct SessionHandle {
  std::uint64_t id = 0;
  support::SlabRef ref;

  bool operator==(const SessionHandle&) const = default;
};

namespace detail {

/// Open-addressing id -> SlabRef map: linear probing over a power-of-two
/// array at <= 50% load, erase by backward shift (no tombstones, so probe
/// chains never rot under the insert/erase churn of session turnover).
class FlatIndex {
 public:
  struct Entry {
    std::uint64_t id = 0;
    support::SlabRef ref;
    bool used = false;
  };

  /// Caller guarantees the id is absent (the table checks find() first).
  void insert(std::uint64_t id, support::SlabRef ref) {
    if ((size_ + 1) * 2 > slots_.size()) grow();
    std::size_t i = bucket(id);
    while (slots_[i].used) i = (i + 1) & mask_;
    slots_[i] = Entry{id, ref, true};
    ++size_;
  }

  const Entry* find(std::uint64_t id) const {
    if (slots_.empty()) return nullptr;
    std::size_t i = bucket(id);
    while (slots_[i].used) {
      if (slots_[i].id == id) return &slots_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  bool erase(std::uint64_t id) {
    if (slots_.empty()) return false;
    std::size_t hole = bucket(id);
    for (;;) {
      if (!slots_[hole].used) return false;
      if (slots_[hole].id == id) break;
      hole = (hole + 1) & mask_;
    }
    // Backward shift: pull every displaced follower whose probe chain
    // crosses the hole, preserving lookup invariants without tombstones.
    std::size_t j = (hole + 1) & mask_;
    while (slots_[j].used) {
      const std::size_t ideal = bucket(slots_[j].id);
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole] = Entry{};
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  std::size_t bytes_reserved() const { return slots_.size() * sizeof(Entry); }

 private:
  std::size_t bucket(std::uint64_t id) const {
    // SplitMix64 finalizer: session ids are often sequential, so spread
    // them before masking.
    std::uint64_t x = id + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & mask_;
  }

  void grow() {
    std::vector<Entry> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Entry{});
    mask_ = cap - 1;
    for (const Entry& e : old) {
      if (!e.used) continue;
      std::size_t i = bucket(e.id);
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i] = e;
    }
  }

  std::vector<Entry> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace detail

class SessionTable {
 public:
  explicit SessionTable(unsigned shards);

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }
  unsigned shard_of(std::uint64_t id) const {
    return static_cast<unsigned>(id % shards_.size());
  }

  struct Inserted {
    SessionHandle handle;
    Session* session = nullptr;
  };

  /// Constructs the session in place in its shard's slab and registers it;
  /// throws std::logic_error on duplicate id.
  Inserted insert(const SessionConfig& cfg);

  /// Handle lookup — O(1) slab access, no index probe.  nullptr when the
  /// handle is stale (session already erased, slot possibly reused).
  Session* get(const SessionHandle& handle);

  /// nullptr when the id is unknown (already torn down / never admitted).
  Session* find(std::uint64_t id);

  /// Removes and destroys the session; false when the handle is stale.
  bool erase(const SessionHandle& handle);

  /// Removes and destroys the session; false when the id is unknown.
  bool erase(std::uint64_t id);

  /// Walks one shard's live sessions straight from its slab arena, in slot
  /// order, as fn(SessionHandle, Session&).  Takes the shard mutex for the
  /// whole walk; fn must not call back into the table.  This is the quiesce
  /// barrier's view of the data plane (docs/recovery.md): at a barrier every
  /// live session must be a parked (kPending) cohort member, and the walk is
  /// how the checkpoint layer proves it.
  template <typename F>
  void for_each_live(unsigned shard, F&& fn) {
    Shard& sh = *shards_.at(shard);
    std::lock_guard<std::mutex> lock(sh.mutex);
    sh.slab.for_each([&](support::SlabRef ref, Session& session) {
      fn(SessionHandle{session.id(), ref}, session);
    });
  }

  /// Live sessions right now (atomic counter — safe to sample anytime).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// High-water mark of live sessions over the table's lifetime.
  std::size_t peak_size() const { return peak_.load(std::memory_order_relaxed); }

  /// Structural bytes one live session costs at steady state: hot slab
  /// slot + cold key block + its share of index slots at max (50%) load.
  /// A compile-time property of the build — deterministic across threads
  /// and hosts — which is what BENCH_server.json's memory_per_session
  /// reports.
  static constexpr std::size_t bytes_per_session() {
    return SessionSlab::slot_bytes() + Session::cold_bytes() +
           2 * sizeof(detail::FlatIndex::Entry);
  }

  /// Actual bytes reserved right now across shards (slab chunks + index
  /// arrays); high-water behaviour — neither ever shrinks mid-run.
  std::size_t bytes_reserved() const;

 private:
  using SessionSlab = support::Slab<Session, 1024>;

  struct Shard {
    std::mutex mutex;
    SessionSlab slab;
    detail::FlatIndex index;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> peak_{0};
};

}  // namespace wsp::server
