#include "server/traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wsp::server {

TrafficGenerator::TrafficGenerator(const TrafficScenario& scenario,
                                   double mean_service_cycles,
                                   unsigned service_units)
    : scenario_(scenario), rng_(scenario.seed) {
  if (scenario_.ciphers.empty() || scenario_.transaction_sizes.empty()) {
    throw std::invalid_argument("traffic: empty cipher/size grid");
  }
  if (scenario_.model == ArrivalModel::kOpenLoop) {
    if (scenario_.offered_load <= 0.0) {
      throw std::invalid_argument("traffic: offered_load must be > 0");
    }
    interarrival_mean_ = mean_service_cycles /
                         (static_cast<double>(std::max(1u, service_units)) *
                          scenario_.offered_load);
  } else {
    if (scenario_.users == 0) {
      throw std::invalid_argument("traffic: closed loop needs users > 0");
    }
    // Stagger the population's first arrivals across one mean think (or
    // service) interval so they don't all collide at t = 0.
    const double spread =
        scenario_.think_cycles > 0.0 ? scenario_.think_cycles
                                     : mean_service_cycles;
    for (unsigned u = 0; u < scenario_.users; ++u) {
      ready_.emplace(exp_draw(spread), u);
    }
  }
}

double TrafficGenerator::exp_draw(double mean) {
  if (mean <= 0.0) return 0.0;
  // Inverse-CDF with u in [0, 1); 1-u is in (0, 1] so log() is finite.
  return -mean * std::log(1.0 - rng_.next_double());
}

std::optional<SessionArrival> TrafficGenerator::next() {
  if (next_id_ >= scenario_.sessions) return std::nullopt;
  SessionArrival a;
  if (scenario_.model == ArrivalModel::kOpenLoop) {
    open_clock_ += exp_draw(interarrival_mean_);
    a.at_cycles = open_clock_;
  } else {
    if (ready_.empty()) return std::nullopt;  // all users awaiting outcomes
    const auto [at, user] = ready_.top();
    ready_.pop();
    a.at_cycles = at;
    a.user = user;
  }
  a.id = next_id_++;
  a.cipher = scenario_.ciphers[rng_.below(scenario_.ciphers.size())];
  a.transaction_bytes =
      scenario_.transaction_sizes[rng_.below(scenario_.transaction_sizes.size())];
  a.session_seed = rng_.next_u64();
  return a;
}

void TrafficGenerator::on_outcome(const SessionArrival& arrival,
                                  double completion_cycles, bool dropped) {
  if (scenario_.model != ArrivalModel::kClosedLoop) return;
  const double base = dropped ? arrival.at_cycles : completion_cycles;
  ready_.emplace(base + exp_draw(scenario_.think_cycles), arrival.user);
}

}  // namespace wsp::server
