#include "server/traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wsp::server {

namespace {

void check(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(std::string("traffic: ") + msg);
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

std::size_t TrafficScenario::total_sessions() const {
  if (!phased()) return sessions;
  std::size_t total = 0;
  for (const TrafficPhase& ph : phases) total += ph.sessions;
  return total;
}

void TrafficScenario::validate() const {
  check(record_bytes > 0, "record_bytes must be > 0");
  if (!phased()) {
    check(sessions > 0, "sessions must be > 0");
    check(!ciphers.empty(), "empty cipher grid");
    check(!transaction_sizes.empty(), "empty transaction size grid");
    for (const std::size_t bytes : transaction_sizes) {
      check(bytes > 0, "transaction sizes must be > 0");
    }
    if (model == ArrivalModel::kOpenLoop) {
      check(finite_positive(offered_load),
            "offered_load must be finite and > 0");
    } else {
      check(users > 0, "closed loop needs users > 0");
    }
    check(std::isfinite(think_cycles) && think_cycles >= 0.0,
          "think_cycles must be finite and >= 0");
    return;
  }
  for (const TrafficPhase& ph : phases) {
    check(ph.sessions > 0, "phase sessions must be > 0");
    check(!ph.cipher_mix.empty(), "phase has an empty cipher mix");
    check(!ph.size_mix.empty(), "phase has an empty size mix");
    for (const CipherMix& m : ph.cipher_mix) {
      check(m.weight > 0, "cipher mix weights must be > 0");
    }
    for (const SizeMix& m : ph.size_mix) {
      check(m.bytes > 0, "transaction sizes must be > 0");
      check(m.weight > 0, "size mix weights must be > 0");
    }
    if (ph.model == ArrivalModel::kOpenLoop) {
      check(finite_positive(ph.offered_load),
            "offered_load must be finite and > 0");
    } else {
      check(ph.users > 0, "closed loop needs users > 0");
    }
    check(std::isfinite(ph.think_cycles) && ph.think_cycles >= 0.0,
          "think_cycles must be finite and >= 0");
    check(std::isfinite(ph.resume_fraction) && ph.resume_fraction >= 0.0 &&
              ph.resume_fraction <= 1.0,
          "resume_fraction must be in [0, 1]");
    if (ph.faults) ph.faults->validate();
  }
}

TrafficGenerator::TrafficGenerator(const TrafficScenario& scenario,
                                   double mean_service_cycles,
                                   unsigned service_units)
    : scenario_(scenario), rng_(scenario.seed) {
  if (scenario_.phased()) {
    throw std::logic_error(
        "traffic: a phased scenario needs the per-phase constructor");
  }
  total_sessions_ = scenario_.sessions;
  if (scenario_.ciphers.empty() || scenario_.transaction_sizes.empty()) {
    throw std::invalid_argument("traffic: empty cipher/size grid");
  }
  if (scenario_.model == ArrivalModel::kOpenLoop) {
    if (scenario_.offered_load <= 0.0) {
      throw std::invalid_argument("traffic: offered_load must be > 0");
    }
    interarrival_mean_ = mean_service_cycles /
                         (static_cast<double>(std::max(1u, service_units)) *
                          scenario_.offered_load);
  } else {
    if (scenario_.users == 0) {
      throw std::invalid_argument("traffic: closed loop needs users > 0");
    }
    // Stagger the population's first arrivals across one mean think (or
    // service) interval so they don't all collide at t = 0.
    const double spread =
        scenario_.think_cycles > 0.0 ? scenario_.think_cycles
                                     : mean_service_cycles;
    for (unsigned u = 0; u < scenario_.users; ++u) {
      ready_.emplace(exp_draw(spread), u);
    }
  }
}

TrafficGenerator::TrafficGenerator(
    const TrafficScenario& scenario,
    const std::vector<double>& phase_mean_service_cycles,
    unsigned service_units)
    : scenario_(scenario), rng_(scenario.seed) {
  if (!scenario_.phased()) {
    throw std::logic_error(
        "traffic: the per-phase constructor needs a phased scenario");
  }
  if (phase_mean_service_cycles.size() != scenario_.phases.size()) {
    throw std::logic_error(
        "traffic: one mean service figure per phase is required");
  }
  scenario_.validate();
  total_sessions_ = scenario_.total_sessions();
  phase_mean_service_ = phase_mean_service_cycles;
  const double units = static_cast<double>(std::max(1u, service_units));
  phase_interarrival_.reserve(scenario_.phases.size());
  for (std::size_t i = 0; i < scenario_.phases.size(); ++i) {
    const TrafficPhase& ph = scenario_.phases[i];
    phase_interarrival_.push_back(
        ph.model == ArrivalModel::kOpenLoop
            ? phase_mean_service_[i] / (units * ph.offered_load)
            : 0.0);
    std::uint64_t ctotal = 0, stotal = 0;
    std::vector<std::uint32_t> cw, sw;
    for (const CipherMix& m : ph.cipher_mix) {
      ctotal += m.weight;
      cw.push_back(m.weight);
    }
    for (const SizeMix& m : ph.size_mix) {
      stotal += m.weight;
      sw.push_back(m.weight);
    }
    cipher_weight_total_.push_back(ctotal);
    size_weight_total_.push_back(stotal);
    cipher_weights_.push_back(std::move(cw));
    size_weights_.push_back(std::move(sw));
  }
}

double TrafficGenerator::exp_draw(double mean) {
  if (mean <= 0.0) return 0.0;
  // Inverse-CDF with u in [0, 1); 1-u is in (0, 1] so log() is finite.
  return -mean * std::log(1.0 - rng_.next_double());
}

void TrafficGenerator::enter_phase(std::size_t idx) {
  const TrafficPhase& ph = scenario_.phases[idx];
  interarrival_mean_ = phase_interarrival_[idx];
  if (ph.model == ArrivalModel::kClosedLoop) {
    // A fresh population: leftover pending arrivals from an earlier closed
    // phase are dropped, and the new users' first arrivals are staggered
    // from the current virtual-clock cursor (exactly like the flat path
    // staggers from t = 0).
    ready_ = {};
    const double spread =
        ph.think_cycles > 0.0 ? ph.think_cycles : phase_mean_service_[idx];
    for (unsigned u = 0; u < ph.users; ++u) {
      ready_.emplace(open_clock_ + exp_draw(spread), u);
    }
  }
  phase_entered_ = true;
}

std::size_t TrafficGenerator::pick_weighted(
    std::uint64_t total, const std::vector<std::uint32_t>& weights) {
  // One Rng draw either way; with unit weights `total == weights.size()`,
  // so the consumed value AND the picked index match the flat path's
  // uniform `below(n)` bit for bit.
  std::uint64_t r = rng_.below(total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;  // unreachable: r < total == sum(weights)
}

std::optional<SessionArrival> TrafficGenerator::next() {
  if (next_id_ >= total_sessions_) return std::nullopt;
  SessionArrival a;
  if (!scenario_.phased()) {
    if (scenario_.model == ArrivalModel::kOpenLoop) {
      open_clock_ += exp_draw(interarrival_mean_);
      a.at_cycles = open_clock_;
    } else {
      if (ready_.empty()) return std::nullopt;  // all users awaiting outcomes
      const auto [at, user] = ready_.top();
      ready_.pop();
      a.at_cycles = at;
      a.user = user;
    }
    a.id = next_id_++;
    a.cipher = scenario_.ciphers[rng_.below(scenario_.ciphers.size())];
    a.transaction_bytes =
        scenario_
            .transaction_sizes[rng_.below(scenario_.transaction_sizes.size())];
    a.session_seed = rng_.next_u64();
    a.resume = scenario_.resume_sessions;
    return a;
  }

  while (phase_done_ >= scenario_.phases[phase_idx_].sessions) {
    ++phase_idx_;
    phase_done_ = 0;
    phase_entered_ = false;
  }
  if (!phase_entered_) enter_phase(phase_idx_);
  const TrafficPhase& ph = scenario_.phases[phase_idx_];
  if (ph.model == ArrivalModel::kOpenLoop) {
    open_clock_ += exp_draw(interarrival_mean_);
    a.at_cycles = open_clock_;
  } else {
    if (ready_.empty()) return std::nullopt;  // all users awaiting outcomes
    const auto [at, user] = ready_.top();
    ready_.pop();
    a.at_cycles = at;
    a.user = user;
    // Keep the cursor monotone so a following open phase resumes from the
    // latest arrival, not from before this phase ran.
    open_clock_ = std::max(open_clock_, at);
  }
  a.id = next_id_++;
  ++phase_done_;
  a.phase = static_cast<std::uint32_t>(phase_idx_);
  a.cipher =
      ph.cipher_mix[pick_weighted(cipher_weight_total_[phase_idx_],
                                  cipher_weights_[phase_idx_])]
          .cipher;
  a.transaction_bytes =
      ph.size_mix[pick_weighted(size_weight_total_[phase_idx_],
                                size_weights_[phase_idx_])]
          .bytes;
  a.session_seed = rng_.next_u64();
  // The resume coin consumes a draw ONLY for a genuinely mixed fraction, so
  // all-full and all-resumed phases stay bit-compatible with the flat path.
  if (ph.resume_fraction >= 1.0) {
    a.resume = true;
  } else if (ph.resume_fraction > 0.0) {
    a.resume = rng_.next_double() < ph.resume_fraction;
  }
  return a;
}

TrafficGeneratorState TrafficGenerator::state() const {
  TrafficGeneratorState st;
  st.rng = rng_.state();
  st.next_id = next_id_;
  st.interarrival_mean = interarrival_mean_;
  st.open_clock = open_clock_;
  st.phase_idx = phase_idx_;
  st.phase_done = phase_done_;
  st.phase_entered = phase_entered_;
  // Drain a copy of the heap so the snapshot lists pending arrivals in
  // ascending (time, user) order — a canonical form, so two snapshots of
  // the same logical state compare equal byte for byte.
  auto pending = ready_;
  st.ready.reserve(pending.size());
  while (!pending.empty()) {
    st.ready.push_back(pending.top());
    pending.pop();
  }
  return st;
}

void TrafficGenerator::restore(const TrafficGeneratorState& state) {
  rng_.set_state(state.rng);
  next_id_ = state.next_id;
  interarrival_mean_ = state.interarrival_mean;
  open_clock_ = state.open_clock;
  phase_idx_ = static_cast<std::size_t>(state.phase_idx);
  phase_done_ = static_cast<std::size_t>(state.phase_done);
  phase_entered_ = state.phase_entered;
  ready_ = {};
  for (const auto& pending : state.ready) ready_.push(pending);
}

void TrafficGenerator::on_outcome(const SessionArrival& arrival,
                                  double completion_cycles, bool dropped) {
  if (!scenario_.phased()) {
    if (scenario_.model != ArrivalModel::kClosedLoop) return;
    const double base = dropped ? arrival.at_cycles : completion_cycles;
    ready_.emplace(base + exp_draw(scenario_.think_cycles), arrival.user);
    return;
  }
  // Feedback only drives the arrival's own phase; once the program has
  // moved on, the user population it belonged to is gone.
  if (arrival.phase != phase_idx_) return;
  const TrafficPhase& ph = scenario_.phases[arrival.phase];
  if (ph.model != ArrivalModel::kClosedLoop) return;
  const double base = dropped ? arrival.at_cycles : completion_cycles;
  ready_.emplace(base + exp_draw(ph.think_cycles), arrival.user);
}

}  // namespace wsp::server
