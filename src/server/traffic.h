// Deterministic, seeded traffic generation for the secure-session engine.
//
// Two arrival models, both driven entirely by one seeded Rng and the
// engine's *virtual* clock (platform cycles), so the offered stream — ids,
// arrival times, cipher/size mix, per-session seeds — is bit-identical for
// a fixed scenario regardless of worker-thread count or host speed:
//
//   * open loop:   sessions arrive with exponential inter-arrival times at
//     `offered_load` times the modeled aggregate service capacity;
//     arrivals never wait for completions (the overload knob: load > 1
//     must produce drops);
//   * closed loop: a fixed population of `users`, each issuing its next
//     session when the previous one completes (plus exponential think
//     time) — the classic benchmark-client shape.
//
// A scenario is either FLAT — one parameter set, each arrival drawing its
// cipher and transaction size uniformly from the grid (by default the
// Fig. 8 measurement grid, 1KB..32KB, crossed with the three record
// ciphers) — or a PROGRAM: a non-empty `phases` list, usually compiled from
// a .wsp file (src/scenario, docs/scenarios.md).  A program executes its
// phases back to back on the virtual clock; each phase carries its own
// arrival model, load/population, WEIGHTED cipher×size mix, resumption
// fraction and optional fault overlay.  Per arrival the generator draws, in
// this fixed order: arrival time, cipher, size, session seed, and — only
// when the phase's resume_fraction is strictly between 0 and 1 — the resume
// coin.  A single-phase program with unit weights and resume_fraction in
// {0, 1} therefore consumes the Rng exactly like the flat path and
// reproduces it bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "server/faults.h"
#include "ssl/ssl.h"
#include "support/random.h"

namespace wsp::server {

enum class ArrivalModel { kOpenLoop, kClosedLoop };

/// One weighted entry of a phase's cipher mix.  Weights are relative
/// (integers >= 1); unit weights reproduce the flat path's uniform draw.
struct CipherMix {
  ssl::Cipher cipher = ssl::Cipher::kRc4;
  std::uint32_t weight = 1;
};

/// One weighted entry of a phase's transaction-size mix.
struct SizeMix {
  std::size_t bytes = 0;
  std::uint32_t weight = 1;
};

/// One phase of a traffic program: `sessions` arrivals under one parameter
/// set.  Compiled from a .wsp `phase` block (src/scenario/sema.cpp), which
/// fills every field; hand-built phases must satisfy
/// TrafficScenario::validate().
struct TrafficPhase {
  std::string name;           ///< diagnostic label ("flash", "night", ...)
  std::size_t sessions = 0;   ///< arrivals this phase offers (> 0)
  ArrivalModel model = ArrivalModel::kOpenLoop;
  double offered_load = 0.6;  ///< open loop, fraction of modeled capacity
  unsigned users = 8;         ///< closed loop population
  double think_cycles = 0.0;  ///< closed loop mean think time
  /// Fraction of this phase's sessions that resume with cached credentials
  /// (abbreviated handshake, resumed pricing).  0 = all full handshakes,
  /// 1 = all resumed; in between, a per-arrival deterministic coin.
  double resume_fraction = 0.0;
  std::vector<CipherMix> cipher_mix;
  std::vector<SizeMix> size_mix;
  /// Overrides the engine's FaultConfig for sessions arriving in this phase
  /// (rekey storms, adversarial floods); nullopt inherits the engine's.
  std::optional<FaultConfig> faults;
};

struct TrafficScenario {
  std::uint64_t seed = 1;
  std::size_t sessions = 64;  ///< total arrivals to offer (flat scenarios)
  ArrivalModel model = ArrivalModel::kOpenLoop;

  // Open loop: offered load as a fraction of modeled service capacity
  // (shards x 1 session-cycle per cycle).  > 1.0 over-admits.
  double offered_load = 0.6;

  // Closed loop: concurrent user population and mean think time.
  unsigned users = 8;
  double think_cycles = 0.0;

  // Session mix (uniform draw per arrival).
  std::vector<ssl::Cipher> ciphers = {ssl::Cipher::kTripleDesCbc,
                                      ssl::Cipher::kAes128Cbc,
                                      ssl::Cipher::kRc4};
  std::vector<std::size_t> transaction_sizes = {1024, 2048, 4096,
                                                8192, 16384, 32768};
  std::size_t record_bytes = 1024;

  /// Sessions reconnect with cached credentials: the engine runs the
  /// abbreviated resumption handshake (Session::resume — no RSA) and
  /// prices sessions with ssl::resumed_transaction_cost.  This is the
  /// million-session regime, where key exchange is amortized across
  /// reconnects and record-layer throughput dominates.
  bool resume_sessions = false;

  /// Non-empty = this scenario is a traffic PROGRAM: the flat fields above
  /// (except seed and record_bytes) are ignored and the phases execute back
  /// to back.  Usually produced by the .wsp compiler (scenario::compile).
  std::vector<TrafficPhase> phases;

  bool phased() const { return !phases.empty(); }

  /// Total arrivals the scenario offers (sum of phases, or `sessions`).
  std::size_t total_sessions() const;

  /// Rejects degenerate scenarios with std::invalid_argument: zero
  /// sessions, empty cipher/size grids or mixes, non-finite or non-positive
  /// offered_load, negative/non-finite think_cycles, zero users on a
  /// closed loop, resume fractions outside [0, 1], zero mix weights, bad
  /// fault overlays, zero record_bytes.  Engine::run calls this before
  /// touching any state.
  void validate() const;
};

struct SessionArrival {
  std::uint64_t id = 0;
  double at_cycles = 0.0;  ///< virtual arrival time
  unsigned user = 0;       ///< closed loop: issuing user
  ssl::Cipher cipher = ssl::Cipher::kRc4;
  std::size_t transaction_bytes = 0;
  std::uint64_t session_seed = 0;
  std::uint32_t phase = 0;  ///< index into scenario.phases (0 when flat)
  /// Whether THIS session resumes (flat: the scenario flag; program: the
  /// phase's resume_fraction, possibly a per-arrival deterministic coin).
  bool resume = false;
};

/// The generator's full mutable state — Rng words, id/phase cursors, the
/// virtual-clock cursor and every pending closed-loop arrival.  Snapshotting
/// it at a quiesce barrier and restoring into a freshly constructed
/// generator (same scenario, same mean-service figures) resumes the arrival
/// stream bit-exactly; the constructor-derived rate/weight tables are pure
/// functions of the scenario and are NOT part of the state.  Serialized into
/// kCheckpoint chunks by server/record.h (docs/recovery.md).
struct TrafficGeneratorState {
  Rng::State rng;
  std::uint64_t next_id = 0;
  double interarrival_mean = 0.0;
  double open_clock = 0.0;
  std::uint64_t phase_idx = 0;
  std::uint64_t phase_done = 0;
  bool phase_entered = false;
  /// Pending closed-loop arrivals as (ready time, user), ascending.  The
  /// heap's pop order is a pure function of this multiset (ties break on the
  /// user index), so rebuilding the heap from the sorted list is exact.
  std::vector<std::pair<double, unsigned>> ready;

  bool operator==(const TrafficGeneratorState&) const = default;
};

class TrafficGenerator {
 public:
  /// Flat scenarios.  `mean_service_cycles` is the scenario-mix average
  /// session cost under the engine's pricing model; `service_units` the
  /// number of shards.  Together they convert `offered_load` into an
  /// arrival rate.  Throws std::logic_error if `scenario` is a program.
  TrafficGenerator(const TrafficScenario& scenario, double mean_service_cycles,
                   unsigned service_units);

  /// Traffic programs: one pre-priced mean service figure per phase (same
  /// order as scenario.phases; the engine computes them from each phase's
  /// weighted mix).  Throws std::logic_error on a flat scenario or a
  /// length mismatch.
  TrafficGenerator(const TrafficScenario& scenario,
                   const std::vector<double>& phase_mean_service_cycles,
                   unsigned service_units);

  /// Next arrival in virtual-time order; nullopt once all arrivals have
  /// been offered (or, closed loop, no user has a pending arrival —
  /// report outcomes to keep the loop running).
  std::optional<SessionArrival> next();

  /// Closed-loop feedback: schedules the issuing user's next arrival at
  /// the session's virtual completion (or, for drops, at the arrival time
  /// itself) plus think time.  No-op for open-loop arrivals and for
  /// arrivals from an already-finished phase.
  void on_outcome(const SessionArrival& arrival, double completion_cycles,
                  bool dropped);

  double interarrival_mean_cycles() const { return interarrival_mean_; }

  /// Snapshot of everything next()/on_outcome() mutate.  Taken BEFORE a
  /// next() call, a later restore() re-draws that same arrival first.
  TrafficGeneratorState state() const;

  /// Restores a snapshot taken from a generator built over the same
  /// scenario and mean-service figures; the subsequent draw sequence is
  /// bit-identical to the original generator's.
  void restore(const TrafficGeneratorState& state);

 private:
  double exp_draw(double mean);
  void enter_phase(std::size_t idx);
  std::size_t pick_weighted(std::uint64_t total,
                            const std::vector<std::uint32_t>& weights);

  TrafficScenario scenario_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
  std::size_t total_sessions_ = 0;
  double interarrival_mean_ = 0.0;
  double open_clock_ = 0.0;

  // Program state: current phase, arrivals emitted within it, and the
  // pre-computed per-phase rate/weight tables.
  std::size_t phase_idx_ = 0;
  std::size_t phase_done_ = 0;
  bool phase_entered_ = false;
  std::vector<double> phase_mean_service_;
  std::vector<double> phase_interarrival_;
  std::vector<std::uint64_t> cipher_weight_total_;
  std::vector<std::uint64_t> size_weight_total_;
  std::vector<std::vector<std::uint32_t>> cipher_weights_;
  std::vector<std::vector<std::uint32_t>> size_weights_;

  // Closed loop: min-heap of (ready time, user), deterministic tie-break
  // on user index.
  using Pending = std::pair<double, unsigned>;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      ready_;
};

}  // namespace wsp::server
