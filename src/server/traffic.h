// Deterministic, seeded traffic generation for the secure-session engine.
//
// Two arrival models, both driven entirely by one seeded Rng and the
// engine's *virtual* clock (platform cycles), so the offered stream — ids,
// arrival times, cipher/size mix, per-session seeds — is bit-identical for
// a fixed scenario regardless of worker-thread count or host speed:
//
//   * open loop:   sessions arrive with exponential inter-arrival times at
//     `offered_load` times the modeled aggregate service capacity;
//     arrivals never wait for completions (the overload knob: load > 1
//     must produce drops);
//   * closed loop: a fixed population of `users`, each issuing its next
//     session when the previous one completes (plus exponential think
//     time) — the classic benchmark-client shape.
//
// Each arrival draws its cipher and transaction size uniformly from the
// scenario's grid — by default the Fig. 8 measurement grid (1KB..32KB)
// crossed with the three record ciphers.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "ssl/ssl.h"
#include "support/random.h"

namespace wsp::server {

enum class ArrivalModel { kOpenLoop, kClosedLoop };

struct TrafficScenario {
  std::uint64_t seed = 1;
  std::size_t sessions = 64;  ///< total arrivals to offer
  ArrivalModel model = ArrivalModel::kOpenLoop;

  // Open loop: offered load as a fraction of modeled service capacity
  // (shards x 1 session-cycle per cycle).  > 1.0 over-admits.
  double offered_load = 0.6;

  // Closed loop: concurrent user population and mean think time.
  unsigned users = 8;
  double think_cycles = 0.0;

  // Session mix (uniform draw per arrival).
  std::vector<ssl::Cipher> ciphers = {ssl::Cipher::kTripleDesCbc,
                                      ssl::Cipher::kAes128Cbc,
                                      ssl::Cipher::kRc4};
  std::vector<std::size_t> transaction_sizes = {1024, 2048, 4096,
                                                8192, 16384, 32768};
  std::size_t record_bytes = 1024;

  /// Sessions reconnect with cached credentials: the engine runs the
  /// abbreviated resumption handshake (Session::resume — no RSA) and
  /// prices sessions with ssl::resumed_transaction_cost.  This is the
  /// million-session regime, where key exchange is amortized across
  /// reconnects and record-layer throughput dominates.
  bool resume_sessions = false;
};

struct SessionArrival {
  std::uint64_t id = 0;
  double at_cycles = 0.0;  ///< virtual arrival time
  unsigned user = 0;       ///< closed loop: issuing user
  ssl::Cipher cipher = ssl::Cipher::kRc4;
  std::size_t transaction_bytes = 0;
  std::uint64_t session_seed = 0;
};

class TrafficGenerator {
 public:
  /// `mean_service_cycles` is the scenario-mix average session cost under
  /// the engine's pricing model; `service_units` the number of shards.
  /// Together they convert `offered_load` into an arrival rate.
  TrafficGenerator(const TrafficScenario& scenario, double mean_service_cycles,
                   unsigned service_units);

  /// Next arrival in virtual-time order; nullopt once `sessions` arrivals
  /// have been offered (or, closed loop, no user has a pending arrival —
  /// report outcomes to keep the loop running).
  std::optional<SessionArrival> next();

  /// Closed-loop feedback: schedules the issuing user's next arrival at
  /// the session's virtual completion (or, for drops, at the arrival time
  /// itself) plus think time.  No-op for open loop.
  void on_outcome(const SessionArrival& arrival, double completion_cycles,
                  bool dropped);

  double interarrival_mean_cycles() const { return interarrival_mean_; }

 private:
  double exp_draw(double mean);

  TrafficScenario scenario_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
  double interarrival_mean_ = 0.0;
  double open_clock_ = 0.0;

  // Closed loop: min-heap of (ready time, user), deterministic tie-break
  // on user index.
  using Pending = std::pair<double, unsigned>;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      ready_;
};

}  // namespace wsp::server
