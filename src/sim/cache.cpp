#include "sim/cache.h"

#include <stdexcept>

namespace wsp::sim {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (!is_pow2(config_.line_bytes) || config_.ways == 0 ||
      config_.size_bytes % (config_.line_bytes * config_.ways) != 0) {
    throw std::invalid_argument("Cache: bad geometry");
  }
  num_sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
  if (!is_pow2(num_sets_)) throw std::invalid_argument("Cache: sets not power of 2");
  lines_.assign(num_sets_ * config_.ways, Line{});
}

void Cache::reset() {
  lines_.assign(lines_.size(), Line{});
  stamp_ = hits_ = misses_ = 0;
}

std::uint32_t Cache::access(std::uint32_t addr) {
  const std::uint32_t line_addr = addr / static_cast<std::uint32_t>(config_.line_bytes);
  const std::size_t set = line_addr & (num_sets_ - 1);
  const std::uint32_t tag = line_addr / static_cast<std::uint32_t>(num_sets_);
  Line* base = &lines_[set * config_.ways];
  ++stamp_;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = stamp_;
      ++hits_;
      return 0;
    }
  }
  // Miss: fill an invalid way if present, else evict the LRU way.
  Line* victim = nullptr;
  for (std::size_t w = 0; w < config_.ways && !victim; ++w) {
    if (!base[w].valid) victim = &base[w];
  }
  if (!victim) {
    victim = base;
    for (std::size_t w = 1; w < config_.ways; ++w) {
      if (base[w].lru < victim->lru) victim = &base[w];
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  ++misses_;
  return config_.miss_penalty;
}

}  // namespace wsp::sim
