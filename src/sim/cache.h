// Set-associative cache timing model (tags only — data lives in Memory).
//
// The Xtensa's cache and memory-interface configuration is one of the base
// processor options the paper mentions; this model provides the same knob.
// A cache object only accounts cycles; functional correctness never depends
// on it.
#pragma once

#include <cstdint>
#include <vector>

namespace wsp::sim {

struct CacheConfig {
  std::size_t size_bytes = 16 * 1024;
  std::size_t line_bytes = 16;
  std::size_t ways = 2;
  std::uint32_t miss_penalty = 20;  ///< extra cycles on a miss
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Records an access; returns the extra cycles it costs (0 on hit).
  std::uint32_t access(std::uint32_t addr);

  void reset();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    std::uint32_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  ///< last-access stamp
  };

  CacheConfig config_;
  std::size_t num_sets_;
  std::vector<Line> lines_;  // sets x ways
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace wsp::sim
