#include "sim/cpu.h"

#include <stdexcept>

#include "support/trace.h"

namespace wsp::sim {

using isa::Instr;
using isa::Op;

Cpu::Cpu(const xasm::Program& program, CpuConfig config, const CustomSet* customs)
    : program_(program), config_(config), customs_(customs), mem_(config.mem_bytes) {
  if (config_.model_caches) {
    icache_.emplace(config_.icache);
    dcache_.emplace(config_.dcache);
  }
  // Load the data segment.
  if (!program_.data.empty()) {
    mem_.write_block(xasm::kDataBase, program_.data.data(), program_.data.size());
  }
  // Stack grows down from the top of memory.
  regs_[isa::kSp] = static_cast<std::uint32_t>(mem_.size() - 16);
  std::map<std::uint32_t, std::string> table;
  for (const auto& [name, entry] : program_.functions) table[entry] = name;
  profiler_.set_function_table(std::move(table));
}

void Cpu::reset_stats() {
  cycles_ = 0;
  instret_ = 0;
  pending_load_reg_ = 0;
  profiler_.reset();
  if (icache_) icache_->reset();
  if (dcache_) dcache_->reset();
}

std::uint32_t Cpu::dcache_access(std::uint32_t addr) {
  return dcache_ ? dcache_->access(addr) : 0;
}

std::uint32_t Cpu::custom_load32(std::uint32_t addr) {
  cycles_ += dcache_access(addr);
  return mem_.load32(addr);
}

void Cpu::custom_store32(std::uint32_t addr, std::uint32_t v) {
  cycles_ += dcache_access(addr);
  mem_.store32(addr, v);
}

void Cpu::call(std::uint32_t entry) {
  if (entry >= program_.code.size()) {
    throw std::out_of_range("Cpu::call: entry out of range");
  }
  regs_[isa::kRa] = xasm::kStopPc;
  pc_ = entry;
  halted_ = false;
  profiler_.on_call(entry, cycles_);
  run();
}

void Cpu::call(const std::string& function) { call(program_.entry(function)); }

void Cpu::run() {
  const std::vector<Instr>& code = program_.code;
  while (pc_ != xasm::kStopPc && !halted_) {
    if (pc_ >= code.size()) {
      throw std::runtime_error("Cpu: pc out of range: " + std::to_string(pc_));
    }
    const Instr& instr = code[pc_];
    // Base issue cycle + I-cache.
    cycles_ += 1;
    if (icache_) cycles_ += icache_->access(pc_ * 4);
    // Load-use interlock.
    if (pending_load_reg_ != 0) {
      const std::uint8_t lr = pending_load_reg_;
      pending_load_reg_ = 0;
      if ((isa::reads_rs1(instr.op) && instr.rs1 == lr) ||
          (isa::reads_rs2(instr.op) && instr.rs2 == lr)) {
        cycles_ += config_.load_use_stall;
      }
    }
    exec(instr);
    ++instret_;
    // Periodic retire/cache counter samples on the simulated timeline.
    // The power-of-two modulus check keeps the idle cost of this hook to
    // one AND+branch per instruction when no trace session is active.
    if ((instret_ & (kTraceSampleInterval - 1)) == 0 && trace::enabled()) {
      trace::emit_sim(trace::Phase::kCounter, "iss", "instret", cycles_, 0,
                      static_cast<double>(instret_));
      if (icache_) {
        trace::emit_sim(trace::Phase::kCounter, "iss", "icache_misses", cycles_,
                        0, static_cast<double>(icache_->misses()));
      }
      if (dcache_) {
        trace::emit_sim(trace::Phase::kCounter, "iss", "dcache_misses", cycles_,
                        0, static_cast<double>(dcache_->misses()));
      }
    }
    if (cycles_ > config_.max_cycles) {
      throw std::runtime_error("Cpu: cycle limit exceeded");
    }
  }
  if (halted_) profiler_.unwind_all(cycles_);
}

void Cpu::exec(const Instr& instr) {
  const std::uint32_t a = regs_[instr.rs1];
  const std::uint32_t b = regs_[instr.rs2];
  const std::int32_t imm = instr.imm;
  std::uint32_t next_pc = pc_ + 1;
  bool taken = false;

  switch (instr.op) {
    case Op::kNop:
      break;
    case Op::kAdd: set_reg(instr.rd, a + b); break;
    case Op::kSub: set_reg(instr.rd, a - b); break;
    case Op::kAnd: set_reg(instr.rd, a & b); break;
    case Op::kOr: set_reg(instr.rd, a | b); break;
    case Op::kXor: set_reg(instr.rd, a ^ b); break;
    case Op::kSll: set_reg(instr.rd, a << (b & 31)); break;
    case Op::kSrl: set_reg(instr.rd, a >> (b & 31)); break;
    case Op::kSra:
      set_reg(instr.rd,
              static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                         static_cast<std::int32_t>(b & 31)));
      break;
    case Op::kSlt:
      set_reg(instr.rd, static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b));
      break;
    case Op::kSltu: set_reg(instr.rd, a < b); break;
    case Op::kMul:
      set_reg(instr.rd, a * b);
      cycles_ += config_.mul_latency - 1;
      break;
    case Op::kMulhu:
      set_reg(instr.rd, static_cast<std::uint32_t>(
                            (static_cast<std::uint64_t>(a) * b) >> 32));
      cycles_ += config_.mul_latency - 1;
      break;
    case Op::kAddi: set_reg(instr.rd, a + static_cast<std::uint32_t>(imm)); break;
    case Op::kAndi: set_reg(instr.rd, a & static_cast<std::uint32_t>(imm)); break;
    case Op::kOri: set_reg(instr.rd, a | static_cast<std::uint32_t>(imm)); break;
    case Op::kXori: set_reg(instr.rd, a ^ static_cast<std::uint32_t>(imm)); break;
    case Op::kSlli: set_reg(instr.rd, a << (imm & 31)); break;
    case Op::kSrli: set_reg(instr.rd, a >> (imm & 31)); break;
    case Op::kSrai:
      set_reg(instr.rd,
              static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (imm & 31)));
      break;
    case Op::kSlti:
      set_reg(instr.rd, static_cast<std::int32_t>(a) < imm);
      break;
    case Op::kSltiu:
      set_reg(instr.rd, a < static_cast<std::uint32_t>(imm));
      break;
    case Op::kLui:
      set_reg(instr.rd, static_cast<std::uint32_t>(imm) << 12);
      break;
    case Op::kLw: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      cycles_ += dcache_access(addr);
      set_reg(instr.rd, mem_.load32(addr));
      pending_load_reg_ = instr.rd;
      break;
    }
    case Op::kLhu: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      cycles_ += dcache_access(addr);
      set_reg(instr.rd, mem_.load16(addr));
      pending_load_reg_ = instr.rd;
      break;
    }
    case Op::kLbu: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      cycles_ += dcache_access(addr);
      set_reg(instr.rd, mem_.load8(addr));
      pending_load_reg_ = instr.rd;
      break;
    }
    case Op::kSw: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      cycles_ += dcache_access(addr);
      mem_.store32(addr, b);
      break;
    }
    case Op::kSh: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      cycles_ += dcache_access(addr);
      mem_.store16(addr, static_cast<std::uint16_t>(b));
      break;
    }
    case Op::kSb: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(imm);
      cycles_ += dcache_access(addr);
      mem_.store8(addr, static_cast<std::uint8_t>(b));
      break;
    }
    case Op::kBeq: taken = a == b; break;
    case Op::kBne: taken = a != b; break;
    case Op::kBlt: taken = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b); break;
    case Op::kBge: taken = static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b); break;
    case Op::kBltu: taken = a < b; break;
    case Op::kBgeu: taken = a >= b; break;
    case Op::kJ: taken = true; break;
    case Op::kCall:
      regs_[isa::kRa] = pc_ + 1;
      profiler_.on_call(static_cast<std::uint32_t>(imm), cycles_);
      taken = true;
      break;
    case Op::kJalr:
      set_reg(instr.rd, pc_ + 1);
      next_pc = a;
      cycles_ += config_.branch_taken_penalty;
      break;
    case Op::kRet:
      profiler_.on_ret(cycles_);
      next_pc = regs_[isa::kRa];
      cycles_ += config_.branch_taken_penalty;
      break;
    case Op::kHalt:
      halted_ = true;
      break;
    case Op::kCustom: {
      if (!customs_) throw std::runtime_error("Cpu: custom instr with no CustomSet");
      const CustomInstr* ci = customs_->find(instr.cust_id);
      if (!ci) {
        throw std::runtime_error("Cpu: unknown custom instruction id " +
                                 std::to_string(instr.cust_id));
      }
      cycles_ += ci->latency - 1;
      ci->execute(*this, instr);
      break;
    }
  }

  if (taken) {
    next_pc = static_cast<std::uint32_t>(imm);
    cycles_ += config_.branch_taken_penalty;
  }
  pc_ = next_pc;
}

}  // namespace wsp::sim
