// Cycle-accurate XR32 instruction-set simulator.
//
// Single-issue in-order pipeline timing model:
//   * 1 base cycle per instruction;
//   * a 1-cycle load-use stall when a load result is consumed by the very
//     next instruction;
//   * a configurable taken-branch penalty (pipeline refill);
//   * a configurable multiplier latency (hardware-multiplier option);
//   * optional I/D cache models that add miss penalties;
//   * custom (TIE-analogue) instructions occupy the pipeline for the
//     latency declared in their descriptor.
//
// The profiler observes CALL/RET to build the weighted call graph used by
// performance characterization and global custom-instruction selection.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "sim/cache.h"
#include "sim/custom.h"
#include "sim/memory.h"
#include "sim/profiler.h"
#include "xasm/program.h"

namespace wsp::sim {

struct CpuConfig {
  std::size_t mem_bytes = 8u << 20;
  bool model_caches = false;  ///< perfect caches when false (deterministic)
  CacheConfig icache{16 * 1024, 16, 2, 20};
  CacheConfig dcache{16 * 1024, 16, 2, 20};
  std::uint32_t mul_latency = 2;
  std::uint32_t branch_taken_penalty = 2;
  std::uint32_t load_use_stall = 1;
  std::uint64_t max_cycles = 50ull * 1000 * 1000 * 1000;
};

/// Instruction-retire interval (power of two) between trace counter samples
/// while a trace session is active (see support/trace.h).
inline constexpr std::uint64_t kTraceSampleInterval = 8192;

/// Number of 32-bit words in each user (TIE-state) register.
inline constexpr std::size_t kUrWords = 16;
/// Number of user registers.
inline constexpr std::size_t kUrCount = 8;

class Cpu {
 public:
  Cpu(const xasm::Program& program, CpuConfig config = {},
      const CustomSet* customs = nullptr);

  // --- architectural state -------------------------------------------------
  std::uint32_t reg(unsigned i) const { return regs_[i]; }
  void set_reg(unsigned i, std::uint32_t v) {
    if (i != 0) regs_[i] = v;
  }
  Memory& mem() { return mem_; }
  const Memory& mem() const { return mem_; }

  /// User-register (TIE-state) file for custom instructions.  Accesses are
  /// range-checked: a malformed custom-instruction descriptor (e.g. a
  /// register field used as a UR index) must fault, not corrupt the Cpu.
  std::uint32_t ur(unsigned r, unsigned w) const {
    check_ur(r, w);
    return ur_[r][w];
  }
  void set_ur(unsigned r, unsigned w, std::uint32_t v) {
    check_ur(r, w);
    ur_[r][w] = v;
  }

  /// Memory access helpers for custom instructions; participate in the
  /// D-cache model like ordinary loads/stores.
  std::uint32_t custom_load32(std::uint32_t addr);
  void custom_store32(std::uint32_t addr, std::uint32_t v);

  /// Lets a custom instruction charge data-dependent extra cycles (e.g. a
  /// wide UR transfer moving 2 words per cycle over the 64-bit bus).
  void add_cycles(std::uint64_t n) { cycles_ += n; }

  // --- execution -------------------------------------------------------------
  /// Calls a function: sets ra to the stop sentinel, jumps to `entry`, and
  /// runs until the matching return (or HALT).  Arguments must already be
  /// in a0..a7 / memory.  Nestable from the host side only.
  void call(std::uint32_t entry);
  void call(const std::string& function);

  /// Resets cycle/instruction counters, profiler and cache statistics
  /// (architectural state is preserved).
  void reset_stats();

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t instret() const { return instret_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  const Cache* icache() const { return icache_ ? &*icache_ : nullptr; }
  const Cache* dcache() const { return dcache_ ? &*dcache_ : nullptr; }
  const CpuConfig& config() const { return config_; }

 private:
  static void check_ur(unsigned r, unsigned w) {
    if (r >= kUrCount || w >= kUrWords) {
      throw std::out_of_range("Cpu: user-register access (" +
                              std::to_string(r) + ", " + std::to_string(w) +
                              ") out of range");
    }
  }

  void run();
  void exec(const isa::Instr& instr);
  std::uint32_t dcache_access(std::uint32_t addr);

  const xasm::Program& program_;
  CpuConfig config_;
  const CustomSet* customs_;

  Memory mem_;
  std::array<std::uint32_t, 32> regs_{};
  std::array<std::array<std::uint32_t, kUrWords>, kUrCount> ur_{};
  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t instret_ = 0;
  std::uint8_t pending_load_reg_ = 0;  ///< 0 = none (r0 can't be a target)
  bool halted_ = false;

  std::optional<Cache> icache_;
  std::optional<Cache> dcache_;
  Profiler profiler_;
};

}  // namespace wsp::sim
