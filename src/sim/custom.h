// Custom-instruction (TIE analogue) descriptors.
//
// A custom instruction is a designer-specified datapath tightly integrated
// into the pipeline: the simulator dispatches Op::kCustom by 16-bit id to a
// descriptor carrying the functional semantics, the pipeline latency the
// datapath achieves, and the silicon area it costs (from the tie area
// model).  Descriptors may use the CPU's user-register file (the analogue
// of TIE state registers) and may access memory through the CPU so that
// custom loads/stores participate in the D-cache model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "isa/isa.h"

namespace wsp::sim {

class Cpu;

struct CustomInstr {
  std::uint16_t id = 0;
  std::string name;
  std::uint32_t latency = 1;  ///< pipeline occupancy in cycles
  double area = 0.0;          ///< gate-area estimate (tie area model units)
  std::function<void(Cpu&, const isa::Instr&)> execute;
};

/// An installed set of custom instructions (one hardware configuration).
class CustomSet {
 public:
  void add(CustomInstr instr);
  const CustomInstr* find(std::uint16_t id) const;
  double total_area() const;
  std::size_t size() const { return by_id_.size(); }

 private:
  std::map<std::uint16_t, CustomInstr> by_id_;
};

inline void CustomSet::add(CustomInstr instr) {
  by_id_[instr.id] = std::move(instr);
}

inline const CustomInstr* CustomSet::find(std::uint16_t id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

inline double CustomSet::total_area() const {
  double a = 0.0;
  for (const auto& [id, ci] : by_id_) a += ci.area;
  return a;
}

}  // namespace wsp::sim
