#include "sim/memory.h"

#include <stdexcept>
#include <string>

namespace wsp::sim {

Memory::Memory(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

void Memory::check(std::uint32_t addr, std::size_t n) const {
  if (static_cast<std::size_t>(addr) + n > bytes_.size()) {
    throw std::out_of_range("Memory: access at 0x" + std::to_string(addr) +
                            " size " + std::to_string(n) + " out of bounds");
  }
}

std::uint8_t Memory::load8(std::uint32_t addr) const {
  check(addr, 1);
  return bytes_[addr];
}

std::uint16_t Memory::load16(std::uint32_t addr) const {
  check(addr, 2);
  return static_cast<std::uint16_t>(bytes_[addr] | (bytes_[addr + 1] << 8));
}

std::uint32_t Memory::load32(std::uint32_t addr) const {
  check(addr, 4);
  return static_cast<std::uint32_t>(bytes_[addr]) |
         (static_cast<std::uint32_t>(bytes_[addr + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes_[addr + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes_[addr + 3]) << 24);
}

void Memory::store8(std::uint32_t addr, std::uint8_t v) {
  check(addr, 1);
  bytes_[addr] = v;
}

void Memory::store16(std::uint32_t addr, std::uint16_t v) {
  check(addr, 2);
  bytes_[addr] = static_cast<std::uint8_t>(v);
  bytes_[addr + 1] = static_cast<std::uint8_t>(v >> 8);
}

void Memory::store32(std::uint32_t addr, std::uint32_t v) {
  check(addr, 4);
  bytes_[addr] = static_cast<std::uint8_t>(v);
  bytes_[addr + 1] = static_cast<std::uint8_t>(v >> 8);
  bytes_[addr + 2] = static_cast<std::uint8_t>(v >> 16);
  bytes_[addr + 3] = static_cast<std::uint8_t>(v >> 24);
}

void Memory::write_block(std::uint32_t addr, const std::uint8_t* src, std::size_t n) {
  check(addr, n);
  for (std::size_t i = 0; i < n; ++i) bytes_[addr + i] = src[i];
}

void Memory::read_block(std::uint32_t addr, std::uint8_t* dst, std::size_t n) const {
  check(addr, n);
  for (std::size_t i = 0; i < n; ++i) dst[i] = bytes_[addr + i];
}

}  // namespace wsp::sim
