// Flat little-endian memory for the XR32 simulator.
#pragma once

#include <cstdint>
#include <vector>

namespace wsp::sim {

class Memory {
 public:
  explicit Memory(std::size_t size_bytes = 8u << 20);

  std::size_t size() const { return bytes_.size(); }

  std::uint8_t load8(std::uint32_t addr) const;
  std::uint16_t load16(std::uint32_t addr) const;
  std::uint32_t load32(std::uint32_t addr) const;
  void store8(std::uint32_t addr, std::uint8_t v);
  void store16(std::uint32_t addr, std::uint16_t v);
  void store32(std::uint32_t addr, std::uint32_t v);

  /// Bulk host access for marshalling kernel arguments and results.
  void write_block(std::uint32_t addr, const std::uint8_t* src, std::size_t n);
  void read_block(std::uint32_t addr, std::uint8_t* dst, std::size_t n) const;

 private:
  void check(std::uint32_t addr, std::size_t n) const;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace wsp::sim
