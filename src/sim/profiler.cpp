#include "sim/profiler.h"

#include <sstream>

#include "support/trace.h"

namespace wsp::sim {

void Profiler::set_function_table(std::map<std::uint32_t, std::string> entry_names) {
  entry_names_ = std::move(entry_names);
}

void Profiler::reset() {
  stack_.clear();
  funcs_.clear();
  edges_.clear();
}

void Profiler::on_call(std::uint32_t entry, std::uint64_t now_cycles) {
  std::string name;
  const auto it = entry_names_.find(entry);
  if (it != entry_names_.end()) {
    name = it->second;
  } else {
    name = "pc@" + std::to_string(entry);
  }
  const std::string caller = stack_.empty() ? "<host>" : stack_.back().name;
  ++edges_[{caller, name}];
  ++funcs_[name].calls;
  if (trace::enabled()) {
    trace::emit_sim(trace::Phase::kBegin, "iss.func", name, now_cycles);
  }
  stack_.push_back(Frame{std::move(name), now_cycles, 0});
}

void Profiler::on_ret(std::uint64_t now_cycles) {
  if (stack_.empty()) return;  // host-level return sentinel
  const Frame frame = stack_.back();
  stack_.pop_back();
  if (trace::enabled()) {
    trace::emit_sim(trace::Phase::kEnd, "iss.func", frame.name, now_cycles);
  }
  const std::uint64_t total = now_cycles - frame.entry_cycles;
  FuncStats& fs = funcs_[frame.name];
  fs.total_cycles += total;
  fs.self_cycles += total - frame.child_cycles;
  if (!stack_.empty()) stack_.back().child_cycles += total;
}

void Profiler::unwind_all(std::uint64_t now_cycles) {
  while (!stack_.empty()) on_ret(now_cycles);
}

std::string Profiler::format_call_graph() const {
  std::ostringstream os;
  for (const auto& [edge, count] : edges_) {
    os << edge.first << " -> " << edge.second << " x" << count << "\n";
  }
  return os.str();
}

}  // namespace wsp::sim
