// Function-level profiler: call counts, self/total cycles, and the weighted
// call graph the global custom-instruction selection phase consumes
// (paper Fig. 4 / Sec. 3.4).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wsp::sim {

struct FuncStats {
  std::uint64_t calls = 0;
  std::uint64_t total_cycles = 0;  ///< including callees
  std::uint64_t self_cycles = 0;   ///< excluding callees
};

class Profiler {
 public:
  /// `entry_names` maps function entry instruction index -> name.
  void set_function_table(std::map<std::uint32_t, std::string> entry_names);

  void reset();
  void on_call(std::uint32_t entry, std::uint64_t now_cycles);
  void on_ret(std::uint64_t now_cycles);
  /// Flushes any frames still open (e.g. after HALT) at `now_cycles`.
  void unwind_all(std::uint64_t now_cycles);

  const std::map<std::string, FuncStats>& functions() const { return funcs_; }
  /// Call-graph edges: (caller, callee) -> call count.  The host-initiated
  /// call appears with caller "<host>".
  const std::map<std::pair<std::string, std::string>, std::uint64_t>& edges() const {
    return edges_;
  }

  /// Formats the weighted call graph, one "caller -> callee xN" line each.
  std::string format_call_graph() const;

 private:
  struct Frame {
    std::string name;
    std::uint64_t entry_cycles = 0;
    std::uint64_t child_cycles = 0;
  };

  std::map<std::uint32_t, std::string> entry_names_;
  std::vector<Frame> stack_;
  std::map<std::string, FuncStats> funcs_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> edges_;
};

}  // namespace wsp::sim
