#include "ssl/esp.h"

#include <stdexcept>

#include "crypto/ct.h"
#include "crypto/des.h"
#include "crypto/hmac.h"

namespace wsp::esp {

namespace {

constexpr std::size_t kIcvLen = 12;  // HMAC-SHA1-96

std::uint64_t key_part(const std::vector<std::uint8_t>& key, std::size_t idx) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | key[8 * idx + i];
  return v;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

std::vector<std::uint8_t> seal(Sa& sa, const std::vector<std::uint8_t>& payload,
                               Rng& rng) {
  if (sa.enc_key.size() != 24) throw std::invalid_argument("esp: need a 24-byte 3DES key");
  const auto ks = des::triple_key_schedule(key_part(sa.enc_key, 0),
                                           key_part(sa.enc_key, 1),
                                           key_part(sa.enc_key, 2));
  // Pad to the 8-byte block with a pad-length trailer byte.
  std::vector<std::uint8_t> plain = payload;
  const std::uint8_t pad =
      static_cast<std::uint8_t>(8 - ((plain.size() + 1) % 8)) % 8;
  plain.insert(plain.end(), pad, 0);
  plain.push_back(pad);

  const std::uint64_t iv = rng.next_u64();
  std::vector<std::uint8_t> ct(plain.size());
  std::uint64_t chain = iv;
  for (std::size_t i = 0; i < plain.size(); i += 8) {
    chain = des::encrypt_block_3des(des::load_be64(plain.data() + i) ^ chain, ks);
    des::store_be64(chain, ct.data() + i);
  }

  std::vector<std::uint8_t> packet;
  put_u32(packet, sa.spi);
  put_u32(packet, ++sa.seq);
  packet.resize(packet.size() + 8);
  des::store_be64(iv, packet.data() + 8);
  packet.insert(packet.end(), ct.begin(), ct.end());

  const auto mac = hmac_sha1(sa.auth_key, packet);
  packet.insert(packet.end(), mac.begin(), mac.begin() + kIcvLen);
  return packet;
}

std::vector<std::uint8_t> open(const Sa& sa,
                               const std::vector<std::uint8_t>& packet,
                               std::uint32_t* seq_out) {
  if (packet.size() < 16 + 8 + kIcvLen || (packet.size() - 16 - kIcvLen) % 8 != 0) {
    throw std::runtime_error("esp: malformed packet");
  }
  const std::vector<std::uint8_t> body(packet.begin(),
                                       packet.end() - static_cast<std::ptrdiff_t>(kIcvLen));
  const std::vector<std::uint8_t> icv(packet.end() - static_cast<std::ptrdiff_t>(kIcvLen),
                                      packet.end());
  const auto mac = hmac_sha1(sa.auth_key, body);
  if (!ct::equal(icv.data(), mac.data(), kIcvLen)) {
    throw std::runtime_error("esp: authentication failed");
  }
  if (get_u32(packet.data()) != sa.spi) throw std::runtime_error("esp: wrong SPI");
  if (seq_out) *seq_out = get_u32(packet.data() + 4);

  const auto ks = des::triple_key_schedule(key_part(sa.enc_key, 0),
                                           key_part(sa.enc_key, 1),
                                           key_part(sa.enc_key, 2));
  const std::uint64_t iv = des::load_be64(packet.data() + 8);
  const std::size_t ct_len = body.size() - 16;
  std::vector<std::uint8_t> plain(ct_len);
  std::uint64_t chain = iv;
  for (std::size_t i = 0; i < ct_len; ++i) {
    if (i % 8 == 0) {
      const std::uint64_t c = des::load_be64(body.data() + 16 + i);
      des::store_be64(des::decrypt_block_3des(c, ks) ^ chain, plain.data() + i);
      chain = c;
    }
  }
  if (plain.empty()) throw std::runtime_error("esp: empty payload");
  const std::uint8_t pad = plain.back();
  if (pad + 1u > plain.size()) throw std::runtime_error("esp: bad padding");
  plain.resize(plain.size() - 1 - pad);
  return plain;
}

}  // namespace wsp::esp
