// IPsec ESP-style packet protection (network layer) — the third protocol
// layer of the paper's WEP / IPsec / SSL trio.
//
// Modeled on RFC 2406: an SPI + sequence-number header, 3DES-CBC payload
// encryption with per-packet IV, and a truncated HMAC-SHA1-96
// authenticator over header-and-ciphertext.  Framing is simplified (no
// next-header byte chaining beyond the pad-length trailer).
#pragma once

#include <cstdint>
#include <vector>

#include "support/random.h"

namespace wsp::esp {

struct Sa {  ///< security association (one direction)
  std::uint32_t spi = 0;
  std::vector<std::uint8_t> enc_key;   ///< 24 bytes (3DES EDE)
  std::vector<std::uint8_t> auth_key;  ///< HMAC-SHA1 key
  std::uint32_t seq = 0;               ///< outbound sequence counter
};

/// Builds a protected packet: spi || seq || iv || ciphertext || icv(12).
std::vector<std::uint8_t> seal(Sa& sa, const std::vector<std::uint8_t>& payload,
                               Rng& rng);

/// Verifies and decrypts; throws std::runtime_error on authentication or
/// format failure.  Returns the payload and reports the sequence number.
std::vector<std::uint8_t> open(const Sa& sa,
                               const std::vector<std::uint8_t>& packet,
                               std::uint32_t* seq_out = nullptr);

}  // namespace wsp::esp
