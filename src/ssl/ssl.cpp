#include "ssl/ssl.h"

#include <stdexcept>

#include "support/trace.h"

#include "crypto/aes.h"
#include "crypto/batch.h"
#include "crypto/ct.h"
#include "crypto/des.h"
#include "crypto/hmac.h"
#include "crypto/md5.h"
#include "crypto/rc4.h"
#include "crypto/sha1.h"

namespace wsp::ssl {

const char* to_string(Cipher cipher) {
  switch (cipher) {
    case Cipher::kTripleDesCbc: return "3DES-CBC";
    case Cipher::kAes128Cbc: return "AES-128-CBC";
    case Cipher::kRc4: return "RC4";
  }
  return "?";
}

namespace {

std::uint64_t load64(const std::vector<std::uint8_t>& v) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < 8 && i < v.size(); ++i) out = (out << 8) | v[i];
  return out;
}

std::vector<std::uint8_t> cbc_pad(std::vector<std::uint8_t> data, std::size_t block) {
  const std::size_t pad = block - (data.size() % block);
  data.insert(data.end(), pad, static_cast<std::uint8_t>(pad));
  return data;
}

std::vector<std::uint8_t> cbc_unpad(std::vector<std::uint8_t> data) {
  if (data.empty()) throw std::runtime_error("ssl: empty CBC plaintext");
  const std::uint8_t pad = data.back();
  if (pad == 0 || pad > data.size()) throw std::runtime_error("ssl: bad padding");
  for (std::size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) throw std::runtime_error("ssl: bad padding");
  }
  data.resize(data.size() - pad);
  return data;
}

}  // namespace

struct SecureChannel::Impl {
  Cipher cipher;
  std::vector<std::uint8_t> cipher_key;
  std::vector<std::uint8_t> mac_key;
  // The same channel object is shared by the sealing and the opening
  // endpoint (in-process transport), so each side keeps its own sequence
  // number and cipher chaining state.
  std::vector<std::uint8_t> iv_enc, iv_dec;
  std::uint64_t seq_out = 0, seq_in = 0;
  std::unique_ptr<Rc4> rc4_enc, rc4_dec;  // stream state persists across records

  // Cached key schedules for the batched two-phase path only: the scalar
  // seal()/open() path below keeps deriving per record, so batch_lanes == 1
  // remains byte- and work-identical to the historical data plane.
  std::unique_ptr<aes::KeySchedule> aes_ks_cache;
  std::unique_ptr<des::TripleKeySchedule> des3_ks_cache;

  const aes::KeySchedule& cached_aes_ks() {
    if (!aes_ks_cache) {
      aes_ks_cache = std::make_unique<aes::KeySchedule>(aes::key_schedule(cipher_key));
    }
    return *aes_ks_cache;
  }

  const des::TripleKeySchedule& cached_des3_ks() {
    if (!des3_ks_cache) {
      des3_ks_cache = std::make_unique<des::TripleKeySchedule>(des::triple_key_schedule(
          load64({cipher_key.begin(), cipher_key.begin() + 8}),
          load64({cipher_key.begin() + 8, cipher_key.begin() + 16}),
          load64({cipher_key.begin() + 16, cipher_key.begin() + 24})));
    }
    return *des3_ks_cache;
  }

  std::vector<std::uint8_t> mac_input(std::uint64_t sequence,
                                      const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> in;
    for (int i = 7; i >= 0; --i) in.push_back(static_cast<std::uint8_t>(sequence >> (8 * i)));
    in.push_back(0x17);  // application-data type
    in.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
    in.push_back(static_cast<std::uint8_t>(payload.size()));
    in.insert(in.end(), payload.begin(), payload.end());
    return in;
  }

  std::vector<std::uint8_t> encrypt(const std::vector<std::uint8_t>& plain) {
    switch (cipher) {
      case Cipher::kTripleDesCbc: {
        // EDE with the key split in three 8-byte parts.
        const auto ks = des::triple_key_schedule(load64({cipher_key.begin(), cipher_key.begin() + 8}),
                                                 load64({cipher_key.begin() + 8, cipher_key.begin() + 16}),
                                                 load64({cipher_key.begin() + 16, cipher_key.begin() + 24}));
        auto padded = cbc_pad(plain, 8);
        std::vector<std::uint8_t> out(padded.size());
        std::uint64_t chain = load64(iv_enc);
        for (std::size_t i = 0; i < padded.size(); i += 8) {
          chain = des::encrypt_block_3des(des::load_be64(padded.data() + i) ^ chain, ks);
          des::store_be64(chain, out.data() + i);
        }
        iv_enc.assign(8, 0);
        des::store_be64(chain, iv_enc.data());  // CBC residue chaining
        return out;
      }
      case Cipher::kAes128Cbc: {
        const auto ks = aes::key_schedule(cipher_key);
        std::array<std::uint8_t, 16> aiv{};
        std::copy(iv_enc.begin(), iv_enc.begin() + 16, aiv.begin());
        const auto out = aes::encrypt_cbc(cbc_pad(plain, 16), ks, aiv);
        iv_enc.assign(out.end() - 16, out.end());
        return out;
      }
      case Cipher::kRc4: {
        if (!rc4_enc) rc4_enc = std::make_unique<Rc4>(cipher_key);
        return rc4_enc->process(plain);
      }
    }
    throw std::logic_error("ssl: bad cipher");
  }

  std::vector<std::uint8_t> decrypt(const std::vector<std::uint8_t>& ct) {
    switch (cipher) {
      case Cipher::kTripleDesCbc: {
        if (ct.size() % 8 != 0) throw std::runtime_error("ssl: bad record length");
        const auto ks = des::triple_key_schedule(load64({cipher_key.begin(), cipher_key.begin() + 8}),
                                                 load64({cipher_key.begin() + 8, cipher_key.begin() + 16}),
                                                 load64({cipher_key.begin() + 16, cipher_key.begin() + 24}));
        std::vector<std::uint8_t> out(ct.size());
        std::uint64_t chain = load64(iv_dec);
        for (std::size_t i = 0; i < ct.size(); i += 8) {
          const std::uint64_t c = des::load_be64(ct.data() + i);
          des::store_be64(des::decrypt_block_3des(c, ks) ^ chain, out.data() + i);
          chain = c;
        }
        iv_dec.assign(8, 0);
        des::store_be64(chain, iv_dec.data());
        return cbc_unpad(std::move(out));
      }
      case Cipher::kAes128Cbc: {
        if (ct.size() % 16 != 0) throw std::runtime_error("ssl: bad record length");
        // An empty record would otherwise reach the residue update below
        // with ct.end() - 16 out of range; reject it with the same error
        // cbc_unpad raises for a decrypted-to-nothing record.
        if (ct.empty()) throw std::runtime_error("ssl: empty CBC plaintext");
        const auto ks = aes::key_schedule(cipher_key);
        std::array<std::uint8_t, 16> aiv{};
        std::copy(iv_dec.begin(), iv_dec.begin() + 16, aiv.begin());
        auto out = aes::decrypt_cbc(ct, ks, aiv);
        iv_dec.assign(ct.end() - 16, ct.end());
        return cbc_unpad(std::move(out));
      }
      case Cipher::kRc4: {
        if (!rc4_dec) rc4_dec = std::make_unique<Rc4>(cipher_key);
        return rc4_dec->process(ct);
      }
    }
    throw std::logic_error("ssl: bad cipher");
  }
};

SecureChannel::SecureChannel(Cipher cipher, std::vector<std::uint8_t> cipher_key,
                             std::vector<std::uint8_t> mac_key,
                             std::vector<std::uint8_t> iv)
    : impl_(std::make_shared<Impl>()) {
  impl_->cipher = cipher;
  impl_->cipher_key = std::move(cipher_key);
  impl_->mac_key = std::move(mac_key);
  impl_->iv_enc = iv;
  impl_->iv_dec = std::move(iv);
}

std::vector<std::uint8_t> SecureChannel::seal(const std::vector<std::uint8_t>& payload) {
  WSP_TRACE_SPAN("ssl.record", "seal");
  std::vector<std::uint8_t> plain = payload;
  {
    WSP_TRACE_SPAN("ssl.record", "seal/mac");
    const auto mac =
        hmac_sha1(impl_->mac_key, impl_->mac_input(impl_->seq_out, payload));
    ++impl_->seq_out;
    plain.insert(plain.end(), mac.begin(), mac.end());
  }
  WSP_TRACE_SPAN("ssl.record", "seal/encrypt");
  return impl_->encrypt(plain);
}

std::vector<std::uint8_t> SecureChannel::open(const std::vector<std::uint8_t>& record) {
  WSP_TRACE_SPAN("ssl.record", "open");
  std::vector<std::uint8_t> plain;
  {
    WSP_TRACE_SPAN("ssl.record", "open/decrypt");
    plain = impl_->decrypt(record);
  }
  if (plain.size() < Sha1::kDigestSize) throw std::runtime_error("ssl: short record");
  WSP_TRACE_SPAN("ssl.record", "open/mac");
  const std::vector<std::uint8_t> payload(plain.begin(),
                                          plain.end() - Sha1::kDigestSize);
  const std::vector<std::uint8_t> mac(plain.end() - Sha1::kDigestSize, plain.end());
  const auto expect = hmac_sha1(impl_->mac_key, impl_->mac_input(impl_->seq_in, payload));
  ++impl_->seq_in;
  if (!ct::equal(mac, expect)) throw std::runtime_error("ssl: MAC verification failed");
  return payload;
}

// ---------------------------------------------------------------------------
// Two-phase (batched) record processing.

struct SecureChannel::Pending::State {
  std::shared_ptr<Impl> impl;
  bool is_seal = false;
  bool rc4_deferred = false;  // cipher pass runs at *_complete (stream state)
  bool bad_length = false;    // open_complete throws "bad record length"
  // Kernel buffers: `in` is the padded plaintext (seal) or the raw record
  // (open); `out` receives the cipher pass.  Both must stay at a stable
  // address until the dispatcher flushes, hence the heap-allocated State.
  std::vector<std::uint8_t> in, out;
};

SecureChannel::Pending::Pending() = default;
SecureChannel::Pending::Pending(Pending&&) noexcept = default;
SecureChannel::Pending& SecureChannel::Pending::operator=(Pending&&) noexcept =
    default;
SecureChannel::Pending::~Pending() = default;

SecureChannel::Pending SecureChannel::seal_submit(
    const std::vector<std::uint8_t>& payload,
    crypto::BatchDispatcher& dispatcher) {
  WSP_TRACE_SPAN("ssl.record", "seal_submit");
  Pending p;
  p.state_ = std::make_unique<Pending::State>();
  Pending::State& st = *p.state_;
  st.impl = impl_;
  st.is_seal = true;
  // MAC and sequence consumption happen now, in scalar seal() order.
  std::vector<std::uint8_t> plain = payload;
  {
    WSP_TRACE_SPAN("ssl.record", "seal/mac");
    const auto mac =
        hmac_sha1(impl_->mac_key, impl_->mac_input(impl_->seq_out, payload));
    ++impl_->seq_out;
    plain.insert(plain.end(), mac.begin(), mac.end());
  }
  switch (impl_->cipher) {
    case Cipher::kTripleDesCbc: {
      st.in = cbc_pad(std::move(plain), 8);
      st.out.resize(st.in.size());
      crypto::BatchJob job;
      job.cipher = crypto::BatchCipher::kTripleDes;
      job.dir = crypto::BatchDir::kEncrypt;
      job.key = &impl_->cached_des3_ks();
      job.in = st.in.data();
      job.out = st.out.data();
      job.bytes = st.in.size();
      job.chain = impl_->iv_enc.data();
      dispatcher.submit(job);
      break;
    }
    case Cipher::kAes128Cbc: {
      st.in = cbc_pad(std::move(plain), 16);
      st.out.resize(st.in.size());
      crypto::BatchJob job;
      job.cipher = crypto::BatchCipher::kAes;
      job.dir = crypto::BatchDir::kEncrypt;
      job.key = &impl_->cached_aes_ks();
      job.in = st.in.data();
      job.out = st.out.data();
      job.bytes = st.in.size();
      job.chain = impl_->iv_enc.data();
      dispatcher.submit(job);
      break;
    }
    case Cipher::kRc4:
      st.rc4_deferred = true;
      st.in = std::move(plain);
      break;
  }
  return p;
}

std::vector<std::uint8_t> SecureChannel::seal_complete(Pending pending) {
  if (!pending.valid()) throw std::logic_error("ssl: seal_complete without submit");
  Pending::State& st = *pending.state_;
  if (!st.is_seal) throw std::logic_error("ssl: seal_complete on an open op");
  if (st.rc4_deferred) {
    Impl& impl = *st.impl;
    if (!impl.rc4_enc) impl.rc4_enc = std::make_unique<Rc4>(impl.cipher_key);
    return impl.rc4_enc->process(st.in);
  }
  return std::move(st.out);
}

SecureChannel::Pending SecureChannel::open_submit(
    const std::vector<std::uint8_t>& record,
    crypto::BatchDispatcher& dispatcher) {
  WSP_TRACE_SPAN("ssl.record", "open_submit");
  Pending p;
  p.state_ = std::make_unique<Pending::State>();
  Pending::State& st = *p.state_;
  st.impl = impl_;
  switch (impl_->cipher) {
    case Cipher::kTripleDesCbc:
    case Cipher::kAes128Cbc: {
      const std::size_t block = impl_->cipher == Cipher::kAes128Cbc ? 16 : 8;
      if (record.size() % block != 0) {
        // Scalar open() throws before touching iv_dec or seq_in; defer the
        // same error to open_complete with the same untouched state.
        st.bad_length = true;
        break;
      }
      if (record.empty()) break;  // cbc_unpad rejects it at complete time
      st.in = record;
      st.out.resize(record.size());
      crypto::BatchJob job;
      job.cipher = impl_->cipher == Cipher::kAes128Cbc
                       ? crypto::BatchCipher::kAes
                       : crypto::BatchCipher::kTripleDes;
      job.dir = crypto::BatchDir::kDecrypt;
      job.key = impl_->cipher == Cipher::kAes128Cbc
                    ? static_cast<const void*>(&impl_->cached_aes_ks())
                    : static_cast<const void*>(&impl_->cached_des3_ks());
      job.in = st.in.data();
      job.out = st.out.data();
      job.bytes = st.in.size();
      job.chain = impl_->iv_dec.data();
      dispatcher.submit(job);
      break;
    }
    case Cipher::kRc4:
      st.rc4_deferred = true;
      st.in = record;
      break;
  }
  return p;
}

std::vector<std::uint8_t> SecureChannel::open_complete(Pending pending) {
  if (!pending.valid()) throw std::logic_error("ssl: open_complete without submit");
  Pending::State& st = *pending.state_;
  if (st.is_seal) throw std::logic_error("ssl: open_complete on a seal op");
  Impl& impl = *st.impl;
  if (st.bad_length) throw std::runtime_error("ssl: bad record length");
  std::vector<std::uint8_t> plain;
  if (st.rc4_deferred) {
    if (!impl.rc4_dec) impl.rc4_dec = std::make_unique<Rc4>(impl.cipher_key);
    plain = impl.rc4_dec->process(st.in);
  } else {
    plain = cbc_unpad(std::move(st.out));
  }
  if (plain.size() < Sha1::kDigestSize) throw std::runtime_error("ssl: short record");
  WSP_TRACE_SPAN("ssl.record", "open/mac");
  const std::vector<std::uint8_t> payload(plain.begin(),
                                          plain.end() - Sha1::kDigestSize);
  const std::vector<std::uint8_t> mac(plain.end() - Sha1::kDigestSize, plain.end());
  const auto expect = hmac_sha1(impl.mac_key, impl.mac_input(impl.seq_in, payload));
  ++impl.seq_in;
  if (!ct::equal(mac, expect)) throw std::runtime_error("ssl: MAC verification failed");
  return payload;
}

std::vector<std::uint8_t> kdf_ssl3(const std::vector<std::uint8_t>& secret,
                                   const std::vector<std::uint8_t>& r1,
                                   const std::vector<std::uint8_t>& r2,
                                   std::size_t out_len) {
  std::vector<std::uint8_t> out;
  int round = 0;
  while (out.size() < out_len) {
    ++round;
    Sha1 inner;
    const std::vector<std::uint8_t> salt(static_cast<std::size_t>(round),
                                         static_cast<std::uint8_t>('A' + round - 1));
    inner.update(salt);
    inner.update(secret);
    inner.update(r1);
    inner.update(r2);
    const auto inner_digest = inner.digest();
    Md5 outer;
    outer.update(secret);
    outer.update(inner_digest.data(), inner_digest.size());
    const auto block = outer.digest();
    out.insert(out.end(), block.begin(), block.end());
  }
  out.resize(out_len);
  return out;
}

CipherProfile cipher_profile(Cipher cipher) {
  switch (cipher) {
    case Cipher::kTripleDesCbc: return {24, 8};
    case Cipher::kAes128Cbc: return {16, 16};
    case Cipher::kRc4: return {16, 0};
  }
  throw std::logic_error("ssl: bad cipher");
}

Handshake perform_handshake(const rsa::PrivateKey& server_key, Cipher cipher,
                            ModexpEngine& client_engine,
                            ModexpEngine& server_engine, Rng& rng,
                            const HandshakeFault* fault) {
  WSP_TRACE_SPAN("ssl.handshake", "perform_handshake");
  // ClientHello / ServerHello randoms.
  const auto client_random = rng.bytes(32);
  const auto server_random = rng.bytes(32);

  // Client: premaster under the server's public key.
  const auto premaster = rng.bytes(48);
  std::vector<std::uint8_t> encrypted_premaster;
  {
    WSP_TRACE_SPAN("ssl.handshake", "premaster/encrypt");
    encrypted_premaster =
        rsa::encrypt(premaster, server_key.public_key(), client_engine, rng);
  }
  if (fault && fault->corrupt_premaster && !encrypted_premaster.empty()) {
    // Flip a mid-ciphertext byte "on the wire": the server either fails the
    // PKCS#1 unpadding or recovers a premaster the client does not hold.
    WSP_TRACE_INSTANT("ssl.handshake", "premaster/corrupted");
    encrypted_premaster[encrypted_premaster.size() / 2] ^= 0x01;
  }

  // Server: recover the premaster (the expensive private-key operation).
  std::vector<std::uint8_t> recovered;
  {
    WSP_TRACE_SPAN("ssl.handshake", "premaster/decrypt");
    recovered = rsa::decrypt(encrypted_premaster, server_key, server_engine);
  }
  if (recovered != premaster) throw std::runtime_error("ssl: handshake failure");

  // Both sides derive the master secret and the key block.
  WSP_TRACE_SPAN("ssl.handshake", "kdf");
  const auto master = kdf_ssl3(premaster, client_random, server_random, 48);
  const CipherProfile spec = cipher_profile(cipher);
  const std::size_t block_len = 2 * (Sha1::kDigestSize + spec.key_len + spec.iv_len);
  const auto key_block = kdf_ssl3(master, server_random, client_random, block_len);

  std::size_t off = 0;
  auto take = [&](std::size_t n) {
    std::vector<std::uint8_t> v(key_block.begin() + static_cast<std::ptrdiff_t>(off),
                                key_block.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    return v;
  };
  const auto client_mac = take(Sha1::kDigestSize);
  const auto server_mac = take(Sha1::kDigestSize);
  const auto client_key = take(spec.key_len);
  const auto server_key_bytes = take(spec.key_len);
  const auto client_iv = take(spec.iv_len);
  const auto server_iv = take(spec.iv_len);

  Handshake hs{
      SecureChannel(cipher, client_key, client_mac, client_iv),
      SecureChannel(cipher, server_key_bytes, server_mac, server_iv),
      master,
      // hello randoms + encrypted premaster + finished digests (2 x 36).
      32 + 32 + encrypted_premaster.size() + 72,
  };
  return hs;
}

}  // namespace wsp::ssl
