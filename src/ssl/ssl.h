// A functional SSL-style secure channel (simplified SSLv3/TLS shape):
// RSA key-exchange handshake, SSLv3-style key derivation (MD5/SHA-1 mix),
// and an authenticated record layer (HMAC-SHA1 + 3DES-CBC / AES-128-CBC /
// RC4) — the protocol workload whose acceleration Fig. 8 reports.
//
// This is a protocol *model* for performance studies: the message framing
// is simplified and no certificate validation exists.  Cryptographic
// primitives are the library's real implementations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/rsa.h"
#include "support/random.h"

namespace wsp::crypto {
class BatchDispatcher;
}

namespace wsp::ssl {

enum class Cipher { kTripleDesCbc, kAes128Cbc, kRc4 };

const char* to_string(Cipher cipher);

/// Record-layer key material sizes for a cipher suite (MAC keys are always
/// Sha1::kDigestSize).  Public so that session layers (server rekeying) can
/// size key-block derivations without re-encoding the suite table.
struct CipherProfile {
  std::size_t key_len = 0;
  std::size_t iv_len = 0;
};
CipherProfile cipher_profile(Cipher cipher);

/// Keys and state for one direction of a record-layer connection.
class SecureChannel {
 public:
  SecureChannel(Cipher cipher, std::vector<std::uint8_t> cipher_key,
                std::vector<std::uint8_t> mac_key, std::vector<std::uint8_t> iv);

  /// MAC-then-encrypt with an implicit sequence number; returns the record.
  std::vector<std::uint8_t> seal(const std::vector<std::uint8_t>& payload);

  /// Decrypts and authenticates; throws std::runtime_error on tampering.
  std::vector<std::uint8_t> open(const std::vector<std::uint8_t>& record);

  // -------------------------------------------------------------------------
  // Two-phase record processing for the batched data plane (docs/server.md).
  //
  // seal_submit/open_submit run the cheap per-record work (MAC, padding,
  // sequence numbers) immediately — in exactly the scalar seal()/open()
  // order — and enqueue the CBC cipher pass on a crypto::BatchDispatcher so
  // it can run lane-interleaved with other sessions' records.  The caller
  // must flush() the dispatcher before calling the matching *_complete,
  // and a channel may hold at most one pending operation per direction.
  // Every error the scalar path throws (bad record length, bad padding,
  // short record, MAC failure) is deferred to *_complete so the caller's
  // exception handling is unchanged.  RC4 has per-channel stream state that
  // cannot cross lanes; its cipher pass simply runs at *_complete time.
  // Byte-for-byte equivalence with seal()/open() — including CBC residue
  // chaining and sequence-number consumption on the error paths — is proven
  // in tests/test_crypto_batch.cpp.

  /// Move-only handle to one staged record operation.
  class Pending {
   public:
    Pending();
    Pending(Pending&&) noexcept;
    Pending& operator=(Pending&&) noexcept;
    ~Pending();
    bool valid() const { return state_ != nullptr; }

   private:
    friend class SecureChannel;
    struct State;
    std::unique_ptr<State> state_;
  };

  Pending seal_submit(const std::vector<std::uint8_t>& payload,
                      crypto::BatchDispatcher& dispatcher);
  std::vector<std::uint8_t> seal_complete(Pending pending);

  Pending open_submit(const std::vector<std::uint8_t>& record,
                      crypto::BatchDispatcher& dispatcher);
  std::vector<std::uint8_t> open_complete(Pending pending);

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Outcome of a completed handshake: paired channels plus the byte counts
/// exchanged (used by the workload model).
struct Handshake {
  SecureChannel client_write;  ///< client seals, server opens
  SecureChannel server_write;  ///< server seals, client opens
  std::vector<std::uint8_t> master_secret;
  std::size_t handshake_bytes = 0;  ///< wire bytes exchanged during setup
};

/// Deterministic wire-fault injection for a handshake (the secure-session
/// engine's chaos runs): the failure still exercises the real code path —
/// the server decrypts the corrupted premaster and the verification that
/// both sides agree fails, exactly as a man-in-the-middle flip would.
struct HandshakeFault {
  bool corrupt_premaster = false;  ///< flip one byte of the encrypted premaster
};

/// Runs the RSA key-exchange handshake between an in-process client and
/// server.  The client encrypts a 48-byte premaster under the server's
/// public key; both sides derive the master secret and record keys.
/// With a HandshakeFault the exchange is sabotaged on the wire and throws
/// std::runtime_error (the same failure path genuine corruption takes).
Handshake perform_handshake(const rsa::PrivateKey& server_key, Cipher cipher,
                            ModexpEngine& client_engine,
                            ModexpEngine& server_engine, Rng& rng,
                            const HandshakeFault* fault = nullptr);

/// SSLv3-style pseudo-random expansion:
/// block = MD5(secret || SHA1('A' || secret || r1 || r2)) || MD5(... 'BB' ...) || ...
std::vector<std::uint8_t> kdf_ssl3(const std::vector<std::uint8_t>& secret,
                                   const std::vector<std::uint8_t>& r1,
                                   const std::vector<std::uint8_t>& r2,
                                   std::size_t out_len);

}  // namespace wsp::ssl
