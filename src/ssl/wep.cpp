#include "ssl/wep.h"

#include <stdexcept>

#include "crypto/crc32.h"
#include "crypto/ct.h"
#include "crypto/rc4.h"

namespace wsp::wep {

namespace {

std::vector<std::uint8_t> per_frame_key(std::uint32_t iv,
                                        const std::vector<std::uint8_t>& key) {
  if (key.size() != 5 && key.size() != 13) {
    throw std::invalid_argument("wep: key must be 5 or 13 bytes");
  }
  std::vector<std::uint8_t> k;
  k.reserve(3 + key.size());
  k.push_back(static_cast<std::uint8_t>(iv));
  k.push_back(static_cast<std::uint8_t>(iv >> 8));
  k.push_back(static_cast<std::uint8_t>(iv >> 16));
  k.insert(k.end(), key.begin(), key.end());
  return k;
}

}  // namespace

Frame seal(const std::vector<std::uint8_t>& payload,
           const std::vector<std::uint8_t>& key, Rng& rng) {
  Frame frame;
  frame.iv = static_cast<std::uint32_t>(rng.next_u64()) & 0xFFFFFFu;
  std::vector<std::uint8_t> plain = payload;
  const std::uint32_t icv = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    plain.push_back(static_cast<std::uint8_t>(icv >> (8 * i)));
  }
  Rc4 rc4(per_frame_key(frame.iv, key));
  frame.ciphertext = rc4.process(plain);
  return frame;
}

std::vector<std::uint8_t> open(const Frame& frame,
                               const std::vector<std::uint8_t>& key) {
  if (frame.ciphertext.size() < 4) throw std::runtime_error("wep: short frame");
  Rc4 rc4(per_frame_key(frame.iv, key));
  std::vector<std::uint8_t> plain = rc4.process(frame.ciphertext);
  std::uint8_t icv[4], expect[4];
  for (int i = 0; i < 4; ++i) icv[i] = plain[plain.size() - 4 + static_cast<std::size_t>(i)];
  plain.resize(plain.size() - 4);
  const std::uint32_t crc = crc32(plain);
  for (int i = 0; i < 4; ++i) expect[i] = static_cast<std::uint8_t>(crc >> (8 * i));
  if (!ct::equal(icv, expect, 4)) throw std::runtime_error("wep: ICV mismatch");
  return plain;
}

}  // namespace wsp::wep
