// WEP-style frame protection (802.11 link layer) — one of the three
// protocol layers the paper's platform must serve simultaneously
// ("security processing in different layers of the network protocol
// stack (e.g., WEP, IPSec, and SSL)", Sec. 1).
//
// Classic WEP: per-frame 24-bit IV prepended to the RC4 key, payload plus
// a CRC-32 integrity check value encrypted with the RC4 keystream.  WEP's
// cryptographic weaknesses are historical fact and beside the point here —
// this models its processing workload faithfully.
#pragma once

#include <cstdint>
#include <vector>

#include "support/random.h"

namespace wsp::wep {

struct Frame {
  std::uint32_t iv = 0;  ///< 24-bit IV (low 3 bytes used)
  std::vector<std::uint8_t> ciphertext;  ///< encrypted payload || ICV
};

/// Encrypts a payload under the 40- or 104-bit WEP key with a random IV.
Frame seal(const std::vector<std::uint8_t>& payload,
           const std::vector<std::uint8_t>& key, Rng& rng);

/// Decrypts and checks the ICV; throws std::runtime_error on corruption.
std::vector<std::uint8_t> open(const Frame& frame,
                               const std::vector<std::uint8_t>& key);

}  // namespace wsp::wep
