#include "ssl/workload.h"

#include <iomanip>
#include <sstream>

namespace wsp::ssl {

PlatformCosts misc_cost_defaults() {
  PlatformCosts c;
  c.hash_cycles_per_byte = 420.0;
  c.misc_cycles_per_byte = 310.0;
  c.handshake_misc_cycles = 120000.0;
  return c;
}

TransactionCost transaction_cost(const PlatformCosts& costs, std::size_t bytes) {
  TransactionCost t;
  // Handshake: server private op + client public op (premaster encryption).
  t.public_key = costs.rsa_private_cycles + costs.rsa_public_cycles;
  // Bulk transfer.
  const double b = static_cast<double>(bytes);
  t.symmetric = costs.symmetric_cycles_per_byte * b;
  // MACs and framing count as miscellaneous (not accelerated), as does the
  // fixed handshake protocol work.
  t.misc = costs.handshake_misc_cycles +
           (costs.hash_cycles_per_byte + costs.misc_cycles_per_byte) * b;
  return t;
}

TransactionCost resumed_transaction_cost(const PlatformCosts& costs,
                                         std::size_t bytes) {
  TransactionCost t;
  // Abbreviated handshake: the cached master secret replaces the RSA
  // exchange entirely.
  t.public_key = 0.0;
  const double b = static_cast<double>(bytes);
  t.symmetric = costs.symmetric_cycles_per_byte * b;
  // Hellos + Finished + key-block KDF are a fraction of the full
  // handshake's protocol work (no premaster framing, no cert handling).
  t.misc = 0.25 * costs.handshake_misc_cycles +
           (costs.hash_cycles_per_byte + costs.misc_cycles_per_byte) * b;
  return t;
}

std::vector<SpeedupRow> ssl_speedup_table(const PlatformCosts& base,
                                          const PlatformCosts& optimized,
                                          const std::vector<std::size_t>& sizes) {
  std::vector<SpeedupRow> rows;
  rows.reserve(sizes.size());
  for (std::size_t bytes : sizes) {
    SpeedupRow row;
    row.bytes = bytes;
    row.base = transaction_cost(base, bytes);
    row.optimized = transaction_cost(optimized, bytes);
    row.speedup = row.base.total() / row.optimized.total();
    rows.push_back(row);
  }
  return rows;
}

std::string format_speedup_table(const std::vector<SpeedupRow>& rows) {
  std::ostringstream os;
  os << std::fixed;
  os << "size      base breakdown (pk/sym/misc)      speedup\n";
  for (const SpeedupRow& row : rows) {
    std::string label = row.bytes % 1024 == 0
                            ? std::to_string(row.bytes / 1024) + "KB"
                            : std::to_string(row.bytes) + "B";
    os << std::setw(6) << label << "    " << std::setprecision(1)
       << std::setw(5) << 100.0 * row.base.public_key_fraction() << "% /"
       << std::setw(5) << 100.0 * row.base.symmetric_fraction() << "% /"
       << std::setw(5) << 100.0 * row.base.misc_fraction() << "%        "
       << std::setprecision(2) << std::setw(7) << row.speedup << "X\n";
  }
  return os.str();
}

}  // namespace wsp::ssl
