// SSL transaction cost model (paper Fig. 8).
//
// A transaction = one full handshake (dominated by the server's RSA
// private-key operation) + the record-layer transfer of the session data
// (dominated by the symmetric cipher and the MAC).  Component costs come
// from measured kernel cycle counts; the model composes them per
// transaction size and reports the base-vs-optimized speedup and the
// {public-key, symmetric, misc} workload breakdown the paper plots.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wsp::ssl {

/// Measured/derived per-component cycle costs of one platform configuration.
struct PlatformCosts {
  double rsa_private_cycles = 0.0;     ///< one RSA-1024 private operation
  double rsa_public_cycles = 0.0;      ///< one RSA-1024 public operation
  double symmetric_cycles_per_byte = 0.0;  ///< record cipher
  double hash_cycles_per_byte = 0.0;       ///< HMAC-SHA1 (not accelerated)
  double handshake_misc_cycles = 0.0;      ///< KDF, framing, protocol logic
  double misc_cycles_per_byte = 0.0;       ///< copying / framing per byte
};

/// Defaults for the components the platform does NOT accelerate.  The
/// paper's Fig. 8 measures a complete SSL stack in which the unaccelerated
/// "Misc" work (SSLv3 record MACs — a nested MD5/SHA-1 double hash per
/// record in byte-oriented code — plus buffer copies between protocol
/// layers and record framing) is a large share: back-solving their 32KB
/// point (3.05X overall with 33.9X symmetric / 66.4X public-key speedups)
/// puts Misc at ~0.44x the baseline symmetric cost per byte.  We do not
/// simulate the protocol stack, so these constants are calibrated to that
/// measured share: ~420 cyc/B hashing + ~310 cyc/B copying/framing, and
/// ~120k cycles of fixed per-handshake protocol work.
PlatformCosts misc_cost_defaults();

struct TransactionCost {
  double public_key = 0.0;
  double symmetric = 0.0;
  double misc = 0.0;
  double total() const { return public_key + symmetric + misc; }
  double public_key_fraction() const { return public_key / total(); }
  double symmetric_fraction() const { return symmetric / total(); }
  double misc_fraction() const { return misc / total(); }
};

/// Cycle cost of one transaction of `bytes` application data.
TransactionCost transaction_cost(const PlatformCosts& costs, std::size_t bytes);

/// Cycle cost of a transaction on a RESUMED session (abbreviated
/// handshake): no RSA exchange at all, and only the short hello/Finished
/// protocol work up front — the record-layer transfer is unchanged.  This
/// prices the server engine's session-resumption mode, where amortizing the
/// key exchange across reconnects is exactly the point.
TransactionCost resumed_transaction_cost(const PlatformCosts& costs,
                                         std::size_t bytes);

struct SpeedupRow {
  std::size_t bytes = 0;
  TransactionCost base;
  TransactionCost optimized;
  double speedup = 0.0;
};

/// The Fig. 8 series: speedups over a range of transaction sizes.
std::vector<SpeedupRow> ssl_speedup_table(const PlatformCosts& base,
                                          const PlatformCosts& optimized,
                                          const std::vector<std::size_t>& sizes);

/// Renders the table in the paper's format (sizes, breakdown, speedup).
std::string format_speedup_table(const std::vector<SpeedupRow>& rows);

}  // namespace wsp::ssl
