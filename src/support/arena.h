// Slab arena: chunked, handle-based object storage for the million-session
// data plane (ROADMAP item 1).
//
// A Slab<T> owns its objects in fixed-size chunks of `ChunkSlots` slots, so
//   * allocation is O(1) — pop a free-list head or append to the newest
//     chunk — with no per-object malloc on the hot path;
//   * addresses are stable for an object's whole lifetime (chunks never
//     move), which is what lets the session table hand out raw pointers
//     while other slots churn;
//   * live objects of one slab sit densely in a few contiguous arrays,
//     the cache layout the struct-of-arrays SessionTable wants for its hot
//     session blocks.
//
// Every slot carries a 32-bit generation counter (odd = live, even = free,
// incremented on both transitions), so a Ref held after erase() goes stale
// instead of aliasing the slot's next tenant: get() on a stale Ref returns
// nullptr, erase() returns false.  With 2^31 reuses per slot before wrap,
// a run would need billions of same-slot churns to confuse a handle.
//
// Not internally synchronized: callers provide external locking (the
// session table shards one slab per shard behind the shard mutex).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace wsp::support {

/// Handle to a slab slot: index + generation.  Value-semantic and POD-ish;
/// the default-constructed Ref is never valid.
struct SlabRef {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  ///< odd when the handle was live at issue time

  bool operator==(const SlabRef&) const = default;
};

template <typename T, std::size_t ChunkSlots = 1024>
class Slab {
  static_assert(ChunkSlots > 0 && (ChunkSlots & (ChunkSlots - 1)) == 0,
                "ChunkSlots must be a power of two");

 public:
  Slab() = default;
  ~Slab() { clear(); }

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  /// Constructs a T in a free slot and returns its handle.
  template <typename... Args>
  SlabRef emplace(Args&&... args) {
    std::uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = slot_at(slot).next_free;
    } else {
      if (size_ == chunks_.size() * ChunkSlots) {
        chunks_.push_back(std::make_unique<Slot[]>(ChunkSlots));
      }
      slot = static_cast<std::uint32_t>(size_++);
    }
    Slot& s = slot_at(slot);
    ::new (static_cast<void*>(s.storage)) T(std::forward<Args>(args)...);
    ++s.gen;  // even -> odd: live
    ++live_;
    return SlabRef{slot, s.gen};
  }

  /// The object behind `ref`, or nullptr when the handle is stale (slot
  /// freed or re-used since issue) or out of range.
  T* get(SlabRef ref) {
    if (ref.slot >= size_) return nullptr;
    Slot& s = slot_at(ref.slot);
    if (s.gen != ref.gen || (s.gen & 1u) == 0) return nullptr;
    return std::launder(reinterpret_cast<T*>(s.storage));
  }
  const T* get(SlabRef ref) const {
    return const_cast<Slab*>(this)->get(ref);
  }

  /// Destroys the object and recycles its slot; false on a stale handle.
  bool erase(SlabRef ref) {
    T* obj = get(ref);
    if (obj == nullptr) return false;
    obj->~T();
    Slot& s = slot_at(ref.slot);
    ++s.gen;  // odd -> even: free (and stale-ify outstanding handles)
    s.next_free = free_head_;
    free_head_ = ref.slot;
    --live_;
    return true;
  }

  /// Destroys every live object and releases all chunks.
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) {
      Slot& s = slot_at(static_cast<std::uint32_t>(i));
      if (s.gen & 1u) {
        std::launder(reinterpret_cast<T*>(s.storage))->~T();
        ++s.gen;
      }
    }
    chunks_.clear();
    size_ = 0;
    live_ = 0;
    free_head_ = kNone;
  }

  /// Visits every live object in slot order as fn(SlabRef, T&).  The walk is
  /// deterministic for a deterministic insert/erase history, which is what
  /// lets the engine's quiesce barrier enumerate parked sessions straight
  /// from the arena (docs/recovery.md).  Callers must not insert or erase
  /// during the walk.
  template <typename F>
  void for_each(F&& fn) {
    for (std::size_t i = 0; i < size_; ++i) {
      const std::uint32_t slot = static_cast<std::uint32_t>(i);
      Slot& s = slot_at(slot);
      if (s.gen & 1u) {
        fn(SlabRef{slot, s.gen},
           *std::launder(reinterpret_cast<T*>(s.storage)));
      }
    }
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return chunks_.size() * ChunkSlots; }

  /// Bytes of slot storage currently reserved (chunks never shrink).
  std::size_t bytes_reserved() const {
    return chunks_.size() * ChunkSlots * sizeof(Slot);
  }

  /// Per-slot footprint: the object plus the generation/free-list header —
  /// the number the memory-per-session accounting is built from.
  static constexpr std::size_t slot_bytes() { return sizeof(Slot); }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    std::uint32_t gen = 0;        ///< odd = live, even = free
    std::uint32_t next_free = 0;  ///< free-list link while free
  };

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  Slot& slot_at(std::uint32_t slot) {
    return chunks_[slot / ChunkSlots][slot % ChunkSlots];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t size_ = 0;   ///< slots ever touched (high-water, incl. free)
  std::size_t live_ = 0;
  std::uint32_t free_head_ = kNone;
};

}  // namespace wsp::support
