#include "support/benchdiff.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wsp::bench {

const char* to_string(Direction dir) {
  switch (dir) {
    case Direction::kHigherBetter: return "higher-better";
    case Direction::kLowerBetter: return "lower-better";
    case Direction::kExact: return "exact";
    case Direction::kInfo: return "info";
  }
  return "unknown";
}

const std::vector<ToleranceRule>& default_tolerance_table() {
  // Order matters: first match wins.  Specific server-metric rules come
  // before the generic kernel-cycle patterns.
  static const std::vector<ToleranceRule> table = {
      // Robustness counters are exact-deterministic for a fixed seed: any
      // drift means engine behavior changed and must be blessed explicitly.
      {"*/leaked", Direction::kExact, 0.0},
      {"*/faults_injected", Direction::kExact, 0.0},
      {"*/aborted", Direction::kExact, 0.0},
      // The batched data plane may never change a deterministic metric
      // across lane widths — the bench counts divergences and this must
      // stay exactly zero.
      {"*/lanes_mismatch", Direction::kExact, 0.0},
      // The .wsp compiler's legacy-equivalence gate (bench_report scenario
      // section): a compiled one-phase Fig. 8 program must reproduce the
      // flat code path bit for bit, so the mismatch count stays zero.
      {"*/equiv_mismatch", Direction::kExact, 0.0},
      // Crash-fault tolerance (docs/recovery.md): a crash -> restore ->
      // continue run must match the uninterrupted reference bit for bit —
      // covers both crash/resume_mismatch and crash/torn_resume_mismatch.
      {"*resume_mismatch", Direction::kExact, 0.0},
      // Checkpoint count is derived from the deterministic reference
      // makespan, so any drift means the barrier cadence changed.
      {"*/checkpoints", Direction::kExact, 0.0},
      // Actual process RSS next to the modeled per-session bytes: genuinely
      // host-dependent (allocator, page size, what ran before), so it is
      // tracked but never gated.
      {"*/rss_mib", Direction::kInfo, 0.0},
      // Measured host-side wall-time ratios of the lanes-8/-4 planes over
      // the scalar plane: the one intentionally machine-dependent pair of
      // gated metrics, hence the wide band.  They must not collapse — a
      // batched plane that stops beating scalar by a clear margin is a
      // regression in the multi-buffer kernels or the cohort staging.
      {"batch/host_speedup*", Direction::kHigherBetter, 35.0},
      // The headline server metrics.
      {"*/throughput_per_gcycle", Direction::kHigherBetter, 5.0},
      // Structural bytes per live session (slab slot + cold block + index
      // share): a build-layout property, so the tolerance only absorbs
      // ABI/padding noise — real growth must be blessed deliberately.
      {"*/memory_per_session", Direction::kLowerBetter, 2.0},
      {"*/latency_p50_cycles", Direction::kLowerBetter, 10.0},
      {"*/latency_p90_cycles", Direction::kLowerBetter, 10.0},
      {"*/latency_p99_cycles", Direction::kLowerBetter, 10.0},
      {"*/latency_max_cycles", Direction::kLowerBetter, 15.0},
      {"*/platform_equiv_speedup", Direction::kHigherBetter, 5.0},
      // Per-session byte digests pin traffic content; they legitimately
      // change whenever the workload mix does, so they are informational.
      {"*digest*", Direction::kInfo, 0.0},
      // Sec. 4.3 explore sweep (BENCH_sec43_explore.json, gated by
      // sanitize.sh via --check --with-explore): the candidate count is a
      // property of the enumerated space, the winning estimate a modeled
      // cycle count; the worst point is tracked but not gated — nothing
      // optimizes for it.
      {"configs", Direction::kExact, 0.0},
      {"best_avg_cycles", Direction::kLowerBetter, 5.0},
      {"worst_avg_cycles", Direction::kInfo, 0.0},
      // Paper speedup figures and optimized-kernel cycle counts.
      {"speedup_*", Direction::kHigherBetter, 5.0},
      {"*_opt", Direction::kLowerBetter, 5.0},
      {"*_cpb", Direction::kLowerBetter, 5.0},
      {"add_n/*", Direction::kLowerBetter, 5.0},
      {"addmul_1/*", Direction::kLowerBetter, 5.0},
      {"workload_total", Direction::kLowerBetter, 5.0},
  };
  return table;
}

bool glob_match(const std::string& pattern, const std::string& key) {
  // Iterative '*' matcher with single-star backtracking.
  std::size_t p = 0, k = 0, star = std::string::npos, mark = 0;
  while (k < key.size()) {
    if (p < pattern.size() && (pattern[p] == key[k])) {
      ++p, ++k;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = k;
    } else if (star != std::string::npos) {
      p = star + 1;
      k = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

const ToleranceRule* match_rule(const std::vector<ToleranceRule>& rules,
                                const std::string& key) {
  for (const ToleranceRule& rule : rules) {
    if (glob_match(rule.pattern, key)) return &rule;
  }
  return nullptr;
}

namespace {

const json::Value& cycles_of(const json::Value& doc, const char* which) {
  if (!doc.is_object() || !doc.has("schema") ||
      doc.at("schema").as_string() != "wsp-bench-v1") {
    throw std::runtime_error(std::string("benchdiff: ") + which +
                             " document is not schema wsp-bench-v1");
  }
  if (!doc.has("cycles") || !doc.at("cycles").is_object()) {
    throw std::runtime_error(std::string("benchdiff: ") + which +
                             " document has no cycles object");
  }
  return doc.at("cycles");
}

bool is_regression(Direction dir, double tol_pct, double baseline,
                   double current) {
  switch (dir) {
    case Direction::kExact:
      return current != baseline;
    case Direction::kHigherBetter:
      if (baseline == 0.0) return current < 0.0;
      return current < baseline - std::abs(baseline) * tol_pct / 100.0;
    case Direction::kLowerBetter:
      if (baseline == 0.0) return current > 0.0;
      return current > baseline + std::abs(baseline) * tol_pct / 100.0;
    case Direction::kInfo:
      return false;
  }
  return false;
}

}  // namespace

CheckReport check_bench(const json::Value& baseline, const json::Value& current,
                        const std::vector<ToleranceRule>& rules) {
  CheckReport report;
  if (current.is_object() && current.has("name")) {
    report.name = current.at("name").as_string();
  }
  const json::Value& base_cycles = cycles_of(baseline, "baseline");
  const json::Value& cur_cycles = cycles_of(current, "current");

  for (const auto& [key, value] : base_cycles.members()) {
    if (!cur_cycles.has(key)) {
      report.missing.push_back(key);
      continue;
    }
    ++report.compared;
    const double b = value.as_number();
    const double c = cur_cycles.at(key).as_number();
    if (b == c) continue;

    MetricDelta d;
    d.key = key;
    d.baseline = b;
    d.current = c;
    d.delta_pct = b != 0.0 ? (c - b) / std::abs(b) * 100.0 : 0.0;
    const ToleranceRule* rule = match_rule(rules, key);
    d.dir = rule != nullptr ? rule->dir : Direction::kInfo;
    d.regression =
        is_regression(d.dir, rule != nullptr ? rule->tolerance_pct : 0.0, b, c);
    (d.regression ? report.regressions : report.drifts).push_back(d);
  }
  for (const auto& [key, value] : cur_cycles.members()) {
    (void)value;
    if (!base_cycles.has(key)) report.added.push_back(key);
  }
  return report;
}

std::string format_check_report(const CheckReport& report) {
  std::string out;
  char line[256];
  auto emit = [&](const char* verdict, const MetricDelta& d) {
    std::snprintf(line, sizeof line,
                  "    %-10s %-36s %14.4g -> %14.4g  (%+.2f%%, %s)\n", verdict,
                  d.key.c_str(), d.baseline, d.current, d.delta_pct,
                  to_string(d.dir));
    out += line;
  };
  for (const auto& d : report.regressions) emit("REGRESSION", d);
  for (const auto& key : report.missing) {
    std::snprintf(line, sizeof line, "    %-10s %s (metric vanished)\n",
                  "MISSING", key.c_str());
    out += line;
  }
  for (const auto& d : report.drifts) emit("drift", d);
  for (const auto& key : report.added) {
    std::snprintf(line, sizeof line, "    %-10s %s\n", "new", key.c_str());
    out += line;
  }
  std::snprintf(line, sizeof line,
                "    %zu compared, %zu regressions, %zu drifts, %zu missing, "
                "%zu new\n",
                report.compared, report.regressions.size(),
                report.drifts.size(), report.missing.size(),
                report.added.size());
  out += line;
  return out;
}

json::Value load_json_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("benchdiff: cannot open " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw std::runtime_error("benchdiff: read error on " + path);
  try {
    return json::Value::parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error("benchdiff: " + path + ": " + e.what());
  }
}

}  // namespace wsp::bench
