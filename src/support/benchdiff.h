// Bench regression gate: compares two wsp-bench-v1 documents (the committed
// baseline vs. a fresh run) under a per-metric tolerance table.
//
// Every metric in the `cycles` object is classified by the first matching
// rule ('*' glob patterns, evaluated in order).  Directions:
//   * kHigherBetter / kLowerBetter — fail when the value moves the wrong
//     way by more than `tolerance_pct` percent;
//   * kExact — any change fails (deterministic counters: leak/fault counts);
//   * kInfo — tracked and printed, never a failure (digests, raw counts
//     whose intended value changes with the workload mix).
// Unmatched metrics are kInfo.  A metric present in the baseline but absent
// from the fresh run is always a failure (schema regression); new metrics
// are reported but pass.  `wall_ns`, `threads` and `git_rev` are outside
// the `cycles` object and never compared.
//
// The default table (docs/benchmarks.md) gates the ISSUE/ROADMAP key
// metrics: throughput per Gcycle, latency percentiles, chaos leak and fault
// counters, optimized-kernel cycle counts and the paper speedup figures.
#pragma once

#include <string>
#include <vector>

#include "support/json.h"

namespace wsp::bench {

enum class Direction { kHigherBetter, kLowerBetter, kExact, kInfo };

const char* to_string(Direction dir);

struct ToleranceRule {
  std::string pattern;   ///< '*' matches any run of characters
  Direction dir = Direction::kInfo;
  double tolerance_pct = 0.0;  ///< allowed wrong-direction drift, percent
};

/// The committed gate policy; see docs/benchmarks.md for the rationale.
const std::vector<ToleranceRule>& default_tolerance_table();

/// Glob match with '*' wildcards only (no escapes, no '?').
bool glob_match(const std::string& pattern, const std::string& key);

/// First rule whose pattern matches, or nullptr (=> kInfo).
const ToleranceRule* match_rule(const std::vector<ToleranceRule>& rules,
                                const std::string& key);

struct MetricDelta {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  double delta_pct = 0.0;  ///< signed; 0 when baseline == 0
  Direction dir = Direction::kInfo;
  bool regression = false;
};

struct CheckReport {
  std::string name;                    ///< bench section ("server", "fig8")
  std::vector<MetricDelta> regressions;
  std::vector<MetricDelta> drifts;     ///< changed, but within policy
  std::vector<std::string> missing;    ///< in baseline, absent in current
  std::vector<std::string> added;      ///< new metrics (pass)
  std::size_t compared = 0;            ///< metrics present in both

  bool ok() const { return regressions.empty() && missing.empty(); }
};

/// Diffs `current` against `baseline` (both wsp-bench-v1 documents); throws
/// std::runtime_error when either lacks the schema/cycles structure.
CheckReport check_bench(const json::Value& baseline, const json::Value& current,
                        const std::vector<ToleranceRule>& rules =
                            default_tolerance_table());

/// Human-readable gate summary, one line per regression/drift.
std::string format_check_report(const CheckReport& report);

/// Parses a JSON document from disk; throws std::runtime_error (with the
/// path) when the file is unreadable or malformed.
json::Value load_json_file(const std::string& path);

}  // namespace wsp::bench
