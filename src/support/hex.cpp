#include "support/hex.h"

#include <stdexcept>

namespace wsp {

namespace {
int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(const std::uint8_t* data, std::size_t n) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(digits[data[i] >> 4]);
    out.push_back(digits[data[i] & 0xf]);
  }
  return out;
}

std::string to_hex(const std::vector<std::uint8_t>& data) {
  return to_hex(data.data(), data.size());
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  std::vector<std::uint8_t> out;
  int hi = -1;
  for (char c : hex) {
    if (c == ' ' || c == '\n' || c == '\t') continue;
    const int v = nibble(c);
    if (v < 0) throw std::invalid_argument("from_hex: bad character");
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) throw std::invalid_argument("from_hex: odd length");
  return out;
}

}  // namespace wsp
