// Hexadecimal encoding/decoding helpers used by tests and examples.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wsp {

/// Lower-case hex string for a byte buffer.
std::string to_hex(const std::uint8_t* data, std::size_t n);
std::string to_hex(const std::vector<std::uint8_t>& data);

/// Parses a hex string (even length, optional embedded spaces) into bytes.
/// Throws std::invalid_argument on malformed input.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace wsp
