#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wsp::json {

namespace {

[[noreturn]] void fail(const char* what, std::size_t pos) {
  throw std::runtime_error("json: " + std::string(what) + " at offset " +
                           std::to_string(pos));
}

/// Recursive-descent parser over a complete in-memory document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos_);
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      v[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape", pos_);
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos_);
          }
          // UTF-8 encode (surrogate pairs not needed by our schemas; encode
          // lone surrogates as-is rather than rejecting).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value", pos_);
    try {
      std::size_t used = 0;
      const double d = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) fail("bad number", start);
      return Value(d);
    } catch (const std::logic_error&) {
      fail("bad number", start);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return str_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return arr_;
}

const std::map<std::string, Value>& Value::members() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return obj_;
}

const Value& Value::at(const std::string& key) const {
  const auto it = members().find(key);
  if (it == obj_.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool Value::has(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) != 0;
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  throw std::runtime_error("json: not a container");
}

void Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  arr_.push_back(std::move(v));
}

Value& Value::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return obj_[key];
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no inf/nan; the schemas never produce them
    return;
  }
  // Integers (the common case: cycle counts, counts, ids) print exactly.
  if (n == std::floor(n) && std::fabs(n) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", n);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    out += buf;
  }
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent < 0 ? "" : std::string(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth + 1), ' ');
  const std::string close_pad = indent < 0 ? "" : std::string(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* nl = indent < 0 ? "" : "\n";
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, num_); return;
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, value] : obj_) {
        out += pad;
        out += '"';
        out += escape(key);
        out += "\":";
        if (indent >= 0) out += ' ';
        value.dump_to(out, indent, depth + 1);
        if (++i < obj_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace wsp::json
