// Minimal JSON value / parser / writer — just enough for the observability
// layer: Chrome-trace export, the BENCH_*.json regression artifacts, the
// trace2txt summarizer and the schema-validation tests.  No external
// dependency, no streaming: documents here are at most a few MB.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wsp::json {

/// A JSON document node.  Numbers are stored as double (the trace/bench
/// schemas never need 64-bit-exact integers above 2^53).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double n) : type_(Type::kNumber), num_(n) {}
  Value(int n) : type_(Type::kNumber), num_(n) {}
  Value(std::int64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Value(std::uint64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;              ///< array elements
  const std::map<std::string, Value>& members() const;  ///< object members

  /// Object lookup; throws if not an object or the key is absent.
  const Value& at(const std::string& key) const;
  bool has(const std::string& key) const;
  std::size_t size() const;  ///< array/object element count

  /// Mutators (switch the value to the container type on first use).
  void push_back(Value v);
  Value& operator[](const std::string& key);

  /// Serializes; `indent < 0` = compact one-line form.
  std::string dump(int indent = -1) const;

  /// Parses a complete document; throws std::runtime_error with an offset
  /// on malformed input or trailing garbage.
  static Value parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::map<std::string, Value> obj_;
};

/// Escapes a string per JSON rules (quotes not included).
std::string escape(const std::string& s);

}  // namespace wsp::json
