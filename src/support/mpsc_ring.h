// Bounded multi-producer / single-consumer ring buffer — the lock-free
// shard queue of the record scheduler (ROADMAP item 1: million-session
// scale-out replaces the mutex+deque FIFO on the scheduler hot path).
//
// The algorithm is Vyukov's bounded queue: each cell carries a sequence
// number that encodes whose turn the cell is.  Producers claim a cell with
// one CAS on `head_` and publish with a release store of the sequence; the
// consumer observes the sequence with an acquire load, so the value written
// by the producer is visible before the pop returns it.  Per-producer FIFO
// order is preserved (and with a single producer, total FIFO order — which
// is what the scheduler's one-pump-per-shard contract relies on).
//
// try_push()/try_pop() never block and never allocate; a full ring refuses
// the push (the value is NOT consumed), which is what lets the scheduler
// layer its two overflow policies — blocking backpressure for external
// producers, overflow spill for re-entrant pushes from a pump — on top.
//
// Capacity is rounded up to a power of two.  size_approx() is exact when
// quiescent and never exceeds capacity(); under concurrency it is a
// point-in-time estimate (fine for depth high-water marks, wrong tool for
// an is-empty handshake — the scheduler uses the pump-active flag protocol
// for that).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace wsp::support {

template <typename T>
class MpscRing {
 public:
  /// Capacity is `min_capacity` rounded up to a power of two (>= 2).
  explicit MpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Multi-producer safe.  Returns false when the ring is full; the value
  /// is only moved from on success.
  bool try_push(T& value) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed `pos`; retry against the new head.
      } else if (dif < 0) {
        return false;  // the cell is still occupied: ring full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }
  bool try_push(T&& value) { return try_push(value); }

  /// Single consumer only.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t pos = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(pos + 1) < 0) {
      return false;  // producer has not published this cell yet
    }
    out = std::move(cell.value);
    cell.value = T();  // drop captured state now, not at next overwrite
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// head - tail snapshot; exact when no operation is in flight.  Clamped
  /// to [0, capacity()] — a stale tail read can otherwise overshoot.
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t n = head >= tail ? head - tail : 0;
    return n > mask_ + 1 ? mask_ + 1 : n;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< next producer slot
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< next consumer slot
};

}  // namespace wsp::support
