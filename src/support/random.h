// Deterministic pseudo-random generation used throughout the library.
//
// All stochastic components of the methodology (characterization stimuli,
// test vectors, key generation in examples) draw from this generator so that
// every experiment in the repository is reproducible bit-for-bit.
//
// The generator is xoshiro256** (Blackman & Vigna).  It is NOT
// cryptographically secure; `crypto/rsa.h` documents that key generation in
// this reproduction is for simulation/benchmarking, not deployment.
#pragma once

#include <cstdint>
#include <vector>

namespace wsp {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience helpers.
class Rng {
 public:
  /// The full generator state (xoshiro256**'s four words).  Snapshotting it
  /// and restoring later resumes the exact draw sequence — the engine's
  /// checkpoint/restore layer (docs/recovery.md) depends on this being a
  /// bit-exact round trip.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};

    bool operator==(const State&) const = default;
  };

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  State state() const { return State{{s_[0], s_[1], s_[2], s_[3]}}; }
  void set_state(const State& st) {
    s_[0] = st.s[0];
    s_[1] = st.s[1];
    s_[2] = st.s[2];
    s_[3] = st.s[3];
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Next 32-bit value.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform value in [0, bound) for bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fills `n` bytes of pseudo-random data.
  std::vector<std::uint8_t> bytes(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace wsp
