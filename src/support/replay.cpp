#include "support/replay.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "crypto/crc32.h"

namespace wsp::replay {

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTruncated: return "truncated";
    case ErrorKind::kBadMagic: return "bad magic";
    case ErrorKind::kVersionSkew: return "version skew";
    case ErrorKind::kCrcMismatch: return "crc mismatch";
    case ErrorKind::kVarintOverflow: return "varint overflow";
    case ErrorKind::kMalformed: return "malformed";
  }
  return "unknown";
}

ReplayError::ReplayError(ErrorKind kind, std::size_t offset,
                         const std::string& detail)
    : std::runtime_error("replay: " + std::string(to_string(kind)) +
                         " at byte " + std::to_string(offset) + ": " + detail),
      kind_(kind),
      offset_(offset) {}

// --- sinks -----------------------------------------------------------------

void VectorSink::write(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

FileSink::FileSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  ok_ = file_ != nullptr;
  if (!ok_) fail("open failed");
}

FileSink::~FileSink() {
  if (file_ == nullptr) return;
  // Last-resort close: the flush may still fail, and a destructor cannot
  // surface an error code — so say so, loudly, instead of silently leaving
  // a torn file that looks complete.
  if (std::fclose(file_) != 0) {
    fail("close failed");
    std::fprintf(stderr, "warning: %s\n", error_.c_str());
  }
}

void FileSink::fail(const char* what) {
  ok_ = false;
  if (!error_.empty()) return;  // keep the FIRST failure
  error_ = "file sink: " + std::string(what) + " (" +
           std::string(std::strerror(errno)) + "): " + path_;
}

void FileSink::write(const std::uint8_t* data, std::size_t n) {
  if (file_ == nullptr) {
    if (error_.empty()) fail("write after close");
    ok_ = false;
    return;
  }
  if (std::fwrite(data, 1, n, file_) != n) fail("short write");
}

void FileSink::flush() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) fail("flush failed");
}

void FileSink::finish() {
  if (file_ == nullptr) return;
  if (std::fclose(file_) != 0) fail("close failed");
  file_ = nullptr;
}

Crc32Filter::Crc32Filter(ByteSink& next) : next_(next), state_(crc32_init()) {}

void Crc32Filter::write(const std::uint8_t* data, std::size_t n) {
  state_ = crc32_update(state_, data, n);
  next_.write(data, n);
}

std::uint32_t Crc32Filter::crc() const { return crc32_final(state_); }

// --- payload primitives ----------------------------------------------------

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  const std::uint64_t u = static_cast<std::uint64_t>(v);
  put_varint(out, (u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::uint64_t Cursor::varint() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (off_ >= size_) {
      throw ReplayError(ErrorKind::kTruncated, off_, "varint cut short");
    }
    const std::uint8_t byte = data_[off_++];
    if (shift == 63 && (byte & 0x7E) != 0) {
      throw ReplayError(ErrorKind::kVarintOverflow, off_ - 1,
                        "varint exceeds 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw ReplayError(ErrorKind::kVarintOverflow, off_, "varint over 10 bytes");
}

std::int64_t Cursor::zigzag() {
  const std::uint64_t u = varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

double Cursor::f64() {
  if (size_ - off_ < 8) {
    throw ReplayError(ErrorKind::kTruncated, off_, "double cut short");
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(data_[off_ + i]) << (8 * i);
  }
  off_ += 8;
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Cursor::str() {
  const std::uint64_t n = varint();
  if (n > size_ - off_) {
    throw ReplayError(ErrorKind::kTruncated, off_, "string cut short");
  }
  std::string s(reinterpret_cast<const char*>(data_ + off_),
                static_cast<std::size_t>(n));
  off_ += static_cast<std::size_t>(n);
  return s;
}

// --- chunk framing ---------------------------------------------------------

ChunkWriter::ChunkWriter(ByteSink& sink) : sink_(sink) {
  sink_.write(kMagic, sizeof kMagic);
  std::vector<std::uint8_t> version;
  put_varint(version, kFormatVersion);
  sink_.write(version.data(), version.size());
}

void ChunkWriter::chunk(std::uint64_t tag,
                        const std::vector<std::uint8_t>& payload) {
  // The CRC covers the framed header too, so a corrupted tag or length is
  // caught as a CRC mismatch rather than decoded as garbage.
  std::vector<std::uint8_t> framed;
  put_varint(framed, tag);
  put_varint(framed, payload.size());
  framed.insert(framed.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(framed.data(), framed.size());
  for (int i = 0; i < 4; ++i) {
    framed.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  sink_.write(framed.data(), framed.size());
}

void ChunkWriter::end() {
  if (ended_) return;
  ended_ = true;
  chunk(kEndTag, {});
  sink_.finish();
}

ChunkReader::ChunkReader(const std::uint8_t* data, std::size_t size)
    : data_(data), size_(size) {
  if (size_ < sizeof kMagic) {
    throw ReplayError(ErrorKind::kTruncated, size_, "stream shorter than magic");
  }
  if (std::memcmp(data_, kMagic, sizeof kMagic) != 0) {
    throw ReplayError(ErrorKind::kBadMagic, 0, "not a wsp-replay stream");
  }
  off_ = sizeof kMagic;
  Cursor header(data_ + off_, size_ - off_);
  try {
    version_ = header.varint();
  } catch (const ReplayError&) {
    throw ReplayError(ErrorKind::kTruncated, off_, "stream ends in version");
  }
  off_ += header.offset();
  if (version_ != kFormatVersion) {
    throw ReplayError(ErrorKind::kVersionSkew, sizeof kMagic,
                      "format version " + std::to_string(version_) +
                          ", this build reads version " +
                          std::to_string(kFormatVersion));
  }
}

std::optional<Chunk> ChunkReader::next() {
  if (done_) return std::nullopt;
  if (off_ >= size_) {
    throw ReplayError(ErrorKind::kTruncated, off_,
                      "stream ends before the end-of-stream chunk");
  }
  const std::size_t frame_start = off_;
  Cursor header(data_ + off_, size_ - off_);
  const std::uint64_t tag = header.varint();
  const std::uint64_t len = header.varint();
  const std::size_t header_size = header.offset();
  if (len > size_ - off_ - header_size ||
      size_ - off_ - header_size - static_cast<std::size_t>(len) < 4) {
    throw ReplayError(ErrorKind::kTruncated, off_,
                      "chunk payload or crc cut short");
  }
  const std::size_t payload_off = off_ + header_size;
  const std::size_t crc_off = payload_off + static_cast<std::size_t>(len);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(data_[crc_off + i]) << (8 * i);
  }
  const std::uint32_t computed =
      crc32(data_ + frame_start, header_size + static_cast<std::size_t>(len));
  if (stored != computed) {
    throw ReplayError(ErrorKind::kCrcMismatch, frame_start,
                      "chunk tag " + std::to_string(tag));
  }
  off_ = crc_off + 4;
  if (tag == kEndTag) {
    done_ = true;
    return std::nullopt;
  }
  Chunk c;
  c.tag = tag;
  c.payload.assign(data_ + payload_off, data_ + crc_off);
  return c;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw ReplayError(ErrorKind::kTruncated, 0, "cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    throw ReplayError(ErrorKind::kTruncated, bytes.size(),
                      "read error on " + path);
  }
  return bytes;
}

}  // namespace wsp::replay
