// Compact, versioned binary record/replay stream (format "wsp-replay-v1").
//
// This is the generic codec layer: it knows nothing about the server engine.
// A stream is a 4-byte magic + varint format version, followed by CRC-framed
// chunks — [tag varint][payload length varint][payload][crc32 LE32] — and a
// mandatory empty end-of-stream chunk (tag 0), so truncation is detected at
// chunk granularity even when it falls exactly on a chunk boundary.  Chunk
// payloads are built from varint / zigzag-delta / bit-exact-double
// primitives, so a typical engine-run record is a few hundred bytes.
//
// Layering follows the retrozip archive/filter idiom: producers write
// through a ByteSink (memory, file, or a CRC-accumulating filter stacked on
// either), consumers pull validated chunks from a ChunkReader and decode
// payloads with a bounds-checked Cursor.  Every malformed input — bad magic,
// version skew, CRC mismatch, truncation, varint overflow — fails loudly
// with a typed ReplayError; no error is reported as "empty stream".
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace wsp::replay {

/// First bytes of every stream: "WSPR", then the format version as varint.
constexpr std::uint8_t kMagic[4] = {'W', 'S', 'P', 'R'};
constexpr std::uint64_t kFormatVersion = 1;

/// Tag of the mandatory final chunk (empty payload).
constexpr std::uint64_t kEndTag = 0;

enum class ErrorKind {
  kTruncated,       ///< stream ends mid-header, mid-chunk or before the end tag
  kBadMagic,        ///< first bytes are not "WSPR"
  kVersionSkew,     ///< format version != kFormatVersion
  kCrcMismatch,     ///< a chunk's CRC-32 frame check failed
  kVarintOverflow,  ///< varint longer than 10 bytes / value > 64 bits
  kMalformed,       ///< structurally invalid payload (decoder-level)
};

const char* to_string(ErrorKind kind);

/// Typed decode failure: kind + byte offset (where known) + detail.
class ReplayError : public std::runtime_error {
 public:
  ReplayError(ErrorKind kind, std::size_t offset, const std::string& detail);

  ErrorKind kind() const { return kind_; }
  std::size_t offset() const { return offset_; }

 private:
  ErrorKind kind_;
  std::size_t offset_;
};

// --- sinks (retrozip-style: filters stack on sinks) ------------------------

/// Byte consumer; write() may be called any number of times, finish() once.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void write(const std::uint8_t* data, std::size_t n) = 0;
  virtual void finish() {}
};

/// Accumulates into an owned buffer.
class VectorSink final : public ByteSink {
 public:
  void write(const std::uint8_t* data, std::size_t n) override;
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Writes through to a stdio file; ok() goes false on the first failure and
/// error() carries a description (path + errno text).  A sink destroyed
/// while still open is closed in the destructor; if that close drops
/// buffered bytes, the failure is reported to stderr — the destructor has
/// nowhere else to put it, but silence would let a torn baseline or trace
/// pass for a complete one.  Callers that need the error programmatically
/// call finish() and check ok()/error() first.
class FileSink final : public ByteSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void write(const std::uint8_t* data, std::size_t n) override;
  void flush();            ///< pushes buffered bytes to the OS (checkpoints)
  void finish() override;  ///< closes; further writes are errors
  bool ok() const { return ok_; }
  /// Empty while ok(); otherwise what failed first, with the path.
  const std::string& error() const { return error_; }

 private:
  void fail(const char* what);

  std::FILE* file_ = nullptr;
  bool ok_ = false;
  std::string path_;
  std::string error_;
};

/// Pass-through filter that accumulates a running CRC-32 of everything
/// written, then forwards unchanged to the next sink.
class Crc32Filter final : public ByteSink {
 public:
  explicit Crc32Filter(ByteSink& next);
  void write(const std::uint8_t* data, std::size_t n) override;
  std::uint32_t crc() const;  ///< CRC-32 of all bytes written so far

 private:
  ByteSink& next_;
  std::uint32_t state_;
};

// --- payload primitives ----------------------------------------------------

/// Unsigned LEB128.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
/// Zigzag-mapped signed value (for deltas).
void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t v);
/// IEEE-754 bit pattern, little-endian — bit-exact round trip.
void put_double(std::vector<std::uint8_t>& out, double v);
/// Length-prefixed byte string.
void put_string(std::vector<std::uint8_t>& out, const std::string& s);

/// Bounds-checked decoder over a payload span; every read throws
/// ReplayError(kTruncated/kVarintOverflow) instead of reading past the end.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Cursor(const std::vector<std::uint8_t>& bytes)
      : Cursor(bytes.data(), bytes.size()) {}

  std::uint64_t varint();
  std::int64_t zigzag();
  double f64();
  std::string str();

  bool done() const { return off_ == size_; }
  std::size_t offset() const { return off_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

// --- chunk framing ---------------------------------------------------------

/// Emits the stream header on construction, then CRC-framed chunks; end()
/// writes the end-of-stream chunk and finishes the sink.
class ChunkWriter {
 public:
  explicit ChunkWriter(ByteSink& sink);
  void chunk(std::uint64_t tag, const std::vector<std::uint8_t>& payload);
  void end();

 private:
  ByteSink& sink_;
  bool ended_ = false;
};

struct Chunk {
  std::uint64_t tag = 0;
  std::vector<std::uint8_t> payload;
};

/// Validates magic + version on construction, then yields CRC-checked
/// chunks; next() returns nullopt once the end chunk has been consumed and
/// throws kTruncated if the stream stops before it.
class ChunkReader {
 public:
  ChunkReader(const std::uint8_t* data, std::size_t size);
  explicit ChunkReader(const std::vector<std::uint8_t>& bytes)
      : ChunkReader(bytes.data(), bytes.size()) {}

  std::optional<Chunk> next();
  std::uint64_t version() const { return version_; }
  /// Bytes consumed so far (after the last next(): the following chunk's
  /// first header byte).  Lets trace scanners report tear positions.
  std::size_t offset() const { return off_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  std::uint64_t version_ = 0;
  bool done_ = false;
};

/// Reads a whole file; throws ReplayError(kTruncated) when unreadable.
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace wsp::replay
