#include "support/rss.h"

#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace wsp::support {

std::uint64_t resident_set_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  // statm fields are in pages: size resident shared text lib data dt.
  unsigned long long size_pages = 0, resident_pages = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::uint64_t>(resident_pages) *
         static_cast<std::uint64_t>(page);
#else
  return 0;
#endif
}

}  // namespace wsp::support
