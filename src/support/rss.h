// Process-level resident-set-size probe (Linux /proc/self/statm).
//
// Strictly informational: host-dependent by nature, so it must never feed a
// deterministic report field or a gated bench metric.  The scale bench
// publishes it next to the modeled memory_per_session as an info-direction
// sanity check — the modeled per-session figure times the session count
// should stay well under what the process actually holds.
#pragma once

#include <cstdint>

namespace wsp::support {

/// Current resident set size in bytes, or 0 when the probe is unavailable
/// (non-Linux hosts, sandboxed /proc).  Never throws.
std::uint64_t resident_set_bytes();

}  // namespace wsp::support
