#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wsp {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.min = s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

std::vector<double> solve_linear(std::vector<std::vector<double>> a,
                                 std::vector<double> b) {
  const std::size_t n = a.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error("solve_linear: singular system");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i][c] * x[c];
    x[i] = acc / a[i][i];
  }
  return x;
}

std::vector<double> least_squares(const std::vector<std::vector<double>>& X,
                                  const std::vector<double>& y) {
  if (X.empty() || X.size() != y.size()) {
    throw std::invalid_argument("least_squares: bad dimensions");
  }
  const std::size_t m = X.size();
  const std::size_t k = X[0].size();
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (X[i].size() != k) throw std::invalid_argument("least_squares: ragged X");
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += X[i][a] * y[i];
      for (std::size_t b = 0; b < k; ++b) xtx[a][b] += X[i][a] * X[i][b];
    }
  }
  // Tiny ridge term keeps near-collinear bases (e.g. 1 and n over a narrow
  // sweep) solvable without visibly changing the fit.
  for (std::size_t a = 0; a < k; ++a) xtx[a][a] += 1e-9;
  return solve_linear(std::move(xtx), std::move(xty));
}

double r_squared(const std::vector<double>& predicted,
                 const std::vector<double>& observed) {
  if (predicted.size() != observed.size() || observed.empty()) return 0.0;
  const Summary s = summarize(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - s.mean) * (observed[i] - s.mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mean_abs_pct_error(const std::vector<double>& predicted,
                          const std::vector<double>& observed) {
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size() && i < observed.size(); ++i) {
    if (observed[i] == 0.0) continue;
    total += std::fabs(predicted[i] - observed[i]) / std::fabs(observed[i]);
    ++n;
  }
  return n == 0 ? 0.0 : 100.0 * total / static_cast<double>(n);
}

}  // namespace wsp
