// Small statistics / linear-algebra toolbox backing the performance
// macro-modeling phase (paper Sec. 3.2): ordinary least squares over
// arbitrary basis functions, plus summary statistics used when reporting
// model quality (R^2, mean absolute percentage error).
#pragma once

#include <cstddef>
#include <vector>

namespace wsp {

/// Summary statistics of a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& xs);

/// Solves the dense linear system A x = b (n x n) by Gaussian elimination
/// with partial pivoting.  Throws std::runtime_error if singular.
std::vector<double> solve_linear(std::vector<std::vector<double>> a,
                                 std::vector<double> b);

/// Ordinary least squares: given rows of basis-function values `X`
/// (m samples x k basis terms) and observations `y` (m), returns the k
/// coefficients minimizing ||X c - y||^2 via the normal equations.
std::vector<double> least_squares(const std::vector<std::vector<double>>& X,
                                  const std::vector<double>& y);

/// Coefficient of determination for predictions vs observations.
double r_squared(const std::vector<double>& predicted,
                 const std::vector<double>& observed);

/// Mean absolute percentage error (in percent), ignoring observations == 0.
double mean_abs_pct_error(const std::vector<double>& predicted,
                          const std::vector<double>& observed);

}  // namespace wsp
