#include "support/threadpool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "support/trace.h"

namespace wsp {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    WSP_TRACE_COUNTER("threadpool", "queue_depth",
                      static_cast<double>(queue_.size()));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    WSP_TRACE_COUNTER("threadpool", "queue_depth",
                      static_cast<double>(queue_.size()));
    WSP_TRACE_COUNTER("threadpool", "active_workers",
                      static_cast<double>(active_));
    lock.unlock();
    task();
    lock.lock();
    --active_;
    WSP_TRACE_COUNTER("threadpool", "active_workers",
                      static_cast<double>(active_));
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& body) {
  for (std::size_t i = begin; i < end; ++i) body(i);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = std::min<std::size_t>(pool.size(), n);
  if (workers <= 1) {
    serial_for(begin, end, body);
    return;
  }

  // Shared iteration cursor plus a private completion latch, so nested /
  // concurrent parallel_for calls on one pool don't wait on each other.
  struct State {
    std::atomic<std::size_t> next;
    std::size_t end;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  } state;
  state.next = begin;
  state.end = end;
  state.remaining = workers;

  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&state, &body] {
      for (;;) {
        const std::size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= state.end) break;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state.mutex);
          if (!state.error) state.error = std::current_exception();
          // Park the cursor past the end so peers stop claiming work.
          state.next.store(state.end, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(state.mutex);
      if (--state.remaining == 0) state.done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.remaining == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace wsp
