// Fixed-size thread pool powering the parallel design-space exploration
// engine: the paper's phase (ii) evaluates 450+ modular-exponentiation
// configurations and phases (iii)-(iv) sweep per-routine A-D curves —
// embarrassingly parallel work where each item owns its state (its own
// ModexpEngine / ISS Machine) and results are merged deterministically by
// item index, so rankings are identical for any thread count.
//
// Deliberately work-stealing-free: a single locked queue is more than
// enough when each work item is thousands of host instructions (a macro-
// model estimate) to millions (an ISS run), and it keeps the determinism
// argument trivial.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace wsp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads = hardware_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task.  Tasks must not throw out of the pool — wrap them
  /// (parallel_for does) if the body can throw.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static unsigned hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for every i in [begin, end) across the pool and blocks until
/// all iterations finish.  Iterations are claimed dynamically (one shared
/// cursor), so callers must not rely on any execution order; determinism
/// comes from writing results by index.  The first exception thrown by any
/// iteration is rethrown here (remaining iterations are abandoned).
/// Must be called from a thread outside the pool (it blocks the caller).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Serial fallback used by the `threads` convenience overloads.
void serial_for(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& body);

/// Maps fn over items, returning results in item order regardless of which
/// worker computed which element.  R must be default-constructible.
template <typename T, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, const T&>> {
  std::vector<std::invoke_result_t<Fn&, const T&>> out(items.size());
  parallel_for(pool, 0, items.size(),
               [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

/// Convenience overload: `threads <= 1` runs inline (no pool, no worker
/// threads); otherwise a pool of `threads` workers is created for the call.
template <typename T, typename Fn>
auto parallel_map(unsigned threads, const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, const T&>> {
  if (threads <= 1) {
    std::vector<std::invoke_result_t<Fn&, const T&>> out(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) out[i] = fn(items[i]);
    return out;
  }
  ThreadPool pool(threads);
  return parallel_map(pool, items, std::forward<Fn>(fn));
}

}  // namespace wsp
