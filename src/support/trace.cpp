#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "support/json.h"

namespace wsp::trace {

#if WSP_TRACE_ENABLED

namespace detail {
std::atomic<bool> g_active{false};
}

namespace {

struct Session {
  std::mutex mutex;
  std::vector<Event> events;
  Clock clock = Clock::kWall;
  std::chrono::steady_clock::time_point t0;
  std::uint64_t logical_ticks = 0;
  std::uint32_t next_tid = 0;
};

Session& session() {
  static Session s;
  return s;
}

/// Stable small id per host thread, in registration order.  Under
/// Clock::kLogical single-threaded tests this is deterministic; concurrent
/// registration order is scheduling-dependent, which is why tid is part of
/// the structural digest only for the sim domain-independent single-thread
/// uses — multi-thread determinism is checked over (category, name, value)
/// multisets instead (see test_trace.cpp).
std::uint32_t host_tid(Session& s) {
  thread_local std::uint32_t tid = 0xffffffffu;
  if (tid == 0xffffffffu) tid = s.next_tid++;
  return tid;
}

void record(Phase phase, const char* category, std::string name, double value,
            bool sim_domain, std::uint64_t sim_ts, std::uint32_t sim_tid) {
  if (!detail::g_active.load(std::memory_order_relaxed)) return;
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  // Re-check under the lock: stop() clears the flag before draining.
  if (!detail::g_active.load(std::memory_order_relaxed)) return;
  Event e;
  e.phase = phase;
  e.category = category;
  e.name = std::move(name);
  e.value = value;
  e.sim_domain = sim_domain;
  if (sim_domain) {
    e.ts = sim_ts;
    e.tid = sim_tid;
  } else {
    e.tid = host_tid(s);
    if (s.clock == Clock::kLogical) {
      e.ts = s.logical_ticks++;
    } else {
      e.ts = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - s.t0)
              .count());
    }
  }
  s.events.push_back(std::move(e));
}

}  // namespace

void start(Clock clock) {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.clear();
  s.clock = clock;
  s.t0 = std::chrono::steady_clock::now();
  s.logical_ticks = 0;
  detail::g_active.store(true, std::memory_order_release);
}

std::vector<Event> stop() {
  Session& s = session();
  detail::g_active.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<Event> out;
  out.swap(s.events);
  return out;
}

void begin(const char* category, std::string name) {
  record(Phase::kBegin, category, std::move(name), 0.0, false, 0, 0);
}

void end(const char* category, std::string name) {
  record(Phase::kEnd, category, std::move(name), 0.0, false, 0, 0);
}

void counter(const char* category, std::string name, double value) {
  record(Phase::kCounter, category, std::move(name), value, false, 0, 0);
}

void instant(const char* category, std::string name) {
  record(Phase::kInstant, category, std::move(name), 0.0, false, 0, 0);
}

void instant(const char* category, std::string name, double value) {
  record(Phase::kInstant, category, std::move(name), value, false, 0, 0);
}

void emit_sim(Phase phase, const char* category, std::string name,
              std::uint64_t cycles, std::uint32_t sim_tid, double value) {
  record(phase, category, std::move(name), value, true, cycles, sim_tid);
}

#endif  // WSP_TRACE_ENABLED

// The export/digest helpers are compiled unconditionally: a no-trace build
// still links trace2txt and the tests that validate pre-recorded files.

std::string to_chrome_json(const std::vector<Event>& events) {
  json::Value doc = json::Value::object();
  doc["displayTimeUnit"] = json::Value("ns");
  json::Value arr = json::Value::array();

  // Process-name metadata so Perfetto labels the two clock domains.
  for (const auto& [pid, label] :
       {std::pair<int, const char*>{1, "host"}, {2, "xr32-sim-cycles"}}) {
    json::Value meta = json::Value::object();
    meta["name"] = json::Value("process_name");
    meta["ph"] = json::Value("M");
    meta["pid"] = json::Value(pid);
    meta["tid"] = json::Value(0);
    json::Value args = json::Value::object();
    args["name"] = json::Value(label);
    meta["args"] = std::move(args);
    arr.push_back(std::move(meta));
  }

  for (const Event& e : events) {
    json::Value o = json::Value::object();
    o["name"] = json::Value(e.name);
    o["cat"] = json::Value(std::string(e.category));
    o["ph"] = json::Value(std::string(1, static_cast<char>(e.phase)));
    o["pid"] = json::Value(e.sim_domain ? 2 : 1);
    o["tid"] = json::Value(static_cast<std::uint64_t>(e.tid));
    // Chrome's "ts" unit is microseconds.  Host events carry ns (or logical
    // ticks); sim events carry cycles.  Both are exported as 1 unit = 1 us
    // to keep integer timestamps; displayTimeUnit only affects labels.
    o["ts"] = json::Value(e.ts);
    if (e.phase == Phase::kCounter ||
        (e.phase == Phase::kInstant && e.value != 0.0)) {
      json::Value args = json::Value::object();
      args["value"] = json::Value(e.value);
      o["args"] = std::move(args);
    }
    if (e.phase == Phase::kInstant) o["s"] = json::Value("t");
    arr.push_back(std::move(o));
  }
  doc["traceEvents"] = std::move(arr);
  return doc.dump(1);
}

bool write_chrome_json(const std::vector<Event>& events, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::string text = to_chrome_json(events);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

std::uint64_t structural_digest(const std::vector<Event>& events) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto mix_str = [&](const char* s) {
    while (*s) mix_byte(static_cast<unsigned char>(*s++));
    mix_byte(0);
  };
  for (const Event& e : events) {
    mix_byte(static_cast<unsigned char>(e.phase));
    mix_byte(e.sim_domain ? 1 : 0);
    mix_str(e.category);
    mix_str(e.name.c_str());
    if (e.phase == Phase::kCounter ||
        (e.phase == Phase::kInstant && e.value != 0.0)) {
      // Counter (and valued-instant) payloads are deterministic (cycle
      // counts, queue depths, fault coordinates); hash the exact bit
      // pattern.  Plain instants carry 0.0 and hash nothing, so digests of
      // pre-existing traces are unchanged.
      std::uint64_t bits;
      static_assert(sizeof bits == sizeof e.value);
      __builtin_memcpy(&bits, &e.value, sizeof bits);
      for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(bits >> (8 * i)));
    }
  }
  return h;
}

}  // namespace wsp::trace
