// Cross-layer structured event tracing (spans + counters) with Chrome-trace
// JSON export (chrome://tracing / Perfetto).
//
// Design constraints, in order:
//   1. Zero overhead when compiled out: configure with -DWSP_TRACE=OFF and
//      every WSP_TRACE_* macro expands to nothing.
//   2. Negligible overhead when compiled in but idle (the default): every
//      entry point is gated on one relaxed atomic load; no session is ever
//      started unless someone calls trace::start().
//   3. Deterministic structure: the *sequence* of event names, categories
//      and counter values for a fixed seed is identical run-to-run; only
//      timestamps vary.  trace::structural_digest() hashes exactly the
//      deterministic part, which is what the tier-2 trace tests compare.
//
// Two clock domains map to two Chrome-trace "processes":
//   * pid 1 "host"  — wall-clock ns since session start (collapsed to a
//     deterministic logical tick count in Clock::kLogical mode);
//   * pid 2 "xr32"  — simulated cycles, supplied by the caller (the ISS
//     Profiler emits function spans on the simulated timeline, so Perfetto
//     shows the paper's Fig. 4 call tree as a flame graph over cycles).
#pragma once

#ifndef WSP_TRACE_ENABLED
#define WSP_TRACE_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wsp::trace {

enum class Phase : char {
  kBegin = 'B',
  kEnd = 'E',
  kCounter = 'C',
  kInstant = 'i',
};

/// Host-domain timestamp source for a session.
enum class Clock {
  kWall,     ///< steady_clock ns since start() — real profiles
  kLogical,  ///< per-event sequence number — bit-deterministic tests
};

struct Event {
  Phase phase;
  const char* category;  ///< static-storage string supplied by the call site
  std::string name;
  std::uint64_t ts = 0;   ///< host: ns (or logical tick); sim: cycles
  std::uint32_t tid = 0;  ///< host: registration order; sim: caller-chosen
  bool sim_domain = false;
  double value = 0.0;  ///< counters only
};

#if WSP_TRACE_ENABLED

namespace detail {
extern std::atomic<bool> g_active;
}

/// True while a session is collecting.  The hot-path gate: all emit helpers
/// check it themselves, but call sites that must build an event name can
/// use it to skip the formatting work too.
inline bool enabled() {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// Starts collecting (idempotent: restarting discards prior events).
void start(Clock clock = Clock::kWall);
/// Stops collecting and returns every event in emission order.
std::vector<Event> stop();
/// True between start() and stop() (same as enabled(); named for intent).
inline bool active() { return enabled(); }

/// Host-domain emission.  No-ops when no session is active.
void begin(const char* category, std::string name);
void end(const char* category, std::string name);
void counter(const char* category, std::string name, double value);
void instant(const char* category, std::string name);
/// Instant event carrying a value (e.g. a retry attempt number or a fault's
/// record index) — exported under args.value like a counter sample, but
/// rendered as a point-in-time marker.
void instant(const char* category, std::string name, double value);

/// Sim-domain emission with an explicit timestamp in simulated cycles.
/// `sim_tid` distinguishes simulated machines (0 is fine for one machine).
void emit_sim(Phase phase, const char* category, std::string name,
              std::uint64_t cycles, std::uint32_t sim_tid = 0,
              double value = 0.0);

/// RAII host-domain span.
class Span {
 public:
  Span(const char* category, std::string name)
      : category_(category), name_(std::move(name)), armed_(enabled()) {
    if (armed_) begin(category_, name_);
  }
  ~Span() {
    if (armed_) end(category_, name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* category_;
  std::string name_;
  bool armed_;  ///< emit the end only if the begin was emitted
};

/// Serializes events as a Chrome-trace JSON document (the "traceEvents"
/// array-of-objects form with displayTimeUnit).  Host timestamps are
/// converted from ns to the microsecond "ts" unit Perfetto expects; sim
/// cycles are exported 1 cycle = 1 us under the separate "xr32" pid.
std::string to_chrome_json(const std::vector<Event>& events);

/// Writes to_chrome_json() to `path`; returns false on I/O failure.
bool write_chrome_json(const std::vector<Event>& events, const std::string& path);

/// FNV-1a hash over the deterministic event fields (phase, category, name,
/// tid, domain, counter value) in emission order — timestamps excluded.
/// Two runs with the same seed must produce equal digests.
std::uint64_t structural_digest(const std::vector<Event>& events);

#else  // !WSP_TRACE_ENABLED — the whole API compiles to nothing

inline bool enabled() { return false; }
inline bool active() { return false; }
inline void start(Clock = Clock::kWall) {}
inline std::vector<Event> stop() { return {}; }
inline void begin(const char*, std::string) {}
inline void end(const char*, std::string) {}
inline void counter(const char*, std::string, double) {}
inline void instant(const char*, std::string) {}
inline void instant(const char*, std::string, double) {}
inline void emit_sim(Phase, const char*, std::string, std::uint64_t,
                     std::uint32_t = 0, double = 0.0) {}

class Span {
 public:
  Span(const char*, std::string) {}
};

std::string to_chrome_json(const std::vector<Event>& events);
bool write_chrome_json(const std::vector<Event>& events, const std::string& path);
std::uint64_t structural_digest(const std::vector<Event>& events);

#endif  // WSP_TRACE_ENABLED

}  // namespace wsp::trace

// Call-site macros: compile out entirely under -DWSP_TRACE=OFF.
#if WSP_TRACE_ENABLED
#define WSP_TRACE_CONCAT2(a, b) a##b
#define WSP_TRACE_CONCAT(a, b) WSP_TRACE_CONCAT2(a, b)
/// Scoped span; `name` may be any expression convertible to std::string.
/// The expression is evaluated unconditionally — keep it cheap, or guard
/// formatted names with trace::enabled() at the call site.
#define WSP_TRACE_SPAN(category, name) \
  ::wsp::trace::Span WSP_TRACE_CONCAT(wsp_trace_span_, __LINE__)(category, name)
#define WSP_TRACE_COUNTER(category, name, value)               \
  do {                                                         \
    if (::wsp::trace::enabled())                               \
      ::wsp::trace::counter((category), (name), (value));      \
  } while (0)
#define WSP_TRACE_INSTANT(category, name)                      \
  do {                                                         \
    if (::wsp::trace::enabled())                               \
      ::wsp::trace::instant((category), (name));               \
  } while (0)
#define WSP_TRACE_INSTANT_V(category, name, value)               \
  do {                                                           \
    if (::wsp::trace::enabled())                                 \
      ::wsp::trace::instant((category), (name), (value));        \
  } while (0)
#else
// The sizeof operands are unevaluated: arguments cost nothing at runtime
// but still count as "used" for -Wunused warnings.
#define WSP_TRACE_SPAN(category, name) \
  do {                                 \
    (void)sizeof(category);            \
    (void)sizeof(name);                \
  } while (0)
#define WSP_TRACE_COUNTER(category, name, value) \
  do {                                           \
    (void)sizeof(category);                      \
    (void)sizeof(name);                          \
    (void)sizeof(value);                         \
  } while (0)
#define WSP_TRACE_INSTANT(category, name) \
  do {                                    \
    (void)sizeof(category);               \
    (void)sizeof(name);                   \
  } while (0)
#define WSP_TRACE_INSTANT_V(category, name, value) \
  do {                                             \
    (void)sizeof(category);                        \
    (void)sizeof(name);                            \
    (void)sizeof(value);                           \
  } while (0)
#endif
