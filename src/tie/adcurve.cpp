#include "tie/adcurve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tie/area.h"

namespace wsp::tie {

void InstrCatalog::add(const std::string& name, double area,
                       const std::string& family, int rank) {
  info_[name] = Info{area, family, rank};
}

double InstrCatalog::area_of(const std::string& name) const {
  const auto it = info_.find(name);
  if (it == info_.end()) throw std::out_of_range("InstrCatalog: unknown " + name);
  return it->second.area;
}

double InstrCatalog::set_area(const std::set<std::string>& instrs) const {
  double a = 0.0;
  for (const std::string& name : instrs) a += area_of(name);
  return a;
}

std::set<std::string> InstrCatalog::reduce(const std::set<std::string>& instrs) const {
  // Highest rank per family wins; family-less members pass through.
  std::map<std::string, std::pair<int, std::string>> best;  // family -> (rank, name)
  std::set<std::string> out;
  for (const std::string& name : instrs) {
    const auto it = info_.find(name);
    if (it == info_.end()) throw std::out_of_range("InstrCatalog: unknown " + name);
    const Info& info = it->second;
    if (info.family.empty()) {
      out.insert(name);
      continue;
    }
    auto [bit, inserted] = best.try_emplace(info.family, info.rank, name);
    if (!inserted && info.rank > bit->second.first) {
      bit->second = {info.rank, name};
    }
  }
  for (const auto& [family, entry] : best) out.insert(entry.second);
  return out;
}

bool InstrCatalog::covers(const std::set<std::string>& available,
                          const std::set<std::string>& needed) const {
  // Precompute the best available rank per family.
  std::map<std::string, int> avail_rank;
  std::set<std::string> avail_exact;
  for (const std::string& name : available) {
    const auto it = info_.find(name);
    if (it == info_.end()) throw std::out_of_range("InstrCatalog: unknown " + name);
    if (it->second.family.empty()) {
      avail_exact.insert(name);
    } else {
      int& r = avail_rank[it->second.family];
      r = std::max(r, it->second.rank);
    }
  }
  for (const std::string& name : needed) {
    const auto it = info_.find(name);
    if (it == info_.end()) throw std::out_of_range("InstrCatalog: unknown " + name);
    const Info& info = it->second;
    if (info.family.empty()) {
      if (!avail_exact.count(name)) return false;
    } else {
      const auto rit = avail_rank.find(info.family);
      if (rit == avail_rank.end() || rit->second < info.rank) return false;
    }
  }
  return true;
}

InstrCatalog default_catalog() {
  InstrCatalog cat;
  const AreaModel& am = default_area_model();
  cat.add("ur_load", am.ur_transfer(), "", 0);
  cat.add("ur_store", am.ur_transfer(), "", 0);
  for (int k : {2, 4, 8, 16}) {
    cat.add("add_" + std::to_string(k), am.wide_adder(k), "add", k);
    cat.add("sub_" + std::to_string(k), am.wide_adder(k), "sub", k);
  }
  for (int m : {1, 2, 4, 8}) {
    cat.add("mac_" + std::to_string(m), am.mac_unit(m), "mac", m);
  }
  cat.add("des_ip_hi", am.des_perm_half(), "", 0);
  cat.add("des_ip_lo", am.des_perm_half(), "", 0);
  cat.add("des_fp_hi", am.des_perm_half(), "", 0);
  cat.add("des_fp_lo", am.des_perm_half(), "", 0);
  cat.add("des_round", am.des_round_unit(), "", 0);
  cat.add("aes_sbox4", am.aes_sbox4_unit(), "", 0);
  cat.add("aes_mixcol", am.aes_mixcol_unit(), "", 0);
  cat.add("aes_ld_state", am.ur_transfer(), "", 0);
  cat.add("aes_st_state", am.ur_transfer(), "", 0);
  cat.add("aes_round", am.aes_round_unit(), "", 0);
  cat.add("aes_final", am.control, "", 0);
  return cat;
}

void ADCurve::pareto_prune() {
  std::vector<ADPoint> kept;
  for (const ADPoint& p : points_) {
    bool dominated = false;
    for (const ADPoint& q : points_) {
      if (&p == &q) continue;
      const bool q_no_worse = q.area <= p.area && q.cycles <= p.cycles;
      const bool q_better = q.area < p.area || q.cycles < p.cycles;
      if (q_no_worse && q_better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(p);
  }
  // Deduplicate identical (area, cycles) pairs.
  std::sort(kept.begin(), kept.end(), [](const ADPoint& a, const ADPoint& b) {
    return a.area != b.area ? a.area < b.area : a.cycles < b.cycles;
  });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const ADPoint& a, const ADPoint& b) {
                           return a.area == b.area && a.cycles == b.cycles;
                         }),
             kept.end());
  points_ = std::move(kept);
}

double ADCurve::best_cycles_with(const std::set<std::string>& available,
                                 const InstrCatalog& catalog) const {
  double best = std::numeric_limits<double>::infinity();
  for (const ADPoint& p : points_) {
    if (catalog.covers(available, p.instrs)) best = std::min(best, p.cycles);
  }
  if (!std::isfinite(best)) {
    throw std::logic_error("ADCurve: no base point (empty-set point) present");
  }
  return best;
}

ADCurve ADCurve::combine(double local_cycles,
                         const std::vector<std::pair<double, const ADCurve*>>& children,
                         const InstrCatalog& catalog, CombineStats* stats) {
  // Enumerate the Cartesian product of child points, collecting the set of
  // distinct dominance-reduced instruction unions.
  std::vector<std::set<std::string>> unions;
  unions.emplace_back();  // start from the empty union
  std::size_t cartesian = 1;
  for (const auto& [calls, curve] : children) {
    (void)calls;
    cartesian *= std::max<std::size_t>(curve->points().size(), 1);
    std::vector<std::set<std::string>> next;
    for (const auto& u : unions) {
      for (const ADPoint& p : curve->points()) {
        std::set<std::string> merged = u;
        merged.insert(p.instrs.begin(), p.instrs.end());
        next.push_back(catalog.reduce(merged));
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    unions = std::move(next);
  }

  ADCurve out;
  for (const auto& u : unions) {
    ADPoint p;
    p.instrs = u;
    p.area = catalog.set_area(u);
    p.cycles = local_cycles;
    for (const auto& [calls, curve] : children) {
      p.cycles += calls * curve->best_cycles_with(u, catalog);
    }
    out.add(std::move(p));
  }
  if (stats) {
    stats->cartesian_points = cartesian;
    stats->reduced_points = out.points().size();
  }
  return out;
}

}  // namespace wsp::tie
