// Area-Delay (A-D) curves and their combination — the data structure at the
// center of the paper's custom-instruction selection methodology
// (Sec. 3.3/3.4, Figs. 5 and 6).
//
// Each point pairs an achievable cycle count with the silicon area of the
// custom-instruction set that achieves it.  Curves are combined bottom-up
// through the call graph: the Cartesian product of child points is taken,
// instruction sets are unioned (load/store-style instructions shared), and
// the product is collapsed by *dominance* (add_4 subsumes add_2: same
// function, equal or better performance) before Pareto pruning at the root.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace wsp::tie {

/// Knowledge about each custom instruction needed by curve algebra:
/// its area and its dominance family (instructions within one family are
/// totally ordered by rank; higher rank performs every lower-rank job at
/// equal or better speed).
class InstrCatalog {
 public:
  void add(const std::string& name, double area, const std::string& family,
           int rank);

  double area_of(const std::string& name) const;
  /// Total area of a set (each instruction counted once — "sharing").
  double set_area(const std::set<std::string>& instrs) const;

  /// Collapses a set by dominance: keeps only the highest-ranked member of
  /// each family (family-less instructions are kept as-is).
  std::set<std::string> reduce(const std::set<std::string>& instrs) const;

  /// True if every instruction in `needed` is provided by `available`,
  /// where a higher-ranked family member provides all lower ranks.
  bool covers(const std::set<std::string>& available,
              const std::set<std::string>& needed) const;

  bool known(const std::string& name) const { return info_.count(name) != 0; }

 private:
  struct Info {
    double area = 0.0;
    std::string family;  // empty = no family (only exact match covers)
    int rank = 0;
  };
  std::map<std::string, Info> info_;
};

/// The catalog for the instructions in tie/custom.h.
InstrCatalog default_catalog();

struct ADPoint {
  double area = 0.0;
  double cycles = 0.0;
  std::set<std::string> instrs;  ///< custom instructions this point requires
};

class ADCurve {
 public:
  ADCurve() = default;
  explicit ADCurve(std::vector<ADPoint> points) : points_(std::move(points)) {}

  void add(ADPoint p) { points_.push_back(std::move(p)); }
  const std::vector<ADPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Removes points that are weakly dominated in (area, cycles) by another
  /// point (standard Pareto pruning; applied at the call-graph root).
  void pareto_prune();

  /// Best cycle count achievable when the hardware provides exactly the
  /// instruction set `available` (dominance-aware).  The curve must contain
  /// a base point with an empty instruction set.
  double best_cycles_with(const std::set<std::string>& available,
                          const InstrCatalog& catalog) const;

  /// Statistics from the last combine() call (for reporting the Fig. 6
  /// reduction: raw Cartesian points vs. surviving reduced points).
  struct CombineStats {
    std::size_t cartesian_points = 0;
    std::size_t reduced_points = 0;
  };

  /// Combines child curves per Eq. (1):
  ///   cycles(f) = local_cycles + sum_i calls_i * cycles(child_i)
  /// taking the Cartesian product of child design points, unioning and
  /// dominance-reducing instruction sets, and re-costing each child at the
  /// reduced set.  Child cycle values are per call.
  static ADCurve combine(double local_cycles,
                         const std::vector<std::pair<double, const ADCurve*>>& children,
                         const InstrCatalog& catalog,
                         CombineStats* stats = nullptr);

 private:
  std::vector<ADPoint> points_;
};

}  // namespace wsp::tie
