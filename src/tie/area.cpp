#include "tie/area.h"

namespace wsp::tie {

double AreaModel::wide_adder(int k) const {
  // k adders + 3k user-register words (two operand chunks + result chunk)
  // amortized + carry-select glue.
  return k * adder32 + 3 * k * reg32 / 2 + control;
}

double AreaModel::mac_unit(int m) const {
  // m MAC slices + accumulator registers + carry chain.
  return m * mac32 + 2 * m * reg32 + control;
}

double AreaModel::des_round_unit() const {
  // 8 S-boxes of 64x4 bits, E-expansion and P-permutation are wiring,
  // plus the subkey fetch path.
  return 8 * lut(64 * 4) + perm_unit + wide_bus / 2 + control;
}

double AreaModel::aes_round_unit() const {
  return 16 * lut(256 * 8) + 4 * (4 * 140.0) + 4 * reg32 + wide_bus + control;
}

const AreaModel& default_area_model() {
  static const AreaModel model;
  return model;
}

}  // namespace wsp::tie
