// Parametric gate-area model for custom-instruction datapaths.
//
// Stand-in for the paper's logic-synthesis flow (Synopsys DC + NEC CB-11
// 0.18um library): each datapath component carries a grid-count estimate,
// calibrated so that the A-D curves land in the same 10^3..10^4 area range
// as the paper's Fig. 5.  Selection only depends on relative areas.
#pragma once

#include <cstdint>

namespace wsp::tie {

struct AreaModel {
  // Component costs in "grids".
  double adder32 = 550.0;        ///< 32-bit carry-lookahead adder
  double mac32 = 3400.0;         ///< 32x32->64 multiply-accumulate slice
  double reg32 = 90.0;           ///< 32-bit pipeline/user register
  double lut_bits_per_grid = 2.2;///< ROM/LUT density: bits per grid
  double wide_bus = 420.0;       ///< 64-bit load/store path into UR file
  double perm_unit = 260.0;      ///< 64-bit hardwired permutation network
  double control = 180.0;        ///< decode + sequencing overhead per instr

  double lut(double bits) const { return bits / lut_bits_per_grid; }

  /// k-word parallel adder instruction (add_k / sub_k).
  double wide_adder(int k) const;
  /// m-MAC multiply-accumulate instruction (mac_m).
  double mac_unit(int m) const;
  /// UR load/store path (shared by every UR-based instruction).
  double ur_transfer() const { return wide_bus + control; }
  /// DES round unit: E-expansion wiring + 8 S-boxes (64x4 bits each) + P.
  double des_round_unit() const;
  /// DES IP/FP permutation half (one 32-bit output slice).
  double des_perm_half() const { return perm_unit / 2 + control; }
  /// AES S-box word unit: 4 parallel 256x8 LUTs.
  double aes_sbox4_unit() const { return 4 * lut(256 * 8) + control; }
  /// AES MixColumns unit: GF(2^8) xtime/xor network for one column.
  double aes_mixcol_unit() const { return 4 * 140.0 + control; }
  /// Full AES round unit: 16 S-boxes + 4 MixColumns + key-add + state regs.
  double aes_round_unit() const;
};

/// The model instance used throughout the repository.
const AreaModel& default_area_model();

}  // namespace wsp::tie
