#include "tie/candidates.h"

#include <stdexcept>

#include "tie/custom.h"

namespace wsp::tie {

std::vector<RoutineCandidates> mpn_routine_candidates() {
  std::vector<RoutineCandidates> out;
  {
    RoutineCandidates rc;
    rc.routine = "mpn_add_n";
    rc.alternatives.push_back({});
    for (int k : {2, 4, 8, 16}) {
      rc.alternatives.push_back({"ur_load", "ur_store", "add_" + std::to_string(k)});
    }
    out.push_back(std::move(rc));
  }
  {
    RoutineCandidates rc;
    rc.routine = "mpn_sub_n";
    rc.alternatives.push_back({});
    for (int k : {2, 4, 8, 16}) {
      rc.alternatives.push_back({"ur_load", "ur_store", "sub_" + std::to_string(k)});
    }
    out.push_back(std::move(rc));
  }
  {
    RoutineCandidates rc;
    rc.routine = "mpn_addmul_1";
    rc.alternatives.push_back({});
    for (int m : {1, 2, 4, 8}) {
      rc.alternatives.push_back({"ur_load", "ur_store", "mac_" + std::to_string(m)});
    }
    out.push_back(std::move(rc));
  }
  {
    RoutineCandidates rc;
    rc.routine = "mpn_mul_1";
    rc.alternatives.push_back({});
    for (int m : {1, 2, 4, 8}) {
      rc.alternatives.push_back({"ur_load", "ur_store", "mac_" + std::to_string(m)});
    }
    out.push_back(std::move(rc));
  }
  return out;
}

std::vector<RoutineCandidates> privkey_routine_candidates() {
  std::vector<RoutineCandidates> out;
  {
    RoutineCandidates rc;
    rc.routine = "des_block";
    rc.alternatives.push_back({});
    rc.alternatives.push_back({"des_round"});
    rc.alternatives.push_back(
        {"des_round", "des_ip_hi", "des_ip_lo", "des_fp_hi", "des_fp_lo"});
    out.push_back(std::move(rc));
  }
  {
    RoutineCandidates rc;
    rc.routine = "aes_block";
    rc.alternatives.push_back({});
    rc.alternatives.push_back({"aes_sbox4"});
    rc.alternatives.push_back({"aes_sbox4", "aes_mixcol"});
    rc.alternatives.push_back(
        {"aes_ld_state", "aes_st_state", "aes_round", "aes_final"});
    out.push_back(std::move(rc));
  }
  return out;
}

sim::CustomSet custom_set_for(const std::set<std::string>& names) {
  sim::CustomSet set;
  for (const std::string& name : names) {
    if (name == "ur_load") set.add(make_ur_load());
    else if (name == "ur_store") set.add(make_ur_store());
    else if (name == "add_2") set.add(make_add_k(2));
    else if (name == "add_4") set.add(make_add_k(4));
    else if (name == "add_8") set.add(make_add_k(8));
    else if (name == "add_16") set.add(make_add_k(16));
    else if (name == "sub_2") set.add(make_sub_k(2));
    else if (name == "sub_4") set.add(make_sub_k(4));
    else if (name == "sub_8") set.add(make_sub_k(8));
    else if (name == "sub_16") set.add(make_sub_k(16));
    else if (name == "mac_1") set.add(make_mac_m(1));
    else if (name == "mac_2") set.add(make_mac_m(2));
    else if (name == "mac_4") set.add(make_mac_m(4));
    else if (name == "mac_8") set.add(make_mac_m(8));
    else if (name == "des_ip_hi") set.add(make_des_ip_hi());
    else if (name == "des_ip_lo") set.add(make_des_ip_lo());
    else if (name == "des_fp_hi") set.add(make_des_fp_hi());
    else if (name == "des_fp_lo") set.add(make_des_fp_lo());
    else if (name == "des_round") set.add(make_des_round());
    else if (name == "aes_sbox4") set.add(make_aes_sbox4());
    else if (name == "aes_mixcol") set.add(make_aes_mixcol());
    else if (name == "aes_ld_state") set.add(make_aes_ld_state());
    else if (name == "aes_st_state") set.add(make_aes_st_state());
    else if (name == "aes_round") set.add(make_aes_round());
    else if (name == "aes_final") set.add(make_aes_final());
    else throw std::invalid_argument("custom_set_for: unknown instruction " + name);
  }
  return set;
}

}  // namespace wsp::tie
