// Candidate custom-instruction alternatives per library routine — the
// interactive output of the paper's custom-instruction formulation phase
// (Sec. 3.3): for each leaf routine of the call graph, a list of
// alternative instruction sets (including the zero-area original) whose
// measured cycle counts form the routine's A-D curve.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "sim/custom.h"
#include "tie/adcurve.h"

namespace wsp::tie {

struct RoutineCandidates {
  std::string routine;  ///< library-routine name, e.g. "mpn_add_n"
  /// Alternative instruction sets, first entry the empty set (original SW).
  std::vector<std::set<std::string>> alternatives;
};

/// Candidates for the multi-precision kernels (paper Fig. 5: mpn_add_n with
/// 2/4/8/16-adder variants, mpn_addmul_1 with 1/2/4-MAC variants).
std::vector<RoutineCandidates> mpn_routine_candidates();

/// Candidates for the private-key kernels (DES round/permutation units,
/// AES partial units and the full round unit).
std::vector<RoutineCandidates> privkey_routine_candidates();

/// Builds a CustomSet containing the named instructions.
sim::CustomSet custom_set_for(const std::set<std::string>& names);

}  // namespace wsp::tie
