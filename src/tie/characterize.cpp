#include "tie/characterize.h"

#include <stdexcept>

#include "kernels/mpn_kernels.h"
#include "support/random.h"
#include "support/threadpool.h"

namespace wsp::tie {

namespace {

// Derives the kernel-emission config from a candidate instruction set:
// add_k / sub_k members select the wide-adder width, mac_m members the MAC
// width (the emitters use whichever their routine needs).
kernels::MpnTieConfig tie_config_for(const std::set<std::string>& instrs) {
  kernels::MpnTieConfig cfg;
  for (const std::string& name : instrs) {
    const auto split = name.rfind('_');
    if (split == std::string::npos || split + 1 >= name.size()) continue;
    const std::string family = name.substr(0, split);
    if (family != "add" && family != "sub" && family != "mac") continue;
    const int width = std::stoi(name.substr(split + 1));
    if (family == "mac") {
      cfg.mac_width = width;
    } else {
      cfg.add_width = width;
    }
  }
  return cfg;
}

struct WorkItem {
  std::size_t routine = 0;      ///< index into `routines`
  std::size_t alternative = 0;  ///< index into alternatives
};

}  // namespace

std::map<std::string, ADCurve> measure_mpn_adcurves(
    const std::vector<RoutineCandidates>& routines,
    const AdMeasureOptions& options) {
  const auto catalog = default_catalog();

  std::vector<WorkItem> items;
  for (std::size_t r = 0; r < routines.size(); ++r) {
    for (std::size_t a = 0; a < routines[r].alternatives.size(); ++a) {
      items.push_back({r, a});
    }
  }

  // One ISS machine per work item, nothing shared but read-only inputs; the
  // stimulus RNG is seeded per routine so all alternatives of a routine see
  // identical operands (their cycle counts must be comparable).
  const std::vector<ADPoint> points =
      parallel_map(options.threads, items, [&](const WorkItem& item) {
        const RoutineCandidates& rc = routines[item.routine];
        const std::set<std::string>& instrs = rc.alternatives[item.alternative];
        Rng rng(options.seed + item.routine);
        const std::size_t n = options.limbs;
        std::vector<std::uint32_t> a(n), b(n);
        for (auto& x : a) x = rng.next_u32();
        for (auto& x : b) x = rng.next_u32();

        kernels::Machine m = kernels::make_mpn_machine(tie_config_for(instrs));
        std::uint64_t cycles = 0;
        if (rc.routine == "mpn_add_n") {
          std::vector<std::uint32_t> r;
          cycles = kernels::run_add_n(m, r, a, b).cycles;
        } else if (rc.routine == "mpn_sub_n") {
          std::vector<std::uint32_t> r;
          cycles = kernels::run_sub_n(m, r, a, b).cycles;
        } else if (rc.routine == "mpn_mul_1") {
          std::vector<std::uint32_t> r;
          cycles = kernels::run_mul_1(m, r, a, b[0] | 1u).cycles;
        } else if (rc.routine == "mpn_addmul_1") {
          std::vector<std::uint32_t> r(n, 7);
          cycles = kernels::run_addmul_1(m, r, a, b[0] | 1u).cycles;
        } else {
          throw std::invalid_argument(
              "measure_mpn_adcurves: no ISS driver for routine " + rc.routine);
        }
        return ADPoint{catalog.set_area(instrs), static_cast<double>(cycles),
                       instrs};
      });

  std::map<std::string, ADCurve> curves;
  for (std::size_t i = 0; i < items.size(); ++i) {
    curves[routines[items[i].routine].routine].add(points[i]);
  }
  return curves;
}

}  // namespace wsp::tie
