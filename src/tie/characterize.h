// A-D curve characterization (paper Sec. 3.3, Fig. 5): measure every
// candidate custom-instruction alternative of each mpn leaf routine on the
// cycle-accurate ISS and assemble the per-routine area-delay curves.
//
// Each (routine, alternative) work item builds and owns its Machine, so the
// sweep parallelizes across a thread pool with no shared mutable state; the
// ISS is deterministic and stimuli are derived per routine, so curves are
// identical for any thread count.
//
// (Lives in tie/ but is compiled into wsp_method: it needs the kernels
// layer, which itself links wsp_tie.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tie/adcurve.h"
#include "tie/candidates.h"

namespace wsp::tie {

struct AdMeasureOptions {
  std::size_t limbs = 32;   ///< operand size (32 = 1024-bit, 16 = CRT half)
  unsigned threads = 1;     ///< ISS machines run concurrently when > 1
  std::uint64_t seed = 91;  ///< stimulus seed (same operands per routine)
};

/// Measures one A-D curve per routine in `routines` (mpn leaf routines:
/// mpn_add_n, mpn_sub_n, mpn_mul_1, mpn_addmul_1).  Every alternative runs
/// on a fresh ISS machine configured with that alternative's instruction
/// set; curve points appear in the alternative order of the input.
/// Throws std::invalid_argument for a routine without an ISS driver.
std::map<std::string, ADCurve> measure_mpn_adcurves(
    const std::vector<RoutineCandidates>& routines,
    const AdMeasureOptions& options = {});

}  // namespace wsp::tie
