#include "tie/custom.h"

#include <stdexcept>

#include "crypto/aes.h"
#include "crypto/des.h"
#include "sim/cpu.h"

namespace wsp::tie {

using isa::Instr;
using sim::Cpu;
using sim::CustomInstr;

namespace {

std::uint16_t add_id(int k) {
  switch (k) {
    case 2: return kAdd2;
    case 4: return kAdd4;
    case 8: return kAdd8;
    case 16: return kAdd16;
    default: throw std::invalid_argument("add_k: k must be 2/4/8/16");
  }
}

std::uint16_t sub_id(int k) {
  switch (k) {
    case 2: return kSub2;
    case 4: return kSub4;
    case 8: return kSub8;
    case 16: return kSub16;
    default: throw std::invalid_argument("sub_k: k must be 2/4/8/16");
  }
}

std::uint16_t mac_id(int m) {
  switch (m) {
    case 1: return kMac1;
    case 2: return kMac2;
    case 4: return kMac4;
    case 8: return kMac8;
    default: throw std::invalid_argument("mac_m: m must be 1/2/4/8");
  }
}

}  // namespace

sim::CustomInstr make_ur_load() {
  CustomInstr ci;
  ci.id = kUrLoad;
  ci.name = "ur_load";
  ci.latency = 1;  // plus imm/4 data cycles on the 128-bit bus (added below)
  ci.area = default_area_model().ur_transfer();
  ci.execute = [](Cpu& cpu, const Instr& in) {
    cpu.add_cycles(static_cast<std::uint64_t>((in.imm + 3) / 4));
    const std::uint32_t base = cpu.reg(in.rs1);
    for (std::int32_t w = 0; w < in.imm; ++w) {
      cpu.set_ur(in.rd, static_cast<unsigned>(w),
                 cpu.custom_load32(base + 4 * static_cast<std::uint32_t>(w)));
    }
  };
  return ci;
}

sim::CustomInstr make_ur_store() {
  CustomInstr ci;
  ci.id = kUrStore;
  ci.name = "ur_store";
  ci.latency = 1;  // plus imm/4 data cycles on the 128-bit bus (added below)
  ci.area = default_area_model().ur_transfer();
  ci.execute = [](Cpu& cpu, const Instr& in) {
    cpu.add_cycles(static_cast<std::uint64_t>((in.imm + 3) / 4));
    const std::uint32_t base = cpu.reg(in.rs1);
    for (std::int32_t w = 0; w < in.imm; ++w) {
      cpu.custom_store32(base + 4 * static_cast<std::uint32_t>(w),
                         cpu.ur(in.rd, static_cast<unsigned>(w)));
    }
  };
  return ci;
}

namespace {

// Shared semantics of add_k / sub_k: UR[kUrR] = UR[kUrA] op UR[kUrB] with a
// carry/borrow flag chained through UR[kUrFlags][0].  `imm` = word count of
// this invocation (<= k).
CustomInstr make_addsub(std::uint16_t id, const char* base_name, int k, bool subtract) {
  CustomInstr ci;
  ci.id = id;
  ci.name = std::string(base_name) + "_" + std::to_string(k);
  ci.latency = 1;
  ci.area = default_area_model().wide_adder(k);
  ci.execute = [subtract](Cpu& cpu, const Instr& in) {
    std::uint32_t carry = cpu.ur(kUrFlags, 0);
    for (std::int32_t w = 0; w < in.imm; ++w) {
      const std::uint64_t a = cpu.ur(kUrA, static_cast<unsigned>(w));
      const std::uint64_t b = cpu.ur(kUrB, static_cast<unsigned>(w));
      std::uint64_t r;
      if (subtract) {
        r = a - b - carry;
        carry = (r >> 32) & 1;
      } else {
        r = a + b + carry;
        carry = static_cast<std::uint32_t>(r >> 32);
      }
      cpu.set_ur(kUrR, static_cast<unsigned>(w), static_cast<std::uint32_t>(r));
    }
    cpu.set_ur(kUrFlags, 0, carry);
  };
  return ci;
}

}  // namespace

sim::CustomInstr make_add_k(int k) { return make_addsub(add_id(k), "add", k, false); }
sim::CustomInstr make_sub_k(int k) { return make_addsub(sub_id(k), "sub", k, true); }

sim::CustomInstr make_mac_m(int m) {
  CustomInstr ci;
  ci.id = mac_id(m);
  ci.name = "mac_" + std::to_string(m);
  // One cycle issue; the multiplier array is pipelined, result forwarded.
  ci.latency = 2;
  ci.area = default_area_model().mac_unit(m);
  ci.execute = [](Cpu& cpu, const Instr& in) {
    const std::uint64_t b = cpu.reg(in.rs1);
    std::uint64_t carry = cpu.ur(kUrMacCarry, 0);
    for (std::int32_t w = 0; w < in.imm; ++w) {
      const std::uint64_t p =
          static_cast<std::uint64_t>(cpu.ur(kUrA, static_cast<unsigned>(w))) * b +
          cpu.ur(kUrB, static_cast<unsigned>(w)) + carry;
      cpu.set_ur(kUrB, static_cast<unsigned>(w), static_cast<std::uint32_t>(p));
      carry = p >> 32;
    }
    cpu.set_ur(kUrMacCarry, 0, static_cast<std::uint32_t>(carry));
  };
  return ci;
}

namespace {

CustomInstr make_des_perm(std::uint16_t id, const char* name, bool fp, bool hi) {
  CustomInstr ci;
  ci.id = id;
  ci.name = name;
  ci.latency = 1;
  ci.area = default_area_model().des_perm_half();
  ci.execute = [fp, hi](Cpu& cpu, const Instr& in) {
    const std::uint64_t block =
        (static_cast<std::uint64_t>(cpu.reg(in.rs1)) << 32) | cpu.reg(in.rs2);
    const std::uint64_t out =
        fp ? des::final_permutation(block) : des::initial_permutation(block);
    cpu.set_reg(in.rd, static_cast<std::uint32_t>(hi ? out >> 32 : out));
  };
  return ci;
}

}  // namespace

sim::CustomInstr make_des_ip_hi() { return make_des_perm(kDesIpHi, "des_ip_hi", false, true); }
sim::CustomInstr make_des_ip_lo() { return make_des_perm(kDesIpLo, "des_ip_lo", false, false); }
sim::CustomInstr make_des_fp_hi() { return make_des_perm(kDesFpHi, "des_fp_hi", true, true); }
sim::CustomInstr make_des_fp_lo() { return make_des_perm(kDesFpLo, "des_fp_lo", true, false); }

sim::CustomInstr make_des_round() {
  CustomInstr ci;
  ci.id = kDesRound;
  ci.name = "des_round";
  ci.latency = 2;  // subkey fetch + S-box/permute datapath
  ci.area = default_area_model().des_round_unit();
  ci.execute = [](Cpu& cpu, const Instr& in) {
    // rs1 = R half; rs2 = address of the round's 48-bit subkey stored as
    // two words (hi 24 bits, lo 24 bits).
    const std::uint32_t key_addr = cpu.reg(in.rs2);
    const std::uint64_t k48 =
        (static_cast<std::uint64_t>(cpu.custom_load32(key_addr)) << 24) |
        cpu.custom_load32(key_addr + 4);
    cpu.set_reg(in.rd, des::f_function(cpu.reg(in.rs1), k48));
  };
  return ci;
}

sim::CustomInstr make_aes_sbox4() {
  CustomInstr ci;
  ci.id = kAesSbox4;
  ci.name = "aes_sbox4";
  ci.latency = 1;
  ci.area = default_area_model().aes_sbox4_unit();
  ci.execute = [](Cpu& cpu, const Instr& in) {
    const auto& sb = aes::sbox();
    const std::uint32_t v = cpu.reg(in.rs1);
    cpu.set_reg(in.rd, (static_cast<std::uint32_t>(sb[(v >> 24) & 0xff]) << 24) |
                           (static_cast<std::uint32_t>(sb[(v >> 16) & 0xff]) << 16) |
                           (static_cast<std::uint32_t>(sb[(v >> 8) & 0xff]) << 8) |
                           sb[v & 0xff]);
  };
  return ci;
}

sim::CustomInstr make_aes_mixcol() {
  CustomInstr ci;
  ci.id = kAesMixCol;
  ci.name = "aes_mixcol";
  ci.latency = 1;
  ci.area = default_area_model().aes_mixcol_unit();
  ci.execute = [](Cpu& cpu, const Instr& in) {
    const std::uint32_t v = cpu.reg(in.rs1);
    std::uint8_t col[4] = {static_cast<std::uint8_t>(v >> 24),
                           static_cast<std::uint8_t>(v >> 16),
                           static_cast<std::uint8_t>(v >> 8),
                           static_cast<std::uint8_t>(v)};
    std::uint8_t out[4];
    for (int i = 0; i < 4; ++i) {
      out[i] = static_cast<std::uint8_t>(
          aes::gf_mul(col[i & 3], 2) ^ aes::gf_mul(col[(i + 1) & 3], 3) ^
          col[(i + 2) & 3] ^ col[(i + 3) & 3]);
    }
    cpu.set_reg(in.rd, (static_cast<std::uint32_t>(out[0]) << 24) |
                           (static_cast<std::uint32_t>(out[1]) << 16) |
                           (static_cast<std::uint32_t>(out[2]) << 8) | out[3]);
  };
  return ci;
}

sim::CustomInstr make_aes_ld_state() {
  CustomInstr ci;
  ci.id = kAesLdState;
  ci.name = "aes_ld_state";
  ci.latency = 2;
  ci.area = default_area_model().ur_transfer();
  // rs1 = input block address; rs2 = round-0 key address (the initial
  // AddRoundKey is folded into the load, as a merged key-add datapath).
  ci.execute = [](Cpu& cpu, const Instr& in) {
    const std::uint32_t base = cpu.reg(in.rs1);
    const std::uint32_t key = cpu.reg(in.rs2);
    for (unsigned w = 0; w < 4; ++w) {
      cpu.set_ur(kUrAes, w,
                 cpu.custom_load32(base + 4 * w) ^ cpu.custom_load32(key + 4 * w));
    }
  };
  return ci;
}

sim::CustomInstr make_aes_st_state() {
  CustomInstr ci;
  ci.id = kAesStState;
  ci.name = "aes_st_state";
  ci.latency = 2;
  ci.area = default_area_model().ur_transfer();
  ci.execute = [](Cpu& cpu, const Instr& in) {
    const std::uint32_t base = cpu.reg(in.rs1);
    for (unsigned w = 0; w < 4; ++w) {
      cpu.custom_store32(base + 4 * w, cpu.ur(kUrAes, w));
    }
  };
  return ci;
}

namespace {

// Full encryption round on the UR AES state (big-endian packed columns, as
// in the T-table software path).  `final` skips MixColumns.
void aes_round_semantics(Cpu& cpu, const Instr& in, bool final) {
  const std::uint32_t key_addr = cpu.reg(in.rs1);
  std::uint32_t rk[4];
  for (unsigned w = 0; w < 4; ++w) rk[w] = cpu.custom_load32(key_addr + 4 * w);
  const std::uint32_t s0 = cpu.ur(kUrAes, 0), s1 = cpu.ur(kUrAes, 1),
                      s2 = cpu.ur(kUrAes, 2), s3 = cpu.ur(kUrAes, 3);
  std::uint32_t n[4];
  if (!final) {
    n[0] = aes::te(0)[s0 >> 24] ^ aes::te(1)[(s1 >> 16) & 0xff] ^
           aes::te(2)[(s2 >> 8) & 0xff] ^ aes::te(3)[s3 & 0xff] ^ rk[0];
    n[1] = aes::te(0)[s1 >> 24] ^ aes::te(1)[(s2 >> 16) & 0xff] ^
           aes::te(2)[(s3 >> 8) & 0xff] ^ aes::te(3)[s0 & 0xff] ^ rk[1];
    n[2] = aes::te(0)[s2 >> 24] ^ aes::te(1)[(s3 >> 16) & 0xff] ^
           aes::te(2)[(s0 >> 8) & 0xff] ^ aes::te(3)[s1 & 0xff] ^ rk[2];
    n[3] = aes::te(0)[s3 >> 24] ^ aes::te(1)[(s0 >> 16) & 0xff] ^
           aes::te(2)[(s1 >> 8) & 0xff] ^ aes::te(3)[s2 & 0xff] ^ rk[3];
  } else {
    const auto& sb = aes::sbox();
    auto col = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                   std::uint32_t d) {
      return (static_cast<std::uint32_t>(sb[(a >> 24) & 0xff]) << 24) |
             (static_cast<std::uint32_t>(sb[(b >> 16) & 0xff]) << 16) |
             (static_cast<std::uint32_t>(sb[(c >> 8) & 0xff]) << 8) |
             sb[d & 0xff];
    };
    n[0] = col(s0, s1, s2, s3) ^ rk[0];
    n[1] = col(s1, s2, s3, s0) ^ rk[1];
    n[2] = col(s2, s3, s0, s1) ^ rk[2];
    n[3] = col(s3, s0, s1, s2) ^ rk[3];
  }
  for (unsigned w = 0; w < 4; ++w) cpu.set_ur(kUrAes, w, n[w]);
}

}  // namespace

sim::CustomInstr make_aes_round() {
  CustomInstr ci;
  ci.id = kAesRound;
  ci.name = "aes_round";
  ci.latency = 3;
  ci.area = default_area_model().aes_round_unit();
  ci.execute = [](Cpu& cpu, const Instr& in) { aes_round_semantics(cpu, in, false); };
  return ci;
}

sim::CustomInstr make_aes_final() {
  CustomInstr ci;
  ci.id = kAesFinal;
  ci.name = "aes_final";
  ci.latency = 3;
  // Shares the round unit's S-boxes; only the bypass path is extra.
  ci.area = default_area_model().control;
  ci.execute = [](Cpu& cpu, const Instr& in) { aes_round_semantics(cpu, in, true); };
  return ci;
}

sim::CustomSet full_custom_set() {
  sim::CustomSet set;
  set.add(make_ur_load());
  set.add(make_ur_store());
  for (int k : {2, 4, 8, 16}) {
    set.add(make_add_k(k));
    set.add(make_sub_k(k));
  }
  for (int m : {1, 2, 4, 8}) set.add(make_mac_m(m));
  set.add(make_des_ip_hi());
  set.add(make_des_ip_lo());
  set.add(make_des_fp_hi());
  set.add(make_des_fp_lo());
  set.add(make_des_round());
  set.add(make_aes_sbox4());
  set.add(make_aes_mixcol());
  set.add(make_aes_ld_state());
  set.add(make_aes_st_state());
  set.add(make_aes_round());
  set.add(make_aes_final());
  return set;
}

sim::CustomSet platform_custom_set() {
  sim::CustomSet set;
  set.add(make_ur_load());
  set.add(make_ur_store());
  set.add(make_add_k(8));
  set.add(make_sub_k(8));
  set.add(make_mac_m(4));
  set.add(make_des_ip_hi());
  set.add(make_des_ip_lo());
  set.add(make_des_fp_hi());
  set.add(make_des_fp_lo());
  set.add(make_des_round());
  set.add(make_aes_sbox4());
  set.add(make_aes_mixcol());
  return set;
}

}  // namespace wsp::tie
