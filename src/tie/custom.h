// Factory for the custom-instruction descriptors (functional semantics +
// latency + area) — the output of the paper's custom-instruction
// formulation phase (Sec. 3.3), one descriptor per candidate instruction.
#pragma once

#include "sim/custom.h"
#include "tie/area.h"
#include "tie/ids.h"

namespace wsp::tie {

/// Individual instruction builders.  Latencies model the pipeline occupancy
/// of the synthesized datapath; areas come from the AreaModel.
sim::CustomInstr make_ur_load();
sim::CustomInstr make_ur_store();
sim::CustomInstr make_add_k(int k);   ///< k in {2,4,8,16}
sim::CustomInstr make_sub_k(int k);   ///< k in {2,4,8,16}
sim::CustomInstr make_mac_m(int m);   ///< m in {1,2,4}
sim::CustomInstr make_des_ip_hi();
sim::CustomInstr make_des_ip_lo();
sim::CustomInstr make_des_fp_hi();
sim::CustomInstr make_des_fp_lo();
sim::CustomInstr make_des_round();
sim::CustomInstr make_aes_sbox4();
sim::CustomInstr make_aes_mixcol();
sim::CustomInstr make_aes_ld_state();
sim::CustomInstr make_aes_st_state();
sim::CustomInstr make_aes_round();
sim::CustomInstr make_aes_final();

/// All custom instructions (the union candidate pool).
sim::CustomSet full_custom_set();

/// The instruction set selected for the final optimized platform (output of
/// the global selection phase under the default area constraint):
/// UR transfers, add_8/sub_8, mac_4, the DES units, and the partial AES
/// units (the full AES round unit is rejected on area).
sim::CustomSet platform_custom_set();

}  // namespace wsp::tie
