// Custom-instruction id assignments shared by the tie candidate library and
// the kernel builders (the kernels encode these ids into Op::kCustom).
#pragma once

#include <cstdint>

namespace wsp::tie {

enum Id : std::uint16_t {
  // --- user-register (TIE state) transfer -------------------------------
  kUrLoad = 1,   ///< UR[rd][0..imm) <- mem[rs1..]; wide 64-bit bus
  kUrStore = 2,  ///< mem[rs1..] <- UR[rd][0..imm)

  // --- multi-word adders for mpn_add_n / mpn_sub_n ------------------------
  // UR[2] = UR[0] + UR[1] + carry, over `imm` words, one cycle (k adders).
  kAdd2 = 3,
  kAdd4 = 4,
  kAdd8 = 5,
  kAdd16 = 6,
  kSub2 = 7,
  kSub4 = 8,
  kSub8 = 9,
  kSub16 = 10,

  // --- multiply-accumulate units for mpn_addmul_1 / mpn_mul_1 -------------
  // UR[1][0..k) += UR[0][0..k) * rs1 + carry limb, k = number of MACs.
  kMac1 = 11,
  kMac2 = 12,
  kMac4 = 13,
  kMac8 = 25,

  // --- DES units ------------------------------------------------------------
  kDesIpHi = 14,  ///< rd = hi32(IP(rs1:rs2))
  kDesIpLo = 15,  ///< rd = lo32(IP(rs1:rs2))
  kDesFpHi = 16,  ///< rd = hi32(FP(rs1:rs2))
  kDesFpLo = 17,  ///< rd = lo32(FP(rs1:rs2))
  kDesRound = 18, ///< rd = F(rs1, k48 at mem[rs2]) — E, 8 S-boxes, P in one unit

  // --- AES units ------------------------------------------------------------
  kAesSbox4 = 19,   ///< rd = SubBytes applied to the 4 bytes of rs1
  kAesMixCol = 20,  ///< rd = MixColumns applied to one column word rs1
  kAesLdState = 21, ///< UR[3][0..3] <- mem[rs1] (state in)
  kAesStState = 22, ///< mem[rs1] <- UR[3][0..3] (state out)
  kAesRound = 23,   ///< UR[3] = full AES round of UR[3], round key at mem[rs1]
  kAesFinal = 24,   ///< UR[3] = final AES round of UR[3], round key at mem[rs1]
  // kMac8 = 25 lives above with the other MAC units.
};

/// User-register allocation conventions used by the kernels.
inline constexpr unsigned kUrA = 0;      ///< operand A chunk
inline constexpr unsigned kUrB = 1;      ///< operand B chunk / accumulator
inline constexpr unsigned kUrR = 2;      ///< result chunk
inline constexpr unsigned kUrAes = 3;    ///< AES state
inline constexpr unsigned kUrMacCarry = 6;  ///< [0] = MAC carry limb
inline constexpr unsigned kUrFlags = 7;     ///< [0] = add/sub carry/borrow flag

}  // namespace wsp::tie
