#include "xasm/program.h"

#include <stdexcept>

namespace wsp::xasm {

using isa::Instr;
using isa::Op;

std::uint32_t Program::entry(const std::string& name) const {
  const auto it = functions.find(name);
  if (it == functions.end()) {
    throw std::out_of_range("Program: unknown function " + name);
  }
  return it->second;
}

std::uint32_t Program::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) {
    throw std::out_of_range("Program: unknown symbol " + name);
  }
  return it->second;
}

void Assembler::emit(Instr instr) { prog_.code.push_back(instr); }

void Assembler::func(const std::string& name) {
  if (prog_.functions.count(name)) {
    throw std::invalid_argument("Assembler: duplicate function " + name);
  }
  current_func_ = name;
  prog_.functions[name] = static_cast<std::uint32_t>(prog_.code.size());
}

void Assembler::label(const std::string& name) {
  const std::string key = current_func_ + ":" + name;
  if (local_labels_.count(key)) {
    throw std::invalid_argument("Assembler: duplicate label " + key);
  }
  local_labels_[key] = static_cast<std::uint32_t>(prog_.code.size());
}

void Assembler::nop() { emit({Op::kNop, 0, 0, 0, 0, 0}); }
void Assembler::add(R rd, R rs1, R rs2) { emit({Op::kAdd, rd, rs1, rs2, 0, 0}); }
void Assembler::sub(R rd, R rs1, R rs2) { emit({Op::kSub, rd, rs1, rs2, 0, 0}); }
void Assembler::and_(R rd, R rs1, R rs2) { emit({Op::kAnd, rd, rs1, rs2, 0, 0}); }
void Assembler::or_(R rd, R rs1, R rs2) { emit({Op::kOr, rd, rs1, rs2, 0, 0}); }
void Assembler::xor_(R rd, R rs1, R rs2) { emit({Op::kXor, rd, rs1, rs2, 0, 0}); }
void Assembler::sll(R rd, R rs1, R rs2) { emit({Op::kSll, rd, rs1, rs2, 0, 0}); }
void Assembler::srl(R rd, R rs1, R rs2) { emit({Op::kSrl, rd, rs1, rs2, 0, 0}); }
void Assembler::sra(R rd, R rs1, R rs2) { emit({Op::kSra, rd, rs1, rs2, 0, 0}); }
void Assembler::slt(R rd, R rs1, R rs2) { emit({Op::kSlt, rd, rs1, rs2, 0, 0}); }
void Assembler::sltu(R rd, R rs1, R rs2) { emit({Op::kSltu, rd, rs1, rs2, 0, 0}); }
void Assembler::mul(R rd, R rs1, R rs2) { emit({Op::kMul, rd, rs1, rs2, 0, 0}); }
void Assembler::mulhu(R rd, R rs1, R rs2) { emit({Op::kMulhu, rd, rs1, rs2, 0, 0}); }
void Assembler::addi(R rd, R rs1, std::int32_t imm) { emit({Op::kAddi, rd, rs1, 0, imm, 0}); }
void Assembler::andi(R rd, R rs1, std::int32_t imm) { emit({Op::kAndi, rd, rs1, 0, imm, 0}); }
void Assembler::ori(R rd, R rs1, std::int32_t imm) { emit({Op::kOri, rd, rs1, 0, imm, 0}); }
void Assembler::xori(R rd, R rs1, std::int32_t imm) { emit({Op::kXori, rd, rs1, 0, imm, 0}); }
void Assembler::slli(R rd, R rs1, std::int32_t imm) { emit({Op::kSlli, rd, rs1, 0, imm, 0}); }
void Assembler::srli(R rd, R rs1, std::int32_t imm) { emit({Op::kSrli, rd, rs1, 0, imm, 0}); }
void Assembler::srai(R rd, R rs1, std::int32_t imm) { emit({Op::kSrai, rd, rs1, 0, imm, 0}); }
void Assembler::slti(R rd, R rs1, std::int32_t imm) { emit({Op::kSlti, rd, rs1, 0, imm, 0}); }
void Assembler::sltiu(R rd, R rs1, std::int32_t imm) { emit({Op::kSltiu, rd, rs1, 0, imm, 0}); }
void Assembler::lui(R rd, std::int32_t imm) { emit({Op::kLui, rd, 0, 0, imm, 0}); }
void Assembler::lw(R rd, R rs1, std::int32_t off) { emit({Op::kLw, rd, rs1, 0, off, 0}); }
void Assembler::lhu(R rd, R rs1, std::int32_t off) { emit({Op::kLhu, rd, rs1, 0, off, 0}); }
void Assembler::lbu(R rd, R rs1, std::int32_t off) { emit({Op::kLbu, rd, rs1, 0, off, 0}); }
void Assembler::sw(R rs2, R rs1, std::int32_t off) { emit({Op::kSw, 0, rs1, rs2, off, 0}); }
void Assembler::sh(R rs2, R rs1, std::int32_t off) { emit({Op::kSh, 0, rs1, rs2, off, 0}); }
void Assembler::sb(R rs2, R rs1, std::int32_t off) { emit({Op::kSb, 0, rs1, rs2, off, 0}); }

void Assembler::branch_to(Op op, R rs1, R rs2, const std::string& lbl) {
  fixups_.push_back({static_cast<std::uint32_t>(prog_.code.size()),
                     current_func_ + ":" + lbl, false});
  emit({op, 0, rs1, rs2, 0, 0});
}

void Assembler::beq(R rs1, R rs2, const std::string& l) { branch_to(Op::kBeq, rs1, rs2, l); }
void Assembler::bne(R rs1, R rs2, const std::string& l) { branch_to(Op::kBne, rs1, rs2, l); }
void Assembler::blt(R rs1, R rs2, const std::string& l) { branch_to(Op::kBlt, rs1, rs2, l); }
void Assembler::bge(R rs1, R rs2, const std::string& l) { branch_to(Op::kBge, rs1, rs2, l); }
void Assembler::bltu(R rs1, R rs2, const std::string& l) { branch_to(Op::kBltu, rs1, rs2, l); }
void Assembler::bgeu(R rs1, R rs2, const std::string& l) { branch_to(Op::kBgeu, rs1, rs2, l); }
void Assembler::j(const std::string& l) { branch_to(Op::kJ, 0, 0, l); }

void Assembler::call(const std::string& function) {
  fixups_.push_back({static_cast<std::uint32_t>(prog_.code.size()), function, true});
  emit({Op::kCall, 0, 0, 0, 0, 0});
}

void Assembler::ret() { emit({Op::kRet, 0, 0, 0, 0, 0}); }
void Assembler::halt() { emit({Op::kHalt, 0, 0, 0, 0, 0}); }

void Assembler::custom(std::uint16_t id, R rd, R rs1, R rs2, std::int32_t imm) {
  emit({Op::kCustom, rd, rs1, rs2, imm, id});
}

void Assembler::li(R rd, std::uint32_t value) {
  const std::int32_t sv = static_cast<std::int32_t>(value);
  if (sv >= -2048 && sv < 2048) {
    addi(rd, isa::kZero, sv);
    return;
  }
  // lui loads the top 20 bits; ori fills the bottom 12.
  lui(rd, static_cast<std::int32_t>(value >> 12));
  if (value & 0xfff) ori(rd, rd, static_cast<std::int32_t>(value & 0xfff));
}

void Assembler::mv(R rd, R rs) { addi(rd, rs, 0); }

void Assembler::prologue(const std::vector<R>& saved) {
  const std::int32_t frame = static_cast<std::int32_t>(4 * (saved.size() + 1));
  addi(isa::kSp, isa::kSp, -frame);
  sw(isa::kRa, isa::kSp, 0);
  for (std::size_t i = 0; i < saved.size(); ++i) {
    sw(saved[i], isa::kSp, static_cast<std::int32_t>(4 * (i + 1)));
  }
}

void Assembler::epilogue(const std::vector<R>& saved) {
  const std::int32_t frame = static_cast<std::int32_t>(4 * (saved.size() + 1));
  lw(isa::kRa, isa::kSp, 0);
  for (std::size_t i = 0; i < saved.size(); ++i) {
    lw(saved[i], isa::kSp, static_cast<std::int32_t>(4 * (i + 1)));
  }
  addi(isa::kSp, isa::kSp, frame);
  ret();
}

std::uint32_t Assembler::data_word(std::uint32_t w) {
  data_align(4);
  const std::uint32_t addr = kDataBase + static_cast<std::uint32_t>(prog_.data.size());
  for (int i = 0; i < 4; ++i) prog_.data.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
  return addr;
}

std::uint32_t Assembler::data_words(const std::vector<std::uint32_t>& ws) {
  data_align(4);
  const std::uint32_t addr = kDataBase + static_cast<std::uint32_t>(prog_.data.size());
  for (std::uint32_t w : ws) data_word(w);
  return addr;
}

std::uint32_t Assembler::data_bytes(const std::vector<std::uint8_t>& bs) {
  const std::uint32_t addr = kDataBase + static_cast<std::uint32_t>(prog_.data.size());
  prog_.data.insert(prog_.data.end(), bs.begin(), bs.end());
  return addr;
}

std::uint32_t Assembler::data_zero(std::size_t n) {
  const std::uint32_t addr = kDataBase + static_cast<std::uint32_t>(prog_.data.size());
  prog_.data.insert(prog_.data.end(), n, 0);
  return addr;
}

void Assembler::data_align(std::size_t alignment) {
  while (prog_.data.size() % alignment != 0) prog_.data.push_back(0);
}

void Assembler::data_symbol(const std::string& name) {
  if (prog_.symbols.count(name)) {
    throw std::invalid_argument("Assembler: duplicate symbol " + name);
  }
  prog_.symbols[name] = kDataBase + static_cast<std::uint32_t>(prog_.data.size());
}

Program Assembler::finish() {
  for (const Fixup& f : fixups_) {
    std::uint32_t target;
    if (f.is_call) {
      const auto it = prog_.functions.find(f.target);
      if (it == prog_.functions.end()) {
        throw std::runtime_error("Assembler: undefined function " + f.target);
      }
      target = it->second;
    } else {
      const auto it = local_labels_.find(f.target);
      if (it == local_labels_.end()) {
        throw std::runtime_error("Assembler: undefined label " + f.target);
      }
      target = it->second;
    }
    prog_.code[f.index].imm = static_cast<std::int32_t>(target);
  }
  fixups_.clear();
  return std::move(prog_);
}

}  // namespace wsp::xasm
