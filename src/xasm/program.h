// Embedded assembler for XR32.
//
// The crypto software layers that run on the simulated core are written in
// C++ against this builder (our stand-in for the paper's cross-compiled C
// libraries): functions, labels, the full base instruction set, pseudo-ops
// (li for arbitrary 32-bit constants), and a data segment for lookup tables
// and key schedules.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace wsp::xasm {

/// Memory layout constants shared by the assembler and simulator.
inline constexpr std::uint32_t kDataBase = 0x0001'0000;   ///< data segment start
inline constexpr std::uint32_t kHeapBase = 0x0010'0000;   ///< host-marshalled buffers
inline constexpr std::uint32_t kStopPc = 0xFFFF'FFFF;     ///< host return sentinel

/// A fully assembled program: decoded instructions, function table, and the
/// initial data-segment image.
struct Program {
  std::vector<isa::Instr> code;
  std::map<std::string, std::uint32_t> functions;  ///< name -> entry index
  std::vector<std::uint8_t> data;                  ///< placed at kDataBase
  std::map<std::string, std::uint32_t> symbols;    ///< named data addresses

  std::uint32_t entry(const std::string& name) const;
  std::uint32_t symbol(const std::string& name) const;
};

/// Streaming program builder with label/function fixups.
class Assembler {
 public:
  using R = std::uint8_t;

  /// Begins a new function; subsequent instructions belong to it.
  void func(const std::string& name);
  /// Defines a local label at the current position (scoped to the function).
  void label(const std::string& name);

  // --- base instruction set ------------------------------------------------
  void nop();
  void add(R rd, R rs1, R rs2);
  void sub(R rd, R rs1, R rs2);
  void and_(R rd, R rs1, R rs2);
  void or_(R rd, R rs1, R rs2);
  void xor_(R rd, R rs1, R rs2);
  void sll(R rd, R rs1, R rs2);
  void srl(R rd, R rs1, R rs2);
  void sra(R rd, R rs1, R rs2);
  void slt(R rd, R rs1, R rs2);
  void sltu(R rd, R rs1, R rs2);
  void mul(R rd, R rs1, R rs2);
  void mulhu(R rd, R rs1, R rs2);
  void addi(R rd, R rs1, std::int32_t imm);
  void andi(R rd, R rs1, std::int32_t imm);
  void ori(R rd, R rs1, std::int32_t imm);
  void xori(R rd, R rs1, std::int32_t imm);
  void slli(R rd, R rs1, std::int32_t imm);
  void srli(R rd, R rs1, std::int32_t imm);
  void srai(R rd, R rs1, std::int32_t imm);
  void slti(R rd, R rs1, std::int32_t imm);
  void sltiu(R rd, R rs1, std::int32_t imm);
  void lui(R rd, std::int32_t imm);
  void lw(R rd, R rs1, std::int32_t off);
  void lhu(R rd, R rs1, std::int32_t off);
  void lbu(R rd, R rs1, std::int32_t off);
  void sw(R rs2, R rs1, std::int32_t off);  ///< mem[rs1+off] = rs2
  void sh(R rs2, R rs1, std::int32_t off);
  void sb(R rs2, R rs1, std::int32_t off);
  void beq(R rs1, R rs2, const std::string& label);
  void bne(R rs1, R rs2, const std::string& label);
  void blt(R rs1, R rs2, const std::string& label);
  void bge(R rs1, R rs2, const std::string& label);
  void bltu(R rs1, R rs2, const std::string& label);
  void bgeu(R rs1, R rs2, const std::string& label);
  void j(const std::string& label);
  void call(const std::string& function);
  void ret();
  void halt();
  void custom(std::uint16_t id, R rd, R rs1, R rs2, std::int32_t imm = 0);

  // --- pseudo-instructions ---------------------------------------------------
  /// Loads an arbitrary 32-bit constant (lui+ori, or addi when it fits).
  void li(R rd, std::uint32_t value);
  /// Register move (addi rd, rs, 0).
  void mv(R rd, R rs);
  /// Standard prologue/epilogue for functions that make calls: saves /
  /// restores ra (and optionally callee registers) on the stack.
  void prologue(const std::vector<R>& saved = {});
  void epilogue(const std::vector<R>& saved = {});

  // --- data segment ----------------------------------------------------------
  /// Appends a 32-bit word (little-endian) and returns its address.
  std::uint32_t data_word(std::uint32_t w);
  std::uint32_t data_words(const std::vector<std::uint32_t>& ws);
  std::uint32_t data_bytes(const std::vector<std::uint8_t>& bs);
  /// Reserves n zero bytes.
  std::uint32_t data_zero(std::size_t n);
  /// Aligns the data cursor.
  void data_align(std::size_t alignment);
  /// Names the next data address (or an explicit address).
  void data_symbol(const std::string& name);

  /// Resolves all fixups and returns the finished program.
  /// Throws std::runtime_error on undefined labels or functions.
  Program finish();

 private:
  void emit(isa::Instr instr);
  void branch_to(isa::Op op, R rs1, R rs2, const std::string& label);

  Program prog_;
  std::string current_func_;
  std::map<std::string, std::uint32_t> local_labels_;  // "func:label" -> index
  struct Fixup {
    std::uint32_t index;     // instruction to patch
    std::string target;      // "func:label" or function name
    bool is_call;
  };
  std::vector<Fixup> fixups_;
};

}  // namespace wsp::xasm
