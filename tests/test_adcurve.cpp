// A-D curve algebra: dominance reduction, sharing, Pareto pruning, and the
// Fig. 6 Cartesian-combination collapse (25 -> 9 points).
#include <gtest/gtest.h>

#include "tie/adcurve.h"
#include "tie/area.h"

namespace wsp {
namespace {

using tie::ADCurve;
using tie::ADPoint;
using tie::InstrCatalog;

InstrCatalog cat() { return tie::default_catalog(); }

TEST(InstrCatalog, DominanceReduce) {
  const auto c = cat();
  EXPECT_THROW(c.reduce({"nonexistent"}), std::out_of_range);
  const auto reduced = c.reduce({"add_2", "add_4", "mac_1"});
  EXPECT_EQ(reduced, (std::set<std::string>{"add_4", "mac_1"}));
}

TEST(InstrCatalog, CoversWithDominance) {
  const auto c = cat();
  EXPECT_TRUE(c.covers({"add_8"}, {"add_2"}));
  EXPECT_TRUE(c.covers({"add_8"}, {"add_8"}));
  EXPECT_FALSE(c.covers({"add_2"}, {"add_8"}));
  EXPECT_FALSE(c.covers({"add_8"}, {"mac_1"}));
  EXPECT_TRUE(c.covers({"ur_load", "mac_4"}, {"ur_load", "mac_2"}));
  EXPECT_FALSE(c.covers({"mac_4"}, {"ur_load"}));  // family-less needs exact
}

TEST(InstrCatalog, SetAreaCountsSharedInstructionsOnce) {
  const auto c = cat();
  const double one = c.set_area({"ur_load"});
  const double dup = c.set_area({"ur_load", "ur_store"});
  EXPECT_GT(dup, one);
  EXPECT_DOUBLE_EQ(c.set_area({"ur_load"}), c.area_of("ur_load"));
}

TEST(ADCurve, ParetoPruneRemovesInferiorPoints) {
  ADCurve curve;
  curve.add({0, 100, {}});
  curve.add({1000, 50, {"add_2"}});
  curve.add({2000, 60, {"add_4"}});  // inferior: more area AND more cycles
  curve.add({3000, 30, {"add_8"}});
  curve.pareto_prune();
  EXPECT_EQ(curve.points().size(), 3u);
  for (const auto& p : curve.points()) {
    EXPECT_NE(p.cycles, 60);
  }
}

TEST(ADCurve, BestCyclesHonorsDominance) {
  const auto c = cat();
  ADCurve curve;
  curve.add({0, 202, {}});
  curve.add({0, 100, {"ur_load", "ur_store", "add_2"}});
  curve.add({0, 60, {"ur_load", "ur_store", "add_4"}});
  // With add_8 available, the best point usable is the add_4 one (dominated
  // by add_8) at 60 cycles.
  EXPECT_DOUBLE_EQ(
      curve.best_cycles_with({"ur_load", "ur_store", "add_8"}, c), 60.0);
  // With nothing, only the base point.
  EXPECT_DOUBLE_EQ(curve.best_cycles_with({}, c), 202.0);
}

TEST(ADCurve, BestCyclesWithoutBasePointThrows) {
  const auto c = cat();
  ADCurve curve;
  curve.add({0, 100, {"add_2"}});
  EXPECT_THROW(curve.best_cycles_with({}, c), std::logic_error);
}

// The Fig. 6 scenario: mpn_add_n has 5 points {none, add_2..add_16}; the
// mpn_addmul_1 curve has 5 points {none, mac_1, add_2+mac_1, add_4+mac_1,
// add_8+mac_1}.  The raw Cartesian product has 25 combinations; dominance
// and sharing collapse it.
TEST(ADCurve, CombineCollapsesCartesianProduct) {
  const auto c = cat();
  ADCurve add_curve;
  add_curve.add({0, 202, {}});
  double cyc = 110;
  for (int k : {2, 4, 8, 16}) {
    add_curve.add({0, cyc, {"ur_load", "ur_store", "add_" + std::to_string(k)}});
    cyc *= 0.6;
  }
  ADCurve mul_curve;
  mul_curve.add({0, 650, {}});
  mul_curve.add({0, 420, {"ur_load", "ur_store", "mac_1"}});
  mul_curve.add({0, 330, {"ur_load", "ur_store", "mac_1", "add_2"}});
  mul_curve.add({0, 260, {"ur_load", "ur_store", "mac_1", "add_4"}});
  mul_curve.add({0, 210, {"ur_load", "ur_store", "mac_1", "add_8"}});

  ADCurve::CombineStats stats;
  const ADCurve root = ADCurve::combine(
      10.0, {{2.0, &add_curve}, {1.0, &mul_curve}}, c, &stats);
  EXPECT_EQ(stats.cartesian_points, 25u);
  EXPECT_LT(stats.reduced_points, 25u);
  EXPECT_GE(stats.reduced_points, 5u);

  // The empty-set point must evaluate to local + 2*202 + 650.
  bool found_base = false;
  for (const auto& p : root.points()) {
    if (p.instrs.empty()) {
      EXPECT_DOUBLE_EQ(p.cycles, 10.0 + 2 * 202.0 + 650.0);
      EXPECT_DOUBLE_EQ(p.area, 0.0);
      found_base = true;
    }
  }
  EXPECT_TRUE(found_base);
}

TEST(ADCurve, CombineReevaluatesChildrenAtDominatingSet) {
  // A point needing add_2 must be usable when the union provides add_4.
  const auto c = cat();
  ADCurve child1;
  child1.add({0, 100, {}});
  child1.add({0, 40, {"add_2"}});
  ADCurve child2;
  child2.add({0, 100, {}});
  child2.add({0, 50, {"add_4"}});

  const ADCurve root = ADCurve::combine(0.0, {{1.0, &child1}, {1.0, &child2}}, c);
  // The union {add_2, add_4} reduces to {add_4}; at that point child1 should
  // still enjoy its 40-cycle variant (add_4 dominates add_2).
  double best = 1e18;
  for (const auto& p : root.points()) best = std::min(best, p.cycles);
  EXPECT_DOUBLE_EQ(best, 90.0);
}

TEST(ADCurve, RootSelectionUnderAreaConstraint) {
  const auto c = cat();
  ADCurve curve;
  curve.add({0, 1000, {}});
  curve.add({c.set_area({"add_4"}), 400, {"add_4"}});
  curve.add({c.set_area({"add_16"}), 150, {"add_16"}});
  // Pick best point under a budget that excludes add_16.
  const double budget = c.set_area({"add_4"}) + 1;
  const ADPoint* best = nullptr;
  for (const auto& p : curve.points()) {
    if (p.area <= budget && (!best || p.cycles < best->cycles)) best = &p;
  }
  ASSERT_NE(best, nullptr);
  EXPECT_DOUBLE_EQ(best->cycles, 400.0);
}

}  // namespace
}  // namespace wsp
