#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "support/hex.h"
#include "support/random.h"

namespace wsp {
namespace {

std::vector<std::uint8_t> hexv(const char* s) { return from_hex(s); }

TEST(Aes, Fips197KnownAnswers) {
  const auto plain = hexv("00112233445566778899aabbccddeeff");
  struct Vec {
    const char* key;
    const char* cipher;
  };
  const Vec vecs[] = {
      {"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"},
      {"000102030405060708090a0b0c0d0e0f1011121314151617",
       "dda97ca4864cdfe06eaf70a0ec0d7191"},
      {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
       "8ea2b7ca516745bfeafc49904b496089"},
  };
  for (const auto& v : vecs) {
    const auto ks = aes::key_schedule(hexv(v.key));
    std::uint8_t out[16];
    aes::encrypt_block_ref(plain.data(), out, ks);
    EXPECT_EQ(to_hex(out, 16), v.cipher);
    std::uint8_t back[16];
    aes::decrypt_block_ref(out, back, ks);
    EXPECT_EQ(to_hex(back, 16), to_hex(plain));
  }
}

TEST(Aes, TTableMatchesReference) {
  Rng rng(71);
  for (std::size_t klen : {16u, 24u, 32u}) {
    const auto ks = aes::key_schedule(rng.bytes(klen));
    for (int i = 0; i < 100; ++i) {
      const auto block = rng.bytes(16);
      std::uint8_t a[16], b[16];
      aes::encrypt_block_ref(block.data(), a, ks);
      aes::encrypt_block(block.data(), b, ks);
      EXPECT_EQ(to_hex(a, 16), to_hex(b, 16)) << "klen=" << klen;
    }
  }
}

TEST(Aes, SboxIsPermutationWithKnownFixedValues) {
  const auto& sb = aes::sbox();
  const auto& inv = aes::inv_sbox();
  std::set<int> seen;
  for (int i = 0; i < 256; ++i) seen.insert(sb[static_cast<std::size_t>(i)]);
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(sb[0x00], 0x63);  // FIPS-197 fixed points of the table
  EXPECT_EQ(sb[0x01], 0x7c);
  EXPECT_EQ(sb[0x53], 0xed);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(inv[sb[static_cast<std::size_t>(i)]], i);
  }
}

TEST(Aes, GfMulProperties) {
  // x * 1 = x; distributivity over xor; known product.
  Rng rng(72);
  for (int i = 0; i < 100; ++i) {
    const std::uint8_t a = static_cast<std::uint8_t>(rng.next_u64());
    const std::uint8_t b = static_cast<std::uint8_t>(rng.next_u64());
    const std::uint8_t c = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(aes::gf_mul(a, 1), a);
    EXPECT_EQ(aes::gf_mul(a, static_cast<std::uint8_t>(b ^ c)),
              aes::gf_mul(a, b) ^ aes::gf_mul(a, c));
  }
  EXPECT_EQ(aes::gf_mul(0x57, 0x83), 0xc1);  // FIPS-197 worked example
}

TEST(Aes, KeyScheduleRejectsBadSizes) {
  EXPECT_THROW(aes::key_schedule(std::vector<std::uint8_t>(15)), std::invalid_argument);
  EXPECT_THROW(aes::key_schedule(std::vector<std::uint8_t>(33)), std::invalid_argument);
}

TEST(AesModes, EcbRoundTrip) {
  Rng rng(73);
  const auto ks = aes::key_schedule(rng.bytes(16));
  const auto data = rng.bytes(128);
  EXPECT_EQ(aes::decrypt_ecb(aes::encrypt_ecb(data, ks), ks), data);
}

TEST(AesModes, CbcRoundTrip) {
  Rng rng(74);
  const auto ks = aes::key_schedule(rng.bytes(32));
  std::array<std::uint8_t, 16> iv{};
  const auto ivb = rng.bytes(16);
  std::copy(ivb.begin(), ivb.end(), iv.begin());
  const auto data = rng.bytes(160);
  const auto ct = aes::encrypt_cbc(data, ks, iv);
  EXPECT_EQ(aes::decrypt_cbc(ct, ks, iv), data);
  EXPECT_NE(ct, data);
}

TEST(AesModes, RejectsBadLength) {
  const auto ks = aes::key_schedule(std::vector<std::uint8_t>(16, 0));
  EXPECT_THROW(aes::encrypt_ecb(std::vector<std::uint8_t>(15), ks),
               std::invalid_argument);
}

TEST(Aes, Avalanche) {
  Rng rng(75);
  const auto ks = aes::key_schedule(rng.bytes(16));
  auto p1 = rng.bytes(16);
  auto p2 = p1;
  p2[0] ^= 1;
  std::uint8_t c1[16], c2[16];
  aes::encrypt_block(p1.data(), c1, ks);
  aes::encrypt_block(p2.data(), c2, ks);
  int flipped = 0;
  for (int i = 0; i < 16; ++i) flipped += __builtin_popcount(c1[i] ^ c2[i]);
  EXPECT_GT(flipped, 32);
  EXPECT_LT(flipped, 96);
}

}  // namespace
}  // namespace wsp
