#include <gtest/gtest.h>

#include "xasm/program.h"

namespace wsp {
namespace {

using xasm::Assembler;
using isa::Op;

TEST(Assembler, ResolvesForwardAndBackwardLabels) {
  Assembler a;
  a.func("f");
  a.label("start");
  a.beq(0, 0, "end");   // forward
  a.j("start");         // backward
  a.label("end");
  a.ret();
  const auto prog = a.finish();
  EXPECT_EQ(prog.code[0].imm, 2);  // "end"
  EXPECT_EQ(prog.code[1].imm, 0);  // "start"
}

TEST(Assembler, LabelsAreFunctionScoped) {
  Assembler a;
  a.func("f");
  a.label("loop");
  a.j("loop");
  a.ret();
  a.func("g");
  a.label("loop");  // same name, different function — allowed
  a.j("loop");
  a.ret();
  const auto prog = a.finish();
  EXPECT_EQ(prog.code[0].imm, 0);
  EXPECT_EQ(prog.code[2].imm, 2);
}

TEST(Assembler, UndefinedLabelThrows) {
  Assembler a;
  a.func("f");
  a.j("nowhere");
  EXPECT_THROW(a.finish(), std::runtime_error);
}

TEST(Assembler, UndefinedFunctionThrows) {
  Assembler a;
  a.func("f");
  a.call("ghost");
  a.ret();
  EXPECT_THROW(a.finish(), std::runtime_error);
}

TEST(Assembler, DuplicateFunctionThrows) {
  Assembler a;
  a.func("f");
  a.ret();
  EXPECT_THROW(a.func("f"), std::invalid_argument);
}

TEST(Assembler, CallResolvesAcrossFunctions) {
  Assembler a;
  a.func("caller");
  a.call("callee");  // forward reference
  a.ret();
  a.func("callee");
  a.ret();
  const auto prog = a.finish();
  EXPECT_EQ(prog.code[0].op, Op::kCall);
  EXPECT_EQ(prog.code[0].imm, static_cast<std::int32_t>(prog.entry("callee")));
}

TEST(Assembler, LiSmallUsesAddi) {
  Assembler a;
  a.func("f");
  a.li(5, 42);
  a.li(6, 0xdeadbeef);
  a.ret();
  const auto prog = a.finish();
  EXPECT_EQ(prog.code[0].op, Op::kAddi);
  EXPECT_EQ(prog.code[0].imm, 42);
  EXPECT_EQ(prog.code[1].op, Op::kLui);
  EXPECT_EQ(prog.code[2].op, Op::kOri);
}

TEST(Assembler, DataSegmentLayout) {
  Assembler a;
  a.data_bytes({1, 2, 3});
  a.data_align(4);
  a.data_symbol("tbl");
  const std::uint32_t addr = a.data_word(0x11223344);
  a.func("f");
  a.ret();
  const auto prog = a.finish();
  EXPECT_EQ(addr, xasm::kDataBase + 4);
  EXPECT_EQ(prog.symbol("tbl"), addr);
  // little-endian layout
  EXPECT_EQ(prog.data[4], 0x44);
  EXPECT_EQ(prog.data[7], 0x11);
}

TEST(Assembler, UnknownSymbolThrows) {
  Assembler a;
  a.func("f");
  a.ret();
  const auto prog = a.finish();
  EXPECT_THROW(prog.symbol("missing"), std::out_of_range);
  EXPECT_THROW(prog.entry("missing"), std::out_of_range);
}

}  // namespace
}  // namespace wsp
