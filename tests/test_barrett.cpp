#include <gtest/gtest.h>

#include "mp/barrett.h"
#include "mp/mpz.h"
#include "support/random.h"

namespace wsp {
namespace {

template <typename L>
std::vector<L> to_limbs(const Mpz& x, std::size_t k) {
  auto be = x.to_bytes_be(k * sizeof(L));
  std::vector<std::uint8_t> le(be.rbegin(), be.rend());
  return mpn::from_bytes_le<L>(le.data(), le.size());
}

template <typename L>
Mpz from_limbs(const std::vector<L>& v) {
  std::vector<std::uint8_t> le(v.size() * sizeof(L));
  mpn::to_bytes_le(v.data(), v.size(), le.data(), le.size());
  std::vector<std::uint8_t> be(le.rbegin(), le.rend());
  return Mpz::from_bytes_be(be);
}

template <typename T>
class BarrettTest : public ::testing::Test {};
using LimbTypes = ::testing::Types<std::uint16_t, std::uint32_t>;
TYPED_TEST_SUITE(BarrettTest, LimbTypes);

TYPED_TEST(BarrettTest, RejectsZeroModulus) {
  using L = TypeParam;
  std::vector<L> zero(3, 0);
  EXPECT_THROW(Barrett<L>{zero}, std::invalid_argument);
}

TYPED_TEST(BarrettTest, ReduceMatchesReference) {
  using L = TypeParam;
  Rng rng(41);
  // Works for even moduli too, unlike Montgomery.
  for (const char* mh : {"f7d8a9b3c2e1f4a5d6b7c8d9eaf1b2c4",
                         "b1946ac92492d2347c6235b4d2611184",
                         "8f14e45fceea167a5a36dedd4bea2543"}) {
    const Mpz m = Mpz::from_hex(mh);
    const std::size_t k = (m.bit_length() + mpn::LimbTraits<L>::bits - 1) /
                          mpn::LimbTraits<L>::bits;
    Barrett<L> ctx(to_limbs<L>(m, k));
    for (int i = 0; i < 30; ++i) {
      const Mpz x = Mpz::from_bytes_be(rng.bytes(2 * 16 - 1));  // < B^2k
      std::vector<L> r(k);
      const auto xl = to_limbs<L>(x, 2 * k);
      ctx.reduce(r, xl);
      EXPECT_EQ(from_limbs<L>(r), x.mod(m)) << mh << " iter " << i;
    }
  }
}

TYPED_TEST(BarrettTest, MulmodMatchesReference) {
  using L = TypeParam;
  Rng rng(42);
  const Mpz m = Mpz::from_hex("d4c3b2a190887766554433221100ffef");
  const std::size_t k = (m.bit_length() + mpn::LimbTraits<L>::bits - 1) /
                        mpn::LimbTraits<L>::bits;
  Barrett<L> ctx(to_limbs<L>(m, k));
  for (int i = 0; i < 40; ++i) {
    const Mpz a = Mpz::from_bytes_be(rng.bytes(16)).mod(m);
    const Mpz b = Mpz::from_bytes_be(rng.bytes(16)).mod(m);
    std::vector<L> r(k);
    ctx.mulmod(r, to_limbs<L>(a, k), to_limbs<L>(b, k));
    EXPECT_EQ(from_limbs<L>(r), (a * b).mod(m)) << "iter " << i;
  }
}

TYPED_TEST(BarrettTest, ReduceOfSmallValueIsIdentity) {
  using L = TypeParam;
  const Mpz m = Mpz::from_hex("10000000000000000000000000000061");
  const std::size_t k = (m.bit_length() + mpn::LimbTraits<L>::bits - 1) /
                        mpn::LimbTraits<L>::bits;
  Barrett<L> ctx(to_limbs<L>(m, k));
  const Mpz x(12345);
  std::vector<L> r(k);
  ctx.reduce(r, to_limbs<L>(x, 2 * k));
  EXPECT_EQ(from_limbs<L>(r), x);
}

}  // namespace
}  // namespace wsp
