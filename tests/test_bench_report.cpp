// Tests for the machine-readable bench artifact layer (bench/bench_util.h):
// flag parsing, the wsp-bench-v1 JSON schema, and file round-tripping.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "server_section.h"
#include "support/json.h"

namespace wsp {
namespace {

char** fake_argv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(BenchFlags, ParseThreadsBothForms) {
  std::vector<std::string> a1 = {"prog", "--threads", "4"};
  EXPECT_EQ(bench::parse_threads(3, fake_argv(a1)), 4u);
  std::vector<std::string> a2 = {"prog", "--threads=8"};
  EXPECT_EQ(bench::parse_threads(2, fake_argv(a2)), 8u);
  std::vector<std::string> a3 = {"prog"};
  EXPECT_EQ(bench::parse_threads(1, fake_argv(a3), 2), 2u);
  std::vector<std::string> a4 = {"prog", "--threads", "0"};
  EXPECT_EQ(bench::parse_threads(3, fake_argv(a4)), 1u);  // clamped
}

TEST(BenchFlags, ParseStringFlagBothForms) {
  std::vector<std::string> a1 = {"prog", "--outdir", "/tmp/x"};
  EXPECT_EQ(bench::parse_string_flag(3, fake_argv(a1), "--outdir"), "/tmp/x");
  std::vector<std::string> a2 = {"prog", "--outdir=/tmp/y"};
  EXPECT_EQ(bench::parse_string_flag(2, fake_argv(a2), "--outdir"), "/tmp/y");
  std::vector<std::string> a3 = {"prog"};
  EXPECT_EQ(bench::parse_string_flag(1, fake_argv(a3), "--outdir", "dflt"),
            "dflt");
}

TEST(BenchFlags, ParseBoolFlag) {
  std::vector<std::string> a1 = {"prog", "--with-explore"};
  EXPECT_TRUE(bench::parse_bool_flag(2, fake_argv(a1), "--with-explore"));
  EXPECT_FALSE(bench::parse_bool_flag(2, fake_argv(a1), "--trace"));
}

bench::BenchResult sample_result() {
  bench::BenchResult r;
  r.name = "unit";
  r.config["seed"] = "61";
  r.config["variant"] = "base";
  r.cycles["total"] = 123456789.0;
  r.cycles["per_block"] = 421.5;
  r.wall_ns = 987654321;
  r.threads = 2;
  return r;
}

TEST(BenchJson, SchemaFieldsPresentAndTyped) {
  const json::Value doc = bench::to_json(sample_result());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").as_string(), "wsp-bench-v1");
  EXPECT_EQ(doc.at("name").as_string(), "unit");
  ASSERT_TRUE(doc.at("config").is_object());
  EXPECT_EQ(doc.at("config").at("seed").as_string(), "61");
  ASSERT_TRUE(doc.at("cycles").is_object());
  EXPECT_EQ(doc.at("cycles").at("total").as_number(), 123456789.0);
  EXPECT_EQ(doc.at("cycles").at("per_block").as_number(), 421.5);
  EXPECT_EQ(doc.at("wall_ns").as_number(), 987654321.0);
  EXPECT_EQ(doc.at("threads").as_number(), 2.0);
  ASSERT_TRUE(doc.at("git_rev").is_string());
  EXPECT_FALSE(doc.at("git_rev").as_string().empty());
}

TEST(BenchJson, WriteRoundTripsThroughParser) {
  const std::string dir = ::testing::TempDir();
  const std::string path = bench::write_bench_json(sample_result(), dir);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_unit.json"), std::string::npos);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "wsp-bench-v1");
  // Large integers must serialize exactly (no exponent notation).
  EXPECT_NE(text.find("123456789"), std::string::npos);
  EXPECT_NE(text.find("987654321"), std::string::npos);
  EXPECT_EQ(doc.at("cycles").at("total").as_number(), 123456789.0);
}

TEST(BenchJson, WriteFailsIntoMissingDirectory) {
  EXPECT_EQ(bench::write_bench_json(sample_result(), "/nonexistent-dir-xyz"),
            "");
}

server::RunReport sample_server_report() {
  server::RunReport rep;
  rep.offered = 96;
  rep.admitted = 90;
  rep.completed = 85;
  rep.dropped = 6;
  rep.aborted = 5;
  rep.retried = 23;
  rep.repaired = 4;
  rep.faults_injected = 31;
  rep.shed = 2;
  rep.degrade_enters = 1;
  rep.records = 720;
  rep.wire_bytes = 1234567;
  rep.bytes_digest = 0xDEADBEEF;
  rep.latency = {1.5e6, 3.0e6, 4.5e6, 6.0e6};
  rep.makespan_cycles = 2.5e8;
  rep.throughput_per_gcycle = 360.0;
  rep.peak_virtual_depth = 11;
  rep.peak_sessions = 14;
  rep.mean_service_cycles = 2.1e6;
  rep.platform_cycles_base = 9.9e9;
  rep.platform_cycles_optimized = 3.3e8;
  rep.equivalent_speedup = 30.0;
  // Host-dependent fields: must NOT leak into the cycles map.
  rep.wall_ns = 42;
  rep.backpressure_waits = 7;
  rep.peak_real_depth = 9;
  rep.threads = 8;
  return rep;
}

TEST(BenchServerSchema, MetricsLandUnderPrefixWithExpectedKeys) {
  bench::BenchResult r;
  r.name = "server";
  bench::append_server_metrics(r, "steady/", sample_server_report());

  const json::Value doc = bench::to_json(r);
  const json::Value& cycles = doc.at("cycles");
  ASSERT_TRUE(cycles.is_object());
  // The fields ISSUE.md names explicitly: throughput, latency, drops.
  EXPECT_EQ(cycles.at("steady/throughput_per_gcycle").as_number(), 360.0);
  EXPECT_EQ(cycles.at("steady/latency_p50_cycles").as_number(), 1.5e6);
  EXPECT_EQ(cycles.at("steady/latency_p99_cycles").as_number(), 4.5e6);
  EXPECT_EQ(cycles.at("steady/dropped").as_number(), 6.0);
  // Session accounting and platform-equivalent pricing.
  EXPECT_EQ(cycles.at("steady/offered").as_number(), 96.0);
  EXPECT_EQ(cycles.at("steady/admitted").as_number(), 90.0);
  EXPECT_EQ(cycles.at("steady/wire_bytes").as_number(), 1234567.0);
  EXPECT_EQ(cycles.at("steady/bytes_digest").as_number(),
            static_cast<double>(0xDEADBEEFu));
  EXPECT_EQ(cycles.at("steady/platform_cycles_base").as_number(), 9.9e9);
  EXPECT_EQ(cycles.at("steady/platform_cycles_opt").as_number(), 3.3e8);
  EXPECT_EQ(cycles.at("steady/platform_equiv_speedup").as_number(), 30.0);
  EXPECT_EQ(cycles.at("steady/queue_depth_peak").as_number(), 11.0);
  // Fault/recovery accounting (the chaos section keys, docs/faults.md).
  EXPECT_EQ(cycles.at("steady/completed").as_number(), 85.0);
  EXPECT_EQ(cycles.at("steady/aborted").as_number(), 5.0);
  EXPECT_EQ(cycles.at("steady/retried").as_number(), 23.0);
  EXPECT_EQ(cycles.at("steady/repaired").as_number(), 4.0);
  EXPECT_EQ(cycles.at("steady/faults_injected").as_number(), 31.0);
  EXPECT_EQ(cycles.at("steady/shed").as_number(), 2.0);
  EXPECT_EQ(cycles.at("steady/degrade_enters").as_number(), 1.0);
}

TEST(BenchServerSchema, HostDependentFieldsStayOutOfCycles) {
  bench::BenchResult r;
  r.name = "server";
  bench::append_server_metrics(r, "overload/", sample_server_report());
  // The cycles map is the determinism contract: wall time, backpressure
  // waits, real queue depth and thread count must never appear in it.
  for (const auto& [key, value] : r.cycles) {
    (void)value;
    EXPECT_EQ(key.find("wall"), std::string::npos) << key;
    EXPECT_EQ(key.find("backpressure"), std::string::npos) << key;
    EXPECT_EQ(key.find("real"), std::string::npos) << key;
    EXPECT_EQ(key.find("threads"), std::string::npos) << key;
  }
  EXPECT_EQ(r.cycles.count("overload/dropped"), 1u);
}

TEST(BenchServerSchema, DigestSurvivesJsonRoundTrip) {
  bench::BenchResult r;
  r.name = "server_digest";
  bench::append_server_metrics(r, "x/", sample_server_report());

  const std::string dir = ::testing::TempDir();
  const std::string path = bench::write_bench_json(r, dir);
  ASSERT_FALSE(path.empty());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  // A 32-bit digest is exactly representable as a double, so the value must
  // round-trip bit-for-bit through serialize + parse.
  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.at("cycles").at("x/bytes_digest").as_number(),
            static_cast<double>(0xDEADBEEFu));
}

}  // namespace
}  // namespace wsp
