// Tests for the machine-readable bench artifact layer (bench/bench_util.h):
// flag parsing, the wsp-bench-v1 JSON schema, and file round-tripping.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "support/json.h"

namespace wsp {
namespace {

char** fake_argv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(BenchFlags, ParseThreadsBothForms) {
  std::vector<std::string> a1 = {"prog", "--threads", "4"};
  EXPECT_EQ(bench::parse_threads(3, fake_argv(a1)), 4u);
  std::vector<std::string> a2 = {"prog", "--threads=8"};
  EXPECT_EQ(bench::parse_threads(2, fake_argv(a2)), 8u);
  std::vector<std::string> a3 = {"prog"};
  EXPECT_EQ(bench::parse_threads(1, fake_argv(a3), 2), 2u);
  std::vector<std::string> a4 = {"prog", "--threads", "0"};
  EXPECT_EQ(bench::parse_threads(3, fake_argv(a4)), 1u);  // clamped
}

TEST(BenchFlags, ParseStringFlagBothForms) {
  std::vector<std::string> a1 = {"prog", "--outdir", "/tmp/x"};
  EXPECT_EQ(bench::parse_string_flag(3, fake_argv(a1), "--outdir"), "/tmp/x");
  std::vector<std::string> a2 = {"prog", "--outdir=/tmp/y"};
  EXPECT_EQ(bench::parse_string_flag(2, fake_argv(a2), "--outdir"), "/tmp/y");
  std::vector<std::string> a3 = {"prog"};
  EXPECT_EQ(bench::parse_string_flag(1, fake_argv(a3), "--outdir", "dflt"),
            "dflt");
}

TEST(BenchFlags, ParseBoolFlag) {
  std::vector<std::string> a1 = {"prog", "--with-explore"};
  EXPECT_TRUE(bench::parse_bool_flag(2, fake_argv(a1), "--with-explore"));
  EXPECT_FALSE(bench::parse_bool_flag(2, fake_argv(a1), "--trace"));
}

bench::BenchResult sample_result() {
  bench::BenchResult r;
  r.name = "unit";
  r.config["seed"] = "61";
  r.config["variant"] = "base";
  r.cycles["total"] = 123456789.0;
  r.cycles["per_block"] = 421.5;
  r.wall_ns = 987654321;
  r.threads = 2;
  return r;
}

TEST(BenchJson, SchemaFieldsPresentAndTyped) {
  const json::Value doc = bench::to_json(sample_result());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").as_string(), "wsp-bench-v1");
  EXPECT_EQ(doc.at("name").as_string(), "unit");
  ASSERT_TRUE(doc.at("config").is_object());
  EXPECT_EQ(doc.at("config").at("seed").as_string(), "61");
  ASSERT_TRUE(doc.at("cycles").is_object());
  EXPECT_EQ(doc.at("cycles").at("total").as_number(), 123456789.0);
  EXPECT_EQ(doc.at("cycles").at("per_block").as_number(), 421.5);
  EXPECT_EQ(doc.at("wall_ns").as_number(), 987654321.0);
  EXPECT_EQ(doc.at("threads").as_number(), 2.0);
  ASSERT_TRUE(doc.at("git_rev").is_string());
  EXPECT_FALSE(doc.at("git_rev").as_string().empty());
}

TEST(BenchJson, WriteRoundTripsThroughParser) {
  const std::string dir = ::testing::TempDir();
  const std::string path = bench::write_bench_json(sample_result(), dir);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_unit.json"), std::string::npos);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "wsp-bench-v1");
  // Large integers must serialize exactly (no exponent notation).
  EXPECT_NE(text.find("123456789"), std::string::npos);
  EXPECT_NE(text.find("987654321"), std::string::npos);
  EXPECT_EQ(doc.at("cycles").at("total").as_number(), 123456789.0);
}

TEST(BenchJson, WriteFailsIntoMissingDirectory) {
  EXPECT_EQ(bench::write_bench_json(sample_result(), "/nonexistent-dir-xyz"),
            "");
}

}  // namespace
}  // namespace wsp
